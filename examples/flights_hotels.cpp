// Scaled Flight/Hotel workload: the paper's running scenario driven by the
// generator, through the full pipeline — chase, egd chase, existence,
// query answering — with timings.
//
// Run:  ./flights_hotels [num_flights] [num_hotels] [num_cities]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "exchange/solution_check.h"
#include "solver/existence.h"
#include "workload/flights.h"

using namespace gdx;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  FlightWorkloadParams params;
  params.num_flights = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  params.num_hotels = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;
  params.num_cities = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 15;
  params.hotels_per_flight = 2;
  params.mode = FlightConstraintMode::kEgd;

  std::printf("Flight/Hotel workload: %zu flights, %zu hotels, %zu cities\n",
              params.num_flights, params.num_hotels, params.num_cities);
  Scenario s = MakeFlightScenario(params);
  std::printf("source facts: %zu\n\n", s.instance->TotalFacts());
  AutomatonNreEvaluator eval;

  auto t0 = std::chrono::steady_clock::now();
  PatternChaseStats chase_stats;
  GraphPattern pattern = ChaseToPattern(*s.instance, s.setting.st_tgds,
                                        *s.universe, &chase_stats);
  std::printf("[chase]      %6.2f ms  %zu triggers, %zu pattern edges, "
              "%zu nulls\n",
              MsSince(t0), chase_stats.triggers, pattern.num_edges(),
              chase_stats.nulls_created);

  t0 = std::chrono::steady_clock::now();
  EgdChaseResult egd = ChasePatternEgds(pattern, s.setting.egds, eval);
  std::printf("[egd chase]  %6.2f ms  %zu merges in %zu rounds, failed=%s\n",
              MsSince(t0), egd.merges, egd.rounds,
              egd.failed ? "yes" : "no");
  if (egd.failed) {
    std::printf("no solution exists (egd chase clash): %s\n",
                egd.failure_reason.c_str());
    return 0;
  }

  t0 = std::chrono::steady_clock::now();
  ExistenceOptions options;
  options.instantiation.max_witnesses_per_edge = 2;
  ExistenceSolver solver(&eval, options);
  ExistenceReport report = solver.Decide(s.setting, *s.instance, *s.universe);
  std::printf("[existence]  %6.2f ms  verdict=%s (%s)\n", MsSince(t0),
              report.verdict == ExistenceVerdict::kYes       ? "YES"
              : report.verdict == ExistenceVerdict::kNo      ? "NO"
                                                             : "UNKNOWN",
              report.note.c_str());
  if (!report.witness.has_value()) return 0;
  const Graph& solution = *report.witness;
  std::printf("             solution: %zu nodes, %zu edges\n",
              solution.num_nodes(), solution.num_edges());

  t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<Value>> answers =
      EvaluateCnre(*s.query, solution, eval);
  size_t constant_pairs = 0;
  for (const auto& t : answers) {
    if (t[0].is_constant() && t[1].is_constant()) ++constant_pairs;
  }
  std::printf("[query]      %6.2f ms  |Q(solution)| = %zu (%zu over "
              "constants)\n",
              MsSince(t0), answers.size(), constant_pairs);
  return 0;
}
