// Quickstart: the paper's Example 2.2 end to end.
//
// Builds the Flight/Hotel instance, the s-t tgd with an f·f* head, and the
// "hotel in exactly one city" constraint in both flavors (egd Ω and sameAs
// Ω′); chases a universal representative, applies the adapted egd chase,
// decides existence, and computes both certain-answer sets.
//
// Run:  ./quickstart
#include <cstdio>
#include <string>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "exchange/solution_check.h"
#include "solver/certain.h"
#include "solver/existence.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"

using namespace gdx;

namespace {

void PrintAnswerSet(const Scenario& s, const CertainAnswerResult& result) {
  std::printf("  %zu certain tuple(s) over %zu solution(s):\n",
              result.tuples.size(), result.solutions_considered);
  for (const auto& t : result.tuples) {
    std::printf("    (%s, %s)\n", s.universe->NameOf(t[0]).c_str(),
                s.universe->NameOf(t[1]).c_str());
  }
}

}  // namespace

int main() {
  AutomatonNreEvaluator eval;

  std::printf("== Example 2.2: the Flight/Hotel exchange ==\n\n");
  Scenario omega = MakeExample22Scenario(FlightConstraintMode::kEgd);
  std::printf("Source instance: %zu facts (2 flights, 3 hotel stops)\n",
              omega.instance->TotalFacts());

  // --- Step 1: chase a universal representative (Figure 3). ---
  PatternChaseStats chase_stats;
  GraphPattern pattern = ChaseToPattern(
      *omega.instance, omega.setting.st_tgds, *omega.universe, &chase_stats);
  std::printf("\n[1] s-t chase fired %zu triggers -> universal "
              "representative (Figure 3):\n%s",
              chase_stats.triggers,
              pattern.ToString(*omega.universe, *omega.alphabet).c_str());

  // --- Step 2: adapted egd chase (Figure 5). ---
  EgdChaseResult egd = ChasePatternEgds(pattern, omega.setting.egds, eval);
  std::printf("\n[2] adapted egd chase: %zu merge(s), failed=%s "
              "(Figure 5):\n%s",
              egd.merges, egd.failed ? "yes" : "no",
              pattern.ToString(*omega.universe, *omega.alphabet).c_str());

  // --- Step 3: decide existence and materialize a solution. ---
  ExistenceSolver existence(&eval);
  ExistenceReport report =
      existence.Decide(omega.setting, *omega.instance, *omega.universe);
  std::printf("\n[3] existence under Omega (egd): %s — %s\n",
              report.verdict == ExistenceVerdict::kYes ? "YES" : "NO/UNKNOWN",
              report.note.c_str());
  if (report.witness.has_value()) {
    std::printf("%s", report.witness
                          ->ToString(*omega.universe, *omega.alphabet)
                          .c_str());
  }

  // --- Step 4: the paper's Figure 1 graphs. ---
  Graph g1 = BuildFigure1G1(omega);
  Graph g2 = BuildFigure1G2(omega);
  std::printf("\n[4] Figure 1 checks under Omega:  G1 solution? %s   "
              "G2 solution? %s\n",
              IsSolution(omega.setting, *omega.instance, g1, eval,
                         *omega.universe)
                  ? "yes"
                  : "no",
              IsSolution(omega.setting, *omega.instance, g2, eval,
                         *omega.universe)
                  ? "yes"
                  : "no");

  // --- Step 5: certain answers under Ω. ---
  CertainAnswerOptions copt;
  copt.existence.instantiation.max_witnesses_per_edge = 3;
  copt.max_solutions = 12;
  CertainAnswerSolver certain(&eval, copt);
  std::printf("\n[5] cert_Omega(Q, I) with Q = f.f*[h].f-.(f-)*  "
              "(paper: the four (c1|c3, c1|c3) pairs)\n");
  PrintAnswerSet(omega, certain.Compute(omega.setting, *omega.instance,
                                        *omega.query, *omega.universe));

  // --- Step 6: the sameAs variant Ω′. ---
  Scenario prime = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  Graph g3 = BuildFigure1G3(prime);
  std::printf("\n[6] Omega' (sameAs):  G3 solution? %s\n",
              IsSolution(prime.setting, *prime.instance, g3, eval,
                         *prime.universe)
                  ? "yes"
                  : "no");
  std::printf("    cert_Omega'(Q, I)  (paper: {(c1,c1), (c3,c3)})\n");
  PrintAnswerSet(prime, certain.Compute(prime.setting, *prime.instance,
                                        *prime.query, *prime.universe));

  std::printf("\nDone.\n");
  return 0;
}
