// Quickstart: the paper's Example 2.2 end to end.
//
// Builds the Flight/Hotel instance, the s-t tgd with an f·f* head, and the
// "hotel in exactly one city" constraint in both flavors (egd Ω and sameAs
// Ω′); walks the chase stages by hand for exposition, then solves both
// settings through the ExchangeEngine — the one-call pipeline that
// examples, benches and the CLI share.
//
// Run:  ./quickstart
#include <cstdio>
#include <string>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "engine/exchange_engine.h"
#include "exchange/solution_check.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"

using namespace gdx;

namespace {

void PrintAnswerSet(const Scenario& s, const CertainAnswerResult& result) {
  std::printf("  %zu certain tuple(s) over %zu solution(s):\n",
              result.tuples.size(), result.solutions_considered);
  for (const auto& t : result.tuples) {
    std::printf("    (%s, %s)\n", s.universe->NameOf(t[0]).c_str(),
                s.universe->NameOf(t[1]).c_str());
  }
}

}  // namespace

int main() {
  AutomatonNreEvaluator eval;

  std::printf("== Example 2.2: the Flight/Hotel exchange ==\n\n");
  Scenario omega = MakeExample22Scenario(FlightConstraintMode::kEgd);
  std::printf("Source instance: %zu facts (2 flights, 3 hotel stops)\n",
              omega.instance->TotalFacts());

  // --- Step 1: chase a universal representative (Figure 3). ---
  PatternChaseStats chase_stats;
  GraphPattern pattern = ChaseToPattern(
      *omega.instance, omega.setting.st_tgds, *omega.universe, &chase_stats);
  std::printf("\n[1] s-t chase fired %zu triggers -> universal "
              "representative (Figure 3):\n%s",
              chase_stats.triggers,
              pattern.ToString(*omega.universe, *omega.alphabet).c_str());

  // --- Step 2: adapted egd chase (Figure 5). ---
  EgdChaseResult egd = ChasePatternEgds(pattern, omega.setting.egds, eval);
  std::printf("\n[2] adapted egd chase: %zu merge(s), failed=%s "
              "(Figure 5):\n%s",
              egd.merges, egd.failed ? "yes" : "no",
              pattern.ToString(*omega.universe, *omega.alphabet).c_str());

  // --- Step 3: solve the whole setting through the engine. ---
  EngineOptions engine_options;
  engine_options.instantiation.max_witnesses_per_edge = 3;
  engine_options.max_solutions = 12;
  ExchangeEngine engine(engine_options);
  Result<ExchangeOutcome> outcome = engine.Solve(omega);
  if (!outcome.ok()) {
    std::printf("engine error: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("\n[3] engine solve under Omega (egd): %s — %s\n",
              outcome->existence.verdict == ExistenceVerdict::kYes
                  ? "YES"
                  : "NO/UNKNOWN",
              outcome->existence.note.c_str());
  if (outcome->solution.has_value()) {
    std::printf("%s", outcome->solution
                          ->ToString(*omega.universe, *omega.alphabet)
                          .c_str());
  }

  // --- Step 4: the paper's Figure 1 graphs. ---
  Graph g1 = BuildFigure1G1(omega);
  Graph g2 = BuildFigure1G2(omega);
  std::printf("\n[4] Figure 1 checks under Omega:  G1 solution? %s   "
              "G2 solution? %s\n",
              IsSolution(omega.setting, *omega.instance, g1, eval,
                         *omega.universe)
                  ? "yes"
                  : "no",
              IsSolution(omega.setting, *omega.instance, g2, eval,
                         *omega.universe)
                  ? "yes"
                  : "no");

  // --- Step 5: certain answers (computed by the same engine solve). ---
  std::printf("\n[5] cert_Omega(Q, I) with Q = f.f*[h].f-.(f-)*  "
              "(paper: the four (c1|c3, c1|c3) pairs)\n");
  PrintAnswerSet(omega, *outcome->certain);

  // --- Step 6: the sameAs variant Ω′, through the same engine. ---
  Scenario prime = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  Graph g3 = BuildFigure1G3(prime);
  std::printf("\n[6] Omega' (sameAs):  G3 solution? %s\n",
              IsSolution(prime.setting, *prime.instance, g3, eval,
                         *prime.universe)
                  ? "yes"
                  : "no");
  Result<ExchangeOutcome> prime_outcome = engine.Solve(prime);
  if (!prime_outcome.ok()) {
    std::printf("engine error: %s\n",
                prime_outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("    cert_Omega'(Q, I)  (paper: {(c1,c1), (c3,c3)})\n");
  PrintAnswerSet(prime, *prime_outcome->certain);

  // --- Step 7: what the engine measured. ---
  Metrics totals = outcome->metrics;
  totals.Accumulate(prime_outcome->metrics);
  std::printf("\n[7] engine metrics for the two solves:\n%s",
              totals.ToString().c_str());

  std::printf("\nDone.\n");
  return 0;
}
