// Theorem 4.1 live: encode a 3CNF as a relational-to-graph data exchange
// setting with target egds, decide existence of solutions three ways, and
// decode the satisfying valuation back from the solution graph.
//
// Run:  ./sat_reduction            (uses the paper's ρ0)
//       ./sat_reduction file.cnf   (any DIMACS CNF)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "reduction/sat_encoding.h"
#include "sat/dpll.h"
#include "solver/existence.h"

using namespace gdx;

namespace {

const char* VerdictName(ExistenceVerdict v) {
  switch (v) {
    case ExistenceVerdict::kYes: return "YES";
    case ExistenceVerdict::kNo: return "NO";
    case ExistenceVerdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  CnfFormula rho;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Result<CnfFormula> parsed = ParseDimacs(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    rho = *parsed;
  } else {
    rho = Rho0();
    std::printf("using the paper's rho0 = (x1 | !x2 | x3) & (!x1 | x3 | "
                "!x4)\n");
  }
  std::printf("formula: %d variables, %zu clauses\n\n", rho.num_vars(),
              rho.num_clauses());

  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(rho, universe, ReductionMode::kEgd);
  if (!enc.ok()) {
    std::fprintf(stderr, "%s\n", enc.status().ToString().c_str());
    return 1;
  }
  std::printf("Theorem 4.1 construction:\n");
  std::printf("  source schema: R1/1, R2/1; instance {R1(c1), R2(c2)}\n");
  std::printf("  alphabet: %zu symbols; s-t tgd head atoms: %zu; egds: %zu\n",
              enc->alphabet->size(), enc->setting.st_tgds[0].head.size(),
              enc->setting.egds.size());

  // Ground truth via DPLL on the original formula.
  SatResult truth = DpllSolver().Solve(rho);
  std::printf("\nDPLL on rho:        %s (%zu decisions)\n",
              truth.satisfiable ? "SAT" : "UNSAT", truth.stats.decisions);

  AutomatonNreEvaluator eval;
  // Strategy 1: the exact flat-fragment SAT encoding (the reduction run
  // backwards).
  ExistenceOptions sat_opts;
  sat_opts.strategy = ExistenceStrategy::kSatBacked;
  ExistenceReport sat_report = ExistenceSolver(&eval, sat_opts)
                                   .Decide(enc->setting, *enc->instance,
                                           universe);
  std::printf("existence (SAT):    %s — %s\n",
              VerdictName(sat_report.verdict), sat_report.note.c_str());

  // Strategy 2: bounded witness-combination search (exponential shape).
  ExistenceOptions bounded_opts;
  bounded_opts.strategy = ExistenceStrategy::kBoundedSearch;
  bounded_opts.instantiation.max_edges_per_witness = 1;
  bounded_opts.instantiation.max_witnesses_per_edge = 2;
  ExistenceReport bounded_report =
      ExistenceSolver(&eval, bounded_opts)
          .Decide(enc->setting, *enc->instance, universe);
  std::printf("existence (brute):  %s after %zu candidate(s)\n",
              VerdictName(bounded_report.verdict),
              bounded_report.candidates_tried);

  // Strategy 3: chase refutation only (sound "no", can be UNKNOWN).
  ExistenceOptions chase_opts;
  chase_opts.strategy = ExistenceStrategy::kChaseRefute;
  ExistenceReport chase_report = ExistenceSolver(&eval, chase_opts)
                                     .Decide(enc->setting, *enc->instance,
                                             universe);
  std::printf("existence (chase):  %s — %s\n",
              VerdictName(chase_report.verdict), chase_report.note.c_str());

  if (sat_report.witness.has_value()) {
    std::printf("\nsolution graph:\n%s",
                sat_report.witness->ToString(universe, *enc->alphabet)
                    .c_str());
    std::optional<std::vector<bool>> valuation =
        DecodeGraphToValuation(*sat_report.witness, *enc);
    if (valuation.has_value()) {
      std::printf("decoded valuation: ");
      for (int v = 1; v <= rho.num_vars(); ++v) {
        std::printf("x%d=%s ", v, (*valuation)[v] ? "T" : "F");
      }
      std::printf("\nrho under decoded valuation: %s\n",
                  rho.Eval(*valuation) ? "satisfied" : "VIOLATED (bug!)");
    }
  }
  return 0;
}
