// Relational-to-RDF-style direct mapping with sameAs deduplication — the
// interoperability scenario motivating the paper's sameAs constraints
// (§1, §4.2): person records from two tables map to an RDF-ish graph;
// records sharing a mailbox are linked by sameAs; the quotient graph gives
// the merged view.
//
// Run:  ./rdf_sameas
#include <cstdio>

#include "chase/pattern_chase.h"
#include "chase/sameas_completion.h"
#include "exchange/parser.h"
#include "exchange/solution_check.h"
#include "pattern/witness.h"
#include "solver/sameas_engine.h"
#include "workload/scenario.h"

using namespace gdx;

int main() {
  Scenario s;
  s.universe = std::make_unique<Universe>();
  s.source_schema = std::make_unique<Schema>();
  s.alphabet = std::make_unique<Alphabet>();
  RelationId crm = *s.source_schema->AddRelation("CrmPerson", 2);
  RelationId billing = *s.source_schema->AddRelation("BillingPerson", 2);
  s.instance = std::make_unique<Instance>(s.source_schema.get());
  s.setting.source_schema = s.source_schema.get();
  s.setting.alphabet = s.alphabet.get();

  // Direct mapping: both tables emit (person) -name-> and -mbox-> edges,
  // inventing one node per row.
  for (const char* text :
       {"CrmPerson(n, m) -> (p, name, n), (p, mbox, m)",
        "BillingPerson(n, m) -> (p, name, n), (p, mbox, m)"}) {
    Result<StTgd> tgd = ParseStTgd(text, s.source_schema.get(), *s.alphabet,
                                   *s.universe);
    if (!tgd.ok()) {
      std::fprintf(stderr, "%s\n", tgd.status().ToString().c_str());
      return 1;
    }
    s.setting.st_tgds.push_back(std::move(tgd).value());
  }
  // Shared mailbox => same real-world person (the W3C sameAs idiom).
  Result<SameAsConstraint> sac = ParseSameAsConstraint(
      "(p1, mbox, m), (p2, mbox, m) -> (p1, sameAs, p2)", *s.alphabet,
      *s.universe);
  s.setting.sameas.push_back(std::move(sac).value());

  auto add = [&](RelationId rel, const char* name, const char* mbox) {
    (void)s.instance->AddFact(rel, {s.universe->MakeConstant(name),
                                    s.universe->MakeConstant(mbox)});
  };
  add(crm, "Ada Lovelace", "ada@example.org");
  add(crm, "Alan Turing", "alan@example.org");
  add(billing, "A. Lovelace", "ada@example.org");   // same mailbox as Ada
  add(billing, "Grace Hopper", "grace@example.org");

  std::printf("source: %zu rows across CrmPerson/BillingPerson\n\n",
              s.instance->TotalFacts());

  AutomatonNreEvaluator eval;
  GraphPattern pattern =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  PatternInstantiator inst(&pattern, s.universe.get(), {});
  Result<Graph> graph = inst.InstantiateCanonical();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  SameAsCompletionStats stats;
  if (!CompleteSameAs(*graph, s.setting.sameas, *s.alphabet, eval, &stats)
           .ok()) {
    return 1;
  }
  std::printf("exchanged RDF-ish graph (+%zu sameAs edge(s)):\n%s\n",
              stats.edges_added,
              graph->ToString(*s.universe, *s.alphabet).c_str());
  std::printf("solution check: %s\n\n",
              IsSolution(s.setting, *s.instance, *graph, eval, *s.universe)
                  ? "OK"
                  : "VIOLATED");

  Graph quotient = SameAsEngine::QuotientGraph(*graph, *s.alphabet);
  std::printf("quotient (deduplicated) view: %zu nodes, %zu edges\n%s",
              quotient.num_nodes(), quotient.num_edges(),
              quotient.ToString(*s.universe, *s.alphabet).c_str());
  std::printf("\nAda's two source records collapsed into one entity with "
              "both names attached.\n");
  return 0;
}
