// gdx_cli: drive the full library from .gdx scenario files — the tool a
// downstream user reaches for first. The solve-shaped subcommands run
// through the ExchangeEngine (src/engine/), the single orchestration seam
// of the library; `chase`, `dot` and `check` expose individual stages.
//
//   gdx_cli <scenario.gdx> chase          chase + adapted egd chase, print
//                                         the (pattern, constraints) pair
//   gdx_cli <scenario.gdx> exists         decide existence, print a witness
//   gdx_cli <scenario.gdx> certain        certain answers of the query
//   gdx_cli <scenario.gdx> solve          existence + core-minimized witness
//   gdx_cli <scenario.gdx> dot            chased pattern as GraphViz DOT
//   gdx_cli <scenario.gdx> check <file>   is the edge-list graph in <file>
//                                         a solution? (src label dst lines,
//                                         "_:n" for nulls)
//   gdx_cli batch <a.gdx> <b.gdx> ...     solve many scenarios concurrently
//           [--threads=N] [--repeat=K]    through the BatchExecutor and
//           [--intra-threads=N]           print the Metrics summary;
//           [--chase=delta|naive]         --intra-threads fans each solve's
//           [--egd-repair=parallel        witness search over N workers;
//                 |deferred|eager]        --chase picks the chase algorithm
//           [--nre-multi-source=batched   (semi-naive delta vs the legacy
//                 |per-source]            reference); --egd-repair and
//           [--cache-load=FILE]           --nre-multi-source pick the egd
//           [--cache-save=FILE]           repair policy and the multi-
//           [--report-out=FILE]           source NRE strategy — every
//           [--trace-out=FILE]            combination is byte-identical
//           [--metrics-json=FILE]         (see CI's chase-diff job);
//                                         --cache-load/--cache-save restore/
//                                         persist the engine cache snapshot
//                                         (docs/FORMAT.md) so a new process
//                                         warm-starts with every memo and
//                                         compiled automaton of the last
//                                         run; --report-out writes the
//                                         deterministic per-scenario report
//                                         (no timings — byte-identical for
//                                         identical runs, warm or cold,
//                                         traced or not); --trace-out
//                                         records the batch as Chrome/
//                                         Perfetto trace-event JSON;
//                                         --metrics-json dumps the stats
//                                         registry (docs/TELEMETRY.md)
//   gdx_cli serve --socket=PATH|--port=N  resident exchange service
//           [--workers=N] [--queue=N]     (docs/SERVING.md): worker
//           [--intra-threads=N]           sessions share one warm sharded
//           [--checkpoint=FILE]           cache; --checkpoint persists it
//           [--checkpoint-interval-ms=N]  periodically (and on drain) and
//           [--metrics-json=FILE]         warm-starts from it at startup;
//           [--fault=SPEC]                --fault injects deterministic
//                                         faults (point:rate:seed, same
//                                         spec as GDX_FAULT) for the
//                                         robustness harnesses; runs until
//                                         a client sends SHUTDOWN
//   gdx_cli client --socket=PATH|--port=N pipelined driver: sends each
//           <a.gdx ...> [--list=FILE]     scenario file's text, retries
//           [--repeat=K] [--window=N]     QUEUE_FULL rejections with
//           [--report-out=FILE]           jittered exponential backoff,
//           [--index-base=N]              reorders streamed results by id
//           [--stats-out=FILE]            and writes the batch-identical
//           [--deadline-ms=N]             report; --deadline-ms attaches a
//           [--shutdown] [--ping]         solve deadline to every request;
//                                         --shutdown drains the server
//                                         when done
//
// Try:  ./gdx_cli example22.gdx certain
//       ./gdx_cli batch example22.gdx example22.gdx --threads=4 --repeat=8
//       ./gdx_cli batch hard.gdx --threads=1 --intra-threads=4
//       ./gdx_cli batch a.gdx --repeat=8 --cache-save=warm.gdxsnap
//       ./gdx_cli batch a.gdx --repeat=8 --cache-load=warm.gdxsnap
//       # 2nd run: "warm: restored-entry hits" climbs, compile misses = 0
//       ./gdx_cli batch a.gdx --repeat=32 --trace-out=trace.json
//                             --metrics-json=metrics.json   (same command)
//       # open trace.json in Perfetto / chrome://tracing
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "common/fault.h"
#include "engine/batch_executor.h"
#include "engine/exchange_engine.h"
#include "exchange/solution_check.h"
#include "exchange/universal_pair.h"
#include "graph/dot_export.h"
#include "graph/graph_io.h"
#include "obs/stats_registry.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workload/scenario_parser.h"

using namespace gdx;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

EngineOptions CliEngineOptions() {
  EngineOptions options;
  options.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = 16;
  return options;
}

int RunChase(Scenario& s, const NreEvaluator& eval) {
  Result<UniversalPair> pair =
      BuildUniversalPair(s.setting, *s.instance, *s.universe, eval);
  if (!pair.ok()) {
    std::printf("chase failed — no solution exists.\n  %s\n",
                pair.status().message().c_str());
    return 0;
  }
  std::printf("%s", pair->ToString(*s.universe).c_str());
  return 0;
}

int RunSolve(Scenario& s, bool minimize, bool want_certain) {
  EngineOptions options = CliEngineOptions();
  options.minimize_core = minimize;
  options.compute_certain_answers = want_certain;
  if (want_certain && s.query == nullptr) {
    std::fprintf(stderr, "scenario has no 'query' directive\n");
    return 1;
  }
  ExchangeEngine engine(options);
  Result<ExchangeOutcome> outcome = engine.Solve(s);
  if (!outcome.ok()) return Fail(outcome.status());
  std::printf("%s", outcome->ToString(*s.universe, *s.alphabet).c_str());
  std::printf("%s", outcome->metrics.ToString().c_str());
  return 0;
}

int RunBatch(int argc, char** argv) {
  BatchOptions options;
  options.engine = CliEngineOptions();
  size_t repeat = 1;
  std::string cache_load, cache_save, report_out, trace_out, metrics_json;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--cache-load=", 13) == 0) {
      cache_load = arg + 13;
    } else if (std::strncmp(arg, "--cache-save=", 13) == 0) {
      cache_save = arg + 13;
    } else if (std::strncmp(arg, "--report-out=", 13) == 0) {
      report_out = arg + 13;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
    } else if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      metrics_json = arg + 15;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      int threads = std::atoi(arg + 10);
      if (threads < 0) {
        std::fprintf(stderr, "--threads must be >= 0 (0 = hardware)\n");
        return 2;
      }
      options.num_threads = static_cast<size_t>(threads);
    } else if (std::strncmp(arg, "--intra-threads=", 16) == 0) {
      int threads = std::atoi(arg + 16);
      if (threads < 0) {
        std::fprintf(stderr,
                     "--intra-threads must be >= 0 (0 = hardware)\n");
        return 2;
      }
      options.engine.intra_solve_threads = static_cast<size_t>(threads);
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      int parsed = std::atoi(arg + 9);
      if (parsed < 1) {
        std::fprintf(stderr, "--repeat must be >= 1\n");
        return 2;
      }
      repeat = static_cast<size_t>(parsed);
    } else if (std::strncmp(arg, "--chase=", 8) == 0) {
      // Both algorithms produce byte-identical artifacts (the CI
      // chase-diff job cmp's the two reports); the flag exists for that
      // differential and for benchmarking the legacy path.
      const char* mode = arg + 8;
      if (std::strcmp(mode, "delta") == 0) {
        options.engine.chase_policy = ChasePolicy::kDelta;
      } else if (std::strcmp(mode, "naive") == 0) {
        options.engine.chase_policy = ChasePolicy::kNaive;
      } else {
        std::fprintf(stderr, "--chase must be 'delta' or 'naive'\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--egd-repair=", 13) == 0) {
      // All three repair policies are byte-identical (ISSUE 10: CI's
      // chase-diff job cmp's a parallel vs deferred report); the flag
      // exists for that differential and the repair ablation bench.
      const char* mode = arg + 13;
      if (std::strcmp(mode, "parallel") == 0) {
        options.engine.egd_policy = EgdChasePolicy::kParallelComponents;
      } else if (std::strcmp(mode, "deferred") == 0) {
        options.engine.egd_policy = EgdChasePolicy::kDeferredRounds;
      } else if (std::strcmp(mode, "eager") == 0) {
        options.engine.egd_policy = EgdChasePolicy::kEagerRestart;
      } else {
        std::fprintf(stderr,
                     "--egd-repair must be 'parallel', 'deferred' or "
                     "'eager'\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--nre-multi-source=", 19) == 0) {
      // Byte-identical pair (ISSUE 10 tentpole part 2): the 64-way
      // bit-parallel BFS vs the per-source reference loop.
      const char* mode = arg + 19;
      if (std::strcmp(mode, "batched") == 0) {
        options.engine.nre_multi_source = MultiSourceMode::kBatched;
      } else if (std::strcmp(mode, "per-source") == 0) {
        options.engine.nre_multi_source = MultiSourceMode::kPerSource;
      } else {
        std::fprintf(stderr,
                     "--nre-multi-source must be 'batched' or "
                     "'per-source'\n");
        return 2;
      }
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: gdx_cli batch <a.gdx> [b.gdx ...] [--threads=N] "
                 "[--intra-threads=N] [--repeat=K] [--chase=delta|naive] "
                 "[--egd-repair=parallel|deferred|eager] "
                 "[--nre-multi-source=batched|per-source] "
                 "[--cache-load=FILE] [--cache-save=FILE] "
                 "[--report-out=FILE] [--trace-out=FILE] "
                 "[--metrics-json=FILE]\n");
    return 2;
  }
  // Observability (ISSUE 6): both sinks are pay-for-what-you-ask — no
  // tracer is installed and no registry is wired unless the flag is given,
  // and neither affects outcomes (--report-out stays byte-identical; CI's
  // trace-smoke step asserts it).
  obs::StatsRegistry registry;
  if (!metrics_json.empty()) options.engine.stats = &registry;
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_out.empty()) {
    tracer.reset(new obs::Tracer());
    obs::Tracer::SetGlobal(tracer.get());
  }
  // --repeat=K loads each file K times: repeated scenarios exercise the
  // engine cache (expect the hit counters to climb).
  std::vector<Scenario> scenarios;
  for (size_t r = 0; r < repeat; ++r) {
    for (const std::string& path : paths) {
      Result<Scenario> s = LoadScenarioFile(path);
      if (!s.ok()) return Fail(s.status());
      scenarios.push_back(std::move(s).value());
    }
  }
  BatchExecutor executor(options);
  if (!cache_load.empty()) {
    // Corruption-safe by design: a truncated/bit-flipped/wrong-version
    // snapshot restores nothing — warn and run cold rather than fail.
    Result<SnapshotRestoreStats> restored = executor.WarmStart(cache_load);
    if (!restored.ok()) {
      std::fprintf(stderr,
                   "warning: cache snapshot not loaded, starting cold "
                   "(%s)\n",
                   restored.status().ToString().c_str());
    } else {
      std::printf("cache: restored %zu nre + %zu answer (%zu key) + %zu "
                  "automaton + %zu chased entries from %s%s\n",
                  restored->nre_entries, restored->answer_entries,
                  restored->answer_keys, restored->compiled_entries,
                  restored->chased_entries, cache_load.c_str(),
                  restored->evicted_on_load > 0 ? " (some evicted by caps)"
                                                : "");
    }
  }
  BatchReport report = executor.SolveAll(scenarios);
  for (size_t i = 0; i < report.outcomes.size(); ++i) {
    const Result<ExchangeOutcome>& r = report.outcomes[i];
    const char* verdict =
        !r.ok() ? "ERROR"
        : r->existence.verdict == ExistenceVerdict::kYes  ? "YES"
        : r->existence.verdict == ExistenceVerdict::kNo   ? "NO"
                                                          : "UNKNOWN";
    std::printf("  [%zu] %s  %s\n", i,
                paths[i % paths.size()].c_str(), verdict);
  }
  std::printf("%s", report.Summary().c_str());
  if (!report_out.empty()) {
    // The timing-free report: per-scenario semantic outcomes only.
    // Identical scenario lists produce byte-identical files whether the
    // cache started cold or from a snapshot — CI's round-trip step and
    // persist_test assert exactly that.
    std::ofstream out(report_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write report: %s\n",
                   report_out.c_str());
      return 1;
    }
    for (size_t i = 0; i < report.outcomes.size(); ++i) {
      const Result<ExchangeOutcome>& r = report.outcomes[i];
      out << "[" << i << "] " << paths[i % paths.size()] << "\n";
      if (r.ok()) {
        out << r->ToString(*scenarios[i].universe, *scenarios[i].alphabet);
      } else {
        out << r.status().ToString() << "\n";
      }
    }
  }
  if (!cache_save.empty()) {
    Status saved = executor.SaveWarmState(cache_save);
    if (!saved.ok()) {
      std::fprintf(stderr, "error: cache snapshot not saved: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("cache: saved snapshot to %s\n", cache_save.c_str());
  }
  if (tracer != nullptr) {
    obs::Tracer::SetGlobal(nullptr);
    Status written = tracer->WriteJson(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "error: trace not written: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("trace: %zu event(s) (%llu dropped) written to %s\n",
                tracer->event_count(),
                static_cast<unsigned long long>(tracer->dropped_events()),
                trace_out.c_str());
  }
  if (!metrics_json.empty()) {
    std::ofstream out(metrics_json, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write metrics: %s\n",
                   metrics_json.c_str());
      return 1;
    }
    out << registry.ToJson();
    std::printf("metrics: registry dumped to %s (docs/TELEMETRY.md)\n",
                metrics_json.c_str());
  }
  return report.errors == 0 ? 0 : 1;
}

int RunServe(int argc, char** argv) {
  serve::ServeOptions options;
  options.engine = CliEngineOptions();
  std::string metrics_json;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--socket=", 9) == 0) {
      options.socket_path = arg + 9;
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      options.port = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      options.num_workers = static_cast<size_t>(std::atoi(arg + 10));
    } else if (std::strncmp(arg, "--queue=", 8) == 0) {
      int queue = std::atoi(arg + 8);
      if (queue < 1) {
        std::fprintf(stderr, "--queue must be >= 1\n");
        return 2;
      }
      options.queue_capacity = static_cast<size_t>(queue);
    } else if (std::strncmp(arg, "--intra-threads=", 16) == 0) {
      options.engine.intra_solve_threads =
          static_cast<size_t>(std::atoi(arg + 16));
    } else if (std::strncmp(arg, "--checkpoint=", 13) == 0) {
      options.checkpoint_path = arg + 13;
    } else if (std::strncmp(arg, "--checkpoint-interval-ms=", 25) == 0) {
      options.checkpoint_interval_ms =
          static_cast<uint64_t>(std::atoll(arg + 25));
    } else if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      metrics_json = arg + 15;
    } else if (std::strncmp(arg, "--fault=", 8) == 0) {
      // Same spec as GDX_FAULT (point:rate:seed[,...]); the flag makes a
      // fault plan visible in the harness command line.
      if (!fault::Configure(arg + 8)) {
        std::fprintf(stderr, "serve: malformed --fault spec: %s\n",
                     arg + 8);
        return 2;
      }
    } else {
      std::fprintf(stderr, "serve: unknown flag: %s\n", arg);
      return 2;
    }
  }
  if (options.socket_path.empty() && options.port < 0) {
    std::fprintf(stderr,
                 "usage: gdx_cli serve --socket=PATH|--port=N "
                 "[--workers=N] [--queue=N] [--intra-threads=N] "
                 "[--checkpoint=FILE] [--checkpoint-interval-ms=N] "
                 "[--metrics-json=FILE] [--fault=SPEC]\n");
    return 2;
  }
  const std::string socket_path = options.socket_path;
  serve::ExchangeServer server(std::move(options));
  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  if (server.bound_port() >= 0) {
    std::printf("serving on port %d\n", server.bound_port());
  } else {
    std::printf("serving on %s\n", socket_path.c_str());
  }
  std::fflush(stdout);  // readiness line: scripts wait for it
  server.Wait();
  if (!metrics_json.empty()) {
    std::ofstream out(metrics_json, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write metrics: %s\n",
                   metrics_json.c_str());
      return 1;
    }
    out << server.stats().ToJson();
  }
  std::printf("serve: drained, exiting\n");
  return 0;
}

int RunClient(int argc, char** argv) {
  std::string socket_path, list_file, report_out, stats_out;
  int port = -1;
  size_t repeat = 1, window = 16;
  uint64_t index_base = 0;
  uint32_t deadline_ms = 0;
  bool want_shutdown = false, want_ping = false;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--socket=", 9) == 0) {
      socket_path = arg + 9;
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      port = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--list=", 7) == 0) {
      list_file = arg + 7;
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      int parsed = std::atoi(arg + 9);
      if (parsed < 1) {
        std::fprintf(stderr, "--repeat must be >= 1\n");
        return 2;
      }
      repeat = static_cast<size_t>(parsed);
    } else if (std::strncmp(arg, "--window=", 9) == 0) {
      int parsed = std::atoi(arg + 9);
      if (parsed < 1) {
        std::fprintf(stderr, "--window must be >= 1\n");
        return 2;
      }
      window = static_cast<size_t>(parsed);
    } else if (std::strncmp(arg, "--report-out=", 13) == 0) {
      report_out = arg + 13;
    } else if (std::strncmp(arg, "--index-base=", 13) == 0) {
      index_base = static_cast<uint64_t>(std::atoll(arg + 13));
    } else if (std::strncmp(arg, "--stats-out=", 12) == 0) {
      stats_out = arg + 12;
    } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
      int parsed = std::atoi(arg + 14);
      if (parsed < 1) {
        std::fprintf(stderr, "--deadline-ms must be >= 1\n");
        return 2;
      }
      deadline_ms = static_cast<uint32_t>(parsed);
    } else if (std::strcmp(arg, "--shutdown") == 0) {
      want_shutdown = true;
    } else if (std::strcmp(arg, "--ping") == 0) {
      want_ping = true;
    } else {
      paths.push_back(arg);
    }
  }
  if (!list_file.empty()) {
    std::ifstream in(list_file);
    if (!in) {
      std::fprintf(stderr, "client: cannot open list: %s\n",
                   list_file.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) paths.push_back(line);
    }
  }
  if (socket_path.empty() && port < 0) {
    std::fprintf(stderr,
                 "usage: gdx_cli client --socket=PATH|--port=N "
                 "[a.gdx ...] [--list=FILE] [--repeat=K] [--window=N] "
                 "[--report-out=FILE] [--index-base=N] "
                 "[--stats-out=FILE] [--deadline-ms=N] [--shutdown] "
                 "[--ping]\n");
    return 2;
  }

  serve::ExchangeClient client;
  Status connected = socket_path.empty() ? client.ConnectTcp(port)
                                         : client.ConnectUnix(socket_path);
  if (!connected.ok()) return Fail(connected);

  if (want_ping) {
    Status pinged = client.Ping();
    if (!pinged.ok()) return Fail(pinged);
    std::printf("pong\n");
  }

  // Expand repeat-major, exactly like `batch --repeat`: scenario i is
  // paths[i % paths.size()], so the reassembled report is byte-identical
  // to the one-shot batch report over the same list.
  struct Item {
    uint64_t id;
    const std::string* path;
    std::string text;
  };
  std::vector<Item> items;
  items.reserve(paths.size() * repeat);
  for (size_t r = 0; r < repeat; ++r) {
    for (const std::string& path : paths) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "client: cannot open scenario: %s\n",
                     path.c_str());
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      items.push_back(
          Item{index_base + items.size(), &path, buffer.str()});
    }
  }

  // Pipelined sliding window with QUEUE_FULL retry: at most `window`
  // scenarios outstanding; an admission rejection re-sends that scenario
  // (the server stayed healthy — rejection is backpressure, not failure).
  // Retries back off exponentially with deterministic per-id jitter so a
  // rejected burst does not re-converge into a retry stampede; only
  // QUEUE_FULL is retried — it is the one rejection issued before
  // admission, so the re-send is idempotent.
  std::vector<std::string> results(items.size());
  std::vector<bool> done(items.size(), false);
  std::vector<uint64_t> attempts(items.size(), 0);
  serve::RetryBackoff backoff(/*seed=*/index_base);
  size_t next = 0, outstanding = 0, completed = 0, errors = 0;
  uint64_t queue_full_retries = 0;
  while (completed < items.size()) {
    while (next < items.size() && outstanding < window) {
      Status sent = client.SendRequest(items[next].id, items[next].text,
                                       deadline_ms);
      if (!sent.ok()) return Fail(sent);
      ++next;
      ++outstanding;
    }
    serve::ClientReply reply;
    Status read = client.ReadReply(&reply);
    if (!read.ok()) return Fail(read);
    if (reply.id < index_base ||
        reply.id - index_base >= items.size()) {
      std::fprintf(stderr, "client: reply for unknown id %llu\n",
                   static_cast<unsigned long long>(reply.id));
      return 1;
    }
    size_t local = static_cast<size_t>(reply.id - index_base);
    if (reply.is_error && reply.code == serve::ServeError::kQueueFull) {
      ++queue_full_retries;
      std::this_thread::sleep_for(std::chrono::microseconds(
          backoff.DelayUs(items[local].id, ++attempts[local])));
      Status sent = client.SendRequest(items[local].id, items[local].text,
                                       deadline_ms);
      if (!sent.ok()) return Fail(sent);
      continue;
    }
    if (done[local]) {
      std::fprintf(stderr, "client: duplicate reply for id %llu\n",
                   static_cast<unsigned long long>(reply.id));
      return 1;
    }
    done[local] = true;
    if (reply.is_error) {
      ++errors;
      results[local] = reply.text + "\n";
    } else {
      results[local] = std::move(reply.text);
    }
    ++completed;
    --outstanding;
  }

  if (!report_out.empty()) {
    std::ofstream out(report_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write report: %s\n",
                   report_out.c_str());
      return 1;
    }
    for (size_t i = 0; i < items.size(); ++i) {
      out << "[" << items[i].id << "] " << *items[i].path << "\n"
          << results[i];
    }
  }
  if (!stats_out.empty()) {
    std::string json;
    Status got = client.GetStats(&json);
    if (!got.ok()) return Fail(got);
    std::ofstream out(stats_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write stats: %s\n",
                   stats_out.c_str());
      return 1;
    }
    out << json;
  }
  if (want_shutdown) {
    Status drained = client.Shutdown();
    if (!drained.ok()) return Fail(drained);
  }
  std::printf("client: %zu result(s), %zu error(s), %llu QUEUE_FULL "
              "retr%s\n",
              completed, errors,
              static_cast<unsigned long long>(queue_full_retries),
              queue_full_retries == 1 ? "y" : "ies");
  return errors == 0 ? 0 : 1;
}

int RunCheck(Scenario& s, const NreEvaluator& eval, const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open graph file: %s\n", path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Graph> g =
      ParseGraphText(buffer.str(), *s.universe, *s.alphabet);
  if (!g.ok()) return Fail(g.status());
  SolutionCheckReport report =
      CheckSolution(s.setting, *s.instance, *g, eval, *s.universe);
  std::printf("graph: %zu nodes, %zu edges\n", g->num_nodes(),
              g->num_edges());
  std::printf("solution: %s\n", report.IsSolution() ? "YES" : "NO");
  for (const std::string& violation : report.violations) {
    std::printf("  violation: %s\n", violation.c_str());
  }
  return report.IsSolution() ? 0 : 3;
}

int RunDot(Scenario& s, const NreEvaluator& eval) {
  GraphPattern pattern =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  if (!s.setting.egds.empty()) {
    EgdChaseResult chased =
        ChasePatternEgds(pattern, s.setting.egds, eval);
    if (chased.failed) {
      std::fprintf(stderr, "chase failed: %s\n",
                   chased.failure_reason.c_str());
      return 1;
    }
  }
  std::printf("%s", ToDot(pattern, *s.universe, *s.alphabet).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "batch") == 0) {
    return RunBatch(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    return RunServe(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "client") == 0) {
    return RunClient(argc, argv);
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <scenario.gdx> "
                 "chase|exists|certain|solve|dot|check [graph-file]\n"
                 "       %s batch <a.gdx> [b.gdx ...] [--threads=N] "
                 "[--intra-threads=N] [--repeat=K] [--cache-load=FILE] "
                 "[--cache-save=FILE] [--report-out=FILE] "
                 "[--trace-out=FILE] [--metrics-json=FILE]\n",
                 argv[0], argv[0]);
    return 2;
  }
  Result<Scenario> scenario = LoadScenarioFile(argv[1]);
  if (!scenario.ok()) return Fail(scenario.status());
  AutomatonNreEvaluator eval;
  const char* command = argv[2];
  if (std::strcmp(command, "check") == 0) {
    if (argc != 4) {
      std::fprintf(stderr, "usage: %s <scenario.gdx> check <graph-file>\n",
                   argv[0]);
      return 2;
    }
    return RunCheck(*scenario, eval, argv[3]);
  }
  if (std::strcmp(command, "chase") == 0) {
    return RunChase(*scenario, eval);
  }
  if (std::strcmp(command, "exists") == 0) {
    return RunSolve(*scenario, /*minimize=*/false, /*want_certain=*/false);
  }
  if (std::strcmp(command, "solve") == 0) {
    return RunSolve(*scenario, /*minimize=*/true, /*want_certain=*/false);
  }
  if (std::strcmp(command, "certain") == 0) {
    return RunSolve(*scenario, /*minimize=*/false, /*want_certain=*/true);
  }
  if (std::strcmp(command, "dot") == 0) {
    return RunDot(*scenario, eval);
  }
  std::fprintf(stderr, "unknown command: %s\n", command);
  return 2;
}
