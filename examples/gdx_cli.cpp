// gdx_cli: drive the full library from a .gdx scenario file — the tool a
// downstream user reaches for first.
//
//   gdx_cli <scenario.gdx> chase         chase + adapted egd chase, print
//                                        the (pattern, constraints) pair
//   gdx_cli <scenario.gdx> exists        decide existence, print a witness
//   gdx_cli <scenario.gdx> certain       certain answers of the query
//   gdx_cli <scenario.gdx> solve         existence + core-minimized witness
//   gdx_cli <scenario.gdx> dot           chased pattern as GraphViz DOT
//   gdx_cli <scenario.gdx> check <file>  is the edge-list graph in <file>
//                                        a solution? (src label dst lines,
//                                        "_:n" for nulls)
//
// Try:  ./gdx_cli example22.gdx certain
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "exchange/solution_check.h"
#include "exchange/universal_pair.h"
#include "graph/dot_export.h"
#include "graph/graph_io.h"
#include "solver/certain.h"
#include "solver/core_minimizer.h"
#include "solver/existence.h"
#include "workload/scenario_parser.h"

using namespace gdx;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunChase(Scenario& s, const NreEvaluator& eval) {
  Result<UniversalPair> pair =
      BuildUniversalPair(s.setting, *s.instance, *s.universe, eval);
  if (!pair.ok()) {
    std::printf("chase failed — no solution exists.\n  %s\n",
                pair.status().message().c_str());
    return 0;
  }
  std::printf("%s", pair->ToString(*s.universe).c_str());
  return 0;
}

int RunExists(Scenario& s, const NreEvaluator& eval, bool minimize) {
  ExistenceSolver solver(&eval);
  ExistenceReport report = solver.Decide(s.setting, *s.instance, *s.universe);
  const char* verdict = report.verdict == ExistenceVerdict::kYes ? "YES"
                        : report.verdict == ExistenceVerdict::kNo ? "NO"
                                                                  : "UNKNOWN";
  std::printf("existence: %s  (%s)\n", verdict, report.note.c_str());
  if (!report.witness.has_value()) return 0;
  Graph witness = std::move(*report.witness);
  if (minimize) {
    CoreMinimizeStats stats;
    witness = GreedyCoreMinimize(witness, s.setting, *s.instance, eval,
                                 *s.universe, &stats);
    std::printf("core-minimized: removed %zu edge(s), %zu node(s) in %zu "
                "checks\n",
                stats.edges_removed, stats.nodes_removed, stats.checks);
  }
  std::printf("%s", witness.ToString(*s.universe, *s.alphabet).c_str());
  return 0;
}

int RunCertain(Scenario& s, const NreEvaluator& eval) {
  if (s.query == nullptr) {
    std::fprintf(stderr, "scenario has no 'query' directive\n");
    return 1;
  }
  CertainAnswerOptions options;
  options.existence.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = 16;
  CertainAnswerSolver solver(&eval, options);
  CertainAnswerResult result =
      solver.Compute(s.setting, *s.instance, *s.query, *s.universe);
  if (result.no_solution) {
    std::printf("no solution exists: every tuple is vacuously certain.\n");
    return 0;
  }
  std::printf("certain answers (%zu solution(s) intersected):\n",
              result.solutions_considered);
  for (const auto& tuple : result.tuples) {
    std::printf("  (");
    for (size_t i = 0; i < tuple.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  s.universe->NameOf(tuple[i]).c_str());
    }
    std::printf(")\n");
  }
  return 0;
}

int RunCheck(Scenario& s, const NreEvaluator& eval, const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open graph file: %s\n", path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Graph> g =
      ParseGraphText(buffer.str(), *s.universe, *s.alphabet);
  if (!g.ok()) return Fail(g.status());
  SolutionCheckReport report =
      CheckSolution(s.setting, *s.instance, *g, eval, *s.universe);
  std::printf("graph: %zu nodes, %zu edges\n", g->num_nodes(),
              g->num_edges());
  std::printf("solution: %s\n", report.IsSolution() ? "YES" : "NO");
  for (const std::string& violation : report.violations) {
    std::printf("  violation: %s\n", violation.c_str());
  }
  return report.IsSolution() ? 0 : 3;
}

int RunDot(Scenario& s, const NreEvaluator& eval) {
  GraphPattern pattern =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  if (!s.setting.egds.empty()) {
    EgdChaseResult chased =
        ChasePatternEgds(pattern, s.setting.egds, eval);
    if (chased.failed) {
      std::fprintf(stderr, "chase failed: %s\n",
                   chased.failure_reason.c_str());
      return 1;
    }
  }
  std::printf("%s", ToDot(pattern, *s.universe, *s.alphabet).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <scenario.gdx> "
                 "chase|exists|certain|solve|dot|check [graph-file]\n",
                 argv[0]);
    return 2;
  }
  Result<Scenario> scenario = LoadScenarioFile(argv[1]);
  if (!scenario.ok()) return Fail(scenario.status());
  AutomatonNreEvaluator eval;
  const char* command = argv[2];
  if (std::strcmp(command, "check") == 0) {
    if (argc != 4) {
      std::fprintf(stderr, "usage: %s <scenario.gdx> check <graph-file>\n",
                   argv[0]);
      return 2;
    }
    return RunCheck(*scenario, eval, argv[3]);
  }
  if (std::strcmp(command, "chase") == 0) {
    return RunChase(*scenario, eval);
  }
  if (std::strcmp(command, "exists") == 0) {
    return RunExists(*scenario, eval, /*minimize=*/false);
  }
  if (std::strcmp(command, "solve") == 0) {
    return RunExists(*scenario, eval, /*minimize=*/true);
  }
  if (std::strcmp(command, "certain") == 0) {
    return RunCertain(*scenario, eval);
  }
  if (std::strcmp(command, "dot") == 0) {
    return RunDot(*scenario, eval);
  }
  std::fprintf(stderr, "unknown command: %s\n", command);
  return 2;
}
