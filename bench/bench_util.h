#ifndef GDX_BENCH_BENCH_UTIL_H_
#define GDX_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>

/// Every bench binary reproduces its paper artifact first (so the harness
/// output doubles as the experiment record), then runs the timing sweeps.
/// Usage:  GDX_BENCH_MAIN(PrintReproArtifact);
#define GDX_BENCH_MAIN(repro_fn)                                    \
  int main(int argc, char** argv) {                                 \
    std::printf("################ reproduction artifact "           \
                "################\n");                              \
    repro_fn();                                                     \
    std::printf("################ timing sweeps "                   \
                "########################\n");                      \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {     \
      return 1;                                                     \
    }                                                               \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }

#endif  // GDX_BENCH_BENCH_UTIL_H_
