// E8 / Example 2.2 certain answers + Corollaries 4.2/4.4: reproduces
//   cert_Ω(Q,I)  = {(c1,c1),(c1,c3),(c3,c1),(c3,c3)}
//   cert_Ω′(Q,I) = {(c1,c1),(c3,c3)}
// and the coNP-shaped membership check on the Theorem 4.1 family.
// Timing: enumeration-based certain answers vs the pattern-based
// under-approximation (ablation), and IsCertain on the reduction family.
#include "bench_util.h"

#include "chase/pattern_chase.h"
#include "engine/exchange_engine.h"
#include "reduction/sat_encoding.h"
#include "sat/gen.h"
#include "solver/certain.h"
#include "workload/flights.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

void PrintAnswers(const Scenario& s, const CertainAnswerResult& r) {
  std::printf("  { ");
  for (const auto& t : r.tuples) {
    std::printf("(%s,%s) ", s.universe->NameOf(t[0]).c_str(),
                s.universe->NameOf(t[1]).c_str());
  }
  std::printf("}  [%zu solutions intersected]\n", r.solutions_considered);
}

void PrintRepro() {
  CertainAnswerOptions options;
  options.existence.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = 12;
  CertainAnswerSolver solver(&eval, options);

  Scenario omega = MakeExample22Scenario(FlightConstraintMode::kEgd);
  std::printf("cert_Omega(Q, I)   (paper: (c1,c1) (c1,c3) (c3,c1) "
              "(c3,c3)):\n");
  PrintAnswers(omega, solver.Compute(omega.setting, *omega.instance,
                                     *omega.query, *omega.universe));

  Scenario prime = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  std::printf("cert_Omega'(Q, I)  (paper: (c1,c1) (c3,c3)):\n");
  PrintAnswers(prime, solver.Compute(prime.setting, *prime.instance,
                                     *prime.query, *prime.universe));

  // Corollary 4.2 membership on rho0 (satisfiable -> not certain).
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kEgd);
  CnreQuery query;
  VarId x1 = query.InternVar("x1");
  VarId x2 = query.InternVar("x2");
  query.AddAtom(Term::Var(x1), Corollary42Query(*enc), Term::Var(x2));
  query.SetHead({x1, x2});
  bool certain = CertainAnswerSolver(&eval).IsCertain(
      enc->setting, *enc->instance, query, {enc->c1, enc->c2}, universe);
  std::printf("Cor 4.2: (c1,c2) in cert(a.a) for satisfiable rho0: %s "
              "(paper: no — certain iff rho unsatisfiable)\n",
              certain ? "YES (bug)" : "no");
}

void BM_CertainAnswersEgd(benchmark::State& state) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  CertainAnswerOptions options;
  options.existence.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = static_cast<size_t>(state.range(0));
  CertainAnswerSolver solver(&eval, options);
  size_t tuples = 0;
  for (auto _ : state) {
    CertainAnswerResult r =
        solver.Compute(s.setting, *s.instance, *s.query, *s.universe);
    benchmark::DoNotOptimize(r);
    tuples = r.tuples.size();
  }
  state.counters["certain_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_CertainAnswersEgd)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_CertainAnswersSameAs(benchmark::State& state) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  CertainAnswerOptions options;
  options.existence.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = static_cast<size_t>(state.range(0));
  CertainAnswerSolver solver(&eval, options);
  for (auto _ : state) {
    CertainAnswerResult r =
        solver.Compute(s.setting, *s.instance, *s.query, *s.universe);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CertainAnswersSameAs)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// The same computation through the ExchangeEngine: one Solve yields the
/// existence verdict AND the certain answers, with the answer memo
/// amortizing repeated evaluation over recurring solution graphs.
void BM_EngineCertainAnswersEgd(benchmark::State& state) {
  EngineOptions options;
  options.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = static_cast<size_t>(state.range(0));
  ExchangeEngine engine(options);
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  size_t tuples = 0;
  for (auto _ : state) {
    Result<ExchangeOutcome> outcome = engine.Solve(s);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok() && outcome->certain.has_value()) {
      tuples = outcome->certain->tuples.size();
    }
  }
  state.counters["certain_tuples"] = static_cast<double>(tuples);
  state.counters["cache_hits"] =
      static_cast<double>(engine.cache().stats().hits());
}
BENCHMARK(BM_EngineCertainAnswersEgd)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// ISSUE 2 tentpole: the same engine solve with the solution enumeration
/// (and bounded search) fanned over intra-solve workers. Args =
/// {max_solutions, workers}; outputs are byte-identical across worker
/// counts (asserted in intra_solve_test), only wall time moves. Cache off
/// so every iteration re-runs the full enumeration it is timing.
void BM_EngineCertainAnswersEgdIntra(benchmark::State& state) {
  EngineOptions options;
  options.instantiation.max_witnesses_per_edge = 4;
  options.max_solutions = static_cast<size_t>(state.range(0));
  options.intra_solve_threads = static_cast<size_t>(state.range(1));
  options.enable_cache = false;
  ExchangeEngine engine(options);
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  size_t tuples = 0;
  for (auto _ : state) {
    Result<ExchangeOutcome> outcome = engine.Solve(s);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok() && outcome->certain.has_value()) {
      tuples = outcome->certain->tuples.size();
    }
  }
  state.counters["certain_tuples"] = static_cast<double>(tuples);
  state.counters["workers"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_EngineCertainAnswersEgdIntra)
    ->Args({16, 1})->Args({16, 2})->Args({16, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Ablation: pattern-based certain answers (naive evaluation over the
/// definite subgraph) — polynomial, no solution enumeration.
void BM_PatternCertainAnswers(benchmark::State& state) {
  FlightWorkloadParams params;
  params.num_flights = static_cast<size_t>(state.range(0));
  params.mode = FlightConstraintMode::kNone;
  Scenario s = MakeFlightScenario(params);
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  for (auto _ : state) {
    auto answers = PatternCertainAnswers(pi, *s.query, eval);
    benchmark::DoNotOptimize(answers);
  }
}
BENCHMARK(BM_PatternCertainAnswers)->Arg(10)->Arg(40)->Arg(160)
    ->Unit(benchmark::kMillisecond);

/// IsCertain on the Theorem 4.1 family (Cor 4.2's coNP shape): the
/// counterexample search must consider the whole 2^n candidate space on
/// certain instances (unsat), but exits early on non-certain ones (sat).
void BM_IsCertainReduction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool satisfiable = state.range(1) == 1;
  Rng rng(7);
  CnfFormula rho;
  if (satisfiable) {
    rho = PlantedKSat(n, 3 * n, 3, rng);
  } else {
    rho = RandomKSat(n > 3 ? n - 1 : 2, 2 * n, 3, rng);
    rho.set_num_vars(n);
    rho.AddClause({n});
    rho.AddClause({-n});
  }
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(rho, universe, ReductionMode::kEgd);
  CnreQuery query;
  VarId x1 = query.InternVar("x1");
  VarId x2 = query.InternVar("x2");
  query.AddAtom(Term::Var(x1), Corollary42Query(*enc), Term::Var(x2));
  query.SetHead({x1, x2});
  CertainAnswerOptions options;
  options.existence.instantiation.max_edges_per_witness = 1;
  options.existence.instantiation.max_witnesses_per_edge = 2;
  options.max_solutions = 4;
  CertainAnswerSolver solver(&eval, options);
  for (auto _ : state) {
    bool certain = solver.IsCertain(enc->setting, *enc->instance, query,
                                    {enc->c1, enc->c2}, universe);
    benchmark::DoNotOptimize(certain);
  }
}
BENCHMARK(BM_IsCertainReduction)
    ->Args({4, 1})->Args({6, 1})->Args({8, 1})
    ->Args({4, 0})->Args({6, 0})->Args({8, 0})
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
