// BM_ServeThroughput: round-trip latency of the resident exchange
// service (ISSUE 7) — a client pipelines scenarios over a unix socket
// into an in-process ExchangeServer whose workers share the sharded
// warm cache. Exports serve_p50_ns / serve_p99_ns user counters from
// the server's own serve.request_ns histogram; scripts/bench_diff.py
// gates any percentile-shaped counter, so a latency regression fails
// the bench-smoke CI job just like a time/op regression.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "obs/stats_registry.h"
#include "serve/client.h"
#include "serve/server.h"

namespace gdx {
namespace {

const char kBenchScenario[] = R"(relation Flight/3
relation Hotel/2
fact Flight(01, c1, c2)
fact Flight(02, c3, c2)
fact Hotel(01, hx)
fact Hotel(01, hy)
fact Hotel(02, hx)
stgd Flight(x1,x2,x3), Hotel(x1,x4) ->
     (x2, f . f*, y), (y, h, x4), (y, f . f*, x3)
egd (x1, h, x3), (x2, h, x3) -> x1 = x2
query (x1, f . f* [h] . f- . (f-)*, x2) -> x1, x2
)";

const char kBenchVariant[] = R"(relation Flight/3
relation Hotel/2
fact Flight(11, d1, d2)
fact Hotel(11, hz)
stgd Flight(x1,x2,x3), Hotel(x1,x4) ->
     (x2, f, y), (y, h, x4)
query (x1, f [h], x2) -> x1, x2
)";

void BM_ServeThroughput(benchmark::State& state) {
  const size_t num_workers = static_cast<size_t>(state.range(0));
  const std::string socket_path =
      "/tmp/gdx_bench_serve_" +
      std::to_string(static_cast<long>(::getpid())) + ".sock";
  obs::StatsRegistry registry;
  serve::ServeOptions options;
  options.socket_path = socket_path;
  options.num_workers = num_workers;
  options.queue_capacity = 256;
  options.stats = &registry;
  options.engine.instantiation.max_witnesses_per_edge = 3;
  options.engine.max_solutions = 16;
  serve::ExchangeServer server(std::move(options));
  Status started = server.Start();
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }
  serve::ExchangeClient client;
  Status connected = client.ConnectUnix(socket_path);
  if (!connected.ok()) {
    state.SkipWithError(connected.ToString().c_str());
    return;
  }

  const std::vector<std::string> corpus = {kBenchScenario, kBenchVariant};
  constexpr size_t kWindow = 16;
  uint64_t next_id = 0;
  size_t outstanding = 0;
  uint64_t requests = 0;
  for (auto _ : state) {
    while (outstanding < kWindow) {
      Status sent = client.SendRequest(
          next_id, corpus[next_id % corpus.size()]);
      if (!sent.ok()) {
        state.SkipWithError(sent.ToString().c_str());
        return;
      }
      ++next_id;
      ++outstanding;
    }
    serve::ClientReply reply;
    Status read = client.ReadReply(&reply);
    if (!read.ok()) {
      state.SkipWithError(read.ToString().c_str());
      return;
    }
    if (!reply.is_error) ++requests;
    --outstanding;
  }
  // Flush the window so the drain below has nothing in flight.
  while (outstanding > 0) {
    serve::ClientReply reply;
    if (!client.ReadReply(&reply).ok()) break;
    --outstanding;
  }
  client.Shutdown();
  server.Wait();

  state.SetItemsProcessed(static_cast<int64_t>(requests));
  for (const auto& [name, snapshot] : registry.HistogramValues()) {
    if (name == "serve.request_ns") {
      state.counters["serve_p50_ns"] = static_cast<double>(
          snapshot.ValueAtQuantile(0.50));
      state.counters["serve_p99_ns"] = static_cast<double>(
          snapshot.ValueAtQuantile(0.99));
    }
  }
  ::unlink(socket_path.c_str());
}

BENCHMARK(BM_ServeThroughput)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gdx

BENCHMARK_MAIN();
