// E6 / Figure 6 (Example 5.2): the adapted chase succeeds on
//   R(c1), P(c2),  R(x) ∧ P(y) → (x, a·(b*+c*)·a, y),  (x, a+b+c, y) → x=y
// yet NO solution exists. The bounded search proves the "no" by exhausting
// every witness combination; the chase alone stays inconclusive.
// Timing: refutation cost vs witness budget (more witnesses = more
// candidates to exhaust).
#include "bench_util.h"

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "solver/existence.h"
#include "workload/flights.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

void PrintRepro() {
  Scenario s = MakeExample52Scenario();
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  std::printf("Example 5.2 pattern (Figure 6a):\n%s",
              pi.ToString(*s.universe, *s.alphabet).c_str());
  GraphPattern chased = pi;
  EgdChaseResult chase = ChasePatternEgds(chased, s.setting.egds, eval);
  std::printf("adapted chase: failed=%s, merges=%zu "
              "(paper: succeeds — yet no solution exists)\n",
              chase.failed ? "yes" : "no", chase.merges);

  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kBoundedSearch;
  ExistenceReport report = ExistenceSolver(&eval, options)
                               .Decide(s.setting, *s.instance, *s.universe);
  std::printf("bounded search verdict: %s after %zu candidates "
              "(paper: no solution)\n",
              report.verdict == ExistenceVerdict::kNo ? "NO" : "yes/unknown",
              report.candidates_tried);

  ExistenceOptions chase_only;
  chase_only.strategy = ExistenceStrategy::kChaseRefute;
  ExistenceReport chase_report =
      ExistenceSolver(&eval, chase_only)
          .Decide(s.setting, *s.instance, *s.universe);
  std::printf("chase-only verdict:     %s (chase success must not be read "
              "as existence — §5)\n",
              chase_report.verdict == ExistenceVerdict::kUnknown
                  ? "UNKNOWN"
                  : "decided?!");
}

/// Refuting Example 5.2 with increasing witness budgets: candidate count
/// (and time) grows with the budget while the verdict stays "no".
void BM_RefutationVsWitnessBudget(benchmark::State& state) {
  Scenario s = MakeExample52Scenario();
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kBoundedSearch;
  options.instantiation.max_edges_per_witness =
      static_cast<size_t>(state.range(0));
  options.instantiation.max_witnesses_per_edge =
      static_cast<size_t>(state.range(1));
  size_t candidates = 0;
  for (auto _ : state) {
    ExistenceReport report = ExistenceSolver(&eval, options)
                                 .Decide(s.setting, *s.instance,
                                         *s.universe);
    benchmark::DoNotOptimize(report);
    candidates = report.candidates_tried;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_RefutationVsWitnessBudget)
    ->Args({2, 2})->Args({4, 4})->Args({6, 8})->Args({8, 16})
    ->Unit(benchmark::kMillisecond);

/// The (incomplete but cheap) adapted chase on the same input.
void BM_AdaptedChaseOnly(benchmark::State& state) {
  Scenario s = MakeExample52Scenario();
  for (auto _ : state) {
    GraphPattern pi =
        ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
    EgdChaseResult result = ChasePatternEgds(pi, s.setting.egds, eval);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AdaptedChaseOnly)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
