// E1 / Figure 1: G1, G2 are solutions under Ω (egd), G3 under Ω′ (sameAs),
// and the example's query answer sets JQK_G1 / JQK_G2.
// Timing: solution checking throughput as the Flight/Hotel workload grows.
#include "bench_util.h"

#include "exchange/solution_check.h"
#include "graph/cnre.h"
#include "solver/existence.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

void PrintRepro() {
  Scenario omega = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Graph g1 = BuildFigure1G1(omega);
  Graph g2 = BuildFigure1G2(omega);
  std::printf("Figure 1 under Omega (egd):\n");
  std::printf("  G1 solution: %s   (paper: yes)\n",
              IsSolution(omega.setting, *omega.instance, g1, eval,
                         *omega.universe)
                  ? "yes"
                  : "NO");
  std::printf("  G2 solution: %s   (paper: yes)\n",
              IsSolution(omega.setting, *omega.instance, g2, eval,
                         *omega.universe)
                  ? "yes"
                  : "NO");
  std::printf("  |JQK_G1| = %zu (paper: 4), |JQK_G2| = %zu (paper: 9)\n",
              EvaluateCnre(*omega.query, g1, eval).size(),
              EvaluateCnre(*omega.query, g2, eval).size());

  Scenario prime = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  Graph g3 = BuildFigure1G3(prime);
  std::printf("Figure 1 under Omega' (sameAs):\n");
  std::printf("  G3 solution: %s   (paper: yes)\n",
              IsSolution(prime.setting, *prime.instance, g3, eval,
                         *prime.universe)
                  ? "yes"
                  : "NO");
  Scenario cross = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Graph g3_egd = BuildFigure1G3(cross);
  std::printf("  G3 under Omega (egd): %s   (paper: not a solution)\n",
              IsSolution(cross.setting, *cross.instance, g3_egd, eval,
                         *cross.universe)
                  ? "YES (bug)"
                  : "no");
}

/// Checking a verified canonical solution for a generated workload.
void BM_SolutionCheck(benchmark::State& state) {
  FlightWorkloadParams params;
  params.num_flights = static_cast<size_t>(state.range(0));
  params.num_hotels = params.num_flights / 4 + 2;
  params.num_cities = params.num_flights / 3 + 3;
  params.mode = FlightConstraintMode::kEgd;
  Scenario s = MakeFlightScenario(params);
  ExistenceOptions options;
  options.instantiation.max_witnesses_per_edge = 2;
  ExistenceReport report = ExistenceSolver(&eval, options)
                               .Decide(s.setting, *s.instance, *s.universe);
  if (!report.witness.has_value()) {
    state.SkipWithError("workload admits no solution for this seed");
    return;
  }
  const Graph& g = *report.witness;
  for (auto _ : state) {
    bool ok = IsSolution(s.setting, *s.instance, g, eval, *s.universe);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["graph_edges"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_SolutionCheck)->Arg(10)->Arg(20)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

/// Query evaluation on the Figure 1 graphs (micro).
void BM_QueryOnFigure1(benchmark::State& state) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Graph g = state.range(0) == 1 ? BuildFigure1G1(s) : BuildFigure1G2(s);
  for (auto _ : state) {
    auto answers = EvaluateCnre(*s.query, g, eval);
    benchmark::DoNotOptimize(answers);
  }
}
BENCHMARK(BM_QueryOnFigure1)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
