// E2 / Figure 2: the §3.1 single-symbol fragment lowered to relational
// data exchange; the chased solution for Example 3.1 (7 nodes, 7 edges
// after the egd merged the two hx-cities).
// Timing: relational chase scaling on generated single-symbol workloads.
#include "bench_util.h"

#include "chase/relational_lowering.h"
#include "exchange/parser.h"
#include "workload/flights.h"

namespace gdx {
namespace {

void PrintRepro() {
  Scenario s = MakeExample31Scenario();
  RelChaseStats stats;
  Result<Graph> g =
      RunLoweredExchange(s.setting, *s.instance, *s.universe, &stats);
  if (!g.ok()) {
    std::printf("chase failed: %s\n", g.status().ToString().c_str());
    return;
  }
  std::printf("Example 3.1 chased solution (paper Figure 2: 7 nodes, "
              "7 edges, one egd merge):\n");
  std::printf("  nodes=%zu edges=%zu merges=%zu triggers=%zu\n",
              g->num_nodes(), g->num_edges(), stats.merges,
              stats.triggers_fired);
  std::printf("%s", g->ToString(*s.universe, *s.alphabet).c_str());
}

/// Builds a generated single-symbol (§3.1) scenario of the given size.
Scenario MakeRestrictedWorkload(size_t flights, uint64_t seed) {
  Scenario s;
  s.universe = std::make_unique<Universe>();
  s.source_schema = std::make_unique<Schema>();
  s.alphabet = std::make_unique<Alphabet>();
  (void)s.source_schema->AddRelation("Flight", 3);
  (void)s.source_schema->AddRelation("Hotel", 2);
  s.instance = std::make_unique<Instance>(s.source_schema.get());
  s.setting.source_schema = s.source_schema.get();
  s.setting.alphabet = s.alphabet.get();
  Result<StTgd> tgd = ParseStTgd(
      "Flight(x1, x2, x3), Hotel(x1, x4) -> "
      "(x2, f, y), (y, h, x4), (y, f, x3)",
      s.source_schema.get(), *s.alphabet, *s.universe);
  s.setting.st_tgds.push_back(std::move(tgd).value());
  Result<TargetEgd> egd = ParseTargetEgd(
      "(x1, h, x3), (x2, h, x3) -> x1 = x2", *s.alphabet, *s.universe);
  s.setting.egds.push_back(std::move(egd).value());

  Rng rng(seed);
  RelationId flight = s.source_schema->Find("Flight").value();
  RelationId hotel = s.source_schema->Find("Hotel").value();
  size_t cities = flights / 2 + 2;
  size_t hotels = flights / 3 + 2;
  for (size_t i = 0; i < flights; ++i) {
    std::string id = "fl" + std::to_string(i);
    (void)s.instance->AddFact(
        flight,
        {s.universe->MakeConstant(id),
         s.universe->MakeConstant(
             "city" + std::to_string(rng.NextU64() % cities)),
         s.universe->MakeConstant(
             "city" + std::to_string(rng.NextU64() % cities))});
    for (int k = 0; k < 2; ++k) {
      (void)s.instance->AddFact(
          hotel, {s.universe->MakeConstant(id),
                  s.universe->MakeConstant(
                      "hotel" + std::to_string(rng.NextU64() % hotels))});
    }
  }
  return s;
}

void BM_LoweredExchange(benchmark::State& state) {
  const size_t flights = static_cast<size_t>(state.range(0));
  size_t merges = 0;
  size_t facts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Scenario s = MakeRestrictedWorkload(flights, 42);
    state.ResumeTiming();
    RelChaseStats stats;
    Result<Graph> g =
        RunLoweredExchange(s.setting, *s.instance, *s.universe, &stats);
    benchmark::DoNotOptimize(g);
    merges = stats.merges;
    facts = stats.facts_added;
  }
  state.counters["merges"] = static_cast<double>(merges);
  state.counters["facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_LoweredExchange)
    ->Arg(20)->Arg(40)->Arg(80)->Arg(160)->Arg(320)
    ->Unit(benchmark::kMillisecond);

/// Ablation: s-t chase only (no egds) at the same sizes.
void BM_StChaseOnly(benchmark::State& state) {
  const size_t flights = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Scenario s = MakeRestrictedWorkload(flights, 42);
    s.setting.egds.clear();
    state.ResumeTiming();
    Result<Graph> g = RunLoweredExchange(s.setting, *s.instance,
                                         *s.universe, nullptr);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_StChaseOnly)
    ->Arg(20)->Arg(80)->Arg(320)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
