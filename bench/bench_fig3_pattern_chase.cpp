// E3 / Figure 3: the universal representative chased for Example 2.2
// (8 nodes incl. nulls N1..N3, 9 NRE edges) — §3.2.
// Timing: pattern chase scaling and homomorphism (Rep membership) checks.
#include "bench_util.h"

#include "chase/pattern_chase.h"
#include "pattern/homomorphism.h"
#include "pattern/witness.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

void PrintRepro() {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kNone);
  PatternChaseStats stats;
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe, &stats);
  std::printf("Example 3.2 universal representative (paper Figure 3: "
              "nulls N1..N3, f.f* and h edges):\n%s",
              pi.ToString(*s.universe, *s.alphabet).c_str());
  Graph g1 = BuildFigure1G1(s);
  Graph g2 = BuildFigure1G2(s);
  std::printf("pattern -> G1 homomorphism: %s (paper: exists)\n",
              InRep(pi, g1, eval) ? "exists" : "MISSING");
  std::printf("pattern -> G2 homomorphism: %s (paper: exists)\n",
              InRep(pi, g2, eval) ? "exists" : "MISSING");
}

void BM_PatternChase(benchmark::State& state) {
  FlightWorkloadParams params;
  params.num_flights = static_cast<size_t>(state.range(0));
  params.num_hotels = params.num_flights / 3 + 2;
  params.num_cities = params.num_flights / 2 + 2;
  params.mode = FlightConstraintMode::kNone;
  size_t edges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Scenario s = MakeFlightScenario(params);
    state.ResumeTiming();
    GraphPattern pi =
        ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
    benchmark::DoNotOptimize(pi);
    edges = pi.num_edges();
  }
  state.counters["pattern_edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_PatternChase)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800)
    ->Unit(benchmark::kMillisecond);

/// Rep membership: pattern -> canonical instantiation homomorphism.
void BM_RepMembership(benchmark::State& state) {
  FlightWorkloadParams params;
  params.num_flights = static_cast<size_t>(state.range(0));
  params.mode = FlightConstraintMode::kNone;
  Scenario s = MakeFlightScenario(params);
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  PatternInstantiator inst(&pi, s.universe.get(), {});
  Result<Graph> g = inst.InstantiateCanonical();
  if (!g.ok()) {
    state.SkipWithError("instantiation failed");
    return;
  }
  for (auto _ : state) {
    bool in_rep = InRep(pi, *g, eval);
    benchmark::DoNotOptimize(in_rep);
  }
}
BENCHMARK(BM_RepMembership)->Arg(5)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
