// E9 / §4.2 + Proposition 4.3: with sameAs constraints, existence of
// solutions is tractable (always yes, constructively) while certain
// answers stay coNP-hard. Reproduces the sameAs query membership on the
// reduction family and contrasts sameAs-existence (polynomial) with
// egd-existence (exponential bounded search) on the same formulas.
#include "bench_util.h"

#include "chase/sameas_completion.h"
#include "reduction/sat_encoding.h"
#include "sat/dpll.h"
#include "sat/gen.h"
#include "solver/certain.h"
#include "solver/existence.h"
#include "solver/sameas_engine.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

void PrintRepro() {
  // Existence is trivial for sameAs-only settings: the engine constructs
  // a verified solution for Ω′ρ0 without search.
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kSameAs);
  Result<Graph> solution = SameAsEngine::TrivialSolution(
      enc->setting, *enc->instance, universe, eval);
  std::printf("Prop 4.3 setting Omega'_rho0: trivial existence %s "
              "(paper: solutions always exist)\n",
              solution.ok() ? "constructed + verified" : "FAILED");

  // (c1,c2) in cert(sameAs) iff rho unsatisfiable.
  for (bool satisfiable : {true, false}) {
    CnfFormula rho;
    if (satisfiable) {
      rho = Rho0();
    } else {
      rho = CnfFormula(2);
      rho.AddClause({1});
      rho.AddClause({-1});
      rho.AddClause({2});
      rho.AddClause({-2});
    }
    Universe u2;
    Result<SatEncodedExchange> e2 =
        EncodeSatToSetting(rho, u2, ReductionMode::kSameAs);
    CnreQuery query;
    VarId x1 = query.InternVar("x1");
    VarId x2 = query.InternVar("x2");
    query.AddAtom(Term::Var(x1), Proposition43Query(*e2), Term::Var(x2));
    query.SetHead({x1, x2});
    bool certain = CertainAnswerSolver(&eval).IsCertain(
        e2->setting, *e2->instance, query, {e2->c1, e2->c2}, u2);
    std::printf("  rho %s: (c1,c2) in cert(sameAs) = %s (paper: %s)\n",
                satisfiable ? "SAT  " : "UNSAT", certain ? "yes" : "no",
                satisfiable ? "no" : "yes");
  }

  // Example 2.2 sameAs quotient recovers the egd-style answers.
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  Graph g3 = BuildFigure1G3(s);
  Graph quotient = SameAsEngine::QuotientGraph(g3, *s.alphabet);
  std::printf("G3 quotient: %zu nodes (G3 had %zu) — sameAs class "
              "collapsed\n",
              quotient.num_nodes(), g3.num_nodes());
}

/// Tractable existence: sameAs-only settings of growing formula size.
/// Expect polynomial growth (chase + canonical instantiation + completion).
void BM_SameAsExistence(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  CnfFormula rho = RandomKSat(n, 3 * n, 3, rng);
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(rho, universe, ReductionMode::kSameAs);
  for (auto _ : state) {
    Result<Graph> solution = SameAsEngine::TrivialSolution(
        enc->setting, *enc->instance, universe, eval);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_SameAsExistence)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

/// Contrast: the egd flavor of the SAME formula needs the exponential
/// bounded search (or the DPLL fast path) — §4.1 vs §4.2 side by side.
void BM_EgdExistenceSameFormula(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  CnfFormula rho = RandomKSat(n, 3 * n, 3, rng);
  // Pin to unsatisfiable so the bounded search exhausts fully.
  rho.set_num_vars(n + 1);
  rho.AddClause({n + 1});
  rho.AddClause({-(n + 1)});
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(rho, universe, ReductionMode::kEgd);
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kBoundedSearch;
  options.instantiation.max_edges_per_witness = 1;
  options.instantiation.max_witnesses_per_edge = 2;
  for (auto _ : state) {
    ExistenceReport report = ExistenceSolver(&eval, options)
                                 .Decide(enc->setting, *enc->instance,
                                         universe);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_EgdExistenceSameFormula)
    ->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

/// sameAs completion scaling on generated Flight/Hotel workloads.
void BM_SameAsCompletion(benchmark::State& state) {
  FlightWorkloadParams params;
  params.num_flights = static_cast<size_t>(state.range(0));
  params.num_hotels = params.num_flights / 4 + 2;
  params.mode = FlightConstraintMode::kSameAs;
  size_t added = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Scenario s = MakeFlightScenario(params);
    Result<Graph> g = SameAsEngine::TrivialSolution(
        s.setting, *s.instance, *s.universe, eval);
    if (!g.ok()) {
      state.SkipWithError("trivial solution failed");
      return;
    }
    // Strip sameAs edges to re-run completion in isolation.
    Graph bare;
    SymbolId same_as = s.alphabet->SameAsSymbol();
    for (const Edge& e : g->edges()) {
      if (e.label != same_as) bare.AddEdge(e.src, e.label, e.dst);
    }
    state.ResumeTiming();
    SameAsCompletionStats stats;
    Status st = CompleteSameAs(bare, s.setting.sameas, *s.alphabet, eval,
                               &stats);
    benchmark::DoNotOptimize(st);
    added = stats.edges_added;
  }
  state.counters["sameas_edges"] = static_cast<double>(added);
}
BENCHMARK(BM_SameAsCompletion)->Arg(10)->Arg(40)->Arg(160)
    ->Unit(benchmark::kMillisecond);

/// Quotient-graph construction scaling.
void BM_QuotientGraph(benchmark::State& state) {
  FlightWorkloadParams params;
  params.num_flights = static_cast<size_t>(state.range(0));
  params.num_hotels = params.num_flights / 8 + 2;  // heavy sharing
  params.mode = FlightConstraintMode::kSameAs;
  Scenario s = MakeFlightScenario(params);
  Result<Graph> g = SameAsEngine::TrivialSolution(s.setting, *s.instance,
                                                  *s.universe, eval);
  if (!g.ok()) {
    state.SkipWithError("trivial solution failed");
    return;
  }
  for (auto _ : state) {
    Graph quotient = SameAsEngine::QuotientGraph(*g, *s.alphabet);
    benchmark::DoNotOptimize(quotient);
  }
}
BENCHMARK(BM_QuotientGraph)->Arg(20)->Arg(80)->Arg(320)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
