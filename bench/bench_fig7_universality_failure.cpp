// E7 / Figure 7 + Proposition 5.3: a graph admitting a homomorphism from
// the chased (egd-merged) pattern that is NOT a solution — graph patterns
// alone cannot be universal representatives once egds are present; the
// pair (pattern, egds) classifies correctly.
// Timing: hom-check + egd-check on increasingly corrupted graphs.
#include "bench_util.h"

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "exchange/solution_check.h"
#include "pattern/homomorphism.h"
#include "pattern/witness.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

void PrintRepro() {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  EgdChaseResult chase = ChasePatternEgds(pi, s.setting.egds, eval);
  std::printf("Figure 5 pattern chased (failed=%s)\n",
              chase.failed ? "yes" : "no");
  Graph fig7 = BuildFigure7(s);
  std::printf("Figure 7 graph (G1 + stray h edges at c2): %zu nodes, %zu "
              "edges\n",
              fig7.num_nodes(), fig7.num_edges());
  bool hom = InRep(pi, fig7, eval);
  SolutionCheckReport check =
      CheckSolution(s.setting, *s.instance, fig7, eval, *s.universe);
  std::printf("  pattern -> Figure7 homomorphism: %s (paper: exists)\n",
              hom ? "exists" : "MISSING");
  std::printf("  Figure7 egd check: %s (paper: violated => not a "
              "solution)\n",
              check.egds_ok ? "OK?!" : "violated");
  std::printf("  => Rep(pattern) != Sol(I): Proposition 5.3 reproduced; "
              "the pair (pattern, egds) rejects it: %s\n",
              (hom && !check.IsSolution()) ? "yes" : "no");
}

/// The pair-classifier (hom check + egd check) on corrupted instantiations
/// of growing workloads.
void BM_PairClassifier(benchmark::State& state) {
  FlightWorkloadParams params;
  params.num_flights = static_cast<size_t>(state.range(0));
  params.mode = FlightConstraintMode::kEgd;
  Scenario s = MakeFlightScenario(params);
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  EgdChaseResult chase = ChasePatternEgds(pi, s.setting.egds, eval);
  if (chase.failed) {
    state.SkipWithError("workload unsatisfiable for this seed");
    return;
  }
  PatternInstantiator inst(&pi, s.universe.get(), {});
  Result<Graph> g = inst.InstantiateCanonical();
  if (!g.ok()) {
    state.SkipWithError("instantiation failed");
    return;
  }
  // Corrupt: attach every hotel to one extra city (the Figure 7 move).
  Graph corrupted = *g;
  SymbolId h = s.alphabet->Intern("h");
  Value rogue = s.universe->MakeConstant("rogue_city");
  for (const Edge& e : g->edges()) {
    if (e.label == h) corrupted.AddEdge(rogue, h, e.dst);
  }
  for (auto _ : state) {
    bool hom = InRep(pi, corrupted, eval);
    bool sol = IsSolution(s.setting, *s.instance, corrupted, eval,
                          *s.universe);
    benchmark::DoNotOptimize(hom);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_PairClassifier)->Arg(5)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
