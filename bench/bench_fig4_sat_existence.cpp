// E4 / Figure 4 + Theorem 4.1: the 3SAT reduction. Reproduces the ρ0
// artifact (the valuation solution of Figure 4) and demonstrates the
// NP-hardness *shape*: the complete bounded search scales exponentially in
// the number of variables while the DPLL-backed exact solver prunes.
#include "bench_util.h"

#include "engine/thread_pool.h"
#include "exchange/solution_check.h"
#include "reduction/sat_encoding.h"
#include "sat/dpll.h"
#include "sat/gen.h"
#include "solver/existence.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

void PrintRepro() {
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kEgd);
  std::printf("Theorem 4.1 on rho0 = (x1|!x2|x3)&(!x1|x3|!x4):\n");
  std::printf("  |Sigma| = %zu (paper: a + t1..t4 + f1..f4 = 9), egds = %zu "
              "(4 type-* + 2 type-**)\n",
              enc->alphabet->size(), enc->setting.egds.size());
  // The Figure 4 solution: v(x1)=v(x2)=true, v(x3)=v(x4)=false.
  std::vector<bool> v(5, false);
  v[1] = true;
  v[2] = true;
  Graph g = BuildValuationGraph(*enc, v);
  std::printf("  Figure 4 graph (a edge + loops t1,t2,f3,f4): %zu nodes, "
              "%zu edges; solution: %s (paper: yes)\n",
              g.num_nodes(), g.num_edges(),
              IsSolution(enc->setting, *enc->instance, g, eval, universe)
                  ? "yes"
                  : "NO");
  for (ExistenceStrategy strategy : {ExistenceStrategy::kSatBacked,
                                     ExistenceStrategy::kBoundedSearch}) {
    ExistenceOptions options;
    options.strategy = strategy;
    options.instantiation.max_edges_per_witness = 1;
    options.instantiation.max_witnesses_per_edge = 2;
    ExistenceReport report = ExistenceSolver(&eval, options)
                                 .Decide(enc->setting, *enc->instance,
                                         universe);
    std::printf("  existence via %s: %s after %zu candidate(s)\n",
                strategy == ExistenceStrategy::kSatBacked ? "SAT   "
                                                          : "brute ",
                report.verdict == ExistenceVerdict::kYes ? "YES" : "no",
                report.candidates_tried);
  }
}

/// Builds an encoded exchange for a random 3CNF; satisfiable controls
/// whether a planted (SAT) or contradiction-pinned (UNSAT) formula is used.
CnfFormula MakeFormula(int n, bool satisfiable, uint64_t seed) {
  Rng rng(seed);
  if (satisfiable) return PlantedKSat(n, static_cast<int>(n * 4.26), 3, rng);
  CnfFormula f = RandomKSat(n - 1 > 2 ? n - 1 : 2, 2 * n, 3, rng);
  // Pin variable n to both polarities: guaranteed unsatisfiable.
  f.set_num_vars(n);
  f.AddClause({n});
  f.AddClause({-n});
  return f;
}

/// The complete bounded search: candidate space is 2^n witness choices —
/// the Theorem 4.1 hardness made visible. Expect ~2x time per +1 variable
/// on UNSAT inputs (full exhaustion).
void BM_BoundedExistenceUnsat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Universe universe;
  Result<SatEncodedExchange> enc = EncodeSatToSetting(
      MakeFormula(n, /*satisfiable=*/false, 77), universe,
      ReductionMode::kEgd);
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kBoundedSearch;
  options.instantiation.max_edges_per_witness = 1;
  options.instantiation.max_witnesses_per_edge = 2;
  size_t candidates = 0;
  for (auto _ : state) {
    ExistenceReport report = ExistenceSolver(&eval, options)
                                 .Decide(enc->setting, *enc->instance,
                                         universe);
    benchmark::DoNotOptimize(report);
    candidates = report.candidates_tried;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_BoundedExistenceUnsat)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

/// ISSUE 2 tentpole: the same complete exhaustion with the witness-choice
/// odometer fanned over the work-stealing pool. Args = {n, workers}. The
/// verdict, note and candidate count are byte-identical across worker
/// counts (asserted in intra_solve_test); on an M-core machine the
/// 2^n-candidate UNSAT scan approaches M-fold speedup since every
/// candidate is independent. Compare {12,1} vs {12,4} for the headline
/// ratio (expect >= 1.5x at 4 workers on >= 4 cores).
void BM_BoundedExistenceUnsatIntra(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const size_t workers = static_cast<size_t>(state.range(1));
  Universe universe;
  Result<SatEncodedExchange> enc = EncodeSatToSetting(
      MakeFormula(n, /*satisfiable=*/false, 77), universe,
      ReductionMode::kEgd);
  ThreadPool pool(workers > 1 ? workers - 1 : 1);
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kBoundedSearch;
  options.instantiation.max_edges_per_witness = 1;
  options.instantiation.max_witnesses_per_edge = 2;
  options.intra_solve_threads = workers;
  options.intra_pool = workers > 1 ? &pool : nullptr;
  options.parallel_min_ranks = 2;
  size_t candidates = 0;
  for (auto _ : state) {
    ExistenceReport report = ExistenceSolver(&eval, options)
                                 .Decide(enc->setting, *enc->instance,
                                         universe);
    benchmark::DoNotOptimize(report);
    candidates = report.candidates_tried;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["workers"] = static_cast<double>(workers);
}
BENCHMARK(BM_BoundedExistenceUnsatIntra)
    ->Args({10, 1})->Args({10, 2})->Args({10, 4})
    ->Args({12, 1})->Args({12, 2})->Args({12, 4})
    ->Unit(benchmark::kMillisecond)->Iterations(3)->UseRealTime();

/// The DPLL-backed exact solver on the same UNSAT family: near-linear in
/// the encoding size here (unit propagation closes it).
void BM_SatBackedExistenceUnsat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Universe universe;
  Result<SatEncodedExchange> enc = EncodeSatToSetting(
      MakeFormula(n, /*satisfiable=*/false, 77), universe,
      ReductionMode::kEgd);
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kSatBacked;
  for (auto _ : state) {
    ExistenceReport report = ExistenceSolver(&eval, options)
                                 .Decide(enc->setting, *enc->instance,
                                         universe);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SatBackedExistenceUnsat)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(14)->Arg(18)
    ->Unit(benchmark::kMillisecond);

/// Cube-and-conquer SAT existence (ISSUE 2): 2^4 per-worker DPLL cubes on
/// the phase-transition-hard random family. Args = {n, workers}.
void BM_SatBackedExistenceCubesIntra(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const size_t workers = static_cast<size_t>(state.range(1));
  Universe universe;
  Rng rng(55);
  Result<SatEncodedExchange> enc = EncodeSatToSetting(
      RandomKSat(n, static_cast<int>(n * 4.26), 3, rng), universe,
      ReductionMode::kEgd);
  ThreadPool pool(workers > 1 ? workers - 1 : 1);
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kSatBacked;
  options.intra_solve_threads = workers;
  options.intra_pool = workers > 1 ? &pool : nullptr;
  for (auto _ : state) {
    ExistenceReport report = ExistenceSolver(&eval, options)
                                 .Decide(enc->setting, *enc->instance,
                                         universe);
    benchmark::DoNotOptimize(report);
  }
  state.counters["workers"] = static_cast<double>(workers);
}
BENCHMARK(BM_SatBackedExistenceCubesIntra)
    ->Args({18, 1})->Args({18, 2})->Args({18, 4})
    ->Args({22, 1})->Args({22, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Satisfiable (planted) family: both solvers find a witness; the bounded
/// search stops early once a solution verifies.
void BM_SatBackedExistencePlanted(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Universe universe;
  Result<SatEncodedExchange> enc = EncodeSatToSetting(
      MakeFormula(n, /*satisfiable=*/true, 99), universe,
      ReductionMode::kEgd);
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kSatBacked;
  for (auto _ : state) {
    ExistenceReport report = ExistenceSolver(&eval, options)
                                 .Decide(enc->setting, *enc->instance,
                                         universe);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SatBackedExistencePlanted)
    ->Arg(6)->Arg(10)->Arg(14)->Arg(18)
    ->Unit(benchmark::kMillisecond);

/// Raw DPLL on phase-transition random 3SAT (m = 4.26 n): the substrate's
/// own hardness curve, for reference.
void BM_DpllPhaseTransition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(123);
  CnfFormula f = RandomKSat(n, static_cast<int>(n * 4.26), 3, rng);
  DpllSolver solver;
  for (auto _ : state) {
    SatResult r = solver.Solve(f);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DpllPhaseTransition)
    ->Arg(10)->Arg(14)->Arg(18)->Arg(22)->Arg(26)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
