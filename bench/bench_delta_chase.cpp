// ISSUE 9: semi-naive (delta) chase vs the legacy full-round chase on
// million-edge random-graph workloads. The reproduction artifact checks
// that both algorithms produce identical patterns while the delta chase
// skips rules (reliance scheduling); the sweeps time ChaseCompiler::
// Compile under both ChaseAlgorithm values on sparse and dense regimes.
#include "bench_util.h"

#include <memory>

#include "chase/chase_compiler.h"
#include "common/thread_pool.h"
#include "graph/nre_eval.h"
#include "workload/random_graph.h"
#include "workload/scenario.h"

namespace gdx {
namespace {

/// Synthesizes a relational exchange scenario from a random graph: one
/// binary relation per label holding that label's edges, copy st-tgds
/// R_i(x, y) -> (x, l_i, y), one existential tgd deriving a hub null per
/// R_0 fact, two egds that merge only nulls (never constants, so the
/// chase cannot fail), and one dead egd whose label is never derived —
/// the shape that exercises reliance skipping end to end.
struct DeltaWorkload {
  Scenario scenario;
  size_t source_edges = 0;
};

DeltaWorkload MakeDeltaWorkload(size_t num_nodes, size_t num_edges,
                                size_t num_labels, uint64_t seed) {
  DeltaWorkload w;
  Scenario& s = w.scenario;
  s.universe = std::make_unique<Universe>();
  s.alphabet = std::make_unique<Alphabet>();
  s.source_schema = std::make_unique<Schema>();

  RandomGraphParams params;
  params.num_nodes = num_nodes;
  params.num_edges = num_edges;
  params.num_labels = num_labels;
  params.seed = seed;
  Graph g = MakeRandomGraph(params, *s.universe, *s.alphabet);
  w.source_edges = g.num_edges();

  std::vector<RelationId> rels;
  for (size_t i = 0; i < num_labels; ++i) {
    rels.push_back(
        *s.source_schema->AddRelation("R" + std::to_string(i), 2));
  }
  s.instance = std::make_unique<Instance>(s.source_schema.get());
  for (const Edge& e : g.edges()) {
    (void)s.instance->AddFact(rels[e.label], {e.src, e.dst});
  }

  s.setting.source_schema = s.source_schema.get();
  s.setting.alphabet = s.alphabet.get();
  const SymbolId hub = s.alphabet->Intern("hub");
  const SymbolId ghost = s.alphabet->Intern("ghost");

  // Copy tgds: R_i(x, y) -> (x, l_i, y).
  for (size_t i = 0; i < num_labels; ++i) {
    StTgd tgd(s.source_schema.get());
    VarId x = tgd.body.InternVar("x");
    VarId y = tgd.body.InternVar("y");
    tgd.body.AddAtom(RelAtom{rels[i], {Term::Var(x), Term::Var(y)}});
    tgd.head.push_back(CnreAtom{
        Term::Var(x), Nre::Symbol(static_cast<SymbolId>(i)), Term::Var(y)});
    s.setting.st_tgds.push_back(std::move(tgd));
  }
  // Existential tgd: R_0(x, y) -> exists z . (x, hub, z).
  {
    StTgd tgd(s.source_schema.get());
    VarId x = tgd.body.InternVar("x");
    VarId y = tgd.body.InternVar("y");
    VarId z = tgd.body.InternVar("z");  // bound by no body atom
    tgd.body.AddAtom(RelAtom{rels[0], {Term::Var(x), Term::Var(y)}});
    tgd.head.push_back(
        CnreAtom{Term::Var(x), Nre::Symbol(hub), Term::Var(z)});
    s.setting.st_tgds.push_back(std::move(tgd));
  }
  // Egd A: the hub nulls of one source node collapse.
  {
    TargetEgd egd;
    VarId x = egd.body.InternVar("x");
    VarId z1 = egd.body.InternVar("z1");
    VarId z2 = egd.body.InternVar("z2");
    egd.body.AddAtom(Term::Var(x), Nre::Symbol(hub), Term::Var(z1));
    egd.body.AddAtom(Term::Var(x), Nre::Symbol(hub), Term::Var(z2));
    egd.x1 = z1;
    egd.x2 = z2;
    s.setting.egds.push_back(std::move(egd));
  }
  // Egd B: an l_0 edge equates its endpoints' hub nulls — the cascading
  // rule the delta rounds re-join only while hub labels keep changing.
  {
    TargetEgd egd;
    VarId x = egd.body.InternVar("x");
    VarId y = egd.body.InternVar("y");
    VarId z = egd.body.InternVar("z");
    VarId wv = egd.body.InternVar("w");
    egd.body.AddAtom(Term::Var(x), Nre::Symbol(0), Term::Var(y));
    egd.body.AddAtom(Term::Var(x), Nre::Symbol(hub), Term::Var(z));
    egd.body.AddAtom(Term::Var(y), Nre::Symbol(hub), Term::Var(wv));
    egd.x1 = z;
    egd.x2 = wv;
    s.setting.egds.push_back(std::move(egd));
  }
  // Dead egd: `ghost` is derived by no st-tgd head, so the reliance
  // analysis proves this rule can never match and skips it every round.
  {
    TargetEgd egd;
    VarId x1 = egd.body.InternVar("x1");
    VarId x2 = egd.body.InternVar("x2");
    VarId y = egd.body.InternVar("y");
    egd.body.AddAtom(Term::Var(x1), Nre::Symbol(ghost), Term::Var(y));
    egd.body.AddAtom(Term::Var(x2), Nre::Symbol(ghost), Term::Var(y));
    egd.x1 = x1;
    egd.x2 = x2;
    s.setting.egds.push_back(std::move(egd));
  }
  return w;
}

void PrintRepro() {
  AutomatonNreEvaluator eval;
  DeltaWorkload delta_w = MakeDeltaWorkload(2000, 8000, 4, 7);
  DeltaWorkload naive_w = MakeDeltaWorkload(2000, 8000, 4, 7);
  ChaseCompileOptions delta_opts;
  delta_opts.algorithm = ChaseAlgorithm::kDelta;
  ChaseCompileOptions naive_opts;
  naive_opts.algorithm = ChaseAlgorithm::kNaive;
  ChasedScenarioPtr d = ChaseCompiler::Compile(
      delta_w.scenario.setting, *delta_w.scenario.instance,
      *delta_w.scenario.universe, eval, delta_opts);
  ChasedScenarioPtr n = ChaseCompiler::Compile(
      naive_w.scenario.setting, *naive_w.scenario.instance,
      *naive_w.scenario.universe, eval, naive_opts);
  const bool identical =
      d->pattern.ToString(*delta_w.scenario.universe,
                          *delta_w.scenario.alphabet) ==
      n->pattern.ToString(*naive_w.scenario.universe,
                          *naive_w.scenario.alphabet);
  std::printf("delta vs naive pattern (2000 nodes, 8000 edges): %s\n",
              identical ? "byte-identical" : "MISMATCH");
  std::printf("delta stats: rounds=%zu evaluated=%zu skipped=%zu "
              "strata=%zu merges=%zu\n",
              d->delta.delta_rounds, d->delta.evaluated_rules,
              d->delta.skipped_rules, d->delta.strata, d->egd_merges);
}

void RunCompileBench(benchmark::State& state, size_t num_nodes,
                     size_t num_edges, size_t num_labels) {
  const ChaseAlgorithm algorithm = state.range(1) == 0
                                       ? ChaseAlgorithm::kDelta
                                       : ChaseAlgorithm::kNaive;
  AutomatonNreEvaluator eval;
  ThreadPool pool(0);  // hardware concurrency
  size_t skipped = 0, merges = 0, edges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    DeltaWorkload w =
        MakeDeltaWorkload(num_nodes, num_edges, num_labels, 7);
    state.ResumeTiming();
    ChaseCompileOptions options;
    options.algorithm = algorithm;
    options.pool = &pool;
    options.max_workers = 0;  // pool width
    ChasedScenarioPtr artifact = ChaseCompiler::Compile(
        w.scenario.setting, *w.scenario.instance, *w.scenario.universe,
        eval, options);
    benchmark::DoNotOptimize(artifact);
    skipped = artifact->delta.skipped_rules;
    merges = artifact->egd_merges;
    edges = artifact->pattern.num_edges();
  }
  state.counters["skipped_rules"] = static_cast<double>(skipped);
  state.counters["egd_merges"] = static_cast<double>(merges);
  state.counters["pattern_edges"] = static_cast<double>(edges);
}

/// Sparse regime: avg degree 2, 8 labels — the million-node point is the
/// ISSUE 9 headline (arg 0 = nodes, arg 1 = 0 delta / 1 naive).
void BM_DeltaChaseLargeSparse(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  RunCompileBench(state, nodes, nodes * 2, 8);
}
BENCHMARK(BM_DeltaChaseLargeSparse)
    ->ArgsProduct({{1 << 16, 1 << 18, 1 << 20}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/// Dense regime: avg degree 16 over few labels — heavier egd joins per
/// round, more merge cascades.
void BM_DeltaChaseDense(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  RunCompileBench(state, nodes, nodes * 16, 4);
}
BENCHMARK(BM_DeltaChaseDense)
    ->ArgsProduct({{1 << 12, 1 << 14, 1 << 16}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
