// E5 / Figure 5: the adapted egd chase (§5) on Example 2.2's pattern —
// the two hx-hosting cities merge (one null disappears).
// Timing: egd chase scaling with hotel sharing, plus the merge-policy
// ablation (pattern-level vs graph-level chase).
#include "bench_util.h"

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "pattern/witness.h"
#include "workload/flights.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

void PrintRepro() {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  std::printf("before egd chase: %zu nodes, %zu edges (Figure 3)\n",
              pi.num_nodes(), pi.num_edges());
  EgdChaseResult result = ChasePatternEgds(pi, s.setting.egds, eval);
  std::printf("after egd chase:  %zu nodes, %zu edges, %zu merge(s), "
              "failed=%s (paper Figure 5: 7 nodes, 7 edges, N1<-N3)\n",
              pi.num_nodes(), pi.num_edges(), result.merges,
              result.failed ? "yes" : "no");
  std::printf("%s", pi.ToString(*s.universe, *s.alphabet).c_str());
}

/// Hotel sharing drives merge counts: fewer hotels => more shared stops
/// => more cities merged per round.
void BM_PatternEgdChase(benchmark::State& state) {
  FlightWorkloadParams params;
  params.num_flights = 40;
  params.num_cities = 12;
  params.num_hotels = static_cast<size_t>(state.range(0));
  params.mode = FlightConstraintMode::kEgd;
  size_t merges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Scenario s = MakeFlightScenario(params);
    GraphPattern pi =
        ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
    state.ResumeTiming();
    EgdChaseResult result = ChasePatternEgds(pi, s.setting.egds, eval);
    benchmark::DoNotOptimize(result);
    merges = result.merges;
  }
  state.counters["merges"] = static_cast<double>(merges);
}
BENCHMARK(BM_PatternEgdChase)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

/// Ablation: graph-level egd chase on the canonical instantiation of the
/// same workloads (full NRE matching instead of definite-subgraph only).
void BM_GraphEgdChase(benchmark::State& state) {
  FlightWorkloadParams params;
  params.num_flights = 40;
  params.num_cities = 12;
  params.num_hotels = static_cast<size_t>(state.range(0));
  params.mode = FlightConstraintMode::kEgd;
  size_t merges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Scenario s = MakeFlightScenario(params);
    GraphPattern pi =
        ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
    PatternInstantiator inst(&pi, s.universe.get(), {});
    Result<Graph> g = inst.InstantiateCanonical();
    if (!g.ok()) {
      state.SkipWithError("instantiation failed");
      return;
    }
    Graph graph = std::move(*g);
    state.ResumeTiming();
    EgdChaseResult result = ChaseGraphEgds(graph, s.setting.egds, eval);
    benchmark::DoNotOptimize(result);
    merges = result.merges;
  }
  state.counters["merges"] = static_cast<double>(merges);
}
BENCHMARK(BM_GraphEgdChase)
    ->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
