// ISSUE 10 tentpole part 1: component-parallel egd repair at hardware
// scale. The workload is a random bipartite "alias" graph — n labeled
// nulls each pointing via h to a random hub constant, plus random
// null-to-null noise edges — so the functional egd
// (x1, h, x3), (x2, h, x3) -> x1 = x2 induces one independent merge
// component per hub: exactly the fan-out shape the parallel policy
// exploits, with a million-node point for the scaling story. Sequential
// kDeferredRounds is the byte-identical baseline; both enter the
// bench_diff.py-gated artifact so a regression in either is visible
// run-over-run in CI.
#include "bench_util.h"

#include "chase/egd_chase.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "exchange/parser.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

constexpr char kFunctionalEgd[] = "(x1, h, x3), (x2, h, x3) -> x1 = x2";

/// n nulls, n/4 hub constants, one h-edge per null to a random hub and
/// 2n random e-edges between nulls. Total nodes ≈ 1.25 n.
Graph MakeAliasGraph(size_t n, Universe& universe, Alphabet& alphabet,
                     uint64_t seed) {
  SymbolId h = alphabet.Intern("h");
  SymbolId e = alphabet.Intern("e");
  Rng rng(seed);
  std::vector<Value> hubs;
  const size_t num_hubs = n / 4 + 1;
  hubs.reserve(num_hubs);
  for (size_t i = 0; i < num_hubs; ++i) {
    hubs.push_back(universe.MakeConstant("hub" + std::to_string(i)));
  }
  std::vector<Value> nulls;
  nulls.reserve(n);
  for (size_t i = 0; i < n; ++i) nulls.push_back(universe.FreshNull());
  Graph g;
  for (const Value& null : nulls) {
    g.AddEdge(null, h, hubs[rng.NextU64() % num_hubs]);
  }
  for (size_t i = 0; i < 2 * n; ++i) {
    g.AddEdge(nulls[rng.NextU64() % n], e, nulls[rng.NextU64() % n]);
  }
  return g;
}

void RunRepairBench(benchmark::State& state, EgdChasePolicy policy,
                    size_t workers) {
  const size_t n = static_cast<size_t>(state.range(0));
  Universe universe;
  Alphabet alphabet;
  Graph base = MakeAliasGraph(n, universe, alphabet, /*seed=*/41);
  Result<TargetEgd> egd = ParseTargetEgd(kFunctionalEgd, alphabet, universe);
  if (!egd.ok()) {
    state.SkipWithError("egd parse failed");
    return;
  }
  std::vector<TargetEgd> egds;
  egds.push_back(std::move(*egd));
  ThreadPool pool(workers > 1 ? workers - 1 : 0);
  EgdChaseOptions options;
  options.policy = policy;
  options.pool = workers > 1 ? &pool : nullptr;
  options.max_workers = workers;

  EgdChaseResult result;
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = base;  // the chase rewrites in place
    state.ResumeTiming();
    result = ChaseGraphEgds(g, egds, eval, options);
    benchmark::DoNotOptimize(g);
  }
  state.counters["merges"] = static_cast<double>(result.merges);
  state.counters["rounds"] = static_cast<double>(result.rounds);
  state.counters["components"] = static_cast<double>(result.components);
}

void BM_EgdRepairSequential(benchmark::State& state) {
  RunRepairBench(state, EgdChasePolicy::kDeferredRounds, 1);
}
void BM_EgdRepairParallel(benchmark::State& state) {
  RunRepairBench(state, EgdChasePolicy::kParallelComponents,
                 static_cast<size_t>(state.range(1)));
}
BENCHMARK(BM_EgdRepairSequential)
    ->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EgdRepairParallel)
    ->Args({1 << 14, 1})->Args({1 << 14, 4})
    ->Args({1 << 17, 4})
    ->Args({1 << 20, 4})
    ->Unit(benchmark::kMillisecond);

void PrintRepro() {
  Universe universe;
  Alphabet alphabet;
  Graph g = MakeAliasGraph(1 << 10, universe, alphabet, 41);
  Result<TargetEgd> egd = ParseTargetEgd(kFunctionalEgd, alphabet, universe);
  std::vector<TargetEgd> egds;
  egds.push_back(std::move(*egd));
  EgdChaseOptions options;
  options.policy = EgdChasePolicy::kParallelComponents;
  EgdChaseResult result = ChaseGraphEgds(g, egds, eval, options);
  std::printf("alias graph 1024 nulls: %zu merges, %zu components, "
              "%zu rounds, failed=%s\n",
              result.merges, result.components, result.rounds,
              result.failed ? "yes" : "no");
}

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
