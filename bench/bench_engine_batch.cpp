// Engine orchestration bench: batch solving through the ExchangeEngine +
// BatchExecutor (ISSUE tentpole). The repro artifact solves a 32-scenario
// Example-2.2-family batch at 1 and 4 threads and reports the speedup and
// the engine cache counters (expect hits > 0: the batch repeats scenario
// shapes, so NRE evaluations and answer sets recur).
// Timing: batch wall time vs thread count, and single-engine solve
// with the cache enabled vs disabled.
#include "bench_util.h"

#include "engine/batch_executor.h"
#include "engine/exchange_engine.h"
#include "obs/stats_registry.h"
#include "obs/trace.h"
#include "persist/snapshot.h"
#include "workload/flights.h"

namespace gdx {
namespace {

EngineOptions BenchEngineOptions() {
  EngineOptions options;
  options.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = 8;
  return options;
}

/// A 32+ scenario batch: the paper's Example 2.2 in all three constraint
/// flavors plus generated Flight/Hotel workloads, tiled. Repetition is
/// deliberate — it is what the engine cache feeds on.
std::vector<Scenario> MakeBatch(size_t count) {
  std::vector<Scenario> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    switch (i % 5) {
      case 0:
        batch.push_back(MakeExample22Scenario(FlightConstraintMode::kEgd));
        break;
      case 1:
        batch.push_back(
            MakeExample22Scenario(FlightConstraintMode::kSameAs));
        break;
      case 2:
        batch.push_back(MakeExample22Scenario(FlightConstraintMode::kNone));
        break;
      default: {
        FlightWorkloadParams params;
        params.seed = 100 + i % 10;
        params.num_cities = 5;
        params.num_flights = 6;
        params.num_hotels = 3;
        params.mode = i % 5 == 3 ? FlightConstraintMode::kSameAs
                                 : FlightConstraintMode::kNone;
        batch.push_back(MakeFlightScenario(params));
        break;
      }
    }
  }
  return batch;
}

double RunBatchOnce(size_t threads, size_t count, bool print) {
  BatchOptions options;
  options.num_threads = threads;
  options.engine = BenchEngineOptions();
  std::vector<Scenario> batch = MakeBatch(count);
  BatchExecutor executor(options);
  BatchReport report = executor.SolveAll(batch);
  if (print) std::printf("%s", report.Summary().c_str());
  return report.wall_seconds;
}

void PrintRepro() {
  const size_t kScenarios = 32;
  std::printf("batch of %zu scenarios, 1 thread:\n", kScenarios);
  double t1 = RunBatchOnce(1, kScenarios, true);
  std::printf("batch of %zu scenarios, 4 threads:\n", kScenarios);
  double t4 = RunBatchOnce(4, kScenarios, true);
  std::printf("speedup 1->4 threads: %.2fx  (hardware_concurrency=%zu; "
              "expect ~>=2x on 4+ real cores)\n",
              t4 > 0 ? t1 / t4 : 0.0, ThreadPool::DefaultThreads());
}

void BM_BatchSolve(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t count = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();  // scenario construction is not engine work
    BatchOptions options;
    options.num_threads = threads;
    options.engine = BenchEngineOptions();
    std::vector<Scenario> batch = MakeBatch(count);
    BatchExecutor executor(options);
    state.ResumeTiming();
    BatchReport report = executor.SolveAll(batch);
    benchmark::DoNotOptimize(report);
    state.counters["cache_hits"] =
        static_cast<double>(report.total.cache_hits());
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_BatchSolve)
    ->Args({1, 32})
    ->Args({2, 32})
    ->Args({4, 32})
    ->Args({8, 32})
    ->Args({4, 128})
    ->Unit(benchmark::kMillisecond);

/// Cache ablation: the same scenario solved repeatedly through one engine.
/// With the cache, every solve after the first reuses NRE relations and
/// answer sets; without it, each solve pays full price.
void BM_RepeatedSolve(benchmark::State& state) {
  const bool cached = state.range(0) == 1;
  EngineOptions options = BenchEngineOptions();
  options.enable_cache = cached;
  ExchangeEngine engine(options);
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  for (auto _ : state) {
    Result<ExchangeOutcome> outcome = engine.Solve(s);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["cache_hits"] =
      static_cast<double>(engine.cache().stats().hits());
}
BENCHMARK(BM_RepeatedSolve)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Warm-start persistence (ISSUE 4): encode + decode + import of a warm
/// cache built from a real batch — the cost a serving process pays once
/// at shutdown/startup to skip all recompilation. Counters report the
/// snapshot size so growth over PRs is visible in the bench artifacts.
void BM_SnapshotRoundTrip(benchmark::State& state) {
  BatchOptions options;
  options.num_threads = 1;
  options.engine = BenchEngineOptions();
  std::vector<Scenario> batch = MakeBatch(32);
  BatchExecutor executor(options);
  executor.SolveAll(batch);
  WarmState warm = executor.engine().cache().ExportWarmState();
  size_t bytes = 0, restored_entries = 0;
  for (auto _ : state) {
    std::string encoded = EncodeSnapshot(warm);
    Result<WarmState> decoded = DecodeSnapshot(encoded);
    EngineCache cache;
    SnapshotRestoreStats stats =
        cache.ImportWarmState(std::move(decoded).value());
    benchmark::DoNotOptimize(stats);
    bytes = encoded.size();
    restored_entries = stats.nre_entries + stats.answer_entries +
                       stats.compiled_entries;
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.counters["restored_entries"] = static_cast<double>(restored_entries);
}
BENCHMARK(BM_SnapshotRoundTrip)->Unit(benchmark::kMillisecond);

/// Observability overhead (ISSUE 6): the same 32-scenario batch with the
/// tracing/stats machinery in its three states —
///   Arg(0): tracer constructed and installed but *disabled* — every span
///           site pays the full disabled path (global load + enabled()
///           check). The gate: this must stay within noise (<1%) of plain
///           BM_BatchSolve/4/32, which has no tracer installed at all.
///   Arg(1): tracer enabled + stats registry wired — the cost of actually
///           recording everything. Exposes exec_p50_ns/exec_p99_ns and
///           span counts as counters, so bench_diff.py's percentile gate
///           watches the latency distribution run over run, not just the
///           mean.
void BM_TracedEngineBatch(benchmark::State& state) {
  const bool traced = state.range(0) == 1;
  obs::Tracer tracer(/*events_per_thread=*/1u << 18);
  tracer.set_enabled(traced);
  obs::Tracer::SetGlobal(&tracer);
  obs::StatsRegistry registry;
  uint64_t p50 = 0, p99 = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BatchOptions options;
    options.num_threads = 4;
    options.engine = BenchEngineOptions();
    if (traced) options.engine.stats = &registry;
    std::vector<Scenario> batch = MakeBatch(32);
    BatchExecutor executor(options);
    state.ResumeTiming();
    BatchReport report = executor.SolveAll(batch);
    benchmark::DoNotOptimize(report);
    obs::HistogramSnapshot exec = report.ExecuteHistogram();
    p50 = exec.ValueAtQuantile(0.50);
    p99 = exec.ValueAtQuantile(0.99);
  }
  obs::Tracer::SetGlobal(nullptr);
  state.counters["exec_p50_ns"] = static_cast<double>(p50);
  state.counters["exec_p99_ns"] = static_cast<double>(p99);
  state.counters["trace_events"] = static_cast<double>(tracer.event_count());
  state.counters["trace_dropped"] =
      static_cast<double>(tracer.dropped_events());
}
BENCHMARK(BM_TracedEngineBatch)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Chase-stage compilation (ISSUE 5): the same 32-scenario batch solved
/// cold (every distinct content compiles its chase) vs warm-started from
/// a snapshot whose CHSE section carries the chased artifacts (zero chase
/// work: every stage-1 is a memo adopt, every stage-2/4 a replay).
/// Counters expose the chase-memo traffic so the artifact diff shows the
/// warm start paying off.
void BM_ChaseWarmStart(benchmark::State& state) {
  const bool warm = state.range(0) == 1;
  // One prior life of the process: solve the batch, keep its snapshot.
  BatchOptions options;
  options.num_threads = 1;
  options.engine = BenchEngineOptions();
  std::vector<Scenario> seed_batch = MakeBatch(32);
  BatchExecutor seed_executor(options);
  seed_executor.SolveAll(seed_batch);
  std::string snapshot =
      EncodeSnapshot(seed_executor.engine().cache().ExportWarmState());

  uint64_t chase_misses = 0, chase_restored = 0, triggers = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Scenario> batch = MakeBatch(32);
    BatchExecutor executor(options);
    if (warm) {
      Result<WarmState> decoded = DecodeSnapshot(snapshot);
      executor.engine().cache().ImportWarmState(
          std::move(decoded).value());
    }
    state.ResumeTiming();
    BatchReport report = executor.SolveAll(batch);
    benchmark::DoNotOptimize(report);
    chase_misses = report.total.chase_cache_misses;
    chase_restored = report.total.chase_cache_restored_hits;
    triggers = report.total.chase_triggers;
  }
  state.counters["chase_misses"] = static_cast<double>(chase_misses);
  state.counters["chase_restored_hits"] =
      static_cast<double>(chase_restored);
  state.counters["chase_triggers"] = static_cast<double>(triggers);
}
BENCHMARK(BM_ChaseWarmStart)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
