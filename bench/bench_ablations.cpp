// Design-choice ablations (DESIGN.md §3): egd-chase merge policy (eager vs
// deferred), NRE simplification before evaluation, greedy core
// minimization of solutions, and isomorphic dedup in solution enumeration.
#include "bench_util.h"

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "graph/nre_simplify.h"
#include "solver/core_minimizer.h"
#include "solver/existence.h"
#include "workload/flights.h"
#include "workload/random_graph.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

void PrintRepro() {
  // Policy equivalence on Example 2.2 (asserted in tests; shown here).
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  GraphPattern a =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  GraphPattern b = a;
  EgdChaseResult ra = ChasePatternEgds(a, s.setting.egds, eval,
                                       EgdChasePolicy::kDeferredRounds);
  EgdChaseResult rb = ChasePatternEgds(b, s.setting.egds, eval,
                                       EgdChasePolicy::kEagerRestart);
  std::printf("egd chase policies on Example 2.2: deferred %zu merges / "
              "%zu rounds, eager %zu merges / %zu rounds, same fixpoint: "
              "%s\n",
              ra.merges, ra.rounds, rb.merges, rb.rounds,
              (a.num_nodes() == b.num_nodes() &&
               a.num_edges() == b.num_edges())
                  ? "yes"
                  : "NO");
  // Simplifier on a deliberately redundant expression.
  Alphabet alphabet;
  NrePtr bloated = Nre::Union(
      Nre::Star(Nre::Star(Nre::Symbol(alphabet.Intern("f")))),
      Nre::Concat(Nre::Epsilon(),
                  Nre::Star(Nre::Symbol(alphabet.Intern("f")))));
  NrePtr slim = SimplifyNre(bloated);
  std::printf("simplifier: %zu AST nodes -> %zu (%s -> %s)\n",
              bloated->Size(), slim->Size(),
              bloated->ToString(alphabet).c_str(),
              slim->ToString(alphabet).c_str());
}

void BM_EgdChasePolicy(benchmark::State& state) {
  const bool eager = state.range(1) == 1;
  FlightWorkloadParams params;
  params.num_flights = static_cast<size_t>(state.range(0));
  params.num_hotels = params.num_flights / 6 + 2;
  params.mode = FlightConstraintMode::kEgd;
  for (auto _ : state) {
    state.PauseTiming();
    Scenario s = MakeFlightScenario(params);
    GraphPattern pi =
        ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
    state.ResumeTiming();
    EgdChaseResult result = ChasePatternEgds(
        pi, s.setting.egds, eval,
        eager ? EgdChasePolicy::kEagerRestart
              : EgdChasePolicy::kDeferredRounds);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EgdChasePolicy)
    ->Args({20, 0})->Args({20, 1})->Args({60, 0})->Args({60, 1})
    ->Unit(benchmark::kMillisecond);

/// Evaluation cost of a redundant NRE with and without simplification.
void RunSimplifyBench(benchmark::State& state, bool simplify) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams params;
  params.num_nodes = 150;
  params.num_edges = 600;
  params.num_labels = 2;
  Graph g = MakeRandomGraph(params, universe, alphabet);
  // ((l1*)* . eps) + (eps + l1*) — semantically just l1*.
  NrePtr l1 = Nre::Symbol(alphabet.Intern("l1"));
  NrePtr bloated = Nre::Union(
      Nre::Concat(Nre::Star(Nre::Star(l1)), Nre::Epsilon()),
      Nre::Union(Nre::Epsilon(), Nre::Star(l1)));
  NrePtr nre = simplify ? SimplifyNre(bloated) : bloated;
  NaiveNreEvaluator naive;
  for (auto _ : state) {
    BinaryRelation rel = naive.Eval(nre, g);
    benchmark::DoNotOptimize(rel);
  }
  state.counters["ast_nodes"] = static_cast<double>(nre->Size());
}
void BM_EvalRaw(benchmark::State& state) { RunSimplifyBench(state, false); }
void BM_EvalSimplified(benchmark::State& state) {
  RunSimplifyBench(state, true);
}
BENCHMARK(BM_EvalRaw)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvalSimplified)->Unit(benchmark::kMillisecond);

/// Core minimization: solution size before/after and its cost.
void BM_CoreMinimize(benchmark::State& state) {
  FlightWorkloadParams params;
  params.num_flights = static_cast<size_t>(state.range(0));
  params.num_hotels = params.num_flights / 4 + 2;
  params.mode = FlightConstraintMode::kEgd;
  Scenario s = MakeFlightScenario(params);
  ExistenceOptions options;
  options.instantiation.max_witnesses_per_edge = 2;
  ExistenceReport report = ExistenceSolver(&eval, options)
                               .Decide(s.setting, *s.instance, *s.universe);
  if (!report.witness.has_value()) {
    state.SkipWithError("no solution for this seed");
    return;
  }
  size_t removed = 0;
  for (auto _ : state) {
    CoreMinimizeStats stats;
    Graph minimized =
        GreedyCoreMinimize(*report.witness, s.setting, *s.instance, eval,
                           *s.universe, &stats);
    benchmark::DoNotOptimize(minimized);
    removed = stats.edges_removed;
  }
  state.counters["edges_before"] =
      static_cast<double>(report.witness->num_edges());
  state.counters["edges_removed"] = static_cast<double>(removed);
}
BENCHMARK(BM_CoreMinimize)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

/// Isomorphic dedup: enumeration with and without it.
void BM_EnumerateSolutions(benchmark::State& state) {
  const bool dedup = state.range(0) == 1;
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  ExistenceOptions options;
  options.instantiation.max_witnesses_per_edge = 3;
  options.dedup_isomorphic = dedup;
  ExistenceSolver solver(&eval, options);
  size_t count = 0;
  for (auto _ : state) {
    std::vector<Graph> solutions =
        solver.EnumerateSolutions(s.setting, *s.instance, *s.universe, 16);
    benchmark::DoNotOptimize(solutions);
    count = solutions.size();
  }
  state.counters["distinct_solutions"] = static_cast<double>(count);
}
BENCHMARK(BM_EnumerateSolutions)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
