// E10 / substrate ablation: the two NRE evaluation engines (naive
// relation-algebra vs product-automaton) on random graphs and on the
// paper's query shape. Reproduces the Example 2.2 query semantics first.
#include "bench_util.h"

#include "graph/nre_parser.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"
#include "workload/random_graph.h"

namespace gdx {
namespace {

NaiveNreEvaluator naive;
AutomatonNreEvaluator automaton;

void PrintRepro() {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Graph g1 = BuildFigure1G1(s);
  NrePtr q = s.query->atoms()[0].nre;
  std::printf("JQK_G1 with Q = %s:\n", q->ToString(*s.alphabet).c_str());
  for (const NreEvaluator* eval :
       {static_cast<const NreEvaluator*>(&naive),
        static_cast<const NreEvaluator*>(&automaton)}) {
    BinaryRelation rel = eval->Eval(q, g1);
    std::printf("  %-26s -> %zu pairs (paper: 4)\n", eval->name(),
                rel.size());
  }
}

/// The paper-shaped query over random graphs: n nodes, 4n edges, 2 labels.
void RunQueryBench(benchmark::State& state, const NreEvaluator& eval) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams params;
  params.num_nodes = static_cast<size_t>(state.range(0));
  params.num_edges = params.num_nodes * 4;
  params.num_labels = 2;
  Graph g = MakeRandomGraph(params, universe, alphabet);
  Result<NrePtr> q = ParseNre("l1 . l1* [l2] . l1- . (l1-)*", alphabet);
  if (!q.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  size_t pairs = 0;
  for (auto _ : state) {
    BinaryRelation rel = eval.Eval(*q, g);
    benchmark::DoNotOptimize(rel);
    pairs = rel.size();
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_NaiveEval(benchmark::State& state) { RunQueryBench(state, naive); }
void BM_AutomatonEval(benchmark::State& state) {
  RunQueryBench(state, automaton);
}
BENCHMARK(BM_NaiveEval)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AutomatonEval)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800)
    ->Unit(benchmark::kMillisecond);

/// Single-source evaluation: the automaton engine's native strength.
void BM_AutomatonEvalFrom(benchmark::State& state) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams params;
  params.num_nodes = static_cast<size_t>(state.range(0));
  params.num_edges = params.num_nodes * 4;
  params.num_labels = 2;
  Graph g = MakeRandomGraph(params, universe, alphabet);
  Result<NrePtr> q = ParseNre("l1 . l1* [l2] . l1- . (l1-)*", alphabet);
  Value src = g.nodes().front();
  for (auto _ : state) {
    std::vector<Value> out = automaton.EvalFrom(*q, g, src);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AutomatonEvalFrom)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

/// NRE depth sweep: random expressions of growing AST depth (fixed graph).
void BM_DepthSweep(benchmark::State& state) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams params;
  params.num_nodes = 100;
  params.num_edges = 400;
  params.num_labels = 3;
  Graph g = MakeRandomGraph(params, universe, alphabet);
  Rng rng(31);
  NrePtr nre = MakeRandomNre(static_cast<size_t>(state.range(0)), 3,
                             alphabet, rng);
  for (auto _ : state) {
    BinaryRelation rel = automaton.Eval(nre, g);
    benchmark::DoNotOptimize(rel);
  }
  state.counters["ast_nodes"] = static_cast<double>(nre->Size());
}
BENCHMARK(BM_DepthSweep)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
