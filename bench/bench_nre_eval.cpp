// E10 / substrate ablation: the two NRE evaluation engines (legacy
// relation-algebra vs compiled ε-free product automaton over a CSR
// GraphView) on random graphs and on the paper's query shape. Reproduces
// the Example 2.2 query semantics first.
//
// ISSUE 3 acceptance hook: BM_NreEval* pits the engines against each other
// on the paper-shaped query, and BM_NreEvalDenseClosure* is the guard case
// for the legacy evaluator's worst habit — `(l1+l2)*` forces the dense
// reflexive-transitive closure (O(n²) pairs, per-source O(n) fill/scan)
// that the compiled evaluator never materializes. A regression in either
// engine is visible run-over-run via scripts/bench_diff.py in CI.
#include "bench_util.h"

#include "graph/nre_parser.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"
#include "workload/random_graph.h"

namespace gdx {
namespace {

NaiveNreEvaluator legacy;
AutomatonNreEvaluator compiled;

void PrintRepro() {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Graph g1 = BuildFigure1G1(s);
  NrePtr q = s.query->atoms()[0].nre;
  std::printf("JQK_G1 with Q = %s:\n", q->ToString(*s.alphabet).c_str());
  for (const NreEvaluator* eval :
       {static_cast<const NreEvaluator*>(&legacy),
        static_cast<const NreEvaluator*>(&compiled)}) {
    BinaryRelation rel = eval->Eval(q, g1);
    std::printf("  %-26s -> %zu pairs (paper: 4)\n", eval->name(),
                rel.size());
  }
}

/// Random graph + query benchmark body: n nodes, 4n edges, 2 labels.
void RunQueryBench(benchmark::State& state, const NreEvaluator& eval,
                   const char* query) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams params;
  params.num_nodes = static_cast<size_t>(state.range(0));
  params.num_edges = params.num_nodes * 4;
  params.num_labels = 2;
  Graph g = MakeRandomGraph(params, universe, alphabet);
  Result<NrePtr> q = ParseNre(query, alphabet);
  if (!q.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  size_t pairs = 0;
  for (auto _ : state) {
    BinaryRelation rel = eval.Eval(*q, g);
    benchmark::DoNotOptimize(rel);
    pairs = rel.size();
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

/// The paper-shaped query (Example 2.2 skeleton).
constexpr char kPaperQuery[] = "l1 . l1* [l2] . l1- . (l1-)*";
/// Dense-closure guard: a star over the whole alphabet — the legacy
/// engine's reflexive-transitive closure is the hot spot here.
constexpr char kDenseClosureQuery[] = "(l1 + l2)*";

void BM_NreEvalLegacy(benchmark::State& state) {
  RunQueryBench(state, legacy, kPaperQuery);
}
void BM_NreEvalCompiled(benchmark::State& state) {
  RunQueryBench(state, compiled, kPaperQuery);
}
BENCHMARK(BM_NreEvalLegacy)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NreEvalCompiled)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Arg(800)->Unit(benchmark::kMillisecond);

void BM_NreEvalDenseClosureLegacy(benchmark::State& state) {
  RunQueryBench(state, legacy, kDenseClosureQuery);
}
void BM_NreEvalDenseClosureCompiled(benchmark::State& state) {
  RunQueryBench(state, compiled, kDenseClosureQuery);
}
BENCHMARK(BM_NreEvalDenseClosureLegacy)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NreEvalDenseClosureCompiled)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(400)->Arg(800)->Unit(benchmark::kMillisecond);

/// Single-source evaluation: the compiled engine's native strength.
void BM_AutomatonEvalFrom(benchmark::State& state) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams params;
  params.num_nodes = static_cast<size_t>(state.range(0));
  params.num_edges = params.num_nodes * 4;
  params.num_labels = 2;
  Graph g = MakeRandomGraph(params, universe, alphabet);
  Result<NrePtr> q = ParseNre(kPaperQuery, alphabet);
  Value src = g.nodes().front();
  for (auto _ : state) {
    std::vector<Value> out = compiled.EvalFrom(*q, g, src);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AutomatonEvalFrom)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

/// ISSUE 10 tentpole part 2: dense multi-source evaluation, batched
/// 64-way bit-parallel BFS vs the per-source reference loop, up to a
/// million nodes. Args: {num_nodes, num_sources}. The dense-closure query
/// makes every source reach ~everything, so the per-source loop pays
/// O(sources × reach) while the batched path serves 64 sources per
/// product pass — the ≥2× million-node acceptance case of the ISSUE.
/// scratch_allocs counts arena growth events inside the timed loop
/// (steady-state must be 0; buffers were allocated per call before).
void RunMultiSourceBench(benchmark::State& state, MultiSourceMode mode) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams params;
  params.num_nodes = static_cast<size_t>(state.range(0));
  params.num_edges = params.num_nodes * 4;
  params.num_labels = 2;
  Graph g = MakeRandomGraph(params, universe, alphabet);
  Result<NrePtr> q = ParseNre(kDenseClosureQuery, alphabet);
  if (!q.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  AutomatonNreEvaluator eval;
  eval.set_multi_source_mode(mode);
  std::vector<Value> srcs(
      g.nodes().begin(),
      g.nodes().begin() + static_cast<size_t>(state.range(1)));
  // Warm the thread's scratch arena so the timed loop shows steady state.
  eval.EvalFromMany(*q, g, srcs);
  const uint64_t allocs_before = NreEvalScratchAllocs();
  size_t reached = 0;
  for (auto _ : state) {
    std::vector<std::vector<Value>> out = eval.EvalFromMany(*q, g, srcs);
    benchmark::DoNotOptimize(out);
    reached = out.empty() ? 0 : out.front().size();
  }
  state.counters["reached_from_s0"] = static_cast<double>(reached);
  state.counters["scratch_allocs"] =
      static_cast<double>(NreEvalScratchAllocs() - allocs_before);
}

void BM_NreEvalMultiSourceBatched(benchmark::State& state) {
  RunMultiSourceBench(state, MultiSourceMode::kBatched);
}
void BM_NreEvalMultiSourcePerSource(benchmark::State& state) {
  RunMultiSourceBench(state, MultiSourceMode::kPerSource);
}
BENCHMARK(BM_NreEvalMultiSourceBatched)
    ->Args({1 << 12, 256})->Args({1 << 16, 256})->Args({1 << 20, 256})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NreEvalMultiSourcePerSource)
    ->Args({1 << 12, 256})->Args({1 << 16, 256})->Args({1 << 20, 256})
    ->Unit(benchmark::kMillisecond);

/// NRE depth sweep: random expressions of growing AST depth (fixed graph).
void BM_DepthSweep(benchmark::State& state) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams params;
  params.num_nodes = 100;
  params.num_edges = 400;
  params.num_labels = 3;
  Graph g = MakeRandomGraph(params, universe, alphabet);
  Rng rng(31);
  NrePtr nre = MakeRandomNre(static_cast<size_t>(state.range(0)), 3,
                             alphabet, rng);
  for (auto _ : state) {
    BinaryRelation rel = compiled.Eval(nre, g);
    benchmark::DoNotOptimize(rel);
  }
  state.counters["ast_nodes"] = static_cast<double>(nre->Size());
}
BENCHMARK(BM_DepthSweep)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gdx

GDX_BENCH_MAIN(gdx::PrintRepro)
