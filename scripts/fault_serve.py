#!/usr/bin/env python3
"""Fault-injection soak for the resident exchange service (ISSUE 8).

Drives ``gdx_cli serve`` through the robustness acceptance scenario:

1. **Baseline**: a fault-free server solves the workload; its client
   report is the byte-identity reference for every later phase.
2. **Checkpoint faults**: the server runs with
   ``--fault=checkpoint_write:0.1:42`` (10% of checkpoint saves fail
   deterministically) and a short checkpoint interval. Faulted saves
   must be counted in ``serve.checkpoint.failures``, never crash the
   server, and never corrupt the request path: the client report stays
   byte-identical to the baseline.
3. **Killed connections**: 25% of a batch of raw connections are torn
   down right after sending a request (no read). The watchdog reaps the
   orphaned solves; the server keeps serving well-behaved clients.
4. **Deadline storm**: every request carries ``deadline_ms=1``. The
   server answers each with its RESULT or a *typed* error
   (DEADLINE_EXCEEDED / OVERLOADED / CANCELED) — the client exits 0 or
   1, never crashes, and the server survives.
5. **Warm restart**: a fresh fault-free server restarts from the
   checkpoint written under fault injection — the file must be valid
   (``serve.checkpoint.restores`` >= 1) and the workload's report again
   byte-identical to the baseline.

Exit status 0 iff every phase passes. CI runs this in the fault-soak
job; locally:  python3 scripts/fault_serve.py --cli build/gdx_cli
"""

import argparse
import json
import os
import shutil
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import time

PROTOCOL_VERSION = 2
HELLO, HELLO_ACK, REQUEST = 0x01, 0x02, 0x03

SCENARIO = """relation Flight/3
relation Hotel/2
fact Flight(01, c1, c2)
fact Flight(02, c3, c2)
fact Hotel(01, hx)
fact Hotel(01, hy)
fact Hotel(02, hx)
stgd Flight(x1,x2,x3), Hotel(x1,x4) ->
     (x2, f . f*, y), (y, h, x4), (y, f . f*, x3)
egd (x1, h, x3), (x2, h, x3) -> x1 = x2
query (x1, f . f* [h] . f- . (f-)*, x2) -> x1, x2
"""


def frame(ftype, payload=b""):
    return struct.pack("<IBBH", len(payload), ftype, PROTOCOL_VERSION,
                       0) + payload


def enc_request(req_id, text):
    return (struct.pack("<QI", req_id, 0) +
            struct.pack("<Q", len(text)) + text)


class Phase:
    """Counts and prints per-phase check results."""

    def __init__(self):
        self.passed = 0

    def ok(self, name):
        print(f"  ok  {name}")
        self.passed += 1

    def require(self, cond, name, detail=""):
        if not cond:
            raise AssertionError(f"{name}: {detail}")
        self.ok(name)


class Harness:
    def __init__(self, cli, workdir):
        self.cli = cli
        self.workdir = workdir
        self.socket_path = os.path.join(workdir, "fault.sock")
        self.checkpoint = os.path.join(workdir, "warm.gdxsnap")
        self.scenario_path = os.path.join(workdir, "scenario.gdx")
        with open(self.scenario_path, "w") as f:
            f.write(SCENARIO)
        self.phase = Phase()
        self.proc = None
        self.baseline_report = None

    # --- process plumbing --------------------------------------------------

    def start_server(self, fault=None, checkpoint=False,
                     checkpoint_interval_ms=25, workers=2, queue=8):
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        cmd = [self.cli, "serve", f"--socket={self.socket_path}",
               f"--workers={workers}", f"--queue={queue}"]
        if checkpoint:
            cmd += [f"--checkpoint={self.checkpoint}",
                    f"--checkpoint-interval-ms={checkpoint_interval_ms}"]
        if fault:
            cmd.append(f"--fault={fault}")
        self.proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                                     stderr=subprocess.STDOUT, text=True)
        line = self.proc.stdout.readline()
        assert line.startswith("serving on"), f"no readiness line: {line!r}"

    def server_alive(self):
        return self.proc.poll() is None

    def run_client(self, repeat=8, window=8, deadline_ms=0, report=None,
                   stats=None, shutdown=False, timeout=120):
        cmd = [self.cli, "client", f"--socket={self.socket_path}",
               self.scenario_path, f"--repeat={repeat}",
               f"--window={window}"]
        if deadline_ms:
            cmd.append(f"--deadline-ms={deadline_ms}")
        if report:
            cmd.append(f"--report-out={report}")
        if stats:
            cmd.append(f"--stats-out={stats}")
        if shutdown:
            cmd.append("--shutdown")
        done = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True,
                              timeout=timeout)
        return done

    def read_counters(self, stats_path):
        with open(stats_path) as f:
            return json.load(f)["counters"]

    def graceful_stop(self):
        done = self.run_client(repeat=1, window=1, shutdown=True)
        assert done.returncode == 0, f"drain client failed: {done.stdout}"
        code = self.proc.wait(timeout=60)
        assert code == 0, f"server exited {code}"

    def kill_server(self):
        if self.proc and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait()

    # --- phases ------------------------------------------------------------

    def phase_baseline(self):
        print("phase 1: fault-free baseline")
        self.start_server()
        report = os.path.join(self.workdir, "baseline.report")
        done = self.run_client(report=report)
        self.phase.require(done.returncode == 0, "baseline client exits 0",
                           done.stdout)
        self.graceful_stop()
        self.phase.ok("baseline server drained cleanly")
        with open(report) as f:
            self.baseline_report = f.read()
        assert self.baseline_report, "empty baseline report"
        # The checkpoint written by this phase is discarded: phase 2 must
        # produce its own under fault injection.
        if os.path.exists(self.checkpoint):
            os.unlink(self.checkpoint)

    def phase_checkpoint_faults(self):
        print("phase 2: 10% checkpoint write faults")
        self.start_server(fault="checkpoint_write:0.1:42", checkpoint=True)
        report = os.path.join(self.workdir, "faulted.report")
        stats = os.path.join(self.workdir, "faulted.stats.json")
        done = self.run_client(report=report)
        self.phase.require(done.returncode == 0,
                           "client unaffected by checkpoint faults",
                           done.stdout)
        with open(report) as f:
            self.phase.require(f.read() == self.baseline_report,
                               "faulted-run report is byte-identical")
        # Let the 25ms checkpoint loop attempt enough saves that the 10%
        # deterministic fault plan (seed 42) fires at least once.
        time.sleep(2.0)
        self.phase.require(self.server_alive(),
                           "server survives faulted checkpoint saves")
        done = self.run_client(repeat=1, window=1, stats=stats)
        assert done.returncode == 0, done.stdout
        counters = self.read_counters(stats)
        saves = counters.get("serve.checkpoint.saves", 0)
        failures = counters.get("serve.checkpoint.failures", 0)
        self.phase.require(saves >= 10, "checkpoint loop kept saving",
                           f"saves={saves}")
        self.phase.require(failures >= 1, "injected save failures counted",
                           f"failures={failures} after {saves} saves")
        self.graceful_stop()
        self.phase.require(os.path.exists(self.checkpoint),
                           "final checkpoint exists despite faults")

    def phase_killed_connections(self):
        print("phase 3: 25% of connections killed mid-request")
        self.start_server()
        killed = 0
        for i in range(12):
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.settimeout(10.0)
            conn.connect(self.socket_path)
            conn.sendall(frame(HELLO, struct.pack("<I", PROTOCOL_VERSION)))
            ack = conn.recv(8)
            assert len(ack) == 8, "no HELLO_ACK header"
            conn.recv(struct.unpack("<IBBH", ack)[0])
            conn.sendall(frame(REQUEST,
                               enc_request(1000 + i, SCENARIO.encode())))
            if i % 4 == 0:  # every 4th connection vanishes without reading
                conn.close()
                killed += 1
            else:
                hdr = conn.recv(8)
                assert len(hdr) == 8, "no reply header"
                conn.close()
        assert killed == 3, killed
        self.phase.require(self.server_alive(),
                           "server survives abrupt disconnects")
        done = self.run_client(repeat=2, window=4)
        self.phase.require(done.returncode == 0,
                           "well-behaved client serves after the kills",
                           done.stdout)
        self.graceful_stop()
        self.phase.ok("server drains after the kills")

    def phase_deadline_storm(self):
        print("phase 4: deadline storm (deadline_ms=1)")
        self.start_server(workers=1, queue=4)
        stats = os.path.join(self.workdir, "storm.stats.json")
        done = self.run_client(repeat=32, window=8, deadline_ms=1)
        self.phase.require(done.returncode in (0, 1),
                           "storm client exits 0 or 1 (typed errors only)",
                           f"rc={done.returncode}: {done.stdout}")
        self.phase.require(self.server_alive(),
                           "server survives the deadline storm")
        done = self.run_client(repeat=1, window=1, stats=stats)
        assert done.returncode == 0, done.stdout
        counters = self.read_counters(stats)
        typed = (counters.get("serve.requests.deadline_exceeded", 0) +
                 counters.get("serve.requests.rejected_overloaded", 0) +
                 counters.get("serve.requests.canceled", 0))
        self.phase.require(typed >= 1,
                           "storm produced typed deadline/overload errors",
                           json.dumps(counters))
        self.graceful_stop()
        self.phase.ok("server drains after the storm")

    def phase_warm_restart(self):
        print("phase 5: warm restart from the faulted-phase checkpoint")
        assert os.path.exists(self.checkpoint), "checkpoint vanished"
        self.start_server(checkpoint=True)
        report = os.path.join(self.workdir, "restart.report")
        stats = os.path.join(self.workdir, "restart.stats.json")
        done = self.run_client(report=report, stats=stats)
        self.phase.require(done.returncode == 0,
                           "client solves against the restarted server",
                           done.stdout)
        counters = self.read_counters(stats)
        self.phase.require(
            counters.get("serve.checkpoint.restores", 0) >= 1,
            "checkpoint written under faults restores cleanly",
            json.dumps(counters))
        with open(report) as f:
            self.phase.require(f.read() == self.baseline_report,
                               "warm-restart report is byte-identical")
        self.graceful_stop()
        self.phase.ok("restarted server drains cleanly")

    def run(self):
        try:
            self.phase_baseline()
            self.phase_checkpoint_faults()
            self.phase_killed_connections()
            self.phase_deadline_storm()
            self.phase_warm_restart()
        finally:
            self.kill_server()
        print(f"fault_serve: {self.phase.passed} checks passed")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", default="build/gdx_cli",
                        help="path to the gdx_cli binary")
    args = parser.parse_args()
    if not os.path.exists(args.cli):
        print(f"error: no such binary: {args.cli}", file=sys.stderr)
        return 2
    workdir = tempfile.mkdtemp(prefix="gdx_fault_")
    harness = Harness(os.path.abspath(args.cli), workdir)
    try:
        harness.run()
    except AssertionError as exc:
        print(f"fault_serve: FAILED: {exc}", file=sys.stderr)
        return 1
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
