#!/usr/bin/env python3
"""CI docs gate (ISSUE 4 satellite): fail on documentation rot.

Two checks, both cheap enough to run on every push:

1. Dead relative links: every markdown link in a tracked ``*.md`` file
   that points at a repository path must resolve to an existing file or
   directory (``#fragment`` suffixes are ignored; ``http(s)://`` and
   ``mailto:`` links are out of scope).

2. Spec/code version drift: ``docs/FORMAT.md`` declares the snapshot
   format version it documents ("Current `kFormatVersion`: `N`"); the
   code declares it in ``src/persist/snapshot.h``
   (``constexpr uint32_t kFormatVersion = N``). The two must agree —
   a format change without a spec update (or vice versa) fails CI.

3. The same contract for the telemetry schema (ISSUE 6):
   ``docs/TELEMETRY.md`` ("Current `kTelemetrySchemaVersion`: `N`") must
   agree with ``src/obs/stats_registry.h``
   (``constexpr uint32_t kTelemetrySchemaVersion = N``) — the
   ``--metrics-json`` payload is a machine-read interface, so its spec
   rots exactly as expensively as the snapshot format's.

4. The same contract for the serve wire protocol (ISSUE 7):
   ``docs/SERVING.md`` ("Current `kProtocolVersion`: `N`") must agree
   with ``src/serve/protocol.h``
   (``constexpr uint32_t kProtocolVersion = N``) —
   ``scripts/check_protocol.py`` reimplements the framing from the spec
   alone, which only stays possible while the spec tracks the code.

5. Serve error-code completeness (ISSUE 8): the set of code names
   ``ServeErrorName`` returns in ``src/serve/protocol.cc`` must equal
   the set of names in docs/SERVING.md's typed-error table — an error
   code added, removed, or renamed in only one place fails CI.

Exit code 0 = clean, 1 = findings (listed on stdout).
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {".git", "Testing", "prev-bench"}
SKIP_PREFIXES = ("build",)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADER_VERSION_RE = re.compile(
    r"constexpr\s+uint32_t\s+kFormatVersion\s*=\s*(\d+)")
SPEC_VERSION_RE = re.compile(r"Current\s+`kFormatVersion`:\s*`(\d+)`")

SNAPSHOT_HEADER = os.path.join(REPO, "src", "persist", "snapshot.h")
FORMAT_SPEC = os.path.join(REPO, "docs", "FORMAT.md")

TELEMETRY_HEADER_RE = re.compile(
    r"constexpr\s+uint32_t\s+kTelemetrySchemaVersion\s*=\s*(\d+)")
TELEMETRY_SPEC_RE = re.compile(
    r"Current\s+`kTelemetrySchemaVersion`:\s*`(\d+)`")

STATS_HEADER = os.path.join(REPO, "src", "obs", "stats_registry.h")
TELEMETRY_SPEC = os.path.join(REPO, "docs", "TELEMETRY.md")

PROTOCOL_HEADER_RE = re.compile(
    r"constexpr\s+uint32_t\s+kProtocolVersion\s*=\s*(\d+)")
PROTOCOL_SPEC_RE = re.compile(r"Current\s+`kProtocolVersion`:\s*`(\d+)`")

PROTOCOL_HEADER = os.path.join(REPO, "src", "serve", "protocol.h")
SERVING_SPEC = os.path.join(REPO, "docs", "SERVING.md")

PROTOCOL_IMPL = os.path.join(REPO, "src", "serve", "protocol.cc")
# case ServeError::kBadFrame: return "BAD_FRAME";
ERROR_NAME_RE = re.compile(
    r'case\s+ServeError::k\w+:\s*return\s+"([A-Z_]+)"')
# | 2 | `BAD_FRAME` | yes | ...
ERROR_TABLE_RE = re.compile(r"^\|\s*\d+\s*\|\s*`([A-Z_]+)`", re.M)


def markdown_files():
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [
            d for d in dirs
            if d not in SKIP_DIRS and not d.startswith(SKIP_PREFIXES)
        ]
        for name in files:
            if name.endswith(".md"):
                yield os.path.join(root, name)


def check_links():
    problems = []
    for path in sorted(markdown_files()):
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path),
                             target.split("#", 1)[0]))
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, REPO)
                problems.append(f"{rel}: dead link -> {target}")
    return problems


def check_format_version():
    problems = []
    try:
        with open(SNAPSHOT_HEADER, encoding="utf-8") as handle:
            header_match = HEADER_VERSION_RE.search(handle.read())
    except OSError:
        return [f"missing {os.path.relpath(SNAPSHOT_HEADER, REPO)}"]
    try:
        with open(FORMAT_SPEC, encoding="utf-8") as handle:
            spec_match = SPEC_VERSION_RE.search(handle.read())
    except OSError:
        return [f"missing {os.path.relpath(FORMAT_SPEC, REPO)}"]
    if header_match is None:
        problems.append("src/persist/snapshot.h: kFormatVersion "
                        "constant not found (check_docs.py greps for it)")
    if spec_match is None:
        problems.append("docs/FORMAT.md: no \"Current `kFormatVersion`: "
                        "`N`\" line (the spec must declare its version)")
    if header_match and spec_match and \
            header_match.group(1) != spec_match.group(1):
        problems.append(
            f"version drift: src/persist/snapshot.h has kFormatVersion = "
            f"{header_match.group(1)} but docs/FORMAT.md documents "
            f"version {spec_match.group(1)}")
    return problems


def check_telemetry_version():
    problems = []
    try:
        with open(STATS_HEADER, encoding="utf-8") as handle:
            header_match = TELEMETRY_HEADER_RE.search(handle.read())
    except OSError:
        return [f"missing {os.path.relpath(STATS_HEADER, REPO)}"]
    try:
        with open(TELEMETRY_SPEC, encoding="utf-8") as handle:
            spec_match = TELEMETRY_SPEC_RE.search(handle.read())
    except OSError:
        return [f"missing {os.path.relpath(TELEMETRY_SPEC, REPO)}"]
    if header_match is None:
        problems.append("src/obs/stats_registry.h: kTelemetrySchemaVersion "
                        "constant not found (check_docs.py greps for it)")
    if spec_match is None:
        problems.append("docs/TELEMETRY.md: no \"Current "
                        "`kTelemetrySchemaVersion`: `N`\" line (the spec "
                        "must declare its version)")
    if header_match and spec_match and \
            header_match.group(1) != spec_match.group(1):
        problems.append(
            f"version drift: src/obs/stats_registry.h has "
            f"kTelemetrySchemaVersion = {header_match.group(1)} but "
            f"docs/TELEMETRY.md documents version {spec_match.group(1)}")
    return problems


def check_protocol_version():
    problems = []
    try:
        with open(PROTOCOL_HEADER, encoding="utf-8") as handle:
            header_match = PROTOCOL_HEADER_RE.search(handle.read())
    except OSError:
        return [f"missing {os.path.relpath(PROTOCOL_HEADER, REPO)}"]
    try:
        with open(SERVING_SPEC, encoding="utf-8") as handle:
            spec_match = PROTOCOL_SPEC_RE.search(handle.read())
    except OSError:
        return [f"missing {os.path.relpath(SERVING_SPEC, REPO)}"]
    if header_match is None:
        problems.append("src/serve/protocol.h: kProtocolVersion constant "
                        "not found (check_docs.py greps for it)")
    if spec_match is None:
        problems.append("docs/SERVING.md: no \"Current `kProtocolVersion`: "
                        "`N`\" line (the spec must declare its version)")
    if header_match and spec_match and \
            header_match.group(1) != spec_match.group(1):
        problems.append(
            f"version drift: src/serve/protocol.h has kProtocolVersion = "
            f"{header_match.group(1)} but docs/SERVING.md documents "
            f"version {spec_match.group(1)}")
    return problems


def check_serve_error_names():
    try:
        with open(PROTOCOL_IMPL, encoding="utf-8") as handle:
            code_names = set(ERROR_NAME_RE.findall(handle.read()))
    except OSError:
        return [f"missing {os.path.relpath(PROTOCOL_IMPL, REPO)}"]
    try:
        with open(SERVING_SPEC, encoding="utf-8") as handle:
            doc_names = set(ERROR_TABLE_RE.findall(handle.read()))
    except OSError:
        return [f"missing {os.path.relpath(SERVING_SPEC, REPO)}"]
    # kNone has no wire code (it is the "no error" sentinel), so the doc
    # table rightly omits it.
    code_names.discard("NONE")
    if not code_names:
        return ["src/serve/protocol.cc: no ServeErrorName cases found "
                "(check_docs.py greps for them)"]
    if not doc_names:
        return ["docs/SERVING.md: no typed-error table rows found "
                "(check_docs.py greps for `| N | `NAME`` rows)"]
    problems = []
    for name in sorted(code_names - doc_names):
        problems.append(
            f"serve error drift: ServeErrorName returns \"{name}\" but "
            f"docs/SERVING.md's typed-error table has no such row")
    for name in sorted(doc_names - code_names):
        problems.append(
            f"serve error drift: docs/SERVING.md documents `{name}` but "
            f"ServeErrorName in src/serve/protocol.cc never returns it")
    return problems


def main():
    problems = (check_links() + check_format_version()
                + check_telemetry_version() + check_protocol_version()
                + check_serve_error_names())
    for problem in problems:
        print(f"check_docs: {problem}")
    if problems:
        print(f"check_docs: {len(problems)} problem(s)")
        return 1
    print("check_docs: all markdown links resolve, docs/FORMAT.md matches "
          "kFormatVersion, docs/TELEMETRY.md matches "
          "kTelemetrySchemaVersion, docs/SERVING.md matches "
          "kProtocolVersion and the ServeErrorName set")
    return 0


if __name__ == "__main__":
    sys.exit(main())
