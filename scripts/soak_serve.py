#!/usr/bin/env python3
"""Soak + conformance harness for the resident exchange service.

Drives ``gdx_cli serve`` through the ISSUE 7 acceptance criteria:

1. **Scale**: expands a mixed corpus of scenario variants to >= --total
   (default 10^4) requests and pushes them from --clients concurrent
   ``gdx_cli client`` processes through one resident server at
   saturation (window * clients > queue capacity, so admission control
   and QUEUE_FULL retries are genuinely exercised).
2. **Byte-identity**: the clients' reassembled reports must be
   byte-identical to a one-shot ``gdx_cli batch`` run over the same
   expanded scenario list — streaming, concurrency, backpressure and
   the kill/restart below must all be invisible in the results.
3. **Kill + warm restart**: midway through the soak the server is
   SIGKILLed and restarted from its latest periodic checkpoint; the
   remaining clients re-send scenarios the first half already solved,
   and the restarted server must report **zero** chase misses and zero
   compile misses (pure restored-entry traffic) via the client's
   --stats-out JSON.
4. **Artifact**: writes a latency/metrics JSON (p50/p99 of
   serve.request_ns, queue/retry counters, phase wall times) for CI to
   upload.

Usage:  python3 scripts/soak_serve.py --cli build/gdx_cli \
            [--total 10000] [--clients 4] [--out soak_metrics.json]
"""

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

EXAMPLE22 = """\
relation Flight/3
relation Hotel/2

fact Flight(01, c1, c2)
fact Flight(02, c3, c2)
fact Hotel(01, hx)
fact Hotel(01, hy)
fact Hotel(02, hx)

stgd Flight(x1,x2,x3), Hotel(x1,x4) ->
     (x2, f . f*, y), (y, h, x4), (y, f . f*, x3)

egd (x1, h, x3), (x2, h, x3) -> x1 = x2

query (x1, f . f* [h] . f- . (f-)*, x2) -> x1, x2
"""

SMALL_CHAIN = """\
relation Flight/3
relation Hotel/2
fact Flight(11, d1, d2)
fact Hotel(11, hz)
stgd Flight(x1,x2,x3), Hotel(x1,x4) ->
     (x2, f, y), (y, h, x4)
query (x1, f [h], x2) -> x1, x2
"""

NO_QUERY = """\
relation Flight/3
relation Hotel/2
fact Flight(21, e1, e2)
fact Flight(22, e2, e3)
fact Hotel(21, hq)
fact Hotel(22, hq)
stgd Flight(x1,x2,x3), Hotel(x1,x4) ->
     (x2, f . f*, y), (y, h, x4), (y, f . f*, x3)
egd (x1, h, x3), (x2, h, x3) -> x1 = x2
"""


def make_corpus(directory):
    """Writes a mixed corpus of distinct scenario files.

    Distinct constant names give every variant distinct chase/compile
    cache keys, so the soak exercises many shards of the warm cache, not
    one hot entry.
    """
    corpus = {"example22.gdx": EXAMPLE22,
              "small_chain.gdx": SMALL_CHAIN,
              "no_query.gdx": NO_QUERY}
    # Renamed copies of the flagship scenario: same shape, fresh keys.
    for i in range(5):
        text = EXAMPLE22
        for old, new in (("c1", f"m{i}a"), ("c2", f"m{i}b"),
                         ("c3", f"m{i}c"), ("hx", f"m{i}x"),
                         ("hy", f"m{i}y"), ("01", f"5{i}1"),
                         ("02", f"5{i}2")):
            text = text.replace(old, new)
        corpus[f"renamed_{i}.gdx"] = text
    paths = []
    for name, text in sorted(corpus.items()):
        path = os.path.join(directory, name)
        with open(path, "w") as handle:
            handle.write(text)
        paths.append(path)
    return paths


def run(cmd, **kwargs):
    return subprocess.run(cmd, check=True, text=True,
                          capture_output=True, **kwargs)


def start_server(cli, socket_path, checkpoint, metrics_json, queue=8):
    # queue=8 < clients * window: concurrent client windows oversubscribe
    # admission, so the soak genuinely exercises QUEUE_FULL backpressure
    # and the retry path — not just the happy path.
    proc = subprocess.Popen(
        [cli, "serve", f"--socket={socket_path}", "--workers=2",
         f"--queue={queue}", f"--checkpoint={checkpoint}",
         "--checkpoint-interval-ms=250",
         f"--metrics-json={metrics_json}"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    line = proc.stdout.readline()
    if not line.startswith("serving on"):
        proc.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    return proc


def launch_clients(cli, socket_path, slices, scratch, tag):
    """Starts one client process per (start, paths) slice; returns procs."""
    procs = []
    for slot, (start, chunk) in enumerate(slices):
        list_file = os.path.join(scratch, f"list_{tag}_{slot}.txt")
        with open(list_file, "w") as handle:
            handle.write("\n".join(chunk) + "\n")
        report = os.path.join(scratch, f"report_{tag}_{slot}.txt")
        procs.append((report, subprocess.Popen(
            [cli, "client", f"--socket={socket_path}",
             f"--list={list_file}", "--window=16",
             f"--index-base={start}", f"--report-out={report}"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)))
    return procs


def join_clients(procs):
    reports, retries = [], 0
    for report, proc in procs:
        out, _ = proc.communicate(timeout=1800)
        if proc.returncode != 0:
            raise RuntimeError(f"client failed ({proc.returncode}):\n{out}")
        match = re.search(r"(\d+) QUEUE_FULL", out)
        retries += int(match.group(1)) if match else 0
        reports.append(report)
    return reports, retries


def chunk_slices(sequence, pieces):
    """Contiguous slices of the global expanded path sequence."""
    slices, start = [], 0
    for i in range(pieces):
        size = len(sequence) // pieces + (1 if i < len(sequence) % pieces
                                          else 0)
        slices.append((start, sequence[start:start + size]))
        start += size
    return slices


def read_stats(cli, socket_path, scratch, tag):
    stats_file = os.path.join(scratch, f"stats_{tag}.json")
    run([cli, "client", f"--socket={socket_path}",
         f"--stats-out={stats_file}"])
    with open(stats_file) as handle:
        return json.load(handle)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", default="build/gdx_cli")
    parser.add_argument("--total", type=int, default=10000,
                        help="minimum number of scenario solves")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--out", default="soak_metrics.json",
                        help="latency/metrics artifact path")
    args = parser.parse_args()
    cli = os.path.abspath(args.cli)
    if not os.path.exists(cli):
        print(f"error: no such binary: {cli}", file=sys.stderr)
        return 2
    if args.clients < 2:
        print("error: --clients must be >= 2 (half run before the kill, "
              "half after)", file=sys.stderr)
        return 2

    scratch = tempfile.mkdtemp(prefix="gdx_soak_")
    socket_path = os.path.join(scratch, "serve.sock")
    checkpoint = os.path.join(scratch, "serve.gdxsnap")
    artifact = {"total_requested": args.total, "clients": args.clients}
    server = None
    try:
        corpus = make_corpus(scratch)
        repeat = -(-args.total // len(corpus))  # ceil division
        sequence = corpus * repeat
        total = len(sequence)
        print(f"soak: {total} scenarios = {len(corpus)} variants x "
              f"{repeat}, {args.clients} clients")

        # Ground truth: one-shot batch over the identical expanded list.
        t0 = time.monotonic()
        batch_report = os.path.join(scratch, "report_batch.txt")
        run([cli, "batch", *corpus, f"--repeat={repeat}", "--threads=2",
             f"--report-out={batch_report}"])
        artifact["batch_wall_s"] = round(time.monotonic() - t0, 3)
        print(f"soak: batch ground truth in {artifact['batch_wall_s']}s")

        slices = chunk_slices(sequence, args.clients)
        half = args.clients // 2

        # Phase 1: first half of the clients against server #1.
        t0 = time.monotonic()
        metrics1 = os.path.join(scratch, "metrics_server1.json")
        server = start_server(cli, socket_path, checkpoint, metrics1)
        procs = launch_clients(cli, socket_path, slices[:half], scratch,
                               "p1")
        reports1, retries1 = join_clients(procs)
        artifact["phase1_wall_s"] = round(time.monotonic() - t0, 3)
        artifact["phase1_queue_full_retries"] = retries1

        # Let at least one checkpoint interval elapse so the latest
        # snapshot covers the full corpus, then kill -9 mid-soak: no
        # drain, no goodbye — the restart must come back warm purely
        # from the periodic checkpoint.
        time.sleep(1.0)
        assert os.path.exists(checkpoint), "no checkpoint written"
        server.send_signal(signal.SIGKILL)
        server.wait()
        print(f"soak: phase 1 done in {artifact['phase1_wall_s']}s "
              f"({retries1} QUEUE_FULL retries); server SIGKILLed")

        # Phase 2: restart from the checkpoint, run the remaining
        # clients — every scenario they send was already chased and
        # compiled by phase 1, so the warm cache must answer all of it.
        t0 = time.monotonic()
        metrics2 = os.path.join(scratch, "metrics_server2.json")
        server = start_server(cli, socket_path, checkpoint, metrics2)
        procs = launch_clients(cli, socket_path, slices[half:], scratch,
                               "p2")
        reports2, retries2 = join_clients(procs)
        artifact["phase2_wall_s"] = round(time.monotonic() - t0, 3)
        artifact["phase2_queue_full_retries"] = retries2

        stats = read_stats(cli, socket_path, scratch, "p2")
        counters = stats["counters"]
        chase_misses = counters.get("engine.cache.chase.misses", 0)
        compile_misses = counters.get("engine.cache.compile.misses", 0)
        restored = counters.get("engine.cache.restored_hits", 0)
        restores = counters.get("serve.checkpoint.restores", 0)
        artifact["post_restart"] = {
            "chase_misses": chase_misses,
            "compile_misses": compile_misses,
            "restored_hits": restored,
            "checkpoint_restores": restores,
        }
        assert restores >= 1, "restarted server did not restore checkpoint"
        assert chase_misses == 0, (
            f"warm restart re-chased {chase_misses} scenarios")
        assert compile_misses == 0, (
            f"warm restart re-compiled {compile_misses} automata")
        assert restored > 0, "no restored-entry hits after warm restart"
        print(f"soak: phase 2 done in {artifact['phase2_wall_s']}s — warm "
              f"restart: 0 chase misses, 0 compile misses, "
              f"{restored} restored-entry hits")

        hist = stats.get("histograms", {}).get("serve.request_ns", {})
        artifact["serve_request_ns"] = {
            key: hist.get(key) for key in
            ("count", "p50", "p90", "p99", "min", "max") if key in hist}

        # Drain server #2 so its metrics JSON lands on disk.
        run([cli, "client", f"--socket={socket_path}", "--shutdown"])
        server.wait(timeout=60)
        assert server.returncode == 0, f"server exited {server.returncode}"
        if os.path.exists(metrics2):
            with open(metrics2) as handle:
                artifact["server2_metrics"] = json.load(handle)

        # Byte-identity: clients' reports, reassembled in global-id
        # order, must equal the one-shot batch report exactly.
        merged = os.path.join(scratch, "report_merged.txt")
        with open(merged, "wb") as out:
            for report in reports1 + reports2:
                with open(report, "rb") as part:
                    shutil.copyfileobj(part, out)
        with open(merged, "rb") as a, open(batch_report, "rb") as b:
            merged_bytes, batch_bytes = a.read(), b.read()
        assert merged_bytes == batch_bytes, (
            "soak reports differ from batch ground truth "
            f"({len(merged_bytes)} vs {len(batch_bytes)} bytes)")
        artifact["total_solved"] = total
        artifact["byte_identical_to_batch"] = True
        print(f"soak: {total} streamed results byte-identical to batch "
              f"({len(batch_bytes)} bytes)")

        with open(args.out, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
        print(f"soak: metrics artifact written to {args.out}")
    except AssertionError as exc:
        print(f"soak_serve: FAILED: {exc}", file=sys.stderr)
        return 1
    finally:
        if server is not None and server.poll() is None:
            server.kill()
            server.wait()
        shutil.rmtree(scratch, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
