#!/usr/bin/env python3
"""Wire-protocol conformance harness for the resident exchange service.

Reimplements the serve protocol (docs/SERVING.md) from the spec alone —
stdlib ``struct`` + ``socket``, no project code — and drives a real
``gdx_cli serve`` process through both the happy path and every
malformed-input path the spec promises to survive:

  * version handshake (HELLO/HELLO_ACK field-by-field),
  * typed error codes: VERSION_MISMATCH (payload- and frame-level),
    BAD_FRAME (nonzero reserved bytes, truncated frames, unknown REQUEST
    flag bits, malformed CANCEL), OVERSIZED_FRAME, UNKNOWN_TYPE,
    NOT_READY (traffic before HELLO), PARSE_ERROR,
  * v2 deadline/cancel conformance: a REQUEST with a generous deadline_ms
    still round-trips to its RESULT; CANCEL of an unknown id answers a
    typed UNKNOWN_REQUEST *without* killing the connection or the server,
  * truncated / oversized / garbage frames must never kill the server:
    after each abuse a fresh well-formed connection must still solve a
    scenario,
  * graceful shutdown: SHUTDOWN drains to BYE and the process exits 0.

Exit status 0 iff every check passes. CI runs this inside the serve-soak
job; locally:  python3 scripts/check_protocol.py --cli build/gdx_cli
"""

import argparse
import os
import signal
import socket
import struct
import subprocess
import sys
import time

PROTOCOL_VERSION = 2
FRAME_HEADER_SIZE = 8
MAX_FRAME_PAYLOAD = 16 << 20

# FrameType
HELLO = 0x01
HELLO_ACK = 0x02
REQUEST = 0x03
RESULT = 0x04
ERROR = 0x05
PING = 0x06
PONG = 0x07
STATS_REQ = 0x08
STATS = 0x09
SHUTDOWN = 0x0A
BYE = 0x0B
CANCEL = 0x0C

# REQUEST flags (v2)
FLAG_DEADLINE = 1 << 0

# ServeError
E_VERSION_MISMATCH = 1
E_BAD_FRAME = 2
E_OVERSIZED_FRAME = 3
E_UNKNOWN_TYPE = 4
E_QUEUE_FULL = 5
E_PARSE_ERROR = 6
E_SOLVE_FAILED = 7
E_SHUTTING_DOWN = 8
E_NOT_READY = 9
E_DEADLINE_EXCEEDED = 10
E_CANCELED = 11
E_OVERLOADED = 12
E_UNKNOWN_REQUEST = 13

ERROR_NAMES = {
    E_VERSION_MISMATCH: "VERSION_MISMATCH",
    E_BAD_FRAME: "BAD_FRAME",
    E_OVERSIZED_FRAME: "OVERSIZED_FRAME",
    E_UNKNOWN_TYPE: "UNKNOWN_TYPE",
    E_QUEUE_FULL: "QUEUE_FULL",
    E_PARSE_ERROR: "PARSE_ERROR",
    E_SOLVE_FAILED: "SOLVE_FAILED",
    E_SHUTTING_DOWN: "SHUTTING_DOWN",
    E_NOT_READY: "NOT_READY",
    E_DEADLINE_EXCEEDED: "DEADLINE_EXCEEDED",
    E_CANCELED: "CANCELED",
    E_OVERLOADED: "OVERLOADED",
    E_UNKNOWN_REQUEST: "UNKNOWN_REQUEST",
}

SCENARIO = """relation Flight/3
relation Hotel/2
fact Flight(01, c1, c2)
fact Flight(02, c3, c2)
fact Hotel(01, hx)
fact Hotel(01, hy)
fact Hotel(02, hx)
stgd Flight(x1,x2,x3), Hotel(x1,x4) ->
     (x2, f . f*, y), (y, h, x4), (y, f . f*, x3)
egd (x1, h, x3), (x2, h, x3) -> x1 = x2
query (x1, f . f* [h] . f- . (f-)*, x2) -> x1, x2
"""


# --- wire primitives (docs/SERVING.md: little-endian, u64-length bytes) ----

def frame(ftype, payload=b"", version=PROTOCOL_VERSION, reserved=0):
    return struct.pack("<IBBH", len(payload), ftype, version,
                       reserved) + payload


def put_bytes(data):
    return struct.pack("<Q", len(data)) + data


def enc_hello(version=PROTOCOL_VERSION):
    return struct.pack("<I", version)


def enc_request(req_id, scenario_text, deadline_ms=0):
    """v2 REQUEST: id, flags, [deadline_ms iff FLAG_DEADLINE], text."""
    if deadline_ms:
        head = struct.pack("<QII", req_id, FLAG_DEADLINE, deadline_ms)
    else:
        head = struct.pack("<QI", req_id, 0)
    return head + put_bytes(scenario_text)


def enc_cancel(req_id):
    return struct.pack("<Q", req_id)


def dec_hello_ack(payload):
    version, max_payload, queue_capacity = struct.unpack("<III", payload)
    return {"version": version, "max_payload": max_payload,
            "queue_capacity": queue_capacity}


def dec_result(payload):
    (req_id,) = struct.unpack_from("<Q", payload, 0)
    (length,) = struct.unpack_from("<Q", payload, 8)
    text = payload[16:16 + length]
    assert len(text) == length, "truncated RESULT payload"
    return req_id, text


def dec_error(payload):
    (req_id,) = struct.unpack_from("<Q", payload, 0)
    (code,) = struct.unpack_from("<H", payload, 8)
    (length,) = struct.unpack_from("<Q", payload, 10)
    message = payload[18:18 + length]
    assert len(message) == length, "truncated ERROR payload"
    return req_id, code, message


class Conn:
    """One protocol connection over a unix or TCP socket."""

    def __init__(self, socket_path=None, port=None, timeout=30.0):
        if socket_path:
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self.sock.settimeout(timeout)
            self.sock.connect(socket_path)
        else:
            self.sock = socket.create_connection(("127.0.0.1", port),
                                                 timeout=timeout)

    def send_raw(self, data):
        self.sock.sendall(data)

    def send(self, ftype, payload=b"", **kwargs):
        self.sock.sendall(frame(ftype, payload, **kwargs))

    def recv_exact(self, n):
        buf = b""
        while len(buf) < n:
            chunk = self.sock.recv(n - len(buf))
            if not chunk:
                return buf  # EOF
            buf += chunk
        return buf

    def read_frame(self):
        """Returns (type, payload) or None on EOF."""
        header = self.recv_exact(FRAME_HEADER_SIZE)
        if not header:
            return None
        assert len(header) == FRAME_HEADER_SIZE, "truncated header from server"
        length, ftype, version, reserved = struct.unpack("<IBBH", header)
        assert version == PROTOCOL_VERSION, f"server sent version {version}"
        assert reserved == 0, "server sent nonzero reserved bytes"
        assert length <= MAX_FRAME_PAYLOAD, "server sent oversized frame"
        payload = self.recv_exact(length)
        assert len(payload) == length, "truncated payload from server"
        return ftype, payload

    def handshake(self):
        self.send(HELLO, enc_hello())
        ftype, payload = self.read_frame()
        assert ftype == HELLO_ACK, f"expected HELLO_ACK, got 0x{ftype:02x}"
        ack = dec_hello_ack(payload)
        assert ack["version"] == PROTOCOL_VERSION, ack
        assert ack["max_payload"] == MAX_FRAME_PAYLOAD, ack
        assert ack["queue_capacity"] >= 1, ack
        return ack

    def expect_error(self, want_code):
        got = self.read_frame()
        assert got is not None, (
            f"connection closed before typed {ERROR_NAMES[want_code]}")
        ftype, payload = got
        assert ftype == ERROR, f"expected ERROR, got 0x{ftype:02x}"
        _, code, message = dec_error(payload)
        assert code == want_code, (
            f"expected {ERROR_NAMES[want_code]}, got "
            f"{ERROR_NAMES.get(code, code)}: {message!r}")
        return message

    def expect_closed(self):
        """The server must close a connection after a fatal error.

        A close with client bytes still unread (e.g. the payload behind a
        rejected header) surfaces as ECONNRESET rather than clean EOF;
        both mean "server hung up", which is what the spec requires.
        """
        try:
            data = self.sock.recv(1)
        except ConnectionResetError:
            return
        assert data == b"", f"expected close, got {data!r}"

    def close(self):
        self.sock.close()


class Harness:
    def __init__(self, cli, socket_path):
        self.cli = cli
        self.socket_path = socket_path
        self.proc = None
        self.passed = 0

    def start_server(self):
        self.proc = subprocess.Popen(
            [self.cli, "serve", f"--socket={self.socket_path}",
             "--workers=2", "--queue=8"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        line = self.proc.stdout.readline()
        assert line.startswith("serving on"), f"no readiness line: {line!r}"

    def server_alive(self):
        return self.proc.poll() is None

    def connect(self):
        return Conn(socket_path=self.socket_path)

    def check(self, name, fn, expect_alive=True):
        try:
            fn()
            if expect_alive:
                assert self.server_alive(), "server process died"
            print(f"  ok  {name}")
            self.passed += 1
        except Exception as exc:  # noqa: BLE001 - report and fail the run
            print(f"FAIL  {name}: {exc}")
            raise

    # --- the conformance checks -------------------------------------------

    def check_handshake(self):
        conn = self.connect()
        ack = conn.handshake()
        assert ack["queue_capacity"] == 8, ack
        conn.close()

    def check_ping_and_stats(self):
        conn = self.connect()
        conn.handshake()
        conn.send(PING)
        ftype, payload = conn.read_frame()
        assert ftype == PONG and payload == b"", (ftype, payload)
        conn.send(STATS_REQ)
        ftype, payload = conn.read_frame()
        assert ftype == STATS, f"expected STATS, got 0x{ftype:02x}"
        (length,) = struct.unpack_from("<Q", payload, 0)
        body = payload[8:8 + length]
        assert b"serve.connections" in body, body[:200]
        conn.close()

    def check_request_roundtrip(self):
        conn = self.connect()
        conn.handshake()
        conn.send(REQUEST, enc_request(7, SCENARIO.encode()))
        ftype, payload = conn.read_frame()
        assert ftype == RESULT, f"expected RESULT, got 0x{ftype:02x}"
        req_id, text = dec_result(payload)
        assert req_id == 7, req_id
        assert text, "empty outcome text"
        conn.close()

    def check_parse_error_is_nonfatal(self):
        conn = self.connect()
        conn.handshake()
        conn.send(REQUEST, enc_request(9, b"relation Broken(/oops"))
        got = conn.read_frame()
        assert got[0] == ERROR, got
        req_id, code, _ = dec_error(got[1])
        assert (req_id, code) == (9, E_PARSE_ERROR), (req_id, code)
        # The connection survives a parse error: a good request still works.
        conn.send(REQUEST, enc_request(10, SCENARIO.encode()))
        ftype, payload = conn.read_frame()
        assert ftype == RESULT and dec_result(payload)[0] == 10
        conn.close()

    def check_deadline_request_roundtrip(self):
        # A deadline the solve comfortably beats must not change the
        # answer: same RESULT as an undeadlined request.
        conn = self.connect()
        conn.handshake()
        conn.send(REQUEST, enc_request(20, SCENARIO.encode()))
        ftype, payload = conn.read_frame()
        assert ftype == RESULT, f"expected RESULT, got 0x{ftype:02x}"
        _, plain_text = dec_result(payload)
        conn.send(REQUEST,
                  enc_request(21, SCENARIO.encode(), deadline_ms=60000))
        ftype, payload = conn.read_frame()
        assert ftype == RESULT, f"expected RESULT, got 0x{ftype:02x}"
        req_id, text = dec_result(payload)
        assert req_id == 21, req_id
        assert text == plain_text, "deadline changed the outcome bytes"
        conn.close()

    def check_cancel_unknown_id(self):
        # CANCEL of an id that is not in flight is an error, not a crash:
        # typed UNKNOWN_REQUEST, connection stays usable.
        conn = self.connect()
        conn.handshake()
        conn.send(CANCEL, enc_cancel(0xDEAD))
        got = conn.read_frame()
        assert got is not None and got[0] == ERROR, got
        req_id, code, _ = dec_error(got[1])
        assert (req_id, code) == (0xDEAD, E_UNKNOWN_REQUEST), (req_id, code)
        conn.send(PING)
        ftype, payload = conn.read_frame()
        assert ftype == PONG, f"connection dead after CANCEL: 0x{ftype:02x}"
        conn.close()

    def check_malformed_cancel(self):
        conn = self.connect()
        conn.handshake()
        conn.send(CANCEL, b"\x01\x02\x03")  # not a u64
        conn.expect_error(E_BAD_FRAME)
        conn.expect_closed()
        conn.close()

    def check_unknown_request_flags(self):
        conn = self.connect()
        conn.handshake()
        payload = (struct.pack("<QI", 30, 0x80) +
                   put_bytes(SCENARIO.encode()))
        conn.send(REQUEST, payload)
        conn.expect_error(E_BAD_FRAME)
        conn.expect_closed()
        conn.close()

    def check_flagged_zero_deadline(self):
        conn = self.connect()
        conn.handshake()
        payload = (struct.pack("<QII", 31, FLAG_DEADLINE, 0) +
                   put_bytes(SCENARIO.encode()))
        conn.send(REQUEST, payload)
        conn.expect_error(E_BAD_FRAME)
        conn.expect_closed()
        conn.close()

    def check_traffic_before_hello(self):
        conn = self.connect()
        conn.send(PING)
        conn.expect_error(E_NOT_READY)
        conn.expect_closed()
        conn.close()

    def check_hello_payload_version_mismatch(self):
        conn = self.connect()
        conn.send(HELLO, enc_hello(version=99))
        conn.expect_error(E_VERSION_MISMATCH)
        conn.expect_closed()
        conn.close()

    def check_frame_version_mismatch(self):
        conn = self.connect()
        conn.send(HELLO, enc_hello(), version=PROTOCOL_VERSION + 1)
        conn.expect_error(E_VERSION_MISMATCH)
        conn.expect_closed()
        conn.close()

    def check_nonzero_reserved(self):
        conn = self.connect()
        conn.send(HELLO, enc_hello(), reserved=0xBEEF)
        conn.expect_error(E_BAD_FRAME)
        conn.expect_closed()
        conn.close()

    def check_oversized_length(self):
        conn = self.connect()
        conn.send_raw(struct.pack("<IBBH", MAX_FRAME_PAYLOAD + 1, HELLO,
                                  PROTOCOL_VERSION, 0))
        conn.expect_error(E_OVERSIZED_FRAME)
        conn.expect_closed()
        conn.close()

    def check_unknown_type(self):
        conn = self.connect()
        conn.handshake()
        conn.send(0x7F)
        conn.expect_error(E_UNKNOWN_TYPE)
        conn.expect_closed()
        conn.close()

    def check_truncated_header(self):
        conn = self.connect()
        conn.send_raw(b"\x04\x00\x00")  # 3 of 8 header bytes, then close
        conn.close()

    def check_truncated_payload(self):
        conn = self.connect()
        # Header promises 64 payload bytes; deliver 5 and vanish.
        conn.send_raw(struct.pack("<IBBH", 64, HELLO, PROTOCOL_VERSION, 0))
        conn.send_raw(b"\x01\x02\x03\x04\x05")
        conn.close()

    def check_garbage_stream(self):
        # Deterministic garbage whose first byte-quad decodes to a small
        # length and whose "version" byte is wrong — exercises the reject
        # path with bytes that never formed a real frame.
        conn = self.connect()
        garbage = bytes((i * 37 + 11) % 251 for i in range(256))
        conn.send_raw(garbage)
        # Whatever the server answers (typed error or close), it must not
        # die and must not echo garbage: drain until EOF.
        try:
            while conn.read_frame() is not None:
                pass
        except AssertionError:
            pass  # typed-error frames are fine too; only survival matters
        except OSError:
            pass
        conn.close()

    def check_recovery_after_abuse(self):
        """After every malformed connection the server still serves."""
        conn = self.connect()
        conn.handshake()
        conn.send(REQUEST, enc_request(77, SCENARIO.encode()))
        ftype, payload = conn.read_frame()
        assert ftype == RESULT and dec_result(payload)[0] == 77
        conn.close()

    def check_graceful_shutdown(self):
        conn = self.connect()
        conn.handshake()
        conn.send(SHUTDOWN)
        ftype, payload = conn.read_frame()
        assert ftype == BYE and payload == b"", (ftype, payload)
        conn.close()
        try:
            code = self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise AssertionError("server did not exit after BYE")
        assert code == 0, f"server exited {code}"
        rest = self.proc.stdout.read()
        assert "serve: drained, exiting" in rest, rest

    def run(self):
        self.start_server()
        try:
            self.check("handshake fields", self.check_handshake)
            self.check("ping/pong + stats", self.check_ping_and_stats)
            self.check("request round trip", self.check_request_roundtrip)
            self.check("PARSE_ERROR is typed and non-fatal",
                       self.check_parse_error_is_nonfatal)
            self.check("deadline_ms round trip is byte-identical",
                       self.check_deadline_request_roundtrip)
            self.check("CANCEL of unknown id -> UNKNOWN_REQUEST, non-fatal",
                       self.check_cancel_unknown_id)
            self.check("malformed CANCEL -> BAD_FRAME",
                       self.check_malformed_cancel)
            self.check("unknown REQUEST flag bits -> BAD_FRAME",
                       self.check_unknown_request_flags)
            self.check("flagged zero deadline -> BAD_FRAME",
                       self.check_flagged_zero_deadline)
            self.check("traffic before HELLO -> NOT_READY",
                       self.check_traffic_before_hello)
            self.check("HELLO payload version mismatch",
                       self.check_hello_payload_version_mismatch)
            self.check("frame-header version mismatch",
                       self.check_frame_version_mismatch)
            self.check("nonzero reserved bytes -> BAD_FRAME",
                       self.check_nonzero_reserved)
            self.check("oversized length prefix -> OVERSIZED_FRAME",
                       self.check_oversized_length)
            self.check("unknown frame type -> UNKNOWN_TYPE",
                       self.check_unknown_type)
            self.check("truncated header survived",
                       self.check_truncated_header)
            self.check("truncated payload survived",
                       self.check_truncated_payload)
            self.check("garbage stream survived", self.check_garbage_stream)
            self.check("server serves after abuse",
                       self.check_recovery_after_abuse)
            self.check("SHUTDOWN drains to BYE, exit 0",
                       self.check_graceful_shutdown, expect_alive=False)
        finally:
            if self.proc.poll() is None:
                self.proc.send_signal(signal.SIGKILL)
                self.proc.wait()
        print(f"check_protocol: {self.passed} checks passed")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", default="build/gdx_cli",
                        help="path to the gdx_cli binary")
    parser.add_argument("--socket", default=None,
                        help="unix socket path (default: a /tmp path)")
    args = parser.parse_args()
    if not os.path.exists(args.cli):
        print(f"error: no such binary: {args.cli}", file=sys.stderr)
        return 2
    socket_path = args.socket or f"/tmp/gdx_check_protocol_{os.getpid()}.sock"
    harness = Harness(os.path.abspath(args.cli), socket_path)
    try:
        harness.run()
    except AssertionError as exc:
        print(f"check_protocol: FAILED: {exc}", file=sys.stderr)
        return 1
    finally:
        if os.path.exists(socket_path):
            os.unlink(socket_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
