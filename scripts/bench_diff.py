#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on perf regressions.

The CI bench-smoke job stores every run's BENCH_*.json as a workflow
artifact; this script diffs the current run against the previous run's
artifact and exits non-zero when any tracked benchmark's cpu_time grew by
more than the threshold — the ROADMAP "perf trajectory" gate.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--threshold 0.25]
                  [--filter REGEX]

Behavior:
  * A missing/unreadable baseline file is not an error (first run, expired
    artifact): the script reports and exits 0.
  * Only per-iteration entries are compared (aggregates are skipped).
  * Benchmarks present on one side only are reported informationally.
  * cpu_time is normalized via time_unit, so a unit change in the bench
    source does not fake a regression.
  * Latency-distribution counters (ISSUE 6): any user counter whose name
    looks like a percentile — p50/p90/p99/..., optionally with a prefix or
    a unit suffix ("p99", "solve_p50_ns") — is diffed under the same
    threshold as cpu_time, shown as "bench/counter". A batch whose mean
    stays flat while its tail doubles now fails the gate.
"""

import argparse
import json
import re
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# User counters treated as latency metrics: "p50", "p99", "exec_p50_ns"...
_PERCENTILE_RE = re.compile(r"(^|_)p\d+(_|$)")


def percentile_counters(entry):
    """The percentile-shaped user counters of one benchmark entry."""
    out = {}
    for key, value in entry.items():
        if _PERCENTILE_RE.search(key) and isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def load_benchmarks(path):
    """name -> {"cpu_time": ns, <percentile counter>: value, ...}.

    Prefers the median aggregate when the run used
    --benchmark_repetitions (far more stable on shared CI runners than a
    single iteration); falls back to the last per-iteration entry.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    iterations = {}
    medians = {}
    for entry in doc.get("benchmarks", []):
        name = entry.get("name")
        cpu = entry.get("cpu_time")
        if name is None or cpu is None:
            continue
        metrics = {"cpu_time":
                   cpu * _UNIT_NS.get(entry.get("time_unit", "ns"), 1.0)}
        metrics.update(percentile_counters(entry))
        run_type = entry.get("run_type", "iteration")
        if run_type == "iteration":
            iterations[entry.get("run_name", name)] = metrics
        elif (run_type == "aggregate"
              and entry.get("aggregate_name") == "median"):
            medians[entry.get("run_name", name)] = metrics
    out = dict(iterations)
    out.update(medians)  # medians win where both exist
    return out


def format_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return "%.3g%s" % (ns / scale, unit)
    return "%.3g ns" % ns


def main():
    parser = argparse.ArgumentParser(
        description="Diff google-benchmark JSON runs; fail on regression.")
    parser.add_argument("baseline", help="previous run's JSON")
    parser.add_argument("current", help="this run's JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative cpu_time growth "
                             "(0.25 = +25%%)")
    parser.add_argument("--filter", default="",
                        help="regex of tracked benchmark names "
                             "(default: all common names)")
    args = parser.parse_args()

    try:
        baseline = load_benchmarks(args.baseline)
    except (OSError, ValueError) as err:
        print("bench_diff: no usable baseline (%s); skipping diff" % err)
        return 0
    try:
        current = load_benchmarks(args.current)
    except (OSError, ValueError) as err:
        print("bench_diff: cannot read current run: %s" % err,
              file=sys.stderr)
        return 2

    tracked = re.compile(args.filter) if args.filter else None
    common = sorted(name for name in baseline if name in current)
    regressions = []
    compared = 0
    print("%-52s %12s %12s %8s" % ("benchmark", "baseline", "current",
                                   "ratio"))
    for name in common:
        if tracked is not None and not tracked.search(name):
            continue
        old_metrics, new_metrics = baseline[name], current[name]
        for metric in sorted(old_metrics, key=lambda m: m != "cpu_time"):
            if metric not in new_metrics:
                continue
            old, new = old_metrics[metric], new_metrics[metric]
            label = name if metric == "cpu_time" \
                else "%s/%s" % (name, metric)
            ratio = new / old if old > 0 \
                else (1.0 if new == 0 else float("inf"))
            compared += 1
            flag = ""
            if ratio > 1.0 + args.threshold:
                flag = "  REGRESSED"
                regressions.append((label, ratio))
            elif ratio < 1.0 / (1.0 + args.threshold):
                flag = "  improved"
            print("%-52s %12s %12s %7.2fx%s"
                  % (label, format_ns(old), format_ns(new), ratio, flag))

    for name in sorted(set(current) - set(baseline)):
        print("new benchmark (no baseline): %s" % name)
    for name in sorted(set(baseline) - set(current)):
        print("dropped benchmark: %s" % name)

    if regressions:
        print("\n%d benchmark(s) regressed more than +%d%%:"
              % (len(regressions), round(args.threshold * 100)),
              file=sys.stderr)
        for name, ratio in regressions:
            print("  %s: %.2fx" % (name, ratio), file=sys.stderr)
        return 1
    print("\nno regression beyond +%d%% across %d compared metric(s)"
          % (round(args.threshold * 100), compared))
    return 0


if __name__ == "__main__":
    sys.exit(main())
