#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on perf regressions.

The CI bench-smoke job stores every run's BENCH_*.json as a workflow
artifact; this script diffs the current run against the previous run's
artifact and exits non-zero when any tracked benchmark's cpu_time grew by
more than the threshold — the ROADMAP "perf trajectory" gate.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--threshold 0.25]
                  [--filter REGEX]

Behavior:
  * A missing/unreadable baseline file is not an error (first run, expired
    artifact): the script reports and exits 0.
  * Only per-iteration entries are compared (aggregates are skipped).
  * Benchmarks present on one side only are reported informationally.
  * cpu_time is normalized via time_unit, so a unit change in the bench
    source does not fake a regression.
"""

import argparse
import json
import re
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """name -> cpu_time in ns per benchmark.

    Prefers the median aggregate when the run used
    --benchmark_repetitions (far more stable on shared CI runners than a
    single iteration); falls back to the last per-iteration entry.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    iterations = {}
    medians = {}
    for entry in doc.get("benchmarks", []):
        name = entry.get("name")
        cpu = entry.get("cpu_time")
        if name is None or cpu is None:
            continue
        ns = cpu * _UNIT_NS.get(entry.get("time_unit", "ns"), 1.0)
        run_type = entry.get("run_type", "iteration")
        if run_type == "iteration":
            iterations[entry.get("run_name", name)] = ns
        elif (run_type == "aggregate"
              and entry.get("aggregate_name") == "median"):
            medians[entry.get("run_name", name)] = ns
    out = dict(iterations)
    out.update(medians)  # medians win where both exist
    return out


def format_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return "%.3g%s" % (ns / scale, unit)
    return "%.3g ns" % ns


def main():
    parser = argparse.ArgumentParser(
        description="Diff google-benchmark JSON runs; fail on regression.")
    parser.add_argument("baseline", help="previous run's JSON")
    parser.add_argument("current", help="this run's JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative cpu_time growth "
                             "(0.25 = +25%%)")
    parser.add_argument("--filter", default="",
                        help="regex of tracked benchmark names "
                             "(default: all common names)")
    args = parser.parse_args()

    try:
        baseline = load_benchmarks(args.baseline)
    except (OSError, ValueError) as err:
        print("bench_diff: no usable baseline (%s); skipping diff" % err)
        return 0
    try:
        current = load_benchmarks(args.current)
    except (OSError, ValueError) as err:
        print("bench_diff: cannot read current run: %s" % err,
              file=sys.stderr)
        return 2

    tracked = re.compile(args.filter) if args.filter else None
    common = sorted(name for name in baseline if name in current)
    regressions = []
    print("%-52s %12s %12s %8s" % ("benchmark", "baseline", "current",
                                   "ratio"))
    for name in common:
        if tracked is not None and not tracked.search(name):
            continue
        old, new = baseline[name], current[name]
        ratio = new / old if old > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  REGRESSED"
            regressions.append((name, ratio))
        elif ratio < 1.0 / (1.0 + args.threshold):
            flag = "  improved"
        print("%-52s %12s %12s %7.2fx%s"
              % (name, format_ns(old), format_ns(new), ratio, flag))

    for name in sorted(set(current) - set(baseline)):
        print("new benchmark (no baseline): %s" % name)
    for name in sorted(set(baseline) - set(current)):
        print("dropped benchmark: %s" % name)

    if regressions:
        print("\n%d benchmark(s) regressed more than +%d%%:"
              % (len(regressions), round(args.threshold * 100)),
              file=sys.stderr)
        for name, ratio in regressions:
            print("  %s: %.2fx" % (name, ratio), file=sys.stderr)
        return 1
    print("\nno regression beyond +%d%% across %d compared benchmark(s)"
          % (round(args.threshold * 100), len(common)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
