#!/usr/bin/env python3
"""Emit seeded random exchange scenarios in the .gdx DSL.

The CI chase-diff job (ISSUE 9) feeds the same generated corpus through
`gdx_cli batch --chase=naive` and `--chase=delta` and byte-compares the
two --report-out files: the semi-naive, reliance-scheduled chase must be
observationally identical to the legacy reference on every scenario. The
generator mirrors the shapes of tests/delta_chase_test.cpp's in-process
battery — existential heads that mint nulls, complex NRE heads, egds
whose constant clashes make some chases fail, and labels no rule derives
(dead rules, the skip case) — so the corpus exercises every regime the
delta chase treats specially.

Usage:
    gen_scenarios.py --out DIR [--count N] [--seed S]

Writes N files DIR/gen_XXXX.gdx (deterministic for a given --seed).
"""

import argparse
import os
import random

LABELS = ["a", "b", "c", "d", "hub"]
BODY_VARS = ["x", "y", "z"]
EGD_VARS = ["u1", "u2", "v1", "v2"]


def scenario_text(rng):
    lines = ["relation R/2", "relation S/2"]
    num_consts = rng.randint(3, 6)
    for _ in range(rng.randint(3, 8)):
        rel = rng.choice(["R", "S"])
        lines.append("fact %s(c%d, c%d)" % (rel, rng.randrange(num_consts),
                                            rng.randrange(num_consts)))
    for _ in range(rng.randint(1, 4)):
        body = rng.choice(["R(x, y)", "S(x, y)"])
        if rng.random() < 0.3:
            body += rng.choice([", S(y, z)", ", R(y, z)"])
        heads = []
        for _ in range(2 if rng.random() < 0.4 else 1):
            nre = rng.choice(LABELS)
            shape = rng.random()
            if shape < 0.15:
                nre += " . " + rng.choice(LABELS)
            elif shape < 0.25:
                nre += " + " + rng.choice(LABELS)
            elif shape < 0.32:
                nre += "*"
            v1 = rng.choice(BODY_VARS)
            # Existential targets mint the nulls egd merges move around.
            v2 = ("e%d" % rng.randint(1, 2)) if rng.random() < 0.45 \
                else rng.choice(BODY_VARS)
            heads.append("(%s, %s, %s)" % (v1, nre, v2))
        lines.append("stgd %s -> %s" % (body, ", ".join(heads)))
    for _ in range(rng.randint(0, 3)):
        used = []
        atoms = []
        for _ in range(2 if rng.random() < 0.5 else 1):
            lbl = rng.choice(LABELS)
            if rng.random() < 0.2:
                lbl += "*"
            v1, v2 = rng.choice(EGD_VARS), rng.choice(EGD_VARS)
            used += [v1, v2]
            atoms.append("(%s, %s, %s)" % (v1, lbl, v2))
        lines.append("egd %s -> %s = %s" %
                     (", ".join(atoms), rng.choice(used), rng.choice(used)))
    return "\n".join(lines) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True, help="output directory")
    parser.add_argument("--count", type=int, default=250)
    parser.add_argument("--seed", type=int, default=9)
    args = parser.parse_args()

    os.makedirs(args.out, exist_ok=True)
    for i in range(args.count):
        # One independent stream per file: a count change never reshuffles
        # the scenarios other files get.
        rng = random.Random((args.seed << 20) + i)
        path = os.path.join(args.out, "gen_%04d.gdx" % i)
        with open(path, "w") as f:
            f.write(scenario_text(rng))
    print("wrote %d scenarios to %s (seed %d)" %
          (args.count, args.out, args.seed))


if __name__ == "__main__":
    main()
