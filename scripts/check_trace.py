#!/usr/bin/env python3
"""CI trace gate (ISSUE 6 satellite): validate a --trace-out export.

A trace file that chrome://tracing silently mis-renders is worse than no
trace at all, so the bench-smoke job runs every traced batch's output
through this script. Checks:

1. The file is well-formed JSON of the Chrome trace-event "object" form:
   {"displayTimeUnit": ..., "traceEvents": [...]}.
2. Every event carries the required keys for its phase; ts/dur are
   non-negative numbers; pid/tid are integers.
3. Duration events are *balanced and properly nested per thread*: each E
   closes the most recent open B of the same tid with the same name
   (LIFO), and no B stays open at the end — the invariant the tracer's
   open-stack emitter guarantees and viewers rely on.
4. Optional --require-span NAME flags (repeatable): at least one B event
   with that name exists — the smoke test asserts the engine actually
   traced a solve, not just an empty envelope.

Usage:
    check_trace.py TRACE.json [--require-span solve] [--require-span ...]

Exit code 0 = clean, 1 = findings (listed on stdout), 2 = unusable input.
"""

import argparse
import json
import sys


def check_events(events, problems):
    """Walk traceEvents; return {span name -> B count}."""
    open_spans = {}  # tid -> [names]
    begin_counts = {}
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        phase = event.get("ph")
        if phase not in ("B", "E", "M", "X", "i", "C"):
            problems.append("%s: unknown phase %r" % (where, phase))
            continue
        if not isinstance(event.get("pid"), int) or \
                not isinstance(event.get("tid"), int):
            problems.append("%s: pid/tid must be integers" % where)
            continue
        tid = event["tid"]
        if phase == "M":
            if "name" not in event:
                problems.append("%s: metadata event without name" % where)
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append("%s: bad ts %r" % (where, ts))
        name = event.get("name")
        if phase == "B":
            if not isinstance(name, str) or not name:
                problems.append("%s: B event without name" % where)
                continue
            open_spans.setdefault(tid, []).append(name)
            begin_counts[name] = begin_counts.get(name, 0) + 1
        elif phase == "E":
            stack = open_spans.setdefault(tid, [])
            if not stack:
                problems.append(
                    "%s: E with no open span on tid %d" % (where, tid))
            elif name is not None and name != stack[-1]:
                # Our exporter names its E events; when named, the name
                # must LIFO-match the innermost open B.
                problems.append(
                    "%s: E %r does not close innermost B %r on tid %d"
                    % (where, name, stack[-1], tid))
                stack.pop()
            else:
                stack.pop()
    for tid, stack in sorted(open_spans.items()):
        for name in stack:
            problems.append("tid %d: span %r never closed" % (tid, name))
    return begin_counts


def main():
    parser = argparse.ArgumentParser(
        description="Validate a Chrome trace-event JSON export.")
    parser.add_argument("trace", help="path to the --trace-out file")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a B event with NAME exists "
                             "(repeatable)")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print("check_trace: cannot parse %s: %s" % (args.trace, err),
              file=sys.stderr)
        return 2

    problems = []
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        print("check_trace: %s: no traceEvents array" % args.trace,
              file=sys.stderr)
        return 2

    begin_counts = check_events(events, problems)
    for required in args.require_span:
        if begin_counts.get(required, 0) == 0:
            problems.append("required span %r not present" % required)

    for problem in problems:
        print("check_trace: %s" % problem)
    if problems:
        print("check_trace: %d problem(s) in %s"
              % (len(problems), args.trace))
        return 1
    spans = sum(begin_counts.values())
    print("check_trace: %s ok — %d event(s), %d balanced span(s), "
          "%d distinct name(s)"
          % (args.trace, len(events), spans, len(begin_counts)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
