// ISSUE 2 tests: intra-solve parallelism must never change results —
// byte-identical solutions, certain answers and existence verdicts at 1,
// 2 and 8 workers — the SAT cube deck must be thread-count invariant,
// per-solve cache counters must sum exactly to batch totals under
// concurrency, the LRU cap must bound the cache, and cancellation must
// turn a solve into a sound "unknown".
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/batch_executor.h"
#include "engine/cache.h"
#include "engine/exchange_engine.h"
#include "engine/parallel_search.h"
#include "reduction/sat_encoding.h"
#include "sat/gen.h"
#include "solver/existence.h"
#include "workload/flights.h"

namespace gdx {
namespace {

EngineOptions PaperOptions() {
  EngineOptions options;
  options.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = 12;
  return options;
}

/// The scenario family the determinism contract is checked on: paper
/// examples (multiple constraint flavors) + generated flight workloads.
std::vector<Scenario> MakeScenarioSet() {
  std::vector<Scenario> set;
  set.push_back(MakeExample22Scenario(FlightConstraintMode::kEgd));
  set.push_back(MakeExample22Scenario(FlightConstraintMode::kSameAs));
  set.push_back(MakeExample22Scenario(FlightConstraintMode::kNone));
  set.push_back(MakeExample52Scenario());
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    FlightWorkloadParams params;
    params.seed = seed;
    params.num_cities = 4;
    params.num_flights = 5;
    params.num_hotels = 3;
    params.mode = seed % 2 == 0 ? FlightConstraintMode::kSameAs
                                : FlightConstraintMode::kEgd;
    set.push_back(MakeFlightScenario(params));
  }
  return set;
}

std::vector<std::string> SolveAllToStrings(size_t intra_threads) {
  EngineOptions options = PaperOptions();
  options.intra_solve_threads = intra_threads;
  // At 3 witnesses/edge the paper scenarios' choice spaces (3^7 = 2187
  // ranks for Example 2.2) clear parallel_min_ranks, so the fan-out
  // machinery genuinely engages here.
  ExchangeEngine engine(options);
  std::vector<Scenario> scenarios = MakeScenarioSet();
  std::vector<std::string> out;
  for (Scenario& s : scenarios) {
    Result<ExchangeOutcome> outcome = engine.Solve(s);
    out.push_back(outcome.ok() ? outcome->ToString(*s.universe, *s.alphabet)
                               : outcome.status().ToString());
  }
  return out;
}

/// Theorem 4.1 UNSAT instance: the bounded search must exhaust all 2^n
/// witness combinations — the embarrassingly parallel hot path.
SatEncodedExchange MakeUnsatReduction(int n, Universe& universe) {
  Rng rng(77);
  CnfFormula f = RandomKSat(n - 1 > 2 ? n - 1 : 2, 2 * n, 3, rng);
  f.set_num_vars(n);
  f.AddClause({n});
  f.AddClause({-n});
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(f, universe, ReductionMode::kEgd);
  EXPECT_TRUE(enc.ok());
  return std::move(enc).value();
}

ExistenceOptions ReductionOptions(ExistenceStrategy strategy,
                                  size_t threads, ThreadPool* pool) {
  ExistenceOptions options;
  options.strategy = strategy;
  options.instantiation.max_edges_per_witness = 1;
  options.instantiation.max_witnesses_per_edge = 2;
  options.intra_solve_threads = threads;
  options.intra_pool = pool;
  options.parallel_min_ranks = 2;  // engage even on small spaces
  options.parallel_chunk = 8;
  return options;
}

// --- Determinism across worker counts --------------------------------------

TEST(IntraSolveTest, SolveOutputsAreByteIdenticalAt1and2and8Workers) {
  std::vector<std::string> at1 = SolveAllToStrings(1);
  std::vector<std::string> at2 = SolveAllToStrings(2);
  std::vector<std::string> at8 = SolveAllToStrings(8);
  ASSERT_EQ(at1.size(), at2.size());
  ASSERT_EQ(at1.size(), at8.size());
  for (size_t i = 0; i < at1.size(); ++i) {
    EXPECT_EQ(at2[i], at1[i]) << "scenario " << i << " at 2 workers";
    EXPECT_EQ(at8[i], at1[i]) << "scenario " << i << " at 8 workers";
  }
}

TEST(IntraSolveTest, BoundedSearchExhaustionIsThreadCountInvariant) {
  AutomatonNreEvaluator eval;
  ThreadPool pool(4);
  ExistenceReport baseline;
  for (size_t threads : {1u, 2u, 4u}) {
    Universe universe;
    SatEncodedExchange enc = MakeUnsatReduction(7, universe);
    ExistenceOptions options = ReductionOptions(
        ExistenceStrategy::kBoundedSearch, threads, &pool);
    ExistenceReport report = ExistenceSolver(&eval, options)
                                 .Decide(enc.setting, *enc.instance,
                                         universe);
    EXPECT_EQ(report.verdict, ExistenceVerdict::kNo) << report.note;
    EXPECT_EQ(report.candidates_tried, size_t{1} << 7)
        << "complete exhaustion of the 2^7 choice space";
    if (threads == 1) {
      baseline = report;
    } else {
      EXPECT_EQ(report.note, baseline.note);
      EXPECT_EQ(report.candidates_tried, baseline.candidates_tried);
    }
  }
}

TEST(IntraSolveTest, BoundedSearchWitnessIsThreadCountInvariant) {
  // Satisfiable instance: all worker counts must return the *same*
  // minimal-rank witness, byte for byte (nulls included).
  AutomatonNreEvaluator eval;
  ThreadPool pool(4);
  std::string baseline;
  size_t baseline_tried = 0;
  for (size_t threads : {1u, 4u}) {
    Universe universe;
    Rng rng(99);
    CnfFormula f = PlantedKSat(7, 20, 3, rng);
    Result<SatEncodedExchange> enc =
        EncodeSatToSetting(f, universe, ReductionMode::kEgd);
    ASSERT_TRUE(enc.ok());
    ExistenceOptions options = ReductionOptions(
        ExistenceStrategy::kBoundedSearch, threads, &pool);
    ExistenceReport report = ExistenceSolver(&eval, options)
                                 .Decide(enc->setting, *enc->instance,
                                         universe);
    ASSERT_EQ(report.verdict, ExistenceVerdict::kYes) << report.note;
    ASSERT_TRUE(report.witness.has_value());
    std::string rendered =
        report.witness->ToString(universe, *enc->alphabet);
    if (threads == 1) {
      baseline = rendered;
      baseline_tried = report.candidates_tried;
    } else {
      EXPECT_EQ(rendered, baseline)
          << "parallel search must return the sequential first hit";
      EXPECT_EQ(report.candidates_tried, baseline_tried);
    }
  }
}

TEST(IntraSolveTest, SatCubeDeckIsThreadCountInvariant) {
  AutomatonNreEvaluator eval;
  ThreadPool pool(4);
  std::string baseline;
  size_t baseline_tried = 0;
  for (size_t threads : {1u, 4u}) {
    Universe universe;
    Rng rng(123);
    CnfFormula f = PlantedKSat(12, 40, 3, rng);
    Result<SatEncodedExchange> enc =
        EncodeSatToSetting(f, universe, ReductionMode::kEgd);
    ASSERT_TRUE(enc.ok());
    ExistenceOptions options = ReductionOptions(
        ExistenceStrategy::kSatBacked, threads, &pool);
    ExistenceReport report = ExistenceSolver(&eval, options)
                                 .Decide(enc->setting, *enc->instance,
                                         universe);
    ASSERT_EQ(report.verdict, ExistenceVerdict::kYes) << report.note;
    ASSERT_TRUE(report.witness.has_value());
    std::string rendered =
        report.witness->ToString(universe, *enc->alphabet);
    if (threads == 1) {
      baseline = rendered;
      baseline_tried = report.candidates_tried;
    } else {
      EXPECT_EQ(rendered, baseline)
          << "the accepted model must come from the minimal SAT cube";
      EXPECT_EQ(report.candidates_tried, baseline_tried)
          << "deterministic decision accounting";
    }
  }
}

TEST(IntraSolveTest, SatDecisionBudgetDisablesCubesAndStaysSound) {
  // A nonzero budget must remain a whole-call latency bound (no per-cube
  // multiplication) and exhaust into a sound kUnknown, never a wrong kNo.
  AutomatonNreEvaluator eval;
  Universe universe;
  Rng rng(321);
  CnfFormula f = RandomKSat(16, 68, 3, rng);
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(f, universe, ReductionMode::kEgd);
  ASSERT_TRUE(enc.ok());
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kSatBacked;
  options.sat_max_decisions = 1;
  ExistenceReport report = ExistenceSolver(&eval, options)
                               .Decide(enc->setting, *enc->instance,
                                       universe);
  if (report.verdict != ExistenceVerdict::kYes) {
    EXPECT_EQ(report.verdict, ExistenceVerdict::kUnknown) << report.note;
    EXPECT_TRUE(report.budget_exhausted);
  }
}

TEST(IntraSolveTest, EnumerationIsThreadCountInvariant) {
  AutomatonNreEvaluator eval;
  ThreadPool pool(4);
  std::vector<std::string> baseline;
  for (size_t threads : {1u, 2u, 8u}) {
    Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
    ExistenceOptions options;
    options.instantiation.max_witnesses_per_edge = 3;
    options.intra_solve_threads = threads;
    options.intra_pool = &pool;
    options.parallel_min_ranks = 2;
    options.parallel_chunk = 4;
    std::vector<Graph> solutions =
        ExistenceSolver(&eval, options)
            .EnumerateSolutions(s.setting, *s.instance, *s.universe, 12);
    std::vector<std::string> rendered;
    for (const Graph& g : solutions) {
      rendered.push_back(g.Signature(*s.universe, *s.alphabet));
    }
    if (threads == 1) {
      baseline = rendered;
      EXPECT_GT(baseline.size(), 1u) << "scenario must have >1 solution";
    } else {
      EXPECT_EQ(rendered, baseline) << "at " << threads << " workers";
    }
  }
}

// --- Per-solve cache attribution under concurrency --------------------------

TEST(IntraSolveTest, PerSolveCacheCountersSumToBatchTotals) {
  // Concurrent batch + intra-solve workers: the thread-local sinks must
  // attribute every cache touch to exactly one solve, so per-solve sums
  // reproduce the batch-wide deltas.
  BatchOptions options;
  options.num_threads = 4;
  options.engine = PaperOptions();
  options.engine.intra_solve_threads = 2;
  std::vector<Scenario> batch;
  for (int round = 0; round < 3; ++round) {
    for (Scenario& s : MakeScenarioSet()) batch.push_back(std::move(s));
  }
  BatchReport report = BatchExecutor(options).SolveAll(batch);
  ASSERT_EQ(report.errors, 0u);

  uint64_t nre_hits = 0, nre_misses = 0, answer_hits = 0, answer_misses = 0;
  uint64_t compile_hits = 0, compile_misses = 0;
  uint64_t chase_hits = 0, chase_misses = 0;
  for (const Result<ExchangeOutcome>& r : report.outcomes) {
    ASSERT_TRUE(r.ok());
    nre_hits += r->metrics.nre_cache_hits;
    nre_misses += r->metrics.nre_cache_misses;
    answer_hits += r->metrics.answer_cache_hits;
    answer_misses += r->metrics.answer_cache_misses;
    compile_hits += r->metrics.compile_cache_hits;
    compile_misses += r->metrics.compile_cache_misses;
    chase_hits += r->metrics.chase_cache_hits;
    chase_misses += r->metrics.chase_cache_misses;
  }
  EXPECT_EQ(nre_hits, report.total.nre_cache_hits);
  EXPECT_EQ(nre_misses, report.total.nre_cache_misses);
  EXPECT_EQ(answer_hits, report.total.answer_cache_hits);
  EXPECT_EQ(answer_misses, report.total.answer_cache_misses);
  EXPECT_EQ(compile_hits, report.total.compile_cache_hits);
  EXPECT_EQ(compile_misses, report.total.compile_cache_misses);
  EXPECT_EQ(chase_hits, report.total.chase_cache_hits);
  EXPECT_EQ(chase_misses, report.total.chase_cache_misses);
  EXPECT_GT(nre_hits + nre_misses, 0u) << "the batch must touch the cache";
  EXPECT_GT(compile_hits + compile_misses, 0u)
      << "the batch must touch the compiled-automaton memo";
  EXPECT_GT(chase_hits, 0u)
      << "the repeated batch must serve chases from the chased memo";
  EXPECT_GT(chase_misses, 0u);
}

// --- Adaptive intra-solve scheduling (ISSUE 5 satellite) --------------------

TEST(IntraSolveTest, AdaptiveWorkerCountScalesWithChoiceSpace) {
  ThreadPool pool(7);
  ParallelSearchOptions options;
  options.pool = &pool;
  options.max_workers = 8;
  options.min_parallel_ranks = 128;
  options.adaptive_ranks_per_worker = 1000;
  ParallelSearch search(options);
  EXPECT_EQ(search.NumWorkers(100), 1u) << "below min_parallel_ranks";
  EXPECT_EQ(search.NumWorkers(999), 1u) << "one worker's worth of ranks";
  EXPECT_EQ(search.NumWorkers(2000), 2u);
  EXPECT_EQ(search.NumWorkers(100000), 8u) << "capped by max_workers";
  // The explicit knob wins: adaptive off restores the static cap.
  options.adaptive_ranks_per_worker = 0;
  EXPECT_EQ(ParallelSearch(options).NumWorkers(999), 8u);
}

TEST(IntraSolveTest, AdaptiveDefaultResolvesAndStaysByteIdentical) {
  // The engine default is the adaptive sentinel; it resolves to a
  // hardware-sized pool cap, ToExistenceOptions flags the solver, and an
  // explicit worker count still wins.
  EngineOptions adaptive = PaperOptions();
  ASSERT_EQ(adaptive.intra_solve_threads,
            EngineOptions::kIntraSolveAdaptive);
  ExistenceOptions eopt = adaptive.ToExistenceOptions();
  EXPECT_TRUE(eopt.adaptive_intra);
  EXPECT_EQ(eopt.intra_solve_threads, 0u) << "pool size + 1, not a sentinel";
  EngineOptions explicit_three = PaperOptions();
  explicit_three.intra_solve_threads = 3;
  EXPECT_FALSE(explicit_three.ToExistenceOptions().adaptive_intra);
  EXPECT_EQ(explicit_three.ToExistenceOptions().intra_solve_threads, 3u);

  ExchangeEngine engine(adaptive);
  EXPECT_EQ(engine.intra_solve_threads(), ThreadPool::DefaultThreads());

  // Outcomes under the adaptive default are byte-identical to explicit
  // sequential solves (worker-count invariance).
  std::vector<Scenario> adaptive_set = MakeScenarioSet();
  std::vector<std::string> adaptive_out;
  for (Scenario& s : adaptive_set) {
    Result<ExchangeOutcome> o = engine.Solve(s);
    ASSERT_TRUE(o.ok());
    adaptive_out.push_back(o->ToString(*s.universe, *s.alphabet));
  }
  std::vector<std::string> sequential_out = SolveAllToStrings(1);
  ASSERT_EQ(adaptive_out.size(), sequential_out.size());
  for (size_t i = 0; i < adaptive_out.size(); ++i) {
    EXPECT_EQ(adaptive_out[i], sequential_out[i]) << "scenario " << i;
  }
}

// --- LRU cap ----------------------------------------------------------------

TEST(IntraSolveTest, LruCapBoundsNreMemo) {
  EngineCacheOptions options;
  options.max_nre_entries = 4;
  options.max_answer_keys = 2;
  options.num_shards = 1;  // exact global LRU (the behavior under test)
  EngineCache cache(options);
  for (int i = 0; i < 10; ++i) {
    cache.StoreNre("key" + std::to_string(i), BinaryRelation{});
  }
  CacheSizes sizes = cache.sizes();
  EXPECT_EQ(sizes.nre_entries, 4u);
  EXPECT_EQ(cache.stats().nre_evictions, 6u);

  // LRU order: touching key6 keeps it alive past the next eviction.
  BinaryRelation out;
  EXPECT_TRUE(cache.LookupNre("key6", &out));
  cache.StoreNre("fresh", BinaryRelation{});
  EXPECT_TRUE(cache.LookupNre("key6", &out)) << "recently used: retained";
  EXPECT_FALSE(cache.LookupNre("key7", &out)) << "LRU victim: evicted";
}

TEST(IntraSolveTest, LruCapBoundsAnswerMemo) {
  EngineCacheOptions options;
  options.max_nre_entries = 4;
  options.max_answer_keys = 2;
  options.num_shards = 1;  // exact global LRU (the behavior under test)
  EngineCache cache(options);
  Graph g;
  for (int i = 0; i < 5; ++i) {
    cache.StoreAnswers("query" + std::to_string(i), g, {});
  }
  CacheSizes sizes = cache.sizes();
  EXPECT_EQ(sizes.answer_keys, 2u);
  EXPECT_LE(sizes.answer_entries, 2u * 8u);
  EXPECT_EQ(cache.stats().answer_evictions, 3u);
}

TEST(IntraSolveTest, EngineHonorsCacheCapAndStaysCorrect) {
  EngineOptions tiny = PaperOptions();
  tiny.cache.max_nre_entries = 8;
  tiny.cache.max_answer_keys = 2;
  ExchangeEngine capped(tiny);
  ExchangeEngine unbounded(PaperOptions());
  for (int round = 0; round < 3; ++round) {
    Scenario s1 = MakeExample22Scenario(FlightConstraintMode::kEgd);
    Scenario s2 = MakeExample22Scenario(FlightConstraintMode::kEgd);
    Result<ExchangeOutcome> o1 = capped.Solve(s1);
    Result<ExchangeOutcome> o2 = unbounded.Solve(s2);
    ASSERT_TRUE(o1.ok());
    ASSERT_TRUE(o2.ok());
    EXPECT_EQ(o1->ToString(*s1.universe, *s1.alphabet),
              o2->ToString(*s2.universe, *s2.alphabet))
        << "eviction must never change answers";
  }
  CacheSizes sizes = capped.cache().sizes();
  EXPECT_LE(sizes.nre_entries, 8u);
  EXPECT_LE(sizes.answer_keys, 2u);
}

// --- Cancellation -----------------------------------------------------------

TEST(IntraSolveTest, CancelledSolveReportsUnknown) {
  EngineOptions options = PaperOptions();
  options.existence_policy = ExistencePolicy::kBoundedSearch;
  options.intra_solve_threads = 2;
  ExchangeEngine engine(options);
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  CancellationToken token;
  token.RequestStop();  // cancelled before the search starts
  Result<ExchangeOutcome> outcome = engine.Solve(s, &token);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->existence.verdict, ExistenceVerdict::kUnknown);
  EXPECT_EQ(outcome->existence.note, "search cancelled");
  EXPECT_FALSE(outcome->solution.has_value());
  // Soundness: a cancelled solve must not certify any tuple — a truncated
  // enumeration would over-approximate the certain answers.
  if (outcome->certain.has_value()) {
    EXPECT_TRUE(outcome->certain->tuples.empty());
    EXPECT_FALSE(outcome->certain->no_solution);
  }
}

}  // namespace
}  // namespace gdx
