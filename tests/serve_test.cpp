// ISSUE 7 tentpole tests: the resident exchange service. Covers the
// wire protocol (frame layout, payload codecs, typed rejection of
// malformed/oversized/version-skewed frames — without killing the
// server), end-to-end byte-identity of served results against direct
// engine solves, admission control (deterministic QUEUE_FULL via the
// worker test hook), graceful drain (queued scenarios finish and stream
// before BYE), and checkpoint warm-restart (a restarted server re-serves
// a prior workload with zero chase/compile misses).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/exchange_engine.h"
#include "serve/bounded_queue.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "workload/scenario_parser.h"

namespace gdx {
namespace serve {
namespace {

// --- scenario corpus -------------------------------------------------------

const char kFlightsScenario[] = R"(relation Flight/3
relation Hotel/2
fact Flight(01, c1, c2)
fact Flight(02, c3, c2)
fact Hotel(01, hx)
fact Hotel(01, hy)
fact Hotel(02, hx)
stgd Flight(x1,x2,x3), Hotel(x1,x4) ->
     (x2, f . f*, y), (y, h, x4), (y, f . f*, x3)
egd (x1, h, x3), (x2, h, x3) -> x1 = x2
query (x1, f . f* [h] . f- . (f-)*, x2) -> x1, x2
)";

const char kVariantScenario[] = R"(relation Flight/3
relation Hotel/2
fact Flight(11, d1, d2)
fact Hotel(11, hz)
stgd Flight(x1,x2,x3), Hotel(x1,x4) ->
     (x2, f, y), (y, h, x4)
query (x1, f [h], x2) -> x1, x2
)";

const char kNoQueryScenario[] = R"(relation Edge/2
fact Edge(a, b)
stgd Edge(x1,x2) -> (x1, r, x2)
)";

std::string TestSocketPath(const std::string& name) {
  return "/tmp/gdx_serve_test_" + name + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".sock";
}

/// What the one-shot path (gdx_cli batch / direct engine use) prints for
/// this scenario text — the byte-identity reference for served results.
std::string DirectSolve(const std::string& text,
                        const EngineOptions& options = {}) {
  Result<Scenario> scenario = ParseScenario(text);
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  ExchangeEngine engine(options);
  Result<ExchangeOutcome> outcome = engine.Solve(*scenario);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  return outcome->ToString(*scenario->universe, *scenario->alphabet);
}

int RawConnect(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

/// Reads the typed error the server answers a protocol violation with.
ServeError ReadErrorCode(int fd) {
  Frame frame;
  Status read = ReadFrame(fd, &frame);
  EXPECT_TRUE(read.ok()) << read.ToString();
  EXPECT_EQ(frame.type, FrameType::kError);
  uint64_t id = 0;
  ServeError code = ServeError::kNone;
  std::string message;
  EXPECT_TRUE(DecodeError(frame.payload, &id, &code, &message));
  return code;
}

// --- protocol unit tests ---------------------------------------------------

TEST(ProtocolTest, FrameHeaderLayout) {
  std::string bytes = EncodeFrame(FrameType::kRequest, "abc");
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + 3);
  // u32 payload_len little-endian.
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 3);
  EXPECT_EQ(bytes[1], 0);
  EXPECT_EQ(bytes[2], 0);
  EXPECT_EQ(bytes[3], 0);
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]),
            static_cast<unsigned char>(FrameType::kRequest));
  EXPECT_EQ(static_cast<unsigned char>(bytes[5]), kProtocolVersion);
  EXPECT_EQ(bytes[6], 0);  // reserved
  EXPECT_EQ(bytes[7], 0);
  EXPECT_EQ(bytes.substr(kFrameHeaderSize), "abc");
}

TEST(ProtocolTest, PayloadCodecsRoundTrip) {
  uint32_t version = 0;
  EXPECT_TRUE(DecodeHello(EncodeHello(7), &version));
  EXPECT_EQ(version, 7u);
  EXPECT_FALSE(DecodeHello("abc", &version));           // short
  EXPECT_FALSE(DecodeHello("abcdefgh", &version));      // trailing bytes

  HelloAck ack;
  ack.version = 3;
  ack.max_payload = 1234;
  ack.queue_capacity = 9;
  HelloAck decoded;
  EXPECT_TRUE(DecodeHelloAck(EncodeHelloAck(ack), &decoded));
  EXPECT_EQ(decoded.version, 3u);
  EXPECT_EQ(decoded.max_payload, 1234u);
  EXPECT_EQ(decoded.queue_capacity, 9u);

  Request request;
  EXPECT_TRUE(
      DecodeRequest(EncodeRequest(42, "relation R/1\n"), &request));
  EXPECT_EQ(request.id, 42u);
  EXPECT_EQ(request.scenario_text, "relation R/1\n");
  EXPECT_FALSE(DecodeRequest("short", &request));

  uint64_t id = 0;
  std::string text;
  EXPECT_TRUE(DecodeResult(EncodeResult(7, "outcome"), &id, &text));
  EXPECT_EQ(id, 7u);
  EXPECT_EQ(text, "outcome");

  ServeError code = ServeError::kNone;
  EXPECT_TRUE(DecodeError(
      EncodeError(9, ServeError::kQueueFull, "full"), &id, &code, &text));
  EXPECT_EQ(id, 9u);
  EXPECT_EQ(code, ServeError::kQueueFull);
  EXPECT_EQ(text, "full");

  std::string json;
  EXPECT_TRUE(DecodeStats(EncodeStats("{\"schema\":1}"), &json));
  EXPECT_EQ(json, "{\"schema\":1}");
}

TEST(BoundedQueueTest, AdmissionAndDrainSemantics) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.TryPush(1), BoundedQueue<int>::PushResult::kOk);
  EXPECT_EQ(queue.TryPush(2), BoundedQueue<int>::PushResult::kOk);
  EXPECT_EQ(queue.TryPush(3), BoundedQueue<int>::PushResult::kFull);
  queue.Close();
  EXPECT_EQ(queue.TryPush(4), BoundedQueue<int>::PushResult::kClosed);
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));  // queued items drain after Close
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // closed and empty
}

// --- server conformance ----------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  std::unique_ptr<ExchangeServer> StartServer(const std::string& name,
                                              ServeOptions options = {}) {
    socket_path_ = TestSocketPath(name);
    options.socket_path = socket_path_;
    auto server = std::make_unique<ExchangeServer>(std::move(options));
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  std::string socket_path_;
};

TEST_F(ServeTest, HandshakePingAndStats) {
  auto server = StartServer("handshake");
  ExchangeClient client;
  ASSERT_TRUE(client.ConnectUnix(socket_path_).ok());
  EXPECT_EQ(client.server_ack().version, kProtocolVersion);
  EXPECT_EQ(client.server_ack().max_payload, kMaxFramePayload);
  EXPECT_EQ(client.server_ack().queue_capacity, 64u);
  EXPECT_TRUE(client.Ping().ok());
  std::string json;
  ASSERT_TRUE(client.GetStats(&json).ok());
  EXPECT_NE(json.find("\"serve.connections\":1"), std::string::npos)
      << json;
  EXPECT_TRUE(client.Shutdown().ok());
  server->Wait();
}

TEST_F(ServeTest, FrameVersionMismatchGetsTypedErrorWithoutServerDeath) {
  auto server = StartServer("version");
  int fd = RawConnect(socket_path_);
  // Hand-crafted frame header carrying a protocol version from the future.
  std::string header;
  header.append(4, '\0');                      // len = 0
  header.push_back(static_cast<char>(0x06));   // PING
  header.push_back(static_cast<char>(kProtocolVersion + 1));
  header.append(2, '\0');
  ASSERT_TRUE(WriteAll(fd, header).ok());
  EXPECT_EQ(ReadErrorCode(fd), ServeError::kVersionMismatch);
  ::close(fd);

  // The server survived: a fresh, well-behaved connection works.
  ExchangeClient client;
  ASSERT_TRUE(client.ConnectUnix(socket_path_).ok());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Shutdown().ok());
  server->Wait();
}

TEST_F(ServeTest, ReservedBytesAndOversizeAndHelloOrderRejected) {
  auto server = StartServer("malformed");
  {
    int fd = RawConnect(socket_path_);
    std::string header;  // nonzero reserved bytes
    header.append(4, '\0');
    header.push_back(static_cast<char>(0x06));
    header.push_back(static_cast<char>(kProtocolVersion));
    header.push_back(static_cast<char>(0xAA));
    header.push_back('\0');
    ASSERT_TRUE(WriteAll(fd, header).ok());
    EXPECT_EQ(ReadErrorCode(fd), ServeError::kBadFrame);
    ::close(fd);
  }
  {
    int fd = RawConnect(socket_path_);
    std::string header;  // payload_len beyond the cap
    uint32_t len = kMaxFramePayload + 1;
    for (int shift = 0; shift < 32; shift += 8) {
      header.push_back(static_cast<char>((len >> shift) & 0xff));
    }
    header.push_back(static_cast<char>(0x03));
    header.push_back(static_cast<char>(kProtocolVersion));
    header.append(2, '\0');
    ASSERT_TRUE(WriteAll(fd, header).ok());
    EXPECT_EQ(ReadErrorCode(fd), ServeError::kOversizedFrame);
    ::close(fd);
  }
  {
    int fd = RawConnect(socket_path_);  // PING before HELLO
    ASSERT_TRUE(WriteFrame(fd, FrameType::kPing, "").ok());
    EXPECT_EQ(ReadErrorCode(fd), ServeError::kNotReady);
    ::close(fd);
  }
  ExchangeClient client;
  ASSERT_TRUE(client.ConnectUnix(socket_path_).ok());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Shutdown().ok());
  server->Wait();
}

TEST_F(ServeTest, StreamedResultsAreByteIdenticalToDirectSolves) {
  auto server = StartServer("identity");
  const std::vector<std::string> corpus = {
      kFlightsScenario, kVariantScenario, kNoQueryScenario};
  std::vector<std::string> expected;
  for (const std::string& text : corpus) {
    expected.push_back(DirectSolve(text));
  }

  ExchangeClient client;
  ASSERT_TRUE(client.ConnectUnix(socket_path_).ok());
  // Pipelined, repeated: 3 scenarios x 4 rounds in flight at once.
  constexpr size_t kRounds = 4;
  for (size_t round = 0; round < kRounds; ++round) {
    for (size_t i = 0; i < corpus.size(); ++i) {
      ASSERT_TRUE(
          client.SendRequest(round * corpus.size() + i, corpus[i]).ok());
    }
  }
  std::vector<std::string> got(kRounds * corpus.size());
  for (size_t n = 0; n < got.size(); ++n) {
    ClientReply reply;
    ASSERT_TRUE(client.ReadReply(&reply).ok());
    ASSERT_FALSE(reply.is_error) << reply.text;
    ASSERT_LT(reply.id, got.size());
    got[reply.id] = std::move(reply.text);
  }
  for (size_t n = 0; n < got.size(); ++n) {
    EXPECT_EQ(got[n], expected[n % corpus.size()]) << "request " << n;
  }

  // Repeated content went through the shared warm cache: the chased
  // memo compiled each distinct scenario once and replayed it.
  CacheStats stats = server->engine().cache().stats();
  EXPECT_EQ(stats.chase_misses, corpus.size());
  EXPECT_EQ(stats.chase_hits, (kRounds - 1) * corpus.size());

  EXPECT_TRUE(client.Shutdown().ok());
  server->Wait();
}

TEST_F(ServeTest, UnparsableScenarioGetsTypedParseError) {
  auto server = StartServer("parse");
  ExchangeClient client;
  ASSERT_TRUE(client.ConnectUnix(socket_path_).ok());
  ASSERT_TRUE(client.SendRequest(5, "this is not a scenario\n").ok());
  ClientReply reply;
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_TRUE(reply.is_error);
  EXPECT_EQ(reply.id, 5u);
  EXPECT_EQ(reply.code, ServeError::kParseError);
  // The connection is still healthy — typed request errors are not fatal.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Shutdown().ok());
  server->Wait();
}

TEST_F(ServeTest, QueueFullRejectsDeterministically) {
  // One worker, queue of one. The test hook parks the worker on the
  // first scenario, so the queue state is fully determined when the
  // overflowing request arrives.
  std::mutex mutex;
  std::condition_variable cv;
  size_t entered = 0;
  bool released = false;
  ServeOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.worker_hook_for_test = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    ++entered;
    cv.notify_all();
    cv.wait(lock, [&] { return released; });
  };
  auto server = StartServer("queuefull", std::move(options));

  ExchangeClient client;
  ASSERT_TRUE(client.ConnectUnix(socket_path_).ok());
  ASSERT_TRUE(client.SendRequest(1, kVariantScenario).ok());
  {
    // Worker holds scenario 1; the queue is empty again.
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return entered == 1; });
  }
  ASSERT_TRUE(client.SendRequest(2, kVariantScenario).ok());  // fills it
  ASSERT_TRUE(client.SendRequest(3, kVariantScenario).ok());  // rejected
  ClientReply reply;
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_TRUE(reply.is_error);
  EXPECT_EQ(reply.id, 3u);
  EXPECT_EQ(reply.code, ServeError::kQueueFull);

  {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
  }
  cv.notify_all();
  // The admitted scenarios complete and stream (a QUEUE_FULL rejection
  // never cancels admitted work).
  std::vector<uint64_t> completed_ids;
  for (int n = 0; n < 2; ++n) {
    ASSERT_TRUE(client.ReadReply(&reply).ok());
    EXPECT_FALSE(reply.is_error);
    completed_ids.push_back(reply.id);
  }
  std::sort(completed_ids.begin(), completed_ids.end());
  EXPECT_EQ(completed_ids, (std::vector<uint64_t>{1, 2}));

  EXPECT_TRUE(client.Shutdown().ok());
  server->Wait();
}

TEST_F(ServeTest, GracefulDrainFinishesQueuedScenariosBeforeBye) {
  std::mutex mutex;
  std::condition_variable cv;
  size_t entered = 0;
  bool released = false;
  ServeOptions options;
  options.num_workers = 1;
  options.worker_hook_for_test = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    ++entered;
    if (entered == 1) {
      cv.notify_all();
      cv.wait(lock, [&] { return released; });
    }
  };
  auto server = StartServer("drain", std::move(options));

  ExchangeClient worker_client;
  ASSERT_TRUE(worker_client.ConnectUnix(socket_path_).ok());
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(worker_client.SendRequest(id, kVariantScenario).ok());
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return entered == 1; });
  }
  // All three admitted (the session thread processed them in order;
  // PING/PONG after them proves it — the lone worker is parked, so no
  // result can precede the pong).
  ASSERT_TRUE(worker_client.Ping().ok());

  ExchangeClient shutdown_client;
  ASSERT_TRUE(shutdown_client.ConnectUnix(socket_path_).ok());
  std::thread drain_thread([&] {
    EXPECT_TRUE(shutdown_client.Shutdown().ok());  // blocks until BYE
  });
  {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
  }
  cv.notify_all();
  drain_thread.join();  // BYE arrived => drain finished
  server->Wait();

  // Every admitted scenario finished and streamed before the BYE.
  std::vector<uint64_t> ids;
  for (int n = 0; n < 3; ++n) {
    ClientReply reply;
    ASSERT_TRUE(worker_client.ReadReply(&reply).ok());
    EXPECT_FALSE(reply.is_error);
    ids.push_back(reply.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2, 3}));

  // New admissions are refused once draining: the server is gone.
  ExchangeClient late;
  EXPECT_FALSE(late.ConnectUnix(socket_path_).ok());
}

TEST_F(ServeTest, CheckpointedRestartReservesWorkloadWithZeroMisses) {
  const std::string checkpoint =
      "/tmp/gdx_serve_test_ckpt_" +
      std::to_string(static_cast<long>(::getpid())) + ".gdxsnap";
  ::unlink(checkpoint.c_str());
  const std::vector<std::string> corpus = {kFlightsScenario,
                                           kVariantScenario};

  std::vector<std::string> first_results(corpus.size());
  {
    ServeOptions options;
    options.checkpoint_path = checkpoint;
    options.checkpoint_interval_ms = 100000;  // only the drain checkpoint
    auto server = StartServer("ckpt1", std::move(options));
    ExchangeClient client;
    ASSERT_TRUE(client.ConnectUnix(socket_path_).ok());
    for (size_t i = 0; i < corpus.size(); ++i) {
      ASSERT_TRUE(client.SendRequest(i, corpus[i]).ok());
    }
    for (size_t n = 0; n < corpus.size(); ++n) {
      ClientReply reply;
      ASSERT_TRUE(client.ReadReply(&reply).ok());
      ASSERT_FALSE(reply.is_error) << reply.text;
      first_results[reply.id] = std::move(reply.text);
    }
    ASSERT_TRUE(client.Shutdown().ok());
    server->Wait();
  }

  // Kill + restart simulation: a brand-new server process state, warm-
  // started from the drain checkpoint. Re-sent scenarios must hit the
  // restored chased/compiled memos — zero chase or compile misses —
  // and stream byte-identical results.
  {
    ServeOptions options;
    options.checkpoint_path = checkpoint;
    options.checkpoint_interval_ms = 100000;
    auto server = StartServer("ckpt2", std::move(options));
    ExchangeClient client;
    ASSERT_TRUE(client.ConnectUnix(socket_path_).ok());
    for (size_t i = 0; i < corpus.size(); ++i) {
      ASSERT_TRUE(client.SendRequest(i, corpus[i]).ok());
    }
    for (size_t n = 0; n < corpus.size(); ++n) {
      ClientReply reply;
      ASSERT_TRUE(client.ReadReply(&reply).ok());
      ASSERT_FALSE(reply.is_error) << reply.text;
      EXPECT_EQ(reply.text, first_results[reply.id])
          << "request " << reply.id;
    }
    CacheStats stats = server->engine().cache().stats();
    EXPECT_EQ(stats.chase_misses, 0u);
    EXPECT_EQ(stats.compile_misses, 0u);
    EXPECT_GT(stats.chase_restored_hits, 0u);
    ASSERT_TRUE(client.Shutdown().ok());
    server->Wait();
  }
  ::unlink(checkpoint.c_str());
}

TEST_F(ServeTest, EphemeralTcpPortServes) {
  ServeOptions options;
  options.port = 0;  // ephemeral
  auto server = std::make_unique<ExchangeServer>(std::move(options));
  ASSERT_TRUE(server->Start().ok());
  ASSERT_GT(server->bound_port(), 0);
  ExchangeClient client;
  ASSERT_TRUE(client.ConnectTcp(server->bound_port()).ok());
  ASSERT_TRUE(client.SendRequest(1, kVariantScenario).ok());
  ClientReply reply;
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_FALSE(reply.is_error);
  EXPECT_EQ(reply.text, DirectSolve(kVariantScenario));
  EXPECT_TRUE(client.Shutdown().ok());
  server->Wait();
}

}  // namespace
}  // namespace serve
}  // namespace gdx
