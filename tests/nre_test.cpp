// Unit tests for the NRE AST, parser, printer and structural helpers.
#include <gtest/gtest.h>

#include "graph/nre.h"
#include "graph/nre_parser.h"

namespace gdx {
namespace {

class NreFixture : public ::testing::Test {
 protected:
  Alphabet alphabet_;

  NrePtr Parse(const std::string& text) {
    Result<NrePtr> r = ParseNre(text, alphabet_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }
};

TEST_F(NreFixture, ParseSymbol) {
  NrePtr r = Parse("f");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->kind(), Nre::Kind::kSymbol);
  EXPECT_EQ(alphabet_.NameOf(r->symbol()), "f");
}

TEST_F(NreFixture, ParseEpsilon) {
  NrePtr r = Parse("eps");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->kind(), Nre::Kind::kEpsilon);
  EXPECT_TRUE(r->Nullable());
}

TEST_F(NreFixture, ParseConcatAndStar) {
  NrePtr r = Parse("f . f*");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->kind(), Nre::Kind::kConcat);
  EXPECT_EQ(r->left()->kind(), Nre::Kind::kSymbol);
  EXPECT_EQ(r->right()->kind(), Nre::Kind::kStar);
  EXPECT_FALSE(r->Nullable());
}

TEST_F(NreFixture, ParseUnionPrecedence) {
  // Concatenation binds tighter than union: a + b . c == a + (b . c).
  NrePtr r = Parse("a + b . c");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->kind(), Nre::Kind::kUnion);
  EXPECT_EQ(r->right()->kind(), Nre::Kind::kConcat);
}

TEST_F(NreFixture, ParseInverseOnSymbol) {
  NrePtr r = Parse("f-");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->kind(), Nre::Kind::kInverse);
}

TEST_F(NreFixture, InverseOnGroupRejected) {
  Result<NrePtr> r = ParseNre("(a . b)-", alphabet_);
  EXPECT_FALSE(r.ok());
}

TEST_F(NreFixture, ParsePaperQuery) {
  // Q = f . f* [h] . f- . (f-)* — Example 2.2 (implicit concat before [).
  NrePtr r = Parse("f . f* [h] . f- . (f-)*");
  ASSERT_NE(r, nullptr);
  // Round-trips through the printer and reparses to an equal tree.
  std::string printed = r->ToString(alphabet_);
  NrePtr reparsed = Parse(printed);
  ASSERT_NE(reparsed, nullptr);
  EXPECT_TRUE(NreEquals(r, reparsed)) << printed;
}

TEST_F(NreFixture, ParseNesting) {
  NrePtr r = Parse("[a . b]");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->kind(), Nre::Kind::kNest);
  EXPECT_TRUE(r->Nullable());  // nest consumes no main-path edges
}

TEST_F(NreFixture, ParseErrorsAreReported) {
  EXPECT_FALSE(ParseNre("", alphabet_).ok());
  EXPECT_FALSE(ParseNre("(a", alphabet_).ok());
  EXPECT_FALSE(ParseNre("[a", alphabet_).ok());
  EXPECT_FALSE(ParseNre("a +", alphabet_).ok());
  EXPECT_FALSE(ParseNre("a b", alphabet_).ok());  // juxtaposition illegal
  EXPECT_FALSE(ParseNre("1a", alphabet_).ok());
}

TEST_F(NreFixture, StructuralEquality) {
  EXPECT_TRUE(NreEquals(Parse("a . b"), Parse("a.b")));
  EXPECT_FALSE(NreEquals(Parse("a . b"), Parse("b . a")));
  EXPECT_TRUE(NreEquals(Parse("(a + b)*"), Parse("( a + b )*")));
  EXPECT_FALSE(NreEquals(Parse("a*"), Parse("a")));
}

TEST_F(NreFixture, SizeCountsAstNodes) {
  EXPECT_EQ(Parse("a")->Size(), 1u);
  EXPECT_EQ(Parse("a . b")->Size(), 3u);
  EXPECT_EQ(Parse("(a + b)*")->Size(), 4u);
  EXPECT_EQ(Parse("[a]")->Size(), 2u);
}

TEST_F(NreFixture, NullableCases) {
  EXPECT_TRUE(Parse("a*")->Nullable());
  EXPECT_TRUE(Parse("eps . a*")->Nullable());
  EXPECT_FALSE(Parse("a . b*")->Nullable());
  EXPECT_TRUE(Parse("a* + b")->Nullable());
  EXPECT_FALSE(Parse("a + b")->Nullable());
}

TEST_F(NreFixture, IsSingleSymbol) {
  EXPECT_TRUE(IsSingleSymbol(Parse("a")));
  EXPECT_FALSE(IsSingleSymbol(Parse("a-")));
  EXPECT_FALSE(IsSingleSymbol(Parse("a + b")));
  EXPECT_FALSE(IsSingleSymbol(nullptr));
}

TEST_F(NreFixture, IsSymbolUnion) {
  std::vector<SymbolId> symbols;
  EXPECT_TRUE(IsSymbolUnion(Parse("a + b + c"), &symbols));
  EXPECT_EQ(symbols.size(), 3u);
  symbols.clear();
  EXPECT_TRUE(IsSymbolUnion(Parse("a"), &symbols));
  EXPECT_EQ(symbols.size(), 1u);
  EXPECT_FALSE(IsSymbolUnion(Parse("a . b"), nullptr));
  EXPECT_FALSE(IsSymbolUnion(Parse("a + b . c"), nullptr));
}

TEST_F(NreFixture, IsSymbolConcat) {
  std::vector<SymbolId> symbols;
  EXPECT_TRUE(IsSymbolConcat(Parse("t1 . f1 . a"), &symbols));
  ASSERT_EQ(symbols.size(), 3u);
  EXPECT_EQ(alphabet_.NameOf(symbols[0]), "t1");
  EXPECT_EQ(alphabet_.NameOf(symbols[2]), "a");
  EXPECT_FALSE(IsSymbolConcat(Parse("a + b"), nullptr));
  EXPECT_FALSE(IsSymbolConcat(Parse("a . b*"), nullptr));
}

TEST_F(NreFixture, PrinterUsesMinimalParentheses) {
  EXPECT_EQ(Parse("a + b . c")->ToString(alphabet_), "a + b . c");
  EXPECT_EQ(Parse("(a + b) . c")->ToString(alphabet_), "(a + b) . c");
  EXPECT_EQ(Parse("(a . b)*")->ToString(alphabet_), "(a . b)*");
  EXPECT_EQ(Parse("(f-)*")->ToString(alphabet_), "(f-)*");
}

TEST_F(NreFixture, PlusHelperIsConcatStar) {
  NrePtr plus = Nre::Plus(Nre::Symbol(alphabet_.Intern("f")));
  EXPECT_TRUE(NreEquals(plus, Parse("f . f*")));
}

}  // namespace
}  // namespace gdx
