// Direct unit tests for the Graph container: adjacency indexes, dedup,
// rewriting, signatures.
#include <gtest/gtest.h>

#include "common/universe.h"
#include "graph/graph.h"

namespace gdx {
namespace {

class GraphFixture : public ::testing::Test {
 protected:
  Universe universe_;
  Alphabet alphabet_;

  Value C(const std::string& name) { return universe_.MakeConstant(name); }
  SymbolId L(const std::string& name) { return alphabet_.Intern(name); }
};

TEST_F(GraphFixture, AddEdgeImplicitlyAddsNodes) {
  Graph g;
  EXPECT_TRUE(g.AddEdge(C("a"), L("e"), C("b")));
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasNode(C("a")));
  EXPECT_TRUE(g.HasEdge(C("a"), L("e"), C("b")));
  EXPECT_FALSE(g.HasEdge(C("b"), L("e"), C("a")));
}

TEST_F(GraphFixture, DuplicateEdgesIgnored) {
  Graph g;
  EXPECT_TRUE(g.AddEdge(C("a"), L("e"), C("b")));
  EXPECT_FALSE(g.AddEdge(C("a"), L("e"), C("b")));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Successors(C("a"), L("e")).size(), 1u);
}

TEST_F(GraphFixture, SelfLoopsSupported) {
  Graph g;
  EXPECT_TRUE(g.AddEdge(C("a"), L("t1"), C("a")));
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.Successors(C("a"), L("t1")).size(), 1u);
  EXPECT_EQ(g.Predecessors(C("a"), L("t1")).size(), 1u);
}

TEST_F(GraphFixture, AdjacencyIsPerLabel) {
  Graph g;
  g.AddEdge(C("a"), L("e"), C("b"));
  g.AddEdge(C("a"), L("f"), C("c"));
  g.AddEdge(C("a"), L("e"), C("c"));
  EXPECT_EQ(g.Successors(C("a"), L("e")).size(), 2u);
  EXPECT_EQ(g.Successors(C("a"), L("f")).size(), 1u);
  EXPECT_TRUE(g.Successors(C("b"), L("e")).empty());
  EXPECT_EQ(g.Predecessors(C("c"), L("e")).size(), 1u);
  EXPECT_EQ(g.EdgesWithLabel(L("e")).size(), 2u);
}

TEST_F(GraphFixture, RewriteValuesMergesAndDedups) {
  Graph g;
  Value n1 = universe_.FreshNull();
  Value n2 = universe_.FreshNull();
  g.AddEdge(C("a"), L("e"), n1);
  g.AddEdge(C("a"), L("e"), n2);
  g.AddEdge(n1, L("f"), C("b"));
  g.AddEdge(n2, L("f"), C("b"));
  g.RewriteValues([&](Value v) { return v == n2 ? n1 : v; });
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(C("a"), L("e"), n1));
  EXPECT_TRUE(g.HasEdge(n1, L("f"), C("b")));
}

TEST_F(GraphFixture, SignatureIsOrderInsensitive) {
  Graph g1;
  g1.AddEdge(C("a"), L("e"), C("b"));
  g1.AddEdge(C("b"), L("f"), C("c"));
  Graph g2;
  g2.AddEdge(C("b"), L("f"), C("c"));
  g2.AddEdge(C("a"), L("e"), C("b"));
  EXPECT_EQ(g1.Signature(universe_, alphabet_),
            g2.Signature(universe_, alphabet_));
  Graph g3;
  g3.AddEdge(C("a"), L("e"), C("c"));  // different edge
  g3.AddEdge(C("b"), L("f"), C("c"));
  EXPECT_NE(g1.Signature(universe_, alphabet_),
            g3.Signature(universe_, alphabet_));
}

TEST_F(GraphFixture, SignatureSeesIsolatedNodes) {
  Graph g1;
  g1.AddEdge(C("a"), L("e"), C("b"));
  Graph g2 = g1;
  g2.AddNode(C("z"));
  EXPECT_NE(g1.Signature(universe_, alphabet_),
            g2.Signature(universe_, alphabet_));
}

TEST_F(GraphFixture, ClearResetsEverything) {
  Graph g;
  g.AddEdge(C("a"), L("e"), C("b"));
  g.Clear();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.HasNode(C("a")));
  EXPECT_TRUE(g.Successors(C("a"), L("e")).empty());
}

TEST_F(GraphFixture, ToStringListsEdges) {
  Graph g;
  g.AddEdge(C("a"), L("e"), C("b"));
  std::string text = g.ToString(universe_, alphabet_);
  EXPECT_NE(text.find("a -e-> b"), std::string::npos);
  EXPECT_NE(text.find("1 edges"), std::string::npos);
}

TEST_F(GraphFixture, EdgesWithLabelIsIndexedAndCoherent) {
  Graph g;
  g.AddEdge(C("a"), L("e"), C("b"));
  g.AddEdge(C("b"), L("f"), C("c"));
  g.AddEdge(C("a"), L("e"), C("c"));
  const auto& e_edges = g.EdgesWithLabel(L("e"));
  ASSERT_EQ(e_edges.size(), 2u);
  EXPECT_EQ(e_edges[0].first, C("a"));
  EXPECT_EQ(e_edges[0].second, C("b"));
  EXPECT_EQ(e_edges[1].second, C("c"));
  // Duplicate insertion must not grow the index.
  g.AddEdge(C("a"), L("e"), C("b"));
  EXPECT_EQ(g.EdgesWithLabel(L("e")).size(), 2u);
  EXPECT_TRUE(g.EdgesWithLabel(L("missing")).empty());
  // The index tracks rewrites (RewriteValues rebuilds via Clear+AddEdge).
  g.RewriteValues([&](Value v) { return v == C("c") ? C("b") : v; });
  EXPECT_EQ(g.EdgesWithLabel(L("e")).size(), 1u);
  EXPECT_EQ(g.EdgesWithLabel(L("f")).size(), 1u);
  EXPECT_EQ(g.EdgesWithLabel(L("f"))[0].first, C("b"));
  EXPECT_EQ(g.EdgesWithLabel(L("f"))[0].second, C("b"));
  g.Clear();
  EXPECT_TRUE(g.EdgesWithLabel(L("e")).empty());
}

TEST_F(GraphFixture, ContentHashIsOrderIndependentAndMutationAware) {
  Graph g1, g2;
  g1.AddEdge(C("a"), L("e"), C("b"));
  g1.AddEdge(C("b"), L("f"), C("c"));
  g2.AddEdge(C("b"), L("f"), C("c"));
  g2.AddEdge(C("a"), L("e"), C("b"));
  EXPECT_EQ(g1.ContentHash(), g2.ContentHash());
  // Hash changes under mutation and is re-memoized correctly.
  auto before = g1.ContentHash();
  g1.AddNode(C("d"));
  EXPECT_NE(g1.ContentHash(), before);
  g2.AddNode(C("d"));
  EXPECT_EQ(g1.ContentHash(), g2.ContentHash());
  g1.Clear();
  Graph empty;
  EXPECT_EQ(g1.ContentHash(), empty.ContentHash());
}

}  // namespace
}  // namespace gdx
