// ISSUE 5 tests: chase-stage compilation. The ChaseCompiler must reproduce
// the uncompiled stage sequence exactly (fresh compile, memo hit at the
// same base, and replay at a shifted base), engine outcomes must be
// byte-identical whether the chased memo serves a solve or the chase runs
// fresh — at 1, 2 and 8 intra-solve workers — the chased memo must respect
// its LRU cap, the CHSE snapshot section must round-trip artifacts and
// reject every corruption, and Universe copies must share one
// copy-on-write ConstantTable instead of deep-copying constant spellings.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "chase/chase_compiler.h"
#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "engine/cache.h"
#include "engine/exchange_engine.h"
#include "persist/snapshot.h"
#include "persist/wire.h"
#include "workload/flights.h"
#include "workload/scenario_parser.h"

namespace gdx {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "gdx_chase_compile_" + name;
}

EngineOptions TestEngineOptions() {
  EngineOptions options;
  options.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = 12;
  return options;
}

/// Paper examples + generated workloads, the family the other determinism
/// suites use.
std::vector<Scenario> MakeScenarioSet() {
  std::vector<Scenario> set;
  set.push_back(MakeExample22Scenario(FlightConstraintMode::kEgd));
  set.push_back(MakeExample22Scenario(FlightConstraintMode::kSameAs));
  set.push_back(MakeExample52Scenario());
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    FlightWorkloadParams params;
    params.seed = seed;
    params.num_cities = 4;
    params.num_flights = 5;
    params.num_hotels = 3;
    params.mode = seed % 2 == 0 ? FlightConstraintMode::kSameAs
                                : FlightConstraintMode::kEgd;
    set.push_back(MakeFlightScenario(params));
  }
  return set;
}

/// A setting whose adapted egd chase clashes two constants (§5 case (i)).
Scenario MakeFailingScenario() {
  Result<Scenario> s = ParseScenario(R"(
    relation R/2
    fact R(c1, hx)
    fact R(c2, hx)
    stgd R(x, y) -> (x, h, y)
    egd (x1, h, y), (x2, h, y) -> x1 = x2
  )");
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(s).value();
}

// --- copy-on-write constant sharing ----------------------------------------

TEST(ConstantTableTest, UniverseCopiesShareTheTable) {
  Universe original;
  original.MakeConstant("alpha");
  original.MakeConstant("beta");
  ASSERT_EQ(original.constants_use_count(), 1);

  // Worker-style copies fork in O(1): one shared table, many holders.
  std::vector<Universe> workers(4, original);
  EXPECT_EQ(original.constants_use_count(), 5);
  EXPECT_EQ(workers[0].shared_constants().get(),
            original.shared_constants().get());

  // Reads — including re-interning an existing name — never detach.
  Value alpha = workers[1].MakeConstant("alpha");
  EXPECT_EQ(alpha, *original.FindConstant("alpha"));
  EXPECT_EQ(workers[1].shared_constants().get(),
            original.shared_constants().get());

  // Null draws are arena-local and leave the table shared.
  workers[2].FreshNull();
  EXPECT_EQ(workers[2].shared_constants().get(),
            original.shared_constants().get());
  EXPECT_EQ(workers[2].num_nulls(), original.num_nulls() + 1);

  // A genuinely new constant detaches exactly the writing copy.
  Value gamma = workers[3].MakeConstant("gamma");
  EXPECT_NE(workers[3].shared_constants().get(),
            original.shared_constants().get());
  EXPECT_EQ(original.constants_use_count(), 4);  // 5 holders - the detached
  EXPECT_EQ(workers[3].NameOf(gamma), "gamma");
  EXPECT_FALSE(original.FindConstant("gamma").has_value());
  // The detached copy kept every shared spelling, id-for-id.
  EXPECT_EQ(workers[3].NameOf(alpha), "alpha");
}

TEST(ConstantTableTest, SoleOwnerInternsInPlace) {
  Universe u;
  u.MakeConstant("x");
  auto before = u.shared_constants();
  u.MakeConstant("y");  // use_count is 2 only because `before` is held...
  // ...so this interned via clone; drop the observer and intern in place.
  before.reset();
  auto table = u.shared_constants().get();
  u.MakeConstant("z");
  EXPECT_EQ(u.shared_constants().get(), table);
  EXPECT_EQ(u.num_constants(), 3u);
}

TEST(InternerTest, CopiesAreIndependentAndLookupsExact) {
  StringInterner a;
  SymbolId x = a.Intern("x");
  SymbolId y = a.Intern("y");
  StringInterner b = a;  // deep copy with a rebuilt view index
  EXPECT_EQ(b.Find("x"), std::optional<SymbolId>(x));
  EXPECT_EQ(b.Find("y"), std::optional<SymbolId>(y));
  SymbolId z = b.Intern("z");
  EXPECT_EQ(b.NameOf(z), "z");
  EXPECT_FALSE(a.Find("z").has_value());  // the copy diverged privately
  EXPECT_EQ(a.Intern("x"), x);            // re-intern: same id, no growth
  EXPECT_EQ(a.size(), 2u);
  // Binary keys (embedded NULs) intern exactly — the snapshot string
  // table stores raw memo key bytes through this path.
  std::string binary("a\0b", 3);
  SymbolId k = a.Intern(binary);
  EXPECT_EQ(a.NameOf(k), binary);
  EXPECT_EQ(a.Find(std::string_view(binary)), std::optional<SymbolId>(k));
}

// --- the chase-compilation artifact ----------------------------------------

TEST(ChaseCompilerTest, KeySeparatesChaseInputs) {
  Scenario a = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Scenario b = MakeExample22Scenario(FlightConstraintMode::kEgd);
  EXPECT_EQ(ChaseCompiler::Key(a.setting, *a.instance, *a.universe),
            ChaseCompiler::Key(b.setting, *b.instance, *b.universe))
      << "identical content must produce identical keys";

  // Constraint flavor changes the egd list -> different key.
  Scenario c = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  EXPECT_NE(ChaseCompiler::Key(a.setting, *a.instance, *a.universe),
            ChaseCompiler::Key(c.setting, *c.instance, *c.universe));

  // An extra fact changes the instance -> different key.
  Scenario d = MakeExample22Scenario(FlightConstraintMode::kEgd);
  RelationId rel = 0;
  Tuple extra;
  for (size_t i = 0; i < d.source_schema->decl(rel).arity; ++i) {
    extra.push_back(d.universe->MakeConstant("pad" + std::to_string(i)));
  }
  ASSERT_TRUE(d.instance->AddFact(rel, extra).ok());
  EXPECT_NE(ChaseCompiler::Key(a.setting, *a.instance, *a.universe),
            ChaseCompiler::Key(d.setting, *d.instance, *d.universe));

  // A grown null arena shifts the base -> different key.
  Scenario e = MakeExample22Scenario(FlightConstraintMode::kEgd);
  e.universe->FreshNull();
  EXPECT_NE(ChaseCompiler::Key(a.setting, *a.instance, *a.universe),
            ChaseCompiler::Key(e.setting, *e.instance, *e.universe));
}

TEST(ChaseCompilerTest, CompileMatchesUncompiledStageSequence) {
  AutomatonNreEvaluator eval;
  Scenario compiled_s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  ChasedScenarioPtr artifact = ChaseCompiler::Compile(
      compiled_s.setting, *compiled_s.instance, *compiled_s.universe, eval);

  Scenario hand_s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  PatternChaseStats stats;
  GraphPattern pattern = ChaseToPattern(
      *hand_s.instance, hand_s.setting.st_tgds, *hand_s.universe, &stats);
  EgdChaseResult egd =
      ChasePatternEgds(pattern, hand_s.setting.egds, eval);

  ASSERT_FALSE(artifact->failed);
  EXPECT_EQ(artifact->stats.triggers, stats.triggers);
  EXPECT_EQ(artifact->stats.edges_added, stats.edges_added);
  EXPECT_EQ(artifact->stats.nulls_created, stats.nulls_created);
  EXPECT_EQ(artifact->egd_merges, egd.merges);
  EXPECT_EQ(artifact->base_nulls, 0u);
  EXPECT_EQ(artifact->null_labels.size(), stats.nulls_created);
  EXPECT_EQ(artifact->pattern.ToString(*compiled_s.universe,
                                       *compiled_s.alphabet),
            pattern.ToString(*hand_s.universe, *hand_s.alphabet));
  EXPECT_EQ(compiled_s.universe->num_nulls(), hand_s.universe->num_nulls());
}

TEST(ChaseCompilerTest, ReplayAtShiftedBaseMatchesRechase) {
  AutomatonNreEvaluator eval;
  // Compile at base 0 on one scenario...
  Scenario source = MakeExample22Scenario(FlightConstraintMode::kEgd);
  ChasedScenarioPtr artifact = ChaseCompiler::Compile(
      source.setting, *source.instance, *source.universe, eval);

  // ...then replay into an identical scenario whose universe has grown —
  // the mid-solve situation of the decision stages.
  Scenario replayed = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Scenario rechased = MakeExample22Scenario(FlightConstraintMode::kEgd);
  for (int i = 0; i < 5; ++i) {
    replayed.universe->FreshNull();
    rechased.universe->FreshNull();
  }
  GraphPattern from_replay = ReplayChase(*artifact, *replayed.universe);
  GraphPattern from_rechase = ChaseToPattern(
      *rechased.instance, rechased.setting.st_tgds, *rechased.universe);
  EgdChaseResult egd =
      ChasePatternEgds(from_rechase, rechased.setting.egds, eval);
  ASSERT_FALSE(egd.failed);
  EXPECT_EQ(from_replay.ToString(*replayed.universe, *replayed.alphabet),
            from_rechase.ToString(*rechased.universe, *rechased.alphabet));
  EXPECT_EQ(replayed.universe->num_nulls(), rechased.universe->num_nulls());
  // Labels of the replayed nulls match a genuine re-chase's, name for name.
  for (size_t id = 5; id < replayed.universe->num_nulls(); ++id) {
    EXPECT_EQ(replayed.universe->NameOf(Value::Null(id)),
              rechased.universe->NameOf(Value::Null(id)));
  }
}

TEST(ChaseCompilerTest, FailedChaseCompilesToFailedArtifact) {
  AutomatonNreEvaluator eval;
  Scenario s = MakeFailingScenario();
  ChasedScenarioPtr artifact =
      ChaseCompiler::Compile(s.setting, *s.instance, *s.universe, eval);
  EXPECT_TRUE(artifact->failed);
  EXPECT_FALSE(artifact->failure_reason.empty());

  // The engine reports the refutation identically from a memo hit.
  ExchangeEngine engine(TestEngineOptions());
  Scenario first = MakeFailingScenario();
  Scenario second = MakeFailingScenario();
  Result<ExchangeOutcome> cold = engine.Solve(first);
  Result<ExchangeOutcome> warm = engine.Solve(second);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(cold->existence.refuted_by_chase);
  EXPECT_EQ(warm->metrics.chase_cache_hits, 1u);
  EXPECT_EQ(warm->metrics.chase_triggers, 0u);
  EXPECT_EQ(cold->ToString(*first.universe, *first.alphabet),
            warm->ToString(*second.universe, *second.alphabet));
}

// --- cached vs fresh engine outcomes at 1/2/8 workers ----------------------

TEST(ChaseCompileEngineTest, CachedVsFreshByteIdenticalAt1and2and8Workers) {
  for (size_t workers : {1u, 2u, 8u}) {
    EngineOptions cached_options = TestEngineOptions();
    cached_options.intra_solve_threads = workers;
    EngineOptions fresh_options = cached_options;
    fresh_options.enable_cache = false;  // chase runs fresh on every solve

    ExchangeEngine cached_engine(cached_options);
    ExchangeEngine fresh_engine(fresh_options);
    // Two passes through the cached engine: pass 2 serves every chase
    // from the memo (identical content, identical base null count).
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<Scenario> cached_set = MakeScenarioSet();
      std::vector<Scenario> fresh_set = MakeScenarioSet();
      for (size_t i = 0; i < cached_set.size(); ++i) {
        Result<ExchangeOutcome> from_cache =
            cached_engine.Solve(cached_set[i]);
        Result<ExchangeOutcome> from_fresh =
            fresh_engine.Solve(fresh_set[i]);
        ASSERT_TRUE(from_cache.ok());
        ASSERT_TRUE(from_fresh.ok());
        EXPECT_EQ(from_cache->ToString(*cached_set[i].universe,
                                       *cached_set[i].alphabet),
                  from_fresh->ToString(*fresh_set[i].universe,
                                       *fresh_set[i].alphabet))
            << "scenario " << i << " pass " << pass << " at " << workers
            << " workers";
        if (pass == 1) {
          EXPECT_EQ(from_cache->metrics.chase_cache_hits, 1u)
              << "pass 2 must be served by the chased memo";
          EXPECT_EQ(from_cache->metrics.chase_triggers, 0u);
        }
      }
    }
    CacheStats stats = cached_engine.cache().stats();
    EXPECT_GT(stats.chase_hits, 0u);
    EXPECT_GT(stats.chase_misses, 0u);
  }
}

// --- LRU cap ----------------------------------------------------------------

TEST(ChasedMemoTest, LruCapBoundsChasedMemo) {
  EngineCacheOptions options;
  options.max_chased_entries = 2;
  options.num_shards = 1;  // exact global LRU (the behavior under test)
  EngineCache cache(options);
  for (int i = 0; i < 4; ++i) {
    auto artifact = std::make_shared<ChasedScenario>();
    artifact->base_nulls = static_cast<size_t>(i);
    cache.StoreChased("key" + std::to_string(i),
                      ChasedScenarioPtr(artifact));
  }
  EXPECT_EQ(cache.sizes().chased_entries, 2u);
  EXPECT_EQ(cache.stats().chase_evictions, 2u);
  EXPECT_EQ(cache.LookupChased("key0"), nullptr);
  EXPECT_EQ(cache.LookupChased("key1"), nullptr);
  ASSERT_NE(cache.LookupChased("key2"), nullptr);
  ASSERT_NE(cache.LookupChased("key3"), nullptr);

  // Re-touch key2 so key3 becomes the LRU entry, then overflow.
  ASSERT_NE(cache.LookupChased("key2"), nullptr);
  auto fresh = std::make_shared<ChasedScenario>();
  cache.StoreChased("key4", ChasedScenarioPtr(fresh));
  EXPECT_NE(cache.LookupChased("key2"), nullptr) << "recently used: kept";
  EXPECT_EQ(cache.LookupChased("key3"), nullptr) << "LRU victim: evicted";
}

TEST(ChasedMemoTest, EngineHonorsChasedCapAndStaysCorrect) {
  EngineOptions tiny = TestEngineOptions();
  tiny.cache.max_chased_entries = 2;
  ExchangeEngine capped(tiny);
  ExchangeEngine unbounded(TestEngineOptions());
  for (int round = 0; round < 2; ++round) {
    std::vector<Scenario> a = MakeScenarioSet();
    std::vector<Scenario> b = MakeScenarioSet();
    for (size_t i = 0; i < a.size(); ++i) {
      Result<ExchangeOutcome> o1 = capped.Solve(a[i]);
      Result<ExchangeOutcome> o2 = unbounded.Solve(b[i]);
      ASSERT_TRUE(o1.ok());
      ASSERT_TRUE(o2.ok());
      EXPECT_EQ(o1->ToString(*a[i].universe, *a[i].alphabet),
                o2->ToString(*b[i].universe, *b[i].alphabet))
          << "eviction must never change answers (scenario " << i << ")";
    }
  }
  EXPECT_LE(capped.cache().sizes().chased_entries, 2u);
  EXPECT_GT(capped.cache().stats().chase_evictions, 0u);
}

// --- CHSE persistence -------------------------------------------------------

/// A hand-built artifact exercising every CHSE field: failure flag off,
/// nested/union/star NRE labels, pre-existing and chase-created nulls.
ChasedScenarioPtr MakeSyntheticArtifact() {
  auto chased = std::make_shared<ChasedScenario>();
  chased->stats.triggers = 2;
  chased->stats.edges_added = 3;
  chased->stats.nulls_created = 2;
  chased->egd_merges = 1;
  chased->base_nulls = 1;  // one pre-existing null below the arena
  chased->null_labels = {"N2", "custom"};
  NrePtr f = Nre::Symbol(0);
  NrePtr g = Nre::Symbol(1);
  chased->pattern.AddEdge(Value::Constant(0),
                          Nre::Concat(f, Nre::Star(g)), Value::Null(1));
  chased->pattern.AddEdge(Value::Null(1),
                          Nre::Union(Nre::Inverse(0), Nre::Nest(g)),
                          Value::Null(2));
  chased->pattern.AddEdge(Value::Null(0), Nre::Epsilon(),
                          Value::Constant(5));
  return chased;
}

TEST(ChsePersistTest, SyntheticArtifactRoundTripsByteStable) {
  WarmState state;
  state.chased.emplace_back("synthetic-key", MakeSyntheticArtifact());
  auto failed = std::make_shared<ChasedScenario>();
  failed->failed = true;
  failed->failure_reason = "egd chase failure: test";
  state.chased.emplace_back("failed-key", ChasedScenarioPtr(failed));

  std::string bytes = EncodeSnapshot(state);
  Result<WarmState> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->chased.size(), 2u);
  EXPECT_EQ(EncodeSnapshot(*decoded), bytes)
      << "decode -> encode must be the identity";

  const ChasedScenario& round = *decoded->chased[0].second;
  EXPECT_EQ(decoded->chased[0].first, "synthetic-key");
  EXPECT_FALSE(round.failed);
  EXPECT_EQ(round.stats.triggers, 2u);
  EXPECT_EQ(round.stats.edges_added, 3u);
  EXPECT_EQ(round.stats.nulls_created, 2u);
  EXPECT_EQ(round.egd_merges, 1u);
  EXPECT_EQ(round.base_nulls, 1u);
  EXPECT_EQ(round.null_labels,
            (std::vector<std::string>{"N2", "custom"}));
  ASSERT_EQ(round.pattern.num_edges(), 3u);
  EXPECT_TRUE(round.pattern.edges()[0].nre->Equals(
      *MakeSyntheticArtifact()->pattern.edges()[0].nre));
  EXPECT_TRUE(decoded->chased[1].second->failed);
  EXPECT_EQ(decoded->chased[1].second->failure_reason,
            "egd chase failure: test");
}

TEST(ChsePersistTest, WarmRunReportsZeroChaseTriggersAndRestoredHits) {
  // The ISSUE 5 acceptance criterion end to end: cold run + save, then a
  // cold process warm-starts and re-runs the same workload — zero pattern
  // chase triggers, chase_restored_hits > 0, byte-identical outcomes.
  std::string path = TempPath("warm_chase.gdxsnap");
  ExchangeEngine cold(TestEngineOptions());
  std::vector<Scenario> cold_set = MakeScenarioSet();
  std::vector<std::string> cold_out;
  for (Scenario& s : cold_set) {
    Result<ExchangeOutcome> o = cold.Solve(s);
    ASSERT_TRUE(o.ok());
    cold_out.push_back(o->ToString(*s.universe, *s.alphabet));
  }
  ASSERT_GT(cold.cache().sizes().chased_entries, 0u);
  ASSERT_TRUE(cold.SaveWarmState(path).ok());

  ExchangeEngine warm(TestEngineOptions());
  Result<SnapshotRestoreStats> restored = warm.WarmStart(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->chased_entries, cold.cache().sizes().chased_entries);

  std::vector<Scenario> warm_set = MakeScenarioSet();
  Metrics warm_total;
  for (size_t i = 0; i < warm_set.size(); ++i) {
    Result<ExchangeOutcome> o = warm.Solve(warm_set[i]);
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o->ToString(*warm_set[i].universe, *warm_set[i].alphabet),
              cold_out[i])
        << "scenario " << i;
    warm_total.Accumulate(o->metrics);
  }
  EXPECT_EQ(warm_total.chase_triggers, 0u)
      << "a warm re-run must not fire a single chase trigger";
  EXPECT_EQ(warm_total.chase_merges, 0u);
  EXPECT_EQ(warm_total.chase_cache_misses, 0u);
  EXPECT_GT(warm_total.chase_cache_restored_hits, 0u);
  CacheStats stats = warm.cache().stats();
  EXPECT_EQ(stats.chase_misses, 0u);
  EXPECT_EQ(stats.chase_restored_hits, stats.chase_hits);
  EXPECT_GT(stats.chase_restored_hits, 0u);
}

TEST(ChsePersistTest, CorruptChseSectionDegradesToColdStart) {
  // Build a snapshot whose CHSE section is populated, locate the section
  // via the table, and fuzz bits across its payload: every flip must fail
  // the decode (section checksum), and loading such a file must leave the
  // cache empty — a clean cold start, never partial state or UB (the
  // ASan/UBSan CI legs run this test).
  ExchangeEngine engine(TestEngineOptions());
  std::vector<Scenario> set = MakeScenarioSet();
  for (Scenario& s : set) ASSERT_TRUE(engine.Solve(s).ok());
  std::string bytes = EncodeSnapshot(engine.cache().ExportWarmState());

  // Header: magic(8) version(4) section_count(4) table_checksum(8).
  WireReader header(bytes);
  std::string_view magic;
  uint32_t version, num_sections;
  uint64_t table_checksum;
  ASSERT_TRUE(header.ReadRaw(8, &magic));
  ASSERT_TRUE(header.ReadU32(&version));
  ASSERT_TRUE(header.ReadU32(&num_sections));
  ASSERT_TRUE(header.ReadU64(&table_checksum));
  uint64_t chse_offset = 0, chse_length = 0;
  for (uint32_t i = 0; i < num_sections; ++i) {
    uint32_t id;
    uint64_t offset, length, checksum;
    ASSERT_TRUE(header.ReadU32(&id));
    ASSERT_TRUE(header.ReadU64(&offset));
    ASSERT_TRUE(header.ReadU64(&length));
    ASSERT_TRUE(header.ReadU64(&checksum));
    if (id == (uint32_t('C') | uint32_t('H') << 8 | uint32_t('S') << 16 |
               uint32_t('E') << 24)) {
      chse_offset = offset;
      chse_length = length;
    }
  }
  ASSERT_GT(chse_length, 4u) << "the snapshot must carry chased entries";

  const size_t step = chse_length > 97 ? chse_length / 97 : 1;
  for (uint64_t pos = 0; pos < chse_length; pos += step) {
    std::string flipped = bytes;
    flipped[chse_offset + pos] = static_cast<char>(
        static_cast<uint8_t>(flipped[chse_offset + pos]) ^
        (1u << (pos % 8)));
    Result<WarmState> decoded = DecodeSnapshot(flipped);
    EXPECT_FALSE(decoded.ok()) << "flip at CHSE byte " << pos;
  }

  // A corrupted file on disk: LoadSnapshot warns and restores nothing.
  std::string flipped = bytes;
  flipped[chse_offset + chse_length / 2] ^= 0x20;
  std::string path = TempPath("corrupt_chse.gdxsnap");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  out.close();
  EngineCache cache;
  Status status = cache.LoadSnapshot(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(cache.sizes().chased_entries, 0u);
  EXPECT_EQ(cache.sizes().nre_entries, 0u);
}

TEST(ChsePersistTest, SemanticallyInvalidChseEntriesRejected) {
  // Invalid content behind a *valid* checksum (EncodeSnapshot happily
  // writes any WarmState) must still fail the CHSE validation rules.
  // A pattern null outside the declared arena (id >= base + labels) is
  // unreplayable — the decoder must reject it, not hand it to a cache.
  auto bad = std::make_shared<ChasedScenario>();
  bad->base_nulls = 0;
  bad->null_labels = {};  // empty arena...
  bad->pattern.AddEdge(Value::Constant(0), Nre::Symbol(0),
                       Value::Null(7));  // ...but a null with id 7
  WarmState state;
  state.chased.emplace_back("k", ChasedScenarioPtr(bad));
  Result<WarmState> decoded = DecodeSnapshot(EncodeSnapshot(state));
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("out of range"),
            std::string::npos)
      << decoded.status().ToString();
}

}  // namespace
}  // namespace gdx
