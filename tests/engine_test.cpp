// Tests for the src/engine/ orchestration subsystem: the ExchangeEngine
// pipeline against the paper's Example 2.2 and the hand-wired stage
// sequence, batch determinism across thread counts, the engine cache, and
// the work-stealing thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "engine/batch_executor.h"
#include "engine/exchange_engine.h"
#include "engine/thread_pool.h"
#include "solver/certain.h"
#include "solver/existence.h"
#include "workload/flights.h"

namespace gdx {
namespace {

EngineOptions PaperOptions() {
  EngineOptions options;
  options.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = 12;
  return options;
}

std::vector<std::vector<Value>> NamedPairs(
    Scenario& s, std::vector<std::pair<const char*, const char*>> names) {
  std::vector<std::vector<Value>> out;
  for (const auto& [a, b] : names) {
    out.push_back({s.universe->MakeConstant(a), s.universe->MakeConstant(b)});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a[0].raw() != b[0].raw() ? a[0].raw() < b[0].raw()
                                    : a[1].raw() < b[1].raw();
  });
  return out;
}

/// A reproducible mixed batch: Example 2.2 flavors + generated workloads.
std::vector<Scenario> MakeMixedBatch() {
  std::vector<Scenario> batch;
  batch.push_back(MakeExample22Scenario(FlightConstraintMode::kEgd));
  batch.push_back(MakeExample22Scenario(FlightConstraintMode::kSameAs));
  batch.push_back(MakeExample22Scenario(FlightConstraintMode::kNone));
  batch.push_back(MakeExample52Scenario());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    FlightWorkloadParams params;
    params.seed = seed;
    params.num_cities = 4;
    params.num_flights = 5;
    params.num_hotels = 3;
    params.mode = seed % 2 == 0 ? FlightConstraintMode::kSameAs
                                : FlightConstraintMode::kNone;
    batch.push_back(MakeFlightScenario(params));
  }
  return batch;
}

std::vector<std::string> BatchOutcomeStrings(
    const std::vector<Scenario>& scenarios, const BatchReport& report) {
  std::vector<std::string> out;
  for (size_t i = 0; i < report.outcomes.size(); ++i) {
    const Result<ExchangeOutcome>& r = report.outcomes[i];
    out.push_back(r.ok() ? r->ToString(*scenarios[i].universe,
                                       *scenarios[i].alphabet)
                         : r.status().ToString());
  }
  return out;
}

// --- ExchangeEngine end to end ---------------------------------------------

TEST(ExchangeEngineTest, Example22EgdEndToEnd) {
  ExchangeEngine engine(PaperOptions());
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Result<ExchangeOutcome> outcome = engine.Solve(s);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->existence.verdict, ExistenceVerdict::kYes)
      << outcome->existence.note;
  ASSERT_TRUE(outcome->solution.has_value());
  ASSERT_TRUE(outcome->solution_verified.has_value());
  EXPECT_TRUE(*outcome->solution_verified);
  ASSERT_TRUE(outcome->pattern.has_value());
  EXPECT_EQ(outcome->pattern->num_nodes(), 7u) << "paper Figure 5";
  EXPECT_EQ(outcome->pattern->num_edges(), 7u) << "paper Figure 5";
  EXPECT_EQ(outcome->metrics.chase_merges, 1u) << "N3 merged into N1";
  ASSERT_TRUE(outcome->certain.has_value());
  EXPECT_EQ(outcome->certain->tuples,
            NamedPairs(s, {{"c1", "c1"},
                           {"c1", "c3"},
                           {"c3", "c1"},
                           {"c3", "c3"}}))
      << "paper: cert_Omega(Q,I) = {(c1,c1),(c1,c3),(c3,c1),(c3,c3)}";
  EXPECT_GT(outcome->metrics.total_seconds, 0.0);
  EXPECT_GT(outcome->metrics.chase_triggers, 0u);
}

TEST(ExchangeEngineTest, Example22SameAsEndToEnd) {
  ExchangeEngine engine(PaperOptions());
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  Result<ExchangeOutcome> outcome = engine.Solve(s);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->existence.verdict, ExistenceVerdict::kYes)
      << "§4.2: existence is trivial for sameAs constraints";
  ASSERT_TRUE(outcome->certain.has_value());
  EXPECT_EQ(outcome->certain->tuples,
            NamedPairs(s, {{"c1", "c1"}, {"c3", "c3"}}))
      << "paper: cert_Omega'(Q,I) = {(c1,c1),(c3,c3)}";
}

TEST(ExchangeEngineTest, Example52ChaseSucceedsButNoSolution) {
  EngineOptions options = PaperOptions();
  options.existence_policy = ExistencePolicy::kBoundedSearch;
  ExchangeEngine engine(options);
  Scenario s = MakeExample52Scenario();
  Result<ExchangeOutcome> outcome = engine.Solve(s);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->pattern.has_value())
      << "paper: the adapted chase succeeds on Example 5.2";
  EXPECT_EQ(outcome->existence.verdict, ExistenceVerdict::kNo)
      << "paper: yet no solution exists";
  EXPECT_FALSE(outcome->solution.has_value());
}

TEST(ExchangeEngineTest, CoreMinimizationShrinksWitness) {
  EngineOptions options = PaperOptions();
  options.minimize_core = true;
  ExchangeEngine engine(options);
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Result<ExchangeOutcome> outcome = engine.Solve(s);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->solution.has_value());
  EXPECT_TRUE(outcome->core_minimized);
  ASSERT_TRUE(outcome->solution_verified.has_value());
  EXPECT_TRUE(*outcome->solution_verified)
      << "minimized graph must still be a solution";
  EXPECT_LE(outcome->solution->num_edges(),
            outcome->existence.witness->num_edges());
}

TEST(ExchangeEngineTest, RejectsIncompleteScenario) {
  ExchangeEngine engine;
  Scenario empty;
  Result<ExchangeOutcome> outcome = engine.Solve(empty);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

// --- Identity with the hand-wired stage sequence ---------------------------

TEST(ExchangeEngineTest, MatchesHandWiredPipeline) {
  // The engine runs chase -> existence -> enumerate/intersect. Drive the
  // very same stage calls by hand on an identical scenario (fresh-null
  // draws included) and demand identical results.
  ExchangeEngine engine(PaperOptions());
  Scenario s_engine = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Result<ExchangeOutcome> outcome = engine.Solve(s_engine);
  ASSERT_TRUE(outcome.ok());

  Scenario s_hand = MakeExample22Scenario(FlightConstraintMode::kEgd);
  AutomatonNreEvaluator eval;
  GraphPattern pattern = ChaseToPattern(
      *s_hand.instance, s_hand.setting.st_tgds, *s_hand.universe);
  EgdChaseResult egd = ChasePatternEgds(pattern, s_hand.setting.egds, eval);
  ASSERT_FALSE(egd.failed);

  ExistenceOptions eopt = PaperOptions().ToExistenceOptions();
  ExistenceSolver solver(&eval, eopt);
  ExistenceReport report =
      solver.Decide(s_hand.setting, *s_hand.instance, *s_hand.universe);

  EXPECT_EQ(outcome->existence.verdict, report.verdict);
  EXPECT_EQ(outcome->existence.note, report.note);
  ASSERT_TRUE(report.witness.has_value());
  ASSERT_TRUE(outcome->solution.has_value());
  EXPECT_EQ(
      outcome->solution->Signature(*s_engine.universe, *s_engine.alphabet),
      report.witness->Signature(*s_hand.universe, *s_hand.alphabet));

  CertainAnswerOptions copt;
  copt.existence = eopt;
  copt.max_solutions = PaperOptions().max_solutions;
  CertainAnswerResult certain =
      CertainAnswerSolver(&eval, copt)
          .Compute(s_hand.setting, *s_hand.instance, *s_hand.query,
                   *s_hand.universe);
  ASSERT_TRUE(outcome->certain.has_value());
  EXPECT_EQ(outcome->certain->tuples, certain.tuples);
  EXPECT_EQ(outcome->certain->solutions_considered,
            certain.solutions_considered);
}

// --- Cache -----------------------------------------------------------------

TEST(ExchangeEngineTest, RepeatedSolveHitsCache) {
  ExchangeEngine engine(PaperOptions());
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Result<ExchangeOutcome> first = engine.Solve(s);
  ASSERT_TRUE(first.ok());
  Result<ExchangeOutcome> second = engine.Solve(s);
  ASSERT_TRUE(second.ok());

  EXPECT_GT(second->metrics.nre_cache_hits, 0u)
      << "repeated NRE evaluations over recurring graphs must memoize";
  EXPECT_GT(second->metrics.answer_cache_hits, 0u)
      << "repeated queries over the same target graph must memoize";
  CacheStats stats = engine.cache().stats();
  EXPECT_GT(stats.hits(), 0u);
  EXPECT_GT(stats.misses(), 0u);

  // Memoization must not change answers.
  EXPECT_EQ(first->certain->tuples, second->certain->tuples);
  EXPECT_EQ(first->existence.verdict, second->existence.verdict);
}

TEST(ExchangeEngineTest, CacheDisabledGivesIdenticalOutcome) {
  EngineOptions cached = PaperOptions();
  EngineOptions uncached = PaperOptions();
  uncached.enable_cache = false;
  ExchangeEngine engine_cached(cached);
  ExchangeEngine engine_uncached(uncached);
  Scenario s1 = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Scenario s2 = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Result<ExchangeOutcome> o1 = engine_cached.Solve(s1);
  Result<ExchangeOutcome> o2 = engine_uncached.Solve(s2);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(o1->ToString(*s1.universe, *s1.alphabet),
            o2->ToString(*s2.universe, *s2.alphabet));
  EXPECT_EQ(engine_uncached.cache().stats().hits(), 0u);
}

// --- BatchExecutor ---------------------------------------------------------

TEST(BatchExecutorTest, BatchMatchesSequentialAndIsThreadCountInvariant) {
  // The same scenario list solved (a) sequentially through a lone engine,
  // (b) batched on 1 thread, (c) batched on 8 threads must render
  // byte-identical outcomes position by position.
  std::vector<Scenario> seq = MakeMixedBatch();
  ExchangeEngine engine(PaperOptions());
  std::vector<std::string> sequential;
  for (Scenario& s : seq) {
    Result<ExchangeOutcome> outcome = engine.Solve(s);
    sequential.push_back(outcome.ok()
                             ? outcome->ToString(*s.universe, *s.alphabet)
                             : outcome.status().ToString());
  }

  BatchOptions one;
  one.num_threads = 1;
  one.engine = PaperOptions();
  std::vector<Scenario> batch1 = MakeMixedBatch();
  BatchReport report1 = BatchExecutor(one).SolveAll(batch1);

  BatchOptions eight;
  eight.num_threads = 8;
  eight.engine = PaperOptions();
  std::vector<Scenario> batch8 = MakeMixedBatch();
  BatchReport report8 = BatchExecutor(eight).SolveAll(batch8);

  EXPECT_EQ(report1.num_threads, 1u);
  EXPECT_EQ(report8.num_threads, 8u);
  ASSERT_EQ(report1.outcomes.size(), sequential.size());
  ASSERT_EQ(report8.outcomes.size(), sequential.size());
  std::vector<std::string> strings1 = BatchOutcomeStrings(batch1, report1);
  std::vector<std::string> strings8 = BatchOutcomeStrings(batch8, report8);
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(strings1[i], sequential[i]) << "scenario " << i;
    EXPECT_EQ(strings8[i], strings1[i]) << "scenario " << i;
  }
  EXPECT_EQ(report1.errors, 0u);
  EXPECT_EQ(report8.errors, 0u);
  EXPECT_EQ(report1.yes + report1.no + report1.unknown,
            report1.outcomes.size());
  EXPECT_GT(report8.total.cache_hits(), 0u)
      << "the mixed batch repeats shapes; the shared cache must hit";
  EXPECT_GT(report1.wall_seconds, 0.0);
}

TEST(BatchExecutorTest, ReportsPerScenarioErrorsWithoutPoisoningOthers) {
  std::vector<Scenario> batch;
  batch.push_back(MakeExample22Scenario(FlightConstraintMode::kEgd));
  batch.emplace_back();  // missing universe/instance -> INVALID_ARGUMENT
  batch.push_back(MakeExample22Scenario(FlightConstraintMode::kSameAs));
  BatchOptions options;
  options.num_threads = 2;
  options.engine = PaperOptions();
  BatchReport report = BatchExecutor(options).SolveAll(batch);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_TRUE(report.outcomes[0].ok());
  EXPECT_FALSE(report.outcomes[1].ok());
  EXPECT_EQ(report.outcomes[1].status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(report.outcomes[2].ok());
  EXPECT_EQ(report.errors, 1u);
  EXPECT_EQ(report.yes, 2u);
  std::string summary = report.Summary();
  EXPECT_NE(summary.find("error=1"), std::string::npos);
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 500);
  // The pool is reusable after Wait.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 501);
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, SingleThreadPoolDrainsSerially) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 8u);  // no data race with one worker
}

}  // namespace
}  // namespace gdx