// Tests for the two NRE evaluation engines: hand-checked semantics on small
// graphs plus randomized agreement properties (naive vs automaton vs
// brute force) — experiment E10's correctness basis.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/nre_eval.h"
#include "graph/nre_parser.h"
#include "workload/random_graph.h"

namespace gdx {
namespace {

class NreEvalFixture : public ::testing::Test {
 protected:
  Universe universe_;
  Alphabet alphabet_;
  NaiveNreEvaluator naive_;
  AutomatonNreEvaluator automaton_;

  Value V(const std::string& name) { return universe_.MakeConstant(name); }
  NrePtr Parse(const std::string& text) {
    Result<NrePtr> r = ParseNre(text, alphabet_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }
  SymbolId Sym(const std::string& name) { return alphabet_.Intern(name); }

  /// Builds a chain v1 -a-> v2 -a-> ... -a-> vn.
  Graph Chain(size_t n, const std::string& label) {
    Graph g;
    for (size_t i = 1; i < n; ++i) {
      g.AddEdge(V("v" + std::to_string(i)), Sym(label),
                V("v" + std::to_string(i + 1)));
    }
    return g;
  }

  bool Has(const BinaryRelation& rel, Value a, Value b) {
    for (const NodePair& p : rel) {
      if (p.first == a && p.second == b) return true;
    }
    return false;
  }
};

TEST_F(NreEvalFixture, SymbolRelationIsEdgeSet) {
  Graph g = Chain(3, "a");
  for (const NreEvaluator* eval :
       {static_cast<const NreEvaluator*>(&naive_),
        static_cast<const NreEvaluator*>(&automaton_)}) {
    BinaryRelation rel = eval->Eval(Parse("a"), g);
    EXPECT_EQ(rel.size(), 2u) << eval->name();
    EXPECT_TRUE(Has(rel, V("v1"), V("v2")));
    EXPECT_TRUE(Has(rel, V("v2"), V("v3")));
  }
}

TEST_F(NreEvalFixture, EpsilonIsIdentity) {
  Graph g = Chain(3, "a");
  for (const NreEvaluator* eval :
       {static_cast<const NreEvaluator*>(&naive_),
        static_cast<const NreEvaluator*>(&automaton_)}) {
    BinaryRelation rel = eval->Eval(Parse("eps"), g);
    EXPECT_EQ(rel.size(), 3u) << eval->name();
    EXPECT_TRUE(Has(rel, V("v1"), V("v1")));
  }
}

TEST_F(NreEvalFixture, InverseSwapsDirection) {
  Graph g = Chain(2, "a");
  for (const NreEvaluator* eval :
       {static_cast<const NreEvaluator*>(&naive_),
        static_cast<const NreEvaluator*>(&automaton_)}) {
    BinaryRelation rel = eval->Eval(Parse("a-"), g);
    ASSERT_EQ(rel.size(), 1u) << eval->name();
    EXPECT_TRUE(Has(rel, V("v2"), V("v1")));
  }
}

TEST_F(NreEvalFixture, StarIsReflexiveTransitive) {
  Graph g = Chain(4, "a");
  for (const NreEvaluator* eval :
       {static_cast<const NreEvaluator*>(&naive_),
        static_cast<const NreEvaluator*>(&automaton_)}) {
    BinaryRelation rel = eval->Eval(Parse("a*"), g);
    // 4 reflexive + 3+2+1 forward pairs.
    EXPECT_EQ(rel.size(), 10u) << eval->name();
    EXPECT_TRUE(Has(rel, V("v1"), V("v4")));
    EXPECT_TRUE(Has(rel, V("v3"), V("v3")));
    EXPECT_FALSE(Has(rel, V("v4"), V("v1")));
  }
}

TEST_F(NreEvalFixture, UnionMergesLanguages) {
  Graph g;
  g.AddEdge(V("x"), Sym("a"), V("y"));
  g.AddEdge(V("x"), Sym("b"), V("z"));
  for (const NreEvaluator* eval :
       {static_cast<const NreEvaluator*>(&naive_),
        static_cast<const NreEvaluator*>(&automaton_)}) {
    BinaryRelation rel = eval->Eval(Parse("a + b"), g);
    EXPECT_EQ(rel.size(), 2u) << eval->name();
  }
}

TEST_F(NreEvalFixture, NestFiltersOnOutgoingPath) {
  // x -a-> y -b-> z: [b] holds at y only; a[b] relates x to y.
  Graph g;
  g.AddEdge(V("x"), Sym("a"), V("y"));
  g.AddEdge(V("y"), Sym("b"), V("z"));
  for (const NreEvaluator* eval :
       {static_cast<const NreEvaluator*>(&naive_),
        static_cast<const NreEvaluator*>(&automaton_)}) {
    BinaryRelation nest = eval->Eval(Parse("[b]"), g);
    ASSERT_EQ(nest.size(), 1u) << eval->name();
    EXPECT_TRUE(Has(nest, V("y"), V("y")));

    BinaryRelation combined = eval->Eval(Parse("a [b]"), g);
    ASSERT_EQ(combined.size(), 1u) << eval->name();
    EXPECT_TRUE(Has(combined, V("x"), V("y")));
  }
}

TEST_F(NreEvalFixture, PaperQueryOnSmallFlightGraph) {
  // G1 of Figure 1: c1,c3 -f-> N -f-> c2; N -h-> hx, hy.
  Graph g;
  Value n = universe_.FreshNull();
  g.AddEdge(V("c1"), Sym("f"), n);
  g.AddEdge(V("c3"), Sym("f"), n);
  g.AddEdge(n, Sym("f"), V("c2"));
  g.AddEdge(n, Sym("h"), V("hx"));
  g.AddEdge(n, Sym("h"), V("hy"));
  NrePtr q = Parse("f . f* [h] . f- . (f-)*");
  for (const NreEvaluator* eval :
       {static_cast<const NreEvaluator*>(&naive_),
        static_cast<const NreEvaluator*>(&automaton_)}) {
    BinaryRelation rel = eval->Eval(q, g);
    // JQK_G1 = {c1,c3} x {c1,c3} — the paper's four pairs.
    EXPECT_EQ(rel.size(), 4u) << eval->name();
    for (const char* a : {"c1", "c3"}) {
      for (const char* b : {"c1", "c3"}) {
        EXPECT_TRUE(Has(rel, V(a), V(b))) << eval->name() << a << b;
      }
    }
  }
}

TEST_F(NreEvalFixture, EvalFromMatchesFullRelation) {
  Graph g = Chain(5, "a");
  NrePtr r = Parse("a . a*");
  std::vector<Value> from_naive = naive_.EvalFrom(r, g, V("v2"));
  std::vector<Value> from_auto = automaton_.EvalFrom(r, g, V("v2"));
  EXPECT_EQ(from_naive.size(), 3u);
  EXPECT_EQ(from_auto.size(), 3u);
  EXPECT_TRUE(automaton_.Contains(r, g, V("v1"), V("v5")));
  EXPECT_FALSE(automaton_.Contains(r, g, V("v5"), V("v1")));
}

TEST_F(NreEvalFixture, EmptyGraphYieldsEmptyRelations) {
  Graph g;
  EXPECT_TRUE(naive_.Eval(Parse("a"), g).empty());
  EXPECT_TRUE(automaton_.Eval(Parse("a*"), g).empty());
  EXPECT_TRUE(automaton_.EvalFrom(Parse("a"), g, V("zz")).empty());
}

// ---------------------------------------------------------------------------
// Randomized agreement property: naive == automaton == brute force.
// ---------------------------------------------------------------------------

struct AgreementParams {
  uint64_t graph_seed;
  uint64_t nre_seed;
  size_t nodes;
  size_t edges;
  size_t depth;
};

class EvaluatorAgreementTest
    : public ::testing::TestWithParam<AgreementParams> {};

TEST_P(EvaluatorAgreementTest, EnginesAgree) {
  const AgreementParams& p = GetParam();
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  gp.num_nodes = p.nodes;
  gp.num_edges = p.edges;
  gp.num_labels = 2;
  gp.seed = p.graph_seed;
  Graph g = MakeRandomGraph(gp, universe, alphabet);
  Rng rng(p.nre_seed);
  NrePtr nre = MakeRandomNre(p.depth, 2, alphabet, rng);

  NaiveNreEvaluator naive;
  AutomatonNreEvaluator automaton;
  BinaryRelation a = naive.Eval(nre, g);
  BinaryRelation b = automaton.Eval(nre, g);
  EXPECT_EQ(a, b) << nre->ToString(alphabet);

  // Brute force needs enough fuel: |V| * small factor.
  BinaryRelation c = BruteForceEval(nre, g, static_cast<int>(p.nodes) + 4);
  EXPECT_EQ(a, c) << nre->ToString(alphabet);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, EvaluatorAgreementTest,
    ::testing::Values(
        AgreementParams{1, 100, 4, 6, 2}, AgreementParams{2, 101, 5, 8, 2},
        AgreementParams{3, 102, 5, 10, 3}, AgreementParams{4, 103, 6, 9, 3},
        AgreementParams{5, 104, 6, 12, 2}, AgreementParams{6, 105, 7, 10, 3},
        AgreementParams{7, 106, 7, 14, 2}, AgreementParams{8, 107, 8, 12, 3},
        AgreementParams{9, 108, 4, 10, 4}, AgreementParams{10, 109, 5, 6, 4},
        AgreementParams{11, 110, 6, 6, 3}, AgreementParams{12, 111, 8, 16, 2},
        AgreementParams{13, 112, 3, 6, 4}, AgreementParams{14, 113, 5, 12, 3},
        AgreementParams{15, 114, 6, 14, 3},
        AgreementParams{16, 115, 7, 7, 2}));

// Larger randomized sweep without brute force (automaton vs naive only).
class EvaluatorAgreementLargeTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvaluatorAgreementLargeTest, NaiveMatchesAutomaton) {
  uint64_t seed = GetParam();
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  gp.num_nodes = 30;
  gp.num_edges = 90;
  gp.num_labels = 3;
  gp.seed = seed;
  Graph g = MakeRandomGraph(gp, universe, alphabet);
  Rng rng(seed * 7919);
  for (int i = 0; i < 5; ++i) {
    NrePtr nre = MakeRandomNre(3, 3, alphabet, rng);
    NaiveNreEvaluator naive;
    AutomatonNreEvaluator automaton;
    EXPECT_EQ(naive.Eval(nre, g), automaton.Eval(nre, g))
        << nre->ToString(alphabet);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorAgreementLargeTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace gdx
