// Tests for the solver layer: existence strategies (including the Example
// 5.2 refutation and the flat SAT encoding), certain answers, and the
// sameAs engine.
#include <gtest/gtest.h>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "exchange/solution_check.h"
#include "pattern/homomorphism.h"
#include "reduction/sat_encoding.h"
#include "sat/dpll.h"
#include "solver/certain.h"
#include "solver/existence.h"
#include "solver/flat_encoding.h"
#include "solver/sameas_engine.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

TEST(ExistenceTest, NoConstraintsAlwaysYes) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kNone);
  ExistenceSolver solver(&eval);
  ExistenceReport report =
      solver.Decide(s.setting, *s.instance, *s.universe);
  EXPECT_EQ(report.verdict, ExistenceVerdict::kYes);
  ASSERT_TRUE(report.witness.has_value());
  EXPECT_TRUE(
      IsSolution(s.setting, *s.instance, *report.witness, eval, *s.universe));
}

TEST(ExistenceTest, Example22EgdYesWithWitness) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  ExistenceSolver solver(&eval);
  ExistenceReport report =
      solver.Decide(s.setting, *s.instance, *s.universe);
  EXPECT_EQ(report.verdict, ExistenceVerdict::kYes) << report.note;
  ASSERT_TRUE(report.witness.has_value());
  EXPECT_TRUE(
      IsSolution(s.setting, *s.instance, *report.witness, eval, *s.universe));
}

TEST(ExistenceTest, Example22SameAsYesWithWitness) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  ExistenceSolver solver(&eval);
  ExistenceReport report =
      solver.Decide(s.setting, *s.instance, *s.universe);
  EXPECT_EQ(report.verdict, ExistenceVerdict::kYes) << report.note;
}

TEST(ExistenceTest, Example52BoundedSearchRefutes) {
  // Figure 6: no solution exists although the chase succeeds. The bounded
  // search exhausts every witness combination and answers "no".
  Scenario s = MakeExample52Scenario();
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kBoundedSearch;
  ExistenceReport report = ExistenceSolver(&eval, options)
                               .Decide(s.setting, *s.instance, *s.universe);
  EXPECT_EQ(report.verdict, ExistenceVerdict::kNo) << report.note;
  EXPECT_FALSE(report.refuted_by_chase);  // the chase alone could NOT refute
  EXPECT_GT(report.candidates_tried, 1u);
}

TEST(ExistenceTest, Example52ChaseRefuteIsOnlyUnknown) {
  // The adapted chase succeeds (Example 5.2), so the chase-only strategy
  // cannot decide — precisely the paper's §5 observation.
  Scenario s = MakeExample52Scenario();
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kChaseRefute;
  ExistenceReport report = ExistenceSolver(&eval, options)
                               .Decide(s.setting, *s.instance, *s.universe);
  EXPECT_EQ(report.verdict, ExistenceVerdict::kUnknown) << report.note;
}

TEST(ExistenceTest, ChaseRefuteDetectsConstantClash) {
  // Two distinct destination constants forced into one city: build a
  // setting where the egd directly equates constants via definite edges.
  Scenario s = MakeExample31Scenario();  // single-symbol heads: definite
  // Add a second hotel relation row that forces hx into two cities headed
  // by different constants? Simpler: chase the restricted setting --
  // merging only hits nulls there, so instead check the relational route.
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kChaseRefute;
  ExistenceReport report = ExistenceSolver(&eval, options)
                               .Decide(s.setting, *s.instance, *s.universe);
  EXPECT_EQ(report.verdict, ExistenceVerdict::kYes) << report.note;
}

TEST(FlatEncodingTest, Rho0EncodingMatchesDpll) {
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kEgd);
  ASSERT_TRUE(enc.ok());
  Result<FlatEncoding> flat =
      EncodeFlatSetting(enc->setting, *enc->instance);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  // 1 a-edge var + 2 vars per formula variable (t and f loops).
  EXPECT_EQ(flat->edge_of_var.size(), 1u + 2u * 4u);
  SatResult r = DpllSolver().Solve(flat->cnf);
  EXPECT_TRUE(r.satisfiable);
  Graph g = DecodeFlatModel(*flat, r.model);
  EXPECT_TRUE(
      IsSolution(enc->setting, *enc->instance, g, eval, universe));
}

TEST(FlatEncodingTest, RejectsExistentialHeads) {
  Scenario s = MakeExample31Scenario();  // heads use existential y
  Result<FlatEncoding> flat = EncodeFlatSetting(s.setting, *s.instance);
  EXPECT_FALSE(flat.ok());
}

TEST(FlatEncodingTest, UnsatFormulaGivesUnsatEncoding) {
  CnfFormula contradiction(1);
  contradiction.AddClause({1});
  contradiction.AddClause({-1});
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(contradiction, universe, ReductionMode::kEgd);
  ASSERT_TRUE(enc.ok());
  Result<FlatEncoding> flat =
      EncodeFlatSetting(enc->setting, *enc->instance);
  ASSERT_TRUE(flat.ok());
  EXPECT_FALSE(DpllSolver().Solve(flat->cnf).satisfiable);
}

// --- Certain answers ------------------------------------------------------

std::vector<std::vector<Value>> Pairs(Scenario& s,
                                      std::vector<std::pair<const char*,
                                                            const char*>>
                                          names) {
  std::vector<std::vector<Value>> out;
  for (const auto& [a, b] : names) {
    out.push_back({s.universe->MakeConstant(a),
                   s.universe->MakeConstant(b)});
  }
  return out;
}

TEST(CertainAnswerTest, Example22UnderOmegaEgd) {
  // cert_Ω(Q, I) = {(c1,c1), (c1,c3), (c3,c1), (c3,c3)} — Example 2.2.
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  CertainAnswerOptions options;
  options.existence.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = 12;
  CertainAnswerSolver solver(&eval, options);
  CertainAnswerResult result =
      solver.Compute(s.setting, *s.instance, *s.query, *s.universe);
  EXPECT_FALSE(result.no_solution);
  EXPECT_GE(result.solutions_considered, 2u);
  std::vector<std::vector<Value>> expected = Pairs(
      s, {{"c1", "c1"}, {"c1", "c3"}, {"c3", "c1"}, {"c3", "c3"}});
  std::sort(expected.begin(), expected.end(),
            [](const auto& a, const auto& b) {
              return a[0].raw() != b[0].raw() ? a[0].raw() < b[0].raw()
                                              : a[1].raw() < b[1].raw();
            });
  EXPECT_EQ(result.tuples, expected);
}

TEST(CertainAnswerTest, Example22UnderOmegaPrimeSameAs) {
  // cert_Ω′(Q, I) = {(c1,c1), (c3,c3)} — the sameAs constraint is not
  // exploited by Q, so fewer answers are certain.
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  CertainAnswerOptions options;
  options.existence.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = 12;
  CertainAnswerSolver solver(&eval, options);
  CertainAnswerResult result =
      solver.Compute(s.setting, *s.instance, *s.query, *s.universe);
  std::vector<std::vector<Value>> expected =
      Pairs(s, {{"c1", "c1"}, {"c3", "c3"}});
  std::sort(expected.begin(), expected.end(),
            [](const auto& a, const auto& b) {
              return a[0].raw() != b[0].raw() ? a[0].raw() < b[0].raw()
                                              : a[1].raw() < b[1].raw();
            });
  EXPECT_EQ(result.tuples, expected);
}

TEST(CertainAnswerTest, Corollary42MembershipTracksSatisfiability) {
  // (c1,c2) ∈ cert_Ωρ(a·a, Iρ) iff ρ ∉ 3SAT.
  for (bool satisfiable : {true, false}) {
    CnfFormula rho;
    if (satisfiable) {
      rho = Rho0();
    } else {
      rho = CnfFormula(2);
      rho.AddClause({1});
      rho.AddClause({-1});
      rho.AddClause({2});
      rho.AddClause({-2});
    }
    Universe universe;
    Result<SatEncodedExchange> enc =
        EncodeSatToSetting(rho, universe, ReductionMode::kEgd);
    ASSERT_TRUE(enc.ok());
    CnreQuery query;
    VarId x1 = query.InternVar("x1");
    VarId x2 = query.InternVar("x2");
    query.AddAtom(Term::Var(x1), Corollary42Query(*enc), Term::Var(x2));
    query.SetHead({x1, x2});
    CertainAnswerSolver solver(&eval);
    bool certain = solver.IsCertain(enc->setting, *enc->instance, query,
                                    {enc->c1, enc->c2}, universe);
    EXPECT_EQ(certain, !satisfiable);
  }
}

TEST(CertainAnswerTest, Proposition43SameAsMembership) {
  // (c1,c2) ∈ cert_Ω′ρ(sameAs, Iρ) iff ρ ∉ 3SAT — with sameAs constraints
  // solutions always exist, so the vacuous case never triggers.
  for (bool satisfiable : {true, false}) {
    CnfFormula rho;
    if (satisfiable) {
      rho = Rho0();
    } else {
      rho = CnfFormula(2);
      rho.AddClause({1});
      rho.AddClause({-1});
      rho.AddClause({2});
      rho.AddClause({-2});
    }
    Universe universe;
    Result<SatEncodedExchange> enc =
        EncodeSatToSetting(rho, universe, ReductionMode::kSameAs);
    ASSERT_TRUE(enc.ok());
    CnreQuery query;
    VarId x1 = query.InternVar("x1");
    VarId x2 = query.InternVar("x2");
    query.AddAtom(Term::Var(x1), Proposition43Query(*enc), Term::Var(x2));
    query.SetHead({x1, x2});
    CertainAnswerSolver solver(&eval);
    bool certain = solver.IsCertain(enc->setting, *enc->instance, query,
                                    {enc->c1, enc->c2}, universe);
    EXPECT_EQ(certain, !satisfiable) << "sat=" << satisfiable;
  }
}

TEST(CertainAnswerTest, PatternCertainAnswersOnDefiniteEdges) {
  // Restricted mapping (single-symbol heads): pattern certain answers on
  // the chased pattern's definite subgraph are sound.
  Scenario s = MakeExample31Scenario();
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  CnreQuery query;
  VarId x = query.InternVar("x");
  VarId y = query.InternVar("y");
  query.AddAtom(Term::Var(x), Nre::Symbol(s.alphabet->Intern("f")),
                Term::Var(y));
  query.SetHead({x, y});
  std::vector<std::vector<Value>> certain =
      PatternCertainAnswers(pi, query, eval);
  // All f-edges in the pattern connect constants to nulls: no constant
  // pair is certain.
  EXPECT_TRUE(certain.empty());
}

// --- Proposition 5.3 (Figure 7) ------------------------------------------

TEST(Proposition53Test, PatternsAloneAreNotUniversalWithEgds) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  EgdChaseResult chased = ChasePatternEgds(pi, s.setting.egds, eval);
  ASSERT_FALSE(chased.failed);

  Graph fig7 = BuildFigure7(s);
  // The Figure 5 pattern still maps into the corrupted graph ...
  EXPECT_TRUE(InRep(pi, fig7, eval));
  // ... but the graph is NOT a solution: the egd is violated. Hence no
  // graph pattern π can satisfy Sol_Ω(I) = Rep_Σ(π).
  SolutionCheckReport report =
      CheckSolution(s.setting, *s.instance, fig7, eval, *s.universe);
  EXPECT_FALSE(report.egds_ok);
  // The proposed fix — the pair (pattern, egds) — classifies correctly:
  Graph g1 = BuildFigure1G1(s);
  EXPECT_TRUE(InRep(pi, g1, eval));
  EXPECT_TRUE(IsSolution(s.setting, *s.instance, g1, eval, *s.universe));
}

// --- SameAs engine --------------------------------------------------------

TEST(SameAsEngineTest, QuotientMergesSameAsClasses) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  Graph g3 = BuildFigure1G3(s);
  Graph quotient = SameAsEngine::QuotientGraph(g3, *s.alphabet);
  // N1 and N3 collapse; sameAs edges disappear.
  EXPECT_EQ(quotient.num_nodes(), g3.num_nodes() - 1);
  for (const Edge& e : quotient.edges()) {
    EXPECT_NE(e.label, s.alphabet->SameAsSymbol());
  }
  // Querying the quotient recovers the egd-style answers: {c1,c3}².
  std::vector<std::vector<Value>> answers =
      EvaluateCnre(*s.query, quotient, eval);
  size_t constant_pairs = 0;
  for (const auto& t : answers) {
    if (t[0].is_constant() && t[1].is_constant()) ++constant_pairs;
  }
  EXPECT_EQ(constant_pairs, 4u);
}

TEST(SameAsEngineTest, QuotientMayMergeConstants) {
  Alphabet alphabet;
  Universe universe;
  Value a = universe.MakeConstant("a");
  Value b = universe.MakeConstant("b");
  Graph g;
  g.AddEdge(a, alphabet.SameAsSymbol(), b);
  g.AddEdge(b, alphabet.Intern("e"), a);
  Graph quotient = SameAsEngine::QuotientGraph(g, alphabet);
  EXPECT_EQ(quotient.num_nodes(), 1u);
  EXPECT_EQ(quotient.num_edges(), 1u);  // the e self-loop
}

TEST(SameAsEngineTest, TrivialSolutionForSameAsOnly) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  Result<Graph> solution =
      SameAsEngine::TrivialSolution(s.setting, *s.instance, *s.universe,
                                    eval);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(
      IsSolution(s.setting, *s.instance, *solution, eval, *s.universe));
}

TEST(SameAsEngineTest, TrivialSolutionRejectsEgdSettings) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Result<Graph> solution =
      SameAsEngine::TrivialSolution(s.setting, *s.instance, *s.universe,
                                    eval);
  EXPECT_FALSE(solution.ok());
}

}  // namespace
}  // namespace gdx
