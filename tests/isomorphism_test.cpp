// Tests for graph isomorphism up to null renaming.
#include <gtest/gtest.h>

#include "graph/isomorphism.h"
#include "common/universe.h"

namespace gdx {
namespace {

class IsoFixture : public ::testing::Test {
 protected:
  Universe universe_;
  Alphabet alphabet_;

  Value C(const std::string& name) { return universe_.MakeConstant(name); }
  SymbolId L(const std::string& name) { return alphabet_.Intern(name); }
};

TEST_F(IsoFixture, IdenticalGraphsAreIsomorphic) {
  Graph g;
  g.AddEdge(C("a"), L("e"), C("b"));
  EXPECT_TRUE(IsomorphicUpToNulls(g, g));
}

TEST_F(IsoFixture, NullRenamingIsIsomorphic) {
  Value n1 = universe_.FreshNull();
  Value n2 = universe_.FreshNull();
  Graph a;
  a.AddEdge(C("c"), L("e"), n1);
  a.AddEdge(n1, L("f"), C("d"));
  Graph b;
  b.AddEdge(C("c"), L("e"), n2);
  b.AddEdge(n2, L("f"), C("d"));
  EXPECT_TRUE(IsomorphicUpToNulls(a, b));
}

TEST_F(IsoFixture, ConstantsMustMatchExactly) {
  // Same shape but different constants: NOT isomorphic (constants are
  // global identifiers, not renameable).
  Graph a;
  a.AddEdge(C("x"), L("e"), C("y"));
  Graph b;
  b.AddEdge(C("x"), L("e"), C("z"));
  EXPECT_FALSE(IsomorphicUpToNulls(a, b));
}

TEST_F(IsoFixture, EdgeDirectionMatters) {
  Value n1 = universe_.FreshNull();
  Value n2 = universe_.FreshNull();
  Graph a;
  a.AddEdge(C("c"), L("e"), n1);
  Graph b;
  b.AddEdge(n2, L("e"), C("c"));
  EXPECT_FALSE(IsomorphicUpToNulls(a, b));
}

TEST_F(IsoFixture, LabelsMatter) {
  Value n1 = universe_.FreshNull();
  Value n2 = universe_.FreshNull();
  Graph a;
  a.AddEdge(C("c"), L("e"), n1);
  Graph b;
  b.AddEdge(C("c"), L("f"), n2);
  EXPECT_FALSE(IsomorphicUpToNulls(a, b));
}

TEST_F(IsoFixture, DifferentNullStructureRejected) {
  // One shared null vs two distinct nulls.
  Value n1 = universe_.FreshNull();
  Value n2 = universe_.FreshNull();
  Value n3 = universe_.FreshNull();
  Graph a;
  a.AddEdge(C("c"), L("e"), n1);
  a.AddEdge(C("d"), L("e"), n1);
  Graph b;
  b.AddEdge(C("c"), L("e"), n2);
  b.AddEdge(C("d"), L("e"), n3);
  EXPECT_FALSE(IsomorphicUpToNulls(a, b));
  EXPECT_FALSE(IsomorphicUpToNulls(b, a));
}

TEST_F(IsoFixture, SwappedNullRolesFound) {
  // Nulls with symmetric roles: the search must find the right pairing.
  Value n1 = universe_.FreshNull();
  Value n2 = universe_.FreshNull();
  Value m1 = universe_.FreshNull();
  Value m2 = universe_.FreshNull();
  Graph a;
  a.AddEdge(n1, L("e"), n2);
  a.AddEdge(C("c"), L("f"), n1);
  Graph b;
  b.AddEdge(m2, L("e"), m1);
  b.AddEdge(C("c"), L("f"), m2);
  EXPECT_TRUE(IsomorphicUpToNulls(a, b));
}

TEST_F(IsoFixture, IsolatedNodesCount) {
  Graph a;
  a.AddNode(C("c"));
  Graph b;
  EXPECT_FALSE(IsomorphicUpToNulls(a, b));
}

TEST_F(IsoFixture, DeduplicateKeepsFirstOccurrence) {
  Value n1 = universe_.FreshNull();
  Value n2 = universe_.FreshNull();
  Graph a;
  a.AddEdge(C("c"), L("e"), n1);
  Graph b;  // isomorphic to a
  b.AddEdge(C("c"), L("e"), n2);
  Graph c;  // different
  c.AddEdge(C("c"), L("f"), n2);
  std::vector<Graph> unique =
      DeduplicateUpToIsomorphism({a, b, c});
  ASSERT_EQ(unique.size(), 2u);
  EXPECT_TRUE(IsomorphicUpToNulls(unique[0], a));
  EXPECT_TRUE(IsomorphicUpToNulls(unique[1], c));
}

}  // namespace
}  // namespace gdx
