// Tests for the SAT substrate: CNF, DIMACS round-trips, DPLL correctness
// (vs brute force, randomized), model enumeration and generators.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sat/cnf.h"
#include "sat/dpll.h"
#include "sat/gen.h"

namespace gdx {
namespace {

TEST(CnfTest, AddClauseGrowsVars) {
  CnfFormula f;
  f.AddClause({1, -5});
  EXPECT_EQ(f.num_vars(), 5);
  EXPECT_EQ(f.num_clauses(), 1u);
}

TEST(CnfTest, EvalChecksEveryClause) {
  CnfFormula f = Rho0();
  std::vector<bool> v(5, false);
  // v(x1)=v(x2)=true, v(x3)=v(x4)=false: the paper's satisfying valuation.
  v[1] = true;
  v[2] = true;
  EXPECT_TRUE(f.Eval(v));
  // All-false: clause 1 = (x1 ∨ ¬x2 ∨ x3) holds via ¬x2; clause 2 holds
  // via ¬x1. Flip to violate: x2=true, x1=false, x3=false.
  std::vector<bool> w(5, false);
  w[2] = true;
  EXPECT_FALSE(f.Eval(w));
}

TEST(CnfTest, DimacsRoundTrip) {
  CnfFormula f = Rho0();
  std::string text = f.ToDimacs();
  Result<CnfFormula> parsed = ParseDimacs(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_vars(), f.num_vars());
  ASSERT_EQ(parsed->num_clauses(), f.num_clauses());
  for (size_t i = 0; i < f.num_clauses(); ++i) {
    EXPECT_EQ(parsed->clauses()[i], f.clauses()[i]);
  }
}

TEST(CnfTest, DimacsErrors) {
  EXPECT_FALSE(ParseDimacs("1 2 0").ok());            // missing header
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n1 2").ok());   // unterminated
  EXPECT_FALSE(ParseDimacs("p cnf 2 2\n1 0\n").ok()); // count mismatch
  EXPECT_TRUE(ParseDimacs("c comment\np cnf 2 1\n1 -2 0\n").ok());
}

TEST(DpllTest, Rho0IsSatisfiable) {
  DpllSolver solver;
  SatResult r = solver.Solve(Rho0());
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(Rho0().Eval(r.model));
}

TEST(DpllTest, TrivialUnsat) {
  CnfFormula f(1);
  f.AddClause({1});
  f.AddClause({-1});
  EXPECT_FALSE(DpllSolver().Solve(f).satisfiable);
}

TEST(DpllTest, EmptyFormulaIsSat) {
  CnfFormula f(3);
  EXPECT_TRUE(DpllSolver().Solve(f).satisfiable);
}

TEST(DpllTest, EmptyClauseIsUnsat) {
  CnfFormula f(1);
  f.AddClause({});
  EXPECT_FALSE(DpllSolver().Solve(f).satisfiable);
}

TEST(DpllTest, PigeonholeIsUnsat) {
  for (int holes = 2; holes <= 4; ++holes) {
    CnfFormula php = Pigeonhole(holes);
    SatResult r = DpllSolver().Solve(php);
    EXPECT_FALSE(r.satisfiable) << "PHP(" << holes + 1 << "," << holes << ")";
    EXPECT_GT(r.stats.conflicts, 0u);
  }
}

TEST(DpllTest, PlantedInstancesAreSat) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    CnfFormula f = PlantedKSat(12, 50, 3, rng);
    SatResult r = DpllSolver().Solve(f);
    ASSERT_TRUE(r.satisfiable);
    EXPECT_TRUE(f.Eval(r.model));
  }
}

TEST(DpllTest, EnumerateModelsFindsAll) {
  // x1 ∨ x2 over 2 vars has exactly 3 models.
  CnfFormula f(2);
  f.AddClause({1, 2});
  std::vector<std::vector<bool>> models =
      DpllSolver().EnumerateModels(f, 10);
  EXPECT_EQ(models.size(), 3u);
  for (const auto& m : models) EXPECT_TRUE(f.Eval(m));
}

TEST(DpllTest, DecisionBudgetReportsUnknownNotUnsat) {
  // PHP(5,4) needs many decisions; a budget of 1 cannot settle it.
  CnfFormula php = Pigeonhole(4);
  DpllConfig config;
  config.max_decisions = 1;
  SatResult r = DpllSolver(config).Solve(php);
  EXPECT_FALSE(r.satisfiable);
  EXPECT_TRUE(r.budget_exhausted)
      << "budget exhaustion must not masquerade as an UNSAT proof";
  // Unlimited budget settles it (and does not flag exhaustion).
  SatResult full = DpllSolver().Solve(php);
  EXPECT_FALSE(full.satisfiable);
  EXPECT_FALSE(full.budget_exhausted);
}

TEST(DpllTest, ConfigVariantsAgree) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    CnfFormula f = RandomKSat(10, 42, 3, rng);
    DpllConfig plain;
    plain.use_pure_literal = false;
    plain.use_moms_heuristic = false;
    bool a = DpllSolver().Solve(f).satisfiable;
    bool b = DpllSolver(plain).Solve(f).satisfiable;
    EXPECT_EQ(a, b) << f.ToDimacs();
  }
}

// Randomized ground-truth property: DPLL agrees with the 2^n truth table.
class DpllVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DpllVsBruteForce, Agree) {
  Rng rng(GetParam());
  for (int i = 0; i < 15; ++i) {
    int n = 4 + static_cast<int>(rng.NextU64() % 6);  // 4..9 vars
    int m = static_cast<int>(rng.NextU64() % (4 * n)) + 1;
    CnfFormula f = RandomKSat(n, m, 3, rng);
    SatResult r = DpllSolver().Solve(f);
    bool truth = BruteForceSatisfiable(f);
    ASSERT_EQ(r.satisfiable, truth) << f.ToDimacs();
    if (r.satisfiable) {
      EXPECT_TRUE(f.Eval(r.model));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpllVsBruteForce,
                         ::testing::Range<uint64_t>(100, 112));

TEST(GenTest, RandomKSatShape) {
  Rng rng(3);
  CnfFormula f = RandomKSat(20, 85, 3, rng);
  EXPECT_EQ(f.num_vars(), 20);
  EXPECT_EQ(f.num_clauses(), 85u);
  for (const Clause& c : f.clauses()) {
    EXPECT_EQ(c.size(), 3u);
    // Distinct variables within a clause.
    EXPECT_NE(std::abs(c[0]), std::abs(c[1]));
    EXPECT_NE(std::abs(c[1]), std::abs(c[2]));
    EXPECT_NE(std::abs(c[0]), std::abs(c[2]));
  }
}

TEST(GenTest, PigeonholeShape) {
  CnfFormula php = Pigeonhole(3);
  EXPECT_EQ(php.num_vars(), 12);  // 4 pigeons x 3 holes
  // 4 "somewhere" clauses + 3 * C(4,2) exclusion clauses.
  EXPECT_EQ(php.num_clauses(), 4u + 3u * 6u);
}

}  // namespace
}  // namespace gdx
