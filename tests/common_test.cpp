// Unit tests for the common kernel: values, interning, universe, union-find,
// value partitions, RNG determinism, string helpers and Status/Result.
#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/union_find.h"
#include "common/universe.h"
#include "common/value.h"
#include "common/value_partition.h"

namespace gdx {
namespace {

TEST(ValueTest, ConstantAndNullAreDistinct) {
  Value c = Value::Constant(7);
  Value n = Value::Null(7);
  EXPECT_TRUE(c.is_constant());
  EXPECT_FALSE(c.is_null());
  EXPECT_TRUE(n.is_null());
  EXPECT_EQ(c.id(), 7u);
  EXPECT_EQ(n.id(), 7u);
  EXPECT_NE(c, n);
}

TEST(ValueTest, EqualityAndHashAgree) {
  Value a = Value::Constant(3);
  Value b = Value::Constant(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ValueHash()(a), ValueHash()(b));
}

TEST(ValueTest, OrderingIsDeterministic) {
  EXPECT_LT(Value::Constant(1), Value::Constant(2));
  // Constants sort before the null with the same id (raw LSB tag).
  EXPECT_LT(Value::Constant(5), Value::Null(5));
}

TEST(InternerTest, InternIsIdempotent) {
  StringInterner interner;
  SymbolId a = interner.Intern("alpha");
  SymbolId b = interner.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.NameOf(a), "alpha");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, FindDoesNotCreate) {
  StringInterner interner;
  EXPECT_FALSE(interner.Find("ghost").has_value());
  interner.Intern("real");
  EXPECT_TRUE(interner.Find("real").has_value());
  EXPECT_EQ(interner.size(), 1u);
}

TEST(UniverseTest, ConstantsAndNullsHaveNames) {
  Universe universe;
  Value c = universe.MakeConstant("c1");
  Value n1 = universe.FreshNull();
  Value n2 = universe.FreshNull();
  EXPECT_EQ(universe.NameOf(c), "c1");
  EXPECT_EQ(universe.NameOf(n1), "N1");
  EXPECT_EQ(universe.NameOf(n2), "N2");
  EXPECT_NE(n1, n2);
}

TEST(UniverseTest, FindConstantOnlyFindsInterned) {
  Universe universe;
  universe.MakeConstant("x");
  EXPECT_TRUE(universe.FindConstant("x").has_value());
  EXPECT_FALSE(universe.FindConstant("y").has_value());
}

TEST(UnionFindTest, BasicUnionAndFind) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_classes(), 5u);
  uf.Union(0, 1);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Same(0, 1));
  EXPECT_FALSE(uf.Same(1, 2));
  EXPECT_TRUE(uf.Same(3, 4));
  EXPECT_EQ(uf.num_classes(), 3u);
}

TEST(UnionFindTest, AddGrows) {
  UnionFind uf(1);
  uint32_t x = uf.Add();
  EXPECT_EQ(x, 1u);
  uf.Union(0, x);
  EXPECT_TRUE(uf.Same(0, 1));
}

TEST(ValuePartitionTest, NullMergesIntoConstant) {
  ValuePartition partition;
  Value c = Value::Constant(1);
  Value n = Value::Null(1);
  ASSERT_TRUE(partition.Merge(c, n).ok());
  EXPECT_EQ(partition.Find(n), c);
  EXPECT_EQ(partition.Find(c), c);
}

TEST(ValuePartitionTest, ConstantConstantMergeFails) {
  ValuePartition partition;
  Status st = partition.Merge(Value::Constant(1), Value::Constant(2));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(ValuePartitionTest, TransitiveConstantClashFails) {
  // n merges with c1; then n merges with c2 -> clash through the class.
  ValuePartition partition;
  Value n = Value::Null(9);
  ASSERT_TRUE(partition.Merge(n, Value::Constant(1)).ok());
  Status st = partition.Merge(n, Value::Constant(2));
  EXPECT_FALSE(st.ok());
}

TEST(ValuePartitionTest, NullNullMergeKeepsDeterministicRep) {
  ValuePartition partition;
  Value n1 = Value::Null(1);
  Value n2 = Value::Null(2);
  ASSERT_TRUE(partition.Merge(n2, n1).ok());
  EXPECT_EQ(partition.Find(n1), partition.Find(n2));
  // Untracked values represent themselves.
  EXPECT_EQ(partition.Find(Value::Null(77)), Value::Null(77));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t x = rng.UniformInt(-3, 5);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 5);
  }
}

TEST(StringsTest, SplitAndStrip) {
  std::vector<std::string> pieces = StrSplit(" a, b , c ", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
  EXPECT_EQ(StripWhitespace("  x \n"), "x");
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("h", "he"));
}

TEST(StatusTest, CodesAndMessages) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.ToString().find("nope"), std::string::npos);
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad = Status::NotFound("missing");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace gdx
