// Tests for the src/obs/ observability subsystem (ISSUE 6): histogram
// bucket boundaries, merge commutativity, sharded-vs-single-threaded
// recording equivalence, registry JSON round-trip, tracer balance and
// overflow behavior — plus the satellites: Metrics::ToString growth,
// per-scenario batch timings, and traced-run determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/exchange_engine.h"
#include "engine/thread_pool.h"
#include "obs/histogram.h"
#include "obs/stats_registry.h"
#include "obs/trace.h"
#include "workload/flights.h"

namespace gdx {
namespace {

using obs::HistogramLayout;
using obs::HistogramSnapshot;

// --- mini JSON parser --------------------------------------------------------
// Just enough JSON to round-trip the registry dump and the trace export.
// Numbers parse as double; test values stay below 2^53 so integer
// comparisons are exact.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  uint64_t U64() const { return static_cast<uint64_t>(number); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'u': pos_ += 4; out->push_back('?'); break;
          default: out->push_back(esc);
        }
      } else {
        out->push_back(c);
      }
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      do {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
      } while (Consume(','));
      return Consume('}');
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      do {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
      } while (Consume(','));
      return Consume(']');
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue ParseJsonOrDie(const std::string& text) {
  JsonValue v;
  EXPECT_TRUE(JsonParser(text).Parse(&v)) << "unparseable JSON: " << text;
  return v;
}

/// Deterministic pseudo-random 64-bit stream (splitmix64).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// --- histogram layout --------------------------------------------------------

TEST(HistogramLayoutTest, SmallValuesAreExact) {
  for (uint64_t v = 0; v < HistogramLayout::kSubBuckets; ++v) {
    size_t i = HistogramLayout::BucketIndex(v);
    EXPECT_EQ(i, v);
    EXPECT_EQ(HistogramLayout::BucketLowerBound(i), v);
    EXPECT_EQ(HistogramLayout::BucketUpperBound(i), v);
  }
}

TEST(HistogramLayoutTest, BoundsInvertIndexAndTile) {
  for (size_t i = 0; i < HistogramLayout::kNumBuckets; ++i) {
    uint64_t lo = HistogramLayout::BucketLowerBound(i);
    uint64_t hi = HistogramLayout::BucketUpperBound(i);
    EXPECT_LE(lo, hi) << "bucket " << i;
    EXPECT_EQ(HistogramLayout::BucketIndex(lo), i);
    EXPECT_EQ(HistogramLayout::BucketIndex(hi), i);
    if (i > 0) {
      // Buckets tile the value axis with no gaps or overlaps.
      EXPECT_EQ(HistogramLayout::BucketUpperBound(i - 1) + 1, lo)
          << "bucket " << i;
    }
  }
  EXPECT_EQ(HistogramLayout::BucketIndex(~static_cast<uint64_t>(0)),
            HistogramLayout::kNumBuckets - 1);
}

TEST(HistogramLayoutTest, RelativeWidthAtMostQuarter) {
  for (size_t i = HistogramLayout::kSubBuckets;
       i < HistogramLayout::kNumBuckets; ++i) {
    uint64_t lo = HistogramLayout::BucketLowerBound(i);
    uint64_t width = HistogramLayout::BucketUpperBound(i) - lo + 1;
    EXPECT_LE(width, lo / HistogramLayout::kSubBuckets) << "bucket " << i;
  }
}

TEST(HistogramLayoutTest, IndexIsMonotonic) {
  Rng rng(7);
  for (int trial = 0; trial < 10000; ++trial) {
    uint64_t a = rng.Next();
    uint64_t b = rng.Next();
    if (a > b) std::swap(a, b);
    EXPECT_LE(HistogramLayout::BucketIndex(a), HistogramLayout::BucketIndex(b));
  }
}

// --- histogram snapshot ------------------------------------------------------

TEST(HistogramSnapshotTest, MergeIsCommutative) {
  Rng rng(42);
  HistogramSnapshot a, b;
  for (int i = 0; i < 5000; ++i) a.Record(rng.Next() >> (rng.Next() % 40));
  for (int i = 0; i < 3000; ++i) b.Record(rng.Next() >> (rng.Next() % 40));

  HistogramSnapshot ab = a;
  ab.Merge(b);
  HistogramSnapshot ba = b;
  ba.Merge(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.count, 8000u);
}

TEST(HistogramSnapshotTest, QuantilesAreDeterministicBucketBounds) {
  HistogramSnapshot h;
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);  // empty

  h.Record(1000);
  // A single value: every quantile reports it exactly (clamped to max).
  EXPECT_EQ(h.ValueAtQuantile(0.0), 1000u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 1000u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 1000u);

  HistogramSnapshot spread;
  for (uint64_t v = 1; v <= 100; ++v) spread.Record(v * 1000);
  // p50 falls in the bucket of 50'000; the reported value is that
  // bucket's upper bound — deterministic and within 25% of the true rank.
  uint64_t p50 = spread.ValueAtQuantile(0.50);
  EXPECT_EQ(p50, HistogramLayout::BucketUpperBound(
                     HistogramLayout::BucketIndex(50000)));
  EXPECT_EQ(spread.ValueAtQuantile(0.0), 1000u);
  EXPECT_EQ(spread.ValueAtQuantile(1.0), 100000u);  // clamped to max
  EXPECT_EQ(spread.MeanNs(), 50500.0);
}

// --- sharded recording -------------------------------------------------------

TEST(StatsRegistryTest, ShardedRecordingEqualsSingleThreaded) {
  // The same value stream recorded through 1, 2, and 8 workers must merge
  // to the identical snapshot a plain single-threaded recording produces.
  Rng seed_rng(99);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(seed_rng.Next() >> (seed_rng.Next() % 48));
  }
  HistogramSnapshot reference;
  for (uint64_t v : values) reference.Record(v);

  for (size_t workers : {1u, 2u, 8u}) {
    obs::StatsRegistry registry;
    obs::Histogram* hist = registry.GetHistogram("test.latency_ns");
    obs::Counter* counter = registry.GetCounter("test.count");
    std::vector<std::thread> threads;
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        for (size_t i = w; i < values.size(); i += workers) {
          hist->Record(values[i]);
          counter->Increment();
        }
      });
    }
    for (std::thread& t : threads) t.join();

    EXPECT_TRUE(hist->Snapshot() == reference) << workers << " workers";
    EXPECT_EQ(counter->Value(), values.size()) << workers << " workers";
  }
}

TEST(StatsRegistryTest, HandlesAreStableAndShared) {
  obs::StatsRegistry registry;
  obs::Counter* a = registry.GetCounter("x");
  obs::Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Add(3);
  b->Add(4);
  EXPECT_EQ(registry.GetCounter("x")->Value(), 7u);
  registry.GetGauge("g")->Set(-5);
  EXPECT_EQ(registry.GetGauge("g")->Value(), -5);
}

// --- registry JSON -----------------------------------------------------------

TEST(StatsRegistryTest, JsonRoundTrip) {
  obs::StatsRegistry registry;
  registry.GetCounter("engine.solve.count")->Add(12);
  registry.GetCounter("engine.cache.nre.hits")->Add(34);
  registry.GetGauge("pool.intra.queue_depth")->Set(5);
  obs::Histogram* hist = registry.GetHistogram("engine.solve.total_ns");
  for (uint64_t v : {100u, 200u, 300u, 400u, 4000u}) hist->Record(v);

  JsonValue root = ParseJsonOrDie(registry.ToJson());
  ASSERT_EQ(root.kind, JsonValue::kObject);
  EXPECT_EQ(root.Find("schema")->U64(), obs::kTelemetrySchemaVersion);

  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("engine.solve.count")->U64(), 12u);
  EXPECT_EQ(counters->Find("engine.cache.nre.hits")->U64(), 34u);

  EXPECT_EQ(root.Find("gauges")->Find("pool.intra.queue_depth")->number, 5.0);

  const JsonValue* h = root.Find("histograms")->Find("engine.solve.total_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Find("count")->U64(), 5u);
  EXPECT_EQ(h->Find("sum")->U64(), 5000u);
  EXPECT_EQ(h->Find("min")->U64(), 100u);
  EXPECT_EQ(h->Find("max")->U64(), 4000u);
  HistogramSnapshot expect_snapshot = hist->Snapshot();
  EXPECT_EQ(h->Find("p50")->U64(), expect_snapshot.ValueAtQuantile(0.50));
  EXPECT_EQ(h->Find("p99")->U64(), expect_snapshot.ValueAtQuantile(0.99));
  // Bucket pairs are [lower_bound, count], non-empty only, summing to count.
  const JsonValue* buckets = h->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  uint64_t total = 0;
  for (const JsonValue& pair : buckets->array) {
    ASSERT_EQ(pair.array.size(), 2u);
    EXPECT_GT(pair.array[1].U64(), 0u);
    total += pair.array[1].U64();
  }
  EXPECT_EQ(total, 5u);

  // Deterministic: a second dump of an untouched registry is identical.
  EXPECT_EQ(registry.ToJson(), registry.ToJson());
}

// --- tracer ------------------------------------------------------------------

TEST(TracerTest, ExportsBalancedNestedSpans) {
  obs::Tracer tracer;
  obs::Tracer::SetGlobal(&tracer);
  {
    GDX_TRACE_SPAN("outer", "test");
    {
      GDX_TRACE_SPAN("inner", "test", 7u);
    }
    { GDX_TRACE_SPAN("inner2", "test"); }
  }
  std::thread other([] {
    GDX_TRACE_SPAN("worker", "test", 1u);
  });
  other.join();
  obs::Tracer::SetGlobal(nullptr);

  EXPECT_EQ(tracer.event_count(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 0u);

  JsonValue root = ParseJsonOrDie(tracer.ToJson());
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Per-tid: B/E strictly balanced, LIFO name-matched, M metadata allowed.
  std::map<uint64_t, std::vector<std::string>> stacks;
  size_t begins = 0;
  bool saw_inner_arg = false;
  for (const JsonValue& e : events->array) {
    const std::string& phase = e.Find("ph")->str;
    if (phase == "M") continue;
    uint64_t tid = e.Find("tid")->U64();
    if (phase == "B") {
      ++begins;
      stacks[tid].push_back(e.Find("name")->str);
      if (e.Find("name")->str == "inner") {
        const JsonValue* args = e.Find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_EQ(args->Find("arg")->U64(), 7u);
        saw_inner_arg = true;
      }
    } else {
      ASSERT_EQ(phase, "E");
      ASSERT_FALSE(stacks[tid].empty()) << "unbalanced E on tid " << tid;
      stacks[tid].pop_back();
    }
  }
  EXPECT_EQ(begins, 4u);
  EXPECT_TRUE(saw_inner_arg);
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed spans on tid " << tid;
  }
}

TEST(TracerTest, OverflowDropsAndCounts) {
  obs::Tracer tracer(/*events_per_thread=*/4);
  obs::Tracer::SetGlobal(&tracer);
  for (int i = 0; i < 10; ++i) {
    GDX_TRACE_SPAN("tick", "test");
  }
  obs::Tracer::SetGlobal(nullptr);
  EXPECT_EQ(tracer.event_count(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
  // The export still parses and stays balanced.
  JsonValue root = ParseJsonOrDie(tracer.ToJson());
  EXPECT_EQ(root.Find("traceEvents")->array.size(), 4u * 2 + 1);  // B+E+M
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;
  tracer.set_enabled(false);
  obs::Tracer::SetGlobal(&tracer);
  { GDX_TRACE_SPAN("ignored", "test"); }
  obs::Tracer::SetGlobal(nullptr);
  EXPECT_EQ(tracer.event_count(), 0u);
}

// --- Metrics::ToString growth (satellite) ------------------------------------

TEST(MetricsTest, ToStringNeverTruncates) {
  // The old fixed 1024-byte snprintf buffer silently clipped once enough
  // counters carried large values; the incremental builder must render
  // every field down to the last line no matter how wide they get.
  Metrics m;
  m.scenarios = ~static_cast<size_t>(0);
  m.total_seconds = 1e9;
  m.chase_seconds = m.existence_seconds = m.certain_seconds = 1e9;
  m.minimize_seconds = m.verify_seconds = 1e9;
  m.chase_triggers = m.chase_merges = ~static_cast<size_t>(0);
  m.candidates_tried = m.solutions_enumerated = ~static_cast<size_t>(0);
  m.nre_cache_hits = m.nre_cache_misses = ~static_cast<uint64_t>(0);
  m.answer_cache_hits = m.answer_cache_misses = ~static_cast<uint64_t>(0);
  m.compile_cache_hits = m.compile_cache_misses = ~static_cast<uint64_t>(0);
  m.chase_cache_hits = m.chase_cache_misses = ~static_cast<uint64_t>(0);
  m.nre_cache_restored_hits = ~static_cast<uint64_t>(0);
  m.answer_cache_restored_hits = ~static_cast<uint64_t>(0);
  m.compile_cache_restored_hits = ~static_cast<uint64_t>(0);
  m.chase_cache_restored_hits = ~static_cast<uint64_t>(0);

  std::string s = m.ToString();
  // All 17 max-valued integer fields render in full (header + 4 work +
  // 8 cache + 4 warm), and the final field of the final line survived —
  // nothing was clipped to a buffer size.
  size_t occurrences = 0;
  for (size_t pos = s.find("18446744073709551615"); pos != std::string::npos;
       pos = s.find("18446744073709551615", pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 17u);
  EXPECT_NE(s.find("chase=18446744073709551615\n"), std::string::npos);
  EXPECT_EQ(s.back(), '\n');
}

// --- batch timing + registry integration (satellites) ------------------------

std::vector<Scenario> SmallBatch() {
  std::vector<Scenario> batch;
  batch.push_back(MakeExample22Scenario(FlightConstraintMode::kEgd));
  batch.push_back(MakeExample22Scenario(FlightConstraintMode::kSameAs));
  batch.push_back(MakeExample22Scenario(FlightConstraintMode::kNone));
  batch.push_back(MakeExample22Scenario(FlightConstraintMode::kEgd));
  return batch;
}

TEST(BatchObservabilityTest, PerScenarioTimingsAndSummary) {
  BatchOptions options;
  options.num_threads = 2;
  BatchExecutor executor(options);
  std::vector<Scenario> batch = SmallBatch();
  BatchReport report = executor.SolveAll(batch);

  ASSERT_EQ(report.timings.size(), batch.size());
  for (const ScenarioTiming& t : report.timings) {
    EXPECT_GT(t.execute_seconds, 0.0);
    EXPECT_GE(t.queue_wait_seconds, 0.0);
  }
  EXPECT_EQ(report.ExecuteHistogram().count, batch.size());
  EXPECT_EQ(report.QueueWaitHistogram().count, batch.size());

  std::string summary = report.Summary();
  EXPECT_NE(summary.find("latency: execute p50="), std::string::npos);
  EXPECT_NE(summary.find("queue-wait p50="), std::string::npos);
}

TEST(BatchObservabilityTest, RegistryCollectsEngineAndBatchMetrics) {
  obs::StatsRegistry registry;
  BatchOptions options;
  options.num_threads = 2;
  options.engine.stats = &registry;
  BatchExecutor executor(options);
  std::vector<Scenario> batch = SmallBatch();
  BatchReport report = executor.SolveAll(batch);
  ASSERT_EQ(report.errors, 0u);

  EXPECT_EQ(registry.GetCounter("engine.solve.count")->Value(), batch.size());
  EXPECT_EQ(registry.GetHistogram("engine.solve.total_ns")->Snapshot().count,
            batch.size());
  EXPECT_EQ(registry.GetHistogram("batch.execute_ns")->Snapshot().count,
            batch.size());
  EXPECT_EQ(registry.GetCounter("pool.batch.executed")->Value(), batch.size());
  // The registry's cache counters reproduce the report's exact attribution.
  EXPECT_EQ(registry.GetCounter("engine.cache.nre.hits")->Value(),
            report.total.nre_cache_hits);
  EXPECT_EQ(registry.GetCounter("engine.cache.chase.misses")->Value(),
            report.total.chase_cache_misses);
  // And the dump of all of it is valid JSON.
  JsonValue root = ParseJsonOrDie(registry.ToJson());
  EXPECT_EQ(root.Find("counters")->Find("engine.solve.count")->U64(),
            batch.size());
}

TEST(BatchObservabilityTest, TracingNeverChangesOutcomes) {
  std::vector<std::string> baseline;
  {
    BatchExecutor executor(BatchOptions{});
    std::vector<Scenario> batch = SmallBatch();
    BatchReport report = executor.SolveAll(batch);
    for (size_t i = 0; i < report.outcomes.size(); ++i) {
      ASSERT_TRUE(report.outcomes[i].ok());
      baseline.push_back(report.outcomes[i]->ToString(*batch[i].universe,
                                                      *batch[i].alphabet));
    }
  }

  obs::Tracer tracer;
  obs::Tracer::SetGlobal(&tracer);
  {
    BatchExecutor executor(BatchOptions{});
    std::vector<Scenario> batch = SmallBatch();
    BatchReport report = executor.SolveAll(batch);
    for (size_t i = 0; i < report.outcomes.size(); ++i) {
      ASSERT_TRUE(report.outcomes[i].ok());
      EXPECT_EQ(report.outcomes[i]->ToString(*batch[i].universe,
                                             *batch[i].alphabet),
                baseline[i]);
    }
  }
  obs::Tracer::SetGlobal(nullptr);

  // The traced run produced real spans, including the Solve stages.
  EXPECT_GT(tracer.event_count(), 0u);
  std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"name\":\"solve\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"batch.solve_all\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"scenario\""), std::string::npos);
}

// --- thread pool stats (tentpole: pool gauges) -------------------------------

TEST(ThreadPoolStatsTest, CountsSubmittedAndExecuted) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(stats.submitted, 64u);
  EXPECT_EQ(stats.executed, 64u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

}  // namespace
}  // namespace gdx
