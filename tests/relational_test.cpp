// Unit tests for the relational substrate: schema, instances, conjunctive
// query evaluation and the classical relational chase (s-t tgds + egds).
#include <gtest/gtest.h>

#include "common/universe.h"
#include "relational/chase.h"
#include "relational/cq.h"
#include "relational/eval.h"
#include "relational/instance.h"
#include "relational/schema.h"

namespace gdx {
namespace {

class RelationalFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *schema_.AddRelation("R", 2);
    s_ = *schema_.AddRelation("S", 2);
    instance_ = std::make_unique<Instance>(&schema_);
    a_ = universe_.MakeConstant("a");
    b_ = universe_.MakeConstant("b");
    c_ = universe_.MakeConstant("c");
  }

  Schema schema_;
  RelationId r_ = 0, s_ = 0;
  std::unique_ptr<Instance> instance_;
  Universe universe_;
  Value a_, b_, c_;
};

TEST_F(RelationalFixture, SchemaRejectsDuplicates) {
  EXPECT_FALSE(schema_.AddRelation("R", 1).ok());
  EXPECT_TRUE(schema_.Find("R").has_value());
  EXPECT_FALSE(schema_.Find("T").has_value());
}

TEST_F(RelationalFixture, InstanceChecksArityAndDedups) {
  EXPECT_TRUE(instance_->AddFact(r_, {a_, b_}).ok());
  EXPECT_TRUE(instance_->AddFact(r_, {a_, b_}).ok());  // dup ignored
  EXPECT_EQ(instance_->facts(r_).size(), 1u);
  EXPECT_FALSE(instance_->AddFact(r_, {a_}).ok());  // arity mismatch
  EXPECT_TRUE(instance_->Contains(r_, {a_, b_}));
  EXPECT_FALSE(instance_->Contains(r_, {b_, a_}));
}

TEST_F(RelationalFixture, CqJoinEvaluation) {
  // R(a,b), R(b,c), S(b,c): query R(x,y), S(y,z) -> (x,z).
  ASSERT_TRUE(instance_->AddFact(r_, {a_, b_}).ok());
  ASSERT_TRUE(instance_->AddFact(r_, {b_, c_}).ok());
  ASSERT_TRUE(instance_->AddFact(s_, {b_, c_}).ok());

  ConjunctiveQuery q(&schema_);
  VarId x = q.InternVar("x");
  VarId y = q.InternVar("y");
  VarId z = q.InternVar("z");
  q.AddAtom(RelAtom{r_, {Term::Var(x), Term::Var(y)}});
  q.AddAtom(RelAtom{s_, {Term::Var(y), Term::Var(z)}});
  q.SetHead({x, z});

  std::vector<Tuple> out = EvaluateCq(q, *instance_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Tuple{a_, c_}));
}

TEST_F(RelationalFixture, CqRepeatedVariableInAtom) {
  // R(a,a), R(a,b): query R(x,x) matches only the loop.
  ASSERT_TRUE(instance_->AddFact(r_, {a_, a_}).ok());
  ASSERT_TRUE(instance_->AddFact(r_, {a_, b_}).ok());
  ConjunctiveQuery q(&schema_);
  VarId x = q.InternVar("x");
  q.AddAtom(RelAtom{r_, {Term::Var(x), Term::Var(x)}});
  q.SetHead({x});
  std::vector<Tuple> out = EvaluateCq(q, *instance_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Tuple{a_}));
}

TEST_F(RelationalFixture, CqWithConstantTerm) {
  ASSERT_TRUE(instance_->AddFact(r_, {a_, b_}).ok());
  ASSERT_TRUE(instance_->AddFact(r_, {c_, b_}).ok());
  ConjunctiveQuery q(&schema_);
  VarId y = q.InternVar("y");
  q.AddAtom(RelAtom{r_, {Term::Const(a_), Term::Var(y)}});
  q.SetHead({y});
  std::vector<Tuple> out = EvaluateCq(q, *instance_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Tuple{b_}));
}

TEST_F(RelationalFixture, BooleanSatisfiability) {
  ConjunctiveQuery q(&schema_);
  VarId x = q.InternVar("x");
  q.AddAtom(RelAtom{r_, {Term::Var(x), Term::Var(x)}});
  EXPECT_FALSE(CqIsSatisfiable(q, *instance_));
  ASSERT_TRUE(instance_->AddFact(r_, {b_, b_}).ok());
  EXPECT_TRUE(CqIsSatisfiable(q, *instance_));
}

class RelChaseFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    src_rel_ = *source_schema_.AddRelation("E", 2);
    tgt_rel_ = *target_schema_.AddRelation("F", 2);
    source_ = std::make_unique<Instance>(&source_schema_);
    a_ = universe_.MakeConstant("a");
    b_ = universe_.MakeConstant("b");
    c_ = universe_.MakeConstant("c");
  }

  /// E(x,y) -> ∃z F(x,z) ∧ F(z,y).
  RelTgd MakeSplitTgd() {
    RelTgd tgd(&source_schema_, &target_schema_);
    VarId x = tgd.body.InternVar("x");
    VarId y = tgd.body.InternVar("y");
    VarId z = tgd.body.InternVar("z");
    tgd.body.AddAtom(RelAtom{src_rel_, {Term::Var(x), Term::Var(y)}});
    tgd.head.push_back(RelAtom{tgt_rel_, {Term::Var(x), Term::Var(z)}});
    tgd.head.push_back(RelAtom{tgt_rel_, {Term::Var(z), Term::Var(y)}});
    return tgd;
  }

  Schema source_schema_, target_schema_;
  RelationId src_rel_ = 0, tgt_rel_ = 0;
  std::unique_ptr<Instance> source_;
  Universe universe_;
  Value a_, b_, c_;
};

TEST_F(RelChaseFixture, ExistentialVarsDetected) {
  RelTgd tgd = MakeSplitTgd();
  std::vector<VarId> ex = tgd.ExistentialVars();
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(tgd.body.vars().NameOf(ex[0]), "z");
}

TEST_F(RelChaseFixture, StChaseInventsOneNullPerTrigger) {
  ASSERT_TRUE(source_->AddFact(src_rel_, {a_, b_}).ok());
  ASSERT_TRUE(source_->AddFact(src_rel_, {b_, c_}).ok());
  std::vector<RelTgd> tgds;
  tgds.push_back(MakeSplitTgd());
  RelChaseStats stats;
  Instance target =
      ChaseStTgds(*source_, tgds, &target_schema_, universe_, &stats);
  EXPECT_EQ(stats.triggers_fired, 2u);
  EXPECT_EQ(target.facts(tgt_rel_).size(), 4u);
  EXPECT_EQ(universe_.num_nulls(), 2u);
}

TEST_F(RelChaseFixture, EgdChaseMergesNulls) {
  // Target: F(a, N1), F(a, N2). Egd F(x,y) ∧ F(x,z) -> y = z merges them.
  Instance target(&target_schema_);
  Value n1 = universe_.FreshNull();
  Value n2 = universe_.FreshNull();
  ASSERT_TRUE(target.AddFact(tgt_rel_, {a_, n1}).ok());
  ASSERT_TRUE(target.AddFact(tgt_rel_, {a_, n2}).ok());

  RelEgd egd(&target_schema_);
  VarId x = egd.body.InternVar("x");
  VarId y = egd.body.InternVar("y");
  VarId z = egd.body.InternVar("z");
  egd.body.AddAtom(RelAtom{tgt_rel_, {Term::Var(x), Term::Var(y)}});
  egd.body.AddAtom(RelAtom{tgt_rel_, {Term::Var(x), Term::Var(z)}});
  egd.x1 = y;
  egd.x2 = z;

  RelChaseStats stats;
  ASSERT_TRUE(ChaseEgds(target, {egd}, &stats).ok());
  EXPECT_EQ(target.facts(tgt_rel_).size(), 1u);
  EXPECT_GE(stats.merges, 1u);
}

TEST_F(RelChaseFixture, EgdChaseFailsOnConstantClash) {
  // F(a,b), F(a,c) with F(x,y) ∧ F(x,z) -> y = z: b = c is impossible.
  Instance target(&target_schema_);
  ASSERT_TRUE(target.AddFact(tgt_rel_, {a_, b_}).ok());
  ASSERT_TRUE(target.AddFact(tgt_rel_, {a_, c_}).ok());

  RelEgd egd(&target_schema_);
  VarId x = egd.body.InternVar("x");
  VarId y = egd.body.InternVar("y");
  VarId z = egd.body.InternVar("z");
  egd.body.AddAtom(RelAtom{tgt_rel_, {Term::Var(x), Term::Var(y)}});
  egd.body.AddAtom(RelAtom{tgt_rel_, {Term::Var(x), Term::Var(z)}});
  egd.x1 = y;
  egd.x2 = z;

  Status st = ChaseEgds(target, {egd});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(RelChaseFixture, FullExchangePipeline) {
  ASSERT_TRUE(source_->AddFact(src_rel_, {a_, b_}).ok());
  std::vector<RelTgd> tgds;
  tgds.push_back(MakeSplitTgd());
  Result<Instance> result =
      RunRelationalExchange(*source_, tgds, {}, &target_schema_, universe_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->facts(tgt_rel_).size(), 2u);
}

}  // namespace
}  // namespace gdx
