// Tests for the NRE algebraic simplifier: every rewrite rule, plus the
// randomized semantics-preservation property over random graphs.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/nre_parser.h"
#include "graph/nre_simplify.h"
#include "graph/nre_eval.h"
#include "workload/random_graph.h"

namespace gdx {
namespace {

class SimplifyFixture : public ::testing::Test {
 protected:
  Alphabet alphabet_;

  NrePtr Parse(const std::string& text) {
    Result<NrePtr> r = ParseNre(text, alphabet_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  void ExpectSimplifiesTo(const std::string& input,
                          const std::string& expected) {
    NrePtr simplified = SimplifyNre(Parse(input));
    EXPECT_TRUE(NreEquals(simplified, Parse(expected)))
        << input << " simplified to " << simplified->ToString(alphabet_)
        << ", expected " << expected;
  }
};

TEST_F(SimplifyFixture, EpsilonConcatUnits) {
  ExpectSimplifiesTo("eps . a", "a");
  ExpectSimplifiesTo("a . eps", "a");
  ExpectSimplifiesTo("eps . eps", "eps");
  ExpectSimplifiesTo("eps . a . eps . b", "a . b");
}

TEST_F(SimplifyFixture, UnionIdempotence) {
  ExpectSimplifiesTo("a + a", "a");
  ExpectSimplifiesTo("(a . b) + (a . b)", "a . b");
  // Distinct branches survive.
  ExpectSimplifiesTo("a + b", "a + b");
}

TEST_F(SimplifyFixture, StarCollapses) {
  ExpectSimplifiesTo("eps*", "eps");
  ExpectSimplifiesTo("(a*)*", "a*");
  ExpectSimplifiesTo("(eps + a)*", "a*");
  ExpectSimplifiesTo("(a + eps)*", "a*");
}

TEST_F(SimplifyFixture, UnionAbsorptionIntoStar) {
  ExpectSimplifiesTo("a + a*", "a*");
  ExpectSimplifiesTo("a* + a", "a*");
  ExpectSimplifiesTo("eps + a*", "a*");
  ExpectSimplifiesTo("a* + eps", "a*");
}

TEST_F(SimplifyFixture, StarStarConcat) {
  ExpectSimplifiesTo("a* . a*", "a*");
  // Different bodies do not merge.
  ExpectSimplifiesTo("a* . b*", "a* . b*");
}

TEST_F(SimplifyFixture, NestRules) {
  ExpectSimplifiesTo("[eps]", "eps");
  ExpectSimplifiesTo("[[a]]", "[a]");
  ExpectSimplifiesTo("[a]", "[a]");
}

TEST_F(SimplifyFixture, NestedRewritesCascade) {
  // Inner simplifications enable outer ones.
  ExpectSimplifiesTo("(eps . a)*  +  a*", "a*");
  ExpectSimplifiesTo("((a*)* . eps)*", "a*");
}

TEST_F(SimplifyFixture, PaperQueryIsAlreadyMinimal) {
  NrePtr q = Parse("f . f* [h] . f- . (f-)*");
  EXPECT_TRUE(NreEquals(SimplifyNre(q), q));
}

// Randomized property: simplification preserves ⟦r⟧_G on both engines.
class SimplifyPreservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifyPreservation, SemanticsPreserved) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  gp.num_nodes = 12;
  gp.num_edges = 40;
  gp.num_labels = 2;
  gp.seed = GetParam();
  Graph g = MakeRandomGraph(gp, universe, alphabet);
  Rng rng(GetParam() * 31 + 7);
  NaiveNreEvaluator naive;
  AutomatonNreEvaluator automaton;
  for (int i = 0; i < 8; ++i) {
    NrePtr original = MakeRandomNre(4, 2, alphabet, rng);
    NrePtr simplified = SimplifyNre(original);
    EXPECT_LE(simplified->Size(), original->Size());
    EXPECT_EQ(naive.Eval(original, g), naive.Eval(simplified, g))
        << original->ToString(alphabet) << "  vs  "
        << simplified->ToString(alphabet);
    EXPECT_EQ(automaton.Eval(original, g), automaton.Eval(simplified, g))
        << original->ToString(alphabet);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyPreservation,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace gdx
