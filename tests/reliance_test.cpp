// ISSUE 9: property tests of the positive-reliance analysis. The graph's
// structural invariants — node order, dead/nullable flags, adjacency
// soundness, condensation strata respecting every edge, deterministic
// rebuilds — are what the delta chase's skipping correctness rests on;
// the runtime half (skipped rules genuinely yield no new merges) lives in
// delta_chase_test.cpp.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chase/reliance.h"
#include "common/rng.h"
#include "workload/scenario_parser.h"

namespace gdx {
namespace {

Scenario Parse(const std::string& text) {
  Result<Scenario> s = ParseScenario(text);
  EXPECT_TRUE(s.ok()) << s.status().ToString() << "\n" << text;
  return std::move(s).value();
}

/// Structural invariants every built (or decoded) RelianceGraph upholds.
void CheckInvariants(const RelianceGraph& g) {
  const size_t n = g.num_rules();
  ASSERT_EQ(g.nodes.size(), n);
  ASSERT_EQ(g.out.size(), n);
  ASSERT_EQ(g.scc_of.size(), n);
  ASSERT_EQ(g.stratum_level.size(), g.strata.size());

  // Adjacency: sorted, duplicate-free, in range; st nodes never targets
  // (nothing feeds an st-tgd — its body reads the immutable source).
  for (size_t u = 0; u < n; ++u) {
    for (size_t k = 0; k < g.out[u].size(); ++k) {
      const uint32_t v = g.out[u][k];
      ASSERT_LT(v, n);
      EXPECT_GE(v, g.num_st_tgds) << "edge into an st-tgd node";
      if (k > 0) {
        EXPECT_LT(g.out[u][k - 1], v) << "adjacency not sorted";
      }
    }
  }

  // Dead rules are fully disconnected: they can neither fire nor be fed.
  for (size_t u = 0; u < n; ++u) {
    if (!g.nodes[u].dead) continue;
    EXPECT_TRUE(g.out[u].empty());
    for (size_t w = 0; w < n; ++w) {
      for (uint32_t v : g.out[w]) EXPECT_NE(v, u);
    }
  }

  // Node-order and side-split invariants.
  for (size_t i = 0; i < g.num_st_tgds; ++i) {
    EXPECT_TRUE(g.nodes[i].body_symbols.empty());
    EXPECT_FALSE(g.nodes[i].dead);
  }
  for (size_t j = 0; j < g.num_egds; ++j) {
    EXPECT_TRUE(g.nodes[g.EgdNode(j)].definite_head_symbols.empty());
  }

  // Strata partition the nodes, each sorted ascending, scc_of consistent.
  std::vector<int> seen(n, 0);
  for (uint32_t s = 0; s < g.strata.size(); ++s) {
    ASSERT_FALSE(g.strata[s].empty());
    for (size_t k = 0; k < g.strata[s].size(); ++k) {
      const uint32_t rule = g.strata[s][k];
      ASSERT_LT(rule, n);
      ++seen[rule];
      EXPECT_EQ(g.scc_of[rule], s);
      if (k > 0) {
        EXPECT_LT(g.strata[s][k - 1], rule);
      }
    }
  }
  for (size_t u = 0; u < n; ++u) EXPECT_EQ(seen[u], 1) << "node " << u;

  // Every cross-stratum edge respects the topological order AND strictly
  // increases the producer-chain level — the property the level-grouped
  // parallel fan-out relies on (same-level strata are independent).
  for (size_t u = 0; u < n; ++u) {
    for (uint32_t v : g.out[u]) {
      if (g.scc_of[u] == g.scc_of[v]) continue;
      EXPECT_LT(g.scc_of[u], g.scc_of[v])
          << "edge " << u << "->" << v << " against stratum order";
      EXPECT_LT(g.stratum_level[g.scc_of[u]], g.stratum_level[g.scc_of[v]]);
    }
  }
}

// --- CollectNreSymbols ------------------------------------------------------

TEST(CollectNreSymbolsTest, WalksEveryOperator) {
  // (3 . 5-) | ([7] . 2*)  plus a stray epsilon leaf.
  NrePtr nre = Nre::Union(
      Nre::Concat(Nre::Symbol(3), Nre::Inverse(5)),
      Nre::Concat(Nre::Nest(Nre::Symbol(7)),
                  Nre::Star(Nre::Concat(Nre::Symbol(2), Nre::Epsilon()))));
  std::vector<SymbolId> symbols;
  CollectNreSymbols(*nre, &symbols);
  std::sort(symbols.begin(), symbols.end());
  EXPECT_EQ(symbols, (std::vector<SymbolId>{2, 3, 5, 7}));

  std::vector<SymbolId> none;
  CollectNreSymbols(*Nre::Star(Nre::Epsilon()), &none);
  EXPECT_TRUE(none.empty());
}

// --- flags ------------------------------------------------------------------

TEST(RelianceBuildTest, DeadNullableAndLiveFlags) {
  // h is derived as a definite label; d only through a non-definite head
  // (h . d*), so no definite d edge can ever exist.
  Scenario s = Parse(R"(
    relation R/2
    fact R(c1, c2)
    stgd R(x, y) -> (x, h, y)
    stgd R(x, y) -> (x, h . d*, y)
    egd (x1, h, y), (x2, h, y) -> x1 = x2
    egd (x1, d, y), (x2, d, y) -> x1 = x2
    egd (x1, h*, y), (x2, d, y) -> x1 = x2
  )");
  RelianceGraph g = RelianceGraph::Build(s.setting);
  ASSERT_EQ(g.num_st_tgds, 2u);
  ASSERT_EQ(g.num_egds, 3u);
  CheckInvariants(g);

  const SymbolId h = *s.alphabet->Find("h");
  const SymbolId d = *s.alphabet->Find("d");

  // St-tgd 0 derives definite h; st-tgd 1 derives nothing definite.
  EXPECT_EQ(g.nodes[0].definite_head_symbols, std::vector<SymbolId>{h});
  EXPECT_TRUE(g.nodes[1].definite_head_symbols.empty());

  // Egd 0 reads h: live. Egd 1 reads only d (never definite): dead. Egd 2
  // has a nullable atom (h*): live despite its dead d atom? No — its d
  // atom is non-nullable and unsatisfiable, so the rule is dead; but the
  // h* atom additionally marks it nullable.
  EXPECT_FALSE(g.EgdDead(0));
  EXPECT_FALSE(g.nodes[g.EgdNode(0)].nullable_body_atom);
  EXPECT_TRUE(g.EgdDead(1));
  EXPECT_TRUE(g.EgdDead(2));
  EXPECT_TRUE(g.nodes[g.EgdNode(2)].nullable_body_atom);
  EXPECT_EQ(g.nodes[g.EgdNode(2)].body_symbols,
            (std::vector<SymbolId>{std::min(h, d), std::max(h, d)}));

  // St-tgd 0 feeds egd 0 (shared h); neither st feeds the dead egds.
  EXPECT_EQ(g.out[0], std::vector<uint32_t>{
                          static_cast<uint32_t>(g.EgdNode(0))});
  EXPECT_TRUE(g.out[1].empty());
  // The live egd relies on itself (merges can re-enable it).
  EXPECT_EQ(g.out[g.EgdNode(0)],
            std::vector<uint32_t>{static_cast<uint32_t>(g.EgdNode(0))});
}

TEST(RelianceBuildTest, NullableAtomAloneKeepsAnEgdLiveAndFed) {
  // The egd's only atom is epsilon-nullable over an underived label: the
  // rule stays live (fresh nodes can seat an epsilon match) and every
  // st-tgd feeds it even with no label overlap.
  Scenario s = Parse(R"(
    relation R/2
    fact R(c1, c2)
    stgd R(x, y) -> (x, h, y)
    egd (x1, g*, x2) -> x1 = x2
  )");
  RelianceGraph g = RelianceGraph::Build(s.setting);
  CheckInvariants(g);
  ASSERT_EQ(g.num_egds, 1u);
  EXPECT_FALSE(g.EgdDead(0));
  EXPECT_TRUE(g.nodes[g.EgdNode(0)].nullable_body_atom);
  EXPECT_EQ(g.out[0],
            std::vector<uint32_t>{static_cast<uint32_t>(g.EgdNode(0))});
}

// --- EgdReadsAny ------------------------------------------------------------

TEST(RelianceGraphTest, EgdReadsAnyIsSortedIntersection) {
  RelianceGraph g;
  g.num_st_tgds = 0;
  g.num_egds = 1;
  g.nodes.resize(1);
  g.nodes[0].body_symbols = {2, 5, 9};
  g.out.resize(1);
  EXPECT_TRUE(g.EgdReadsAny(0, {5}));
  EXPECT_TRUE(g.EgdReadsAny(0, {1, 3, 9}));
  EXPECT_TRUE(g.EgdReadsAny(0, {2, 5, 9}));
  EXPECT_FALSE(g.EgdReadsAny(0, {1, 3, 4, 6, 8, 10}));
  EXPECT_FALSE(g.EgdReadsAny(0, {}));
}

// --- strata on a layered mapping --------------------------------------------

TEST(RelianceStrataTest, CyclicEgdsShareOneStratumBehindTheirFeeders) {
  // Two egds over the same derived label rely on each other (and
  // themselves): one SCC, placed after the st stratum that feeds it.
  Scenario s = Parse(R"(
    relation R/2
    fact R(c1, c2)
    stgd R(x, y) -> (x, h, y)
    egd (x1, h, y), (x2, h, y) -> x1 = x2
    egd (x, h, y1), (x, h, y2) -> y1 = y2
  )");
  RelianceGraph g = RelianceGraph::Build(s.setting);
  CheckInvariants(g);
  ASSERT_EQ(g.strata.size(), 2u);
  EXPECT_EQ(g.strata[0], std::vector<uint32_t>{0});
  EXPECT_EQ(g.strata[1], (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(g.stratum_level[0], 0u);
  EXPECT_EQ(g.stratum_level[1], 1u);
}

TEST(RelianceStrataTest, DisjointLabelEgdsCoupleStaticallyButSplitAtRuntime) {
  // Two disjoint label families. The *static* analysis still couples the
  // two egds into one SCC — a merge can relocate definite edges of any
  // derivable label, so the producer side of an egd -> egd reliance is
  // label-blind by design (see reliance.h). The *runtime* delta test is
  // what separates them: each egd reads none of the other's labels, so a
  // round whose delta is only h-labeled skips the g egd and vice versa.
  Scenario s = Parse(R"(
    relation R/2
    relation S/2
    fact R(c1, c2)
    fact S(c3, c4)
    stgd R(x, y) -> (x, h, y)
    stgd S(x, y) -> (x, g, y)
    egd (x1, h, y), (x2, h, y) -> x1 = x2
    egd (x1, g, y), (x2, g, y) -> x1 = x2
  )");
  RelianceGraph g = RelianceGraph::Build(s.setting);
  CheckInvariants(g);
  ASSERT_EQ(g.num_egds, 2u);
  EXPECT_EQ(g.scc_of[g.EgdNode(0)], g.scc_of[g.EgdNode(1)]);
  EXPECT_FALSE(g.EgdReadsAny(0, g.nodes[g.EgdNode(1)].body_symbols));
  EXPECT_FALSE(g.EgdReadsAny(1, g.nodes[g.EgdNode(0)].body_symbols));
  // Each st-tgd statically feeds only the egd of its own label family.
  EXPECT_EQ(g.out[0],
            std::vector<uint32_t>{static_cast<uint32_t>(g.EgdNode(0))});
  EXPECT_EQ(g.out[1],
            std::vector<uint32_t>{static_cast<uint32_t>(g.EgdNode(1))});
}

// --- determinism and the BuildCount hook ------------------------------------

TEST(RelianceGraphTest, BuildIsDeterministicAndCounted) {
  Scenario s = Parse(R"(
    relation R/2
    relation S/2
    fact R(c1, c2)
    fact S(c2, c3)
    stgd R(x, y) -> (x, h, y), (y, g, x)
    stgd S(x, y), R(y, z) -> (x, g . h, z)
    egd (x1, h, y), (x2, g, y) -> x1 = x2
    egd (x1, q, y), (x2, q, y) -> x1 = x2
  )");
  const uint64_t before = RelianceGraph::BuildCount();
  RelianceGraph a = RelianceGraph::Build(s.setting);
  RelianceGraph b = RelianceGraph::Build(s.setting);
  EXPECT_EQ(RelianceGraph::BuildCount(), before + 2);
  CheckInvariants(a);

  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].body_symbols, b.nodes[i].body_symbols);
    EXPECT_EQ(a.nodes[i].definite_head_symbols,
              b.nodes[i].definite_head_symbols);
    EXPECT_EQ(a.nodes[i].nullable_body_atom, b.nodes[i].nullable_body_atom);
    EXPECT_EQ(a.nodes[i].dead, b.nodes[i].dead);
  }
  EXPECT_EQ(a.out, b.out);
  EXPECT_EQ(a.scc_of, b.scc_of);
  EXPECT_EQ(a.strata, b.strata);
  EXPECT_EQ(a.stratum_level, b.stratum_level);
}

// --- randomized structural battery ------------------------------------------

/// Random mapping text: a few relations, copy/complex st-tgds, egds over
/// random labels (some underived -> dead rules arise naturally).
std::string RandomMappingText(uint64_t seed) {
  Rng rng(seed);
  const char* labels[] = {"a", "b", "c", "d", "e"};
  std::string text = "relation R/2\nrelation S/2\nfact R(c1, c2)\n"
                     "fact S(c2, c3)\n";
  const int num_st = static_cast<int>(rng.UniformInt(1, 4));
  for (int i = 0; i < num_st; ++i) {
    const char* rel = rng.Bernoulli(0.5) ? "R" : "S";
    std::string head_label = labels[rng.UniformInt(0, 4)];
    if (rng.Bernoulli(0.3)) {
      head_label += std::string(" . ") + labels[rng.UniformInt(0, 4)] + "*";
    }
    text += std::string("stgd ") + rel + "(x, y) -> (x, " + head_label +
            ", y)\n";
  }
  const int num_egds = static_cast<int>(rng.UniformInt(1, 4));
  for (int j = 0; j < num_egds; ++j) {
    std::string l1 = labels[rng.UniformInt(0, 4)];
    std::string l2 = labels[rng.UniformInt(0, 4)];
    if (rng.Bernoulli(0.25)) l1 += "*";
    text += "egd (x1, " + l1 + ", y), (x2, " + l2 + ", y) -> x1 = x2\n";
  }
  return text;
}

TEST(RelianceGraphTest, RandomMappingsUpholdEveryInvariant) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    Scenario s = Parse(RandomMappingText(seed));
    RelianceGraph g = RelianceGraph::Build(s.setting);
    ASSERT_NO_FATAL_FAILURE(CheckInvariants(g)) << "seed " << seed;
    ASSERT_EQ(g.num_st_tgds, s.setting.st_tgds.size());
    ASSERT_EQ(g.num_egds, s.setting.egds.size());
  }
}

}  // namespace
}  // namespace gdx
