// Tests for the Theorem 4.1 reduction: the Ω_ρ construction, the ρ0
// example (Figure 4), both directions of the proof (valuation ⇄ solution),
// and the randomized equivalence  ∃solution(Ω_ρ, I_ρ) ⇔ ρ ∈ SAT.
#include <gtest/gtest.h>

#include "exchange/solution_check.h"
#include "reduction/sat_encoding.h"
#include "sat/dpll.h"
#include "sat/gen.h"
#include "solver/existence.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

TEST(ReductionTest, Rho0SettingShape) {
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kEgd);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  // Σρ0 = {a, t1..t4, f1..f4} = 9 symbols.
  EXPECT_EQ(enc->alphabet->size(), 9u);
  // One s-t tgd with 1 + n head atoms.
  ASSERT_EQ(enc->setting.st_tgds.size(), 1u);
  EXPECT_EQ(enc->setting.st_tgds[0].head.size(), 5u);
  // n type-(*) + k type-(**) egds.
  EXPECT_EQ(enc->setting.egds.size(), 4u + 2u);
  // I_ρ = {R1(c1), R2(c2)}.
  EXPECT_EQ(enc->instance->TotalFacts(), 2u);
}

TEST(ReductionTest, Figure4ValuationGraphIsSolution) {
  // v(x1)=v(x2)=true, v(x3)=v(x4)=false makes ρ0 true (Figure 4).
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kEgd);
  ASSERT_TRUE(enc.ok());
  std::vector<bool> v(5, false);
  v[1] = true;
  v[2] = true;
  Graph g = BuildValuationGraph(*enc, v);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 5u);  // a edge + 4 self-loops
  EXPECT_TRUE(
      IsSolution(enc->setting, *enc->instance, g, eval, universe));
}

TEST(ReductionTest, FalsifyingValuationGraphIsNotSolution) {
  // v(x2)=true, rest false falsifies clause 1 -> type (**) egd fires and
  // equates c1 = c2: not a solution.
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kEgd);
  ASSERT_TRUE(enc.ok());
  std::vector<bool> v(5, false);
  v[2] = true;
  Graph g = BuildValuationGraph(*enc, v);
  SolutionCheckReport report =
      CheckSolution(enc->setting, *enc->instance, g, eval, universe);
  EXPECT_TRUE(report.st_tgds_ok);
  EXPECT_FALSE(report.egds_ok);
}

TEST(ReductionTest, BothLoopsViolateTypeStarEgd) {
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kEgd);
  ASSERT_TRUE(enc.ok());
  std::vector<bool> v(5, true);  // all true satisfies ρ0
  Graph g = BuildValuationGraph(*enc, v);
  ASSERT_TRUE(IsSolution(enc->setting, *enc->instance, g, eval, universe));
  // Adding the complementary f1 loop triggers (x, t1.f1.a, y) -> x = y.
  g.AddEdge(enc->c1, enc->f_syms[0], enc->c1);
  EXPECT_FALSE(IsSolution(enc->setting, *enc->instance, g, eval, universe));
}

TEST(ReductionTest, DecodeRoundTripsValuation) {
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kEgd);
  ASSERT_TRUE(enc.ok());
  std::vector<bool> v(5, false);
  v[1] = true;
  v[3] = true;
  Graph g = BuildValuationGraph(*enc, v);
  std::optional<std::vector<bool>> decoded = DecodeGraphToValuation(g, *enc);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
  // A graph with no loops decodes to nothing.
  Graph bare;
  bare.AddEdge(enc->c1, enc->a, enc->c2);
  EXPECT_FALSE(DecodeGraphToValuation(bare, *enc).has_value());
}

TEST(ReductionTest, SameAsModeEmitsSameAsConstraints) {
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kSameAs);
  ASSERT_TRUE(enc.ok());
  EXPECT_TRUE(enc->setting.egds.empty());
  EXPECT_EQ(enc->setting.sameas.size(), 6u);
  EXPECT_TRUE(enc->setting.SameAsOnly());
}

TEST(ReductionTest, QueriesHaveThePaperShape) {
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kEgd);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(Corollary42Query(*enc)->ToString(*enc->alphabet), "a . a");
  EXPECT_EQ(Proposition43Query(*enc)->ToString(*enc->alphabet), "sameAs");
}

TEST(ReductionTest, RejectsDegenerateFormulas) {
  Universe universe;
  CnfFormula empty_vars;
  EXPECT_FALSE(
      EncodeSatToSetting(empty_vars, universe, ReductionMode::kEgd).ok());
  CnfFormula empty_clause(2);
  empty_clause.AddClause({});
  EXPECT_FALSE(
      EncodeSatToSetting(empty_clause, universe, ReductionMode::kEgd).ok());
}

// --- The headline equivalence, randomized --------------------------------
//   ρ ∈ 3SAT  ⇔  a solution for I_ρ under Ω_ρ exists.
// Checked with the SAT-backed (exact) and bounded (complete-within-budget)
// existence strategies against DPLL ground truth.

class ReductionEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionEquivalence, ExistenceMatchesSatisfiability) {
  Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    int n = 3 + static_cast<int>(rng.NextU64() % 3);  // 3..5 vars
    int m = 2 + static_cast<int>(rng.NextU64() % (2 * n));
    CnfFormula rho = RandomKSat(n, m, 3, rng);
    bool sat = DpllSolver().Solve(rho).satisfiable;

    Universe universe;
    Result<SatEncodedExchange> enc =
        EncodeSatToSetting(rho, universe, ReductionMode::kEgd);
    ASSERT_TRUE(enc.ok());

    ExistenceOptions sat_opts;
    sat_opts.strategy = ExistenceStrategy::kSatBacked;
    ExistenceReport sat_report = ExistenceSolver(&eval, sat_opts)
                                     .Decide(enc->setting, *enc->instance,
                                             universe);
    ASSERT_NE(sat_report.verdict, ExistenceVerdict::kUnknown);
    EXPECT_EQ(sat_report.verdict == ExistenceVerdict::kYes, sat)
        << rho.ToDimacs();
    if (sat_report.verdict == ExistenceVerdict::kYes) {
      ASSERT_TRUE(sat_report.witness.has_value());
      std::optional<std::vector<bool>> v =
          DecodeGraphToValuation(*sat_report.witness, *enc);
      ASSERT_TRUE(v.has_value());
      EXPECT_TRUE(rho.Eval(*v));
    }

    ExistenceOptions bounded_opts;
    bounded_opts.strategy = ExistenceStrategy::kBoundedSearch;
    bounded_opts.instantiation.max_edges_per_witness = 1;
    bounded_opts.instantiation.max_witnesses_per_edge = 2;
    ExistenceReport bounded_report =
        ExistenceSolver(&eval, bounded_opts)
            .Decide(enc->setting, *enc->instance, universe);
    ASSERT_NE(bounded_report.verdict, ExistenceVerdict::kUnknown)
        << bounded_report.note;
    EXPECT_EQ(bounded_report.verdict == ExistenceVerdict::kYes, sat)
        << rho.ToDimacs();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionEquivalence,
                         ::testing::Range<uint64_t>(200, 210));

}  // namespace
}  // namespace gdx
