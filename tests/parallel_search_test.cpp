// Tests for the ParallelSearch scheduler (ISSUE 2 tentpole): deterministic
// first-hit semantics, the rank-ceiling early exit, contiguous-prefix
// merging in ScanAll, worker wrapping, and external cancellation — with
// and without a backing pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "common/task_fanout.h"
#include "engine/parallel_search.h"

namespace gdx {
namespace {

ParallelSearchOptions PooledOptions(ThreadPool* pool, size_t workers) {
  ParallelSearchOptions options;
  options.pool = pool;
  options.max_workers = workers;
  options.chunk_size = 8;
  options.min_parallel_ranks = 1;
  return options;
}

TEST(ParallelSearchTest, FindFirstSequentialReturnsMinimalHit) {
  ParallelSearch search;  // no pool: caller-thread scan
  std::vector<size_t> visited;
  size_t result = search.FindFirst(100, [&](size_t rank, size_t worker) {
    EXPECT_EQ(worker, 0u);
    visited.push_back(rank);
    return rank == 37 || rank == 73;
  });
  EXPECT_EQ(result, 37u);
  // Sequential scan must stop at the hit: 0..37 inclusive.
  ASSERT_EQ(visited.size(), 38u);
  EXPECT_EQ(visited.front(), 0u);
  EXPECT_EQ(visited.back(), 37u);
}

TEST(ParallelSearchTest, FindFirstNoHitReturnsNotFound) {
  ParallelSearch search;
  std::atomic<size_t> count{0};
  size_t result = search.FindFirst(64, [&](size_t, size_t) {
    count.fetch_add(1);
    return false;
  });
  EXPECT_EQ(result, ParallelSearch::kNotFound);
  EXPECT_EQ(count.load(), 64u);
  EXPECT_EQ(search.FindFirst(0, [](size_t, size_t) { return true; }),
            ParallelSearch::kNotFound);
}

TEST(ParallelSearchTest, FindFirstParallelIsMinimalAndThreadInvariant) {
  // Hits at 11, 200, 755: every worker count must report 11, even though a
  // worker on a later chunk may find 200/755 first.
  ThreadPool pool(4);
  for (size_t workers : {1u, 2u, 5u}) {
    ParallelSearch search(PooledOptions(&pool, workers));
    std::atomic<size_t> visits{0};
    size_t result = search.FindFirst(1000, [&](size_t rank, size_t) {
      visits.fetch_add(1);
      return rank == 11 || rank == 200 || rank == 755;
    });
    EXPECT_EQ(result, 11u) << workers << " workers";
    EXPECT_LE(visits.load(), 1000u);
  }
}

TEST(ParallelSearchTest, FindFirstVisitsEveryRankAtMostOnce) {
  ThreadPool pool(3);
  ParallelSearch search(PooledOptions(&pool, 4));
  std::mutex mutex;
  std::multiset<size_t> visited;
  size_t result = search.FindFirst(500, [&](size_t rank, size_t worker) {
    EXPECT_LT(worker, 4u);
    std::lock_guard<std::mutex> lock(mutex);
    visited.insert(rank);
    return false;
  });
  EXPECT_EQ(result, ParallelSearch::kNotFound);
  ASSERT_EQ(visited.size(), 500u);  // exhaustive ...
  std::set<size_t> unique(visited.begin(), visited.end());
  EXPECT_EQ(unique.size(), 500u);  // ... and exactly once each
}

TEST(ParallelSearchTest, ScanAllCoversEveryRankAndReportsMonotonePrefix) {
  ThreadPool pool(4);
  ParallelSearch search(PooledOptions(&pool, 4));
  std::mutex mutex;
  std::set<size_t> visited;
  std::vector<size_t> prefixes;
  search.ScanAll(
      333,
      [&](size_t rank, size_t) {
        std::lock_guard<std::mutex> lock(mutex);
        visited.insert(rank);
      },
      [&](size_t prefix) -> size_t {
        prefixes.push_back(prefix);  // serialized by contract
        return ParallelSearch::kNotFound;
      });
  EXPECT_EQ(visited.size(), 333u);
  ASSERT_FALSE(prefixes.empty());
  EXPECT_EQ(prefixes.back(), 333u);
  for (size_t i = 1; i < prefixes.size(); ++i) {
    EXPECT_LT(prefixes[i - 1], prefixes[i]);
  }
  // Prefix invariant: every rank below a reported prefix had been visited
  // when it was reported — implied by the final state being complete and
  // by serialization; spot-check the boundary.
  EXPECT_TRUE(visited.count(0));
  EXPECT_TRUE(visited.count(332));
}

TEST(ParallelSearchTest, ScanAllCeilingAbandonsHigherRanks) {
  // on_prefix caps the scan at 50 once the prefix reaches it; ranks >= 50
  // in not-yet-started chunks must never be visited.
  ParallelSearch search;  // sequential keeps the assertion exact
  std::vector<size_t> visited;
  search.ScanAll(
      1000,
      [&](size_t rank, size_t) { visited.push_back(rank); },
      [&](size_t prefix) -> size_t {
        return prefix >= 50 ? 50 : ParallelSearch::kNotFound;
      });
  ASSERT_FALSE(visited.empty());
  for (size_t rank : visited) EXPECT_LT(rank, 1000u);
  // Everything below the ceiling was visited...
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_TRUE(std::find(visited.begin(), visited.end(), r) !=
                visited.end())
        << r;
  }
  // ...and the scan stopped far short of the full space.
  EXPECT_LT(visited.size(), 200u);
}

TEST(ParallelSearchTest, TightLeadWindowStillCoversEveryRank) {
  // max_lead_chunks = 1 throttles workers to the merge frontier; the scan
  // must neither deadlock nor drop ranks.
  ThreadPool pool(4);
  ParallelSearchOptions options = PooledOptions(&pool, 4);
  options.max_lead_chunks = 1;
  ParallelSearch search(options);
  std::mutex mutex;
  std::set<size_t> visited;
  std::vector<size_t> prefixes;
  search.ScanAll(
      257,
      [&](size_t rank, size_t) {
        std::lock_guard<std::mutex> lock(mutex);
        visited.insert(rank);
      },
      [&](size_t prefix) -> size_t {
        prefixes.push_back(prefix);
        return ParallelSearch::kNotFound;
      });
  EXPECT_EQ(visited.size(), 257u);
  ASSERT_FALSE(prefixes.empty());
  EXPECT_EQ(prefixes.back(), 257u);
}

TEST(ParallelSearchTest, NestedFanOutInsideScanAllCannotLivelock) {
  // Regression (ISSUE 10): a visit on the *caller* thread fanning out over
  // the same pool used to Submit-and-wait. With one pool worker parked on
  // the lead window until the caller's chunk completes, neither thread
  // could ever progress. Participants must run nested fan-outs inline
  // (pool workers via ThreadPool::Current(), the caller slot via
  // ThreadPool::CooperativeScope).
  ThreadPool pool(1);
  ParallelSearchOptions options = PooledOptions(&pool, 2);
  options.max_lead_chunks = 1;
  ParallelSearch search(options);
  std::atomic<size_t> nested{0};
  search.ScanAll(
      257,
      [&](size_t, size_t) {
        TaskFanoutOptions fan;
        fan.pool = &pool;
        fan.max_workers = 2;
        FanOutTasks(fan, 2, [&](size_t, size_t) {
          nested.fetch_add(1, std::memory_order_relaxed);
        });
      },
      [](size_t) -> size_t { return ParallelSearch::kNotFound; });
  EXPECT_EQ(nested.load(), 2u * 257u);
}

TEST(ParallelSearchTest, ZeroRanksStillReportsFinalPrefix) {
  ParallelSearch search;
  std::vector<size_t> prefixes;
  search.ScanAll(
      0, [](size_t, size_t) {},
      [&](size_t prefix) -> size_t {
        prefixes.push_back(prefix);
        return ParallelSearch::kNotFound;
      });
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0], 0u);
}

TEST(ParallelSearchTest, WrapWorkerWrapsEveryWorkerExactlyOnce) {
  ThreadPool pool(3);
  ParallelSearchOptions options = PooledOptions(&pool, 4);
  std::mutex mutex;
  std::set<size_t> wrapped;
  options.wrap_worker = [&](size_t worker,
                            const std::function<void()>& body) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      EXPECT_TRUE(wrapped.insert(worker).second) << "wrapped twice";
    }
    body();
  };
  ParallelSearch search(options);
  std::atomic<size_t> visits{0};
  search.FindFirst(400, [&](size_t, size_t) {
    visits.fetch_add(1);
    return false;
  });
  EXPECT_EQ(visits.load(), 400u);
  EXPECT_TRUE(wrapped.count(0)) << "caller thread participates as worker 0";
  EXPECT_LE(wrapped.size(), 4u);
}

TEST(ParallelSearchTest, CancellationAbortsEarly) {
  CancellationToken token;
  ParallelSearchOptions options;
  options.cancel = &token;
  ParallelSearch search(options);
  std::atomic<size_t> visits{0};
  size_t result = search.FindFirst(1u << 20, [&](size_t, size_t) {
    if (visits.fetch_add(1) == 100) token.RequestStop();
    return false;
  });
  EXPECT_EQ(result, ParallelSearch::kNotFound);
  EXPECT_LT(visits.load(), (1u << 20))
      << "cancellation must cut the scan short";
  EXPECT_TRUE(token.stop_requested());
}

TEST(ParallelSearchTest, SmallSpacesStayOnCallerThread) {
  ThreadPool pool(4);
  ParallelSearchOptions options = PooledOptions(&pool, 4);
  options.min_parallel_ranks = 128;
  ParallelSearch search(options);
  EXPECT_EQ(search.NumWorkers(64), 1u);
  EXPECT_GT(search.NumWorkers(4096), 1u);
  std::set<size_t> workers;
  search.FindFirst(64, [&](size_t, size_t worker) {
    workers.insert(worker);  // single worker: no races on this set
    return false;
  });
  EXPECT_EQ(workers.size(), 1u);
  EXPECT_TRUE(workers.count(0));
}

}  // namespace
}  // namespace gdx
