// ISSUE 7 cache-sharding coverage: the EngineCache's memos are
// partitioned into num_shards lock shards by key hash. These tests pin
// the observable contracts of that refactor — concurrent mixed traffic
// accounts exactly (hits + misses == lookups, across every shard
// count), global caps bound the summed shard sizes, per-solve counter
// attribution still sums exactly under sharding, and solve outputs are
// byte-identical whatever the shard count. The whole file runs under
// the CI TSan leg: the per-shard mutexes must make every public method
// data-race-free.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "engine/cache.h"
#include "engine/exchange_engine.h"
#include "graph/nre.h"
#include "workload/flights.h"

namespace gdx {
namespace {

EngineCacheOptions ShardedOptions(size_t shards) {
  EngineCacheOptions options;
  options.num_shards = shards;
  return options;
}

/// Deterministic key set that provably spreads over shards: distinct
/// strings hash to distinct FNV values, and with enough keys every
/// shard of an 8-way cache receives some.
std::vector<std::string> MakeKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("key-" + std::to_string(i * 2654435761u));
  }
  return keys;
}

TEST(CacheShardTest, ShardCountRoundsToPowerOfTwoAndClamps) {
  EXPECT_EQ(EngineCache(ShardedOptions(0)).num_shards(), 1u);
  EXPECT_EQ(EngineCache(ShardedOptions(1)).num_shards(), 1u);
  EXPECT_EQ(EngineCache(ShardedOptions(3)).num_shards(), 4u);
  EXPECT_EQ(EngineCache(ShardedOptions(8)).num_shards(), 8u);
  EXPECT_EQ(EngineCache(ShardedOptions(300)).num_shards(), 256u);
}

/// Concurrent mixed hit/miss traffic: every lookup counts exactly once
/// somewhere — summed hits + misses across shards equals the number of
/// lookups issued, and live sizes equal the distinct key count. The
/// same invariant holds for the single-shard cache running the same
/// schedule, so sharding changes contention, not accounting.
TEST(CacheShardTest, ConcurrentTrafficTotalsMatchSingleShard) {
  constexpr size_t kThreads = 4;
  constexpr size_t kKeys = 64;
  constexpr size_t kRounds = 8;
  const std::vector<std::string> keys = MakeKeys(kKeys);

  auto run = [&](EngineCache& cache) {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &keys, t] {
        for (size_t round = 0; round < kRounds; ++round) {
          for (size_t i = t % 2; i < keys.size(); i += 2) {  // overlapping
            BinaryRelation relation;
            if (!cache.LookupNre(keys[i], &relation)) {
              cache.StoreNre(keys[i], BinaryRelation{});
            }
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  };

  for (size_t shards : {size_t{1}, size_t{8}}) {
    EngineCache cache(ShardedOptions(shards));
    run(cache);
    CacheStats stats = cache.stats();
    // Threads t=0..3 stride by 2, so keys are covered twice per round.
    const uint64_t lookups = kThreads * kRounds * (kKeys / 2);
    EXPECT_EQ(stats.nre_hits + stats.nre_misses, lookups)
        << shards << " shard(s)";
    EXPECT_EQ(cache.sizes().nre_entries, kKeys) << shards << " shard(s)";
    EXPECT_EQ(stats.nre_evictions, 0u);
  }
}

/// Global caps bound the *sum* of shard sizes: quotas distribute
/// cap/S + remainder, so overfilling N >> cap distinct keys leaves at
/// most cap live entries and counts every other insert as an eviction.
TEST(CacheShardTest, GlobalCapBoundsSummedShardSizes) {
  for (size_t cap : {size_t{2}, size_t{7}, size_t{16}}) {
    EngineCacheOptions options = ShardedOptions(8);
    options.max_nre_entries = cap;
    EngineCache cache(options);
    const std::vector<std::string> keys = MakeKeys(64);
    for (const std::string& key : keys) {
      cache.StoreNre(key, BinaryRelation{});
    }
    CacheSizes sizes = cache.sizes();
    EXPECT_LE(sizes.nre_entries, cap) << "cap " << cap;
    EXPECT_EQ(cache.stats().nre_evictions, keys.size() - sizes.nre_entries)
        << "cap " << cap;
  }
}

/// GetOrCompile shares one immutable plan per key even when many threads
/// race the first compilation, at any shard count.
TEST(CacheShardTest, ConcurrentCompileSharesPlans) {
  for (size_t shards : {size_t{1}, size_t{8}}) {
    EngineCache cache(ShardedOptions(shards));
    Alphabet alphabet;
    std::vector<NrePtr> nres;
    for (int i = 0; i < 16; ++i) {
      nres.push_back(Nre::Star(
          Nre::Symbol(alphabet.Intern("s" + std::to_string(i)))));
    }
    std::vector<std::thread> threads;
    for (size_t t = 0; t < 4; ++t) {
      threads.emplace_back([&cache, &nres] {
        for (int round = 0; round < 4; ++round) {
          for (const NrePtr& nre : nres) {
            EXPECT_NE(cache.GetOrCompile(nre), nullptr);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(cache.sizes().compiled_entries, nres.size());
    CacheStats stats = cache.stats();
    EXPECT_EQ(stats.compile_hits + stats.compile_misses,
              4u * 4u * nres.size());
    // Racing first compiles may each count a miss, but the plan count
    // stays one per key and hits dominate after warmup.
    EXPECT_GT(stats.compile_hits, stats.compile_misses);
  }
}

/// Per-solve attribution is routed through thread-local sinks and must
/// sum exactly to the global counter deltas regardless of shard count —
/// the contract concurrent serve sessions rely on for their telemetry.
TEST(CacheShardTest, PerSolveAttributionSumsExactlyAcrossShards) {
  EngineCache cache(ShardedOptions(8));
  const std::vector<std::string> keys = MakeKeys(32);
  constexpr size_t kThreads = 4;
  std::vector<PerSolveCacheStats> sinks(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &keys, &sinks, t] {
      ScopedCacheAttribution scope(&sinks[t]);
      for (size_t round = 0; round < 4; ++round) {
        for (const std::string& key : keys) {
          BinaryRelation relation;
          if (!cache.LookupNre(key, &relation)) {
            cache.StoreNre(key, BinaryRelation{});
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  CacheStats total;
  for (const PerSolveCacheStats& sink : sinks) {
    total.Accumulate(sink.Snapshot());
  }
  CacheStats global = cache.stats();
  EXPECT_EQ(total.nre_hits, global.nre_hits);
  EXPECT_EQ(total.nre_misses, global.nre_misses);
  EXPECT_EQ(total.nre_hits + total.nre_misses,
            kThreads * 4u * keys.size());
}

/// The cache is invisible to results at any shard count: engine outputs
/// are byte-identical between 1-shard and 8-shard configurations.
TEST(CacheShardTest, SolveOutputsByteIdenticalAcrossShardCounts) {
  auto solve_all = [](size_t shards) {
    EngineOptions options;
    options.instantiation.max_witnesses_per_edge = 3;
    options.max_solutions = 12;
    options.cache.num_shards = shards;
    ExchangeEngine engine(options);
    std::vector<std::string> out;
    std::vector<Scenario> scenarios;
    scenarios.push_back(MakeExample22Scenario(FlightConstraintMode::kEgd));
    scenarios.push_back(
        MakeExample22Scenario(FlightConstraintMode::kSameAs));
    scenarios.push_back(MakeExample52Scenario());
    for (Scenario& s : scenarios) {
      Result<ExchangeOutcome> outcome = engine.Solve(s);
      out.push_back(outcome.ok()
                        ? outcome->ToString(*s.universe, *s.alphabet)
                        : outcome.status().ToString());
    }
    return out;
  };
  EXPECT_EQ(solve_all(1), solve_all(8));
}

}  // namespace
}  // namespace gdx
