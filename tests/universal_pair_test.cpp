// Tests for the §5 universal pair (pattern, constraints), the greedy core
// minimizer, and the scenario file parser.
#include <gtest/gtest.h>

#include "exchange/universal_pair.h"
#include "solver/core_minimizer.h"
#include "solver/existence.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"
#include "workload/scenario_parser.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

TEST(UniversalPairTest, ClassifiesFigure1AndFigure7) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Result<UniversalPair> pair =
      BuildUniversalPair(s.setting, *s.instance, *s.universe, eval);
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();

  Graph g1 = BuildFigure1G1(s);
  Graph g2 = BuildFigure1G2(s);
  Graph fig7 = BuildFigure7(s);
  EXPECT_TRUE(pair->Represents(g1, eval));
  EXPECT_TRUE(pair->Represents(g2, eval));
  // Figure 7: homomorphism exists but egds are violated — the pair rejects
  // what a bare pattern cannot (Proposition 5.3).
  UniversalPair::Verdict verdict = pair->Classify(fig7, eval);
  EXPECT_TRUE(verdict.homomorphism_exists);
  EXPECT_FALSE(verdict.constraints_satisfied);
  EXPECT_FALSE(verdict.represented());
}

TEST(UniversalPairTest, SameAsPairChecksSameAsEdges) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  Result<UniversalPair> pair =
      BuildUniversalPair(s.setting, *s.instance, *s.universe, eval);
  ASSERT_TRUE(pair.ok());
  Graph g3 = BuildFigure1G3(s);
  EXPECT_TRUE(pair->Represents(g3, eval));
  // Stripping the sameAs edges breaks the constraint half.
  Graph stripped;
  SymbolId same_as = s.alphabet->SameAsSymbol();
  for (const Edge& e : g3.edges()) {
    if (e.label != same_as) stripped.AddEdge(e.src, e.label, e.dst);
  }
  UniversalPair::Verdict verdict = pair->Classify(stripped, eval);
  EXPECT_TRUE(verdict.homomorphism_exists);
  EXPECT_FALSE(verdict.constraints_satisfied);
}

TEST(UniversalPairTest, BuildFailsOnChaseClash) {
  // A setting whose adapted chase equates two constants: R(x),P(y) with
  // definite single-symbol head edges and an egd over them.
  Scenario s = MakeExample31Scenario();
  // Force a clash: both hotels hosted by *constant* cities via extra tgd.
  // Simpler: a synthetic scenario from text.
  Result<Scenario> clash = ParseScenario(R"(
    relation R/2
    fact R(a, b)
    fact R(c, b)
    stgd R(x, y) -> (x, e, y)
    egd (x1, e, y), (x2, e, y) -> x1 = x2
  )");
  ASSERT_TRUE(clash.ok()) << clash.status().ToString();
  Result<UniversalPair> pair = BuildUniversalPair(
      clash->setting, *clash->instance, *clash->universe, eval);
  EXPECT_FALSE(pair.ok());
  EXPECT_EQ(pair.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CoreMinimizerTest, RemovesRedundantParallelPath) {
  // A solution with a duplicated path: minimization drops the extra one.
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  ExistenceSolver solver(&eval);
  ExistenceReport report =
      solver.Decide(s.setting, *s.instance, *s.universe);
  ASSERT_TRUE(report.witness.has_value());
  Graph bloated = *report.witness;
  // Add a redundant extra city with both hotels? That would violate the
  // egd. Add a redundant parallel f-path instead.
  Value extra = s.universe->FreshNull();
  SymbolId f = s.alphabet->Intern("f");
  bloated.AddEdge(s.universe->MakeConstant("c1"), f, extra);
  bloated.AddEdge(extra, f, s.universe->MakeConstant("c2"));
  ASSERT_TRUE(IsSolution(s.setting, *s.instance, bloated, eval,
                         *s.universe));
  CoreMinimizeStats stats;
  Graph minimized = GreedyCoreMinimize(bloated, s.setting, *s.instance,
                                       eval, *s.universe, &stats);
  EXPECT_GE(stats.edges_removed, 2u);
  EXPECT_LE(minimized.num_edges(), report.witness->num_edges());
  EXPECT_TRUE(
      IsSolution(s.setting, *s.instance, minimized, eval, *s.universe));
}

TEST(CoreMinimizerTest, MinimalSolutionIsFixpoint) {
  // The Figure 4 valuation graph is already subset-minimal.
  Result<Scenario> s = ParseScenario(R"(
    relation R/1
    relation P/1
    fact R(c1)
    fact P(c2)
    stgd R(x), P(y) -> (x, a, y)
  )");
  ASSERT_TRUE(s.ok());
  Graph g;
  g.AddEdge(s->universe->MakeConstant("c1"), s->alphabet->Intern("a"),
            s->universe->MakeConstant("c2"));
  CoreMinimizeStats stats;
  Graph minimized = GreedyCoreMinimize(g, s->setting, *s->instance, eval,
                                       *s->universe, &stats);
  EXPECT_EQ(stats.edges_removed, 0u);
  EXPECT_EQ(minimized.num_edges(), 1u);
}

TEST(ScenarioParserTest, ParsesExample22File) {
  Result<Scenario> s = ParseScenario(R"(
    # Example 2.2
    relation Flight/3
    relation Hotel/2
    fact Flight(01, c1, c2)
    fact Flight(02, c3, c2)
    fact Hotel(01, hx)
    fact Hotel(01, hy)
    fact Hotel(02, hx)
    stgd Flight(x1, x2, x3), Hotel(x1, x4) ->
         (x2, f . f*, y), (y, h, x4), (y, f . f*, x3)
    egd (x1, h, x3), (x2, h, x3) -> x1 = x2
    query (x1, f . f* [h] . f- . (f-)*, x2) -> x1, x2
  )");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->instance->TotalFacts(), 5u);
  EXPECT_EQ(s->setting.st_tgds.size(), 1u);
  EXPECT_EQ(s->setting.egds.size(), 1u);
  ASSERT_NE(s->query, nullptr);
  EXPECT_EQ(s->query->head().size(), 2u);
  // The parsed scenario behaves like the built-in one.
  ExistenceSolver solver(&eval);
  ExistenceReport report =
      solver.Decide(s->setting, *s->instance, *s->universe);
  EXPECT_EQ(report.verdict, ExistenceVerdict::kYes);
}

TEST(ScenarioParserTest, Errors) {
  EXPECT_FALSE(ParseScenario("").ok());                       // no tgds
  EXPECT_FALSE(ParseScenario("relation R\n").ok());           // no arity
  EXPECT_FALSE(ParseScenario("relation R/0\n").ok());         // arity 0
  EXPECT_FALSE(ParseScenario("relation R/1\nrelation R/1\n").ok());
  EXPECT_FALSE(
      ParseScenario("relation R/1\nfact S(a)\n").ok());       // unknown rel
  EXPECT_FALSE(
      ParseScenario("relation R/1\nfact R(a, b)\n").ok());    // arity
  EXPECT_FALSE(ParseScenario("bogus directive\n").ok());
  // Facts must be declared after their relation; stgd required.
  EXPECT_FALSE(ParseScenario("relation R/1\nfact R(a)\n").ok());
}

TEST(ScenarioParserTest, SameAsAndTargetTgdDirectives) {
  Result<Scenario> s = ParseScenario(R"(
    relation R/2
    fact R(a, b)
    stgd R(x, y) -> (x, e, y)
    sameas (x1, e, y), (x2, e, y) -> (x1, sameAs, x2)
    ttgd (x, e, y) -> (y, back, x)
  )");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->setting.sameas.size(), 1u);
  EXPECT_EQ(s->setting.target_tgds.size(), 1u);
}

}  // namespace
}  // namespace gdx
