// Tests for the exchange core: the dependency parser, setting
// classification, and solution checking against the paper's Figure 1
// graphs under Ω (egd) and Ω′ (sameAs).
#include <gtest/gtest.h>

#include "exchange/parser.h"
#include "exchange/solution_check.h"
#include "graph/cnre.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

TEST(ParserTest, StTgdRoundTrip) {
  Schema schema;
  (void)schema.AddRelation("Flight", 3);
  (void)schema.AddRelation("Hotel", 2);
  Alphabet alphabet;
  Universe universe;
  Result<StTgd> tgd = ParseStTgd(
      "Flight(x1, x2, x3), Hotel(x1, x4) -> "
      "(x2, f . f*, y), (y, h, x4), (y, f . f*, x3)",
      &schema, alphabet, universe);
  ASSERT_TRUE(tgd.ok()) << tgd.status().ToString();
  EXPECT_EQ(tgd->body.atoms().size(), 2u);
  EXPECT_EQ(tgd->head.size(), 3u);
  std::vector<VarId> ex = tgd->ExistentialVars();
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(tgd->body.vars().NameOf(ex[0]), "y");
}

TEST(ParserTest, StTgdErrors) {
  Schema schema;
  (void)schema.AddRelation("R", 1);
  Alphabet alphabet;
  Universe universe;
  // Unknown relation.
  EXPECT_FALSE(
      ParseStTgd("S(x) -> (x, a, y)", &schema, alphabet, universe).ok());
  // Arity mismatch.
  EXPECT_FALSE(
      ParseStTgd("R(x, y) -> (x, a, y)", &schema, alphabet, universe).ok());
  // Missing implication.
  EXPECT_FALSE(ParseStTgd("R(x)", &schema, alphabet, universe).ok());
  // Empty head.
  EXPECT_FALSE(ParseStTgd("R(x) -> ", &schema, alphabet, universe).ok());
  // Bad NRE in head.
  EXPECT_FALSE(
      ParseStTgd("R(x) -> (x, a ++ b, y)", &schema, alphabet, universe).ok());
}

TEST(ParserTest, TargetEgd) {
  Alphabet alphabet;
  Universe universe;
  Result<TargetEgd> egd = ParseTargetEgd(
      "(x1, h, x3), (x2, h, x3) -> x1 = x2", alphabet, universe);
  ASSERT_TRUE(egd.ok()) << egd.status().ToString();
  EXPECT_EQ(egd->body.atoms().size(), 2u);
  EXPECT_EQ(egd->body.vars().NameOf(egd->x1), "x1");
  EXPECT_EQ(egd->body.vars().NameOf(egd->x2), "x2");
  // Head variable not in body.
  EXPECT_FALSE(
      ParseTargetEgd("(x1, h, x3) -> x1 = zz", alphabet, universe).ok());
  // Missing '='.
  EXPECT_FALSE(
      ParseTargetEgd("(x1, h, x3) -> x1", alphabet, universe).ok());
}

TEST(ParserTest, SameAsConstraint) {
  Alphabet alphabet;
  Universe universe;
  Result<SameAsConstraint> sac = ParseSameAsConstraint(
      "(x1, h, x3), (x2, h, x3) -> (x1, sameAs, x2)", alphabet, universe);
  ASSERT_TRUE(sac.ok()) << sac.status().ToString();
  // Head must be exactly a sameAs edge between variables.
  EXPECT_FALSE(ParseSameAsConstraint("(x1, h, x3) -> (x1, other, x3)",
                                     alphabet, universe)
                   .ok());
  EXPECT_FALSE(ParseSameAsConstraint(
                   "(x1, h, x3) -> (x1, sameAs, x3), (x3, sameAs, x1)",
                   alphabet, universe)
                   .ok());
}

TEST(ParserTest, TargetTgdAndConstants) {
  Alphabet alphabet;
  Universe universe;
  Result<TargetTgd> tgd =
      ParseTargetTgd("(x, a, 'c9') -> (x, b, z)", alphabet, universe);
  ASSERT_TRUE(tgd.ok()) << tgd.status().ToString();
  ASSERT_EQ(tgd->body.atoms().size(), 1u);
  EXPECT_TRUE(tgd->body.atoms()[0].y.is_const());
  EXPECT_TRUE(universe.FindConstant("c9").has_value());
}

TEST(SettingTest, Classification) {
  Scenario none = MakeExample22Scenario(FlightConstraintMode::kNone);
  EXPECT_FALSE(none.setting.HasTargetConstraints());
  Scenario egd = MakeExample22Scenario(FlightConstraintMode::kEgd);
  EXPECT_TRUE(egd.setting.HasTargetConstraints());
  EXPECT_FALSE(egd.setting.SameAsOnly());
  EXPECT_FALSE(egd.setting.IsSingleSymbolFragment());
  Scenario sameas = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  EXPECT_TRUE(sameas.setting.SameAsOnly());
  Scenario restricted = MakeExample31Scenario();
  EXPECT_TRUE(restricted.setting.IsSingleSymbolFragment());
}

// --- Figure 1: solution checking under Ω and Ω′ -------------------------

TEST(Figure1Test, G1IsSolutionUnderOmega) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Graph g1 = BuildFigure1G1(s);
  SolutionCheckReport report =
      CheckSolution(s.setting, *s.instance, g1, eval, *s.universe);
  EXPECT_TRUE(report.IsSolution())
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(Figure1Test, G2IsSolutionUnderOmega) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Graph g2 = BuildFigure1G2(s);
  SolutionCheckReport report =
      CheckSolution(s.setting, *s.instance, g2, eval, *s.universe);
  EXPECT_TRUE(report.IsSolution())
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(Figure1Test, G3IsSolutionUnderOmegaPrime) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  Graph g3 = BuildFigure1G3(s);
  SolutionCheckReport report =
      CheckSolution(s.setting, *s.instance, g3, eval, *s.universe);
  EXPECT_TRUE(report.IsSolution())
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(Figure1Test, G3ViolatesOmegaEgd) {
  // hx sits in two cities in G3 — fine for sameAs, fatal for the egd.
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Graph g3 = BuildFigure1G3(s);
  SolutionCheckReport report =
      CheckSolution(s.setting, *s.instance, g3, eval, *s.universe);
  EXPECT_TRUE(report.st_tgds_ok);
  EXPECT_FALSE(report.egds_ok);
}

TEST(Figure1Test, G1WithoutSameAsFailsOmegaPrimeOnlyIfHotelShared) {
  // G1 merges the hotels into one city N, so all sameAs triggers are
  // reflexive — G1 is a solution under Ω′ too (implicit reflexivity).
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  Graph g1 = BuildFigure1G1(s);
  EXPECT_TRUE(IsSolution(s.setting, *s.instance, g1, eval, *s.universe));
  // Under strict FO semantics the reflexive self-loops are required.
  SolutionCheckOptions strict;
  strict.implicit_reflexive_sameas = false;
  EXPECT_FALSE(
      IsSolution(s.setting, *s.instance, g1, eval, *s.universe, strict));
}

TEST(Figure1Test, EmptyGraphViolatesStTgds) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Graph empty;
  SolutionCheckReport report =
      CheckSolution(s.setting, *s.instance, empty, eval, *s.universe);
  EXPECT_FALSE(report.st_tgds_ok);
  EXPECT_FALSE(report.violations.empty());
}

TEST(Figure1Test, QueryAnswersOnG1AndG2MatchPaper) {
  // JQK_G1 = {c1,c3}², JQK_G2 = {c1,c3,N1}² (9 pairs) — Example 2.2.
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Graph g1 = BuildFigure1G1(s);
  Graph g2 = BuildFigure1G2(s);
  std::vector<std::vector<Value>> a1 = EvaluateCnre(*s.query, g1, eval);
  std::vector<std::vector<Value>> a2 = EvaluateCnre(*s.query, g2, eval);
  EXPECT_EQ(a1.size(), 4u);
  EXPECT_EQ(a2.size(), 9u);
}

}  // namespace
}  // namespace gdx
