// ISSUE 4 persistence tests: the versioned snapshot format must carry the
// EngineCache's full warm state — NRE memo, answer memo, compiled
// automata — across a save/load boundary without changing a single output
// byte, and must treat every corrupted file (truncation, bit flips, bad
// magic/version) as a clean cold start, never UB. Restored compiled
// automata are pitted against freshly compiled ones on the randomized
// differential from nre_eval_equivalence_test.cpp. The ISSUE 9 RELI
// section (persisted reliance analyses) gets the same treatment at the
// bottom: byte-stable round trips, bit-flip and semantic-corruption
// rejection, and a warm start that replays every graph with zero
// RelianceGraph::Build calls.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "chase/chase_compiler.h"
#include "chase/reliance.h"
#include "engine/batch_executor.h"
#include "engine/cache.h"
#include "engine/exchange_engine.h"
#include "graph/nre_eval.h"
#include "graph/nre_parser.h"
#include "persist/snapshot.h"
#include "persist/wire.h"
#include "workload/flights.h"
#include "workload/random_graph.h"

namespace gdx {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "gdx_persist_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The deterministic mixed scenario list the equivalence suite uses:
/// paper examples (with a query — exercises the answer memo) plus
/// generated flight workloads.
std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> scenarios;
  scenarios.push_back(MakeExample22Scenario(FlightConstraintMode::kEgd));
  scenarios.push_back(MakeExample22Scenario(FlightConstraintMode::kSameAs));
  scenarios.push_back(MakeExample52Scenario());
  for (uint64_t seed = 21; seed <= 23; ++seed) {
    FlightWorkloadParams params;
    params.seed = seed;
    params.num_cities = 4;
    params.num_flights = 5;
    params.num_hotels = 3;
    params.mode = FlightConstraintMode::kEgd;
    scenarios.push_back(MakeFlightScenario(params));
  }
  return scenarios;
}

EngineOptions TestEngineOptions() {
  EngineOptions options;
  options.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = 12;
  return options;
}

std::vector<std::string> SolveAllToStrings(const ExchangeEngine& engine,
                                           std::vector<Scenario>& scenarios,
                                           Metrics* total = nullptr) {
  std::vector<std::string> out;
  for (Scenario& s : scenarios) {
    Result<ExchangeOutcome> outcome = engine.Solve(s);
    out.push_back(outcome.ok()
                      ? outcome->ToString(*s.universe, *s.alphabet)
                      : outcome.status().ToString());
    if (total != nullptr && outcome.ok()) {
      total->Accumulate(outcome->metrics);
    }
  }
  return out;
}

// --- wire primitives -------------------------------------------------------

TEST(WireTest, RoundTripAndBoundsChecks) {
  WireWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutBytes("hello");

  WireReader r(w.bytes());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  std::string_view bytes;
  ASSERT_TRUE(r.ReadU8(&u8));
  EXPECT_EQ(u8, 0xab);
  ASSERT_TRUE(r.ReadU32(&u32));
  EXPECT_EQ(u32, 0xdeadbeefu);
  ASSERT_TRUE(r.ReadU64(&u64));
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  ASSERT_TRUE(r.ReadBytes(&bytes));
  EXPECT_EQ(bytes, "hello");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(r.ReadU8(&u8));  // past the end: refused, not read

  // A length prefix pointing past the end is refused.
  WireWriter bad;
  bad.PutU64(1000);
  bad.PutRaw("short");
  WireReader br(bad.bytes());
  EXPECT_FALSE(br.ReadBytes(&bytes));
}

TEST(WireTest, Fnv1a64MatchesSpecConstants) {
  // The spec's normative test vectors (docs/FORMAT.md §Checksums).
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// --- codec round trips -----------------------------------------------------

TEST(SnapshotCodecTest, EmptyStateRoundTrips) {
  std::string bytes = EncodeSnapshot(WarmState{});
  Result<WarmState> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->nre.empty());
  EXPECT_TRUE(decoded->answers.empty());
  EXPECT_TRUE(decoded->compiled.empty());
  EXPECT_TRUE(decoded->chased.empty());
  // decode → encode is the identity on valid snapshots.
  EXPECT_EQ(EncodeSnapshot(*decoded), bytes);
}

TEST(SnapshotCodecTest, PopulatedStateDecodeEncodeIdentity) {
  // Populate a cache the way the engine does, then round-trip its export.
  EngineCache cache;
  Alphabet alphabet;
  Universe universe;
  RandomGraphParams gp;
  gp.num_nodes = 10;
  gp.num_edges = 30;
  gp.num_labels = 3;
  gp.seed = 99;
  Graph g = MakeRandomGraph(gp, universe, alphabet);
  NaiveNreEvaluator base;
  CachingNreEvaluator eval(&base, &cache);
  Rng rng(17);
  for (int i = 0; i < 6; ++i) {
    NrePtr nre = MakeRandomNre(3, gp.num_labels, alphabet, rng);
    eval.Eval(nre, g);                  // NRE memo
    cache.GetOrCompile(nre);            // compiled memo
  }
  cache.StoreAnswers("synthetic-answer-key", g,
                     {{g.nodes()[0], g.nodes()[1]}, {g.nodes()[2]}});

  WarmState state = cache.ExportWarmState();
  EXPECT_EQ(state.nre.size(), cache.sizes().nre_entries);
  EXPECT_EQ(state.compiled.size(), cache.sizes().compiled_entries);
  EXPECT_EQ(state.answers.size(), cache.sizes().answer_keys);

  std::string bytes = EncodeSnapshot(state);
  Result<WarmState> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(EncodeSnapshot(*decoded), bytes);
}

TEST(SnapshotCodecTest, CacheRoundTripIsByteStable) {
  // Solve real scenarios, save, load into a second cache, save again:
  // the two snapshot files must be byte-identical (the restore preserved
  // keys, payloads, and LRU order exactly).
  ExchangeEngine engine(TestEngineOptions());
  std::vector<Scenario> scenarios = MakeScenarios();
  SolveAllToStrings(engine, scenarios);
  ASSERT_GT(engine.cache().sizes().nre_entries, 0u);
  ASSERT_GT(engine.cache().sizes().compiled_entries, 0u);

  std::string path1 = TempPath("roundtrip1.gdxsnap");
  std::string path2 = TempPath("roundtrip2.gdxsnap");
  ASSERT_TRUE(engine.SaveWarmState(path1).ok());

  EngineCache restored;
  SnapshotRestoreStats stats;
  Status loaded = restored.LoadSnapshot(path1, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  EXPECT_EQ(stats.nre_entries, engine.cache().sizes().nre_entries);
  EXPECT_EQ(stats.answer_keys, engine.cache().sizes().answer_keys);
  EXPECT_EQ(stats.compiled_entries, engine.cache().sizes().compiled_entries);
  EXPECT_EQ(stats.chased_entries, engine.cache().sizes().chased_entries);
  EXPECT_EQ(stats.evicted_on_load, 0u);

  ASSERT_TRUE(restored.SaveSnapshot(path2).ok());
  EXPECT_EQ(ReadFileBytes(path1), ReadFileBytes(path2));
}

// --- warm-start behavior ---------------------------------------------------

TEST(WarmStartTest, WarmEngineIsByteIdenticalAndMissFree) {
  std::string path = TempPath("warm.gdxsnap");

  // Cold process: solve, save.
  ExchangeEngine cold(TestEngineOptions());
  std::vector<Scenario> cold_scenarios = MakeScenarios();
  std::vector<std::string> cold_out =
      SolveAllToStrings(cold, cold_scenarios);
  ASSERT_TRUE(cold.SaveWarmState(path).ok());
  CacheStats cold_stats = cold.cache().stats();
  EXPECT_GT(cold_stats.compile_misses, 0u);  // cold run really compiled
  EXPECT_EQ(cold_stats.restored_hits(), 0u);

  // Warm process: identical scenarios, restored cache.
  ExchangeEngine warm(TestEngineOptions());
  Result<SnapshotRestoreStats> restored = warm.WarmStart(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->nre_entries, cold.cache().sizes().nre_entries);
  EXPECT_EQ(restored->compiled_entries,
            cold.cache().sizes().compiled_entries);

  std::vector<Scenario> warm_scenarios = MakeScenarios();
  Metrics warm_total;
  std::vector<std::string> warm_out =
      SolveAllToStrings(warm, warm_scenarios, &warm_total);

  // Byte-identical outputs, zero NRE/compile misses (the acceptance
  // criterion), and the restored-entry hit counters account for it.
  ASSERT_EQ(warm_out.size(), cold_out.size());
  for (size_t i = 0; i < cold_out.size(); ++i) {
    EXPECT_EQ(warm_out[i], cold_out[i]) << "scenario " << i;
  }
  CacheStats warm_stats = warm.cache().stats();
  EXPECT_EQ(warm_stats.nre_misses, 0u);
  EXPECT_EQ(warm_stats.compile_misses, 0u);
  EXPECT_EQ(warm_stats.chase_misses, 0u);
  EXPECT_GT(warm_stats.nre_restored_hits, 0u);
  // The warm chase stage is served entirely by restored §5 artifacts
  // (ISSUE 5): zero chase work, every chase hit a restored one.
  EXPECT_GT(warm_stats.chase_restored_hits, 0u);
  EXPECT_EQ(warm_stats.chase_hits, warm_stats.chase_restored_hits);
  EXPECT_EQ(warm_total.chase_triggers, 0u);
  EXPECT_EQ(warm_total.chase_cache_restored_hits,
            warm_stats.chase_restored_hits);
  // Restored relations short-circuit most evaluations before the
  // automaton layer; whatever compile traffic remains must be served
  // entirely by restored plans (the differential suite below proves the
  // plans themselves behave identically to fresh compiles).
  EXPECT_EQ(warm_stats.compile_hits, warm_stats.compile_restored_hits);
  // Restored hits flow through per-solve attribution into Metrics.
  EXPECT_EQ(warm_total.nre_cache_restored_hits, warm_stats.nre_restored_hits);
  EXPECT_EQ(warm_total.compile_cache_restored_hits,
            warm_stats.compile_restored_hits);
  EXPECT_EQ(warm_total.compile_cache_misses, 0u);
}

TEST(WarmStartTest, BatchExecutorHooksAndReportCounters) {
  std::string path = TempPath("warm_batch.gdxsnap");
  BatchOptions options;
  options.engine = TestEngineOptions();
  options.num_threads = 2;

  BatchExecutor first(options);
  std::vector<Scenario> scenarios = MakeScenarios();
  BatchReport cold_report = first.SolveAll(scenarios);
  EXPECT_EQ(cold_report.errors, 0u);
  EXPECT_EQ(cold_report.total.cache_restored_hits(), 0u);
  ASSERT_TRUE(first.SaveWarmState(path).ok());

  BatchExecutor second(options);
  Result<SnapshotRestoreStats> restored = second.WarmStart(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::vector<Scenario> scenarios2 = MakeScenarios();
  BatchReport warm_report = second.SolveAll(scenarios2);
  EXPECT_EQ(warm_report.errors, 0u);
  EXPECT_EQ(warm_report.total.nre_cache_misses, 0u);
  EXPECT_EQ(warm_report.total.compile_cache_misses, 0u);
  EXPECT_GT(warm_report.total.cache_restored_hits(), 0u);
  // The Summary surfaces the warm line for CLI users.
  EXPECT_NE(warm_report.Summary().find("warm: restored-entry hits"),
            std::string::npos);
}

TEST(WarmStartTest, LiveEntriesWinOverSnapshotDuplicates) {
  BinaryRelation live = {{Value::Constant(1), Value::Constant(2)}};
  BinaryRelation stale = {{Value::Constant(3), Value::Constant(4)}};

  WarmState state;
  state.nre.emplace_back("shared-key", stale);
  state.nre.emplace_back("snapshot-only-key", stale);

  EngineCache cache;
  cache.StoreNre("shared-key", live);
  SnapshotRestoreStats restored = cache.ImportWarmState(std::move(state));
  EXPECT_EQ(restored.nre_entries, 1u);  // only the snapshot-only key

  BinaryRelation out;
  ASSERT_TRUE(cache.LookupNre("shared-key", &out));
  EXPECT_EQ(out, live);
  // The surviving live entry is not "restored": no restored-hit tick.
  EXPECT_EQ(cache.stats().nre_restored_hits, 0u);
  ASSERT_TRUE(cache.LookupNre("snapshot-only-key", &out));
  EXPECT_EQ(cache.stats().nre_restored_hits, 1u);
}

TEST(WarmStartTest, MidLifeWarmStartNeverEvictsLiveWorkingSet) {
  // A cache already at its cap with a live working set loads an older
  // snapshot of equal size: every live entry must survive (restored
  // entries rank below live ones in LRU order) and the whole snapshot
  // must be the part that gets evicted.
  const size_t kCap = 4;
  WarmState snapshot;
  for (size_t i = 0; i < kCap; ++i) {
    snapshot.nre.emplace_back(
        "stale" + std::to_string(i),
        BinaryRelation{{Value::Constant(i), Value::Constant(i)}});
  }

  EngineCacheOptions options;
  options.max_nre_entries = kCap;
  options.num_shards = 1;  // exact global LRU (the behavior under test)
  EngineCache cache(options);
  for (size_t i = 0; i < kCap; ++i) {
    cache.StoreNre("live" + std::to_string(i),
                   {{Value::Constant(i), Value::Constant(i)}});
  }

  SnapshotRestoreStats restored = cache.ImportWarmState(std::move(snapshot));
  EXPECT_EQ(restored.nre_entries, kCap);
  EXPECT_EQ(restored.evicted_on_load, kCap);  // the snapshot, not the set
  EXPECT_EQ(cache.sizes().nre_entries, kCap);
  BinaryRelation out;
  for (size_t i = 0; i < kCap; ++i) {
    EXPECT_TRUE(cache.LookupNre("live" + std::to_string(i), &out)) << i;
    EXPECT_FALSE(cache.LookupNre("stale" + std::to_string(i), &out)) << i;
  }
}

TEST(WarmStartTest, LruCapsRespectedOnLoad) {
  // Save 8 compiled + 6 NRE entries, reload under caps of 3 / 2: only
  // the most recently used survive, eviction counters account for the
  // rest, and lookups confirm which entries made it.
  // Single-shard caches on both sides: this test pins exact global LRU
  // order across a save/restore (which entries survive tight caps).
  EngineCacheOptions big_options;
  big_options.num_shards = 1;
  EngineCache big(big_options);
  Alphabet alphabet;
  std::vector<NrePtr> nres;
  for (int i = 0; i < 8; ++i) {
    SymbolId s = alphabet.Intern("s" + std::to_string(i));
    nres.push_back(Nre::Symbol(s));
    big.GetOrCompile(nres.back());
  }
  for (int i = 0; i < 6; ++i) {
    big.StoreNre("key" + std::to_string(i),
                 {{Value::Constant(i), Value::Constant(i)}});
  }

  EngineCacheOptions capped_options;
  capped_options.max_compiled_entries = 3;
  capped_options.max_nre_entries = 2;
  capped_options.num_shards = 1;
  EngineCache capped(capped_options);
  SnapshotRestoreStats restored = capped.ImportWarmState(big.ExportWarmState());
  EXPECT_EQ(restored.compiled_entries, 8u);
  EXPECT_EQ(restored.nre_entries, 6u);
  EXPECT_EQ(restored.evicted_on_load, (8u - 3u) + (6u - 2u));
  EXPECT_EQ(capped.sizes().compiled_entries, 3u);
  EXPECT_EQ(capped.sizes().nre_entries, 2u);

  // Most recently used entries survived; the oldest were dropped.
  BinaryRelation out;
  EXPECT_TRUE(capped.LookupNre("key5", &out));
  EXPECT_TRUE(capped.LookupNre("key4", &out));
  EXPECT_FALSE(capped.LookupNre("key0", &out));
  CacheStats before = capped.stats();
  capped.GetOrCompile(nres[7]);  // MRU compiled entry: restored hit
  EXPECT_EQ(capped.stats().compile_hits, before.compile_hits + 1);
  EXPECT_EQ(capped.stats().compile_restored_hits,
            before.compile_restored_hits + 1);
  capped.GetOrCompile(nres[0]);  // evicted on load: recompiles
  EXPECT_EQ(capped.stats().compile_misses, before.compile_misses + 1);
}

// --- restored automata vs fresh compiles -----------------------------------

TEST(RestoredAutomataTest, AgreeWithFreshCompilesOnRandomizedDifferential) {
  struct Params {
    uint64_t seed;
    size_t nodes, edges, labels, depth, nres;
  };
  for (const Params& p : {Params{31, 8, 20, 2, 4, 8},
                          Params{32, 12, 36, 3, 4, 8},
                          Params{33, 30, 120, 2, 3, 6},
                          Params{34, 200, 800, 2, 3, 3}}) {
    Universe universe;
    Alphabet alphabet;
    RandomGraphParams gp;
    gp.num_nodes = p.nodes;
    gp.num_edges = p.edges;
    gp.num_labels = p.labels;
    gp.seed = p.seed;
    Graph g = MakeRandomGraph(gp, universe, alphabet);
    Rng rng(p.seed * 7919 + 13);

    std::vector<NrePtr> nres;
    EngineCache saved;
    for (size_t i = 0; i < p.nres; ++i) {
      nres.push_back(MakeRandomNre(p.depth, p.labels, alphabet, rng));
      saved.GetOrCompile(nres.back());
    }

    // Round-trip the compiled memo through the codec.
    Result<WarmState> decoded =
        DecodeSnapshot(EncodeSnapshot(saved.ExportWarmState()));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EngineCache restored;
    restored.ImportWarmState(std::move(decoded).value());
    ASSERT_EQ(restored.sizes().compiled_entries, p.nres);

    AutomatonNreEvaluator warm_eval(&restored);
    AutomatonNreEvaluator fresh_eval;
    NaiveNreEvaluator legacy;
    for (const NrePtr& nre : nres) {
      BinaryRelation expected = fresh_eval.Eval(nre, g);
      EXPECT_EQ(warm_eval.Eval(nre, g), expected)
          << "seed " << p.seed << ": " << nre->ToString(alphabet);
      EXPECT_EQ(legacy.Eval(nre, g), expected)
          << "seed " << p.seed << ": " << nre->ToString(alphabet);
    }
    // Every evaluation was served by a restored automaton, none recompiled.
    EXPECT_EQ(restored.stats().compile_misses, 0u);
    EXPECT_EQ(restored.stats().compile_restored_hits,
              restored.stats().compile_hits);
  }
}

TEST(RestoredAutomataTest, FromPartsRejectsInvalidParts) {
  // A valid automaton decomposes and reassembles, with the reversed
  // transition lists re-derived to exactly what Compile produced...
  Alphabet alphabet;
  SymbolId a = alphabet.Intern("a");
  CompiledNrePtr ok = CompiledNre::Compile(Nre::Star(Nre::Symbol(a)));
  ASSERT_NE(ok, nullptr);
  auto forward_states = [](const CompiledNre& c) {
    std::vector<CompiledNre::State> out;
    for (uint32_t s = 0; s < c.num_states(); ++s) out.push_back(c.Forward(s));
    return out;
  };
  std::vector<uint8_t> accepting;
  for (uint32_t s = 0; s < ok->num_states(); ++s) {
    accepting.push_back(ok->Accepting(s) ? 1 : 0);
  }
  CompiledNrePtr rebuilt =
      CompiledNre::FromParts(ok->start(), forward_states(*ok), accepting, {});
  ASSERT_NE(rebuilt, nullptr);
  for (uint32_t s = 0; s < ok->num_states(); ++s) {
    EXPECT_EQ(rebuilt->Reverse(s).fwd, ok->Reverse(s).fwd) << "state " << s;
    EXPECT_EQ(rebuilt->Reverse(s).bwd, ok->Reverse(s).bwd) << "state " << s;
    EXPECT_EQ(rebuilt->Reverse(s).tests, ok->Reverse(s).tests)
        << "state " << s;
  }

  // ...but every broken variant is refused.
  EXPECT_EQ(CompiledNre::FromParts(99, forward_states(*ok), accepting, {}),
            nullptr);  // start out of range
  EXPECT_EQ(CompiledNre::FromParts(ok->start(), {}, {}, {}),
            nullptr);  // no states
  std::vector<uint8_t> bad_accepting = accepting;
  bad_accepting[0] = 7;
  EXPECT_EQ(
      CompiledNre::FromParts(ok->start(), forward_states(*ok), bad_accepting,
                             {}),
      nullptr);  // non-boolean accepting flag
  std::vector<CompiledNre::State> bad_target = forward_states(*ok);
  bad_target[0].fwd.emplace_back(a, 1000);
  EXPECT_EQ(CompiledNre::FromParts(ok->start(), bad_target, accepting, {}),
            nullptr);  // transition target out of range
  std::vector<CompiledNre::State> unsorted = forward_states(*ok);
  unsorted[0].fwd.emplace_back(a, 0);
  unsorted[0].fwd.emplace_back(a, 0);  // duplicate → not strictly sorted
  EXPECT_EQ(CompiledNre::FromParts(ok->start(), unsorted, accepting, {}),
            nullptr);  // non-canonical transition order
}

// --- corruption safety -----------------------------------------------------

/// One valid snapshot with all three memos populated, built once.
std::string MakeValidSnapshotBytes() {
  ExchangeEngine engine(TestEngineOptions());
  std::vector<Scenario> scenarios = MakeScenarios();
  SolveAllToStrings(engine, scenarios);
  return EncodeSnapshot(engine.cache().ExportWarmState());
}

TEST(CorruptionTest, EveryTruncationFailsCleanly) {
  std::string bytes = MakeValidSnapshotBytes();
  ASSERT_GT(bytes.size(), 64u);
  // Every length below 64 (header/table territory), then sampled
  // positions through the payloads.
  const size_t step = bytes.size() > 257 ? bytes.size() / 257 : 1;
  for (size_t len = 0; len < bytes.size(); len += (len < 64 ? 1 : step)) {
    Result<WarmState> decoded = DecodeSnapshot(bytes.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len;
  }
  // A truncated *file* leaves the loading cache untouched (empty).
  std::string path = TempPath("truncated.gdxsnap");
  WriteFileBytes(path, bytes.substr(0, bytes.size() / 2));
  EngineCache cache;
  Status status = cache.LoadSnapshot(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(cache.sizes().nre_entries, 0u);
  EXPECT_EQ(cache.sizes().answer_keys, 0u);
  EXPECT_EQ(cache.sizes().compiled_entries, 0u);
}

TEST(CorruptionTest, EverySampledBitFlipIsDetected) {
  // The format checksums every byte: magic and version by direct
  // comparison, the section table by the header checksum, payloads by
  // per-section checksums. Any single bit flip must therefore fail the
  // decode — and must never crash (ASan/UBSan legs run this test too).
  std::string bytes = MakeValidSnapshotBytes();
  const size_t step = bytes.size() > 331 ? bytes.size() / 331 : 1;
  for (size_t pos = 0; pos < bytes.size(); pos += step) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(
        static_cast<uint8_t>(flipped[pos]) ^ (1u << (pos % 8)));
    Result<WarmState> decoded = DecodeSnapshot(flipped);
    EXPECT_FALSE(decoded.ok()) << "flip at byte " << pos;
  }
}

TEST(CorruptionTest, BadMagicAndWrongVersionRejected) {
  std::string bytes = MakeValidSnapshotBytes();

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  Result<WarmState> decoded = DecodeSnapshot(bad_magic);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);

  // Version is the u32 at offset 8; a future version must be refused
  // with a message naming versions (the forward-compat policy).
  std::string future = bytes;
  future[8] = static_cast<char>(kFormatVersion + 1);
  decoded = DecodeSnapshot(future);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);

  EngineCache cache;
  std::string path = TempPath("future.gdxsnap");
  WriteFileBytes(path, future);
  EXPECT_FALSE(cache.LoadSnapshot(path).ok());
  EXPECT_EQ(cache.sizes().compiled_entries, 0u);

  // A missing file is a clean NotFound, not a crash.
  EXPECT_EQ(cache.LoadSnapshot(TempPath("does_not_exist.gdxsnap")).code(),
            StatusCode::kNotFound);
}

TEST(CorruptionTest, GarbageAndEmptyFilesRejected) {
  for (const std::string& garbage :
       {std::string(), std::string("not a snapshot"),
        std::string(200, '\xff'), std::string(9, '\0')}) {
    Result<WarmState> decoded = DecodeSnapshot(garbage);
    EXPECT_FALSE(decoded.ok());
  }
}

// --- reliance persistence (RELI, ISSUE 9) ----------------------------------

/// Warm state whose chased memo is populated — solving under the default
/// ChasePolicy::kDelta attaches a reliance analysis to every artifact.
WarmState MakeRelianceWarmState() {
  ExchangeEngine engine(TestEngineOptions());
  std::vector<Scenario> scenarios = MakeScenarios();
  SolveAllToStrings(engine, scenarios);
  return engine.cache().ExportWarmState();
}

TEST(ReliancePersistTest, RoundTripIsByteStableAndFieldExact) {
  WarmState state = MakeRelianceWarmState();
  ASSERT_FALSE(state.chased.empty());
  size_t with_reliance = 0;
  for (const auto& [key, chased] : state.chased) {
    if (chased->reliance != nullptr) ++with_reliance;
  }
  ASSERT_GT(with_reliance, 0u);

  const std::string bytes = EncodeSnapshot(state);
  Result<WarmState> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(EncodeSnapshot(*decoded), bytes);  // decode→encode identity

  // Every reliance graph restores field-for-field, including the strata
  // the decoder re-derives (DeriveStrata) rather than reads.
  ASSERT_EQ(decoded->chased.size(), state.chased.size());
  for (const auto& [key, original] : state.chased) {
    const ChasedScenario* restored = nullptr;
    for (const auto& [dkey, dchased] : decoded->chased) {
      if (dkey == key) restored = dchased.get();
    }
    ASSERT_NE(restored, nullptr) << key;
    ASSERT_EQ(original->reliance != nullptr, restored->reliance != nullptr);
    if (original->reliance == nullptr) continue;
    const RelianceGraph& a = *original->reliance;
    const RelianceGraph& b = *restored->reliance;
    EXPECT_EQ(a.num_st_tgds, b.num_st_tgds);
    EXPECT_EQ(a.num_egds, b.num_egds);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (size_t n = 0; n < a.nodes.size(); ++n) {
      EXPECT_EQ(a.nodes[n].body_symbols, b.nodes[n].body_symbols);
      EXPECT_EQ(a.nodes[n].definite_head_symbols,
                b.nodes[n].definite_head_symbols);
      EXPECT_EQ(a.nodes[n].nullable_body_atom, b.nodes[n].nullable_body_atom);
      EXPECT_EQ(a.nodes[n].dead, b.nodes[n].dead);
    }
    EXPECT_EQ(a.out, b.out);
    EXPECT_EQ(a.scc_of, b.scc_of);
    EXPECT_EQ(a.strata, b.strata);
    EXPECT_EQ(a.stratum_level, b.stratum_level);
  }
}

TEST(ReliancePersistTest, PreReliArtifactsRestoreWithNullReliance) {
  // A pre-ISSUE-9 snapshot is modeled by chased artifacts without a
  // reliance graph: the encoder then emits no RELI entry for them and the
  // restore succeeds with a null analysis — no version bump needed.
  WarmState state = MakeRelianceWarmState();
  for (auto& [key, chased] : state.chased) {
    auto stripped = std::make_shared<ChasedScenario>(*chased);
    stripped->reliance = nullptr;
    chased = std::move(stripped);
  }
  Result<WarmState> decoded = DecodeSnapshot(EncodeSnapshot(state));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->chased.size(), state.chased.size());
  for (const auto& [key, chased] : decoded->chased) {
    EXPECT_EQ(chased->reliance, nullptr) << key;
  }
}

TEST(ReliancePersistTest, SemanticallyInvalidGraphsRejected) {
  // Invalid reliance content behind a *valid* checksum (EncodeSnapshot
  // writes any WarmState verbatim) must fail RELI validation, not reach
  // a cache. Each mutation leaves every other section intact.
  WarmState state = MakeRelianceWarmState();
  size_t idx = state.chased.size();
  for (size_t i = 0; i < state.chased.size(); ++i) {
    if (state.chased[i].second->reliance != nullptr) idx = i;
  }
  ASSERT_LT(idx, state.chased.size());

  const auto mutate = [&](const std::function<void(RelianceGraph*)>& fn) {
    WarmState tampered = MakeRelianceWarmState();
    auto chased = std::make_shared<ChasedScenario>(*tampered.chased[idx].second);
    RelianceGraph graph = *chased->reliance;
    fn(&graph);
    chased->reliance = std::make_shared<const RelianceGraph>(std::move(graph));
    tampered.chased[idx].second = std::move(chased);
    return DecodeSnapshot(EncodeSnapshot(tampered));
  };

  Result<WarmState> decoded = mutate([](RelianceGraph* g) {
    g->nodes[0].body_symbols = {5, 5};  // not strictly increasing
  });
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("increasing"), std::string::npos)
      << decoded.status().ToString();

  decoded = mutate([](RelianceGraph* g) {
    // An adjacency target past the node range — keeps the row sorted so
    // only the bounds check can reject it.
    g->out[0].push_back(static_cast<uint32_t>(g->nodes.size()));
  });
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("out of range"),
            std::string::npos)
      << decoded.status().ToString();
}

TEST(ReliancePersistTest, DuplicateRelianceEntryRejected) {
  WarmState state = MakeRelianceWarmState();
  size_t idx = state.chased.size();
  for (size_t i = 0; i < state.chased.size(); ++i) {
    if (state.chased[i].second->reliance != nullptr) idx = i;
  }
  ASSERT_LT(idx, state.chased.size());
  // Two chased entries under one key each carry a reliance graph: the
  // second RELI record targets an artifact whose analysis is already
  // attached — structural corruption, not a merge.
  state.chased.push_back(state.chased[idx]);
  Result<WarmState> decoded = DecodeSnapshot(EncodeSnapshot(state));
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("duplicate reliance"),
            std::string::npos)
      << decoded.status().ToString();
}

TEST(ReliancePersistTest, CorruptReliSectionDegradesToColdStart) {
  // Locate the RELI section via the table and fuzz bits across its
  // payload: every flip must fail the decode (per-section checksum — no
  // format version bump involved), and loading such a file must leave
  // the cache empty. Mirrors the CHSE fuzz in chase_compile_test.
  std::string bytes = EncodeSnapshot(MakeRelianceWarmState());

  WireReader header(bytes);
  std::string_view magic;
  uint32_t version, num_sections;
  uint64_t table_checksum;
  ASSERT_TRUE(header.ReadRaw(8, &magic));
  ASSERT_TRUE(header.ReadU32(&version));
  ASSERT_TRUE(header.ReadU32(&num_sections));
  ASSERT_TRUE(header.ReadU64(&table_checksum));
  uint64_t reli_offset = 0, reli_length = 0;
  for (uint32_t i = 0; i < num_sections; ++i) {
    uint32_t id;
    uint64_t offset, length, checksum;
    ASSERT_TRUE(header.ReadU32(&id));
    ASSERT_TRUE(header.ReadU64(&offset));
    ASSERT_TRUE(header.ReadU64(&length));
    ASSERT_TRUE(header.ReadU64(&checksum));
    if (id == (uint32_t('R') | uint32_t('E') << 8 | uint32_t('L') << 16 |
               uint32_t('I') << 24)) {
      reli_offset = offset;
      reli_length = length;
    }
  }
  ASSERT_GT(reli_length, 4u) << "the snapshot must carry reliance entries";

  const size_t step = reli_length > 97 ? reli_length / 97 : 1;
  for (uint64_t pos = 0; pos < reli_length; pos += step) {
    std::string flipped = bytes;
    flipped[reli_offset + pos] = static_cast<char>(
        static_cast<uint8_t>(flipped[reli_offset + pos]) ^
        (1u << (pos % 8)));
    Result<WarmState> decoded = DecodeSnapshot(flipped);
    EXPECT_FALSE(decoded.ok()) << "flip at RELI byte " << pos;
  }

  std::string flipped = bytes;
  flipped[reli_offset + reli_length / 2] ^= 0x20;
  std::string path = TempPath("corrupt_reli.gdxsnap");
  WriteFileBytes(path, flipped);
  EngineCache cache;
  Status status = cache.LoadSnapshot(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(cache.sizes().chased_entries, 0u);
  EXPECT_EQ(cache.sizes().nre_entries, 0u);
}

TEST(ReliancePersistTest, WarmStartReplaysRelianceWithZeroRebuilds) {
  std::string path = TempPath("warm_reli.gdxsnap");
  ExchangeEngine cold(TestEngineOptions());
  std::vector<Scenario> cold_scenarios = MakeScenarios();
  std::vector<std::string> cold_out =
      SolveAllToStrings(cold, cold_scenarios);
  ASSERT_TRUE(cold.SaveWarmState(path).ok());

  ExchangeEngine warm(TestEngineOptions());
  ASSERT_TRUE(warm.WarmStart(path).ok());
  // The restored artifacts carry their persisted analyses...
  WarmState restored = warm.cache().ExportWarmState();
  size_t with_reliance = 0;
  for (const auto& [key, chased] : restored.chased) {
    if (chased->reliance != nullptr) ++with_reliance;
  }
  EXPECT_GT(with_reliance, 0u);

  // ...so replaying the full workload builds not a single new graph
  // (the ISSUE 9 zero-recompute criterion), while outputs stay
  // byte-identical to the cold run.
  const uint64_t builds_before = RelianceGraph::BuildCount();
  std::vector<Scenario> warm_scenarios = MakeScenarios();
  Metrics warm_total;
  std::vector<std::string> warm_out =
      SolveAllToStrings(warm, warm_scenarios, &warm_total);
  EXPECT_EQ(RelianceGraph::BuildCount(), builds_before);
  ASSERT_EQ(warm_out.size(), cold_out.size());
  for (size_t i = 0; i < cold_out.size(); ++i) {
    EXPECT_EQ(warm_out[i], cold_out[i]) << "scenario " << i;
  }
  EXPECT_EQ(warm_total.chase_delta_rounds, 0u);  // no chase ran at all
  EXPECT_GT(warm_total.chase_cache_restored_hits, 0u);
}

}  // namespace
}  // namespace gdx
