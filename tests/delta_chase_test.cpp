// ISSUE 9: the differential battery proving the semi-naive (delta) chase
// byte-identical to the naive reference. 220 seeded randomized scenarios
// — mixed st-tgds/egds, existential heads, complex NREs, egd-failure and
// cyclic-reliance cases — are compiled under ChaseAlgorithm::kDelta at
// 1, 2 and 8 workers and compared field-for-field against
// ChaseAlgorithm::kNaive: pattern bytes, PatternChaseStats, failure
// flag/reason, merge counts and null arenas. Engine-level solves compare
// ExchangeOutcome::ToString across ChasePolicy values, and the per-round
// observer re-checks reliance skipping soundness: a skipped live egd's
// matches bind only already-equal values; a dead egd never matches.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chase/chase_compiler.h"
#include "chase/delta_chase.h"
#include "chase/reliance.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/exchange_engine.h"
#include "graph/cnre.h"
#include "graph/nre_eval.h"
#include "obs/stats_registry.h"
#include "workload/scenario_parser.h"

namespace gdx {
namespace {

constexpr uint64_t kBatterySeeds = 220;  // >= 200 per the issue

Scenario Parse(const std::string& text) {
  Result<Scenario> s = ParseScenario(text);
  EXPECT_TRUE(s.ok()) << s.status().ToString() << "\n" << text;
  return std::move(s).value();
}

/// Random scenario text. Copy tgds over constants make egd matches clash
/// constants (§5 failure cases); existential heads mint nulls whose
/// merges cascade (cyclic reliances); underived labels yield dead rules.
std::string RandomScenarioText(uint64_t seed) {
  Rng rng(seed);
  const char* labels[] = {"a", "b", "c", "d", "hub"};
  std::string text = "relation R/2\nrelation S/2\n";
  const int num_consts = static_cast<int>(rng.UniformInt(3, 6));
  const int num_facts = static_cast<int>(rng.UniformInt(3, 8));
  for (int f = 0; f < num_facts; ++f) {
    const char* rel = rng.Bernoulli(0.5) ? "R" : "S";
    text += std::string("fact ") + rel + "(c" +
            std::to_string(rng.UniformInt(0, num_consts)) + ", c" +
            std::to_string(rng.UniformInt(0, num_consts)) + ")\n";
  }
  const char* body_vars[] = {"x", "y", "z"};
  const int num_st = static_cast<int>(rng.UniformInt(1, 4));
  for (int i = 0; i < num_st; ++i) {
    std::string body = rng.Bernoulli(0.5) ? "R(x, y)" : "S(x, y)";
    if (rng.Bernoulli(0.3)) body += rng.Bernoulli(0.5) ? ", S(y, z)"
                                                       : ", R(y, z)";
    const int num_heads = rng.Bernoulli(0.4) ? 2 : 1;
    std::string head;
    for (int h = 0; h < num_heads; ++h) {
      std::string nre = labels[rng.UniformInt(0, 4)];
      const double shape = rng.UniformDouble();
      if (shape < 0.15) {
        nre += std::string(" . ") + labels[rng.UniformInt(0, 4)];
      } else if (shape < 0.25) {
        nre += std::string(" + ") + labels[rng.UniformInt(0, 4)];
      } else if (shape < 0.32) {
        nre += "*";
      }
      std::string v1 = body_vars[rng.UniformInt(0, 2)];
      // Existential targets mint nulls — the values egd merges can move.
      std::string v2 = rng.Bernoulli(0.45)
                           ? "e" + std::to_string(rng.UniformInt(1, 2))
                           : body_vars[rng.UniformInt(0, 2)];
      if (h > 0) head += ", ";
      head += "(" + v1 + ", " + nre + ", " + v2 + ")";
    }
    text += "stgd " + body + " -> " + head + "\n";
  }
  const char* egd_vars[] = {"u1", "u2", "v1", "v2"};
  const int num_egds = static_cast<int>(rng.UniformInt(0, 3));
  for (int j = 0; j < num_egds; ++j) {
    const int num_atoms = rng.Bernoulli(0.5) ? 2 : 1;
    std::vector<std::string> used;
    std::string body;
    for (int atom = 0; atom < num_atoms; ++atom) {
      std::string lbl = labels[rng.UniformInt(0, 4)];
      if (rng.Bernoulli(0.2)) lbl += "*";
      std::string v1 = egd_vars[rng.UniformInt(0, 3)];
      std::string v2 = egd_vars[rng.UniformInt(0, 3)];
      used.push_back(v1);
      used.push_back(v2);
      if (atom > 0) body += ", ";
      body += "(" + v1 + ", " + lbl + ", " + v2 + ")";
    }
    std::string e1 = used[rng.UniformInt(0, used.size() - 1)];
    std::string e2 = used[rng.UniformInt(0, used.size() - 1)];
    text += "egd " + body + " -> " + e1 + " = " + e2 + "\n";
  }
  return text;
}

/// Everything a Compile produces that the differential compare inspects.
struct CompileRun {
  bool failed = false;
  std::string failure_reason;
  std::string pattern;  // empty when failed (the pattern is meaningless)
  PatternChaseStats stats;
  size_t egd_merges = 0;
  size_t base_nulls = 0;
  std::vector<std::string> null_labels;
  size_t universe_nulls = 0;
  DeltaChaseStats delta;
};

CompileRun RunCompile(const std::string& text, ChaseAlgorithm algorithm,
                      ThreadPool* pool, size_t max_workers,
                      const DeltaChaseObserver& observer = {}) {
  AutomatonNreEvaluator eval;
  Scenario s = Parse(text);
  ChaseCompileOptions options;
  options.algorithm = algorithm;
  options.pool = pool;
  options.max_workers = max_workers;
  options.observer = observer;
  ChasedScenarioPtr artifact = ChaseCompiler::Compile(
      s.setting, *s.instance, *s.universe, eval, options);
  CompileRun run;
  run.failed = artifact->failed;
  run.failure_reason = artifact->failure_reason;
  if (!artifact->failed) {
    run.pattern = artifact->pattern.ToString(*s.universe, *s.alphabet);
  }
  run.stats = artifact->stats;
  run.egd_merges = artifact->egd_merges;
  run.base_nulls = artifact->base_nulls;
  run.null_labels = artifact->null_labels;
  run.universe_nulls = s.universe->num_nulls();
  run.delta = artifact->delta;
  return run;
}

void ExpectRunsEqual(const CompileRun& naive, const CompileRun& delta,
                     uint64_t seed, size_t workers) {
  const std::string ctx = "seed " + std::to_string(seed) + " at " +
                          std::to_string(workers) + " workers";
  EXPECT_EQ(naive.failed, delta.failed) << ctx;
  EXPECT_EQ(naive.failure_reason, delta.failure_reason) << ctx;
  EXPECT_EQ(naive.pattern, delta.pattern) << ctx;
  EXPECT_EQ(naive.stats.triggers, delta.stats.triggers) << ctx;
  EXPECT_EQ(naive.stats.edges_added, delta.stats.edges_added) << ctx;
  EXPECT_EQ(naive.stats.nulls_created, delta.stats.nulls_created) << ctx;
  EXPECT_EQ(naive.egd_merges, delta.egd_merges) << ctx;
  EXPECT_EQ(naive.base_nulls, delta.base_nulls) << ctx;
  EXPECT_EQ(naive.null_labels, delta.null_labels) << ctx;
  EXPECT_EQ(naive.universe_nulls, delta.universe_nulls) << ctx;
}

// --- the randomized differential battery ------------------------------------

TEST(DeltaChaseBatteryTest, ByteIdenticalToNaiveAt1And2And8Workers) {
  ThreadPool pool2(2), pool8(8);
  struct WorkerSetup {
    ThreadPool* pool;
    size_t max_workers;
  };
  const WorkerSetup setups[] = {{nullptr, 1}, {&pool2, 2}, {&pool8, 8}};

  size_t total_skipped = 0, total_failures = 0, total_merges = 0;
  for (uint64_t seed = 1; seed <= kBatterySeeds; ++seed) {
    const std::string text = RandomScenarioText(seed);
    const CompileRun naive =
        RunCompile(text, ChaseAlgorithm::kNaive, nullptr, 1);
    EXPECT_EQ(naive.delta.delta_rounds, 0u) << "naive runs no delta rounds";
    EXPECT_EQ(naive.delta.evaluated_rules, 0u);
    for (const WorkerSetup& setup : setups) {
      const CompileRun delta = RunCompile(text, ChaseAlgorithm::kDelta,
                                          setup.pool, setup.max_workers);
      ExpectRunsEqual(naive, delta, seed, setup.max_workers);
      if (setup.max_workers == 1) {
        total_skipped += delta.delta.skipped_rules;
        total_failures += delta.failed ? 1 : 0;
        total_merges += delta.egd_merges;
      }
    }
  }
  // The corpus must actually exercise the interesting regimes: reliance
  // skipping fires, some chases fail (§5 constant clashes), some merge.
  EXPECT_GT(total_skipped, 0u) << "battery never skipped a rule";
  EXPECT_GT(total_failures, 0u) << "battery never hit an egd failure";
  EXPECT_GT(total_merges, 0u) << "battery never merged";
}

// --- reliance-skipping soundness (per-round observer re-check) --------------

TEST(DeltaChaseSoundnessTest, SkippedRulesYieldNoNewMergesInAnyRound) {
  AutomatonNreEvaluator eval;
  ThreadPool pool(2);
  size_t rounds_checked = 0, skipped_checked = 0;
  for (uint64_t seed = 1; seed <= kBatterySeeds; ++seed) {
    const std::string text = RandomScenarioText(seed);
    Scenario s = Parse(text);
    if (s.setting.egds.empty()) continue;
    const RelianceGraph reliance = RelianceGraph::Build(s.setting);
    auto observer = [&](const DeltaRoundInfo& info) {
      ++rounds_checked;
      const Graph definite = info.pattern->DefiniteGraph();
      for (size_t j : info.skipped_egds) {
        ++skipped_checked;
        const TargetEgd& egd = s.setting.egds[j];
        CnreMatcher matcher(&egd.body, &definite, eval);
        size_t matches = 0;
        matcher.FindMatches(
            CnreBinding(egd.body.num_vars(), std::nullopt),
            [&](const CnreBinding& m) {
              ++matches;
              // The instrumented naive re-check: a skipped rule's match
              // must demand nothing — x1 and x2 already equal.
              if (m[egd.x1].has_value() && m[egd.x2].has_value()) {
                EXPECT_EQ(*m[egd.x1], *m[egd.x2])
                    << "seed " << seed << " round " << info.round
                    << " skipped egd " << j << " would have merged";
              }
              return true;
            });
        if (reliance.EgdDead(j)) {
          EXPECT_EQ(matches, 0u)
              << "seed " << seed << " dead egd " << j << " matched";
        }
      }
    };
    ChaseCompileOptions options;
    options.pool = &pool;
    options.max_workers = 2;
    options.observer = observer;
    ChaseCompiler::Compile(s.setting, *s.instance, *s.universe, eval,
                           options);
  }
  EXPECT_GT(rounds_checked, 0u);
  EXPECT_GT(skipped_checked, 0u);
}

// --- crafted regimes --------------------------------------------------------

TEST(DeltaChaseTest, DeadEgdIsSkippedEveryRoundAndCountersAdd) {
  // ghost is never derived: its egd is dead; the live hub egd cascades.
  const std::string text = R"(
    relation R/2
    fact R(c1, c2)
    fact R(c1, c3)
    fact R(c2, c4)
    stgd R(x, y) -> (x, a, y)
    stgd R(x, y) -> (x, hub, e1)
    egd (u1, hub, v1), (u1, hub, v2) -> v1 = v2
    egd (u1, ghost, v1), (u2, ghost, v1) -> u1 = u2
  )";
  const CompileRun naive =
      RunCompile(text, ChaseAlgorithm::kNaive, nullptr, 1);
  const CompileRun delta =
      RunCompile(text, ChaseAlgorithm::kDelta, nullptr, 1);
  ExpectRunsEqual(naive, delta, 0, 1);
  ASSERT_FALSE(delta.failed);
  EXPECT_GT(delta.egd_merges, 0u) << "the hub nulls of c1 must collapse";
  EXPECT_GT(delta.delta.delta_rounds, 1u);
  // The dead egd is skipped in every round (including the final all-skip
  // round); the seed round evaluates both st-tgds.
  EXPECT_GE(delta.delta.skipped_rules, delta.delta.delta_rounds - 1);
  EXPECT_GE(delta.delta.evaluated_rules, 3u);
  EXPECT_GT(delta.delta.strata, 0u);
  EXPECT_EQ(naive.delta.skipped_rules, 0u);
}

TEST(DeltaChaseTest, ConstantClashFailsIdentically) {
  const std::string text = R"(
    relation R/2
    fact R(c1, hx)
    fact R(c2, hx)
    stgd R(x, y) -> (x, h, y)
    egd (u1, h, v1), (u2, h, v1) -> u1 = u2
  )";
  ThreadPool pool(8);
  const CompileRun naive =
      RunCompile(text, ChaseAlgorithm::kNaive, nullptr, 1);
  ASSERT_TRUE(naive.failed);
  for (size_t workers : {1u, 8u}) {
    const CompileRun delta =
        RunCompile(text, ChaseAlgorithm::kDelta,
                   workers == 1 ? nullptr : &pool, workers);
    ExpectRunsEqual(naive, delta, 0, workers);
    EXPECT_TRUE(delta.failed);
    EXPECT_FALSE(delta.failure_reason.empty());
  }
}

TEST(DeltaChaseTest, EgdFreeScenarioIsSeedRoundOnly) {
  const std::string text = R"(
    relation R/2
    fact R(c1, c2)
    stgd R(x, y) -> (x, a . b*, e1), (e1, hub, y)
  )";
  const CompileRun naive =
      RunCompile(text, ChaseAlgorithm::kNaive, nullptr, 1);
  const CompileRun delta =
      RunCompile(text, ChaseAlgorithm::kDelta, nullptr, 1);
  ExpectRunsEqual(naive, delta, 0, 1);
  EXPECT_EQ(delta.delta.delta_rounds, 1u) << "seed round only";
  EXPECT_EQ(delta.delta.skipped_rules, 0u);
  EXPECT_EQ(delta.delta.evaluated_rules, 1u);
}

// --- engine-level differential ----------------------------------------------

EngineOptions SmallEngineOptions(ChasePolicy policy, size_t workers) {
  EngineOptions options;
  options.chase_policy = policy;
  options.intra_solve_threads = workers;
  options.instantiation.max_witnesses_per_edge = 2;
  options.max_solutions = 4;
  options.max_candidates = 1u << 14;
  return options;
}

TEST(DeltaChaseEngineTest, OutcomesByteIdenticalAcrossPoliciesAndWorkers) {
  obs::StatsRegistry registry;
  EngineOptions delta_options = SmallEngineOptions(ChasePolicy::kDelta, 8);
  delta_options.stats = &registry;
  ExchangeEngine naive_engine(
      SmallEngineOptions(ChasePolicy::kNaive, 1));
  ExchangeEngine delta_engine(delta_options);
  ExchangeEngine delta_seq_engine(
      SmallEngineOptions(ChasePolicy::kDelta, 1));

  Metrics naive_total, delta_total;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    const std::string text = RandomScenarioText(seed);
    Scenario for_naive = Parse(text);
    Scenario for_delta = Parse(text);
    Scenario for_delta_seq = Parse(text);
    Result<ExchangeOutcome> naive = naive_engine.Solve(for_naive);
    Result<ExchangeOutcome> delta = delta_engine.Solve(for_delta);
    Result<ExchangeOutcome> delta_seq =
        delta_seq_engine.Solve(for_delta_seq);
    ASSERT_TRUE(naive.ok()) << "seed " << seed;
    ASSERT_TRUE(delta.ok()) << "seed " << seed;
    ASSERT_TRUE(delta_seq.ok()) << "seed " << seed;
    const std::string naive_out =
        naive->ToString(*for_naive.universe, *for_naive.alphabet);
    EXPECT_EQ(naive_out,
              delta->ToString(*for_delta.universe, *for_delta.alphabet))
        << "seed " << seed << " (kNaive vs kDelta @8)";
    EXPECT_EQ(naive_out,
              delta_seq->ToString(*for_delta_seq.universe,
                                  *for_delta_seq.alphabet))
        << "seed " << seed << " (kNaive vs kDelta @1)";
    naive_total.Accumulate(naive->metrics);
    delta_total.Accumulate(delta->metrics);
  }
  // The chase work itself is policy-invariant...
  EXPECT_EQ(naive_total.chase_triggers, delta_total.chase_triggers);
  EXPECT_EQ(naive_total.chase_merges, delta_total.chase_merges);
  // ...while the delta counters separate the two modes: the ISSUE 9
  // acceptance criterion (skipped rules on a multi-rule corpus) both as
  // per-solve metrics and through the engine.chase.* registry counters.
  EXPECT_EQ(naive_total.chase_delta_rounds, 0u);
  EXPECT_EQ(naive_total.chase_skipped_rules, 0u);
  EXPECT_GT(delta_total.chase_delta_rounds, 0u);
  EXPECT_GT(delta_total.chase_skipped_rules, 0u);
  EXPECT_GT(delta_total.chase_strata, 0u);
  EXPECT_GT(registry.GetCounter("engine.chase.delta_rounds")->Value(), 0u);
  EXPECT_GT(registry.GetCounter("engine.chase.skipped_rules")->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("engine.chase.skipped_rules")->Value(),
            delta_total.chase_skipped_rules);
}

TEST(DeltaChaseEngineTest, ChasedMemoHitReportsZeroDeltaCounters) {
  ExchangeEngine engine(SmallEngineOptions(ChasePolicy::kDelta, 1));
  const std::string text = RandomScenarioText(3);
  Scenario first = Parse(text);
  Scenario second = Parse(text);
  Result<ExchangeOutcome> cold = engine.Solve(first);
  Result<ExchangeOutcome> warm = engine.Solve(second);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(cold->metrics.chase_delta_rounds, 0u);
  EXPECT_EQ(warm->metrics.chase_cache_hits, 1u);
  // Like chase_triggers, the delta counters describe work that ran; a
  // memo hit ran none.
  EXPECT_EQ(warm->metrics.chase_delta_rounds, 0u);
  EXPECT_EQ(warm->metrics.chase_skipped_rules, 0u);
  EXPECT_EQ(warm->metrics.chase_strata, 0u);
  EXPECT_EQ(cold->ToString(*first.universe, *first.alphabet),
            warm->ToString(*second.universe, *second.alphabet));
}

}  // namespace
}  // namespace gdx
