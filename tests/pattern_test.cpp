// Tests for graph patterns: construction, definite subgraphs, homomorphism
// search (Rep membership) and witness enumeration / instantiation.
#include <gtest/gtest.h>

#include "graph/nre_parser.h"
#include "pattern/homomorphism.h"
#include "pattern/pattern.h"
#include "pattern/witness.h"

namespace gdx {
namespace {

class PatternFixture : public ::testing::Test {
 protected:
  Universe universe_;
  Alphabet alphabet_;
  AutomatonNreEvaluator eval_;

  Value V(const std::string& name) { return universe_.MakeConstant(name); }
  NrePtr Parse(const std::string& text) {
    Result<NrePtr> r = ParseNre(text, alphabet_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }
  SymbolId Sym(const std::string& name) { return alphabet_.Intern(name); }
};

TEST_F(PatternFixture, EdgeDedupAndDefiniteGraph) {
  GraphPattern pi;
  NrePtr ff = Parse("f . f*");
  NrePtr h = Parse("h");
  Value n = universe_.FreshNull();
  pi.AddEdge(V("c1"), ff, n);
  pi.AddEdge(V("c1"), ff, n);  // same NrePtr: deduped
  pi.AddEdge(n, h, V("hx"));
  EXPECT_EQ(pi.num_edges(), 2u);
  Graph definite = pi.DefiniteGraph();
  EXPECT_EQ(definite.num_edges(), 1u);  // only the single-symbol h edge
  EXPECT_TRUE(definite.HasEdge(n, Sym("h"), V("hx")));
  EXPECT_EQ(definite.num_nodes(), pi.num_nodes());
}

TEST_F(PatternFixture, HomomorphismIdentityOnConstants) {
  // Pattern: c1 =[a]=> N; graph: c1 -a-> d. N maps to d; c1 to itself.
  GraphPattern pi;
  Value n = universe_.FreshNull();
  pi.AddEdge(V("c1"), Parse("a"), n);

  Graph g;
  g.AddEdge(V("c1"), Sym("a"), V("d"));
  std::optional<Homomorphism> h = FindPatternHomomorphism(pi, g, eval_);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at(V("c1").raw()), V("c1"));
  EXPECT_EQ(h->at(n.raw()), V("d"));
}

TEST_F(PatternFixture, MissingConstantMeansNoHomomorphism) {
  GraphPattern pi;
  pi.AddEdge(V("c1"), Parse("a"), V("c2"));
  Graph g;
  g.AddEdge(V("c1"), Sym("a"), V("d"));  // no c2 in g
  EXPECT_FALSE(InRep(pi, g, eval_));
}

TEST_F(PatternFixture, NreEdgeMapsToPath) {
  // Pattern edge c1 =[f . f*]=> c2 maps onto a 3-step f path.
  GraphPattern pi;
  pi.AddEdge(V("c1"), Parse("f . f*"), V("c2"));
  Graph g;
  g.AddEdge(V("c1"), Sym("f"), V("m1"));
  g.AddEdge(V("m1"), Sym("f"), V("m2"));
  g.AddEdge(V("m2"), Sym("f"), V("c2"));
  EXPECT_TRUE(InRep(pi, g, eval_));

  Graph disconnected;
  disconnected.AddEdge(V("c1"), Sym("f"), V("m1"));
  disconnected.AddNode(V("c2"));
  EXPECT_FALSE(InRep(pi, disconnected, eval_));
}

TEST_F(PatternFixture, TwoNullsMayShareImage) {
  GraphPattern pi;
  Value n1 = universe_.FreshNull();
  Value n2 = universe_.FreshNull();
  pi.AddEdge(V("c1"), Parse("a"), n1);
  pi.AddEdge(V("c1"), Parse("a"), n2);
  Graph g;
  g.AddEdge(V("c1"), Sym("a"), V("only"));
  std::optional<Homomorphism> h = FindPatternHomomorphism(pi, g, eval_);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at(n1.raw()), V("only"));
  EXPECT_EQ(h->at(n2.raw()), V("only"));
}

TEST_F(PatternFixture, RewriteValuesMergesNodes) {
  GraphPattern pi;
  Value n1 = universe_.FreshNull();
  Value n2 = universe_.FreshNull();
  pi.AddEdge(V("c1"), Parse("a"), n1);
  pi.AddEdge(V("c1"), Parse("a"), n2);
  EXPECT_EQ(pi.num_nodes(), 3u);
  pi.RewriteValues([&](Value v) { return v == n2 ? n1 : v; });
  EXPECT_EQ(pi.num_nodes(), 2u);
  EXPECT_EQ(pi.num_edges(), 1u);  // identical edges merged
}

// --- Witness enumeration -----------------------------------------------

TEST_F(PatternFixture, WitnessSymbolIsSingleStep) {
  std::vector<Witness> ws = EnumerateWitnesses(Parse("a"), 4, 8);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws[0].NumEdges(), 1u);
  EXPECT_FALSE(ws[0].IsEpsilonChain());
}

TEST_F(PatternFixture, WitnessStarOrderedByLength) {
  std::vector<Witness> ws = EnumerateWitnesses(Parse("a*"), 3, 8);
  ASSERT_GE(ws.size(), 4u);  // ε, a, aa, aaa
  EXPECT_EQ(ws[0].NumEdges(), 0u);
  EXPECT_TRUE(ws[0].IsEpsilonChain());
  EXPECT_EQ(ws[1].NumEdges(), 1u);
  EXPECT_EQ(ws[2].NumEdges(), 2u);
  EXPECT_EQ(ws[3].NumEdges(), 3u);
}

TEST_F(PatternFixture, WitnessUnionInterleavesChoices) {
  std::vector<Witness> ws = EnumerateWitnesses(Parse("a + b . c"), 4, 8);
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].NumEdges(), 1u);  // a
  EXPECT_EQ(ws[1].NumEdges(), 2u);  // b . c
}

TEST_F(PatternFixture, WitnessNestBecomesBranch) {
  std::vector<Witness> ws = EnumerateWitnesses(Parse("a [b]"), 4, 8);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws[0].NumEdges(), 2u);  // a step + b branch edge
  EXPECT_EQ(ws[0].steps.size(), 1u);
}

TEST_F(PatternFixture, MaterializeSimplePath) {
  std::vector<Witness> ws = EnumerateWitnesses(Parse("a . a"), 4, 8);
  ASSERT_EQ(ws.size(), 1u);
  Graph g;
  ASSERT_TRUE(
      MaterializeWitness(g, universe_, V("s"), V("t"), ws[0]).ok());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_nodes(), 3u);  // s, fresh mid, t
}

TEST_F(PatternFixture, MaterializeBackwardStep) {
  std::vector<Witness> ws = EnumerateWitnesses(Parse("a-"), 4, 8);
  ASSERT_EQ(ws.size(), 1u);
  Graph g;
  ASSERT_TRUE(
      MaterializeWitness(g, universe_, V("s"), V("t"), ws[0]).ok());
  // Backward traversal materializes the edge t -a-> s.
  EXPECT_TRUE(g.HasEdge(V("t"), Sym("a"), V("s")));
}

TEST_F(PatternFixture, EpsilonWitnessRejectedBetweenDistinctNodes) {
  std::vector<Witness> ws = EnumerateWitnesses(Parse("a*"), 2, 4);
  ASSERT_FALSE(ws.empty());
  ASSERT_TRUE(ws[0].IsEpsilonChain());
  Graph g;
  EXPECT_FALSE(
      MaterializeWitness(g, universe_, V("s"), V("t"), ws[0]).ok());
  EXPECT_TRUE(
      MaterializeWitness(g, universe_, V("s"), V("s"), ws[0]).ok());
}

TEST_F(PatternFixture, InstantiateCanonicalRealizesPattern) {
  // The instantiated canonical graph must be represented by the pattern.
  GraphPattern pi;
  Value n = universe_.FreshNull();
  pi.AddEdge(V("c1"), Parse("f . f*"), n);
  pi.AddEdge(n, Parse("h"), V("hx"));
  pi.AddEdge(n, Parse("f . f*"), V("c2"));
  PatternInstantiator inst(&pi, &universe_, {});
  Result<Graph> g = inst.InstantiateCanonical();
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(InRep(pi, *g, eval_));
  EXPECT_EQ(g->num_edges(), 3u);  // shortest witnesses: single f, h, f
}

TEST_F(PatternFixture, InstantiateChoicesGrowGraphs) {
  GraphPattern pi;
  pi.AddEdge(V("c1"), Parse("f . f*"), V("c2"));
  PatternInstantiator inst(&pi, &universe_, {});
  ASSERT_EQ(inst.witness_lists().size(), 1u);
  ASSERT_GE(inst.witness_lists()[0].size(), 3u);
  // Choice 0 = shortest (single f edge); later choices are longer.
  Result<Graph> g0 = inst.Instantiate({0});
  Result<Graph> g1 = inst.Instantiate({1});
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  EXPECT_LT(g0->num_edges(), g1->num_edges());
  EXPECT_TRUE(InRep(pi, *g0, eval_));
  EXPECT_TRUE(InRep(pi, *g1, eval_));
}

TEST_F(PatternFixture, NumCombinationsMultiplies) {
  GraphPattern pi;
  pi.AddEdge(V("c1"), Parse("a + b"), V("c2"));
  pi.AddEdge(V("c2"), Parse("c + d"), V("c3"));
  InstantiationOptions options;
  options.max_edges_per_witness = 1;
  PatternInstantiator inst(&pi, &universe_, options);
  EXPECT_EQ(inst.NumCombinations(), 4u);
}

}  // namespace
}  // namespace gdx
