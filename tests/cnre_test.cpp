// Tests for CNRE conjunctive queries over graphs: joins, constants, bound
// frontiers, early termination and the CnreMatcher reuse path.
#include <gtest/gtest.h>

#include "graph/cnre.h"
#include "graph/nre_parser.h"

namespace gdx {
namespace {

class CnreFixture : public ::testing::Test {
 protected:
  Universe universe_;
  Alphabet alphabet_;
  AutomatonNreEvaluator eval_;

  Value V(const std::string& name) { return universe_.MakeConstant(name); }
  NrePtr Parse(const std::string& text) {
    Result<NrePtr> r = ParseNre(text, alphabet_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  /// Diamond: s -a-> m1 -b-> t, s -a-> m2 -b-> t, m1 -c-> m1.
  Graph Diamond() {
    Graph g;
    g.AddEdge(V("s"), alphabet_.Intern("a"), V("m1"));
    g.AddEdge(V("s"), alphabet_.Intern("a"), V("m2"));
    g.AddEdge(V("m1"), alphabet_.Intern("b"), V("t"));
    g.AddEdge(V("m2"), alphabet_.Intern("b"), V("t"));
    g.AddEdge(V("m1"), alphabet_.Intern("c"), V("m1"));
    return g;
  }
};

TEST_F(CnreFixture, SingleAtomEvaluation) {
  Graph g = Diamond();
  CnreQuery q;
  VarId x = q.InternVar("x");
  VarId y = q.InternVar("y");
  q.AddAtom(Term::Var(x), Parse("a"), Term::Var(y));
  q.SetHead({x, y});
  std::vector<std::vector<Value>> out = EvaluateCnre(q, g, eval_);
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(CnreFixture, TwoAtomJoin) {
  Graph g = Diamond();
  CnreQuery q;
  VarId x = q.InternVar("x");
  VarId y = q.InternVar("y");
  VarId z = q.InternVar("z");
  q.AddAtom(Term::Var(x), Parse("a"), Term::Var(y));
  q.AddAtom(Term::Var(y), Parse("b"), Term::Var(z));
  q.SetHead({x, z});
  std::vector<std::vector<Value>> out = EvaluateCnre(q, g, eval_);
  // (s,t) via m1 and via m2, deduplicated.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (std::vector<Value>{V("s"), V("t")}));
}

TEST_F(CnreFixture, ConstantTermsFilter) {
  Graph g = Diamond();
  CnreQuery q;
  VarId y = q.InternVar("y");
  q.AddAtom(Term::Const(V("s")), Parse("a"), Term::Var(y));
  q.AddAtom(Term::Var(y), Parse("c"), Term::Var(y));  // self-loop filter
  q.SetHead({y});
  std::vector<std::vector<Value>> out = EvaluateCnre(q, g, eval_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], V("m1"));
}

TEST_F(CnreFixture, SameVariableBothSides) {
  Graph g = Diamond();
  CnreQuery q;
  VarId x = q.InternVar("x");
  q.AddAtom(Term::Var(x), Parse("c"), Term::Var(x));
  q.SetHead({x});
  std::vector<std::vector<Value>> out = EvaluateCnre(q, g, eval_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], V("m1"));
}

TEST_F(CnreFixture, BoundFrontierSatisfiability) {
  Graph g = Diamond();
  CnreQuery q;
  VarId x = q.InternVar("x");
  VarId y = q.InternVar("y");
  q.AddAtom(Term::Var(x), Parse("a . b"), Term::Var(y));

  CnreBinding initial(q.num_vars());
  initial[x] = V("s");
  initial[y] = V("t");
  EXPECT_TRUE(CnreSatisfiable(q, g, eval_, initial));

  initial[y] = V("m1");
  EXPECT_FALSE(CnreSatisfiable(q, g, eval_, initial));
}

TEST_F(CnreFixture, MatcherReuseAcrossBindings) {
  Graph g = Diamond();
  CnreQuery q;
  VarId x = q.InternVar("x");
  VarId y = q.InternVar("y");
  q.AddAtom(Term::Var(x), Parse("a"), Term::Var(y));
  CnreMatcher matcher(&q, &g, eval_);

  size_t total = 0;
  matcher.FindMatches({}, [&](const CnreBinding&) {
    ++total;
    return true;
  });
  EXPECT_EQ(total, 2u);

  CnreBinding initial(q.num_vars());
  initial[y] = V("m2");
  size_t narrowed = 0;
  matcher.FindMatches(initial, [&](const CnreBinding& b) {
    EXPECT_EQ(*b[x], V("s"));
    ++narrowed;
    return true;
  });
  EXPECT_EQ(narrowed, 1u);
}

TEST_F(CnreFixture, EarlyTerminationStopsEnumeration) {
  Graph g = Diamond();
  CnreQuery q;
  VarId x = q.InternVar("x");
  VarId y = q.InternVar("y");
  q.AddAtom(Term::Var(x), Parse("a + b + c"), Term::Var(y));
  size_t seen = 0;
  FindCnreMatches(q, g, eval_, {}, [&](const CnreBinding&) {
    ++seen;
    return false;  // stop immediately
  });
  EXPECT_EQ(seen, 1u);
}

TEST_F(CnreFixture, SharedNreRelationsAcrossAtoms) {
  // Two atoms with structurally equal NREs share the precomputed relation;
  // results must match the unshared case.
  Graph g = Diamond();
  CnreQuery q;
  VarId x = q.InternVar("x");
  VarId y = q.InternVar("y");
  VarId z = q.InternVar("z");
  q.AddAtom(Term::Var(x), Parse("a"), Term::Var(y));
  q.AddAtom(Term::Var(x), Parse("a"), Term::Var(z));
  q.SetHead({y, z});
  std::vector<std::vector<Value>> out = EvaluateCnre(q, g, eval_);
  EXPECT_EQ(out.size(), 4u);  // {m1,m2} x {m1,m2}
}

TEST_F(CnreFixture, StarAtomWithCycle) {
  Graph g;
  g.AddEdge(V("p"), alphabet_.Intern("a"), V("q"));
  g.AddEdge(V("q"), alphabet_.Intern("a"), V("p"));
  CnreQuery q;
  VarId x = q.InternVar("x");
  VarId y = q.InternVar("y");
  q.AddAtom(Term::Var(x), Parse("a*"), Term::Var(y));
  q.SetHead({x, y});
  std::vector<std::vector<Value>> out = EvaluateCnre(q, g, eval_);
  EXPECT_EQ(out.size(), 4u);  // both nodes reach both
}

TEST_F(CnreFixture, BooleanQueryWithNoAtomsMatchesTrivially) {
  Graph g = Diamond();
  CnreQuery q;
  EXPECT_TRUE(CnreSatisfiable(q, g, eval_, {}));
}

}  // namespace
}  // namespace gdx
