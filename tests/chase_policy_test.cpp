// Tests for the egd-chase policy ablation, pattern saturation (§5's
// sameAs / target-tgd generalization), enumeration dedup, and the naive
// reference CQ evaluator.
#include <gtest/gtest.h>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "chase/pattern_saturation.h"
#include "common/rng.h"
#include "exchange/parser.h"
#include "graph/isomorphism.h"
#include "relational/eval.h"
#include "solver/existence.h"
#include "workload/flights.h"
#include "workload/scenario_parser.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

std::string PatternSignature(const GraphPattern& pi, const Scenario& s) {
  return pi.ToString(*s.universe, *s.alphabet);
}

TEST(EgdChasePolicyTest, EagerAndDeferredReachSameFixpoint) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  GraphPattern deferred =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  GraphPattern eager = deferred;
  EgdChaseResult r1 = ChasePatternEgds(deferred, s.setting.egds, eval,
                                       EgdChasePolicy::kDeferredRounds);
  EgdChaseResult r2 = ChasePatternEgds(eager, s.setting.egds, eval,
                                       EgdChasePolicy::kEagerRestart);
  EXPECT_FALSE(r1.failed);
  EXPECT_FALSE(r2.failed);
  EXPECT_EQ(r1.merges, r2.merges);
  EXPECT_EQ(PatternSignature(deferred, s), PatternSignature(eager, s));
}

TEST(EgdChasePolicyTest, PoliciesAgreeOnGeneratedWorkloads) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FlightWorkloadParams params;
    params.seed = seed;
    params.num_flights = 12;
    params.num_hotels = 3;
    params.mode = FlightConstraintMode::kEgd;
    Scenario s = MakeFlightScenario(params);
    GraphPattern a =
        ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
    GraphPattern b = a;
    EgdChaseResult ra = ChasePatternEgds(a, s.setting.egds, eval,
                                         EgdChasePolicy::kDeferredRounds);
    EgdChaseResult rb = ChasePatternEgds(b, s.setting.egds, eval,
                                         EgdChasePolicy::kEagerRestart);
    EXPECT_EQ(ra.failed, rb.failed) << "seed " << seed;
    if (!ra.failed) {
      EXPECT_EQ(a.num_nodes(), b.num_nodes()) << "seed " << seed;
      EXPECT_EQ(a.num_edges(), b.num_edges()) << "seed " << seed;
    }
  }
}

TEST(EgdChasePolicyTest, EgdOrderDoesNotChangeFixpoint) {
  // Confluence: permuting the egd list leaves the chased pattern equal.
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Result<TargetEgd> extra = ParseTargetEgd(
      "(x1, h, x3), (x2, h, x3) -> x2 = x1", *s.alphabet, *s.universe);
  ASSERT_TRUE(extra.ok());
  std::vector<TargetEgd> forward = {s.setting.egds[0], *extra};
  std::vector<TargetEgd> backward = {*extra, s.setting.egds[0]};
  GraphPattern a =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  GraphPattern b = a;
  ChasePatternEgds(a, forward, eval);
  ChasePatternEgds(b, backward, eval);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(PatternSaturationTest, SameAsEdgesAddedToPattern) {
  // Single-symbol mapping so hotel cities are definite; sameAs saturation
  // must link the two hx cities inside the pattern itself.
  Result<Scenario> s = ParseScenario(R"(
    relation Flight/3
    relation Hotel/2
    fact Flight(01, c1, c2)
    fact Flight(02, c3, c2)
    fact Hotel(01, hx)
    fact Hotel(02, hx)
    stgd Flight(x1, x2, x3), Hotel(x1, x4) ->
         (x2, f, y), (y, h, x4), (y, f, x3)
    sameas (x1, h, x3), (x2, h, x3) -> (x1, sameAs, x2)
  )");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  GraphPattern pi =
      ChaseToPattern(*s->instance, s->setting.st_tgds, *s->universe);
  size_t before = pi.num_edges();
  PatternSaturationStats stats;
  ASSERT_TRUE(SaturatePatternSameAs(pi, s->setting.sameas, *s->alphabet,
                                    eval, &stats)
                  .ok());
  EXPECT_EQ(stats.sameas_edges_added, 2u);  // N1<->N2 both directions
  EXPECT_EQ(pi.num_edges(), before + 2);
}

TEST(PatternSaturationTest, TargetTgdAddsHeadEdges) {
  Result<Scenario> s = ParseScenario(R"(
    relation R/2
    fact R(a, b)
    stgd R(x, y) -> (x, e, y)
    ttgd (x, e, y) -> (y, back, x)
  )");
  ASSERT_TRUE(s.ok());
  GraphPattern pi =
      ChaseToPattern(*s->instance, s->setting.st_tgds, *s->universe);
  PatternSaturationStats stats;
  ASSERT_TRUE(SaturatePatternTargetTgds(pi, s->setting.target_tgds,
                                        *s->universe, eval, &stats)
                  .ok());
  EXPECT_EQ(stats.tgd_triggers_fired, 1u);
  EXPECT_EQ(pi.num_edges(), 2u);
  // Fixpoint reached: the back edge's own trigger is satisfied.
  PatternSaturationStats stats2;
  ASSERT_TRUE(SaturatePatternTargetTgds(pi, s->setting.target_tgds,
                                        *s->universe, eval, &stats2)
                  .ok());
  EXPECT_EQ(stats2.tgd_triggers_fired, 0u);
}

TEST(PatternSaturationTest, DivergentTgdHitsBound) {
  Result<Scenario> s = ParseScenario(R"(
    relation R/2
    fact R(a, b)
    stgd R(x, y) -> (x, e, y)
    ttgd (x, e, y) -> (y, e, z)
  )");
  ASSERT_TRUE(s.ok());
  GraphPattern pi =
      ChaseToPattern(*s->instance, s->setting.st_tgds, *s->universe);
  Status st = SaturatePatternTargetTgds(pi, s->setting.target_tgds,
                                        *s->universe, eval, nullptr, 8);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(EnumerateSolutionsTest, IsomorphicDedupShrinksTheList) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  ExistenceOptions with_dedup;
  with_dedup.instantiation.max_witnesses_per_edge = 3;
  with_dedup.dedup_isomorphic = true;
  ExistenceOptions without_dedup = with_dedup;
  without_dedup.dedup_isomorphic = false;
  std::vector<Graph> deduped =
      ExistenceSolver(&eval, with_dedup)
          .EnumerateSolutions(s.setting, *s.instance, *s.universe, 32);
  std::vector<Graph> raw =
      ExistenceSolver(&eval, without_dedup)
          .EnumerateSolutions(s.setting, *s.instance, *s.universe, 32);
  EXPECT_LE(deduped.size(), raw.size());
  EXPECT_GE(deduped.size(), 2u);
  // Deduped list is pairwise non-isomorphic.
  for (size_t i = 0; i < deduped.size(); ++i) {
    for (size_t j = i + 1; j < deduped.size(); ++j) {
      EXPECT_FALSE(IsomorphicUpToNulls(deduped[i], deduped[j]));
    }
  }
}

// --- EvaluateCqNaive agreement property -----------------------------------

class CqAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqAgreement, BacktrackingMatchesNaive) {
  Rng rng(GetParam());
  Schema schema;
  RelationId r = *schema.AddRelation("R", 2);
  RelationId p = *schema.AddRelation("P", 1);
  Universe universe;
  Instance instance(&schema);
  std::vector<Value> domain;
  for (int i = 0; i < 5; ++i) {
    domain.push_back(universe.MakeConstant("d" + std::to_string(i)));
  }
  for (int i = 0; i < 10; ++i) {
    (void)instance.AddFact(
        r, {domain[rng.NextU64() % domain.size()],
            domain[rng.NextU64() % domain.size()]});
  }
  for (int i = 0; i < 3; ++i) {
    (void)instance.AddFact(p, {domain[rng.NextU64() % domain.size()]});
  }
  // Query: R(x,y), R(y,z), P(x) -> x, z   (a small join).
  ConjunctiveQuery q(&schema);
  VarId x = q.InternVar("x");
  VarId y = q.InternVar("y");
  VarId z = q.InternVar("z");
  q.AddAtom(RelAtom{r, {Term::Var(x), Term::Var(y)}});
  q.AddAtom(RelAtom{r, {Term::Var(y), Term::Var(z)}});
  q.AddAtom(RelAtom{p, {Term::Var(x)}});
  q.SetHead({x, z});

  std::vector<Tuple> fast = EvaluateCq(q, instance);
  std::vector<Tuple> slow = EvaluateCqNaive(q, instance);
  auto sorter = [](const Tuple& a, const Tuple& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].raw() != b[i].raw()) return a[i].raw() < b[i].raw();
    }
    return false;
  };
  std::sort(fast.begin(), fast.end(), sorter);
  std::sort(slow.begin(), slow.end(), sorter);
  EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqAgreement,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace gdx
