// Tests for the chase engines: pattern chase (Figure 3), adapted egd chase
// (Figure 5, Example 5.2/Figure 6), graph egd chase, sameAs completion,
// target tgd chase, and the §3.1 relational lowering (Figure 2).
#include <gtest/gtest.h>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "chase/relational_lowering.h"
#include "chase/sameas_completion.h"
#include "chase/target_tgd_chase.h"
#include "exchange/parser.h"
#include "exchange/solution_check.h"
#include "pattern/homomorphism.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

TEST(PatternChaseTest, Figure3UniversalRepresentative) {
  // Example 3.2: chase of Example 2.2's instance with M_st only.
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kNone);
  PatternChaseStats stats;
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe, &stats);
  // 3 triggers x 3 head atoms = 9 edges; 3 fresh nulls (N1, N2, N3);
  // nodes: c1, c2, c3, hx, hy + 3 nulls = 8... wait — paper Figure 3 shows
  // 7 nodes + hx/hy: c1, c3, N1, N2, N3, hy, hx, c2.
  EXPECT_EQ(stats.triggers, 3u);
  EXPECT_EQ(stats.nulls_created, 3u);
  EXPECT_EQ(pi.num_edges(), 9u);
  EXPECT_EQ(pi.num_nodes(), 8u);
}

TEST(PatternChaseTest, ChasedPatternRepresentsFigure1Solutions) {
  // The universal representative admits homomorphisms into every solution
  // (Figure 1's G1, G2, G3 drop their sameAs edges harmlessly).
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kNone);
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  Graph g1 = BuildFigure1G1(s);
  Graph g2 = BuildFigure1G2(s);
  Graph g3 = BuildFigure1G3(s);
  EXPECT_TRUE(InRep(pi, g1, eval));
  EXPECT_TRUE(InRep(pi, g2, eval));
  EXPECT_TRUE(InRep(pi, g3, eval));
  // A graph missing the c3 flight is not represented.
  Graph broken;
  SymbolId f = s.alphabet->Intern("f");
  SymbolId h = s.alphabet->Intern("h");
  Value n = s.universe->FreshNull();
  broken.AddEdge(s.universe->MakeConstant("c1"), f, n);
  broken.AddEdge(n, f, s.universe->MakeConstant("c2"));
  broken.AddEdge(n, h, s.universe->MakeConstant("hx"));
  broken.AddEdge(n, h, s.universe->MakeConstant("hy"));
  broken.AddNode(s.universe->MakeConstant("c3"));
  EXPECT_FALSE(InRep(pi, broken, eval));
}

TEST(EgdChaseTest, Figure5MergesHotelCities) {
  // Example 5.1: the adapted chase merges the two cities hosting hx.
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  EXPECT_EQ(pi.num_nodes(), 8u);
  EgdChaseResult result = ChasePatternEgds(pi, s.setting.egds, eval);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.merges, 1u);  // N1 (hx city of flight 01) <- N3
  EXPECT_EQ(pi.num_nodes(), 7u);  // Figure 5: one null gone
  EXPECT_EQ(pi.num_edges(), 7u);  // 5 f·f* edges + 2 h edges
}

TEST(EgdChaseTest, ConstantClashFails) {
  // Pattern: c1 -h-> hx, c2 -h-> hx with the hotel egd: c1 = c2 clash.
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  GraphPattern pi;
  SymbolId h = s.alphabet->Intern("h");
  NrePtr h_nre = Nre::Symbol(h);
  pi.AddEdge(s.universe->MakeConstant("c1"), h_nre,
             s.universe->MakeConstant("hx"));
  pi.AddEdge(s.universe->MakeConstant("c2"), h_nre,
             s.universe->MakeConstant("hx"));
  EgdChaseResult result = ChasePatternEgds(pi, s.setting.egds, eval);
  EXPECT_TRUE(result.failed);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(EgdChaseTest, Example52ChaseSucceedsDespiteNoSolution) {
  // Figure 6: the adapted chase runs to completion (the egd never fires on
  // the definite subgraph — the only edge label is a full NRE), yet no
  // solution exists. Chase success must NOT be read as "solution exists".
  Scenario s = MakeExample52Scenario();
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  ASSERT_EQ(pi.num_edges(), 1u);  // c1 =[a.(b*+c*).a]=> c2
  EgdChaseResult result = ChasePatternEgds(pi, s.setting.egds, eval);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.merges, 0u);
}

TEST(EgdChaseTest, GraphLevelChaseMergesNodes) {
  // Instantiate Figure 6(b): c1 -a-> N -a-> c2, then apply the egd
  // (x, a+b+c, y) -> x=y: N merges into c1, then c1 = c2 clashes.
  Scenario s = MakeExample52Scenario();
  Graph g;
  SymbolId a = s.alphabet->Intern("a");
  Value n = s.universe->FreshNull();
  Value c1 = s.universe->MakeConstant("c1");
  Value c2 = s.universe->MakeConstant("c2");
  g.AddEdge(c1, a, n);
  g.AddEdge(n, a, c2);
  EgdChaseResult result = ChaseGraphEgds(g, s.setting.egds, eval);
  EXPECT_TRUE(result.failed);  // the paper's "attempt to merge constants"
}

TEST(RelationalLoweringTest, Figure2ChasedSolution) {
  // Example 3.1: restricted mapping + egd. The chased solution has 7 nodes
  // (c1, c3, N1, N2, hy, hx, c2) and 7 edges (Figure 2): the egd merged
  // the two hx-cities.
  Scenario s = MakeExample31Scenario();
  ASSERT_TRUE(s.setting.IsSingleSymbolFragment());
  RelChaseStats stats;
  Result<Graph> g =
      RunLoweredExchange(s.setting, *s.instance, *s.universe, &stats);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_nodes(), 7u);
  EXPECT_EQ(g->num_edges(), 7u);
  EXPECT_GE(stats.merges, 1u);
  // The lifted graph is a genuine solution of the restricted setting.
  EXPECT_TRUE(IsSolution(s.setting, *s.instance, *g, eval, *s.universe));
}

TEST(RelationalLoweringTest, RejectsNonFlatSettings) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Result<LoweredSetting> lowered = LowerToRelational(s.setting);
  EXPECT_FALSE(lowered.ok());  // f·f* heads are not single symbols
}

TEST(SameAsCompletionTest, AddsRequiredEdges) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  // Canonical-ish graph: two cities sharing hx, no sameAs edges yet.
  SymbolId f = s.alphabet->Intern("f");
  SymbolId h = s.alphabet->Intern("h");
  SymbolId same_as = s.alphabet->SameAsSymbol();
  Value c1 = s.universe->MakeConstant("c1");
  Value c2 = s.universe->MakeConstant("c2");
  Value c3 = s.universe->MakeConstant("c3");
  Value hx = s.universe->MakeConstant("hx");
  Value hy = s.universe->MakeConstant("hy");
  Value n1 = s.universe->FreshNull();
  Value n2 = s.universe->FreshNull();
  Value n3 = s.universe->FreshNull();
  Graph g;
  g.AddEdge(c1, f, n1);
  g.AddEdge(n1, f, c2);
  g.AddEdge(c1, f, n2);
  g.AddEdge(n2, f, c2);
  g.AddEdge(c3, f, n3);
  g.AddEdge(n3, f, c2);
  g.AddEdge(n1, h, hx);
  g.AddEdge(n2, h, hy);
  g.AddEdge(n3, h, hx);

  SameAsCompletionStats stats;
  ASSERT_TRUE(
      CompleteSameAs(g, s.setting.sameas, *s.alphabet, eval, &stats).ok());
  EXPECT_TRUE(g.HasEdge(n1, same_as, n3));
  EXPECT_TRUE(g.HasEdge(n3, same_as, n1));
  // Implicit reflexivity: no self-loops materialized.
  EXPECT_FALSE(g.HasEdge(n1, same_as, n1));
  EXPECT_EQ(stats.edges_added, 2u);
  EXPECT_TRUE(IsSolution(s.setting, *s.instance, g, eval, *s.universe));
}

TEST(SameAsCompletionTest, RstClosureAddsTransitiveEdges) {
  Alphabet alphabet;
  Universe universe;
  SymbolId same_as = alphabet.SameAsSymbol();
  Value a = universe.MakeConstant("a");
  Value b = universe.MakeConstant("b");
  Value c = universe.MakeConstant("c");
  Graph g;
  g.AddEdge(a, same_as, b);
  g.AddEdge(b, same_as, c);
  SameAsCompletionOptions options;
  options.rst_closure = true;
  ASSERT_TRUE(
      CompleteSameAs(g, {}, alphabet, eval, nullptr, options).ok());
  EXPECT_TRUE(g.HasEdge(c, same_as, a));
  EXPECT_TRUE(g.HasEdge(a, same_as, a));
}

TEST(TargetTgdChaseTest, MaterializesMissingHeads) {
  // (x, a, y) -> ∃z (y, b, z): chase adds a b-successor after every a-edge.
  Alphabet alphabet;
  Universe universe;
  Result<TargetTgd> tgd =
      ParseTargetTgd("(x, a, y) -> (y, b, z)", alphabet, universe);
  ASSERT_TRUE(tgd.ok());
  Graph g;
  Value u = universe.MakeConstant("u");
  Value v = universe.MakeConstant("v");
  g.AddEdge(u, alphabet.Intern("a"), v);
  TargetTgdChaseStats stats;
  ASSERT_TRUE(
      ChaseTargetTgds(g, {*tgd}, universe, eval, 16, &stats).ok());
  EXPECT_EQ(stats.triggers_fired, 1u);
  EXPECT_EQ(g.num_edges(), 2u);
  // Fixpoint: rerunning fires nothing.
  TargetTgdChaseStats stats2;
  ASSERT_TRUE(
      ChaseTargetTgds(g, {*tgd}, universe, eval, 16, &stats2).ok());
  EXPECT_EQ(stats2.triggers_fired, 0u);
}

TEST(TargetTgdChaseTest, DivergentChaseHitsRoundLimit) {
  // (x, a, y) -> ∃z (y, a, z) diverges (every new edge retriggers).
  Alphabet alphabet;
  Universe universe;
  Result<TargetTgd> tgd =
      ParseTargetTgd("(x, a, y) -> (y, a, z)", alphabet, universe);
  ASSERT_TRUE(tgd.ok());
  Graph g;
  g.AddEdge(universe.MakeConstant("u"), alphabet.Intern("a"),
            universe.MakeConstant("v"));
  Status st = ChaseTargetTgds(g, {*tgd}, universe, eval, 8);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace gdx
