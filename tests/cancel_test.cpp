// ISSUE 8 tests: deadline-aware cancellation must be prompt, typed, and
// tear-free — a deadline self-trips the token with reason kDeadline, the
// first stop cause wins, a canceled solve returns kUnknown in a small
// fraction of the uncanceled solve's time, no partial chase artifact ever
// lands in the engine cache, and a solve after a canceled one is
// byte-identical to a fresh engine's.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/parallel_search.h"
#include "common/rng.h"
#include "engine/cache.h"
#include "engine/exchange_engine.h"
#include "reduction/sat_encoding.h"
#include "sat/gen.h"
#include "solver/existence.h"
#include "workload/flights.h"

namespace gdx {
namespace {

using StopReason = CancellationToken::StopReason;

EngineOptions PaperOptions() {
  EngineOptions options;
  options.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = 12;
  return options;
}

/// Theorem 4.1 UNSAT instance (forced contradiction on var n): the
/// bounded search must exhaust all 2^n witness combinations, which makes
/// its runtime scale cleanly — the timing workload for the deadline test.
SatEncodedExchange MakeUnsatReduction(int n, Universe& universe) {
  Rng rng(77);
  CnfFormula f = RandomKSat(n - 1 > 2 ? n - 1 : 2, 2 * n, 3, rng);
  f.set_num_vars(n);
  f.AddClause({n});
  f.AddClause({-n});
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(f, universe, ReductionMode::kEgd);
  EXPECT_TRUE(enc.ok());
  return std::move(enc).value();
}

ExistenceOptions ReductionOptions(const CancellationToken* cancel) {
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kBoundedSearch;
  options.instantiation.max_edges_per_witness = 1;
  options.instantiation.max_witnesses_per_edge = 2;
  options.cancel = cancel;
  return options;
}

// --- Token semantics --------------------------------------------------------

TEST(CancelTest, DeadlineExpirySelfTripsWithReasonDeadline) {
  CancellationToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.reason(), StopReason::kNone);
  EXPECT_FALSE(token.has_deadline());

  token.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  EXPECT_TRUE(token.has_deadline());
  // The raw flag is still clear: expiry is detected at the poll, not by a
  // background clock.
  EXPECT_FALSE(token.flag()->load());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), StopReason::kDeadline);
  // The poll tripped the shared flag, so raw-flag pollers (the DPLL inner
  // loop) observe the expiry too.
  EXPECT_TRUE(token.flag()->load());
}

TEST(CancelTest, FutureDeadlineDoesNotTrip) {
  CancellationToken token;
  token.SetDeadlineAfter(std::chrono::hours(1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.reason(), StopReason::kNone);
}

TEST(CancelTest, FirstStopCauseWins) {
  // Explicit cancel first, deadline second: reason stays kCanceled.
  CancellationToken token;
  token.RequestStop();
  token.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), StopReason::kCanceled);

  // Deadline first, explicit cancel second: reason stays kDeadline.
  CancellationToken token2;
  token2.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  EXPECT_TRUE(token2.stop_requested());
  token2.RequestStop();
  EXPECT_EQ(token2.reason(), StopReason::kDeadline);
}

// --- Typed outcome and cache hygiene ----------------------------------------

TEST(CancelTest, CanceledSolveIsTypedAndLeavesNoTornCacheEntry) {
  EngineOptions options = PaperOptions();
  options.existence_policy = ExistencePolicy::kBoundedSearch;
  ExchangeEngine engine(options);
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  CancellationToken token;
  token.RequestStop();
  Result<ExchangeOutcome> outcome = engine.Solve(s, &token);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->existence.verdict, ExistenceVerdict::kUnknown);
  EXPECT_EQ(outcome->existence.note, "search cancelled");
  EXPECT_EQ(outcome->interrupt, StopReason::kCanceled);
  EXPECT_FALSE(outcome->solution.has_value());
  // The truncated chase artifact must not have been memoized: a later
  // uncanceled solve would otherwise chase from a non-fixpoint.
  EXPECT_EQ(engine.cache().sizes().chased_entries, 0u);

  // The same engine, uncanceled, now matches a fresh engine byte for byte
  // — nothing torn survived the canceled attempt.
  Scenario again = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Result<ExchangeOutcome> warm = engine.Solve(again);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->interrupt, StopReason::kNone);
  ExchangeEngine fresh(options);
  Scenario control = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Result<ExchangeOutcome> cold = fresh.Solve(control);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(warm->ToString(*again.universe, *again.alphabet),
            cold->ToString(*control.universe, *control.alphabet));
}

TEST(CancelTest, ExpiredDeadlineSolveReportsDeadlineInterrupt) {
  ExchangeEngine engine(PaperOptions());
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  CancellationToken token;
  token.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  Result<ExchangeOutcome> outcome = engine.Solve(s, &token);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->existence.verdict, ExistenceVerdict::kUnknown);
  EXPECT_EQ(outcome->interrupt, StopReason::kDeadline);
  EXPECT_EQ(engine.cache().sizes().chased_entries, 0u);
}

TEST(CancelTest, MidSolveCancelFromAnotherThreadReturns) {
  // A canceller thread trips the token mid-search; the solve must come
  // back (promptly — the generous bound below only catches hangs) with
  // either a typed cancellation or a legitimately finished verdict.
  AutomatonNreEvaluator eval;
  Universe universe;
  SatEncodedExchange enc = MakeUnsatReduction(12, universe);
  CancellationToken token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.RequestStop();
  });
  ExistenceReport report =
      ExistenceSolver(&eval, ReductionOptions(&token))
          .Decide(enc.setting, *enc.instance, universe);
  canceller.join();
  if (report.verdict == ExistenceVerdict::kUnknown) {
    EXPECT_EQ(report.note, "search cancelled");
  } else {
    EXPECT_EQ(report.verdict, ExistenceVerdict::kNo) << report.note;
  }
}

TEST(CancelTest, MidSatCancelFromAnotherThreadReturns) {
  // Same race through the SAT-backed strategy: the DPLL inner loop polls
  // the token's raw flag, so a cross-thread trip must stop it too.
  AutomatonNreEvaluator eval;
  Universe universe;
  SatEncodedExchange enc = MakeUnsatReduction(14, universe);
  CancellationToken token;
  ExistenceOptions options = ReductionOptions(&token);
  options.strategy = ExistenceStrategy::kSatBacked;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.RequestStop();
  });
  ExistenceReport report = ExistenceSolver(&eval, options)
                               .Decide(enc.setting, *enc.instance, universe);
  canceller.join();
  if (report.verdict == ExistenceVerdict::kUnknown) {
    EXPECT_EQ(report.note, "search cancelled");
  } else {
    EXPECT_EQ(report.verdict, ExistenceVerdict::kNo) << report.note;
  }
}

TEST(CancelTest, CanceledEnumerationReturnsPrefixOnly) {
  // EnumerateSolutions under a stopped token must return a (possibly
  // empty) prefix instead of scanning the whole choice space — the
  // documented contract callers rely on to keep certain answers sound.
  AutomatonNreEvaluator eval;
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  ExistenceOptions options;
  options.instantiation.max_witnesses_per_edge = 3;
  std::vector<Graph> full =
      ExistenceSolver(&eval, options)
          .EnumerateSolutions(s.setting, *s.instance, *s.universe, 12);
  ASSERT_GT(full.size(), 1u) << "scenario must have >1 solution";

  CancellationToken token;
  token.RequestStop();
  options.cancel = &token;
  Scenario again = MakeExample22Scenario(FlightConstraintMode::kEgd);
  std::vector<Graph> truncated =
      ExistenceSolver(&eval, options)
          .EnumerateSolutions(again.setting, *again.instance,
                              *again.universe, 12);
  EXPECT_LT(truncated.size(), full.size())
      << "a pre-stopped token must truncate the enumeration";
}

// --- The latency bound (ISSUE 8 acceptance) ---------------------------------

TEST(CancelTest, DeadlineBoundsSolveTimeTenfold) {
  // Find an exhaustion workload whose full solve takes long enough to
  // measure (the 2^n choice space quadruples per +2 vars), then show a
  // short deadline returns in <= 1/10 of the full time.
  AutomatonNreEvaluator eval;
  std::chrono::steady_clock::duration full_elapsed{};
  int n = 10;
  for (; n <= 16; n += 2) {
    Universe universe;
    SatEncodedExchange enc = MakeUnsatReduction(n, universe);
    auto start = std::chrono::steady_clock::now();
    ExistenceReport report =
        ExistenceSolver(&eval, ReductionOptions(nullptr))
            .Decide(enc.setting, *enc.instance, universe);
    full_elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_EQ(report.verdict, ExistenceVerdict::kNo) << report.note;
    ASSERT_EQ(report.candidates_tried, size_t{1} << n);
    if (full_elapsed >= std::chrono::milliseconds(400)) break;
  }
  ASSERT_GE(full_elapsed, std::chrono::milliseconds(400))
      << "even n=16 exhausted too fast to measure a 10x bound";

  // Same workload, deadline at 1/50 of the measured full time: the abort
  // must land within 1/10 of the full time — the poll granularity is one
  // candidate repair, orders of magnitude finer than the slack between
  // full/50 and full/10.
  Universe universe;
  SatEncodedExchange enc = MakeUnsatReduction(n > 16 ? 16 : n, universe);
  CancellationToken token;
  token.SetDeadlineAfter(
      std::chrono::duration_cast<std::chrono::nanoseconds>(full_elapsed) /
      50);
  auto start = std::chrono::steady_clock::now();
  ExistenceReport report =
      ExistenceSolver(&eval, ReductionOptions(&token))
          .Decide(enc.setting, *enc.instance, universe);
  auto deadline_elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(report.verdict, ExistenceVerdict::kUnknown) << report.note;
  EXPECT_EQ(report.note, "search cancelled");
  EXPECT_EQ(token.reason(), StopReason::kDeadline);
  EXPECT_LE(deadline_elapsed * 10, full_elapsed)
      << "a deadline-aborted solve must return at least 10x faster than "
       "the full exhaustion";
}

}  // namespace
}  // namespace gdx
