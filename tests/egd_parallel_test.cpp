// ISSUE 10 tentpole part 1 — component-parallel egd repair. The
// differential battery: across 200 randomized workloads and 1/2/8
// workers, EgdChasePolicy::kParallelComponents must be byte-identical to
// the sequential kDeferredRounds reference on both entry points (pattern
// chase and concrete-graph chase), including failing chases (same
// failure_reason, same merge count, structure left un-rewritten at the
// same round). The observer test re-checks the skip-soundness premise:
// components repaired in parallel genuinely touch disjoint value sets.
// The engine-level test pins byte-identical solve outputs across every
// (egd policy × multi-source mode × worker count) combination.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "common/thread_pool.h"
#include "engine/exchange_engine.h"
#include "exchange/parser.h"
#include "workload/flights.h"
#include "workload/scenario_parser.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

ThreadPool& SharedPool() {
  static ThreadPool pool(7);  // 8 workers including the caller
  return pool;
}

std::string PatternSignature(const GraphPattern& pi, const Scenario& s) {
  return pi.ToString(*s.universe, *s.alphabet);
}

EgdChaseOptions ParallelOptions(size_t workers) {
  EgdChaseOptions options;
  options.policy = EgdChasePolicy::kParallelComponents;
  options.pool = workers > 1 ? &SharedPool() : nullptr;
  options.max_workers = workers;
  return options;
}

/// Field-for-field comparison of the result counters the two policies
/// must agree on (parallel_rounds/components are parallel-only).
void ExpectSameOutcome(const EgdChaseResult& reference,
                       const EgdChaseResult& parallel, uint64_t seed,
                       size_t workers) {
  EXPECT_EQ(parallel.failed, reference.failed)
      << "seed " << seed << " workers " << workers;
  EXPECT_EQ(parallel.failure_reason, reference.failure_reason)
      << "seed " << seed << " workers " << workers;
  EXPECT_EQ(parallel.rounds, reference.rounds)
      << "seed " << seed << " workers " << workers;
  EXPECT_EQ(parallel.merges, reference.merges)
      << "seed " << seed << " workers " << workers;
}

// --- 200-seed differential at 1/2/8 workers --------------------------------

class ParallelEgdDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelEgdDifferential, PatternAndGraphChasesAreByteIdentical) {
  const uint64_t seed = GetParam();
  FlightWorkloadParams params;
  params.seed = seed;
  params.num_cities = 3 + seed % 4;
  params.num_flights = 4 + seed % 7;
  params.num_hotels = 2 + seed % 3;
  params.mode = FlightConstraintMode::kEgd;
  Scenario s = MakeFlightScenario(params);
  const GraphPattern chased =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);

  // Sequential reference, both entry points.
  GraphPattern ref_pattern = chased;
  const EgdChaseResult ref_pattern_result = ChasePatternEgds(
      ref_pattern, s.setting.egds, eval, EgdChasePolicy::kDeferredRounds);
  const std::string ref_pattern_sig = PatternSignature(ref_pattern, s);
  Graph ref_graph = chased.DefiniteGraph();
  const EgdChaseResult ref_graph_result = ChaseGraphEgds(
      ref_graph, s.setting.egds, eval, EgdChasePolicy::kDeferredRounds);
  const std::string ref_graph_sig =
      ref_graph.ToString(*s.universe, *s.alphabet);

  for (size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
    GraphPattern pattern = chased;
    const EgdChaseResult pattern_result = ChasePatternEgds(
        pattern, s.setting.egds, eval, ParallelOptions(workers));
    ExpectSameOutcome(ref_pattern_result, pattern_result, seed, workers);
    EXPECT_EQ(PatternSignature(pattern, s), ref_pattern_sig)
        << "seed " << seed << " workers " << workers;

    Graph g = chased.DefiniteGraph();
    const EgdChaseResult graph_result =
        ChaseGraphEgds(g, s.setting.egds, eval, ParallelOptions(workers));
    ExpectSameOutcome(ref_graph_result, graph_result, seed, workers);
    EXPECT_EQ(g.ToString(*s.universe, *s.alphabet), ref_graph_sig)
        << "seed " << seed << " workers " << workers;
    // The parallel machinery actually ran whenever the reference merged.
    if (graph_result.merges > 0) {
      EXPECT_GT(graph_result.parallel_rounds, 0u) << "seed " << seed;
      EXPECT_GT(graph_result.components, 0u) << "seed " << seed;
    }
    EXPECT_EQ(ref_graph_result.parallel_rounds, 0u);  // sequential-only
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds200, ParallelEgdDifferential,
                         ::testing::Range<uint64_t>(1, 201));

// --- Failing chases --------------------------------------------------------

TEST(ParallelEgdChaseTest, ConstantClashIsIdenticalAcrossPoliciesAndWorkers) {
  // Two distinct constants forced equal: the chase must fail with the
  // same reason and merge count under every policy and worker count, and
  // leave the structure un-rewritten at the same round.
  Result<Scenario> s = ParseScenario(R"(
    relation R/2
    fact R(a, c1)
    fact R(a, c2)
    fact R(b, c2)
    fact R(b, c3)
    stgd R(x, y) -> (x, e, y)
    egd (x1, e, x2), (x1, e, x3) -> x2 = x3
  )");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const GraphPattern chased =
      ChaseToPattern(*s->instance, s->setting.st_tgds, *s->universe);

  Graph ref = chased.DefiniteGraph();
  const EgdChaseResult ref_result = ChaseGraphEgds(
      ref, s->setting.egds, eval, EgdChasePolicy::kDeferredRounds);
  ASSERT_TRUE(ref_result.failed);
  const std::string ref_sig = ref.ToString(*s->universe, *s->alphabet);

  for (size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
    Graph g = chased.DefiniteGraph();
    const EgdChaseResult result =
        ChaseGraphEgds(g, s->setting.egds, eval, ParallelOptions(workers));
    EXPECT_TRUE(result.failed) << "workers " << workers;
    EXPECT_EQ(result.failure_reason, ref_result.failure_reason)
        << "workers " << workers;
    EXPECT_EQ(result.merges, ref_result.merges) << "workers " << workers;
    EXPECT_EQ(result.rounds, ref_result.rounds) << "workers " << workers;
    EXPECT_EQ(g.ToString(*s->universe, *s->alphabet), ref_sig)
        << "workers " << workers;
  }
}

// --- Skip-soundness observer ----------------------------------------------

TEST(ParallelEgdChaseTest, ObservedComponentsAreValueDisjoint) {
  // The byte-identity argument rests on one structural premise: pairs in
  // different congruence components share no value, so parallel folds
  // cannot interact. Re-check it from the outside on real workloads.
  size_t rounds_observed = 0;
  size_t multi_component_rounds = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    FlightWorkloadParams params;
    params.seed = seed;
    params.num_cities = 4;
    params.num_flights = 10;
    params.num_hotels = 4;
    params.mode = FlightConstraintMode::kEgd;
    Scenario s = MakeFlightScenario(params);
    GraphPattern pattern =
        ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
    EgdChaseOptions options = ParallelOptions(8);
    options.observer = [&](const EgdRepairRoundInfo& info) {
      ++rounds_observed;
      if (info.components.size() > 1) ++multi_component_rounds;
      std::vector<std::set<uint64_t>> value_sets;
      for (const auto& component : info.components) {
        EXPECT_FALSE(component.empty());
        std::set<uint64_t> values;
        for (const auto& [a, b] : component) {
          values.insert(a.raw());
          values.insert(b.raw());
        }
        value_sets.push_back(std::move(values));
      }
      for (size_t i = 0; i < value_sets.size(); ++i) {
        for (size_t j = i + 1; j < value_sets.size(); ++j) {
          for (uint64_t v : value_sets[i]) {
            EXPECT_EQ(value_sets[j].count(v), 0u)
                << "seed " << seed << ": components " << i << " and " << j
                << " share value " << v << " — not independent";
          }
        }
      }
    };
    ChasePatternEgds(pattern, s.setting.egds, eval, options);
  }
  // The property must have been exercised, including genuine fan-out.
  EXPECT_GT(rounds_observed, 0u);
  EXPECT_GT(multi_component_rounds, 0u);
}

// --- Cancellation ----------------------------------------------------------

TEST(ParallelEgdChaseTest, PreFiredTokenAbortsWithoutRewriting) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  GraphPattern pattern =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  const std::string before = PatternSignature(pattern, s);
  CancellationToken token;
  token.RequestStop();
  EgdChaseOptions options = ParallelOptions(8);
  options.cancel = &token;
  const EgdChaseResult result =
      ChasePatternEgds(pattern, s.setting.egds, eval, options);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(result.merges, 0u);
  EXPECT_EQ(PatternSignature(pattern, s), before);
}

// --- Engine-level byte identity across the ISSUE 10 knobs ------------------

TEST(ParallelEgdChaseTest, EngineOutputsIdenticalAcrossPoliciesAndModes) {
  auto solve_all = [](EgdChasePolicy policy, MultiSourceMode mode,
                      size_t workers) -> std::vector<std::string> {
    EngineOptions options;
    // Keep the witness-choice space small: an egd-unsatisfiable seed makes
    // the existence search exhaust *every* rank (no early exit), so at
    // 3 witnesses/edge a single solve can take minutes. 2^n with n small
    // still engages the fan-out while keeping 6 full solve sweeps cheap.
    options.instantiation.max_witnesses_per_edge = 2;
    options.max_solutions = 8;
    options.intra_solve_threads = workers;
    options.egd_policy = policy;
    options.nre_multi_source = mode;
    ExchangeEngine engine(options);
    std::vector<Scenario> scenarios;
    scenarios.push_back(MakeExample22Scenario(FlightConstraintMode::kEgd));
    scenarios.push_back(MakeExample52Scenario());
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      FlightWorkloadParams params;
      params.seed = seed;
      params.num_cities = 4;
      params.num_flights = 4;
      params.num_hotels = 2;
      params.mode = FlightConstraintMode::kEgd;
      scenarios.push_back(MakeFlightScenario(params));
    }
    std::vector<std::string> out;
    for (Scenario& s : scenarios) {
      Result<ExchangeOutcome> outcome = engine.Solve(s);
      out.push_back(outcome.ok()
                        ? outcome->ToString(*s.universe, *s.alphabet)
                        : outcome.status().ToString());
    }
    return out;
  };

  const std::vector<std::string> baseline = solve_all(
      EgdChasePolicy::kDeferredRounds, MultiSourceMode::kPerSource, 1);
  struct Config {
    EgdChasePolicy policy;
    MultiSourceMode mode;
    size_t workers;
  };
  const Config configs[] = {
      {EgdChasePolicy::kParallelComponents, MultiSourceMode::kPerSource, 1},
      {EgdChasePolicy::kParallelComponents, MultiSourceMode::kBatched, 1},
      {EgdChasePolicy::kDeferredRounds, MultiSourceMode::kBatched, 2},
      {EgdChasePolicy::kParallelComponents, MultiSourceMode::kBatched, 2},
      {EgdChasePolicy::kParallelComponents, MultiSourceMode::kBatched, 8},
  };
  for (const Config& config : configs) {
    const std::vector<std::string> got =
        solve_all(config.policy, config.mode, config.workers);
    ASSERT_EQ(got.size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(got[i], baseline[i])
          << "scenario " << i << " diverged at policy="
          << static_cast<int>(config.policy)
          << " mode=" << static_cast<int>(config.mode)
          << " workers=" << config.workers;
    }
  }
}

}  // namespace
}  // namespace gdx
