// Property tests for witness enumeration and materialization: every
// enumerated witness, once materialized between two nodes, realizes its
// NRE (the pair is in the evaluated relation). This is the soundness of
// the instantiation machinery that the bounded existence search and the
// canonical solutions rest on.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/nre_eval.h"
#include "pattern/witness.h"
#include "workload/random_graph.h"

namespace gdx {
namespace {

class WitnessProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WitnessProperty, MaterializedWitnessRealizesNre) {
  Alphabet alphabet;
  Rng rng(GetParam());
  AutomatonNreEvaluator automaton;
  NaiveNreEvaluator naive;
  for (int round = 0; round < 6; ++round) {
    NrePtr nre = MakeRandomNre(3, 2, alphabet, rng);
    std::vector<Witness> witnesses =
        EnumerateWitnesses(nre, /*max_edges=*/6, /*max_count=*/6);
    // Costs must be nondecreasing.
    for (size_t i = 1; i < witnesses.size(); ++i) {
      EXPECT_LE(witnesses[i - 1].NumEdges(), witnesses[i].NumEdges());
    }
    for (const Witness& w : witnesses) {
      Universe universe;
      Value src = universe.MakeConstant("src");
      Value dst = w.IsEpsilonChain() ? src : universe.MakeConstant("dst");
      Graph g;
      Status st = MaterializeWitness(g, universe, src, dst, w);
      ASSERT_TRUE(st.ok()) << nre->ToString(alphabet);
      EXPECT_TRUE(automaton.Contains(nre, g, src, dst))
          << "witness of " << nre->ToString(alphabet)
          << " not realized:\n"
          << g.ToString(universe, alphabet);
      EXPECT_TRUE(naive.Contains(nre, g, src, dst))
          << nre->ToString(alphabet);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessProperty,
                         ::testing::Range<uint64_t>(50, 62));

TEST(WitnessEdgeCases, EpsilonOnlyExpression) {
  Alphabet alphabet;
  std::vector<Witness> ws = EnumerateWitnesses(Nre::Epsilon(), 4, 4);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_TRUE(ws[0].IsEpsilonChain());
  EXPECT_EQ(ws[0].NumEdges(), 0u);
}

TEST(WitnessEdgeCases, StarOfEpsilonDoesNotLoopForever) {
  Alphabet alphabet;
  NrePtr nre = Nre::Star(Nre::Epsilon());
  std::vector<Witness> ws = EnumerateWitnesses(nre, 4, 8);
  ASSERT_FALSE(ws.empty());
  for (const Witness& w : ws) EXPECT_EQ(w.NumEdges(), 0u);
}

TEST(WitnessEdgeCases, NestedStarsBounded) {
  Alphabet alphabet;
  SymbolId a = alphabet.Intern("a");
  NrePtr nre = Nre::Star(Nre::Star(Nre::Symbol(a)));
  std::vector<Witness> ws = EnumerateWitnesses(nre, 3, 10);
  ASSERT_FALSE(ws.empty());
  for (const Witness& w : ws) EXPECT_LE(w.NumEdges(), 3u);
}

TEST(WitnessEdgeCases, DeepNestBranches) {
  Alphabet alphabet;
  Universe universe;
  SymbolId a = alphabet.Intern("a");
  SymbolId b = alphabet.Intern("b");
  // a [ b [ a ] ]: a step with a branch that itself has a nested branch.
  NrePtr nre = Nre::Concat(
      Nre::Symbol(a),
      Nre::Nest(Nre::Concat(Nre::Symbol(b),
                            Nre::Nest(Nre::Symbol(a)))));
  std::vector<Witness> ws = EnumerateWitnesses(nre, 6, 4);
  ASSERT_FALSE(ws.empty());
  Graph g;
  Value src = universe.MakeConstant("s");
  Value dst = universe.MakeConstant("t");
  ASSERT_TRUE(MaterializeWitness(g, universe, src, dst, ws[0]).ok());
  EXPECT_EQ(g.num_edges(), 3u);  // a chain edge + b branch + a sub-branch
  AutomatonNreEvaluator eval;
  EXPECT_TRUE(eval.Contains(nre, g, src, dst));
}

}  // namespace
}  // namespace gdx
