// Tests for graph serialization, DOT export and the CNRE query parser.
#include <gtest/gtest.h>

#include "graph/dot_export.h"
#include "graph/graph_io.h"
#include "graph/isomorphism.h"
#include "graph/nre_parser.h"
#include "graph/query_parser.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"

namespace gdx {
namespace {

TEST(GraphIoTest, RoundTripWithNullsAndIsolatedNodes) {
  Universe universe;
  Alphabet alphabet;
  Value n = universe.FreshNullLabeled("B1");
  Graph g;
  g.AddEdge(universe.MakeConstant("c1"), alphabet.Intern("f"), n);
  g.AddEdge(n, alphabet.Intern("f"), universe.MakeConstant("c2"));
  g.AddNode(universe.MakeConstant("lonely"));

  std::string text = SerializeGraph(g, universe, alphabet);
  Result<Graph> parsed = ParseGraphText(text, universe, alphabet);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_nodes(), g.num_nodes());
  EXPECT_EQ(parsed->num_edges(), g.num_edges());
  EXPECT_TRUE(IsomorphicUpToNulls(g, *parsed));
}

TEST(GraphIoTest, BlankNodesShareIdentityWithinFile) {
  Universe universe;
  Alphabet alphabet;
  Result<Graph> g = ParseGraphText(
      "c1 f _:x\n_:x f c2\n# comment\n\nc1 g _:y\n", universe, alphabet);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 4u);  // c1, c2, _:x (shared), _:y
  EXPECT_EQ(g->num_edges(), 3u);
}

TEST(GraphIoTest, ParseErrors) {
  Universe universe;
  Alphabet alphabet;
  EXPECT_FALSE(ParseGraphText("a b", universe, alphabet).ok());
  EXPECT_FALSE(ParseGraphText("a b c d", universe, alphabet).ok());
  EXPECT_FALSE(ParseGraphText("node", universe, alphabet).ok());
  EXPECT_TRUE(ParseGraphText("", universe, alphabet).ok());  // empty ok
}

TEST(DotExportTest, GraphRendering) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  Graph g3 = BuildFigure1G3(s);
  std::string dot = ToDot(g3, *s.universe, *s.alphabet);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);   // nulls
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);   // sameAs
  EXPECT_NE(dot.find("\"c1\" -> \"N1\""), std::string::npos);
}

TEST(DotExportTest, PatternRenderingShowsFullNres) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kNone);
  GraphPattern pi;
  Value n = s.universe->FreshNull();
  Result<NrePtr> nre = ParseNre("f . f*", *s.alphabet);
  ASSERT_TRUE(nre.ok());
  pi.AddEdge(s.universe->MakeConstant("c1"), *nre, n);
  std::string dot = ToDot(pi, *s.universe, *s.alphabet);
  EXPECT_NE(dot.find("label=\"f . f*\""), std::string::npos);
}

TEST(QueryParserTest, FullQueryWithHead) {
  Alphabet alphabet;
  Universe universe;
  Result<CnreQuery> q = ParseCnreQuery(
      "(x1, f . f* [h] . f- . (f-)*, x2) -> x1, x2", alphabet, universe);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->atoms().size(), 1u);
  ASSERT_EQ(q->head().size(), 2u);
  EXPECT_EQ(q->vars().NameOf(q->head()[0]), "x1");
}

TEST(QueryParserTest, BooleanQueryWithoutHead) {
  Alphabet alphabet;
  Universe universe;
  Result<CnreQuery> q =
      ParseCnreQuery("(x, a, y), (y, b, z)", alphabet, universe);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms().size(), 2u);
  EXPECT_TRUE(q->head().empty());
}

TEST(QueryParserTest, ConstantsInQuery) {
  Alphabet alphabet;
  Universe universe;
  Result<CnreQuery> q =
      ParseCnreQuery("('c1', a, y) -> y", alphabet, universe);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->atoms()[0].x.is_const());
  EXPECT_TRUE(universe.FindConstant("c1").has_value());
}

TEST(QueryParserTest, Errors) {
  Alphabet alphabet;
  Universe universe;
  EXPECT_FALSE(ParseCnreQuery("", alphabet, universe).ok());
  EXPECT_FALSE(ParseCnreQuery("(x, a)", alphabet, universe).ok());
  EXPECT_FALSE(ParseCnreQuery("x, a, y", alphabet, universe).ok());
  // Head var not in body.
  EXPECT_FALSE(ParseCnreQuery("(x, a, y) -> z", alphabet, universe).ok());
  // Bad NRE.
  EXPECT_FALSE(ParseCnreQuery("(x, a ++ b, y)", alphabet, universe).ok());
}

}  // namespace
}  // namespace gdx
