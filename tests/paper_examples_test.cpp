// The consolidated reproduction record: one test per paper artifact,
// mirroring EXPERIMENTS.md row by row. Each assertion states the paper's
// claim in its message. If this file is green, the reproduction holds.
#include <gtest/gtest.h>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "chase/relational_lowering.h"
#include "exchange/solution_check.h"
#include "exchange/universal_pair.h"
#include "pattern/homomorphism.h"
#include "reduction/sat_encoding.h"
#include "sat/dpll.h"
#include "solver/certain.h"
#include "solver/existence.h"
#include "solver/sameas_engine.h"
#include "workload/flights.h"
#include "workload/paper_graphs.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

std::vector<std::vector<Value>> SortedPairs(
    Scenario& s, std::vector<std::pair<const char*, const char*>> names) {
  std::vector<std::vector<Value>> out;
  for (const auto& [a, b] : names) {
    out.push_back(
        {s.universe->MakeConstant(a), s.universe->MakeConstant(b)});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a[0].raw() != b[0].raw() ? a[0].raw() < b[0].raw()
                                    : a[1].raw() < b[1].raw();
  });
  return out;
}

// E1 / Figure 1 -------------------------------------------------------------

TEST(PaperRecord, E1_Figure1_SolutionsAndQuerySets) {
  Scenario omega = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Graph g1 = BuildFigure1G1(omega);
  Graph g2 = BuildFigure1G2(omega);
  EXPECT_TRUE(IsSolution(omega.setting, *omega.instance, g1, eval,
                         *omega.universe))
      << "paper: G1 is a solution under Omega";
  EXPECT_TRUE(IsSolution(omega.setting, *omega.instance, g2, eval,
                         *omega.universe))
      << "paper: G2 is a solution under Omega";
  EXPECT_EQ(EvaluateCnre(*omega.query, g1, eval).size(), 4u)
      << "paper: JQK_G1 has the four (c1|c3) pairs";
  EXPECT_EQ(EvaluateCnre(*omega.query, g2, eval).size(), 9u)
      << "paper: JQK_G2 additionally contains the N1 pairs (9 total)";

  Scenario prime = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  Graph g3 = BuildFigure1G3(prime);
  EXPECT_TRUE(IsSolution(prime.setting, *prime.instance, g3, eval,
                         *prime.universe))
      << "paper: G3 is a solution under Omega'";
}

// E2 / Figure 2 -------------------------------------------------------------

TEST(PaperRecord, E2_Figure2_RelationalChase) {
  Scenario s = MakeExample31Scenario();
  RelChaseStats stats;
  Result<Graph> g =
      RunLoweredExchange(s.setting, *s.instance, *s.universe, &stats);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 7u) << "paper Figure 2: 7 nodes";
  EXPECT_EQ(g->num_edges(), 7u) << "paper Figure 2: 7 edges";
  EXPECT_EQ(stats.merges, 1u) << "the egd merges the two hx cities";
}

// E3 / Figure 3 -------------------------------------------------------------

TEST(PaperRecord, E3_Figure3_UniversalRepresentative) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kNone);
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  EXPECT_EQ(pi.num_nodes(), 8u) << "c1,c2,c3,hx,hy + N1..N3";
  EXPECT_EQ(pi.num_edges(), 9u) << "3 triggers x 3 head atoms";
  EXPECT_TRUE(InRep(pi, BuildFigure1G1(s), eval))
      << "universal: maps into every solution";
}

// E4 / Figure 4 + Theorem 4.1 ----------------------------------------------

TEST(PaperRecord, E4_Theorem41_ReductionOnRho0) {
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kEgd);
  ASSERT_TRUE(enc.ok());
  std::vector<bool> v(5, false);
  v[1] = true;
  v[2] = true;  // the paper's valuation
  Graph fig4 = BuildValuationGraph(*enc, v);
  EXPECT_TRUE(
      IsSolution(enc->setting, *enc->instance, fig4, eval, universe))
      << "paper Figure 4: the valuation graph is a solution";
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kSatBacked;
  ExistenceReport report = ExistenceSolver(&eval, options)
                               .Decide(enc->setting, *enc->instance,
                                       universe);
  EXPECT_EQ(report.verdict, ExistenceVerdict::kYes)
      << "rho0 is satisfiable => a solution exists (Thm 4.1)";
}

// E5 / Figure 5 -------------------------------------------------------------

TEST(PaperRecord, E5_Figure5_AdaptedChase) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  EgdChaseResult result = ChasePatternEgds(pi, s.setting.egds, eval);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.merges, 1u) << "N3 merged into N1 (shared hotel hx)";
  EXPECT_EQ(pi.num_nodes(), 7u) << "paper Figure 5";
  EXPECT_EQ(pi.num_edges(), 7u) << "paper Figure 5";
}

// E6 / Figure 6 / Example 5.2 ----------------------------------------------

TEST(PaperRecord, E6_Example52_ChaseSuccessWithoutSolution) {
  Scenario s = MakeExample52Scenario();
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  EgdChaseResult chase = ChasePatternEgds(pi, s.setting.egds, eval);
  EXPECT_FALSE(chase.failed) << "paper: the adapted chase succeeds";
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kBoundedSearch;
  ExistenceReport report = ExistenceSolver(&eval, options)
                               .Decide(s.setting, *s.instance, *s.universe);
  EXPECT_EQ(report.verdict, ExistenceVerdict::kNo)
      << "paper: yet no solution exists";
}

// E7 / Figure 7 + Proposition 5.3 -------------------------------------------

TEST(PaperRecord, E7_Proposition53_PatternsNotUniversal) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Result<UniversalPair> pair =
      BuildUniversalPair(s.setting, *s.instance, *s.universe, eval);
  ASSERT_TRUE(pair.ok());
  Graph fig7 = BuildFigure7(s);
  UniversalPair::Verdict verdict = pair->Classify(fig7, eval);
  EXPECT_TRUE(verdict.homomorphism_exists)
      << "paper: the pattern still maps into the corrupted graph";
  EXPECT_FALSE(verdict.constraints_satisfied)
      << "paper: the egd is violated";
  EXPECT_TRUE(pair->Represents(BuildFigure1G1(s), eval))
      << "the pair accepts genuine solutions";
}

// E8 / certain answers + Cor 4.2 ---------------------------------------------

TEST(PaperRecord, E8_CertainAnswerSets) {
  CertainAnswerOptions options;
  options.existence.instantiation.max_witnesses_per_edge = 3;
  options.max_solutions = 12;
  CertainAnswerSolver solver(&eval, options);

  Scenario omega = MakeExample22Scenario(FlightConstraintMode::kEgd);
  CertainAnswerResult under_omega = solver.Compute(
      omega.setting, *omega.instance, *omega.query, *omega.universe);
  EXPECT_EQ(under_omega.tuples,
            SortedPairs(omega, {{"c1", "c1"},
                                {"c1", "c3"},
                                {"c3", "c1"},
                                {"c3", "c3"}}))
      << "paper: cert_Omega(Q,I) = {(c1,c1),(c1,c3),(c3,c1),(c3,c3)}";

  Scenario prime = MakeExample22Scenario(FlightConstraintMode::kSameAs);
  CertainAnswerResult under_prime = solver.Compute(
      prime.setting, *prime.instance, *prime.query, *prime.universe);
  EXPECT_EQ(under_prime.tuples,
            SortedPairs(prime, {{"c1", "c1"}, {"c3", "c3"}}))
      << "paper: cert_Omega'(Q,I) = {(c1,c1),(c3,c3)}";
}

// E9 / §4.2 sameAs -----------------------------------------------------------

TEST(PaperRecord, E9_SameAsTractableExistence) {
  Universe universe;
  Result<SatEncodedExchange> enc =
      EncodeSatToSetting(Rho0(), universe, ReductionMode::kSameAs);
  ASSERT_TRUE(enc.ok());
  Result<Graph> solution = SameAsEngine::TrivialSolution(
      enc->setting, *enc->instance, universe, eval);
  EXPECT_TRUE(solution.ok())
      << "paper §4.2: existence of solutions becomes trivial";
}

// E10 / NRE engines ----------------------------------------------------------

TEST(PaperRecord, E10_EnginesAgreeOnPaperQuery) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  Graph g1 = BuildFigure1G1(s);
  NrePtr q = s.query->atoms()[0].nre;
  NaiveNreEvaluator naive;
  EXPECT_EQ(naive.Eval(q, g1), eval.Eval(q, g1));
}

}  // namespace
}  // namespace gdx
