// ISSUE 3 differential tests: the compiled product-BFS evaluator
// (GraphView CSR + ε-free CompiledNre + bitset traversals) must be
// relation-for-relation identical to the legacy dense-relation evaluator —
// on randomized graphs and NREs including nested tests and converse, on
// larger graphs, and through every query entry point (Eval / EvalOnView /
// EvalFrom / Contains). The engine-level compiled-automaton cache must be
// invisible to results: solve outputs stay byte-identical at 1, 2 and 8
// intra-solve workers with the cache engaged, and compilations are shared
// rather than repeated.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/cache.h"
#include "engine/exchange_engine.h"
#include "graph/graph_view.h"
#include "graph/nre_compile.h"
#include "graph/nre_eval.h"
#include "graph/nre_parser.h"
#include "workload/flights.h"
#include "workload/random_graph.h"

namespace gdx {
namespace {

// --- Randomized differential: compiled vs legacy ---------------------------

struct DifferentialParams {
  uint64_t seed;
  size_t nodes;
  size_t edges;
  size_t labels;
  size_t depth;
  size_t nres_per_graph;
};

class CompiledVsLegacyTest
    : public ::testing::TestWithParam<DifferentialParams> {};

TEST_P(CompiledVsLegacyTest, RelationsAreIdentical) {
  const DifferentialParams& p = GetParam();
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  gp.num_nodes = p.nodes;
  gp.num_edges = p.edges;
  gp.num_labels = p.labels;
  gp.seed = p.seed;
  Graph g = MakeRandomGraph(gp, universe, alphabet);
  GraphView view(g);
  Rng rng(p.seed * 7919 + 13);

  NaiveNreEvaluator legacy;
  AutomatonNreEvaluator compiled;
  for (size_t i = 0; i < p.nres_per_graph; ++i) {
    NrePtr nre = MakeRandomNre(p.depth, p.labels, alphabet, rng);
    BinaryRelation expected = legacy.Eval(nre, g);
    EXPECT_EQ(compiled.Eval(nre, g), expected) << nre->ToString(alphabet);
    EXPECT_EQ(compiled.EvalOnView(nre, view), expected)
        << "view path: " << nre->ToString(alphabet);

    // Source- and pair-queries agree with the full relation.
    if (!g.nodes().empty()) {
      Value src = g.nodes()[rng.NextU64() % g.nodes().size()];
      std::vector<Value> expected_from;
      for (const NodePair& pair : expected) {
        if (pair.first == src) expected_from.push_back(pair.second);
      }
      std::vector<Value> actual_from = compiled.EvalFrom(nre, g, src);
      // EvalFrom orders by node insertion, the relation by raw encoding:
      // compare as sets.
      std::sort(expected_from.begin(), expected_from.end(),
                [](Value a, Value b) { return a.raw() < b.raw(); });
      std::sort(actual_from.begin(), actual_from.end(),
                [](Value a, Value b) { return a.raw() < b.raw(); });
      EXPECT_EQ(actual_from, expected_from) << nre->ToString(alphabet);

      Value dst = g.nodes()[rng.NextU64() % g.nodes().size()];
      bool expected_pair = false;
      for (const NodePair& pair : expected) {
        if (pair.first == src && pair.second == dst) {
          expected_pair = true;
          break;
        }
      }
      EXPECT_EQ(compiled.Contains(nre, g, src, dst), expected_pair)
          << nre->ToString(alphabet);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, CompiledVsLegacyTest,
    ::testing::Values(
        // Small dense graphs, deep expressions (nest/converse heavy).
        DifferentialParams{1, 6, 12, 2, 4, 8},
        DifferentialParams{2, 8, 20, 2, 4, 8},
        DifferentialParams{3, 10, 30, 3, 3, 8},
        DifferentialParams{4, 12, 24, 3, 4, 8},
        DifferentialParams{5, 16, 48, 2, 3, 8},
        DifferentialParams{6, 20, 60, 3, 3, 6},
        DifferentialParams{7, 30, 120, 2, 3, 6},
        DifferentialParams{8, 40, 80, 4, 3, 6},
        // Sparse graphs: disconnected components, isolated behavior.
        DifferentialParams{9, 25, 12, 2, 3, 6},
        DifferentialParams{10, 50, 25, 3, 3, 4},
        // ≥200 nodes: the acceptance-criterion scale.
        DifferentialParams{11, 200, 800, 2, 3, 3},
        DifferentialParams{12, 240, 480, 3, 3, 3}));

TEST(CompiledVsLegacyTest, HandPickedNestAndConverseShapes) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  gp.num_nodes = 15;
  gp.num_edges = 45;
  gp.num_labels = 3;
  gp.seed = 424242;
  Graph g = MakeRandomGraph(gp, universe, alphabet);
  NaiveNreEvaluator legacy;
  AutomatonNreEvaluator compiled;
  for (const char* text : {
           "eps",
           "l1-",
           "(l1 + l2)*",
           "[l1]",
           "[l1-]",
           "[[l1] . l2]",
           "l1 [l2 . l3-] . l1-",
           "(l1 . [l2-])* + l3",
           "[l1 + l2-] . (l3- . l3)*",
           "l1 . l1* [l2] . l1- . (l1-)*",
       }) {
    Result<NrePtr> nre = ParseNre(text, alphabet);
    ASSERT_TRUE(nre.ok()) << text << ": " << nre.status().ToString();
    EXPECT_EQ(compiled.Eval(*nre, g), legacy.Eval(*nre, g)) << text;
  }
}

TEST(CompiledVsLegacyTest, EmptyAndSingletonGraphs) {
  Universe universe;
  Alphabet alphabet;
  SymbolId a = alphabet.Intern("a");
  NaiveNreEvaluator legacy;
  AutomatonNreEvaluator compiled;

  Graph empty;
  EXPECT_TRUE(compiled.Eval(Nre::Star(Nre::Symbol(a)), empty).empty());
  EXPECT_TRUE(compiled.EvalFrom(Nre::Symbol(a), empty,
                                universe.MakeConstant("zz")).empty());

  Graph loop;  // one node, self loop
  Value v = universe.MakeConstant("v");
  loop.AddEdge(v, a, v);
  for (const NrePtr& nre :
       {Nre::Epsilon(), Nre::Symbol(a), Nre::Inverse(a),
        Nre::Star(Nre::Symbol(a)), Nre::Nest(Nre::Symbol(a))}) {
    EXPECT_EQ(compiled.Eval(nre, loop), legacy.Eval(nre, loop));
  }
}

// --- Compiled-automaton cache ----------------------------------------------

TEST(CompiledCacheTest, SharesCompilationsAndStaysInvisible) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  gp.num_nodes = 12;
  gp.num_edges = 36;
  gp.num_labels = 2;
  gp.seed = 7;
  Graph g1 = MakeRandomGraph(gp, universe, alphabet);
  gp.seed = 8;
  Graph g2 = MakeRandomGraph(gp, universe, alphabet);

  Result<NrePtr> nre = ParseNre("l1 . (l2- + l1)* [l2]", alphabet);
  ASSERT_TRUE(nre.ok());

  EngineCache cache;
  AutomatonNreEvaluator cached_eval(&cache);
  AutomatonNreEvaluator plain_eval;

  // Same relation with and without the cache, across distinct graphs.
  EXPECT_EQ(cached_eval.Eval(*nre, g1), plain_eval.Eval(*nre, g1));
  EXPECT_EQ(cached_eval.Eval(*nre, g2), plain_eval.Eval(*nre, g2));

  // One miss (first compile), then hits — including for a structurally
  // equal but distinct NRE object (the key is the raw structure).
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.compile_misses, 1u);
  EXPECT_EQ(stats.compile_hits, 1u);
  Result<NrePtr> same_structure = ParseNre("l1 . (l2- + l1)* [l2]", alphabet);
  ASSERT_TRUE(same_structure.ok());
  cached_eval.Eval(*same_structure, g1);
  EXPECT_EQ(cache.stats().compile_misses, 1u);
  EXPECT_EQ(cache.stats().compile_hits, 2u);
  EXPECT_EQ(cache.sizes().compiled_entries, 1u);
}

TEST(CompiledCacheTest, LruCapBoundsCompiledMemo) {
  EngineCacheOptions options;
  options.max_compiled_entries = 3;
  options.num_shards = 1;  // exact global LRU (the behavior under test)
  EngineCache cache(options);
  Alphabet alphabet;
  for (int i = 0; i < 8; ++i) {
    SymbolId s = alphabet.Intern("s" + std::to_string(i));
    cache.GetOrCompile(Nre::Symbol(s));
  }
  EXPECT_EQ(cache.sizes().compiled_entries, 3u);
  EXPECT_EQ(cache.stats().compile_evictions, 5u);
}

/// The cache determinism contract of the ISSUE: with the compiled-automaton
/// cache engaged, solve outputs are byte-identical at 1, 2 and 8
/// intra-solve workers (concurrent workers share compilations).
TEST(CompiledCacheTest, EngineOutputsByteIdenticalAt1and2and8Workers) {
  auto solve_all = [](size_t intra_threads) -> std::vector<std::string> {
    EngineOptions options;
    options.instantiation.max_witnesses_per_edge = 3;
    options.max_solutions = 12;
    options.intra_solve_threads = intra_threads;
    EXPECT_TRUE(options.enable_cache);  // compiled cache engaged
    ExchangeEngine engine(options);
    std::vector<std::string> out;
    std::vector<Scenario> scenarios;
    scenarios.push_back(MakeExample22Scenario(FlightConstraintMode::kEgd));
    scenarios.push_back(MakeExample22Scenario(FlightConstraintMode::kSameAs));
    scenarios.push_back(MakeExample52Scenario());
    for (uint64_t seed = 21; seed <= 23; ++seed) {
      FlightWorkloadParams params;
      params.seed = seed;
      params.num_cities = 4;
      params.num_flights = 5;
      params.num_hotels = 3;
      params.mode = FlightConstraintMode::kEgd;
      scenarios.push_back(MakeFlightScenario(params));
    }
    for (Scenario& s : scenarios) {
      Result<ExchangeOutcome> outcome = engine.Solve(s);
      out.push_back(outcome.ok()
                        ? outcome->ToString(*s.universe, *s.alphabet)
                        : outcome.status().ToString());
    }
    // The compiled memo must have been exercised, and under reuse the
    // hits must dominate: every candidate graph re-evaluates the same
    // constraint NREs.
    CacheStats stats = engine.cache().stats();
    EXPECT_GT(stats.compile_misses, 0u);
    EXPECT_GT(stats.compile_hits, stats.compile_misses);
    return out;
  };

  std::vector<std::string> at1 = solve_all(1);
  std::vector<std::string> at2 = solve_all(2);
  std::vector<std::string> at8 = solve_all(8);
  ASSERT_EQ(at1.size(), at2.size());
  ASSERT_EQ(at1.size(), at8.size());
  for (size_t i = 0; i < at1.size(); ++i) {
    EXPECT_EQ(at2[i], at1[i]) << "scenario " << i << " at 2 workers";
    EXPECT_EQ(at8[i], at1[i]) << "scenario " << i << " at 8 workers";
  }
}

}  // namespace
}  // namespace gdx
