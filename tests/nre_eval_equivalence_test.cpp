// ISSUE 3 differential tests: the compiled product-BFS evaluator
// (GraphView CSR + ε-free CompiledNre + bitset traversals) must be
// relation-for-relation identical to the legacy dense-relation evaluator —
// on randomized graphs and NREs including nested tests and converse, on
// larger graphs, and through every query entry point (Eval / EvalOnView /
// EvalFrom / Contains). The engine-level compiled-automaton cache must be
// invisible to results: solve outputs stay byte-identical at 1, 2 and 8
// intra-solve workers with the cache engaged, and compilations are shared
// rather than repeated.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/cache.h"
#include "engine/exchange_engine.h"
#include "graph/cnre.h"
#include "graph/graph_view.h"
#include "graph/nre_compile.h"
#include "graph/nre_eval.h"
#include "graph/nre_parser.h"
#include "workload/flights.h"
#include "workload/random_graph.h"

namespace gdx {
namespace {

// --- Randomized differential: compiled vs legacy ---------------------------

struct DifferentialParams {
  uint64_t seed;
  size_t nodes;
  size_t edges;
  size_t labels;
  size_t depth;
  size_t nres_per_graph;
};

class CompiledVsLegacyTest
    : public ::testing::TestWithParam<DifferentialParams> {};

TEST_P(CompiledVsLegacyTest, RelationsAreIdentical) {
  const DifferentialParams& p = GetParam();
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  gp.num_nodes = p.nodes;
  gp.num_edges = p.edges;
  gp.num_labels = p.labels;
  gp.seed = p.seed;
  Graph g = MakeRandomGraph(gp, universe, alphabet);
  GraphView view(g);
  Rng rng(p.seed * 7919 + 13);

  NaiveNreEvaluator legacy;
  AutomatonNreEvaluator compiled;
  for (size_t i = 0; i < p.nres_per_graph; ++i) {
    NrePtr nre = MakeRandomNre(p.depth, p.labels, alphabet, rng);
    BinaryRelation expected = legacy.Eval(nre, g);
    EXPECT_EQ(compiled.Eval(nre, g), expected) << nre->ToString(alphabet);
    EXPECT_EQ(compiled.EvalOnView(nre, view), expected)
        << "view path: " << nre->ToString(alphabet);

    // Source- and pair-queries agree with the full relation.
    if (!g.nodes().empty()) {
      Value src = g.nodes()[rng.NextU64() % g.nodes().size()];
      std::vector<Value> expected_from;
      for (const NodePair& pair : expected) {
        if (pair.first == src) expected_from.push_back(pair.second);
      }
      std::vector<Value> actual_from = compiled.EvalFrom(nre, g, src);
      // EvalFrom orders by node insertion, the relation by raw encoding:
      // compare as sets.
      std::sort(expected_from.begin(), expected_from.end(),
                [](Value a, Value b) { return a.raw() < b.raw(); });
      std::sort(actual_from.begin(), actual_from.end(),
                [](Value a, Value b) { return a.raw() < b.raw(); });
      EXPECT_EQ(actual_from, expected_from) << nre->ToString(alphabet);

      Value dst = g.nodes()[rng.NextU64() % g.nodes().size()];
      bool expected_pair = false;
      for (const NodePair& pair : expected) {
        if (pair.first == src && pair.second == dst) {
          expected_pair = true;
          break;
        }
      }
      EXPECT_EQ(compiled.Contains(nre, g, src, dst), expected_pair)
          << nre->ToString(alphabet);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, CompiledVsLegacyTest,
    ::testing::Values(
        // Small dense graphs, deep expressions (nest/converse heavy).
        DifferentialParams{1, 6, 12, 2, 4, 8},
        DifferentialParams{2, 8, 20, 2, 4, 8},
        DifferentialParams{3, 10, 30, 3, 3, 8},
        DifferentialParams{4, 12, 24, 3, 4, 8},
        DifferentialParams{5, 16, 48, 2, 3, 8},
        DifferentialParams{6, 20, 60, 3, 3, 6},
        DifferentialParams{7, 30, 120, 2, 3, 6},
        DifferentialParams{8, 40, 80, 4, 3, 6},
        // Sparse graphs: disconnected components, isolated behavior.
        DifferentialParams{9, 25, 12, 2, 3, 6},
        DifferentialParams{10, 50, 25, 3, 3, 4},
        // ≥200 nodes: the acceptance-criterion scale.
        DifferentialParams{11, 200, 800, 2, 3, 3},
        DifferentialParams{12, 240, 480, 3, 3, 3}));

TEST(CompiledVsLegacyTest, HandPickedNestAndConverseShapes) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  gp.num_nodes = 15;
  gp.num_edges = 45;
  gp.num_labels = 3;
  gp.seed = 424242;
  Graph g = MakeRandomGraph(gp, universe, alphabet);
  NaiveNreEvaluator legacy;
  AutomatonNreEvaluator compiled;
  for (const char* text : {
           "eps",
           "l1-",
           "(l1 + l2)*",
           "[l1]",
           "[l1-]",
           "[[l1] . l2]",
           "l1 [l2 . l3-] . l1-",
           "(l1 . [l2-])* + l3",
           "[l1 + l2-] . (l3- . l3)*",
           "l1 . l1* [l2] . l1- . (l1-)*",
       }) {
    Result<NrePtr> nre = ParseNre(text, alphabet);
    ASSERT_TRUE(nre.ok()) << text << ": " << nre.status().ToString();
    EXPECT_EQ(compiled.Eval(*nre, g), legacy.Eval(*nre, g)) << text;
  }
}

TEST(CompiledVsLegacyTest, EmptyAndSingletonGraphs) {
  Universe universe;
  Alphabet alphabet;
  SymbolId a = alphabet.Intern("a");
  NaiveNreEvaluator legacy;
  AutomatonNreEvaluator compiled;

  Graph empty;
  EXPECT_TRUE(compiled.Eval(Nre::Star(Nre::Symbol(a)), empty).empty());
  EXPECT_TRUE(compiled.EvalFrom(Nre::Symbol(a), empty,
                                universe.MakeConstant("zz")).empty());

  Graph loop;  // one node, self loop
  Value v = universe.MakeConstant("v");
  loop.AddEdge(v, a, v);
  for (const NrePtr& nre :
       {Nre::Epsilon(), Nre::Symbol(a), Nre::Inverse(a),
        Nre::Star(Nre::Symbol(a)), Nre::Nest(Nre::Symbol(a))}) {
    EXPECT_EQ(compiled.Eval(nre, loop), legacy.Eval(nre, loop));
  }
}

// --- Compiled-automaton cache ----------------------------------------------

TEST(CompiledCacheTest, SharesCompilationsAndStaysInvisible) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  gp.num_nodes = 12;
  gp.num_edges = 36;
  gp.num_labels = 2;
  gp.seed = 7;
  Graph g1 = MakeRandomGraph(gp, universe, alphabet);
  gp.seed = 8;
  Graph g2 = MakeRandomGraph(gp, universe, alphabet);

  Result<NrePtr> nre = ParseNre("l1 . (l2- + l1)* [l2]", alphabet);
  ASSERT_TRUE(nre.ok());

  EngineCache cache;
  AutomatonNreEvaluator cached_eval(&cache);
  AutomatonNreEvaluator plain_eval;

  // Same relation with and without the cache, across distinct graphs.
  EXPECT_EQ(cached_eval.Eval(*nre, g1), plain_eval.Eval(*nre, g1));
  EXPECT_EQ(cached_eval.Eval(*nre, g2), plain_eval.Eval(*nre, g2));

  // One miss (first compile), then hits — including for a structurally
  // equal but distinct NRE object (the key is the raw structure).
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.compile_misses, 1u);
  EXPECT_EQ(stats.compile_hits, 1u);
  Result<NrePtr> same_structure = ParseNre("l1 . (l2- + l1)* [l2]", alphabet);
  ASSERT_TRUE(same_structure.ok());
  cached_eval.Eval(*same_structure, g1);
  EXPECT_EQ(cache.stats().compile_misses, 1u);
  EXPECT_EQ(cache.stats().compile_hits, 2u);
  EXPECT_EQ(cache.sizes().compiled_entries, 1u);
}

TEST(CompiledCacheTest, LruCapBoundsCompiledMemo) {
  EngineCacheOptions options;
  options.max_compiled_entries = 3;
  options.num_shards = 1;  // exact global LRU (the behavior under test)
  EngineCache cache(options);
  Alphabet alphabet;
  for (int i = 0; i < 8; ++i) {
    SymbolId s = alphabet.Intern("s" + std::to_string(i));
    cache.GetOrCompile(Nre::Symbol(s));
  }
  EXPECT_EQ(cache.sizes().compiled_entries, 3u);
  EXPECT_EQ(cache.stats().compile_evictions, 5u);
}

/// The cache determinism contract of the ISSUE: with the compiled-automaton
/// cache engaged, solve outputs are byte-identical at 1, 2 and 8
/// intra-solve workers (concurrent workers share compilations).
TEST(CompiledCacheTest, EngineOutputsByteIdenticalAt1and2and8Workers) {
  auto solve_all = [](size_t intra_threads) -> std::vector<std::string> {
    EngineOptions options;
    options.instantiation.max_witnesses_per_edge = 3;
    options.max_solutions = 12;
    options.intra_solve_threads = intra_threads;
    EXPECT_TRUE(options.enable_cache);  // compiled cache engaged
    ExchangeEngine engine(options);
    std::vector<std::string> out;
    std::vector<Scenario> scenarios;
    scenarios.push_back(MakeExample22Scenario(FlightConstraintMode::kEgd));
    scenarios.push_back(MakeExample22Scenario(FlightConstraintMode::kSameAs));
    scenarios.push_back(MakeExample52Scenario());
    for (uint64_t seed = 21; seed <= 23; ++seed) {
      FlightWorkloadParams params;
      params.seed = seed;
      params.num_cities = 4;
      params.num_flights = 5;
      params.num_hotels = 3;
      params.mode = FlightConstraintMode::kEgd;
      scenarios.push_back(MakeFlightScenario(params));
    }
    for (Scenario& s : scenarios) {
      Result<ExchangeOutcome> outcome = engine.Solve(s);
      out.push_back(outcome.ok()
                        ? outcome->ToString(*s.universe, *s.alphabet)
                        : outcome.status().ToString());
    }
    // The compiled memo must have been exercised, and under reuse the
    // hits must dominate: every candidate graph re-evaluates the same
    // constraint NREs.
    CacheStats stats = engine.cache().stats();
    EXPECT_GT(stats.compile_misses, 0u);
    EXPECT_GT(stats.compile_hits, stats.compile_misses);
    return out;
  };

  std::vector<std::string> at1 = solve_all(1);
  std::vector<std::string> at2 = solve_all(2);
  std::vector<std::string> at8 = solve_all(8);
  ASSERT_EQ(at1.size(), at2.size());
  ASSERT_EQ(at1.size(), at8.size());
  for (size_t i = 0; i < at1.size(); ++i) {
    EXPECT_EQ(at2[i], at1[i]) << "scenario " << i << " at 2 workers";
    EXPECT_EQ(at8[i], at1[i]) << "scenario " << i << " at 8 workers";
  }
}

// --- Bit-parallel multi-source BFS vs per-source reference (ISSUE 10) ------

class BatchedVsPerSourceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedVsPerSourceTest, AllEntryPointsAgree) {
  const uint64_t seed = GetParam();
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  // 16..112 nodes: past 64 the EvalOnView start set spans several source
  // chunks, exercising the multi-word lane packing.
  gp.num_nodes = 16 + (seed % 7) * 16;
  gp.num_edges = 3 * gp.num_nodes;
  gp.num_labels = 2 + seed % 2;
  gp.seed = seed;
  Graph g = MakeRandomGraph(gp, universe, alphabet);
  GraphView view(g);
  Rng rng(seed * 6271 + 5);

  AutomatonNreEvaluator batched;
  batched.set_multi_source_mode(MultiSourceMode::kBatched);
  AutomatonNreEvaluator per_source;
  per_source.set_multi_source_mode(MultiSourceMode::kPerSource);

  for (size_t i = 0; i < 3; ++i) {
    NrePtr nre = MakeRandomNre(3, gp.num_labels, alphabet, rng);
    const BinaryRelation expected = per_source.EvalOnView(nre, view);
    EXPECT_EQ(batched.EvalOnView(nre, view), expected)
        << "seed " << seed << ": " << nre->ToString(alphabet);

    // Whole-graph source batch: element-for-element the per-source loop.
    const std::vector<Value>& srcs = g.nodes();
    const std::vector<std::vector<Value>> many =
        batched.EvalFromMany(nre, g, srcs);
    ASSERT_EQ(many.size(), srcs.size());
    for (size_t s = 0; s < srcs.size(); ++s) {
      EXPECT_EQ(many[s], per_source.EvalFrom(nre, g, srcs[s]))
          << "seed " << seed << " src " << s;
    }

    if (!g.nodes().empty()) {
      Value src = g.nodes()[rng.NextU64() % g.nodes().size()];
      Value dst = g.nodes()[rng.NextU64() % g.nodes().size()];
      EXPECT_EQ(batched.Contains(nre, g, src, dst),
                per_source.Contains(nre, g, src, dst))
          << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds200, BatchedVsPerSourceTest,
                         ::testing::Range<uint64_t>(1, 201));

TEST(BatchedVsPerSourceTest, CnreSatisfiabilityAgrees) {
  // The CNRE matcher sits on EvalOnView; batched vs per-source evaluators
  // must agree on join results and Boolean satisfiability.
  Universe universe;
  Alphabet alphabet;
  AutomatonNreEvaluator batched;
  batched.set_multi_source_mode(MultiSourceMode::kBatched);
  AutomatonNreEvaluator per_source;
  per_source.set_multi_source_mode(MultiSourceMode::kPerSource);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomGraphParams gp;
    gp.num_nodes = 40;
    gp.num_edges = 120;
    gp.num_labels = 2;
    gp.seed = seed;
    Graph g = MakeRandomGraph(gp, universe, alphabet);
    CnreQuery q;
    VarId x = q.InternVar("x");
    VarId y = q.InternVar("y");
    VarId z = q.InternVar("z");
    Result<NrePtr> hop = ParseNre("(l1 + l2)*", alphabet);
    Result<NrePtr> back = ParseNre("l2- . l1", alphabet);
    ASSERT_TRUE(hop.ok() && back.ok());
    q.AddAtom(Term::Var(x), *hop, Term::Var(y));
    q.AddAtom(Term::Var(y), *back, Term::Var(z));
    q.SetHead({x, z});
    EXPECT_EQ(EvaluateCnre(q, g, batched), EvaluateCnre(q, g, per_source))
        << "seed " << seed;
    EXPECT_EQ(CnreSatisfiable(q, g, batched, {}),
              CnreSatisfiable(q, g, per_source, {}))
        << "seed " << seed;
  }
}

/// Thread-safe capture of batch-pass telemetry for assertions.
class RecordingNreSink : public NreEvalStatsSink {
 public:
  void RecordNreBatchPass(size_t sources) override {
    std::lock_guard<std::mutex> lock(mu_);
    passes_.push_back(sources);
  }
  std::vector<size_t> passes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return passes_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<size_t> passes_;
};

TEST(BatchedVsPerSourceTest, LargeBatchesSplitIntoWordSizedPasses) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  gp.num_nodes = 200;
  gp.num_edges = 600;
  gp.num_labels = 2;
  gp.seed = 99;
  Graph g = MakeRandomGraph(gp, universe, alphabet);

  AutomatonNreEvaluator batched;
  RecordingNreSink sink;
  batched.set_stats_sink(&sink);
  Result<NrePtr> nre = ParseNre("(l1 + l2)*", alphabet);
  ASSERT_TRUE(nre.ok());
  const std::vector<std::vector<Value>> many =
      batched.EvalFromMany(*nre, g, g.nodes());
  ASSERT_EQ(many.size(), 200u);

  // 200 sources → ceil(200/64) = 4 passes, 64 lanes per full word.
  const std::vector<size_t> passes = sink.passes();
  ASSERT_EQ(passes.size(), 4u);
  size_t total = 0;
  for (size_t sources : passes) {
    EXPECT_LE(sources, 64u);
    total += sources;
  }
  EXPECT_EQ(total, 200u);
}

TEST(BatchedVsPerSourceTest, InvalidSourcesGetEmptyVectorsInOrder) {
  Universe universe;
  Alphabet alphabet;
  SymbolId a = alphabet.Intern("a");
  Graph g;
  Value u = universe.MakeConstant("u");
  Value v = universe.MakeConstant("v");
  g.AddEdge(u, a, v);
  Value stranger = universe.MakeConstant("stranger");  // not in g

  AutomatonNreEvaluator batched;
  const std::vector<std::vector<Value>> out =
      batched.EvalFromMany(Nre::Symbol(a), g, {stranger, u, stranger, v});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(out[0].empty());
  EXPECT_EQ(out[1], std::vector<Value>{v});
  EXPECT_TRUE(out[2].empty());
  EXPECT_TRUE(out[3].empty());
}

TEST(BatchedVsPerSourceTest, PreFiredTokenTruncatesBatchedEvaluation) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  gp.num_nodes = 120;
  gp.num_edges = 360;
  gp.num_labels = 2;
  gp.seed = 17;
  Graph g = MakeRandomGraph(gp, universe, alphabet);
  GraphView view(g);
  AutomatonNreEvaluator batched;
  Result<NrePtr> nre = ParseNre("(l1 + l2)*", alphabet);
  ASSERT_TRUE(nre.ok());
  const BinaryRelation full = batched.EvalOnView(*nre, view);
  ASSERT_FALSE(full.empty());

  CancellationToken token;
  token.RequestStop();
  ScopedEvalCancellation scope(&token);
  const BinaryRelation truncated = batched.EvalOnView(*nre, view);
  // A canceled evaluation may return anything up to the full answer, but
  // never pairs outside it (no garbage lanes).
  EXPECT_LE(truncated.size(), full.size());
  for (const NodePair& pair : truncated) {
    EXPECT_TRUE(std::binary_search(full.begin(), full.end(), pair));
  }
}

// --- Local compile memo LRU (ISSUE 10 satellite) ---------------------------

TEST(LocalMemoLruTest, HottestEntrySurvivesCapPressure) {
  Alphabet alphabet;
  AutomatonNreEvaluator eval(/*compile_cache=*/nullptr, /*local_memo_cap=*/3);
  auto sym = [&](const char* name) { return Nre::Symbol(alphabet.Intern(name)); };
  NrePtr a = sym("a"), b = sym("b"), c = sym("c"), d = sym("d");

  // Hold the hot entry's compiled form alive so its address cannot be
  // recycled by a later compile — pointer identity then proves memo reuse.
  CompiledNrePtr hot = eval.GetCompiled(a);
  eval.GetCompiled(b);
  eval.GetCompiled(c);
  EXPECT_EQ(eval.local_memo_size(), 3u);

  // Touch `a`, making `b` the LRU victim; inserting `d` must evict `b`,
  // not clear the memo wholesale (the pre-ISSUE-10 behavior).
  EXPECT_EQ(eval.GetCompiled(a).get(), hot.get());
  eval.GetCompiled(d);
  EXPECT_EQ(eval.local_memo_size(), 3u);
  EXPECT_EQ(eval.GetCompiled(a).get(), hot.get())
      << "hottest entry was evicted at cap pressure";
  EXPECT_EQ(eval.local_memo_size(), 3u);  // a, c, d (+ nothing re-added)
}

TEST(LocalMemoLruTest, RepeatedHitsNeverGrowTheMemo) {
  Alphabet alphabet;
  AutomatonNreEvaluator eval(/*compile_cache=*/nullptr, /*local_memo_cap=*/2);
  NrePtr a = Nre::Symbol(alphabet.Intern("a"));
  CompiledNrePtr first = eval.GetCompiled(a);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(eval.GetCompiled(a).get(), first.get());
  }
  EXPECT_EQ(eval.local_memo_size(), 1u);
}

// --- Scratch arena steady state (ISSUE 10 satellite) -----------------------

TEST(ScratchArenaTest, SteadyStateEvaluationAllocatesNothing) {
  Universe universe;
  Alphabet alphabet;
  RandomGraphParams gp;
  gp.num_nodes = 100;
  gp.num_edges = 300;
  gp.num_labels = 2;
  gp.seed = 5;
  Graph g = MakeRandomGraph(gp, universe, alphabet);
  GraphView view(g);
  Result<NrePtr> nre = ParseNre("(l1 + l2)* . l1-", alphabet);
  ASSERT_TRUE(nre.ok());

  for (MultiSourceMode mode :
       {MultiSourceMode::kBatched, MultiSourceMode::kPerSource}) {
    AutomatonNreEvaluator eval;
    eval.set_multi_source_mode(mode);
    // Warm-up: grows this thread's scratch to the workload's high-water
    // mark through every entry point.
    eval.EvalOnView(*nre, view);
    eval.EvalFromMany(*nre, g, g.nodes());
    eval.EvalFrom(*nre, g, g.nodes()[0]);

    const uint64_t before = NreEvalScratchAllocs();
    for (int i = 0; i < 5; ++i) {
      eval.EvalOnView(*nre, view);
      eval.EvalFromMany(*nre, g, g.nodes());
      eval.EvalFrom(*nre, g, g.nodes()[0]);
    }
    EXPECT_EQ(NreEvalScratchAllocs(), before)
        << "steady-state evaluation grew the scratch arena (mode "
        << static_cast<int>(mode) << ")";
  }
}

}  // namespace
}  // namespace gdx
