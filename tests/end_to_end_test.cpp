// End-to-end pipelines over generated Flight/Hotel workloads, plus
// randomized universality properties of the chase and failure injection.
#include <gtest/gtest.h>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "exchange/parser.h"
#include "exchange/solution_check.h"
#include "graph/nre_parser.h"
#include "pattern/homomorphism.h"
#include "pattern/witness.h"
#include "solver/certain.h"
#include "solver/existence.h"
#include "workload/flights.h"

namespace gdx {
namespace {

AutomatonNreEvaluator eval;

class GeneratedWorkloadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedWorkloadTest, ChaseInstantiateVerifyPipeline) {
  FlightWorkloadParams params;
  params.seed = GetParam();
  params.num_cities = 6;
  params.num_flights = 8;
  params.num_hotels = 4;
  params.mode = FlightConstraintMode::kNone;
  Scenario s = MakeFlightScenario(params);

  PatternChaseStats stats;
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe, &stats);
  EXPECT_GT(stats.triggers, 0u);

  PatternInstantiator inst(&pi, s.universe.get(), {});
  Result<Graph> g = inst.InstantiateCanonical();
  ASSERT_TRUE(g.ok()) << g.status().ToString();

  // Without target constraints every instantiation of the chased pattern
  // is a solution (§3.2), and the pattern maps into it.
  EXPECT_TRUE(IsSolution(s.setting, *s.instance, *g, eval, *s.universe));
  EXPECT_TRUE(InRep(pi, *g, eval));
}

TEST_P(GeneratedWorkloadTest, UniversalityAcrossInstantiations) {
  // The chased pattern (a universal representative, §3.2) admits a
  // homomorphism into every instantiated witness-combination solution.
  FlightWorkloadParams params;
  params.seed = GetParam() + 1000;
  params.num_cities = 4;
  params.num_flights = 4;
  params.num_hotels = 3;
  params.mode = FlightConstraintMode::kNone;
  Scenario s = MakeFlightScenario(params);
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  InstantiationOptions options;
  options.max_witnesses_per_edge = 2;
  PatternInstantiator inst(&pi, s.universe.get(), options);
  const auto& lists = inst.witness_lists();
  // Walk a few diagonal-ish combinations.
  for (size_t step = 0; step < 4; ++step) {
    std::vector<size_t> choices(lists.size());
    for (size_t i = 0; i < lists.size(); ++i) {
      choices[i] = (i + step) % lists[i].size();
    }
    Result<Graph> g = inst.Instantiate(choices);
    if (!g.ok()) continue;  // ε-chain between distinct nodes: skip
    EXPECT_TRUE(IsSolution(s.setting, *s.instance, *g, eval, *s.universe));
    EXPECT_TRUE(InRep(pi, *g, eval));
  }
}

TEST_P(GeneratedWorkloadTest, EgdWorkloadExistenceAndCertainAnswers) {
  FlightWorkloadParams params;
  params.seed = GetParam() + 2000;
  params.num_cities = 4;
  params.num_flights = 5;
  params.num_hotels = 2;  // heavy sharing: many merges
  params.mode = FlightConstraintMode::kEgd;
  Scenario s = MakeFlightScenario(params);

  ExistenceOptions options;
  options.instantiation.max_witnesses_per_edge = 2;
  ExistenceSolver solver(&eval, options);
  ExistenceReport report =
      solver.Decide(s.setting, *s.instance, *s.universe);
  // Hotel egds over distinct city constants can clash; both verdicts are
  // legitimate, but they must be decisive and witnessed when "yes".
  ASSERT_NE(report.verdict, ExistenceVerdict::kUnknown) << report.note;
  if (report.verdict == ExistenceVerdict::kYes) {
    ASSERT_TRUE(report.witness.has_value());
    EXPECT_TRUE(IsSolution(s.setting, *s.instance, *report.witness, eval,
                           *s.universe));
    // Certain answers are contained in every solution's answer set.
    CertainAnswerOptions copt;
    copt.existence = options;
    copt.max_solutions = 6;
    CertainAnswerResult certain =
        CertainAnswerSolver(&eval, copt)
            .Compute(s.setting, *s.instance, *s.query, *s.universe);
    std::vector<std::vector<Value>> witness_answers =
        EvaluateCnre(*s.query, *report.witness, eval);
    for (const auto& t : certain.tuples) {
      EXPECT_NE(std::find(witness_answers.begin(), witness_answers.end(), t),
                witness_answers.end());
    }
  }
}

TEST_P(GeneratedWorkloadTest, SameAsWorkloadAlwaysHasSolutions) {
  FlightWorkloadParams params;
  params.seed = GetParam() + 3000;
  params.num_cities = 5;
  params.num_flights = 6;
  params.num_hotels = 3;
  params.mode = FlightConstraintMode::kSameAs;
  Scenario s = MakeFlightScenario(params);
  ExistenceSolver solver(&eval);
  ExistenceReport report =
      solver.Decide(s.setting, *s.instance, *s.universe);
  // §4.2: existence is trivial for sameAs constraints.
  EXPECT_EQ(report.verdict, ExistenceVerdict::kYes) << report.note;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedWorkloadTest,
                         ::testing::Range<uint64_t>(1, 7));

// --- Failure injection ----------------------------------------------------

TEST(FailureInjectionTest, MalformedMappingsSurfaceAsStatus) {
  Schema schema;
  (void)schema.AddRelation("R", 2);
  Alphabet alphabet;
  Universe universe;
  const char* bad_inputs[] = {
      "",                             // empty
      "R(x,y)",                       // no implication
      "R(x,y) -> ",                   // empty head
      "R(x,y) -> (x, , y)",           // empty NRE
      "R(x,y) -> (x, a, y, z)",       // 4-ary CNRE atom
      "R(x,y) -> x, a, y",            // unparenthesized atom
      "R(x,y) -> (x, a](, y)",        // mangled brackets
      "R(x) -> (x, a, y)",            // arity mismatch
      "S(x,y) -> (x, a, y)",          // unknown relation
      "R(x,y) -> (x, a, y) -> (y, b, x)",  // double implication
  };
  for (const char* text : bad_inputs) {
    Result<StTgd> tgd = ParseStTgd(text, &schema, alphabet, universe);
    EXPECT_FALSE(tgd.ok()) << "accepted: " << text;
  }
}

TEST(FailureInjectionTest, BudgetExhaustionIsReported) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kEgd);
  ExistenceOptions options;
  options.strategy = ExistenceStrategy::kBoundedSearch;
  options.max_candidates = 0;  // no budget at all
  ExistenceReport report = ExistenceSolver(&eval, options)
                               .Decide(s.setting, *s.instance, *s.universe);
  EXPECT_EQ(report.verdict, ExistenceVerdict::kUnknown);
  EXPECT_TRUE(report.budget_exhausted);
}

TEST(FailureInjectionTest, InstantiatorRejectsBadChoices) {
  Scenario s = MakeExample22Scenario(FlightConstraintMode::kNone);
  GraphPattern pi =
      ChaseToPattern(*s.instance, s.setting.st_tgds, *s.universe);
  PatternInstantiator inst(&pi, s.universe.get(), {});
  std::vector<size_t> wrong_len(pi.num_edges() + 1, 0);
  EXPECT_FALSE(inst.Instantiate(wrong_len).ok());
  std::vector<size_t> out_of_range(pi.num_edges(), 9999);
  EXPECT_FALSE(inst.Instantiate(out_of_range).ok());
}

TEST(FailureInjectionTest, WitnessBudgetTooSmallIsDetected) {
  // An NRE needing 2 edges with a 1-edge witness budget: no witnesses.
  Alphabet alphabet;
  Universe universe;
  Result<NrePtr> nre = ParseNre("a . b", alphabet);
  ASSERT_TRUE(nre.ok());
  std::vector<Witness> ws = EnumerateWitnesses(*nre, /*max_edges=*/1,
                                               /*max_count=*/4);
  EXPECT_TRUE(ws.empty());
}

}  // namespace
}  // namespace gdx
