#include "exchange/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/strings.h"
#include "graph/nre_parser.h"

namespace gdx {
namespace {

/// Splits on `sep` at parenthesis/bracket depth 0.
std::vector<std::string> SplitTopLevel(std::string_view text, char sep) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || (text[i] == sep && depth == 0)) {
      out.emplace_back(StripWhitespace(text.substr(start, i - start)));
      start = i + 1;
      continue;
    }
    if (text[i] == '(' || text[i] == '[') ++depth;
    if (text[i] == ')' || text[i] == ']') --depth;
  }
  return out;
}

/// Splits "body -> head" into the two sides.
Result<std::pair<std::string, std::string>> SplitImplication(
    std::string_view text) {
  size_t pos = text.find("->");
  if (pos == std::string_view::npos) {
    return Status::InvalidArgument("dependency must contain '->': " +
                                   std::string(text));
  }
  if (text.find("->", pos + 2) != std::string_view::npos) {
    return Status::InvalidArgument("dependency contains multiple '->'");
  }
  return std::make_pair(std::string(StripWhitespace(text.substr(0, pos))),
                        std::string(StripWhitespace(text.substr(pos + 2))));
}

/// Parses a term: unquoted identifier = variable (interned into vars);
/// 'quoted' = constant (interned into the universe).
Result<Term> ParseTerm(std::string_view text, VarTable& vars,
                       Universe& universe) {
  text = StripWhitespace(text);
  if (text.empty()) return Status::InvalidArgument("empty term");
  if (text.front() == '\'' || text.front() == '"') {
    if (text.size() < 3 || text.back() != text.front()) {
      return Status::InvalidArgument("unterminated constant literal: " +
                                     std::string(text));
    }
    return Term::Const(
        universe.MakeConstant(text.substr(1, text.size() - 2)));
  }
  for (char c : text) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return Status::InvalidArgument("invalid variable name: " +
                                     std::string(text));
    }
  }
  return Term::Var(vars.Intern(text));
}

/// Parses a CNRE atom "(term, nre, term)".
Result<CnreAtom> ParseCnreAtom(std::string_view text, VarTable& vars,
                               Alphabet& alphabet, Universe& universe) {
  text = StripWhitespace(text);
  if (text.size() < 2 || text.front() != '(' || text.back() != ')') {
    return Status::InvalidArgument("CNRE atom must be parenthesized: " +
                                   std::string(text));
  }
  std::vector<std::string> parts =
      SplitTopLevel(text.substr(1, text.size() - 2), ',');
  if (parts.size() != 3) {
    return Status::InvalidArgument(
        "CNRE atom must have exactly (term, nre, term): " +
        std::string(text));
  }
  Result<Term> x = ParseTerm(parts[0], vars, universe);
  if (!x.ok()) return x.status();
  Result<NrePtr> nre = ParseNre(parts[1], alphabet);
  if (!nre.ok()) return nre.status();
  Result<Term> y = ParseTerm(parts[2], vars, universe);
  if (!y.ok()) return y.status();
  return CnreAtom{*x, std::move(nre).value(), *y};
}

/// Parses a relational atom "Name(t1, ..., tk)".
Result<RelAtom> ParseRelAtom(std::string_view text, const Schema* schema,
                             VarTable& vars, Universe& universe) {
  text = StripWhitespace(text);
  size_t open = text.find('(');
  if (open == std::string_view::npos || text.back() != ')') {
    return Status::InvalidArgument("malformed relational atom: " +
                                   std::string(text));
  }
  std::string name(StripWhitespace(text.substr(0, open)));
  auto rel = schema->Find(name);
  if (!rel.has_value()) {
    return Status::NotFound("unknown relation: " + name);
  }
  std::vector<std::string> args =
      SplitTopLevel(text.substr(open + 1, text.size() - open - 2), ',');
  if (args.size() != schema->decl(*rel).arity) {
    return Status::InvalidArgument(
        "arity mismatch for " + name + ": expected " +
        std::to_string(schema->decl(*rel).arity) + ", got " +
        std::to_string(args.size()));
  }
  RelAtom atom;
  atom.relation = *rel;
  for (const std::string& arg : args) {
    Result<Term> t = ParseTerm(arg, vars, universe);
    if (!t.ok()) return t.status();
    atom.terms.push_back(*t);
  }
  return atom;
}

/// Parses a CNRE body into `query` (atoms only; head left empty).
Status ParseCnreBody(std::string_view text, CnreQuery& query,
                     Alphabet& alphabet, Universe& universe) {
  for (const std::string& piece : SplitTopLevel(text, ',')) {
    if (piece.empty()) {
      return Status::InvalidArgument("empty atom in CNRE body");
    }
    // Re-join pieces that belong to one parenthesized atom: SplitTopLevel
    // already respects depth, so each piece is a whole atom.
    Result<CnreAtom> atom =
        ParseCnreAtom(piece, query.vars(), alphabet, universe);
    if (!atom.ok()) return atom.status();
    query.AddAtom(atom->x, atom->nre, atom->y);
  }
  return Status::Ok();
}

}  // namespace

Result<StTgd> ParseStTgd(std::string_view text, const Schema* source_schema,
                         Alphabet& alphabet, Universe& universe) {
  auto sides = SplitImplication(text);
  if (!sides.ok()) return sides.status();
  StTgd tgd(source_schema);
  for (const std::string& piece : SplitTopLevel(sides->first, ',')) {
    Result<RelAtom> atom =
        ParseRelAtom(piece, source_schema, tgd.body.vars(), universe);
    if (!atom.ok()) return atom.status();
    tgd.body.AddAtom(*atom);
  }
  for (const std::string& piece : SplitTopLevel(sides->second, ',')) {
    Result<CnreAtom> atom =
        ParseCnreAtom(piece, tgd.body.vars(), alphabet, universe);
    if (!atom.ok()) return atom.status();
    tgd.head.push_back(*atom);
  }
  Status st = tgd.Validate();
  if (!st.ok()) return st;
  return tgd;
}

Result<TargetEgd> ParseTargetEgd(std::string_view text, Alphabet& alphabet,
                                 Universe& universe) {
  auto sides = SplitImplication(text);
  if (!sides.ok()) return sides.status();
  TargetEgd egd;
  Status st = ParseCnreBody(sides->first, egd.body, alphabet, universe);
  if (!st.ok()) return st;
  // Head: "x1 = x2".
  std::vector<std::string> eq = StrSplit(sides->second, '=');
  if (eq.size() != 2 || eq[0].empty() || eq[1].empty()) {
    return Status::InvalidArgument("egd head must be 'x1 = x2': " +
                                   sides->second);
  }
  auto v1 = egd.body.vars().Find(eq[0]);
  auto v2 = egd.body.vars().Find(eq[1]);
  if (!v1.has_value() || !v2.has_value()) {
    return Status::InvalidArgument(
        "egd head variables must occur in the body");
  }
  egd.x1 = *v1;
  egd.x2 = *v2;
  return egd;
}

Result<TargetTgd> ParseTargetTgd(std::string_view text, Alphabet& alphabet,
                                 Universe& universe) {
  auto sides = SplitImplication(text);
  if (!sides.ok()) return sides.status();
  TargetTgd tgd;
  Status st = ParseCnreBody(sides->first, tgd.body, alphabet, universe);
  if (!st.ok()) return st;
  for (const std::string& piece : SplitTopLevel(sides->second, ',')) {
    Result<CnreAtom> atom =
        ParseCnreAtom(piece, tgd.body.vars(), alphabet, universe);
    if (!atom.ok()) return atom.status();
    tgd.head.push_back(*atom);
  }
  if (tgd.head.empty()) {
    return Status::InvalidArgument("target tgd with empty head");
  }
  return tgd;
}

Result<SameAsConstraint> ParseSameAsConstraint(std::string_view text,
                                               Alphabet& alphabet,
                                               Universe& universe) {
  Result<TargetTgd> tgd = ParseTargetTgd(text, alphabet, universe);
  if (!tgd.ok()) return tgd.status();
  if (tgd->head.size() != 1) {
    return Status::InvalidArgument(
        "sameAs constraint head must be a single atom");
  }
  const CnreAtom& atom = tgd->head[0];
  if (!IsSingleSymbol(atom.nre) ||
      alphabet.NameOf(atom.nre->symbol()) != "sameAs") {
    return Status::InvalidArgument(
        "sameAs constraint head must be (x1, sameAs, x2)");
  }
  if (!atom.x.is_var() || !atom.y.is_var()) {
    return Status::InvalidArgument(
        "sameAs constraint head terms must be variables");
  }
  SameAsConstraint sac;
  sac.body = tgd->body;
  sac.x1 = atom.x.var();
  sac.x2 = atom.y.var();
  return sac;
}

}  // namespace gdx
