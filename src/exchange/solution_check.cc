#include "exchange/solution_check.h"

#include <sstream>

#include "graph/cnre.h"
#include "graph/graph_view.h"
#include "relational/eval.h"

namespace gdx {
namespace {

constexpr size_t kMaxViolationsPerCategory = 4;

std::string DescribeBinding(const CnreBinding& binding,
                            const VarTable& vars,
                            const Universe& universe) {
  std::ostringstream out;
  bool first = true;
  for (VarId v = 0; v < vars.size(); ++v) {
    if (!binding[v].has_value()) continue;
    if (!first) out << ", ";
    out << vars.NameOf(v) << "=" << universe.NameOf(*binding[v]);
    first = false;
  }
  return out.str();
}

}  // namespace

SolutionCheckReport CheckSolution(const Setting& setting,
                                  const Instance& source, const Graph& g,
                                  const NreEvaluator& eval,
                                  const Universe& universe,
                                  const SolutionCheckOptions& options) {
  SolutionCheckReport report;

  // One CSR snapshot of the candidate for every matcher below (ISSUE 3):
  // each constraint category used to rebuild the node index per matcher.
  GraphView view(g);

  // --- s-t tgds: every body match must extend to a head match in G. ---
  for (size_t t = 0; t < setting.st_tgds.size(); ++t) {
    const StTgd& tgd = setting.st_tgds[t];
    CnreQuery head_query = tgd.HeadQuery();
    CnreMatcher head_matcher(&head_query, &view, eval);
    size_t violations = 0;
    FindCqMatches(tgd.body, source, [&](const Binding& match) {
      if (!head_matcher.Satisfiable(match)) {
        report.st_tgds_ok = false;
        if (violations < kMaxViolationsPerCategory) {
          report.violations.push_back(
              "s-t tgd #" + std::to_string(t) + " violated for body match {" +
              DescribeBinding(match, tgd.body.vars(), universe) + "}");
        }
        ++violations;
      }
      return true;
    });
  }

  // --- egds: every body match must equate x1 and x2. ---
  for (size_t c = 0; c < setting.egds.size(); ++c) {
    const TargetEgd& egd = setting.egds[c];
    CnreMatcher matcher(&egd.body, &view, eval);
    size_t violations = 0;
    matcher.FindMatches({}, [&](const CnreBinding& match) {
      if (match[egd.x1].has_value() && match[egd.x2].has_value() &&
          *match[egd.x1] != *match[egd.x2]) {
        report.egds_ok = false;
        if (violations < kMaxViolationsPerCategory) {
          report.violations.push_back(
              "egd #" + std::to_string(c) + " violated: " +
              universe.NameOf(*match[egd.x1]) + " != " +
              universe.NameOf(*match[egd.x2]) + " for {" +
              DescribeBinding(match, egd.body.vars(), universe) + "}");
        }
        ++violations;
      }
      return true;
    });
  }

  // --- target tgds: every body match must extend to a head match. ---
  for (size_t c = 0; c < setting.target_tgds.size(); ++c) {
    const TargetTgd& tgd = setting.target_tgds[c];
    CnreQuery head_query = tgd.HeadQuery();
    CnreMatcher body_matcher(&tgd.body, &view, eval);
    CnreMatcher head_matcher(&head_query, &view, eval);
    size_t violations = 0;
    body_matcher.FindMatches({}, [&](const CnreBinding& match) {
      // Only frontier variables (bound by the body) constrain the head.
      if (!head_matcher.Satisfiable(match)) {
        report.target_tgds_ok = false;
        if (violations < kMaxViolationsPerCategory) {
          report.violations.push_back(
              "target tgd #" + std::to_string(c) +
              " violated for body match {" +
              DescribeBinding(match, tgd.body.vars(), universe) + "}");
        }
        ++violations;
      }
      return true;
    });
  }

  // --- sameAs constraints: required sameAs edge must be present. ---
  if (!setting.sameas.empty()) {
    // Const lookup: solution checks run concurrently on intra-solve
    // workers sharing this alphabet; interning here would race. An
    // un-interned sameAs (impossible for constraints built through the
    // Alphabet) maps to an id no edge carries, so every required edge
    // reads as missing — the sound answer.
    SymbolId same_as = setting.alphabet->FindSameAs().value_or(
        static_cast<SymbolId>(setting.alphabet->size()));
    for (size_t c = 0; c < setting.sameas.size(); ++c) {
      const SameAsConstraint& sac = setting.sameas[c];
      CnreMatcher matcher(&sac.body, &view, eval);
      size_t violations = 0;
      matcher.FindMatches({}, [&](const CnreBinding& match) {
        if (!match[sac.x1].has_value() || !match[sac.x2].has_value()) {
          return true;
        }
        if (options.implicit_reflexive_sameas &&
            *match[sac.x1] == *match[sac.x2]) {
          return true;
        }
        if (!g.HasEdge(*match[sac.x1], same_as, *match[sac.x2])) {
          report.sameas_ok = false;
          if (violations < kMaxViolationsPerCategory) {
            report.violations.push_back(
                "sameAs constraint #" + std::to_string(c) +
                " violated: missing (" + universe.NameOf(*match[sac.x1]) +
                ", sameAs, " + universe.NameOf(*match[sac.x2]) + ")");
          }
          ++violations;
        }
        return true;
      });
    }
  }

  return report;
}

bool IsSolution(const Setting& setting, const Instance& source,
                const Graph& g, const NreEvaluator& eval,
                const Universe& universe,
                const SolutionCheckOptions& options) {
  return CheckSolution(setting, source, g, eval, universe, options)
      .IsSolution();
}

}  // namespace gdx
