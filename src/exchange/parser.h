#ifndef GDX_EXCHANGE_PARSER_H_
#define GDX_EXCHANGE_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "common/universe.h"
#include "exchange/constraints.h"
#include "exchange/mapping.h"

namespace gdx {

/// Text syntax for dependencies (used by examples, tests and benches):
///
///   s-t tgd:  Flight(x1,x2,x3), Hotel(x1,x4) ->
///                 (x2, f . f*, y), (y, h, x4), (y, f . f*, x3)
///   egd:      (x1, h, x3), (x2, h, x3) -> x1 = x2
///   t-tgd:    (x, a, y) -> (x, b, z)
///   sameAs:   (x1, h, x3), (x2, h, x3) -> (x1, sameAs, x2)
///
/// Unquoted identifiers are variables; 'quoted' identifiers are constants
/// (interned into the universe). NREs follow graph/nre_parser.h syntax.
/// Head variables absent from the body are existential, per the paper.

Result<StTgd> ParseStTgd(std::string_view text, const Schema* source_schema,
                         Alphabet& alphabet, Universe& universe);

Result<TargetEgd> ParseTargetEgd(std::string_view text, Alphabet& alphabet,
                                 Universe& universe);

Result<TargetTgd> ParseTargetTgd(std::string_view text, Alphabet& alphabet,
                                 Universe& universe);

Result<SameAsConstraint> ParseSameAsConstraint(std::string_view text,
                                               Alphabet& alphabet,
                                               Universe& universe);

}  // namespace gdx

#endif  // GDX_EXCHANGE_PARSER_H_
