#include "exchange/universal_pair.h"

#include <sstream>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "pattern/homomorphism.h"

namespace gdx {
namespace {

/// Target-constraint satisfaction only (the G ⊨ M_t half of §5's pair
/// semantics; the s-t side is carried by the pattern homomorphism).
bool ConstraintsSatisfied(const Setting& setting, const Graph& g,
                          const NreEvaluator& eval) {
  for (const TargetEgd& egd : setting.egds) {
    bool violated = false;
    FindCnreMatches(egd.body, g, eval, {}, [&](const CnreBinding& match) {
      if (match[egd.x1].has_value() && match[egd.x2].has_value() &&
          *match[egd.x1] != *match[egd.x2]) {
        violated = true;
        return false;
      }
      return true;
    });
    if (violated) return false;
  }
  for (const TargetTgd& tgd : setting.target_tgds) {
    CnreQuery head = tgd.HeadQuery();
    CnreMatcher head_matcher(&head, &g, eval);
    bool violated = false;
    FindCnreMatches(tgd.body, g, eval, {}, [&](const CnreBinding& match) {
      if (!head_matcher.Satisfiable(match)) {
        violated = true;
        return false;
      }
      return true;
    });
    if (violated) return false;
  }
  if (!setting.sameas.empty()) {
    SymbolId same_as = setting.alphabet->SameAsSymbol();
    for (const SameAsConstraint& sac : setting.sameas) {
      bool violated = false;
      FindCnreMatches(sac.body, g, eval, {}, [&](const CnreBinding& match) {
        if (!match[sac.x1].has_value() || !match[sac.x2].has_value()) {
          return true;
        }
        if (*match[sac.x1] == *match[sac.x2]) return true;  // reflexive
        if (!g.HasEdge(*match[sac.x1], same_as, *match[sac.x2])) {
          violated = true;
          return false;
        }
        return true;
      });
      if (violated) return false;
    }
  }
  return true;
}

}  // namespace

UniversalPair::Verdict UniversalPair::Classify(const Graph& g,
                                               const NreEvaluator& eval)
    const {
  Verdict verdict;
  verdict.homomorphism_exists = InRep(pattern_, g, eval);
  verdict.constraints_satisfied = ConstraintsSatisfied(*setting_, g, eval);
  return verdict;
}

bool UniversalPair::Represents(const Graph& g,
                               const NreEvaluator& eval) const {
  Verdict v = Classify(g, eval);
  return v.represented();
}

std::string UniversalPair::ToString(const Universe& universe) const {
  std::ostringstream out;
  out << "universal pair:\n"
      << pattern_.ToString(universe, *setting_->alphabet) << "with "
      << setting_->egds.size() << " egd(s), "
      << setting_->target_tgds.size() << " target tgd(s), "
      << setting_->sameas.size() << " sameAs constraint(s)\n";
  return out.str();
}

Result<UniversalPair> BuildUniversalPair(const Setting& setting,
                                         const Instance& source,
                                         Universe& universe,
                                         const NreEvaluator& eval) {
  GraphPattern pattern = ChaseToPattern(source, setting.st_tgds, universe);
  if (!setting.egds.empty()) {
    EgdChaseResult chased = ChasePatternEgds(pattern, setting.egds, eval);
    if (chased.failed) {
      return Status::FailedPrecondition(
          "adapted chase failed — no solution exists: " +
          chased.failure_reason);
    }
  }
  return UniversalPair(std::move(pattern), &setting);
}

}  // namespace gdx
