#ifndef GDX_EXCHANGE_MAPPING_H_
#define GDX_EXCHANGE_MAPPING_H_

#include <vector>

#include "common/status.h"
#include "graph/cnre.h"
#include "relational/cq.h"

namespace gdx {

/// A source-to-target tgd ∀x (φ_R(x) → ∃y ψ_Σ(x, y)) — paper §2. The body
/// φ_R is a conjunctive query over the relational source schema; the head
/// ψ_Σ is a CNRE over the target alphabet. Body and head share the body's
/// VarTable, so the same VarId denotes the same variable on both sides;
/// head variables bound by no body atom are the existential vector y.
struct StTgd {
  explicit StTgd(const Schema* source_schema) : body(source_schema) {}

  ConjunctiveQuery body;
  std::vector<CnreAtom> head;

  /// Head variables appearing in no body atom, in first-use order.
  std::vector<VarId> ExistentialVars() const {
    std::vector<bool> in_body(body.num_vars(), false);
    for (const RelAtom& atom : body.atoms()) {
      for (const Term& t : atom.terms) {
        if (t.is_var()) in_body[t.var()] = true;
      }
    }
    std::vector<bool> seen(body.num_vars(), false);
    std::vector<VarId> out;
    auto visit = [&](const Term& t) {
      if (t.is_var() && !in_body[t.var()] && !seen[t.var()]) {
        seen[t.var()] = true;
        out.push_back(t.var());
      }
    };
    for (const CnreAtom& atom : head) {
      visit(atom.x);
      visit(atom.y);
    }
    return out;
  }

  /// Builds the head as a standalone Boolean CNRE query sharing this tgd's
  /// variable ids (used for satisfaction checks with the frontier bound).
  CnreQuery HeadQuery() const {
    CnreQuery q;
    q.SetVarTable(body.vars());
    for (const CnreAtom& atom : head) q.AddAtom(atom.x, atom.nre, atom.y);
    return q;
  }

  Status Validate() const {
    if (head.empty()) {
      return Status::InvalidArgument("s-t tgd with empty head");
    }
    for (const CnreAtom& atom : head) {
      if (atom.nre == nullptr) {
        return Status::InvalidArgument("s-t tgd head atom without NRE");
      }
    }
    return Status::Ok();
  }
};

}  // namespace gdx

#endif  // GDX_EXCHANGE_MAPPING_H_
