#ifndef GDX_EXCHANGE_SETTING_H_
#define GDX_EXCHANGE_SETTING_H_

#include <string>
#include <vector>

#include "exchange/constraints.h"
#include "exchange/mapping.h"
#include "graph/alphabet.h"
#include "relational/schema.h"

namespace gdx {

/// A relational-to-graph data exchange setting Ω = (R, Σ, M_st, M_t) —
/// paper Definition 2.1. M_t splits into the three target-constraint
/// classes studied in the paper: egds, target tgds, and sameAs constraints.
struct Setting {
  const Schema* source_schema = nullptr;
  Alphabet* alphabet = nullptr;

  std::vector<StTgd> st_tgds;
  std::vector<TargetEgd> egds;
  std::vector<TargetTgd> target_tgds;
  std::vector<SameAsConstraint> sameas;

  bool HasTargetConstraints() const {
    return !egds.empty() || !target_tgds.empty() || !sameas.empty();
  }

  /// True if M_t consists of sameAs constraints only (§4.2's tractable
  /// existence case).
  bool SameAsOnly() const {
    return egds.empty() && target_tgds.empty() && !sameas.empty();
  }

  /// True if every s-t tgd head NRE is a single symbol — the §3.1 fragment
  /// that lowers to relational data exchange.
  bool IsSingleSymbolFragment() const {
    for (const StTgd& tgd : st_tgds) {
      for (const CnreAtom& atom : tgd.head) {
        if (!IsSingleSymbol(atom.nre)) return false;
      }
    }
    return true;
  }
};

}  // namespace gdx

#endif  // GDX_EXCHANGE_SETTING_H_
