#ifndef GDX_EXCHANGE_UNIVERSAL_PAIR_H_
#define GDX_EXCHANGE_UNIVERSAL_PAIR_H_

#include <string>

#include "exchange/setting.h"
#include "graph/nre_eval.h"
#include "pattern/pattern.h"
#include "relational/instance.h"

namespace gdx {

/// The paper's §5 proposal for universal representatives in the presence
/// of target constraints: since no graph pattern π alone can satisfy
/// Sol_Ω(I) = Rep_Σ(π) once egds are present (Proposition 5.3), represent
/// the solution space by the *pair* (pattern, target constraints):
///
///   G is represented  ⇔  π → G  and  G ⊨ M_t.
///
/// The pair classifies Figure 1's G1/G2 as represented and Figure 7's
/// corrupted graph as not, which no single pattern can do.
class UniversalPair {
 public:
  /// `setting` must outlive the pair; the pattern is stored by value
  /// (typically the output of ChaseToPattern + ChasePatternEgds).
  UniversalPair(GraphPattern pattern, const Setting* setting)
      : pattern_(std::move(pattern)), setting_(setting) {}

  const GraphPattern& pattern() const { return pattern_; }
  const Setting& setting() const { return *setting_; }

  /// Classification per §5: homomorphism from the pattern AND target
  /// constraints satisfied.
  bool Represents(const Graph& g, const NreEvaluator& eval) const;

  /// Detailed verdict for diagnostics.
  struct Verdict {
    bool homomorphism_exists = false;
    bool constraints_satisfied = false;
    bool represented() const {
      return homomorphism_exists && constraints_satisfied;
    }
  };
  Verdict Classify(const Graph& g, const NreEvaluator& eval) const;

  std::string ToString(const Universe& universe) const;

 private:
  GraphPattern pattern_;
  const Setting* setting_;
};

/// Builds the §5 representative for a setting and instance: chase the
/// s-t tgds into a pattern, then run the adapted egd chase. Fails with
/// FAILED_PRECONDITION if the chase fails (then no solution exists and no
/// representative is needed).
Result<UniversalPair> BuildUniversalPair(const Setting& setting,
                                         const Instance& source,
                                         Universe& universe,
                                         const NreEvaluator& eval);

}  // namespace gdx

#endif  // GDX_EXCHANGE_UNIVERSAL_PAIR_H_
