#ifndef GDX_EXCHANGE_SOLUTION_CHECK_H_
#define GDX_EXCHANGE_SOLUTION_CHECK_H_

#include <string>
#include <vector>

#include "common/universe.h"
#include "exchange/setting.h"
#include "graph/graph.h"
#include "graph/nre_eval.h"
#include "relational/instance.h"

namespace gdx {

/// Semantic knobs for solution checking.
struct SolutionCheckOptions {
  /// Treat sameAs as implicitly reflexive: a sameAs constraint trigger with
  /// x1 = x2 is satisfied without a self-loop edge. Matches the paper's
  /// Figure 1(c), which draws no reflexive sameAs edges (RDF sameAs is
  /// reflexive). Set false for strict first-order edge semantics.
  bool implicit_reflexive_sameas = true;
};

/// Outcome of checking whether G ∈ Sol_Ω(I) (paper §2, "Solutions").
struct SolutionCheckReport {
  bool st_tgds_ok = true;
  bool egds_ok = true;
  bool target_tgds_ok = true;
  bool sameas_ok = true;
  /// Human-readable witnesses of violations (capped per category).
  std::vector<std::string> violations;

  bool IsSolution() const {
    return st_tgds_ok && egds_ok && target_tgds_ok && sameas_ok;
  }
};

/// Checks (I, G) ⊨ M_st and G ⊨ M_t, reporting the first few violating
/// triggers per constraint class.
SolutionCheckReport CheckSolution(const Setting& setting,
                                  const Instance& source, const Graph& g,
                                  const NreEvaluator& eval,
                                  const Universe& universe,
                                  const SolutionCheckOptions& options = {});

/// Convenience: true iff G is a solution for I under the setting.
bool IsSolution(const Setting& setting, const Instance& source,
                const Graph& g, const NreEvaluator& eval,
                const Universe& universe,
                const SolutionCheckOptions& options = {});

}  // namespace gdx

#endif  // GDX_EXCHANGE_SOLUTION_CHECK_H_
