#ifndef GDX_EXCHANGE_CONSTRAINTS_H_
#define GDX_EXCHANGE_CONSTRAINTS_H_

#include <vector>

#include "graph/alphabet.h"
#include "graph/cnre.h"

namespace gdx {

/// A target equality-generating dependency ∀x (ψ_Σ(x) → x1 = x2) — paper
/// §2. The body is a CNRE over the target alphabet; x1, x2 are among its
/// variables.
struct TargetEgd {
  CnreQuery body;
  VarId x1 = 0;
  VarId x2 = 0;
};

/// A target tgd ∀x (φ_Σ(x) → ∃y ψ_Σ(x, y)) — paper §2. Head atoms share
/// the body's VarTable; head variables bound by no body atom are
/// existential.
struct TargetTgd {
  CnreQuery body;
  std::vector<CnreAtom> head;

  /// The head as a standalone Boolean query sharing this tgd's var ids.
  CnreQuery HeadQuery() const {
    CnreQuery q;
    q.SetVarTable(body.vars());
    for (const CnreAtom& atom : head) q.AddAtom(atom.x, atom.nre, atom.y);
    return q;
  }
};

/// A sameAs constraint ∀x (ψ_Σ(x) → (x1, sameAs, x2)) — the paper's
/// RDF-inspired relaxation of egds (§2, §4.2). A special case of target
/// tgd whose head is one sameAs edge between body variables.
struct SameAsConstraint {
  CnreQuery body;
  VarId x1 = 0;
  VarId x2 = 0;

  /// Lowers to the equivalent target tgd.
  TargetTgd AsTargetTgd(Alphabet& alphabet) const {
    TargetTgd tgd;
    tgd.body = body;
    tgd.head.push_back(CnreAtom{Term::Var(x1),
                                Nre::Symbol(alphabet.SameAsSymbol()),
                                Term::Var(x2)});
    return tgd;
  }
};

}  // namespace gdx

#endif  // GDX_EXCHANGE_CONSTRAINTS_H_
