#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace gdx {
namespace obs {

std::atomic<Tracer*> Tracer::global_{nullptr};

namespace {

std::atomic<uint64_t> next_tracer_id{1};

/// Per-thread cache of "which buffer do I record into" so RecordSpan hits
/// the registration mutex once per (thread, tracer) pair. Keyed by the
/// tracer's process-unique id: a dead tracer's cache entry mismatches the
/// next tracer's id and is simply re-resolved, never dereferenced.
struct ThreadBufferCache {
  uint64_t tracer_id = 0;
  void* buffer = nullptr;
};
thread_local ThreadBufferCache tl_buffer_cache;

}  // namespace

Tracer::Tracer(size_t events_per_thread)
    : tracer_id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      events_per_thread_(events_per_thread == 0 ? 1 : events_per_thread),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() {
  // Defensive: a tracer must be uninstalled before destruction, but make
  // the mistake loud-proof rather than a dangling global.
  Tracer* self = this;
  global_.compare_exchange_strong(self, nullptr,
                                  std::memory_order_acq_rel);
}

Tracer::ThreadBuffer& Tracer::BufferForThisThread() {
  ThreadBufferCache& cache = tl_buffer_cache;
  if (cache.tracer_id == tracer_id_) {
    return *static_cast<ThreadBuffer*>(cache.buffer);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(
      static_cast<uint32_t>(buffers_.size()), events_per_thread_));
  ThreadBuffer* buffer = buffers_.back().get();
  cache.tracer_id = tracer_id_;
  cache.buffer = buffer;
  return *buffer;
}

void Tracer::RecordSpan(const char* name, const char* category,
                        uint64_t start_ns, uint64_t duration_ns,
                        uint64_t arg, bool has_arg) {
  ThreadBuffer& buffer = BufferForThisThread();
  if (buffer.events.size() >= events_per_thread_) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(
      Event{name, category, start_ns, duration_ns, arg, has_arg});
}

namespace {

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

/// One trace event line. ph is "B"/"E"/"M"; ts/dur are microseconds with
/// nanosecond precision kept in the fraction.
void AppendEvent(std::string* out, char ph, const char* name,
                 const char* category, uint64_t ts_ns, uint32_t tid,
                 uint64_t arg, bool has_arg) {
  char buf[64];
  *out += "{\"ph\":\"";
  out->push_back(ph);
  *out += "\",\"pid\":1,\"tid\":";
  std::snprintf(buf, sizeof(buf), "%" PRIu32, tid);
  *out += buf;
  *out += ",\"ts\":";
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ts_ns / 1000,
                ts_ns % 1000);
  *out += buf;
  *out += ",\"name\":\"";
  AppendEscaped(out, name);
  *out += "\"";
  if (category != nullptr) {
    *out += ",\"cat\":\"";
    AppendEscaped(out, category);
    *out += "\"";
  }
  if (has_arg) {
    *out += ",\"args\":{\"arg\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, arg);
    *out += buf;
    *out += "}";
  }
  *out += "}";
}

}  // namespace

std::string Tracer::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(1u << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&out, &first](char ph, const char* name,
                             const char* category, uint64_t ts_ns,
                             uint32_t tid, uint64_t arg, bool has_arg) {
    if (!first) out += ",\n";
    first = false;
    AppendEvent(&out, ph, name, category, ts_ns, tid, arg, has_arg);
  };
  for (const auto& buffer : buffers_) {
    // Thread metadata: name threads by registration ordinal so Perfetto's
    // track labels are stable and readable.
    char name[32];
    std::snprintf(name, sizeof(name), "gdx-thread-%" PRIu32, buffer->tid);
    if (!first) out += ",\n";
    first = false;
    char buf[32];
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu32, buffer->tid);
    out += buf;
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    AppendEscaped(&out, name);
    out += "\"}}";

    // Spans were recorded at *end* time (RAII destructor order). Within a
    // thread they nest properly, so replaying them in start order with an
    // explicit stack emits a balanced, correctly nested B/E stream: before
    // beginning the next span, every already-open span that ends at or
    // before its start is closed. Ties (equal start) open the longer span
    // first — that is the enclosing one.
    std::vector<const Event*> ordered;
    ordered.reserve(buffer->events.size());
    for (const Event& e : buffer->events) ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Event* a, const Event* b) {
                       if (a->start_ns != b->start_ns) {
                         return a->start_ns < b->start_ns;
                       }
                       return a->duration_ns > b->duration_ns;
                     });
    std::vector<const Event*> open;
    for (const Event* e : ordered) {
      while (!open.empty() &&
             open.back()->start_ns + open.back()->duration_ns <=
                 e->start_ns) {
        const Event* done = open.back();
        open.pop_back();
        emit('E', done->name, done->category,
             done->start_ns + done->duration_ns, buffer->tid, 0, false);
      }
      emit('B', e->name, e->category, e->start_ns, buffer->tid, e->arg,
           e->has_arg);
      open.push_back(e);
    }
    while (!open.empty()) {
      const Event* done = open.back();
      open.pop_back();
      emit('E', done->name, done->category,
           done->start_ns + done->duration_ns, buffer->tid, 0, false);
    }
  }
  out += "\n]}\n";
  return out;
}

Status Tracer::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return Status::Internal("cannot open trace file: " + path);
  std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) return Status::Internal("cannot write trace file: " + path);
  return Status::Ok();
}

uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->dropped;
  return total;
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events.size();
  return total;
}

}  // namespace obs
}  // namespace gdx
