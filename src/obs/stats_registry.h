#ifndef GDX_OBS_STATS_REGISTRY_H_
#define GDX_OBS_STATS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"

namespace gdx {
namespace obs {

/// Schema version of StatsRegistry::ToJson output. docs/TELEMETRY.md is
/// the normative description of that schema; scripts/check_docs.py fails
/// CI when the documented version and this constant drift apart (same
/// contract as kFormatVersion / docs/FORMAT.md).
inline constexpr uint32_t kTelemetrySchemaVersion = 1;

/// Number of independent recording shards per metric. Each recording
/// thread is pinned to one shard (round-robin at first touch), so under
/// typical worker counts every hot-path increment is an uncontended
/// relaxed atomic on a cache line no other thread writes. Reads merge all
/// shards. Power of two.
inline constexpr size_t kStatsShards = 16;

/// The shard the calling thread records into (stable for the thread's
/// lifetime).
size_t ThisThreadShard();

namespace internal {
struct alignas(64) PaddedCell {
  std::atomic<uint64_t> value{0};
};
}  // namespace internal

/// Monotonic counter: sharded relaxed adds, merged on read. Handles are
/// obtained from a StatsRegistry and stay valid for the registry's
/// lifetime; Add is safe from any thread.
class Counter {
 public:
  void Add(uint64_t delta) {
    cells_[ThisThreadShard()].value.fetch_add(delta,
                                              std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  internal::PaddedCell cells_[kStatsShards];
};

/// Point-in-time value (queue depth, live entry count): last writer wins.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Sharded log-scale latency histogram (layout: obs/histogram.h). Record
/// touches only the calling thread's shard — a handful of relaxed atomics
/// on otherwise-private cache lines — so concurrent recorders never
/// contend. Snapshot() merges the shards into a HistogramSnapshot; because
/// bucketing is deterministic and merging is element-wise addition, the
/// merged result is independent of how recordings were distributed over
/// threads (single-threaded and 8-worker runs of the same values produce
/// identical snapshots — tested).
class Histogram {
 public:
  void Record(uint64_t value) {
    Shard& shard = shards_[ThisThreadShard()];
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    shard.buckets[HistogramLayout::BucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    AtomicMin(shard.min, value);
    AtomicMax(shard.max, value);
  }

  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{~static_cast<uint64_t>(0)};
    std::atomic<uint64_t> max{0};
    std::atomic<uint64_t> buckets[HistogramLayout::kNumBuckets] = {};
  };

  static void AtomicMin(std::atomic<uint64_t>& slot, uint64_t value) {
    uint64_t current = slot.load(std::memory_order_relaxed);
    while (value < current &&
           !slot.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>& slot, uint64_t value) {
    uint64_t current = slot.load(std::memory_order_relaxed);
    while (value > current &&
           !slot.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
    }
  }

  Shard shards_[kStatsShards];
};

/// Engine-wide registry of named counters, gauges, and latency histograms
/// (ISSUE 6 tentpole part 1). Registration (Get*) takes a mutex and is
/// meant to happen once per metric — callers cache the returned handle;
/// recording through a handle is lock-free (see Counter/Histogram). Names
/// are dot-separated lowercase paths ("engine.solve.total_ns"); histogram
/// names end in the recorded unit. ToJson renders the whole registry
/// deterministically (names sorted, fixed field order) in the schema of
/// docs/TELEMETRY.md — the `--metrics-json` payload.
///
/// Handles stay valid for the registry's lifetime (metrics are never
/// removed). Get* with one name always returns the same handle, so
/// separate subsystems recording into the same name share one metric.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Deterministic machine-readable dump (docs/TELEMETRY.md schema):
  /// {"schema":N, "counters":{...}, "gauges":{...}, "histograms":{...}}.
  /// Histogram entries carry count/sum/min/max, p50/p90/p99 (ns, bucket
  /// upper bounds), and the non-empty [lower_bound, count] bucket pairs.
  std::string ToJson() const;

  /// Read-out snapshots for tests and in-process consumers.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramValues()
      const;

 private:
  mutable std::mutex mutex_;
  // std::map: iteration order == lexicographic name order, which makes
  // every dump deterministic without a sort at read time.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace gdx

#endif  // GDX_OBS_STATS_REGISTRY_H_
