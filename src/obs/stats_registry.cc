#include "obs/stats_registry.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>

namespace gdx {
namespace obs {

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kStatsShards - 1);
  return shard;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  for (const Shard& shard : shards_) {
    uint64_t count = shard.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    out.count += count;
    out.sum += shard.sum.load(std::memory_order_relaxed);
    uint64_t min = shard.min.load(std::memory_order_relaxed);
    uint64_t max = shard.max.load(std::memory_order_relaxed);
    if (min < out.min) out.min = min;
    if (max > out.max) out.max = max;
    for (size_t i = 0; i < HistogramLayout::kNumBuckets; ++i) {
      out.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

Counter* StatsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* StatsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* StatsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

}  // namespace

std::string StatsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":";
  AppendU64(&out, kTelemetrySchemaVersion);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    AppendU64(&out, counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    AppendI64(&out, gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    HistogramSnapshot snap = histogram->Snapshot();
    AppendJsonString(&out, name);
    out += ":{\"count\":";
    AppendU64(&out, snap.count);
    out += ",\"sum\":";
    AppendU64(&out, snap.sum);
    out += ",\"min\":";
    AppendU64(&out, snap.count == 0 ? 0 : snap.min);
    out += ",\"max\":";
    AppendU64(&out, snap.max);
    out += ",\"p50\":";
    AppendU64(&out, snap.ValueAtQuantile(0.50));
    out += ",\"p90\":";
    AppendU64(&out, snap.ValueAtQuantile(0.90));
    out += ",\"p99\":";
    AppendU64(&out, snap.ValueAtQuantile(0.99));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      out += "[";
      AppendU64(&out, HistogramLayout::BucketLowerBound(i));
      out += ",";
      AppendU64(&out, snap.buckets[i]);
      out += "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::vector<std::pair<std::string, uint64_t>> StatsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> StatsRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->Value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
StatsRegistry::HistogramValues() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->Snapshot());
  }
  return out;
}

}  // namespace obs
}  // namespace gdx
