#ifndef GDX_OBS_TRACE_H_
#define GDX_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace gdx {
namespace obs {

/// Span-based tracer (ISSUE 6 tentpole part 2): RAII scopes record
/// (name, category, start, duration, optional arg) events into per-thread
/// ring buffers; ToJson exports them as Chrome trace-event JSON (balanced
/// B/E pairs) that chrome://tracing and Perfetto open directly.
///
/// Cost model. Instrumentation sites use the GDX_TRACE_SPAN macros below,
/// which consult the process-global tracer:
///   * no tracer installed (the default) — one relaxed atomic load and a
///     predictable branch per span; no allocation, no clock read. This is
///     the "disabled path" the BM_TracedEngineBatch bench holds to <1%
///     overhead, and `-DGDX_OBS_DISABLED` compiles the macros away
///     entirely (the compile-time-checkable no-op path).
///   * tracer installed and enabled — two steady_clock reads plus one
///     bump of the calling thread's own ring buffer; no locks on the hot
///     path (the buffer-registration mutex is hit once per thread).
///
/// Buffers are bounded: each thread holds at most `events_per_thread`
/// events; once full, new events are dropped and counted
/// (dropped_events), never blocking or reallocating mid-run. Tracing
/// never alters engine results — the CI trace-smoke step asserts a traced
/// run's --report-out is byte-identical to an untraced one.
///
/// Lifetime: install with SetGlobal(&tracer), uninstall with
/// SetGlobal(nullptr) *before* the tracer dies. Threads cache their
/// buffer keyed by a process-unique tracer id, so a stale cache entry is
/// detected by id mismatch, never dereferenced.
class Tracer {
 public:
  explicit Tracer(size_t events_per_thread = 1u << 16);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-global tracer the GDX_TRACE_SPAN macros record into
  /// (nullptr = tracing disabled, the default).
  static Tracer* Global() {
    return global_.load(std::memory_order_acquire);
  }
  static void SetGlobal(Tracer* tracer) {
    global_.store(tracer, std::memory_order_release);
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Nanoseconds since this tracer's construction (monotonic).
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records one completed span. `name`/`category` must be string
  /// literals (stored by pointer). Called by TraceSpan's destructor; also
  /// usable directly for spans whose bounds don't fit a C++ scope.
  void RecordSpan(const char* name, const char* category, uint64_t start_ns,
                  uint64_t duration_ns, uint64_t arg, bool has_arg);

  /// Chrome trace-event JSON: {"traceEvents":[...]} with per-thread
  /// metadata (M) events and properly nested, balanced B/E pairs —
  /// loadable by Perfetto / chrome://tracing and validated by
  /// scripts/check_trace.py. Thread ids are registration-ordinal (0 = the
  /// first thread that recorded a span).
  std::string ToJson() const;

  /// ToJson straight to a file.
  Status WriteJson(const std::string& path) const;

  /// Events dropped because a thread's ring buffer was full.
  uint64_t dropped_events() const;
  /// Events currently buffered across all threads.
  size_t event_count() const;

 private:
  friend class TraceSpan;

  struct Event {
    const char* name;
    const char* category;
    uint64_t start_ns;
    uint64_t duration_ns;
    uint64_t arg;
    bool has_arg;
  };

  struct ThreadBuffer {
    explicit ThreadBuffer(uint32_t tid_arg, size_t capacity)
        : tid(tid_arg) {
      events.reserve(capacity);
    }
    uint32_t tid;
    std::vector<Event> events;
    uint64_t dropped = 0;
  };

  /// The calling thread's buffer, registering it on first touch.
  ThreadBuffer& BufferForThisThread();

  static std::atomic<Tracer*> global_;

  const uint64_t tracer_id_;  // process-unique, for thread-local caching
  const size_t events_per_thread_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;  // guards buffers_ (list, not contents)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: captures the start time at construction and records the
/// completed span into the global tracer at destruction. When no tracer
/// is installed (or it is disabled), construction is a pointer load and a
/// branch. Use through the GDX_TRACE_SPAN macros.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "engine")
      : name_(name), category_(category) {
    Tracer* tracer = Tracer::Global();
    if (tracer != nullptr && tracer->enabled()) {
      tracer_ = tracer;
      start_ns_ = tracer->NowNs();
    }
  }
  TraceSpan(const char* name, const char* category, uint64_t arg)
      : TraceSpan(name, category) {
    arg_ = arg;
    has_arg_ = true;
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->RecordSpan(name_, category_, start_ns_,
                          tracer_->NowNs() - start_ns_, arg_, has_arg_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  Tracer* tracer_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t arg_ = 0;
  bool has_arg_ = false;
};

}  // namespace obs
}  // namespace gdx

// Span macros. GDX_TRACE_SPAN(name, category[, arg]) opens a span for the
// rest of the enclosing scope. Compiling with -DGDX_OBS_DISABLED turns
// every site into nothing at all — the compile-time-checkable zero-
// overhead path; without it, the runtime no-op path (no global tracer)
// costs one atomic load + branch.
#if defined(GDX_OBS_DISABLED)
#define GDX_TRACE_SPAN(...) \
  do {                      \
  } while (0)
#else
#define GDX_OBS_CONCAT_INNER(a, b) a##b
#define GDX_OBS_CONCAT(a, b) GDX_OBS_CONCAT_INNER(a, b)
#define GDX_TRACE_SPAN(...)                                  \
  ::gdx::obs::TraceSpan GDX_OBS_CONCAT(gdx_trace_span_,      \
                                       __LINE__)(__VA_ARGS__)
#endif

#endif  // GDX_OBS_TRACE_H_
