#ifndef GDX_OBS_HISTOGRAM_H_
#define GDX_OBS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>

namespace gdx {
namespace obs {

/// Fixed-bucket log-scale histogram layout (ISSUE 6 tentpole part 1).
///
/// Values are non-negative integers (the engine records nanoseconds).
/// Buckets are log2-spaced with kSubBuckets sub-divisions per octave —
/// the classic HdrHistogram-style log-linear layout: relative bucket
/// width is at most 1/kSubBuckets (25%), values below kSubBuckets are
/// exact, and the mapping covers the full uint64 range in
/// kNumBuckets = 252 buckets. The layout is a compile-time constant, so
/// every histogram in every process buckets identically and merging two
/// histograms is plain element-wise addition — commutative, associative,
/// and loss-free (merge(a,b) == merge(b,a), tested).
///
/// All math is integer-only and branch-light; BucketIndex is the hot-path
/// cost of a Record (one bit-scan, two shifts).
struct HistogramLayout {
  static constexpr size_t kSubBucketBits = 2;                 // 4/octave
  static constexpr size_t kSubBuckets = 1u << kSubBucketBits;
  /// Octave 0 holds exact values [0, kSubBuckets); octaves 1..62 hold
  /// kSubBuckets buckets each; the 63rd octave's buckets cover the top
  /// of the uint64 range.
  static constexpr size_t kNumBuckets =
      kSubBuckets + (63 - kSubBucketBits + 1) * kSubBuckets;  // 252

  static constexpr size_t BucketIndex(uint64_t v) {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    // h = floor(log2(v)) >= kSubBucketBits.
    size_t h = 63 - static_cast<size_t>(__builtin_clzll(v));
    size_t sub =
        static_cast<size_t>(v >> (h - kSubBucketBits)) & (kSubBuckets - 1);
    return ((h - kSubBucketBits + 1) << kSubBucketBits) + sub;
  }

  /// Smallest value mapping to bucket `i`.
  static constexpr uint64_t BucketLowerBound(size_t i) {
    if (i < kSubBuckets) return i;
    size_t octave = i >> kSubBucketBits;       // >= 1
    size_t sub = i & (kSubBuckets - 1);
    size_t h = octave + kSubBucketBits - 1;
    return static_cast<uint64_t>(kSubBuckets + sub) << (h - kSubBucketBits);
  }

  /// Largest value mapping to bucket `i` (inclusive).
  static constexpr uint64_t BucketUpperBound(size_t i) {
    if (i < kSubBuckets) return i;
    size_t octave = i >> kSubBucketBits;
    size_t h = octave + kSubBucketBits - 1;
    uint64_t width = static_cast<uint64_t>(1) << (h - kSubBucketBits);
    return BucketLowerBound(i) + (width - 1);
  }
};

/// A mergeable, comparable histogram snapshot: plain counts, no atomics.
/// This is both the single-threaded recording type and the read-out type
/// that StatsRegistry's sharded recorders merge into. Percentiles are
/// deterministic: a quantile resolves to the *upper bound* of the bucket
/// containing it, so equal recordings — in any thread interleaving —
/// report byte-identical percentiles.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = ~static_cast<uint64_t>(0);  // ~0 when empty
  uint64_t max = 0;
  std::array<uint64_t, HistogramLayout::kNumBuckets> buckets{};

  void Record(uint64_t value) {
    ++count;
    sum += value;
    min = std::min(min, value);
    max = std::max(max, value);
    ++buckets[HistogramLayout::BucketIndex(value)];
  }

  void Merge(const HistogramSnapshot& other) {
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  }

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th recorded value (rank 1 = smallest). 0 when
  /// empty. q=0 reports min, q=1 reports the max bucket's upper bound.
  uint64_t ValueAtQuantile(double q) const {
    if (count == 0) return 0;
    if (q <= 0.0) return min;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
    if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
    if (rank == 0) rank = 1;
    if (rank > count) rank = count;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      seen += buckets[i];
      if (seen >= rank) {
        // Never report beyond the recorded max (the top bucket's upper
        // bound can overshoot it by up to 25%).
        return std::min(HistogramLayout::BucketUpperBound(i), max);
      }
    }
    return max;
  }

  double MeanNs() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  bool operator==(const HistogramSnapshot& other) const {
    return count == other.count && sum == other.sum && min == other.min &&
           max == other.max && buckets == other.buckets;
  }
};

}  // namespace obs
}  // namespace gdx

#endif  // GDX_OBS_HISTOGRAM_H_
