#ifndef GDX_SOLVER_SAMEAS_ENGINE_H_
#define GDX_SOLVER_SAMEAS_ENGINE_H_

#include "common/status.h"
#include "common/universe.h"
#include "exchange/setting.h"
#include "graph/graph.h"
#include "graph/nre_eval.h"
#include "relational/instance.h"

namespace gdx {

/// Utilities for the sameAs relaxation of §4.2: tractable existence and
/// quotient semantics.
class SameAsEngine {
 public:
  /// Collapses sameAs-connected components: every class is replaced by a
  /// single representative (constants preferred, then smallest value);
  /// non-sameAs edges are re-targeted; intra-class sameAs edges become
  /// self-loops and are dropped. This makes the egd-style reading of a
  /// sameAs-solution explicit (cf. the paper's Example 2.2 discussion of
  /// cert_Ω vs cert_Ω′).
  static Graph QuotientGraph(const Graph& g, Alphabet& alphabet);

  /// The §4.2 constructive existence procedure for sameAs-only settings:
  /// (i) chase a pattern with the s-t tgds, (ii) take any graph represented
  /// by it (canonical instantiation), (iii) add the sameAs edges required
  /// by the constraints. Always succeeds for sameAs-only settings — the
  /// paper's "existence becomes trivial". Returns the verified solution.
  static Result<Graph> TrivialSolution(const Setting& setting,
                                       const Instance& source,
                                       Universe& universe,
                                       const NreEvaluator& eval);
};

}  // namespace gdx

#endif  // GDX_SOLVER_SAMEAS_ENGINE_H_
