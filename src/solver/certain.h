#ifndef GDX_SOLVER_CERTAIN_H_
#define GDX_SOLVER_CERTAIN_H_

#include <vector>

#include "graph/cnre.h"
#include "pattern/pattern.h"
#include "solver/existence.h"

namespace gdx {

/// Options for certain-answer computation.
struct CertainAnswerOptions {
  ExistenceOptions existence;
  /// How many structurally distinct solutions to intersect over.
  size_t max_solutions = 64;
};

/// cert_Ω(Q, I) computed by intersecting Q over enumerated solutions
/// (paper §2, "Query answering"). The intersection over a *subset* of
/// solutions over-approximates the true certain answers; it converges to
/// the exact set once the enumerated family is rich enough (exact on all
/// of the paper's examples — see tests). Consistent with Cor 4.2/4.4's
/// coNP-hardness, no general efficient exact procedure is possible.
struct CertainAnswerResult {
  /// True iff no solution exists: every tuple is vacuously certain.
  bool no_solution = false;
  /// Certain tuples over constants (nulls never appear in certain answers),
  /// sorted for deterministic comparison.
  std::vector<std::vector<Value>> tuples;
  size_t solutions_considered = 0;
};

class CertainAnswerSolver {
 public:
  CertainAnswerSolver(const NreEvaluator* eval,
                      CertainAnswerOptions options = {})
      : eval_(eval), options_(options) {}

  /// Computes cert_Ω(Q, I) by solution enumeration + intersection.
  CertainAnswerResult Compute(const Setting& setting, const Instance& source,
                              const CnreQuery& query,
                              Universe& universe) const;

  /// Decides membership of one tuple: searches enumerated solutions for a
  /// counterexample (a solution where the tuple is not an answer) — the
  /// coNP shape of Corollary 4.2. Returns false on counterexample, true if
  /// no solution refutes it within budget (exact when enumeration covers).
  bool IsCertain(const Setting& setting, const Instance& source,
                 const CnreQuery& query, const std::vector<Value>& tuple,
                 Universe& universe) const;

 private:
  const NreEvaluator* eval_;
  CertainAnswerOptions options_;
};

/// True iff every value in the tuple is a constant (nulls never appear in
/// certain answers).
bool AllConstantTuple(const std::vector<Value>& tuple);

/// Sorts tuples by raw value encoding — the deterministic report order
/// shared by the certain-answer solver and the engine.
void SortAnswerTuples(std::vector<std::vector<Value>>& tuples);

/// Naive certain answers over a universal representative (tgd-only
/// settings, paper §3.2 after [4, 5]): evaluate Q over the pattern's
/// definite subgraph and keep all-constant tuples. Sound (a lower bound on
/// the certain answers); exact for queries whose witnesses lie in the
/// definite part.
std::vector<std::vector<Value>> PatternCertainAnswers(
    const GraphPattern& pattern, const CnreQuery& query,
    const NreEvaluator& eval);

}  // namespace gdx

#endif  // GDX_SOLVER_CERTAIN_H_
