#ifndef GDX_SOLVER_CORE_MINIMIZER_H_
#define GDX_SOLVER_CORE_MINIMIZER_H_

#include "common/universe.h"
#include "exchange/setting.h"
#include "exchange/solution_check.h"
#include "graph/graph.h"
#include "graph/nre_eval.h"
#include "relational/instance.h"

namespace gdx {

struct CoreMinimizeStats {
  size_t edges_removed = 0;
  size_t nodes_removed = 0;
  size_t checks = 0;
};

/// Greedy core minimization of a solution (after the *core* notion of
/// relational data exchange, Fagin–Kolaitis–Popa): repeatedly drop edges —
/// and then isolated nulls — while the graph remains a solution. The
/// result is a subset-minimal solution contained in the input (not
/// necessarily THE core, which would require hom-equivalence folding, but
/// a deterministic, verified shrinkage). Useful because chase-produced
/// solutions carry redundant parallel paths.
Graph GreedyCoreMinimize(const Graph& solution, const Setting& setting,
                         const Instance& source, const NreEvaluator& eval,
                         const Universe& universe,
                         CoreMinimizeStats* stats = nullptr,
                         const SolutionCheckOptions& options = {});

}  // namespace gdx

#endif  // GDX_SOLVER_CORE_MINIMIZER_H_
