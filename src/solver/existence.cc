#include "solver/existence.h"

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "chase/sameas_completion.h"
#include "chase/target_tgd_chase.h"
#include "exchange/solution_check.h"
#include "graph/isomorphism.h"
#include "sat/dpll.h"
#include "solver/flat_encoding.h"

#include <unordered_set>

namespace gdx {
namespace {

/// Advances a mixed-radix odometer; returns false on wraparound.
bool NextChoice(std::vector<size_t>& choices,
                const std::vector<std::vector<Witness>>& lists) {
  for (size_t i = 0; i < choices.size(); ++i) {
    if (++choices[i] < lists[i].size()) return true;
    choices[i] = 0;
  }
  return false;
}

}  // namespace

std::optional<Graph> ExistenceSolver::RepairAndVerify(
    Graph candidate, const Setting& setting, const Instance& source,
    Universe& universe) const {
  if (!setting.egds.empty()) {
    EgdChaseResult egd = ChaseGraphEgds(candidate, setting.egds, *eval_);
    if (egd.failed) return std::nullopt;
  }
  if (!setting.target_tgds.empty()) {
    Status st = ChaseTargetTgds(candidate, setting.target_tgds, universe,
                                *eval_, options_.target_tgd_max_rounds);
    if (!st.ok()) return std::nullopt;
    // Target tgd chase may have re-broken egds; re-repair once.
    if (!setting.egds.empty()) {
      EgdChaseResult egd = ChaseGraphEgds(candidate, setting.egds, *eval_);
      if (egd.failed) return std::nullopt;
    }
  }
  if (!setting.sameas.empty()) {
    Status st = CompleteSameAs(candidate, setting.sameas, *setting.alphabet,
                               *eval_);
    if (!st.ok()) return std::nullopt;
  }
  if (IsSolution(setting, source, candidate, *eval_, universe)) {
    return candidate;
  }
  return std::nullopt;
}

ExistenceReport ExistenceSolver::DecideChaseRefute(const Setting& setting,
                                                   const Instance& source,
                                                   Universe& universe) const {
  ExistenceReport report;
  GraphPattern pattern = ChaseToPattern(source, setting.st_tgds, universe);
  if (!setting.egds.empty()) {
    EgdChaseResult egd = ChasePatternEgds(pattern, setting.egds, *eval_);
    if (egd.failed) {
      report.verdict = ExistenceVerdict::kNo;
      report.refuted_by_chase = true;
      report.note = "adapted chase failed: " + egd.failure_reason;
      return report;
    }
  }
  PatternInstantiator instantiator(&pattern, &universe,
                                   options_.instantiation);
  Result<Graph> canonical = instantiator.InstantiateCanonical();
  if (canonical.ok()) {
    report.candidates_tried = 1;
    std::optional<Graph> solution =
        RepairAndVerify(std::move(canonical).value(), setting, source,
                        universe);
    if (solution.has_value()) {
      report.verdict = ExistenceVerdict::kYes;
      report.witness = std::move(solution);
      report.note = "canonical instantiation verified";
      return report;
    }
  }
  report.verdict = ExistenceVerdict::kUnknown;
  report.note =
      "chase succeeded but canonical instantiation failed verification "
      "(chase success does not imply a solution; paper Example 5.2)";
  return report;
}

ExistenceReport ExistenceSolver::DecideBoundedSearch(
    const Setting& setting, const Instance& source,
    Universe& universe) const {
  ExistenceReport report;
  GraphPattern pattern = ChaseToPattern(source, setting.st_tgds, universe);
  if (!setting.egds.empty()) {
    EgdChaseResult egd = ChasePatternEgds(pattern, setting.egds, *eval_);
    if (egd.failed) {
      report.verdict = ExistenceVerdict::kNo;
      report.refuted_by_chase = true;
      report.note = "adapted chase failed: " + egd.failure_reason;
      return report;
    }
  }
  PatternInstantiator instantiator(&pattern, &universe,
                                   options_.instantiation);
  const auto& lists = instantiator.witness_lists();
  for (const auto& list : lists) {
    if (list.empty()) {
      report.verdict = ExistenceVerdict::kNo;
      report.note = "a pattern edge has no witness within budget";
      return report;
    }
  }
  std::vector<size_t> choices(lists.size(), 0);
  do {
    if (report.candidates_tried >= options_.max_candidates) {
      report.budget_exhausted = true;
      report.verdict = ExistenceVerdict::kUnknown;
      report.note = "candidate budget exhausted";
      return report;
    }
    ++report.candidates_tried;
    Result<Graph> candidate = instantiator.Instantiate(choices);
    if (!candidate.ok()) continue;  // invalid combination (ε between nodes)
    std::optional<Graph> solution = RepairAndVerify(
        std::move(candidate).value(), setting, source, universe);
    if (solution.has_value()) {
      report.verdict = ExistenceVerdict::kYes;
      report.witness = std::move(solution);
      report.note = "bounded search found a verified solution";
      return report;
    }
  } while (NextChoice(choices, lists));
  report.verdict = ExistenceVerdict::kNo;
  report.note =
      "bounded search exhausted all witness combinations without a "
      "solution (complete for witness-covered fragments, e.g. Thm 4.1's)";
  return report;
}

ExistenceReport ExistenceSolver::DecideSatBacked(const Setting& setting,
                                                 const Instance& source,
                                                 Universe& universe) const {
  ExistenceReport report;
  Result<FlatEncoding> encoding = EncodeFlatSetting(setting, source);
  if (!encoding.ok()) {
    report = DecideBoundedSearch(setting, source, universe);
    report.note = "not flat (" + encoding.status().message() +
                  "); fell back to bounded search. " + report.note;
    return report;
  }
  DpllSolver solver;
  SatResult sat = solver.Solve(encoding->cnf);
  report.candidates_tried = sat.stats.decisions + 1;
  if (!sat.satisfiable) {
    if (sat.budget_exhausted) {
      report.verdict = ExistenceVerdict::kUnknown;
      report.budget_exhausted = true;
      report.note = "DPLL decision budget exhausted";
      return report;
    }
    report.verdict = ExistenceVerdict::kNo;
    report.note = "flat CNF unsatisfiable (exact for the flat fragment)";
    return report;
  }
  Graph witness = DecodeFlatModel(*encoding, sat.model);
  // The decoded graph is a solution by construction; verify defensively.
  if (IsSolution(setting, source, witness, *eval_, universe)) {
    report.verdict = ExistenceVerdict::kYes;
    report.witness = std::move(witness);
    report.note = "DPLL model decoded to a verified solution";
    return report;
  }
  report.verdict = ExistenceVerdict::kUnknown;
  report.note = "internal: DPLL model failed verification";
  return report;
}

ExistenceReport ExistenceSolver::Decide(const Setting& setting,
                                        const Instance& source,
                                        Universe& universe) const {
  switch (options_.strategy) {
    case ExistenceStrategy::kChaseRefute:
      return DecideChaseRefute(setting, source, universe);
    case ExistenceStrategy::kBoundedSearch:
      return DecideBoundedSearch(setting, source, universe);
    case ExistenceStrategy::kSatBacked:
      return DecideSatBacked(setting, source, universe);
    case ExistenceStrategy::kAuto:
      break;
  }
  // Auto strategy.
  if (!setting.HasTargetConstraints() || setting.SameAsOnly()) {
    // Solutions always exist (paper §3.2 / §4.2): construct one.
    ExistenceReport report = DecideChaseRefute(setting, source, universe);
    if (report.verdict == ExistenceVerdict::kYes) return report;
    // Canonical instantiation can fail only on witness-budget corner
    // cases; widen via bounded search.
    return DecideBoundedSearch(setting, source, universe);
  }
  if (setting.target_tgds.empty() && setting.sameas.empty()) {
    ExistenceReport report = DecideSatBacked(setting, source, universe);
    if (report.verdict != ExistenceVerdict::kUnknown) return report;
  }
  return DecideBoundedSearch(setting, source, universe);
}

std::vector<Graph> ExistenceSolver::EnumerateSolutions(
    const Setting& setting, const Instance& source, Universe& universe,
    size_t max_solutions) const {
  std::vector<Graph> solutions;
  std::unordered_set<std::string> seen;
  GraphPattern pattern = ChaseToPattern(source, setting.st_tgds, universe);
  if (!setting.egds.empty()) {
    EgdChaseResult egd = ChasePatternEgds(pattern, setting.egds, *eval_);
    if (egd.failed) return solutions;  // no solutions at all
  }
  PatternInstantiator instantiator(&pattern, &universe,
                                   options_.instantiation);
  const auto& lists = instantiator.witness_lists();
  for (const auto& list : lists) {
    if (list.empty()) return solutions;
  }
  // A placeholder universe name provider for signatures: solutions may
  // contain nulls; Signature uses the universe passed at call sites, so we
  // dedup on a structural signature computed with a shared alphabet.
  std::vector<size_t> choices(lists.size(), 0);
  size_t tried = 0;
  do {
    if (tried++ >= options_.max_candidates) break;
    Result<Graph> candidate = instantiator.Instantiate(choices);
    if (!candidate.ok()) continue;
    std::optional<Graph> solution = RepairAndVerify(
        std::move(candidate).value(), setting, source, universe);
    if (!solution.has_value()) continue;
    std::string signature =
        solution->Signature(universe, *setting.alphabet);
    if (!seen.insert(signature).second) continue;
    if (options_.dedup_isomorphic) {
      bool duplicate = false;
      for (const Graph& kept : solutions) {
        if (IsomorphicUpToNulls(*solution, kept)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
    }
    solutions.push_back(std::move(*solution));
    if (solutions.size() >= max_solutions) break;
  } while (NextChoice(choices, lists));
  return solutions;
}

}  // namespace gdx
