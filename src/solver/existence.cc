#include "solver/existence.h"

#include "chase/egd_chase.h"
#include "chase/sameas_completion.h"
#include "chase/target_tgd_chase.h"
#include "exchange/solution_check.h"
#include "graph/isomorphism.h"
#include "sat/dpll.h"
#include "solver/flat_encoding.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <unordered_set>

namespace gdx {
namespace {

/// The chase stage's output as the decision stages consume it.
struct StagePattern {
  GraphPattern pattern;
  bool failed = false;
  std::string failure_reason;
  /// The chase was aborted by a cancellation token (ISSUE 8): the pattern
  /// is truncated and the decision stages must report kUnknown.
  bool canceled = false;
};

/// One entry point for "give me the chased pattern": replay the compiled
/// artifact when the caller brought one (ISSUE 5 — the chase then runs
/// once per (setting, instance) content instead of once per stage), or
/// compile a solve-local artifact and consume it the same way. Routing
/// both paths through ChaseCompiler makes the cached-vs-fresh byte
/// identity hold by construction — there is exactly one chase stage
/// sequence to drift from.
StagePattern BuildStagePattern(const ChasedScenario* chased,
                               const Setting& setting,
                               const Instance& source, Universe& universe,
                               const NreEvaluator& eval,
                               const CancellationToken* cancel) {
  StagePattern out;
  ChasedScenarioPtr local;
  if (chased == nullptr) {
    // Compile already appends the chase's fresh nulls to `universe`, so
    // the artifact is consumed at its own base: no replay shift needed.
    local = ChaseCompiler::Compile(setting, source, universe, eval, cancel);
    out.pattern = local->pattern;
    out.failed = local->failed;
    out.failure_reason = local->failure_reason;
    out.canceled = local->canceled;
    return out;
  }
  out.pattern = ReplayChase(*chased, universe);
  out.failed = chased->failed;
  out.failure_reason = chased->failure_reason;
  out.canceled = chased->canceled;
  return out;
}

}  // namespace

std::optional<Graph> ExistenceSolver::RepairAndVerify(
    Graph candidate, const Setting& setting, const Instance& source,
    Universe& universe) const {
  const CancellationToken* cancel = options_.cancel;
  // Evaluator-internal cancellation (ISSUE 10): the batched multi-source
  // BFS polls this thread-local token per level-synchronous round, so an
  // abort lands inside one long NRE evaluation, not after it.
  ScopedEvalCancellation eval_cancel(cancel);
  // The repair hot path (ISSUE 10 tentpole part 1): component-parallel by
  // default, borrowing the same pool and worker scope as the surrounding
  // witness search — byte-identical output at any worker count.
  EgdChaseOptions egd_options;
  egd_options.policy = options_.egd_policy;
  egd_options.pool = options_.intra_pool;
  egd_options.max_workers = options_.intra_solve_threads;
  egd_options.cancel = cancel;
  egd_options.wrap_worker = options_.worker_scope;
  egd_options.stats = options_.egd_stats;
  if (!setting.egds.empty()) {
    EgdChaseResult egd =
        ChaseGraphEgds(candidate, setting.egds, *eval_, egd_options);
    if (egd.failed) return std::nullopt;
  }
  // A canceled repair leaves the candidate mid-chase: reject it rather
  // than let a partially repaired graph reach the (expensive) final check.
  if (Cancelled()) return std::nullopt;
  if (!setting.target_tgds.empty()) {
    const size_t nodes_before = candidate.num_nodes();
    const size_t edges_before = candidate.num_edges();
    Status st = ChaseTargetTgds(candidate, setting.target_tgds, universe,
                                *eval_, options_.target_tgd_max_rounds,
                                /*stats=*/nullptr, cancel);
    if (!st.ok() || Cancelled()) return std::nullopt;
    // Target tgd chase may have re-broken egds; re-repair once. The chase
    // is purely additive, so an unchanged node/edge count means it fired
    // nothing and the egds still hold — skip the re-chase (ISSUE 3: the
    // common all-satisfied candidate pays one egd pass, not two).
    const bool chase_extended = candidate.num_nodes() != nodes_before ||
                                candidate.num_edges() != edges_before;
    if (chase_extended && !setting.egds.empty()) {
      EgdChaseResult egd =
          ChaseGraphEgds(candidate, setting.egds, *eval_, egd_options);
      if (egd.failed) return std::nullopt;
    }
  }
  if (Cancelled()) return std::nullopt;
  if (!setting.sameas.empty()) {
    Status st = CompleteSameAs(candidate, setting.sameas, *setting.alphabet,
                               *eval_);
    if (!st.ok()) return std::nullopt;
  }
  if (IsSolution(setting, source, candidate, *eval_, universe)) {
    return candidate;
  }
  return std::nullopt;
}

ParallelSearchOptions ExistenceSolver::SearchOptions(
    size_t chunk_size, size_t min_parallel_ranks) const {
  ParallelSearchOptions out;
  out.pool = options_.intra_pool;
  out.max_workers = options_.intra_solve_threads;
  out.chunk_size = chunk_size;
  out.min_parallel_ranks = min_parallel_ranks;
  // Adaptive scheduling (ISSUE 5 satellite): scale workers with the rank
  // space. The SAT cube path overrides this back to 0 — every cube is a
  // whole DPLL call, always worth a worker.
  out.adaptive_ranks_per_worker =
      options_.adaptive_intra ? options_.adaptive_ranks_per_worker : 0;
  out.cancel = options_.cancel;
  out.wrap_worker = options_.worker_scope;
  return out;
}

ExistenceReport ExistenceSolver::DecideChaseRefute(
    const Setting& setting, const Instance& source, Universe& universe,
    const ChasedScenario* chased) const {
  ExistenceReport report;
  StagePattern stage = BuildStagePattern(chased, setting, source, universe,
                                         *eval_, options_.cancel);
  if (stage.canceled || Cancelled()) {
    report.verdict = ExistenceVerdict::kUnknown;
    report.note = "search cancelled";
    return report;
  }
  if (stage.failed) {
    report.verdict = ExistenceVerdict::kNo;
    report.refuted_by_chase = true;
    report.note = "adapted chase failed: " + stage.failure_reason;
    return report;
  }
  GraphPattern& pattern = stage.pattern;
  PatternInstantiator instantiator(&pattern, options_.instantiation);
  Result<Graph> canonical = instantiator.InstantiateCanonical(universe);
  if (canonical.ok()) {
    report.candidates_tried = 1;
    std::optional<Graph> solution =
        RepairAndVerify(std::move(canonical).value(), setting, source,
                        universe);
    if (solution.has_value()) {
      report.verdict = ExistenceVerdict::kYes;
      report.witness = std::move(solution);
      report.note = "canonical instantiation verified";
      return report;
    }
  }
  if (Cancelled()) {
    report.verdict = ExistenceVerdict::kUnknown;
    report.note = "search cancelled";
    return report;
  }
  report.verdict = ExistenceVerdict::kUnknown;
  report.note =
      "chase succeeded but canonical instantiation failed verification "
      "(chase success does not imply a solution; paper Example 5.2)";
  return report;
}

ExistenceReport ExistenceSolver::DecideBoundedSearch(
    const Setting& setting, const Instance& source, Universe& universe,
    const ChasedScenario* chased) const {
  ExistenceReport report;
  StagePattern stage = BuildStagePattern(chased, setting, source, universe,
                                         *eval_, options_.cancel);
  if (stage.canceled || Cancelled()) {
    report.verdict = ExistenceVerdict::kUnknown;
    report.note = "search cancelled";
    return report;
  }
  if (stage.failed) {
    report.verdict = ExistenceVerdict::kNo;
    report.refuted_by_chase = true;
    report.note = "adapted chase failed: " + stage.failure_reason;
    return report;
  }
  GraphPattern& pattern = stage.pattern;
  PatternInstantiator instantiator(&pattern, options_.instantiation);
  const auto& lists = instantiator.witness_lists();
  for (const auto& list : lists) {
    if (list.empty()) {
      report.verdict = ExistenceVerdict::kNo;
      report.note = "a pattern edge has no witness within budget";
      return report;
    }
  }

  // The odometer, flattened to ranks and fanned over the pool (ISSUE 2
  // tentpole). Every worker owns a private universe copy and rolls each
  // candidate's fresh-null draws back to `mark`, so a candidate's nulls
  // depend only on its rank — the winning witness is byte-identical for
  // any worker count, and FindFirst guarantees it is the *minimal*-rank
  // hit, exactly the sequential first hit. The sequential configuration
  // (one worker) skips the copies and works on the shared universe with
  // the same rollback discipline.
  const size_t total_combinations = instantiator.NumCombinations();
  const size_t num_ranks =
      std::min(total_combinations, options_.max_candidates);
  ParallelSearch search(
      SearchOptions(options_.parallel_chunk, options_.parallel_min_ranks));
  const size_t workers = search.NumWorkers(num_ranks);
  const size_t mark = universe.NullMark();
  std::vector<Universe> scratch(workers > 1 ? workers : 0, universe);
  auto worker_universe = [&](size_t worker) -> Universe& {
    return scratch.empty() ? universe : scratch[worker];
  };

  struct BestHit {
    std::mutex mutex;
    size_t rank = ParallelSearch::kNotFound;
    Graph witness;
    std::vector<std::string> nulls;
  };
  BestHit best;
  auto visit = [&](size_t rank, size_t worker) -> bool {
    Universe& u = worker_universe(worker);
    u.RollbackNulls(mark);
    Result<Graph> candidate =
        instantiator.Instantiate(instantiator.DecodeRank(rank), u);
    if (!candidate.ok()) return false;  // invalid combination (ε between
                                        // distinct nodes)
    std::optional<Graph> solution =
        RepairAndVerify(std::move(candidate).value(), setting, source, u);
    if (!solution.has_value()) return false;
    std::lock_guard<std::mutex> lock(best.mutex);
    if (rank < best.rank) {
      best.rank = rank;
      best.witness = std::move(*solution);
      best.nulls = u.NullLabelsSince(mark);
    }
    return true;
  };
  size_t winner = search.FindFirst(num_ranks, visit);
  // In the one-worker configuration the shared universe still carries the
  // last tried candidate's nulls; drop them before adopting the winner's.
  universe.RollbackNulls(mark);

  if (Cancelled()) {
    report.verdict = ExistenceVerdict::kUnknown;
    report.note = "search cancelled";
    return report;
  }
  if (winner != ParallelSearch::kNotFound) {
    // Adopt the winner's fresh nulls into the shared universe: it sits at
    // `mark`, exactly where the winning worker's universe sat when the
    // candidate was instantiated, so the ids line up.
    universe.AppendNullLabels(best.nulls);
    report.candidates_tried = winner + 1;
    report.verdict = ExistenceVerdict::kYes;
    report.witness = std::move(best.witness);
    report.note = "bounded search found a verified solution";
    return report;
  }
  report.candidates_tried = num_ranks;
  if (total_combinations > num_ranks) {
    report.budget_exhausted = true;
    report.verdict = ExistenceVerdict::kUnknown;
    report.note = "candidate budget exhausted";
    return report;
  }
  report.verdict = ExistenceVerdict::kNo;
  report.note =
      "bounded search exhausted all witness combinations without a "
      "solution (complete for witness-covered fragments, e.g. Thm 4.1's)";
  return report;
}

ExistenceReport ExistenceSolver::DecideSatBacked(
    const Setting& setting, const Instance& source, Universe& universe,
    const ChasedScenario* chased) const {
  ExistenceReport report;
  Result<FlatEncoding> encoding = EncodeFlatSetting(setting, source);
  if (!encoding.ok()) {
    report = DecideBoundedSearch(setting, source, universe, chased);
    report.note = "not flat (" + encoding.status().message() +
                  "); fell back to bounded search. " + report.note;
    return report;
  }
  const CnfFormula& cnf = encoding->cnf;
  DpllConfig config;
  config.max_decisions = options_.sat_max_decisions;
  config.cancel =
      options_.cancel != nullptr ? options_.cancel->flag() : nullptr;

  // Cube-and-conquer (ISSUE 2 tentpole): pin the first k variables to all
  // 2^k polarities and hand each cube to its own per-worker DpllSolver.
  // The deck depends only on the formula (never the worker count), and the
  // accepted model is the minimal-rank SAT cube's — deterministic. Small
  // formulas stay on one plain call: carving them up buys nothing. A
  // decision budget also forces the plain call: per-cube budgets would
  // multiply the caller's intended latency bound by the deck size.
  const size_t k = options_.sat_cube_vars;
  const bool use_cubes =
      k > 0 && k < 8 * sizeof(size_t) && config.max_decisions == 0 &&
      cnf.num_vars() >= static_cast<int>(2 * k);
  SatResult sat;
  if (!use_cubes) {
    sat = DpllSolver(config).Solve(cnf);
    report.candidates_tried = sat.stats.decisions + 1;
  } else {
    const size_t num_cubes = size_t{1} << k;
    std::vector<size_t> decisions(num_cubes, 0);
    std::vector<uint8_t> exhausted(num_cubes, 0);
    struct SatWin {
      std::mutex mutex;
      size_t rank = ParallelSearch::kNotFound;
      std::vector<bool> model;
    };
    SatWin win;
    // Every cube is pricey, so chunk = 1, fan out from 2 cubes up, and no
    // adaptive ranks-per-worker damping (a cube is a whole DPLL call).
    ParallelSearchOptions cube_options =
        SearchOptions(/*chunk_size=*/1, /*min_parallel_ranks=*/2);
    cube_options.adaptive_ranks_per_worker = 0;
    ParallelSearch search(cube_options);
    auto visit = [&](size_t rank, size_t) -> bool {
      std::vector<Lit> cube;
      cube.reserve(k);
      for (size_t i = 0; i < k; ++i) {
        Lit v = static_cast<Lit>(i + 1);
        cube.push_back(((rank >> i) & 1) != 0 ? -v : v);
      }
      DpllSolver solver(config);  // per-worker instance, zero sharing
      SatResult cube_result = solver.SolveWithAssumptions(cnf, cube);
      decisions[rank] = cube_result.stats.decisions;  // distinct slots
      exhausted[rank] = cube_result.budget_exhausted ? 1 : 0;
      if (!cube_result.satisfiable) return false;
      std::lock_guard<std::mutex> lock(win.mutex);
      if (rank < win.rank) {
        win.rank = rank;
        win.model = std::move(cube_result.model);
      }
      return true;
    };
    size_t winner = search.FindFirst(num_cubes, visit);
    sat.satisfiable = winner != ParallelSearch::kNotFound;
    if (sat.satisfiable) {
      sat.model = std::move(win.model);
      // Deterministic work accounting: cubes up to and including the
      // winner always run to completion (FindFirst abandons only ranks
      // above the best hit).
      size_t total = 0;
      for (size_t r = 0; r <= winner; ++r) total += decisions[r];
      report.candidates_tried = total + 1;
    } else {
      size_t total = 0;
      bool any_exhausted = false;
      for (size_t r = 0; r < num_cubes; ++r) {
        total += decisions[r];
        any_exhausted = any_exhausted || exhausted[r] != 0;
      }
      report.candidates_tried = total + 1;
      sat.budget_exhausted = any_exhausted;
    }
  }

  if (Cancelled()) {
    report.verdict = ExistenceVerdict::kUnknown;
    report.note = "search cancelled";
    return report;
  }
  if (!sat.satisfiable) {
    if (sat.budget_exhausted) {
      report.verdict = ExistenceVerdict::kUnknown;
      report.budget_exhausted = true;
      report.note = "DPLL decision budget exhausted";
      return report;
    }
    report.verdict = ExistenceVerdict::kNo;
    report.note = "flat CNF unsatisfiable (exact for the flat fragment)";
    return report;
  }
  Graph witness = DecodeFlatModel(*encoding, sat.model);
  // The decoded graph is a solution by construction; verify defensively.
  if (IsSolution(setting, source, witness, *eval_, universe)) {
    report.verdict = ExistenceVerdict::kYes;
    report.witness = std::move(witness);
    report.note = "DPLL model decoded to a verified solution";
    return report;
  }
  report.verdict = ExistenceVerdict::kUnknown;
  report.note = "internal: DPLL model failed verification";
  return report;
}

ExistenceReport ExistenceSolver::Decide(const Setting& setting,
                                        const Instance& source,
                                        Universe& universe,
                                        const ChasedScenario* chased) const {
  // Single-threaded entry: intern the sameAs label now so the concurrent
  // workers' const lookups (sameAs completion, solution checks) always
  // find it — even for settings whose constraints were built by hand
  // without touching the alphabet.
  if (!setting.sameas.empty() && setting.alphabet != nullptr) {
    (void)setting.alphabet->SameAsSymbol();
  }
  switch (options_.strategy) {
    case ExistenceStrategy::kChaseRefute:
      return DecideChaseRefute(setting, source, universe, chased);
    case ExistenceStrategy::kBoundedSearch:
      return DecideBoundedSearch(setting, source, universe, chased);
    case ExistenceStrategy::kSatBacked:
      return DecideSatBacked(setting, source, universe, chased);
    case ExistenceStrategy::kAuto:
      break;
  }
  // Auto strategy.
  if (!setting.HasTargetConstraints() || setting.SameAsOnly()) {
    // Solutions always exist (paper §3.2 / §4.2): construct one.
    ExistenceReport report =
        DecideChaseRefute(setting, source, universe, chased);
    if (report.verdict == ExistenceVerdict::kYes) return report;
    // Canonical instantiation can fail only on witness-budget corner
    // cases; widen via bounded search.
    return DecideBoundedSearch(setting, source, universe, chased);
  }
  if (setting.target_tgds.empty() && setting.sameas.empty()) {
    ExistenceReport report =
        DecideSatBacked(setting, source, universe, chased);
    if (report.verdict != ExistenceVerdict::kUnknown) return report;
  }
  return DecideBoundedSearch(setting, source, universe, chased);
}

std::vector<Graph> ExistenceSolver::EnumerateSolutions(
    const Setting& setting, const Instance& source, Universe& universe,
    size_t max_solutions, const ChasedScenario* chased) const {
  std::vector<Graph> kept;
  if (max_solutions == 0) return kept;
  // Single-threaded entry: see Decide() — pre-intern sameAs for the
  // workers' const lookups.
  if (!setting.sameas.empty() && setting.alphabet != nullptr) {
    (void)setting.alphabet->SameAsSymbol();
  }
  StagePattern stage = BuildStagePattern(chased, setting, source, universe,
                                         *eval_, options_.cancel);
  if (stage.canceled || Cancelled()) return kept;  // truncated pattern
  if (stage.failed) return kept;  // no solutions at all
  GraphPattern& pattern = stage.pattern;
  PatternInstantiator instantiator(&pattern, options_.instantiation);
  const auto& lists = instantiator.witness_lists();
  for (const auto& list : lists) {
    if (list.empty()) return kept;
  }

  // Order-stable parallel enumeration (ISSUE 2 tentpole): workers verify
  // candidates in arbitrary order and record hits by rank; the dedup +
  // max_solutions cap runs in ScanAll's serialized contiguous-prefix
  // callback, strictly in rank order — so the kept set equals the
  // sequential scan's for any worker count. Once the cap is reached the
  // returned ceiling abandons all higher ranks (early exit).
  const size_t total_combinations = instantiator.NumCombinations();
  const size_t num_ranks =
      std::min(total_combinations, options_.max_candidates);
  ParallelSearch search(
      SearchOptions(options_.parallel_chunk, options_.parallel_min_ranks));
  const size_t workers = search.NumWorkers(num_ranks);
  const size_t mark = universe.NullMark();
  std::vector<Universe> scratch(workers > 1 ? workers : 0, universe);
  auto worker_universe = [&](size_t worker) -> Universe& {
    return scratch.empty() ? universe : scratch[worker];
  };

  struct Hit {
    Graph graph;
    std::string signature;
  };
  std::mutex hits_mutex;
  std::map<size_t, Hit> hits;            // rank -> verified solution
  std::unordered_set<std::string> seen;  // merged signatures
  size_t merged = 0;                     // ranks [0, merged) folded in

  auto visit = [&](size_t rank, size_t worker) {
    Universe& u = worker_universe(worker);
    u.RollbackNulls(mark);
    Result<Graph> candidate =
        instantiator.Instantiate(instantiator.DecodeRank(rank), u);
    if (!candidate.ok()) return;
    std::optional<Graph> solution =
        RepairAndVerify(std::move(candidate).value(), setting, source, u);
    if (!solution.has_value()) return;
    // Signature against the worker universe (it knows this candidate's
    // nulls). Rollback makes rank-equal shapes literally identical, so
    // signature dedup is exact here.
    std::string signature = solution->Signature(u, *setting.alphabet);
    std::lock_guard<std::mutex> lock(hits_mutex);
    hits.emplace(rank, Hit{std::move(*solution), std::move(signature)});
  };
  auto on_prefix = [&](size_t prefix_ranks) -> size_t {
    std::lock_guard<std::mutex> lock(hits_mutex);
    for (auto it = hits.lower_bound(merged);
         it != hits.end() && it->first < prefix_ranks;
         it = hits.erase(it)) {
      if (kept.size() >= max_solutions) break;
      Hit& hit = it->second;
      if (!seen.insert(hit.signature).second) continue;
      if (options_.dedup_isomorphic) {
        bool duplicate = false;
        for (const Graph& g : kept) {
          if (IsomorphicUpToNulls(hit.graph, g)) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
      }
      kept.push_back(std::move(hit.graph));
      if (kept.size() >= max_solutions) {
        size_t ceiling = it->first + 1;
        merged = std::max(merged, ceiling);
        hits.erase(it);
        return ceiling;  // every higher rank is now irrelevant
      }
    }
    merged = std::max(merged, prefix_ranks);
    return ParallelSearch::kNotFound;
  };
  search.ScanAll(num_ranks, visit, on_prefix);
  // Enumerated solutions keep their nulls search-local by contract; in
  // the one-worker configuration the shared universe did the scanning.
  universe.RollbackNulls(mark);
  return kept;
}

}  // namespace gdx
