#include "solver/core_minimizer.h"

namespace gdx {
namespace {

/// Rebuilds `g` without edge index `skip`; isolated *nulls* are dropped
/// (isolated constants stay: they may carry meaning for the instance).
Graph WithoutEdge(const Graph& g, size_t skip) {
  Graph out;
  for (size_t i = 0; i < g.edges().size(); ++i) {
    if (i == skip) continue;
    const Edge& e = g.edges()[i];
    out.AddEdge(e.src, e.label, e.dst);
  }
  for (Value v : g.nodes()) {
    if (v.is_constant()) out.AddNode(v);
  }
  return out;
}

}  // namespace

Graph GreedyCoreMinimize(const Graph& solution, const Setting& setting,
                         const Instance& source, const NreEvaluator& eval,
                         const Universe& universe, CoreMinimizeStats* stats,
                         const SolutionCheckOptions& options) {
  Graph current = solution;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    // Last-added edges first: chase redundancy tends to accumulate late.
    for (size_t i = current.edges().size(); i-- > 0;) {
      Graph candidate = WithoutEdge(current, i);
      if (stats != nullptr) ++stats->checks;
      if (IsSolution(setting, source, candidate, eval, universe, options)) {
        if (stats != nullptr) {
          ++stats->edges_removed;
          stats->nodes_removed +=
              current.num_nodes() - candidate.num_nodes();
        }
        current = std::move(candidate);
        shrunk = true;
        break;  // edge indices shifted; restart the scan
      }
    }
  }
  return current;
}

}  // namespace gdx
