#include "solver/flat_encoding.h"

#include <unordered_map>

#include "relational/eval.h"

namespace gdx {
namespace {

struct EdgeVarTable {
  std::unordered_map<uint64_t, int> var_of_key;
  std::vector<Edge> edge_of_var;

  static uint64_t Key(Value u, SymbolId s, Value v) {
    uint64_t x = u.raw();
    x = x * 0x9e3779b97f4a7c15ull + s;
    x = x * 0x9e3779b97f4a7c15ull + v.raw();
    return x;
  }

  int VarOf(Value u, SymbolId s, Value v) {
    uint64_t key = Key(u, s, v);
    auto it = var_of_key.find(key);
    if (it != var_of_key.end()) return it->second;
    edge_of_var.push_back(Edge{u, s, v});
    int var = static_cast<int>(edge_of_var.size());
    var_of_key.emplace(key, var);
    return var;
  }

  /// The var of an existing candidate edge, or 0 if not a candidate.
  int Find(Value u, SymbolId s, Value v) const {
    auto it = var_of_key.find(Key(u, s, v));
    return it == var_of_key.end() ? 0 : it->second;
  }
};

/// Recursively enumerates assignments of one egd's atoms to candidate-edge
/// paths, collecting the path edge variables; at every complete assignment
/// with x1 != x2, appends a blocking clause.
struct EgdGrounder {
  const TargetEgd& egd;
  const EdgeVarTable& vars;
  const std::vector<Value>& nodes;
  CnfFormula& cnf;

  std::vector<std::optional<Value>> binding;
  std::vector<int> used_edge_vars;

  /// Expands atom `ai`, walking symbol `si` of its path from `at`.
  void WalkPath(size_t ai, const std::vector<SymbolId>& path, size_t si,
                Value at) {
    const CnreAtom& atom = egd.body.atoms()[ai];
    if (si == path.size()) {
      // Atom end: bind/check the y term.
      if (atom.y.is_const()) {
        if (atom.y.constant() == at) NextAtom(ai + 1);
        return;
      }
      VarId yv = atom.y.var();
      if (binding[yv].has_value()) {
        if (*binding[yv] == at) NextAtom(ai + 1);
        return;
      }
      binding[yv] = at;
      NextAtom(ai + 1);
      binding[yv].reset();
      return;
    }
    for (Value next : nodes) {
      int var = vars.Find(at, path[si], next);
      if (var == 0) continue;
      used_edge_vars.push_back(var);
      WalkPath(ai, path, si + 1, next);
      used_edge_vars.pop_back();
    }
  }

  void NextAtom(size_t ai) {
    if (ai == egd.body.atoms().size()) {
      Value a = *binding[egd.x1];
      Value b = *binding[egd.x2];
      if (a == b) return;  // equality already holds
      Clause blocker;
      for (int v : used_edge_vars) blocker.push_back(-v);
      cnf.AddClause(std::move(blocker));
      return;
    }
    const CnreAtom& atom = egd.body.atoms()[ai];
    std::vector<SymbolId> path;
    IsSymbolConcat(atom.nre, &path);  // validated by caller
    if (atom.x.is_const()) {
      WalkPath(ai, path, 0, atom.x.constant());
      return;
    }
    VarId xv = atom.x.var();
    if (binding[xv].has_value()) {
      WalkPath(ai, path, 0, *binding[xv]);
      return;
    }
    for (Value start : nodes) {
      binding[xv] = start;
      WalkPath(ai, path, 0, start);
      binding[xv].reset();
    }
  }
};

}  // namespace

Result<FlatEncoding> EncodeFlatSetting(const Setting& setting,
                                       const Instance& source) {
  if (!setting.target_tgds.empty() || !setting.sameas.empty()) {
    return Status::InvalidArgument(
        "flat encoding supports s-t tgds + egds only");
  }
  FlatEncoding out;
  EdgeVarTable vars;
  std::unordered_map<uint64_t, bool> node_seen;

  // Pass 1: triggers, candidate edges, head clauses.
  std::vector<Clause> head_clauses;
  for (const StTgd& tgd : setting.st_tgds) {
    if (!tgd.ExistentialVars().empty()) {
      return Status::InvalidArgument(
          "flat encoding requires existential-free s-t tgd heads");
    }
    // Validate head NREs up front.
    for (const CnreAtom& atom : tgd.head) {
      std::vector<SymbolId> symbols;
      if (!IsSymbolUnion(atom.nre, &symbols)) {
        return Status::InvalidArgument(
            "flat encoding requires symbol-union head NREs");
      }
    }
    Status failure = Status::Ok();
    FindCqMatches(tgd.body, source, [&](const Binding& match) {
      for (const CnreAtom& atom : tgd.head) {
        Value u = atom.x.is_const() ? atom.x.constant()
                                    : match[atom.x.var()].value();
        Value v = atom.y.is_const() ? atom.y.constant()
                                    : match[atom.y.var()].value();
        if (node_seen.emplace(u.raw(), true).second) out.nodes.push_back(u);
        if (node_seen.emplace(v.raw(), true).second) out.nodes.push_back(v);
        std::vector<SymbolId> symbols;
        IsSymbolUnion(atom.nre, &symbols);
        Clause clause;
        for (SymbolId s : symbols) clause.push_back(vars.VarOf(u, s, v));
        head_clauses.push_back(std::move(clause));
      }
      return true;
    });
    if (!failure.ok()) return failure;
  }

  out.cnf.set_num_vars(static_cast<int>(vars.edge_of_var.size()));
  for (Clause& c : head_clauses) out.cnf.AddClause(std::move(c));

  // Pass 2: egd blocking clauses over candidate-edge paths.
  for (const TargetEgd& egd : setting.egds) {
    for (const CnreAtom& atom : egd.body.atoms()) {
      std::vector<SymbolId> path;
      if (!IsSymbolConcat(atom.nre, &path)) {
        return Status::InvalidArgument(
            "flat encoding requires symbol-concatenation egd bodies");
      }
    }
    EgdGrounder grounder{egd, vars, out.nodes, out.cnf,
                         std::vector<std::optional<Value>>(
                             egd.body.num_vars()),
                         {}};
    grounder.NextAtom(0);
  }

  out.edge_of_var = std::move(vars.edge_of_var);
  return out;
}

Graph DecodeFlatModel(const FlatEncoding& encoding,
                      const std::vector<bool>& model) {
  Graph g;
  for (Value v : encoding.nodes) g.AddNode(v);
  for (size_t i = 0; i < encoding.edge_of_var.size(); ++i) {
    if (model[i + 1]) {
      const Edge& e = encoding.edge_of_var[i];
      g.AddEdge(e.src, e.label, e.dst);
    }
  }
  return g;
}

}  // namespace gdx
