#include "solver/certain.h"

#include <algorithm>
#include <unordered_set>

namespace gdx {
bool AllConstantTuple(const std::vector<Value>& tuple) {
  for (Value v : tuple) {
    if (!v.is_constant()) return false;
  }
  return true;
}

void SortAnswerTuples(std::vector<std::vector<Value>>& tuples) {
  std::sort(tuples.begin(), tuples.end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
                if (a[i].raw() != b[i].raw()) return a[i].raw() < b[i].raw();
              }
              return a.size() < b.size();
            });
}

CertainAnswerResult CertainAnswerSolver::Compute(const Setting& setting,
                                                 const Instance& source,
                                                 const CnreQuery& query,
                                                 Universe& universe) const {
  CertainAnswerResult result;
  ExistenceSolver existence(eval_, options_.existence);
  std::vector<Graph> solutions = existence.EnumerateSolutions(
      setting, source, universe, options_.max_solutions);
  if (options_.existence.cancel != nullptr &&
      options_.existence.cancel->stop_requested()) {
    // Truncated enumeration: intersecting over it would over-approximate;
    // the empty set is the sound "nothing certified" answer.
    return result;
  }
  result.solutions_considered = solutions.size();
  if (solutions.empty()) {
    // Distinguish "no solution" (vacuously certain) from "enumeration came
    // up empty for budget reasons" via a full existence decision.
    ExistenceReport report = existence.Decide(setting, source, universe);
    result.no_solution = (report.verdict == ExistenceVerdict::kNo);
    return result;
  }

  std::unordered_set<std::vector<Value>, ValueVecHash> intersection;
  bool first = true;
  for (const Graph& g : solutions) {
    std::vector<std::vector<Value>> answers = EvaluateCnre(query, g, *eval_);
    std::unordered_set<std::vector<Value>, ValueVecHash> constant_answers;
    for (auto& t : answers) {
      if (AllConstantTuple(t)) constant_answers.insert(std::move(t));
    }
    if (first) {
      intersection = std::move(constant_answers);
      first = false;
    } else {
      for (auto it = intersection.begin(); it != intersection.end();) {
        if (constant_answers.count(*it) == 0) {
          it = intersection.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (intersection.empty()) break;
  }
  result.tuples.assign(intersection.begin(), intersection.end());
  SortAnswerTuples(result.tuples);
  return result;
}

bool CertainAnswerSolver::IsCertain(const Setting& setting,
                                    const Instance& source,
                                    const CnreQuery& query,
                                    const std::vector<Value>& tuple,
                                    Universe& universe) const {
  ExistenceSolver existence(eval_, options_.existence);
  std::vector<Graph> solutions = existence.EnumerateSolutions(
      setting, source, universe, options_.max_solutions);
  if (options_.existence.cancel != nullptr &&
      options_.existence.cancel->stop_requested()) {
    // The counterexample search was cut short; "certain" can no longer be
    // certified, so answer the sound "no".
    return false;
  }
  if (solutions.empty()) {
    ExistenceReport report = existence.Decide(setting, source, universe);
    // No solutions: everything is vacuously certain.
    return report.verdict == ExistenceVerdict::kNo;
  }
  // Membership probe (ISSUE 3 threading): pin the head variables to the
  // probe tuple and ask each solution for satisfiability — the matcher's
  // bound-first atom ordering turns this into index lookups instead of
  // enumerating (and materializing) the full answer set per solution.
  const std::vector<VarId>& head = query.head();
  if (tuple.size() != head.size()) return false;
  // A head variable no atom mentions never binds, so no tuple is ever an
  // answer under the enumeration semantics; keep that behavior.
  for (VarId v : head) {
    bool mentioned = false;
    for (const CnreAtom& atom : query.atoms()) {
      if ((atom.x.is_var() && atom.x.var() == v) ||
          (atom.y.is_var() && atom.y.var() == v)) {
        mentioned = true;
        break;
      }
    }
    if (!mentioned) return false;
  }
  CnreBinding initial(query.num_vars());
  for (size_t i = 0; i < head.size(); ++i) {
    if (initial[head[i]].has_value() && *initial[head[i]] != tuple[i]) {
      return false;  // repeated head variable with conflicting values
    }
    initial[head[i]] = tuple[i];
  }
  for (const Graph& g : solutions) {
    if (!CnreSatisfiable(query, g, *eval_, initial)) {
      return false;  // counterexample solution
    }
  }
  return true;
}

std::vector<std::vector<Value>> PatternCertainAnswers(
    const GraphPattern& pattern, const CnreQuery& query,
    const NreEvaluator& eval) {
  Graph definite = pattern.DefiniteGraph();
  std::vector<std::vector<Value>> answers =
      EvaluateCnre(query, definite, eval);
  std::vector<std::vector<Value>> out;
  for (auto& t : answers) {
    if (AllConstantTuple(t)) out.push_back(std::move(t));
  }
  SortAnswerTuples(out);
  return out;
}

}  // namespace gdx
