#ifndef GDX_SOLVER_FLAT_ENCODING_H_
#define GDX_SOLVER_FLAT_ENCODING_H_

#include <vector>

#include "common/status.h"
#include "common/universe.h"
#include "exchange/setting.h"
#include "graph/graph.h"
#include "relational/instance.h"
#include "sat/cnf.h"

namespace gdx {

/// Exact propositional encoding of the *flat fragment*:
///   - every s-t tgd head atom is existential-free (both terms bound by the
///     body) and its NRE is a union of forward symbols (a, a+b, ...);
///   - every egd body atom's NRE is a concatenation of forward symbols
///     (SORE(·), as in Theorem 4.1's restrictions);
///   - no target tgds or sameAs constraints.
///
/// Completeness argument: in this fragment any solution restricted to the
/// *candidate edges* (the symbol options of head atoms over trigger
/// bindings) is still a solution — heads need only candidate edges, and
/// egds are universal so removing edges cannot violate them. Existence of
/// a solution is therefore equivalent to satisfiability of a CNF with one
/// Boolean variable per candidate edge:
///   - per trigger-atom: at least one of its optional edges exists;
///   - per egd-violating path combination over candidate edges: not all
///     of its edges exist.
/// Applied to the Theorem 4.1 family this regenerates ρ itself (plus the
/// t/f exclusivity clauses), which is the reduction run in reverse.
struct FlatEncoding {
  CnfFormula cnf;
  /// Boolean var v (1-based) asserts the presence of edge_of_var[v-1].
  std::vector<Edge> edge_of_var;
  /// Nodes of every candidate graph (trigger constants).
  std::vector<Value> nodes;
};

/// Builds the encoding; INVALID_ARGUMENT if the setting is not flat.
Result<FlatEncoding> EncodeFlatSetting(const Setting& setting,
                                       const Instance& source);

/// Materializes the graph selected by a SAT model of the encoding.
Graph DecodeFlatModel(const FlatEncoding& encoding,
                      const std::vector<bool>& model);

}  // namespace gdx

#endif  // GDX_SOLVER_FLAT_ENCODING_H_
