#include "solver/sameas_engine.h"

#include <unordered_map>

#include "chase/pattern_chase.h"
#include "chase/sameas_completion.h"
#include "common/union_find.h"
#include "exchange/solution_check.h"
#include "pattern/witness.h"

namespace gdx {

Graph SameAsEngine::QuotientGraph(const Graph& g, Alphabet& alphabet) {
  const SymbolId same_as = alphabet.SameAsSymbol();
  // Union-find over all nodes; representatives prefer constants, then the
  // smallest value. Unlike the egd chase, quotienting may merge two
  // distinct constants — sameAs asserts world-level identity, not chase
  // equality, so this is not a failure here.
  std::unordered_map<uint64_t, uint32_t> index;
  std::vector<Value> nodes = g.nodes();
  for (uint32_t i = 0; i < nodes.size(); ++i) index[nodes[i].raw()] = i;
  UnionFind uf(nodes.size());
  for (const Edge& e : g.edges()) {
    if (e.label == same_as) {
      uf.Union(index[e.src.raw()], index[e.dst.raw()]);
    }
  }
  std::unordered_map<uint32_t, Value> rep;
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    uint32_t root = uf.Find(i);
    auto it = rep.find(root);
    if (it == rep.end()) {
      rep.emplace(root, nodes[i]);
      continue;
    }
    Value cur = it->second;
    bool replace = false;
    if (nodes[i].is_constant() != cur.is_constant()) {
      replace = nodes[i].is_constant();
    } else {
      replace = nodes[i] < cur;
    }
    if (replace) it->second = nodes[i];
  }
  Graph out;
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    out.AddNode(rep[uf.Find(i)]);
  }
  for (const Edge& e : g.edges()) {
    if (e.label == same_as) continue;  // folded into the quotient
    Value s = rep[uf.Find(index[e.src.raw()])];
    Value d = rep[uf.Find(index[e.dst.raw()])];
    out.AddEdge(s, e.label, d);
  }
  return out;
}

Result<Graph> SameAsEngine::TrivialSolution(const Setting& setting,
                                            const Instance& source,
                                            Universe& universe,
                                            const NreEvaluator& eval) {
  if (!setting.egds.empty() || !setting.target_tgds.empty()) {
    return Status::InvalidArgument(
        "TrivialSolution applies to sameAs-only settings (paper §4.2)");
  }
  GraphPattern pattern = ChaseToPattern(source, setting.st_tgds, universe);
  PatternInstantiator instantiator(&pattern, &universe, {});
  Result<Graph> graph = instantiator.InstantiateCanonical();
  if (!graph.ok()) return graph.status();
  Graph solution = std::move(graph).value();
  Status st =
      CompleteSameAs(solution, setting.sameas, *setting.alphabet, eval);
  if (!st.ok()) return st;
  if (!IsSolution(setting, source, solution, eval, universe)) {
    return Status::Internal(
        "sameAs completion failed to produce a solution (bug)");
  }
  return solution;
}

}  // namespace gdx
