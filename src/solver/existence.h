#ifndef GDX_SOLVER_EXISTENCE_H_
#define GDX_SOLVER_EXISTENCE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/universe.h"
#include "exchange/setting.h"
#include "graph/graph.h"
#include "graph/nre_eval.h"
#include "pattern/witness.h"
#include "relational/instance.h"

namespace gdx {

/// Decision strategies for the existence-of-solutions problem (paper §4).
enum class ExistenceStrategy {
  /// Adapted chase (§5): failure is a sound "no"; success attempts one
  /// canonical instantiation — may return kUnknown.
  kChaseRefute,
  /// Complete enumeration over witness-choice combinations of the chased
  /// pattern (+ graph-level egd repair). Exponential — this is the search
  /// space whose size Theorem 4.1's NP-hardness speaks to.
  kBoundedSearch,
  /// Exact CNF encoding of the flat fragment solved by DPLL (fast path;
  /// INVALID_ARGUMENT-fallback to bounded search outside the fragment).
  kSatBacked,
  /// Picks per setting: no constraints / sameAs-only -> constructive yes;
  /// flat -> SAT-backed; otherwise bounded search.
  kAuto,
};

enum class ExistenceVerdict { kYes, kNo, kUnknown };

/// Outcome of an existence decision.
struct ExistenceReport {
  ExistenceVerdict verdict = ExistenceVerdict::kUnknown;
  /// A concrete solution when verdict == kYes.
  std::optional<Graph> witness;
  std::string note;

  size_t candidates_tried = 0;
  /// True if the bounded search exhausted its candidate budget without
  /// covering the whole combination space (verdict is then kUnknown, not
  /// kNo).
  bool budget_exhausted = false;
  /// True if a "no" came from the adapted chase's constant-clash failure.
  bool refuted_by_chase = false;
};

/// Tuning knobs for the existence solver.
struct ExistenceOptions {
  ExistenceStrategy strategy = ExistenceStrategy::kAuto;
  InstantiationOptions instantiation;
  /// Max witness-choice combinations explored by the bounded search.
  size_t max_candidates = 1u << 20;
  size_t target_tgd_max_rounds = 64;
  /// Deduplicate enumerated solutions up to null renaming (isomorphism) in
  /// EnumerateSolutions — distinct nulls from different instantiations
  /// otherwise count the same shape twice.
  bool dedup_isomorphic = true;
};

/// Decides whether Sol_Ω(I) is non-empty. Verdicts are sound: kYes comes
/// with a verified witness, kNo with either a chase refutation or an
/// exhausted *complete* enumeration, and anything uncertain is kUnknown
/// (consistent with the paper's NP-hardness: no general tractable
/// procedure exists).
class ExistenceSolver {
 public:
  explicit ExistenceSolver(const NreEvaluator* eval,
                           ExistenceOptions options = {})
      : eval_(eval), options_(options) {}

  ExistenceReport Decide(const Setting& setting, const Instance& source,
                         Universe& universe) const;

  /// Enumerates up to `max_solutions` distinct verified solutions (used by
  /// the certain-answer solver). Solutions are deduplicated by signature.
  std::vector<Graph> EnumerateSolutions(const Setting& setting,
                                        const Instance& source,
                                        Universe& universe,
                                        size_t max_solutions) const;

 private:
  ExistenceReport DecideChaseRefute(const Setting& setting,
                                    const Instance& source,
                                    Universe& universe) const;
  ExistenceReport DecideBoundedSearch(const Setting& setting,
                                      const Instance& source,
                                      Universe& universe) const;
  ExistenceReport DecideSatBacked(const Setting& setting,
                                  const Instance& source,
                                  Universe& universe) const;

  /// Completes a candidate graph (egd repair, target tgds, sameAs) and
  /// verifies it; returns the verified solution or nullopt.
  std::optional<Graph> RepairAndVerify(Graph candidate,
                                       const Setting& setting,
                                       const Instance& source,
                                       Universe& universe) const;

  const NreEvaluator* eval_;
  ExistenceOptions options_;
};

}  // namespace gdx

#endif  // GDX_SOLVER_EXISTENCE_H_
