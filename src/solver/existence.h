#ifndef GDX_SOLVER_EXISTENCE_H_
#define GDX_SOLVER_EXISTENCE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chase/chase_compiler.h"
#include "chase/egd_chase.h"
#include "common/parallel_search.h"
#include "common/universe.h"
#include "exchange/setting.h"
#include "graph/graph.h"
#include "graph/nre_eval.h"
#include "pattern/witness.h"
#include "relational/instance.h"

namespace gdx {

/// Decision strategies for the existence-of-solutions problem (paper §4).
enum class ExistenceStrategy {
  /// Adapted chase (§5): failure is a sound "no"; success attempts one
  /// canonical instantiation — may return kUnknown.
  kChaseRefute,
  /// Complete enumeration over witness-choice combinations of the chased
  /// pattern (+ graph-level egd repair). Exponential — this is the search
  /// space whose size Theorem 4.1's NP-hardness speaks to.
  kBoundedSearch,
  /// Exact CNF encoding of the flat fragment solved by DPLL (fast path;
  /// INVALID_ARGUMENT-fallback to bounded search outside the fragment).
  kSatBacked,
  /// Picks per setting: no constraints / sameAs-only -> constructive yes;
  /// flat -> SAT-backed; otherwise bounded search.
  kAuto,
};

enum class ExistenceVerdict { kYes, kNo, kUnknown };

/// Outcome of an existence decision.
struct ExistenceReport {
  ExistenceVerdict verdict = ExistenceVerdict::kUnknown;
  /// A concrete solution when verdict == kYes.
  std::optional<Graph> witness;
  std::string note;

  size_t candidates_tried = 0;
  /// True if the bounded search exhausted its candidate budget without
  /// covering the whole combination space (verdict is then kUnknown, not
  /// kNo).
  bool budget_exhausted = false;
  /// True if a "no" came from the adapted chase's constant-clash failure.
  bool refuted_by_chase = false;
};

/// Tuning knobs for the existence solver.
struct ExistenceOptions {
  ExistenceStrategy strategy = ExistenceStrategy::kAuto;
  InstantiationOptions instantiation;
  /// Max witness-choice combinations explored by the bounded search.
  size_t max_candidates = 1u << 20;
  size_t target_tgd_max_rounds = 64;
  /// Deduplicate enumerated solutions up to null renaming (isomorphism) in
  /// EnumerateSolutions — distinct nulls from different instantiations
  /// otherwise count the same shape twice.
  bool dedup_isomorphic = true;

  // --- Intra-solve parallelism (ISSUE 2 tentpole) -------------------------
  //
  // The witness-choice odometer (bounded search + solution enumeration) and
  // the SAT cube deck fan out over a borrowed work-stealing ThreadPool.
  // Results are invariant under the worker count — byte-identical verdicts,
  // witnesses, enumerated solutions and certain answers at 1 and N threads
  // — because every candidate is evaluated against a rolled-back universe
  // copy and winners are merged in deterministic rank order.

  /// Worker count, *including* the calling thread. 1 = sequential
  /// (default); 0 = intra_pool size + 1. More than 1 requires intra_pool.
  size_t intra_solve_threads = 1;
  /// Pool the extra workers run on (borrowed, not owned). Typically the
  /// ExchangeEngine's intra-solve pool.
  ThreadPool* intra_pool = nullptr;
  /// Odometer ranks per work unit, and the smallest choice space worth
  /// fanning out at all.
  size_t parallel_chunk = 64;
  size_t parallel_min_ranks = 128;
  /// Adaptive intra-solve scheduling (ISSUE 5 satellite): when set, the
  /// witness-choice searches derive their worker count from the choice
  /// space — ceil(NumCombinations / adaptive_ranks_per_worker), capped at
  /// intra_solve_threads — so small spaces run sequentially (no pool
  /// overhead) and only large ones fan wide. An explicit worker count
  /// (adaptive_intra == false, the default here) always wins. The SAT
  /// cube deck is exempt: each cube is a whole DPLL call, always worth a
  /// worker. Worker-count invariance makes this a pure wall-time knob.
  bool adaptive_intra = false;
  size_t adaptive_ranks_per_worker = 1024;
  /// Cube-and-conquer width of the SAT-backed path: the first
  /// sat_cube_vars CNF variables are pinned to all 2^k polarities, one
  /// independent (per-worker) DPLL instance per cube. 0 — or a formula
  /// with fewer than 2*k variables, or a nonzero DPLL decision budget
  /// (per-cube budgets would multiply the intended latency bound) — means
  /// a single plain DPLL call. The cube deck depends only on the formula
  /// and these options, never on the worker count.
  size_t sat_cube_vars = 4;
  /// DPLL decision budget for the SAT-backed path (0 = unlimited).
  /// Exceeding it yields kUnknown with budget_exhausted. A nonzero budget
  /// disables the cube deck so it stays a whole-call latency bound.
  size_t sat_max_decisions = 0;
  /// Egd-repair policy of RepairAndVerify's candidate repairs (ISSUE 10
  /// tentpole part 1). The default component-parallel policy fans each
  /// repair round's congruence components over intra_pool (when set) and
  /// is byte-identical to kDeferredRounds at any worker count; the
  /// sequential policies remain as differential references.
  EgdChasePolicy egd_policy = EgdChasePolicy::kParallelComponents;
  /// Telemetry sink for component-parallel repair rounds (engine.egd.*).
  /// Borrowed; nullptr disables recording.
  EgdRepairStatsSink* egd_stats = nullptr;
  /// Optional cooperative hard abort: when it fires the decision returns
  /// kUnknown ("search cancelled") instead of a complete answer.
  const CancellationToken* cancel = nullptr;
  /// Wraps each worker's whole run — the engine installs its thread-local
  /// per-solve metric sink here. Must invoke the passed body exactly once.
  std::function<void(size_t worker, const std::function<void()>& body)>
      worker_scope;
};

/// Decides whether Sol_Ω(I) is non-empty. Verdicts are sound: kYes comes
/// with a verified witness, kNo with either a chase refutation or an
/// exhausted *complete* enumeration, and anything uncertain is kUnknown
/// (consistent with the paper's NP-hardness: no general tractable
/// procedure exists).
class ExistenceSolver {
 public:
  explicit ExistenceSolver(const NreEvaluator* eval,
                           ExistenceOptions options = {})
      : eval_(eval), options_(options) {}

  /// `chased` (borrowed, optional): a pre-compiled chase artifact for
  /// exactly these (setting, source) inputs — the engine passes its stage-1
  /// ChasedScenario so the decision stages replay it instead of re-running
  /// the s-t + egd chase. Results are byte-identical with and without it
  /// (ReplayChase reproduces the re-chase exactly); nullptr = chase fresh.
  ExistenceReport Decide(const Setting& setting, const Instance& source,
                         Universe& universe,
                         const ChasedScenario* chased) const;
  ExistenceReport Decide(const Setting& setting, const Instance& source,
                         Universe& universe) const {
    return Decide(setting, source, universe, nullptr);
  }

  /// Enumerates up to `max_solutions` distinct verified solutions (used by
  /// the certain-answer solver), in deterministic rank order regardless of
  /// the worker count. Solutions are deduplicated by signature (and
  /// isomorphism when dedup_isomorphic). The returned graphs' nulls are
  /// search-local: they are not registered in `universe`. If the
  /// cancellation token fires mid-scan the result is an arbitrary prefix —
  /// callers intersecting over it for certain answers must check the token
  /// and fall back to the sound empty answer set. `chased` as in Decide.
  std::vector<Graph> EnumerateSolutions(const Setting& setting,
                                        const Instance& source,
                                        Universe& universe,
                                        size_t max_solutions,
                                        const ChasedScenario* chased) const;
  std::vector<Graph> EnumerateSolutions(const Setting& setting,
                                        const Instance& source,
                                        Universe& universe,
                                        size_t max_solutions) const {
    return EnumerateSolutions(setting, source, universe, max_solutions,
                              nullptr);
  }

 private:
  ExistenceReport DecideChaseRefute(const Setting& setting,
                                    const Instance& source,
                                    Universe& universe,
                                    const ChasedScenario* chased) const;
  ExistenceReport DecideBoundedSearch(const Setting& setting,
                                      const Instance& source,
                                      Universe& universe,
                                      const ChasedScenario* chased) const;
  ExistenceReport DecideSatBacked(const Setting& setting,
                                  const Instance& source,
                                  Universe& universe,
                                  const ChasedScenario* chased) const;

  /// Completes a candidate graph (egd repair, target tgds, sameAs) and
  /// verifies it; returns the verified solution or nullopt. Thread-safe
  /// for distinct `universe` arguments (workers pass private copies).
  std::optional<Graph> RepairAndVerify(Graph candidate,
                                       const Setting& setting,
                                       const Instance& source,
                                       Universe& universe) const;

  /// ParallelSearchOptions assembled from this solver's intra-solve knobs.
  ParallelSearchOptions SearchOptions(size_t chunk_size,
                                      size_t min_parallel_ranks) const;
  bool Cancelled() const {
    return options_.cancel != nullptr && options_.cancel->stop_requested();
  }

  const NreEvaluator* eval_;
  ExistenceOptions options_;
};

}  // namespace gdx

#endif  // GDX_SOLVER_EXISTENCE_H_
