#include "pattern/witness.h"

#include <algorithm>

namespace gdx {

size_t Witness::NumEdges() const {
  size_t n = 0;
  for (const Step& s : steps) {
    ++n;
    for (const Witness& b : s.branches_before) n += b.NumEdges();
  }
  for (const Witness& b : trailing_branches) n += b.NumEdges();
  return n;
}

namespace {

/// Concatenation of witnesses: w1's trailing branches attach to the node
/// where w2 starts.
Witness ConcatWitness(const Witness& a, const Witness& b) {
  Witness out = a;
  if (b.steps.empty()) {
    out.trailing_branches.insert(out.trailing_branches.end(),
                                 b.trailing_branches.begin(),
                                 b.trailing_branches.end());
    return out;
  }
  std::vector<Witness> pending = std::move(out.trailing_branches);
  out.trailing_branches.clear();
  for (size_t i = 0; i < b.steps.size(); ++i) {
    Witness::Step step = b.steps[i];
    if (i == 0) {
      step.branches_before.insert(step.branches_before.begin(),
                                  pending.begin(), pending.end());
    }
    out.steps.push_back(std::move(step));
  }
  out.trailing_branches = b.trailing_branches;
  return out;
}

void SortTruncate(std::vector<Witness>& ws, size_t max_count) {
  std::stable_sort(ws.begin(), ws.end(),
                   [](const Witness& a, const Witness& b) {
                     return a.NumEdges() < b.NumEdges();
                   });
  if (ws.size() > max_count) ws.resize(max_count);
}

std::vector<Witness> Enumerate(const NrePtr& nre, size_t max_edges,
                               size_t max_count) {
  std::vector<Witness> out;
  switch (nre->kind()) {
    case Nre::Kind::kEpsilon:
      out.emplace_back();
      break;
    case Nre::Kind::kSymbol: {
      Witness w;
      w.steps.push_back(Witness::Step{false, nre->symbol(), {}});
      out.push_back(std::move(w));
      break;
    }
    case Nre::Kind::kInverse: {
      Witness w;
      w.steps.push_back(Witness::Step{true, nre->symbol(), {}});
      out.push_back(std::move(w));
      break;
    }
    case Nre::Kind::kUnion: {
      out = Enumerate(nre->left(), max_edges, max_count);
      std::vector<Witness> right =
          Enumerate(nre->right(), max_edges, max_count);
      out.insert(out.end(), right.begin(), right.end());
      break;
    }
    case Nre::Kind::kConcat: {
      std::vector<Witness> left = Enumerate(nre->left(), max_edges, max_count);
      std::vector<Witness> right =
          Enumerate(nre->right(), max_edges, max_count);
      for (const Witness& l : left) {
        for (const Witness& r : right) {
          if (l.NumEdges() + r.NumEdges() > max_edges) continue;
          out.push_back(ConcatWitness(l, r));
        }
      }
      break;
    }
    case Nre::Kind::kStar: {
      // {ε} ∪ {w · rest} with w a child witness of cost >= 1.
      std::vector<Witness> child =
          Enumerate(nre->child(), max_edges, max_count);
      out.emplace_back();  // ε
      // Breadth-first growth by repetition count; bounded by max_edges.
      std::vector<Witness> frontier = {Witness{}};
      while (!frontier.empty() && out.size() < max_count * 4) {
        std::vector<Witness> next;
        for (const Witness& prefix : frontier) {
          for (const Witness& c : child) {
            if (c.NumEdges() == 0) continue;  // ε-powers add nothing
            if (prefix.NumEdges() + c.NumEdges() > max_edges) continue;
            Witness grown = ConcatWitness(prefix, c);
            out.push_back(grown);
            next.push_back(std::move(grown));
          }
        }
        frontier = std::move(next);
      }
      break;
    }
    case Nre::Kind::kNest: {
      std::vector<Witness> child =
          Enumerate(nre->child(), max_edges, max_count);
      for (const Witness& c : child) {
        if (c.NumEdges() > max_edges) continue;
        Witness w;
        w.trailing_branches.push_back(c);
        out.push_back(std::move(w));
      }
      break;
    }
  }
  // Drop over-budget witnesses, sort by cost, truncate.
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const Witness& w) {
                             return w.NumEdges() > max_edges;
                           }),
            out.end());
  SortTruncate(out, max_count);
  return out;
}

/// Materializes a branch starting at `node`; all other nodes are fresh.
void MaterializeBranch(Graph& g, Universe& universe, Value node,
                       const Witness& w) {
  Value cur = node;
  for (const Witness::Step& step : w.steps) {
    for (const Witness& b : step.branches_before) {
      MaterializeBranch(g, universe, cur, b);
    }
    Value next = universe.FreshNull();
    if (step.backward) {
      g.AddEdge(next, step.symbol, cur);
    } else {
      g.AddEdge(cur, step.symbol, next);
    }
    cur = next;
  }
  for (const Witness& b : w.trailing_branches) {
    MaterializeBranch(g, universe, cur, b);
  }
}

}  // namespace

std::vector<Witness> EnumerateWitnesses(const NrePtr& nre, size_t max_edges,
                                        size_t max_count) {
  return Enumerate(nre, max_edges, max_count);
}

Status MaterializeWitness(Graph& g, Universe& universe, Value src, Value dst,
                          const Witness& w) {
  if (w.steps.empty()) {
    if (src != dst) {
      return Status::FailedPrecondition(
          "epsilon witness between distinct nodes");
    }
    g.AddNode(src);
    for (const Witness& b : w.trailing_branches) {
      MaterializeBranch(g, universe, src, b);
    }
    return Status::Ok();
  }
  Value cur = src;
  for (size_t i = 0; i < w.steps.size(); ++i) {
    const Witness::Step& step = w.steps[i];
    for (const Witness& b : step.branches_before) {
      MaterializeBranch(g, universe, cur, b);
    }
    Value next = (i + 1 == w.steps.size()) ? dst : universe.FreshNull();
    if (step.backward) {
      g.AddEdge(next, step.symbol, cur);
    } else {
      g.AddEdge(cur, step.symbol, next);
    }
    cur = next;
  }
  for (const Witness& b : w.trailing_branches) {
    MaterializeBranch(g, universe, cur, b);
  }
  return Status::Ok();
}

PatternInstantiator::PatternInstantiator(const GraphPattern* pattern,
                                         const InstantiationOptions& options)
    : pattern_(pattern) {
  witness_lists_.reserve(pattern->edges().size());
  for (const PatternEdge& e : pattern->edges()) {
    witness_lists_.push_back(EnumerateWitnesses(
        e.nre, options.max_edges_per_witness, options.max_witnesses_per_edge));
  }
}

PatternInstantiator::PatternInstantiator(const GraphPattern* pattern,
                                         Universe* universe,
                                         const InstantiationOptions& options)
    : PatternInstantiator(pattern, options) {
  universe_ = universe;
}

size_t PatternInstantiator::NumCombinations() const {
  size_t total = 1;
  for (const auto& list : witness_lists_) {
    if (list.empty()) return 0;
    if (total > SIZE_MAX / list.size()) return SIZE_MAX;
    total *= list.size();
  }
  return total;
}

std::vector<size_t> PatternInstantiator::DecodeRank(size_t rank) const {
  std::vector<size_t> choices(witness_lists_.size(), 0);
  for (size_t i = 0; i < witness_lists_.size() && rank > 0; ++i) {
    size_t radix = witness_lists_[i].size();
    choices[i] = rank % radix;
    rank /= radix;
  }
  return choices;
}

Result<Graph> PatternInstantiator::Instantiate(
    const std::vector<size_t>& choices, Universe& universe) const {
  if (choices.size() != witness_lists_.size()) {
    return Status::InvalidArgument("choice vector size mismatch");
  }
  Graph g;
  for (Value v : pattern_->nodes()) g.AddNode(v);
  for (size_t i = 0; i < pattern_->edges().size(); ++i) {
    if (choices[i] >= witness_lists_[i].size()) {
      return Status::InvalidArgument("witness choice out of range");
    }
    const PatternEdge& e = pattern_->edges()[i];
    Status st = MaterializeWitness(g, universe, e.src, e.dst,
                                   witness_lists_[i][choices[i]]);
    if (!st.ok()) return st;
  }
  return g;
}

Result<Graph> PatternInstantiator::Instantiate(
    const std::vector<size_t>& choices) const {
  if (universe_ == nullptr) {
    return Status::FailedPrecondition(
        "instantiator has no bound universe; use the two-argument overload");
  }
  return Instantiate(choices, *universe_);
}

Result<Graph> PatternInstantiator::InstantiateCanonical(
    Universe& universe) const {
  Graph g;
  for (Value v : pattern_->nodes()) g.AddNode(v);
  for (size_t i = 0; i < pattern_->edges().size(); ++i) {
    const PatternEdge& e = pattern_->edges()[i];
    bool materialized = false;
    for (const Witness& w : witness_lists_[i]) {
      if (w.IsEpsilonChain() && e.src != e.dst) continue;
      Status st = MaterializeWitness(g, universe, e.src, e.dst, w);
      if (st.ok()) {
        materialized = true;
        break;
      }
    }
    if (!materialized) {
      return Status::FailedPrecondition(
          "no valid witness for a pattern edge (raise witness budgets)");
    }
  }
  return g;
}

Result<Graph> PatternInstantiator::InstantiateCanonical() const {
  if (universe_ == nullptr) {
    return Status::FailedPrecondition(
        "instantiator has no bound universe; use the one-argument overload");
  }
  return InstantiateCanonical(*universe_);
}

}  // namespace gdx
