#include "pattern/pattern.h"

#include <sstream>

namespace gdx {

std::string GraphPattern::ToString(const Universe& universe,
                                   const Alphabet& alphabet) const {
  std::ostringstream out;
  out << "pattern {" << num_nodes() << " nodes, " << num_edges()
      << " edges}\n";
  for (const PatternEdge& e : edges_) {
    out << "  " << universe.NameOf(e.src) << " =["
        << e.nre->ToString(alphabet) << "]=> " << universe.NameOf(e.dst)
        << "\n";
  }
  return out.str();
}

}  // namespace gdx
