#ifndef GDX_PATTERN_PATTERN_H_
#define GDX_PATTERN_PATTERN_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/universe.h"
#include "common/value.h"
#include "graph/graph.h"
#include "graph/nre.h"

namespace gdx {

/// One pattern edge (u, r, v) with an NRE label r.
struct PatternEdge {
  Value src;
  NrePtr nre;
  Value dst;
};

/// A graph pattern π = (N, D) over Σ (paper §3.2, after [4,5]): nodes are
/// node ids (constants) or labeled nulls, and edges carry full NREs. The
/// semantics Rep_Σ(π) is the set of graphs G admitting a homomorphism
/// π → G (see pattern/homomorphism.h).
class GraphPattern {
 public:
  void AddNode(Value v) {
    if (node_set_.insert(v.raw()).second) nodes_.push_back(v);
  }

  /// Adds an edge, implicitly adding its endpoints. Deduplicates by
  /// (src, dst, structural NRE equality).
  void AddEdge(Value src, NrePtr nre, Value dst) {
    AddNode(src);
    AddNode(dst);
    EdgeKey key{src.raw(), nre.get(), dst.raw()};
    if (!edge_keys_.insert(key).second) return;
    edges_.push_back(PatternEdge{src, std::move(nre), dst});
  }

  bool HasNode(Value v) const { return node_set_.count(v.raw()) > 0; }

  const std::vector<Value>& nodes() const { return nodes_; }
  const std::vector<PatternEdge>& edges() const { return edges_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// The *definite subgraph*: pattern edges labeled by a single forward
  /// symbol denote exactly one edge in every represented graph (under the
  /// homomorphism image). Egd chase steps match against this subgraph.
  Graph DefiniteGraph() const {
    Graph g;
    for (Value v : nodes_) g.AddNode(v);
    for (const PatternEdge& e : edges_) {
      if (IsSingleSymbol(e.nre)) g.AddEdge(e.src, e.nre->symbol(), e.dst);
    }
    return g;
  }

  /// Rebuilds the pattern with every value replaced by rewrite(value)
  /// (egd chase merges). Deduplicates edges that become identical.
  template <typename Fn>
  void RewriteValues(Fn rewrite) {
    std::vector<Value> old_nodes = std::move(nodes_);
    std::vector<PatternEdge> old_edges = std::move(edges_);
    nodes_.clear();
    node_set_.clear();
    edges_.clear();
    edge_keys_.clear();
    for (Value v : old_nodes) AddNode(rewrite(v));
    for (PatternEdge& e : old_edges) {
      AddEdge(rewrite(e.src), std::move(e.nre), rewrite(e.dst));
    }
  }

  /// Multi-line rendering, e.g. "c1 =[f . f*]=> N1".
  std::string ToString(const Universe& universe,
                       const Alphabet& alphabet) const;

 private:
  struct EdgeKey {
    uint64_t src_raw;
    const Nre* nre;
    uint64_t dst_raw;
    friend bool operator==(const EdgeKey& a, const EdgeKey& b) {
      return a.src_raw == b.src_raw && a.dst_raw == b.dst_raw &&
             (a.nre == b.nre || a.nre->Equals(*b.nre));
    }
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& k) const {
      uint64_t x = k.src_raw;
      x = x * 0x9e3779b97f4a7c15ull + k.nre->hash();
      x = x * 0x9e3779b97f4a7c15ull + k.dst_raw;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      return static_cast<size_t>(x ^ (x >> 27));
    }
  };

  std::vector<Value> nodes_;
  std::unordered_set<uint64_t> node_set_;
  std::vector<PatternEdge> edges_;
  std::unordered_set<EdgeKey, EdgeKeyHash> edge_keys_;
};

}  // namespace gdx

#endif  // GDX_PATTERN_PATTERN_H_
