#include "pattern/homomorphism.h"

#include <algorithm>
#include <unordered_set>

namespace gdx {
namespace {

struct EdgeRelation {
  std::unordered_set<std::pair<Value, Value>, ValuePairHash> pairs;
  std::unordered_map<uint64_t, std::vector<Value>> by_src;
  std::unordered_map<uint64_t, std::vector<Value>> by_dst;
};

struct HomSearcher {
  const GraphPattern& pattern;
  const Graph& graph;
  std::vector<EdgeRelation> relations;  // parallel to pattern.edges()
  std::vector<Value> order;             // null nodes in assignment order
  Homomorphism assignment;

  bool Assigned(Value v) const { return assignment.count(v.raw()) > 0; }
  Value ImageOf(Value v) const { return assignment.at(v.raw()); }

  /// Checks every pattern edge whose endpoints are both assigned.
  bool ConsistentAround(Value just_assigned) {
    for (size_t i = 0; i < pattern.edges().size(); ++i) {
      const PatternEdge& e = pattern.edges()[i];
      if (e.src != just_assigned && e.dst != just_assigned) continue;
      if (!Assigned(e.src) || !Assigned(e.dst)) continue;
      if (relations[i].pairs.count({ImageOf(e.src), ImageOf(e.dst)}) == 0) {
        return false;
      }
    }
    return true;
  }

  /// Candidate graph nodes for the null `v`, narrowed by incident edges
  /// whose other endpoint is already assigned.
  std::vector<Value> Candidates(Value v) {
    std::vector<Value> candidates;
    bool narrowed = false;
    for (size_t i = 0; i < pattern.edges().size() && !narrowed; ++i) {
      const PatternEdge& e = pattern.edges()[i];
      if (e.src == v && e.dst != v && Assigned(e.dst)) {
        auto it = relations[i].by_dst.find(ImageOf(e.dst).raw());
        candidates = (it == relations[i].by_dst.end())
                         ? std::vector<Value>{}
                         : it->second;
        narrowed = true;
      } else if (e.dst == v && e.src != v && Assigned(e.src)) {
        auto it = relations[i].by_src.find(ImageOf(e.src).raw());
        candidates = (it == relations[i].by_src.end())
                         ? std::vector<Value>{}
                         : it->second;
        narrowed = true;
      }
    }
    if (!narrowed) return graph.nodes();
    // Dedup while preserving order.
    std::unordered_set<uint64_t> seen;
    std::vector<Value> out;
    for (Value c : candidates) {
      if (seen.insert(c.raw()).second) out.push_back(c);
    }
    return out;
  }

  bool Search(size_t depth) {
    if (depth == order.size()) return true;
    Value v = order[depth];
    for (Value candidate : Candidates(v)) {
      assignment[v.raw()] = candidate;
      if (ConsistentAround(v) && Search(depth + 1)) return true;
      assignment.erase(v.raw());
    }
    return false;
  }
};

}  // namespace

std::optional<Homomorphism> FindPatternHomomorphism(const GraphPattern& pi,
                                                    const Graph& g,
                                                    const NreEvaluator& eval) {
  HomSearcher searcher{pi, g, {}, {}, {}};

  // Precompute per-edge relations, sharing structurally equal NREs.
  searcher.relations.resize(pi.edges().size());
  for (size_t i = 0; i < pi.edges().size(); ++i) {
    bool shared = false;
    for (size_t j = 0; j < i; ++j) {
      if (NreEquals(pi.edges()[i].nre, pi.edges()[j].nre)) {
        searcher.relations[i] = searcher.relations[j];
        shared = true;
        break;
      }
    }
    if (shared) continue;
    for (const NodePair& p : eval.Eval(pi.edges()[i].nre, g)) {
      searcher.relations[i].pairs.insert(p);
      searcher.relations[i].by_src[p.first.raw()].push_back(p.second);
      searcher.relations[i].by_dst[p.second.raw()].push_back(p.first);
    }
  }

  // Constants are forced: identity, and must be nodes of G.
  for (Value v : pi.nodes()) {
    if (v.is_constant()) {
      if (!g.HasNode(v)) return std::nullopt;
      searcher.assignment[v.raw()] = v;
      if (!searcher.ConsistentAround(v)) return std::nullopt;
    }
  }

  // Assign nulls most-constrained-first: higher degree first.
  std::vector<std::pair<size_t, Value>> nulls_by_degree;
  for (Value v : pi.nodes()) {
    if (!v.is_null()) continue;
    size_t degree = 0;
    for (const PatternEdge& e : pi.edges()) {
      if (e.src == v || e.dst == v) ++degree;
    }
    nulls_by_degree.emplace_back(degree, v);
  }
  std::stable_sort(nulls_by_degree.begin(), nulls_by_degree.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  for (const auto& [degree, v] : nulls_by_degree) searcher.order.push_back(v);

  if (searcher.Search(0)) return searcher.assignment;
  return std::nullopt;
}

bool InRep(const GraphPattern& pi, const Graph& g, const NreEvaluator& eval) {
  return FindPatternHomomorphism(pi, g, eval).has_value();
}

}  // namespace gdx
