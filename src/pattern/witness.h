#ifndef GDX_PATTERN_WITNESS_H_
#define GDX_PATTERN_WITNESS_H_

#include <vector>

#include "common/status.h"
#include "common/universe.h"
#include "graph/graph.h"
#include "graph/nre.h"
#include "pattern/pattern.h"

namespace gdx {

/// A *witness* for an NRE r is one concrete way to realize an r-path in a
/// graph: a main chain of labeled steps (forward or backward edges) plus
/// nesting branches hanging off chain positions. Materializing the witness
/// between two nodes adds exactly those edges (inventing fresh nulls for
/// the interior chain nodes and all branch nodes).
struct Witness {
  struct Step {
    bool backward = false;  // true: traverse the edge against its direction
    SymbolId symbol = 0;
    /// Nest branches attached at the node *before* this step.
    std::vector<Witness> branches_before;
  };

  std::vector<Step> steps;
  /// Nest branches attached at the final node of the chain.
  std::vector<Witness> trailing_branches;

  /// Total number of edges materialized (chain steps + branch edges).
  size_t NumEdges() const;

  /// True if the main chain has no steps (an ε-witness); materializing it
  /// between distinct nodes is impossible without merging them.
  bool IsEpsilonChain() const { return steps.empty(); }
};

/// Enumerates witnesses of r in nondecreasing NumEdges() order:
/// at most `max_count` witnesses, each with at most `max_edges` edges.
/// Deterministic. The first non-ε witness realizes the shortest non-empty
/// path shape — the canonical instantiation choice.
std::vector<Witness> EnumerateWitnesses(const NrePtr& nre, size_t max_edges,
                                        size_t max_count);

/// Materializes `w` from `src` to `dst` into `g` (fresh nulls from
/// `universe` for interior/branch nodes). Fails with FAILED_PRECONDITION
/// if the witness is an ε-chain but src != dst.
Status MaterializeWitness(Graph& g, Universe& universe, Value src, Value dst,
                          const Witness& w);

/// Options controlling pattern instantiation and witness enumeration.
struct InstantiationOptions {
  size_t max_edges_per_witness = 8;
  size_t max_witnesses_per_edge = 6;
};

/// Enumerates per-edge witness lists for a pattern and materializes chosen
/// combinations. This is the engine behind (a) canonical solutions from
/// universal representatives (§3.2) and (b) the bounded existence search
/// whose exponential witness-choice space mirrors Theorem 4.1's hardness.
///
/// Re-entrant by construction (ISSUE 2 tentpole): after the constructor the
/// instantiator is immutable — concurrent workers call the const
/// Instantiate overloads against their own Universe copies. The
/// universe-less constructor is the preferred form; the Universe* one is
/// kept for single-threaded call sites and binds the default universe the
/// one-argument Instantiate overloads draw fresh nulls from.
class PatternInstantiator {
 public:
  PatternInstantiator(const GraphPattern* pattern,
                      const InstantiationOptions& options);
  PatternInstantiator(const GraphPattern* pattern, Universe* universe,
                      const InstantiationOptions& options);

  /// Witness choices available for pattern edge i.
  const std::vector<std::vector<Witness>>& witness_lists() const {
    return witness_lists_;
  }

  /// Number of distinct choice combinations (capped at SIZE_MAX).
  size_t NumCombinations() const;

  /// Decodes a mixed-radix rank into a choice vector: rank r maps to the
  /// r-th combination in odometer order (edge 0 is the least-significant
  /// digit — the order NextChoice-style sequential scans advance in).
  /// Precondition: rank < NumCombinations().
  std::vector<size_t> DecodeRank(size_t rank) const;

  /// Materializes the graph for one choice vector (choices[i] indexes
  /// witness_lists()[i]) drawing fresh nulls from `universe`. All pattern
  /// nodes are included. Fails if a chosen ε-chain connects two distinct
  /// nodes. Thread-safe for distinct `universe` arguments.
  Result<Graph> Instantiate(const std::vector<size_t>& choices,
                            Universe& universe) const;
  Result<Graph> Instantiate(const std::vector<size_t>& choices) const;

  /// Canonical instantiation: per edge, the first witness that is valid for
  /// its endpoints (skipping ε-chains between distinct nodes).
  Result<Graph> InstantiateCanonical(Universe& universe) const;
  Result<Graph> InstantiateCanonical() const;

 private:
  const GraphPattern* pattern_;
  Universe* universe_ = nullptr;  // default for the one-argument overloads
  std::vector<std::vector<Witness>> witness_lists_;
};

}  // namespace gdx

#endif  // GDX_PATTERN_WITNESS_H_
