#ifndef GDX_PATTERN_HOMOMORPHISM_H_
#define GDX_PATTERN_HOMOMORPHISM_H_

#include <optional>
#include <unordered_map>

#include "graph/nre_eval.h"
#include "pattern/pattern.h"

namespace gdx {

/// A homomorphism h : N → V from pattern nodes to graph nodes, keyed by
/// Value::raw() of the pattern node.
using Homomorphism = std::unordered_map<uint64_t, Value>;

/// Searches for a homomorphism π → G (paper §3.2): h is the identity on
/// constants and every pattern edge (u, r, v) must satisfy
/// (h(u), h(v)) ∈ ⟦r⟧_G. Returns nullopt if none exists. Backtracking
/// search over null images with per-edge relations precomputed by `eval`.
std::optional<Homomorphism> FindPatternHomomorphism(const GraphPattern& pi,
                                                    const Graph& g,
                                                    const NreEvaluator& eval);

/// True iff G ∈ Rep_Σ(π), i.e. a homomorphism π → G exists.
bool InRep(const GraphPattern& pi, const Graph& g, const NreEvaluator& eval);

}  // namespace gdx

#endif  // GDX_PATTERN_HOMOMORPHISM_H_
