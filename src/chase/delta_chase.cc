#include "chase/delta_chase.h"

#include <algorithm>
#include <utility>

#include "common/task_fanout.h"
#include "common/value_partition.h"
#include "graph/cnre.h"
#include "graph/graph_view.h"
#include "obs/trace.h"
#include "relational/eval.h"

namespace gdx {
namespace {

bool Stopped(const CancellationToken* cancel) {
  return cancel != nullptr && cancel->stop_requested();
}

/// Parallel collection fan-out of one chase: the shared FanOutTasks
/// helper (common/task_fanout.h, factored out of this file for ISSUE 10's
/// egd repair) driven by this chase's knobs.
void RunTasks(const DeltaChaseOptions& options, size_t num_tasks,
              const std::function<void(size_t task, size_t worker)>& task) {
  TaskFanoutOptions fan;
  fan.pool = options.pool;
  fan.max_workers = options.max_workers;
  fan.cancel = options.cancel;
  fan.wrap_worker = options.wrap_worker;
  FanOutTasks(fan, num_tasks, task);
}

/// Seed round: the s-t chase with parallel match collection and a
/// sequential (tgd, match)-ordered fold — the fold is character-for-
/// character ChaseToPattern's trigger body, so null draw order, edge
/// insertion order and stats replay exactly.
void SeedPattern(const Setting& setting, const Instance& source,
                 Universe& universe, const DeltaChaseOptions& options,
                 DeltaChaseResult* result) {
  GDX_TRACE_SPAN("chase.stratum", "chase", 0);
  const std::vector<StTgd>& tgds = setting.st_tgds;
  std::vector<std::vector<Binding>> matches(tgds.size());
  RunTasks(options, tgds.size(), [&](size_t t, size_t) {
    FindCqMatches(tgds[t].body, source, [&](const Binding& match) {
      if (Stopped(options.cancel)) return false;
      matches[t].push_back(match);
      return true;
    });
  });

  GraphPattern& pattern = result->pattern;
  PatternChaseStats& stats = result->stats;
  for (size_t t = 0; t < tgds.size(); ++t) {
    if (Stopped(options.cancel)) break;
    const StTgd& tgd = tgds[t];
    const std::vector<VarId> existential = tgd.ExistentialVars();
    for (const Binding& match : matches[t]) {
      if (Stopped(options.cancel)) break;
      Binding binding = match;
      for (VarId v : existential) {
        binding[v] = universe.FreshNull();
        ++stats.nulls_created;
      }
      for (const CnreAtom& atom : tgd.head) {
        Value src =
            atom.x.is_const() ? atom.x.constant() : *binding[atom.x.var()];
        Value dst =
            atom.y.is_const() ? atom.y.constant() : *binding[atom.y.var()];
        pattern.AddEdge(src, atom.nre, dst);
        ++stats.edges_added;
      }
      ++stats.triggers;
    }
  }
  result->delta.delta_rounds = 1;
  result->delta.evaluated_rules += tgds.size();
}

/// Delta-driven egd fixpoint. Per round: decide the evaluated set from
/// the previous round's delta labels, collect candidate (x1, x2) pairs
/// per evaluated egd in parallel against the frozen definite graph, fold
/// sequentially in (egd, match) order through a fresh ValuePartition —
/// the naive round's exact merge/skip/failure sequence — then rewrite
/// and record which definite labels moved.
void RunDeltaEgdRounds(const Setting& setting, const RelianceGraph& reliance,
                       const NreEvaluator& eval,
                       const DeltaChaseOptions& options,
                       DeltaChaseResult* result) {
  const std::vector<TargetEgd>& egds = setting.egds;
  GraphPattern& pattern = result->pattern;
  EgdChaseResult& out = result->egd;
  DeltaChaseStats& delta = result->delta;

  std::vector<SymbolId> delta_labels;
  for (size_t round = 0;; ++round) {
    if (Stopped(options.cancel)) return;

    std::vector<size_t> evaluated;
    std::vector<size_t> skipped;
    for (size_t j = 0; j < egds.size(); ++j) {
      const bool join = !reliance.EgdDead(j) &&
                        (round == 0 || reliance.EgdReadsAny(j, delta_labels));
      (join ? &evaluated : &skipped)->push_back(j);
    }
    if (options.observer) {
      DeltaRoundInfo info;
      info.round = round;
      info.pattern = &pattern;
      info.delta_labels = delta_labels;
      info.evaluated_egds = evaluated;
      info.skipped_egds = skipped;
      options.observer(info);
    }
    delta.skipped_rules += skipped.size();
    // An empty evaluated set is the fixpoint: the naive round would find
    // only equal-value pairs, merge nothing and return with `rounds`
    // untouched — so does this.
    if (evaluated.empty()) return;
    delta.evaluated_rules += evaluated.size();
    ++delta.delta_rounds;

    // One frozen CSR snapshot for every matcher this round; GraphView is
    // immutable after construction, so concurrent matchers share it.
    const Graph eval_graph = pattern.DefiniteGraph();
    const GraphView view(eval_graph);

    // Parallel pair collection, stratum level by stratum level: strata on
    // one level are mutually reliance-independent, so their rules fan out
    // together. pairs[j] is owned by j's task alone.
    std::vector<std::vector<std::pair<Value, Value>>> pairs(egds.size());
    size_t next = 0;
    while (next < evaluated.size()) {
      const uint32_t level =
          reliance.stratum_level[reliance.scc_of[reliance.EgdNode(
              evaluated[next])]];
      size_t end = next;
      while (end < evaluated.size() &&
             reliance.stratum_level[reliance.scc_of[reliance.EgdNode(
                 evaluated[end])]] == level) {
        ++end;
      }
      GDX_TRACE_SPAN("chase.stratum", "chase", level);
      const size_t base = next;
      RunTasks(options, end - next, [&](size_t t, size_t) {
        const size_t j = evaluated[base + t];
        const TargetEgd& egd = egds[j];
        CnreMatcher matcher(&egd.body, &view, eval);
        matcher.FindMatches({}, [&](const CnreBinding& match) {
          if (Stopped(options.cancel)) return false;
          if (!match[egd.x1].has_value() || !match[egd.x2].has_value()) {
            return true;
          }
          pairs[j].emplace_back(*match[egd.x1], *match[egd.x2]);
          return true;
        });
      });
      next = end;
    }
    if (Stopped(options.cancel)) return;

    ValuePartition partition;
    bool merged_any = false;
    for (size_t j : evaluated) {
      for (const std::pair<Value, Value>& pr : pairs[j]) {
        if (partition.Find(pr.first) == partition.Find(pr.second)) continue;
        Status st = partition.Merge(pr.first, pr.second);
        if (!st.ok()) {
          // Constant clash: stop with the pattern un-rewritten, exactly
          // where the naive chase stops.
          out.failed = true;
          out.failure_reason = st.message();
          return;
        }
        merged_any = true;
        ++out.merges;
      }
    }
    if (!merged_any) return;

    // The next round's delta: labels of definite edges the rewrite is
    // about to move. Computed pre-rewrite — post-rewrite the movement is
    // invisible.
    delta_labels.clear();
    for (const PatternEdge& e : pattern.edges()) {
      if (!IsSingleSymbol(e.nre)) continue;
      if (partition.Find(e.src) != e.src || partition.Find(e.dst) != e.dst) {
        delta_labels.push_back(e.nre->symbol());
      }
    }
    std::sort(delta_labels.begin(), delta_labels.end());
    delta_labels.erase(std::unique(delta_labels.begin(), delta_labels.end()),
                       delta_labels.end());

    pattern.RewriteValues([&](Value v) { return partition.Find(v); });
    ++out.rounds;
  }
}

}  // namespace

DeltaChaseResult RunDeltaChase(const Setting& setting, const Instance& source,
                               const RelianceGraph& reliance,
                               Universe& universe, const NreEvaluator& eval,
                               const DeltaChaseOptions& options) {
  DeltaChaseResult result;
  result.delta.strata = reliance.strata.size();
  SeedPattern(setting, source, universe, options, &result);
  if (!setting.egds.empty() && !Stopped(options.cancel)) {
    RunDeltaEgdRounds(setting, reliance, eval, options, &result);
  }
  return result;
}

}  // namespace gdx
