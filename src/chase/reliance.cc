#include "chase/reliance.h"

#include <algorithm>
#include <atomic>
#include <limits>

namespace gdx {
namespace {

std::atomic<uint64_t> g_build_count{0};

void SortUnique(std::vector<SymbolId>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

bool Intersects(const std::vector<SymbolId>& a,
                const std::vector<SymbolId>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

void CollectNreSymbols(const Nre& nre, std::vector<SymbolId>* out) {
  // NREs are shared DAGs; revisiting a shared sub-expression just appends
  // duplicates, which callers sort-unique away — cheaper than a seen-set
  // at the sizes mappings reach.
  std::vector<const Nre*> walk{&nre};
  while (!walk.empty()) {
    const Nre* node = walk.back();
    walk.pop_back();
    switch (node->kind()) {
      case Nre::Kind::kEpsilon:
        break;
      case Nre::Kind::kSymbol:
      case Nre::Kind::kInverse:
        out->push_back(node->symbol());
        break;
      case Nre::Kind::kUnion:
      case Nre::Kind::kConcat:
        walk.push_back(node->left().get());
        walk.push_back(node->right().get());
        break;
      case Nre::Kind::kStar:
      case Nre::Kind::kNest:
        walk.push_back(node->child().get());
        break;
    }
  }
}

bool RelianceGraph::EgdReadsAny(
    size_t egd_index, const std::vector<SymbolId>& sorted_labels) const {
  return Intersects(nodes[EgdNode(egd_index)].body_symbols, sorted_labels);
}

RelianceGraph RelianceGraph::Build(const Setting& setting) {
  g_build_count.fetch_add(1, std::memory_order_relaxed);

  RelianceGraph g;
  g.num_st_tgds = setting.st_tgds.size();
  g.num_egds = setting.egds.size();
  g.nodes.resize(g.num_rules());
  g.out.resize(g.num_rules());

  // Every definite label the mapping can ever derive: the union of the
  // st-tgd single-symbol head labels. Egd merges relocate edges but never
  // mint labels, so this set is closed under the whole chase.
  std::vector<SymbolId> possible_definite;
  for (size_t i = 0; i < g.num_st_tgds; ++i) {
    RelianceNode& node = g.nodes[i];
    for (const CnreAtom& atom : setting.st_tgds[i].head) {
      if (IsSingleSymbol(atom.nre)) {
        node.definite_head_symbols.push_back(atom.nre->symbol());
      }
    }
    SortUnique(&node.definite_head_symbols);
    possible_definite.insert(possible_definite.end(),
                             node.definite_head_symbols.begin(),
                             node.definite_head_symbols.end());
  }
  SortUnique(&possible_definite);

  for (size_t j = 0; j < g.num_egds; ++j) {
    RelianceNode& node = g.nodes[g.EgdNode(j)];
    const TargetEgd& egd = setting.egds[j];
    for (const CnreAtom& atom : egd.body.atoms()) {
      std::vector<SymbolId> atom_symbols;
      CollectNreSymbols(*atom.nre, &atom_symbols);
      SortUnique(&atom_symbols);
      const bool nullable = atom.nre->Nullable();
      if (nullable) node.nullable_body_atom = true;
      // Liveness is over-approximated: Nullable() ignores nest tests, so
      // an atom whose main path is ε but whose test can never hold stays
      // "live". Sound — dead rules are only ever *skipped*.
      if (!nullable && !Intersects(atom_symbols, possible_definite)) {
        node.dead = true;
      }
      node.body_symbols.insert(node.body_symbols.end(), atom_symbols.begin(),
                               atom_symbols.end());
    }
    SortUnique(&node.body_symbols);
  }

  for (size_t i = 0; i < g.num_st_tgds; ++i) {
    const RelianceNode& src = g.nodes[i];
    if (src.definite_head_symbols.empty() && setting.st_tgds[i].head.empty()) {
      continue;
    }
    for (size_t j = 0; j < g.num_egds; ++j) {
      const RelianceNode& dst = g.nodes[g.EgdNode(j)];
      if (dst.dead) continue;
      // A firing st-tgd always adds pattern nodes, so a nullable atom can
      // seat a fresh ε-match even when no label intersects.
      if (dst.nullable_body_atom ||
          Intersects(src.definite_head_symbols, dst.body_symbols)) {
        g.out[i].push_back(static_cast<uint32_t>(g.EgdNode(j)));
      }
    }
  }
  for (size_t j1 = 0; j1 < g.num_egds; ++j1) {
    if (g.nodes[g.EgdNode(j1)].dead) continue;
    for (size_t j2 = 0; j2 < g.num_egds; ++j2) {
      const RelianceNode& dst = g.nodes[g.EgdNode(j2)];
      if (dst.dead) continue;
      // A merge can relocate definite edges of *any* derivable label onto
      // new endpoints (and always rewrites nodes), so a consumer reading
      // any derivable label — or with a nullable atom — may see new
      // matches. Self-loops included: an egd can re-enable itself.
      if (dst.nullable_body_atom ||
          Intersects(dst.body_symbols, possible_definite)) {
        g.out[g.EgdNode(j1)].push_back(static_cast<uint32_t>(g.EgdNode(j2)));
      }
    }
  }
  // Inner loops run over ascending targets, so adjacency is born sorted.

  g.DeriveStrata();
  return g;
}

uint64_t RelianceGraph::BuildCount() {
  return g_build_count.load(std::memory_order_relaxed);
}

void RelianceGraph::DeriveStrata() {
  const size_t n = num_rules();
  scc_of.assign(n, 0);
  strata.clear();
  stratum_level.clear();
  if (n == 0) return;

  constexpr uint32_t kUnvisited = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> low(n, 0);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<uint32_t> stack;
  uint32_t next_index = 0;

  // Iterative Tarjan (the chase compiles arbitrary mappings; no recursion
  // depth to trust). Roots visited 0..n-1 over sorted adjacency, so the
  // SCC emission order is a pure function of the graph.
  struct Frame {
    uint32_t node;
    size_t next_edge;
  };
  std::vector<Frame> dfs;
  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    dfs.push_back(Frame{root, 0});
    while (!dfs.empty()) {
      const uint32_t v = dfs.back().node;
      const std::vector<uint32_t>& adj = out[v];
      if (dfs.back().next_edge < adj.size()) {
        const uint32_t w = adj[dfs.back().next_edge++];
        if (index[w] == kUnvisited) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          dfs.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
        continue;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        low[dfs.back().node] = std::min(low[dfs.back().node], low[v]);
      }
      if (low[v] == index[v]) {
        std::vector<uint32_t> scc;
        for (;;) {
          const uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc.push_back(w);
          if (w == v) break;
        }
        std::sort(scc.begin(), scc.end());
        strata.push_back(std::move(scc));
      }
    }
  }

  // Tarjan pops consumers before their producers; reversing puts every
  // stratum after all strata that feed it.
  std::reverse(strata.begin(), strata.end());
  for (uint32_t s = 0; s < strata.size(); ++s) {
    for (uint32_t rule : strata[s]) scc_of[rule] = s;
  }

  // Longest producer-chain depth. Cross-stratum edges point forward in
  // stratum order, so one ascending pass settles every level.
  stratum_level.assign(strata.size(), 0);
  for (uint32_t s = 0; s < strata.size(); ++s) {
    for (uint32_t rule : strata[s]) {
      for (uint32_t succ : out[rule]) {
        const uint32_t t = scc_of[succ];
        if (t != s) {
          stratum_level[t] = std::max(stratum_level[t], stratum_level[s] + 1);
        }
      }
    }
  }
}

}  // namespace gdx
