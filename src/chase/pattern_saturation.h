#ifndef GDX_CHASE_PATTERN_SATURATION_H_
#define GDX_CHASE_PATTERN_SATURATION_H_

#include <vector>

#include "common/status.h"
#include "common/universe.h"
#include "exchange/constraints.h"
#include "graph/nre_eval.h"
#include "pattern/pattern.h"

namespace gdx {

/// §5's closing remark — "the above discussion can be easily generalized
/// for sameAs constraints or arbitrary target tgds" — made concrete:
/// chase steps for sameAs constraints and target tgds applied directly to
/// the *pattern* (matching bodies against the definite subgraph, like the
/// adapted egd chase).

struct PatternSaturationStats {
  size_t rounds = 0;
  size_t sameas_edges_added = 0;
  size_t tgd_triggers_fired = 0;
  size_t nulls_created = 0;
};

/// Adds the sameAs edges required by the constraints to the pattern (as
/// definite single-symbol edges). Matching is over the definite subgraph;
/// runs to fixpoint. Never fails — sameAs edges can always be added.
Status SaturatePatternSameAs(GraphPattern& pattern,
                             const std::vector<SameAsConstraint>& constraints,
                             Alphabet& alphabet, const NreEvaluator& eval,
                             PatternSaturationStats* stats = nullptr,
                             size_t max_rounds = 256);

/// Target-tgd chase on the pattern: for every body match over the definite
/// subgraph whose head is not yet satisfiable there, the head atoms are
/// added as pattern edges (fresh labeled nulls for existentials). Bounded
/// by max_rounds; may diverge like any target-tgd chase (RESOURCE_EXHAUSTED
/// on non-convergence).
Status SaturatePatternTargetTgds(GraphPattern& pattern,
                                 const std::vector<TargetTgd>& tgds,
                                 Universe& universe,
                                 const NreEvaluator& eval,
                                 PatternSaturationStats* stats = nullptr,
                                 size_t max_rounds = 64);

}  // namespace gdx

#endif  // GDX_CHASE_PATTERN_SATURATION_H_
