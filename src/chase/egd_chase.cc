#include "chase/egd_chase.h"

#include "common/value_partition.h"
#include "graph/cnre.h"
#include "graph/graph_view.h"

namespace gdx {
namespace {

/// One round of egd merging over a fixed evaluation graph. Returns false
/// if the chase failed (constant clash recorded in *result). With
/// `first_only`, stops after recording one merge (the eager policy).
bool CollectMerges(const Graph& eval_graph,
                   const std::vector<TargetEgd>& egds,
                   const NreEvaluator& eval, ValuePartition& partition,
                   EgdChaseResult* result, bool* merged_any,
                   bool first_only, const CancellationToken* cancel) {
  // One CSR snapshot for every egd this round (the graph is fixed).
  GraphView view(eval_graph);
  for (const TargetEgd& egd : egds) {
    if (cancel != nullptr && cancel->stop_requested()) return true;
    CnreMatcher matcher(&egd.body, &view, eval);
    bool ok = true;
    matcher.FindMatches({}, [&](const CnreBinding& match) {
      // Cancellation poll per body match (ISSUE 8): bounds the abort to
      // one egd match even when a single round has millions of them.
      if (cancel != nullptr && cancel->stop_requested()) return false;
      if (!match[egd.x1].has_value() || !match[egd.x2].has_value()) {
        return true;
      }
      Value a = *match[egd.x1];
      Value b = *match[egd.x2];
      if (partition.Find(a) == partition.Find(b)) return true;
      Status st = partition.Merge(a, b);
      if (!st.ok()) {
        result->failed = true;
        result->failure_reason = st.message();
        ok = false;
        return false;
      }
      *merged_any = true;
      ++result->merges;
      return !first_only;  // eager: stop at the first merge
    });
    if (!ok) return false;
    if (first_only && *merged_any) return true;
  }
  return true;
}

/// Shared fixpoint driver over any structure with RewriteValues and an
/// evaluation-graph projection.
template <typename Structure, typename EvalGraphFn>
EgdChaseResult RunEgdChase(Structure& structure,
                           const std::vector<TargetEgd>& egds,
                           const NreEvaluator& eval, EgdChasePolicy policy,
                           EvalGraphFn eval_graph_of,
                           const CancellationToken* cancel) {
  EgdChaseResult result;
  const bool eager = (policy == EgdChasePolicy::kEagerRestart);
  for (;;) {
    if (cancel != nullptr && cancel->stop_requested()) return result;
    ValuePartition partition;
    bool merged_any = false;
    {
      // The evaluation graph is rebuilt per round (merges change it).
      auto&& eval_graph = eval_graph_of(structure);
      if (!CollectMerges(eval_graph, egds, eval, partition, &result,
                         &merged_any, eager, cancel)) {
        return result;  // failed
      }
    }
    if (!merged_any) return result;
    structure.RewriteValues([&](Value v) { return partition.Find(v); });
    ++result.rounds;
  }
}

}  // namespace

EgdChaseResult ChasePatternEgds(GraphPattern& pattern,
                                const std::vector<TargetEgd>& egds,
                                const NreEvaluator& eval,
                                EgdChasePolicy policy,
                                const CancellationToken* cancel) {
  return RunEgdChase(pattern, egds, eval, policy,
                     [](GraphPattern& p) { return p.DefiniteGraph(); },
                     cancel);
}

EgdChaseResult ChaseGraphEgds(Graph& g, const std::vector<TargetEgd>& egds,
                              const NreEvaluator& eval,
                              EgdChasePolicy policy,
                              const CancellationToken* cancel) {
  return RunEgdChase(g, egds, eval, policy,
                     [](Graph& graph) -> Graph& { return graph; }, cancel);
}

}  // namespace gdx
