#include "chase/egd_chase.h"

#include <cstdint>
#include <unordered_map>

#include "common/task_fanout.h"
#include "common/union_find.h"
#include "common/value_partition.h"
#include "graph/cnre.h"
#include "graph/graph_view.h"

namespace gdx {
namespace {

bool Stopped(const CancellationToken* cancel) {
  return cancel != nullptr && cancel->stop_requested();
}

/// One round of egd merging over a fixed evaluation graph — the
/// sequential reference (kDeferredRounds / kEagerRestart). Returns false
/// if the chase failed (constant clash recorded in *result). With
/// `first_only`, stops after recording one merge (the eager policy).
bool CollectMerges(const Graph& eval_graph,
                   const std::vector<TargetEgd>& egds,
                   const NreEvaluator& eval, ValuePartition& partition,
                   EgdChaseResult* result, bool* merged_any,
                   bool first_only, const CancellationToken* cancel) {
  // One CSR snapshot for every egd this round (the graph is fixed).
  GraphView view(eval_graph);
  for (const TargetEgd& egd : egds) {
    if (Stopped(cancel)) return true;
    CnreMatcher matcher(&egd.body, &view, eval);
    bool ok = true;
    matcher.FindMatches({}, [&](const CnreBinding& match) {
      // Cancellation poll per body match (ISSUE 8): bounds the abort to
      // one egd match even when a single round has millions of them.
      if (Stopped(cancel)) return false;
      if (!match[egd.x1].has_value() || !match[egd.x2].has_value()) {
        return true;
      }
      Value a = *match[egd.x1];
      Value b = *match[egd.x2];
      if (partition.Find(a) == partition.Find(b)) return true;
      Status st = partition.Merge(a, b);
      if (!st.ok()) {
        result->failed = true;
        result->failure_reason = st.message();
        ok = false;
        return false;
      }
      *merged_any = true;
      ++result->merges;
      return !first_only;  // eager: stop at the first merge
    });
    if (!ok) return false;
    if (first_only && *merged_any) return true;
  }
  return true;
}

// ---------------------------------------------------------------------------
// kParallelComponents (ISSUE 10 tentpole part 1)
// ---------------------------------------------------------------------------

TaskFanoutOptions FanOf(const EgdChaseOptions& options) {
  TaskFanoutOptions fan;
  fan.pool = options.pool;
  fan.max_workers = options.max_workers;
  fan.cancel = options.cancel;
  fan.wrap_worker = options.wrap_worker;
  return fan;
}

/// One component's independent fold state.
struct ComponentFold {
  ValuePartition partition;
  /// Global (egd, match) indices of this component's successful merges.
  std::vector<size_t> merged;
  /// Global index of this component's first failing pair (SIZE_MAX: none).
  size_t fail_index = SIZE_MAX;
  std::string fail_reason;
};

enum class RoundOutcome { kMerged, kFixpoint, kFailed, kCanceled };

/// One component-parallel repair round over a frozen evaluation graph.
/// Collection, grouping, folding and the reduce replay the sequential
/// deferred round byte for byte (see ChasePatternEgds in the header for
/// the argument); `rewrite` applies the round's combined congruence.
template <typename Structure>
RoundOutcome ParallelRepairRound(Structure& structure,
                                 const Graph& eval_graph,
                                 const std::vector<TargetEgd>& egds,
                                 const NreEvaluator& eval,
                                 const EgdChaseOptions& options,
                                 EgdChaseResult* result) {
  const TaskFanoutOptions fan = FanOf(options);

  // Parallel candidate-pair collection, one task per egd against one
  // shared immutable CSR snapshot; pairs[j] is owned by j's task alone,
  // and FindMatches order is deterministic, so the collected set is
  // worker-count-invariant.
  const GraphView view(eval_graph);
  std::vector<std::vector<std::pair<Value, Value>>> pairs(egds.size());
  FanOutTasks(fan, egds.size(), [&](size_t j, size_t) {
    const TargetEgd& egd = egds[j];
    CnreMatcher matcher(&egd.body, &view, eval);
    matcher.FindMatches({}, [&](const CnreBinding& match) {
      if (Stopped(options.cancel)) return false;
      if (!match[egd.x1].has_value() || !match[egd.x2].has_value()) {
        return true;
      }
      pairs[j].emplace_back(*match[egd.x1], *match[egd.x2]);
      return true;
    });
  });
  if (Stopped(options.cancel)) return RoundOutcome::kCanceled;

  // Flatten into the sequential round's processing order: (egd, match).
  std::vector<std::pair<Value, Value>> flat;
  for (const auto& per_egd : pairs) {
    flat.insert(flat.end(), per_egd.begin(), per_egd.end());
  }
  if (flat.empty()) return RoundOutcome::kFixpoint;

  // Union-find over pair endpoints: two pairs land in one congruence
  // component iff a chain of shared values connects them — so pairs in
  // different components touch disjoint value sets and their fold
  // decisions cannot interact.
  std::unordered_map<uint64_t, uint32_t> value_index;
  UnionFind uf;
  auto index_of = [&](Value v) {
    auto it = value_index.find(v.raw());
    if (it != value_index.end()) return it->second;
    const uint32_t id = uf.Add();
    value_index.emplace(v.raw(), id);
    return id;
  };
  for (const auto& pr : flat) {
    uf.Union(index_of(pr.first), index_of(pr.second));
  }

  // Group pair indices by component, components ordered by first pair —
  // a deterministic order for the observer and the fan-out alike.
  std::unordered_map<uint32_t, size_t> component_slot;
  std::vector<std::vector<size_t>> component_pairs;
  for (size_t i = 0; i < flat.size(); ++i) {
    const uint32_t root = uf.Find(value_index.at(flat[i].first.raw()));
    auto [it, inserted] = component_slot.emplace(root,
                                                 component_pairs.size());
    if (inserted) component_pairs.emplace_back();
    component_pairs[it->second].push_back(i);
  }

  if (options.observer) {
    EgdRepairRoundInfo info;
    info.round = result->rounds;
    info.components.reserve(component_pairs.size());
    for (const std::vector<size_t>& comp : component_pairs) {
      std::vector<std::pair<Value, Value>> comp_values;
      comp_values.reserve(comp.size());
      for (size_t i : comp) comp_values.push_back(flat[i]);
      info.components.push_back(std::move(comp_values));
    }
    options.observer(info);
  }

  // Independent per-component folds, fanned over the pool. Each fold
  // replays exactly the subsequence of the sequential round's decisions
  // that touches its component.
  std::vector<ComponentFold> folds(component_pairs.size());
  FanOutTasks(fan, component_pairs.size(), [&](size_t c, size_t) {
    ComponentFold& fold = folds[c];
    for (size_t i : component_pairs[c]) {
      if (Stopped(options.cancel)) return;
      const std::pair<Value, Value>& pr = flat[i];
      if (fold.partition.Find(pr.first) == fold.partition.Find(pr.second)) {
        continue;
      }
      Status st = fold.partition.Merge(pr.first, pr.second);
      if (!st.ok()) {
        fold.fail_index = i;
        fold.fail_reason = st.message();
        return;
      }
      fold.merged.push_back(i);
    }
  });
  if (Stopped(options.cancel)) return RoundOutcome::kCanceled;

  result->components += folds.size();
  ++result->parallel_rounds;
  if (options.stats != nullptr) {
    options.stats->RecordEgdRepairRound(folds.size());
  }

  // Sequential reduce: the earliest failing global pair decides failure,
  // and `merges` counts exactly the successful merges that precede it —
  // the sequential round stops at that pair and never sees the rest.
  size_t fail_index = SIZE_MAX;
  size_t fail_component = SIZE_MAX;
  for (size_t c = 0; c < folds.size(); ++c) {
    if (folds[c].fail_index < fail_index) {
      fail_index = folds[c].fail_index;
      fail_component = c;
    }
  }
  bool merged_any = false;
  for (const ComponentFold& fold : folds) {
    for (size_t i : fold.merged) {
      if (i < fail_index) {
        ++result->merges;
        merged_any = true;
      }
    }
  }
  if (fail_index != SIZE_MAX) {
    // Constant clash: stop with the structure un-rewritten, exactly
    // where the sequential chase stops.
    result->failed = true;
    result->failure_reason = folds[fail_component].fail_reason;
    return RoundOutcome::kFailed;
  }
  if (!merged_any) return RoundOutcome::kFixpoint;

  // Rewrite through the per-component partitions: Find is
  // order-independent (class constant, else class minimum) and every
  // value a pair touched lives in exactly one component, so this equals
  // the sequential round's global-partition rewrite.
  structure.RewriteValues([&](Value v) {
    auto it = value_index.find(v.raw());
    if (it == value_index.end()) return v;  // never merged this round
    const uint32_t root = uf.Find(it->second);
    return folds[component_slot.at(root)].partition.Find(v);
  });
  ++result->rounds;
  return RoundOutcome::kMerged;
}

/// Shared fixpoint driver over any structure with RewriteValues and an
/// evaluation-graph projection.
template <typename Structure, typename EvalGraphFn>
EgdChaseResult RunEgdChase(Structure& structure,
                           const std::vector<TargetEgd>& egds,
                           const NreEvaluator& eval,
                           const EgdChaseOptions& options,
                           EvalGraphFn eval_graph_of) {
  EgdChaseResult result;
  const CancellationToken* cancel = options.cancel;
  if (options.policy == EgdChasePolicy::kParallelComponents) {
    for (;;) {
      if (Stopped(cancel)) return result;
      // The evaluation graph is rebuilt per round (merges change it);
      // auto&& avoids copying when the structure *is* its own evaluation
      // graph (ChaseGraphEgds) — the rewrite happens after the last read.
      auto&& eval_graph = eval_graph_of(structure);
      const RoundOutcome outcome = ParallelRepairRound(
          structure, eval_graph, egds, eval, options, &result);
      if (outcome != RoundOutcome::kMerged) return result;
    }
  }
  const bool eager = (options.policy == EgdChasePolicy::kEagerRestart);
  for (;;) {
    if (Stopped(cancel)) return result;
    ValuePartition partition;
    bool merged_any = false;
    {
      auto&& eval_graph = eval_graph_of(structure);
      if (!CollectMerges(eval_graph, egds, eval, partition, &result,
                         &merged_any, eager, cancel)) {
        return result;  // failed
      }
    }
    if (!merged_any) return result;
    structure.RewriteValues([&](Value v) { return partition.Find(v); });
    ++result.rounds;
  }
}

EgdChaseOptions PolicyOnly(EgdChasePolicy policy,
                           const CancellationToken* cancel) {
  EgdChaseOptions options;
  options.policy = policy;
  options.cancel = cancel;
  return options;
}

}  // namespace

EgdChaseResult ChasePatternEgds(GraphPattern& pattern,
                                const std::vector<TargetEgd>& egds,
                                const NreEvaluator& eval,
                                const EgdChaseOptions& options) {
  return RunEgdChase(pattern, egds, eval, options,
                     [](GraphPattern& p) { return p.DefiniteGraph(); });
}

EgdChaseResult ChasePatternEgds(GraphPattern& pattern,
                                const std::vector<TargetEgd>& egds,
                                const NreEvaluator& eval,
                                EgdChasePolicy policy,
                                const CancellationToken* cancel) {
  return ChasePatternEgds(pattern, egds, eval, PolicyOnly(policy, cancel));
}

EgdChaseResult ChaseGraphEgds(Graph& g, const std::vector<TargetEgd>& egds,
                              const NreEvaluator& eval,
                              const EgdChaseOptions& options) {
  return RunEgdChase(g, egds, eval, options,
                     [](Graph& graph) -> const Graph& { return graph; });
}

EgdChaseResult ChaseGraphEgds(Graph& g, const std::vector<TargetEgd>& egds,
                              const NreEvaluator& eval,
                              EgdChasePolicy policy,
                              const CancellationToken* cancel) {
  return ChaseGraphEgds(g, egds, eval, PolicyOnly(policy, cancel));
}

}  // namespace gdx
