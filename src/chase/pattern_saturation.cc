#include "chase/pattern_saturation.h"

#include "graph/cnre.h"

namespace gdx {

Status SaturatePatternSameAs(GraphPattern& pattern,
                             const std::vector<SameAsConstraint>& constraints,
                             Alphabet& alphabet, const NreEvaluator& eval,
                             PatternSaturationStats* stats,
                             size_t max_rounds) {
  const SymbolId same_as = alphabet.SameAsSymbol();
  const NrePtr same_as_nre = Nre::Symbol(same_as);
  for (size_t round = 0; round < max_rounds; ++round) {
    Graph definite = pattern.DefiniteGraph();
    size_t added = 0;
    for (const SameAsConstraint& sac : constraints) {
      CnreMatcher matcher(&sac.body, &definite, eval);
      std::vector<std::pair<Value, Value>> missing;
      matcher.FindMatches({}, [&](const CnreBinding& match) {
        if (!match[sac.x1].has_value() || !match[sac.x2].has_value()) {
          return true;
        }
        Value a = *match[sac.x1];
        Value b = *match[sac.x2];
        if (a == b) return true;  // implicitly reflexive
        if (!definite.HasEdge(a, same_as, b)) missing.emplace_back(a, b);
        return true;
      });
      for (const auto& [a, b] : missing) {
        size_t before = pattern.num_edges();
        pattern.AddEdge(a, same_as_nre, b);
        if (pattern.num_edges() > before) ++added;
      }
    }
    if (stats != nullptr) {
      ++stats->rounds;
      stats->sameas_edges_added += added;
    }
    if (added == 0) return Status::Ok();
  }
  return Status::ResourceExhausted(
      "pattern sameAs saturation did not converge");
}

Status SaturatePatternTargetTgds(GraphPattern& pattern,
                                 const std::vector<TargetTgd>& tgds,
                                 Universe& universe,
                                 const NreEvaluator& eval,
                                 PatternSaturationStats* stats,
                                 size_t max_rounds) {
  for (size_t round = 0; round < max_rounds; ++round) {
    Graph definite = pattern.DefiniteGraph();
    size_t fired = 0;
    for (const TargetTgd& tgd : tgds) {
      CnreQuery head_query = tgd.HeadQuery();
      CnreMatcher body_matcher(&tgd.body, &definite, eval);
      CnreMatcher head_matcher(&head_query, &definite, eval);
      std::vector<CnreBinding> unmet;
      body_matcher.FindMatches({}, [&](const CnreBinding& match) {
        if (!head_matcher.Satisfiable(match)) unmet.push_back(match);
        return true;
      });
      for (const CnreBinding& match : unmet) {
        CnreBinding binding = match;
        for (const CnreAtom& atom : tgd.head) {
          for (const Term* t : {&atom.x, &atom.y}) {
            if (t->is_var() && !binding[t->var()].has_value()) {
              binding[t->var()] = universe.FreshNull();
              if (stats != nullptr) ++stats->nulls_created;
            }
          }
        }
        for (const CnreAtom& atom : tgd.head) {
          Value src =
              atom.x.is_const() ? atom.x.constant() : *binding[atom.x.var()];
          Value dst =
              atom.y.is_const() ? atom.y.constant() : *binding[atom.y.var()];
          pattern.AddEdge(src, atom.nre, dst);
        }
        ++fired;
        if (stats != nullptr) ++stats->tgd_triggers_fired;
      }
    }
    if (stats != nullptr) ++stats->rounds;
    if (fired == 0) return Status::Ok();
  }
  return Status::ResourceExhausted(
      "pattern target-tgd saturation did not converge");
}

}  // namespace gdx
