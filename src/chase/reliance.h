#ifndef GDX_CHASE_RELIANCE_H_
#define GDX_CHASE_RELIANCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "exchange/setting.h"
#include "graph/nre.h"

namespace gdx {

/// Static label analysis of one rule of the mapping (ISSUE 9 tentpole),
/// the per-node payload of the RelianceGraph. For st-tgds only the head
/// side matters (their bodies read source *relations*, not the pattern);
/// for egds only the body side does (they merge nodes, never derive).
struct RelianceNode {
  /// Egds: every alphabet symbol the rule's CNRE body can traverse —
  /// collected over unions, concatenations, stars, inverses and nesting
  /// tests alike, because a path witnessing any atom may ride on any of
  /// them. Sorted, duplicate-free. Empty for st-tgds.
  std::vector<SymbolId> body_symbols;

  /// St-tgds: labels the rule derives as *definite* pattern edges
  /// (single-symbol head atoms — the only head shape that feeds the egd
  /// chase's definite subgraph). Sorted, duplicate-free. Empty for egds.
  std::vector<SymbolId> definite_head_symbols;

  /// Egds: some body atom accepts ε along its main path, so a match of
  /// that atom can ride on a node alone (no definite edge needed).
  bool nullable_body_atom = false;

  /// Egds: some body atom is non-nullable yet shares no symbol with any
  /// definite label the mapping can ever derive — the rule can never
  /// match and is skipped in every chase round.
  bool dead = false;
};

/// The positive-reliance graph of a mapping (ISSUE 9 tentpole; the shape
/// of vlog's `reliances/reliances.h` ported to the paper's §5 st-tgd/egd
/// chase): node u relies-positively into node v when firing u can create
/// a new body match of v. It is a *sound over-approximation* computed
/// from label sets alone — every real feed is an edge, extra edges only
/// cost skipped optimization, never correctness:
///
///   * nothing feeds an st-tgd (st bodies read the immutable relational
///     source), so st nodes have no incoming edges;
///   * st-tgd → egd when the tgd derives a definite label the egd's body
///     reads, or the egd has a nullable atom (fresh pattern nodes alone
///     can seat an ε-match);
///   * egd → egd when both can fire and the consumer reads any label the
///     mapping derives at all — a merge can relocate edges of *any*
///     label onto new endpoints, so the producer side cannot be
///     narrowed by labels (this is why egds typically share one SCC:
///     cyclic reliances are the expected shape, not an error).
///
/// The graph depends only on the mapping (st_tgds + egds) — it is
/// content-keyed alongside the chased artifact and rides in the
/// snapshot's RELI companion section (docs/FORMAT.md) so a warm start
/// replays it without recomputation. `scc_of`/`strata`/`stratum_level`
/// are a pure function of the persisted fields and are re-derived on
/// decode (DeriveStrata), like the automata's reversed transitions.
struct RelianceGraph {
  /// Rule node order: st-tgds 0..num_st_tgds-1 in mapping order, then
  /// egds num_st_tgds..num_st_tgds+num_egds-1 in mapping order.
  size_t num_st_tgds = 0;
  size_t num_egds = 0;
  std::vector<RelianceNode> nodes;

  /// Positive-reliance adjacency: out[u] lists every v with u → v,
  /// sorted ascending, duplicate-free. Self-loops are kept (an egd can
  /// feed itself); Tarjan handles them.
  std::vector<std::vector<uint32_t>> out;

  // --- derived by DeriveStrata (never persisted) -----------------------

  /// Rule → index of its stratum in `strata`.
  std::vector<uint32_t> scc_of;
  /// Condensation SCCs in topological order (producers before
  /// consumers); each stratum lists its rules sorted ascending. Every
  /// cross-stratum edge u → v satisfies scc_of[u] < scc_of[v].
  std::vector<std::vector<uint32_t>> strata;
  /// Longest producer-chain depth per stratum: strata sharing a level
  /// are mutually independent and fan out over the pool together.
  std::vector<uint32_t> stratum_level;

  size_t num_rules() const { return num_st_tgds + num_egds; }
  /// Node id of the i-th egd.
  size_t EgdNode(size_t egd_index) const { return num_st_tgds + egd_index; }

  bool EgdDead(size_t egd_index) const {
    return nodes[EgdNode(egd_index)].dead;
  }

  /// True when the egd's body reads any of `sorted_labels` (both sides
  /// sorted; two-pointer intersection) — the per-round delta test of the
  /// semi-naive chase.
  bool EgdReadsAny(size_t egd_index,
                   const std::vector<SymbolId>& sorted_labels) const;

  /// Analyzes the mapping and derives the strata. Deterministic: equal
  /// mappings build field-for-field equal graphs.
  static RelianceGraph Build(const Setting& setting);

  /// Process-wide count of Build calls — the test hook that proves a
  /// warm start replays a persisted graph with zero recomputation.
  static uint64_t BuildCount();

  /// Recomputes scc_of / strata / stratum_level from `out` (iterative
  /// Tarjan; emission order reversed into topological order). The
  /// snapshot decoder calls this after restoring the persisted fields.
  void DeriveStrata();
};

/// Shared immutable handle: the chased artifact, the cache and the
/// snapshot codec hold one analysis without copying.
using RelianceGraphPtr = std::shared_ptr<const RelianceGraph>;

/// Appends every alphabet symbol mentioned anywhere in `nre` — through
/// unions, concatenations, stars, inverses and nesting tests — to *out
/// (unsorted, duplicates possible). Exposed for the reliance property
/// tests.
void CollectNreSymbols(const Nre& nre, std::vector<SymbolId>* out);

}  // namespace gdx

#endif  // GDX_CHASE_RELIANCE_H_
