#ifndef GDX_CHASE_EGD_CHASE_H_
#define GDX_CHASE_EGD_CHASE_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel_search.h"
#include "common/thread_pool.h"
#include "common/value.h"
#include "exchange/constraints.h"
#include "graph/graph.h"
#include "graph/nre_eval.h"
#include "pattern/pattern.h"

namespace gdx {

/// Merge application policy — an ablation knob (see bench_ablations):
///  - kDeferredRounds: collect all merges of a round against a frozen
///    evaluation graph, apply them at once, iterate (fewer rewrites, may
///    evaluate stale matches);
///  - kEagerRestart: apply the first merge found and restart matching on
///    the rewritten structure (freshest matches, more rewrites);
///  - kParallelComponents (ISSUE 10 tentpole part 1, the default): the
///    deferred-rounds fixpoint with the repair work of each round split
///    over a ThreadPool — candidate pairs are collected per egd in
///    parallel against the frozen evaluation graph, grouped into
///    congruence components by a union-find over their endpoints, and
///    each component's merges are folded independently. Byte-identical to
///    kDeferredRounds at any worker count (see ChasePatternEgds).
/// All three reach the same fixpoint (the merge relation is confluent —
/// merges only grow the congruence); they differ in cost profile.
enum class EgdChasePolicy { kDeferredRounds, kEagerRestart,
                            kParallelComponents };

/// Outcome of an egd chase. `failed == true` is the paper's chase failure
/// (case (i) of §5): two distinct *constants* had to be merged — a sound
/// certificate that no solution exists. A non-failed chase does NOT imply
/// a solution exists (Example 5.2 / Figure 6).
struct EgdChaseResult {
  bool failed = false;
  std::string failure_reason;
  size_t rounds = 0;
  size_t merges = 0;
  /// kParallelComponents work counters (zero under the sequential
  /// policies — they measure exactly the machinery the parallel path
  /// adds): rounds that entered the component-parallel repair with at
  /// least one candidate pair, and the congruence components those rounds
  /// repaired (the fan-out width the pool saw).
  size_t parallel_rounds = 0;
  size_t components = 0;
};

/// Round snapshot handed to an EgdRepairObserver (the seam the
/// skip-soundness property tests re-check component independence
/// through): this round's candidate (x1, x2) pairs grouped by congruence
/// component. Components are ordered by their first pair's global
/// (egd, match) index; within a component, pairs keep that global order —
/// exactly the order the parallel fold replays.
struct EgdRepairRoundInfo {
  size_t round = 0;
  std::vector<std::vector<std::pair<Value, Value>>> components;
};

/// Per-round instrumentation hook. Called sequentially from the chasing
/// thread before the components are repaired.
using EgdRepairObserver = std::function<void(const EgdRepairRoundInfo&)>;

/// Telemetry seam for the repair stage: implemented by the engine's
/// EngineTelemetry over registry counters (engine.egd.*). Must be
/// thread-safe — concurrent candidate repairs of one solve share a sink.
class EgdRepairStatsSink {
 public:
  virtual ~EgdRepairStatsSink() = default;
  /// One component-parallel repair round that saw `components` components.
  virtual void RecordEgdRepairRound(size_t components) = 0;
};

/// Execution knobs of one egd chase. All pointers are borrowed for the
/// duration of the call. The defaults reproduce the sequential
/// kParallelComponents run (pool == nullptr folds every component on the
/// caller thread — same bytes out either way).
struct EgdChaseOptions {
  EgdChasePolicy policy = EgdChasePolicy::kParallelComponents;
  /// Pool the component fan-out borrows workers from. nullptr (or
  /// max_workers <= 1) runs the whole chase on the caller thread.
  ThreadPool* pool = nullptr;
  /// Worker cap *including* the calling thread; 0 = pool size + 1.
  size_t max_workers = 1;
  /// Polled per round, per body match and per component task, so an abort
  /// lands within one egd match of the request. A canceled chase returns
  /// with neither `failed` nor a fixpoint — callers check the token and
  /// treat the structure as unusable.
  const CancellationToken* cancel = nullptr;
  /// Wraps every worker's pull loop (including the caller thread's), e.g.
  /// to install thread-local per-solve metric sinks. Must invoke `body`
  /// exactly once. Same contract as DeltaChaseOptions::wrap_worker.
  std::function<void(size_t worker, const std::function<void()>& body)>
      wrap_worker;
  EgdRepairObserver observer;
  EgdRepairStatsSink* stats = nullptr;
};

/// The paper's adapted chase (§5) applied to a graph pattern: egd bodies
/// are matched against the pattern's *definite subgraph* (edges labeled by
/// a single symbol, which denote real edges in every represented graph);
/// matched equalities merge nulls into constants / other nulls (cases
/// (ii)–(iii)) and fail on constant-constant merges (case (i)). Runs to
/// fixpoint, rewriting the pattern after each round.
///
/// Under kParallelComponents the result is byte-identical to
/// kDeferredRounds at any worker count, by construction:
///   * candidate pairs are *collected* in parallel (one task per egd, each
///     writing its own slot) against the round's frozen evaluation graph,
///     then ordered by (egd, match) — the sequential round's exact
///     processing order;
///   * a union-find over pair endpoints groups the pairs into congruence
///     components; two pairs in different components share no value, so
///     the sequential fold's skip/merge/fail decisions for one pair depend
///     only on its own component's earlier pairs;
///   * each component is folded independently (fanned over the pool)
///     through its own ValuePartition in global pair order; the folds are
///     then reduced sequentially: the earliest failing global pair index
///     decides failure (the structure is returned un-rewritten, exactly
///     where the sequential chase stops) and `merges` counts exactly the
///     successful merges that precede it;
///   * ValuePartition::Find is order-independent (class constant, else
///     class minimum), so rewriting through the per-component partitions
///     equals rewriting through the sequential round's global partition.
EgdChaseResult ChasePatternEgds(GraphPattern& pattern,
                                const std::vector<TargetEgd>& egds,
                                const NreEvaluator& eval,
                                const EgdChaseOptions& options);

/// Policy-only convenience overload (no pool: kParallelComponents folds
/// sequentially, still byte-identical).
EgdChaseResult ChasePatternEgds(
    GraphPattern& pattern, const std::vector<TargetEgd>& egds,
    const NreEvaluator& eval,
    EgdChasePolicy policy = EgdChasePolicy::kDeferredRounds,
    const CancellationToken* cancel = nullptr);

/// Egd chase on a concrete graph: egd bodies are evaluated with full NRE
/// semantics over G; violated equalities merge nodes (constants preferred
/// as representatives), failing on constant-constant merges. Used to
/// repair instantiated candidate solutions in the bounded existence
/// search — the hot path the component-parallel policy exists for.
EgdChaseResult ChaseGraphEgds(Graph& g, const std::vector<TargetEgd>& egds,
                              const NreEvaluator& eval,
                              const EgdChaseOptions& options);

/// Policy-only convenience overload, as for ChasePatternEgds.
EgdChaseResult ChaseGraphEgds(
    Graph& g, const std::vector<TargetEgd>& egds, const NreEvaluator& eval,
    EgdChasePolicy policy = EgdChasePolicy::kDeferredRounds,
    const CancellationToken* cancel = nullptr);

}  // namespace gdx

#endif  // GDX_CHASE_EGD_CHASE_H_
