#ifndef GDX_CHASE_EGD_CHASE_H_
#define GDX_CHASE_EGD_CHASE_H_

#include <string>
#include <vector>

#include "common/parallel_search.h"
#include "exchange/constraints.h"
#include "graph/graph.h"
#include "graph/nre_eval.h"
#include "pattern/pattern.h"

namespace gdx {

/// Merge application policy — an ablation knob (see bench_ablations):
///  - kDeferredRounds: collect all merges of a round against a frozen
///    evaluation graph, apply them at once, iterate (fewer rewrites, may
///    evaluate stale matches);
///  - kEagerRestart: apply the first merge found and restart matching on
///    the rewritten structure (freshest matches, more rewrites).
/// Both reach the same fixpoint (the merge relation is confluent — merges
/// only grow the congruence); they differ in cost profile.
enum class EgdChasePolicy { kDeferredRounds, kEagerRestart };

/// Outcome of an egd chase. `failed == true` is the paper's chase failure
/// (case (i) of §5): two distinct *constants* had to be merged — a sound
/// certificate that no solution exists. A non-failed chase does NOT imply
/// a solution exists (Example 5.2 / Figure 6).
struct EgdChaseResult {
  bool failed = false;
  std::string failure_reason;
  size_t rounds = 0;
  size_t merges = 0;
};

/// The paper's adapted chase (§5) applied to a graph pattern: egd bodies
/// are matched against the pattern's *definite subgraph* (edges labeled by
/// a single symbol, which denote real edges in every represented graph);
/// matched equalities merge nulls into constants / other nulls (cases
/// (ii)–(iii)) and fail on constant-constant merges (case (i)). Runs to
/// fixpoint, rewriting the pattern after each round.
///
/// `cancel` (optional, borrowed; ISSUE 8): polled per round and per body
/// match, so an abort lands within one egd match of the request. A
/// canceled chase returns with neither `failed` nor a fixpoint — callers
/// check the token and treat the structure as unusable.
EgdChaseResult ChasePatternEgds(
    GraphPattern& pattern, const std::vector<TargetEgd>& egds,
    const NreEvaluator& eval,
    EgdChasePolicy policy = EgdChasePolicy::kDeferredRounds,
    const CancellationToken* cancel = nullptr);

/// Egd chase on a concrete graph: egd bodies are evaluated with full NRE
/// semantics over G; violated equalities merge nodes (constants preferred
/// as representatives), failing on constant-constant merges. Used to
/// repair instantiated candidate solutions in the bounded existence search.
/// `cancel` as in ChasePatternEgds.
EgdChaseResult ChaseGraphEgds(
    Graph& g, const std::vector<TargetEgd>& egds, const NreEvaluator& eval,
    EgdChasePolicy policy = EgdChasePolicy::kDeferredRounds,
    const CancellationToken* cancel = nullptr);

}  // namespace gdx

#endif  // GDX_CHASE_EGD_CHASE_H_
