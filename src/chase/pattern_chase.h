#ifndef GDX_CHASE_PATTERN_CHASE_H_
#define GDX_CHASE_PATTERN_CHASE_H_

#include <vector>

#include "common/parallel_search.h"
#include "common/universe.h"
#include "exchange/mapping.h"
#include "pattern/pattern.h"
#include "relational/instance.h"

namespace gdx {

/// Statistics of the source-to-target pattern chase.
struct PatternChaseStats {
  size_t triggers = 0;       // body matches fired
  size_t edges_added = 0;    // pattern edges created
  size_t nulls_created = 0;  // fresh labeled nulls
};

/// The graph-data-exchange chase of [5] adapted to the relational-to-graph
/// setting (paper §3.2): for every s-t tgd and every body match over the
/// source instance, instantiate the CNRE head with the match (fresh labeled
/// nulls for the existential variables) and add the resulting NRE-labeled
/// edges to the pattern. With M_t = ∅ the result is a universal
/// representative of all solutions (Example 3.2 / Figure 3).
///
/// `cancel` (optional, borrowed; ISSUE 8): polled once per trigger, so an
/// abort lands within one body match of the request. A canceled chase
/// returns a truncated pattern that must not be used or cached — callers
/// check the token and discard.
GraphPattern ChaseToPattern(const Instance& source,
                            const std::vector<StTgd>& tgds,
                            Universe& universe,
                            PatternChaseStats* stats = nullptr,
                            const CancellationToken* cancel = nullptr);

}  // namespace gdx

#endif  // GDX_CHASE_PATTERN_CHASE_H_
