#ifndef GDX_CHASE_RELATIONAL_LOWERING_H_
#define GDX_CHASE_RELATIONAL_LOWERING_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "exchange/setting.h"
#include "graph/graph.h"
#include "relational/chase.h"

namespace gdx {

/// The §3.1 reduction: when every NRE in s-t tgd heads (and egd bodies) is
/// a single symbol a ∈ Σ, the target schema can be viewed as one binary
/// relation per symbol and classical relational data exchange applies.
struct LoweredSetting {
  /// Binary relation per alphabet symbol; owned here (RelTgds point at it).
  std::unique_ptr<Schema> target_schema;
  std::vector<RelTgd> tgds;
  std::vector<RelEgd> egds;
  /// relation id -> alphabet symbol.
  std::vector<SymbolId> symbol_of_relation;
};

/// Lowers a single-symbol setting; INVALID_ARGUMENT if some NRE is not a
/// single symbol (use the graph-pattern chase instead, §3.2/§5).
Result<LoweredSetting> LowerToRelational(const Setting& setting);

/// Lifts a chased binary-relational instance back to a graph.
Graph LiftToGraph(const Instance& instance, const LoweredSetting& lowered);

/// Full §3.1 pipeline: lower, run the classical relational chase (s-t tgds
/// then egds), lift the result. Chase failure (constant clash) propagates
/// as FAILED_PRECONDITION — no solution exists. Reproduces Example 3.1 /
/// Figure 2.
Result<Graph> RunLoweredExchange(const Setting& setting,
                                 const Instance& source, Universe& universe,
                                 RelChaseStats* stats = nullptr);

}  // namespace gdx

#endif  // GDX_CHASE_RELATIONAL_LOWERING_H_
