#include "chase/target_tgd_chase.h"

#include "graph/cnre.h"
#include "graph/graph_view.h"
#include "pattern/witness.h"

namespace gdx {

Status ChaseTargetTgds(Graph& g, const std::vector<TargetTgd>& tgds,
                       Universe& universe, const NreEvaluator& eval,
                       size_t max_rounds, TargetTgdChaseStats* stats,
                       const CancellationToken* cancel) {
  // Precompute shortest witnesses per distinct head NRE (by pointer).
  for (size_t round = 0; round < max_rounds; ++round) {
    if (cancel != nullptr && cancel->stop_requested()) return Status::Ok();
    size_t fired = 0;
    for (const TargetTgd& tgd : tgds) {
      CnreQuery head_query = tgd.HeadQuery();
      // Collect unmet triggers first; mutating g mid-enumeration is
      // unsafe. The view and matchers are scoped to this block so nothing
      // can read the snapshot after the mutation below invalidates it.
      std::vector<CnreBinding> unmet;
      {
        // One snapshot per tgd: the body and head matchers see the same
        // graph (mutation happens only after enumeration).
        GraphView view(g);
        CnreMatcher body_matcher(&tgd.body, &view, eval);
        CnreMatcher head_matcher(&head_query, &view, eval);
        body_matcher.FindMatches({}, [&](const CnreBinding& match) {
          if (!head_matcher.Satisfiable(match)) unmet.push_back(match);
          return true;
        });
      }
      for (const CnreBinding& match : unmet) {
        // Abort lands within one trigger materialization (ISSUE 8); the
        // partially chased graph is discarded by cancel-aware callers.
        if (cancel != nullptr && cancel->stop_requested()) return Status::Ok();
        // Fresh nulls for existential head variables of this trigger.
        CnreBinding binding = match;
        for (const CnreAtom& atom : tgd.head) {
          for (const Term* t : {&atom.x, &atom.y}) {
            if (t->is_var() && !binding[t->var()].has_value()) {
              binding[t->var()] = universe.FreshNull();
            }
          }
        }
        for (const CnreAtom& atom : tgd.head) {
          Value src =
              atom.x.is_const() ? atom.x.constant() : *binding[atom.x.var()];
          Value dst =
              atom.y.is_const() ? atom.y.constant() : *binding[atom.y.var()];
          std::vector<Witness> witnesses = EnumerateWitnesses(
              atom.nre, /*max_edges=*/16, /*max_count=*/4);
          bool materialized = false;
          size_t before = g.num_edges();
          for (const Witness& w : witnesses) {
            if (w.IsEpsilonChain() && src != dst) continue;
            if (MaterializeWitness(g, universe, src, dst, w).ok()) {
              materialized = true;
              break;
            }
          }
          if (!materialized) {
            return Status::FailedPrecondition(
                "target tgd head NRE admits no materializable witness");
          }
          if (stats != nullptr) stats->edges_added += g.num_edges() - before;
        }
        ++fired;
        if (stats != nullptr) ++stats->triggers_fired;
      }
    }
    if (stats != nullptr) ++stats->rounds;
    if (fired == 0) return Status::Ok();
  }
  return Status::ResourceExhausted(
      "target tgd chase did not converge within max_rounds");
}

}  // namespace gdx
