#include "chase/sameas_completion.h"

#include "common/union_find.h"
#include "graph/cnre.h"

#include <optional>
#include <unordered_map>

namespace gdx {
namespace {

/// Adds reflexive-symmetric-transitive closure of the sameAs relation over
/// nodes already touched by sameAs edges. Returns edges added.
size_t RstClose(Graph& g, SymbolId same_as) {
  std::vector<Value> touched;
  std::unordered_map<uint64_t, uint32_t> index;
  for (const Edge& e : g.edges()) {
    if (e.label != same_as) continue;
    for (Value v : {e.src, e.dst}) {
      if (index.emplace(v.raw(), touched.size()).second) {
        touched.push_back(v);
      }
    }
  }
  UnionFind uf(touched.size());
  for (const Edge& e : g.edges()) {
    if (e.label != same_as) continue;
    uf.Union(index[e.src.raw()], index[e.dst.raw()]);
  }
  // Group by class and add all intra-class pairs (including self-loops).
  std::unordered_map<uint32_t, std::vector<Value>> classes;
  for (uint32_t i = 0; i < touched.size(); ++i) {
    classes[uf.Find(i)].push_back(touched[i]);
  }
  size_t added = 0;
  for (const auto& [root, members] : classes) {
    for (Value a : members) {
      for (Value b : members) {
        if (g.AddEdge(a, same_as, b)) ++added;
      }
    }
  }
  return added;
}

}  // namespace

Status CompleteSameAs(Graph& g,
                      const std::vector<SameAsConstraint>& constraints,
                      const Alphabet& alphabet, const NreEvaluator& eval,
                      SameAsCompletionStats* stats,
                      const SameAsCompletionOptions& options) {
  std::optional<SymbolId> same_as_id = alphabet.FindSameAs();
  if (constraints.empty()) {
    // No constraints to enforce. rst_closure may still close existing
    // sameAs edges — but if the label was never interned, no edge can
    // carry it and the closure is vacuous too.
    if (!options.rst_closure || !same_as_id.has_value()) {
      return Status::Ok();
    }
  } else if (!same_as_id.has_value()) {
    return Status::FailedPrecondition(
        "sameAs label not interned; build sameAs constraints through the "
        "setting's Alphabet before completing");
  }
  const SymbolId same_as = *same_as_id;
  for (size_t round = 0; round < options.max_rounds; ++round) {
    size_t added = 0;
    // Bodies may mention sameAs, so matchers are rebuilt each round.
    for (const SameAsConstraint& sac : constraints) {
      CnreMatcher matcher(&sac.body, &g, eval);
      std::vector<std::pair<Value, Value>> missing;
      matcher.FindMatches({}, [&](const CnreBinding& match) {
        if (!match[sac.x1].has_value() || !match[sac.x2].has_value()) {
          return true;
        }
        Value a = *match[sac.x1];
        Value b = *match[sac.x2];
        if (options.implicit_reflexive && a == b) return true;
        if (!g.HasEdge(a, same_as, b)) missing.emplace_back(a, b);
        return true;
      });
      for (const auto& [a, b] : missing) {
        if (g.AddEdge(a, same_as, b)) ++added;
      }
    }
    if (options.rst_closure) added += RstClose(g, same_as);
    if (stats != nullptr) {
      ++stats->rounds;
      stats->edges_added += added;
    }
    if (added == 0) return Status::Ok();
  }
  return Status::ResourceExhausted(
      "sameAs completion did not converge within max_rounds");
}

}  // namespace gdx
