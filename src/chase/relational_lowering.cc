#include "chase/relational_lowering.h"

namespace gdx {
namespace {

/// Translates a CNRE atom with a single-symbol NRE to a relational atom.
Result<RelAtom> LowerAtom(const CnreAtom& atom, const Schema& target_schema,
                          const Alphabet& alphabet) {
  if (!IsSingleSymbol(atom.nre)) {
    return Status::InvalidArgument(
        "not a single-symbol NRE: lowering requires the §3.1 fragment");
  }
  auto rel = target_schema.Find(alphabet.NameOf(atom.nre->symbol()));
  if (!rel.has_value()) {
    return Status::Internal("lowered relation missing for symbol");
  }
  RelAtom out;
  out.relation = *rel;
  out.terms = {atom.x, atom.y};
  return out;
}

}  // namespace

Result<LoweredSetting> LowerToRelational(const Setting& setting) {
  LoweredSetting lowered;
  lowered.target_schema = std::make_unique<Schema>();
  for (SymbolId s = 0; s < setting.alphabet->size(); ++s) {
    Result<RelationId> rel =
        lowered.target_schema->AddRelation(setting.alphabet->NameOf(s), 2);
    if (!rel.ok()) return rel.status();
    lowered.symbol_of_relation.push_back(s);
  }

  for (const StTgd& tgd : setting.st_tgds) {
    RelTgd lowered_tgd(&tgd.body.schema(), lowered.target_schema.get());
    lowered_tgd.body = tgd.body;
    for (const CnreAtom& atom : tgd.head) {
      Result<RelAtom> rel_atom =
          LowerAtom(atom, *lowered.target_schema, *setting.alphabet);
      if (!rel_atom.ok()) return rel_atom.status();
      lowered_tgd.head.push_back(std::move(rel_atom).value());
    }
    lowered.tgds.push_back(std::move(lowered_tgd));
  }

  for (const TargetEgd& egd : setting.egds) {
    RelEgd lowered_egd(lowered.target_schema.get());
    lowered_egd.body = ConjunctiveQuery(lowered.target_schema.get());
    lowered_egd.body.SetVarTable(egd.body.vars());
    for (const CnreAtom& atom : egd.body.atoms()) {
      Result<RelAtom> rel_atom =
          LowerAtom(atom, *lowered.target_schema, *setting.alphabet);
      if (!rel_atom.ok()) return rel_atom.status();
      lowered_egd.body.AddAtom(std::move(rel_atom).value());
    }
    lowered_egd.x1 = egd.x1;
    lowered_egd.x2 = egd.x2;
    lowered.egds.push_back(std::move(lowered_egd));
  }

  if (!setting.target_tgds.empty() || !setting.sameas.empty()) {
    return Status::Unimplemented(
        "relational lowering handles s-t tgds and egds (the §3.1 fragment)");
  }
  return lowered;
}

Graph LiftToGraph(const Instance& instance, const LoweredSetting& lowered) {
  Graph g;
  for (RelationId rel = 0; rel < lowered.target_schema->size(); ++rel) {
    SymbolId symbol = lowered.symbol_of_relation[rel];
    for (const Tuple& t : instance.facts(rel)) {
      g.AddEdge(t[0], symbol, t[1]);
    }
  }
  return g;
}

Result<Graph> RunLoweredExchange(const Setting& setting,
                                 const Instance& source, Universe& universe,
                                 RelChaseStats* stats) {
  Result<LoweredSetting> lowered = LowerToRelational(setting);
  if (!lowered.ok()) return lowered.status();
  Result<Instance> chased =
      RunRelationalExchange(source, lowered->tgds, lowered->egds,
                            lowered->target_schema.get(), universe, stats);
  if (!chased.ok()) return chased.status();
  return LiftToGraph(*chased, *lowered);
}

}  // namespace gdx
