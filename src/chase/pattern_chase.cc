#include "chase/pattern_chase.h"

#include "relational/eval.h"

namespace gdx {

GraphPattern ChaseToPattern(const Instance& source,
                            const std::vector<StTgd>& tgds,
                            Universe& universe, PatternChaseStats* stats,
                            const CancellationToken* cancel) {
  GraphPattern pattern;
  for (const StTgd& tgd : tgds) {
    if (cancel != nullptr && cancel->stop_requested()) break;
    const std::vector<VarId> existential = tgd.ExistentialVars();
    FindCqMatches(tgd.body, source, [&](const Binding& match) {
      if (cancel != nullptr && cancel->stop_requested()) return false;
      Binding binding = match;
      for (VarId v : existential) {
        binding[v] = universe.FreshNull();
        if (stats != nullptr) ++stats->nulls_created;
      }
      for (const CnreAtom& atom : tgd.head) {
        Value src =
            atom.x.is_const() ? atom.x.constant() : *binding[atom.x.var()];
        Value dst =
            atom.y.is_const() ? atom.y.constant() : *binding[atom.y.var()];
        pattern.AddEdge(src, atom.nre, dst);
        if (stats != nullptr) ++stats->edges_added;
      }
      if (stats != nullptr) ++stats->triggers;
      return true;
    });
  }
  return pattern;
}

}  // namespace gdx
