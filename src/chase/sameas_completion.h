#ifndef GDX_CHASE_SAMEAS_COMPLETION_H_
#define GDX_CHASE_SAMEAS_COMPLETION_H_

#include <vector>

#include "common/status.h"
#include "exchange/constraints.h"
#include "graph/graph.h"
#include "graph/nre_eval.h"

namespace gdx {

/// Options for sameAs saturation.
struct SameAsCompletionOptions {
  /// Additionally close sameAs under reflexivity (on sameAs-touched nodes),
  /// symmetry and transitivity — the RDF reading. The paper's constraints
  /// only require the asserted edges, so this is off by default.
  bool rst_closure = false;
  /// Skip materializing self-loop sameAs edges for triggers with x1 = x2
  /// (sameAs is implicitly reflexive; mirrors SolutionCheckOptions and the
  /// paper's Figure 1(c) which draws none).
  bool implicit_reflexive = true;
  size_t max_rounds = 1024;
};

struct SameAsCompletionStats {
  size_t rounds = 0;
  size_t edges_added = 0;
};

/// Saturates G with the sameAs edges required by the constraints (§4.2):
/// repeatedly evaluate each body and add the missing (x1, sameAs, x2)
/// edges until fixpoint. This realizes the paper's observation that
/// existence of solutions is trivial for sameAs constraints: any graph can
/// be completed by adding edges — even between constants.
///
/// Takes the alphabet by const reference so concurrent intra-solve workers
/// can share it without racing on the interner: the sameAs label must
/// already be interned (constructing any sameAs constraint does that);
/// otherwise FAILED_PRECONDITION is returned. No-op Ok() when
/// `constraints` is empty.
Status CompleteSameAs(Graph& g,
                      const std::vector<SameAsConstraint>& constraints,
                      const Alphabet& alphabet, const NreEvaluator& eval,
                      SameAsCompletionStats* stats = nullptr,
                      const SameAsCompletionOptions& options = {});

}  // namespace gdx

#endif  // GDX_CHASE_SAMEAS_COMPLETION_H_
