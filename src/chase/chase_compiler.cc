#include "chase/chase_compiler.h"

#include "chase/egd_chase.h"
#include "graph/nre_compile.h"

namespace gdx {
namespace {

void AppendCnreAtoms(const std::vector<CnreAtom>& atoms, std::string* out) {
  AppendRawU64(atoms.size(), out);
  for (const CnreAtom& atom : atoms) {
    AppendTermRawSignature(atom.x, out);
    AppendNreRawSignature(*atom.nre, out);
    AppendTermRawSignature(atom.y, out);
  }
}

}  // namespace

std::string ChaseCompiler::Key(const Setting& setting, const Instance& source,
                               const Universe& universe) {
  std::string key;
  key.reserve(64 + source.TotalFacts() * 24);
  // s-t tgds: CQ bodies (the variable count matters — unbound variables
  // change match enumeration) and CNRE heads.
  AppendRawU64(setting.st_tgds.size(), &key);
  for (const StTgd& tgd : setting.st_tgds) {
    AppendRawU64(tgd.body.num_vars(), &key);
    AppendRawU64(tgd.body.atoms().size(), &key);
    for (const RelAtom& atom : tgd.body.atoms()) {
      AppendRawU64(atom.relation, &key);
      AppendRawU64(atom.terms.size(), &key);
      for (const Term& t : atom.terms) AppendTermRawSignature(t, &key);
    }
    AppendCnreAtoms(tgd.head, &key);
  }
  // egds: CNRE bodies plus the equated variable pair.
  AppendRawU64(setting.egds.size(), &key);
  for (const TargetEgd& egd : setting.egds) {
    AppendRawU64(egd.body.num_vars(), &key);
    AppendCnreAtoms(egd.body.atoms(), &key);
    AppendRawU64(egd.x1, &key);
    AppendRawU64(egd.x2, &key);
  }
  // Source instance: every relation's facts in insertion order (the order
  // the chase fires triggers in).
  const size_t num_relations = source.schema().size();
  AppendRawU64(num_relations, &key);
  for (RelationId rel = 0; rel < num_relations; ++rel) {
    const std::vector<Tuple>& facts = source.facts(rel);
    AppendRawU64(facts.size(), &key);
    for (const Tuple& fact : facts) {
      AppendRawU64(fact.size(), &key);
      for (Value v : fact) AppendRawU64(v.raw(), &key);
    }
  }
  // The base null count pins the id space the artifact's fresh nulls (and
  // the labels derived from them) start at.
  AppendRawU64(universe.num_nulls(), &key);
  return key;
}

ChasedScenarioPtr ChaseCompiler::Compile(const Setting& setting,
                                         const Instance& source,
                                         Universe& universe,
                                         const NreEvaluator& eval,
                                         const ChaseCompileOptions& options) {
  const CancellationToken* cancel = options.cancel;
  auto artifact = std::make_shared<ChasedScenario>();
  artifact->base_nulls = universe.num_nulls();
  // Both algorithms analyze the mapping: the artifact's reliance bytes —
  // and hence the persisted RELI payload — are algorithm-independent.
  auto reliance =
      std::make_shared<const RelianceGraph>(RelianceGraph::Build(setting));
  artifact->reliance = reliance;
  if (options.algorithm == ChaseAlgorithm::kNaive) {
    artifact->pattern = ChaseToPattern(source, setting.st_tgds, universe,
                                       &artifact->stats, cancel);
    if (!setting.egds.empty() &&
        !(cancel != nullptr && cancel->stop_requested())) {
      EgdChaseResult egd = ChasePatternEgds(
          artifact->pattern, setting.egds, eval,
          EgdChasePolicy::kDeferredRounds, cancel);
      artifact->egd_merges = egd.merges;
      if (egd.failed) {
        artifact->failed = true;
        artifact->failure_reason = egd.failure_reason;
      }
    }
  } else {
    DeltaChaseOptions delta_options;
    delta_options.pool = options.pool;
    delta_options.max_workers = options.max_workers;
    delta_options.cancel = cancel;
    delta_options.wrap_worker = options.wrap_worker;
    delta_options.observer = options.observer;
    DeltaChaseResult run = RunDeltaChase(setting, source, *reliance, universe,
                                         eval, delta_options);
    artifact->pattern = std::move(run.pattern);
    artifact->stats = run.stats;
    artifact->egd_merges = run.egd.merges;
    if (run.egd.failed) {
      artifact->failed = true;
      artifact->failure_reason = run.egd.failure_reason;
    }
    artifact->delta = run.delta;
  }
  if (cancel != nullptr && cancel->stop_requested()) {
    artifact->canceled = true;
  }
  artifact->null_labels = universe.NullLabelsSince(artifact->base_nulls);
  return artifact;
}

ChasedScenarioPtr ChaseCompiler::Compile(const Setting& setting,
                                         const Instance& source,
                                         Universe& universe,
                                         const NreEvaluator& eval,
                                         const CancellationToken* cancel) {
  ChaseCompileOptions options;
  options.cancel = cancel;
  return Compile(setting, source, universe, eval, options);
}

void ChaseCompiler::Adopt(const ChasedScenario& chased, Universe& universe) {
  universe.AppendNullLabels(chased.null_labels);
}

GraphPattern ReplayChase(const ChasedScenario& chased, Universe& universe) {
  const size_t base = universe.num_nulls();
  if (base == chased.base_nulls) {
    // Positioned at the artifact's own base: the stored arena restores the
    // exact labels and the pattern's ids already line up.
    ChaseCompiler::Adopt(chased, universe);
    return chased.pattern;
  }
  // The universe has since grown: draw the arena's nulls fresh (labels
  // derive from the new ids, exactly as a re-run of the chase would) and
  // shift the chase-created null ids to the new base. Pre-existing nulls
  // (below the artifact's base) and constants pass through untouched.
  for (size_t i = 0; i < chased.null_labels.size(); ++i) {
    universe.FreshNull();
  }
  const int64_t delta =
      static_cast<int64_t>(base) - static_cast<int64_t>(chased.base_nulls);
  GraphPattern shifted = chased.pattern;
  shifted.RewriteValues([&](Value v) {
    if (v.is_null() && v.id() >= chased.base_nulls) {
      return Value::Null(
          static_cast<uint32_t>(static_cast<int64_t>(v.id()) + delta));
    }
    return v;
  });
  return shifted;
}

}  // namespace gdx
