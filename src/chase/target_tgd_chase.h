#ifndef GDX_CHASE_TARGET_TGD_CHASE_H_
#define GDX_CHASE_TARGET_TGD_CHASE_H_

#include <vector>

#include "common/parallel_search.h"
#include "common/status.h"
#include "common/universe.h"
#include "exchange/constraints.h"
#include "graph/graph.h"
#include "graph/nre_eval.h"

namespace gdx {

struct TargetTgdChaseStats {
  size_t rounds = 0;
  size_t triggers_fired = 0;
  size_t edges_added = 0;
};

/// Restricted chase for general target tgds on a concrete graph: for every
/// body match whose head is not yet satisfiable, the head is materialized
/// (fresh nulls for existential variables; each head NRE realized by its
/// shortest witness). Target tgds may cascade, so the chase may diverge —
/// `max_rounds` bounds it; non-convergence returns RESOURCE_EXHAUSTED
/// (the paper leaves termination for target tgds open; cf. Calì et al.'s
/// "taming the infinite chase").
///
/// `cancel` (optional, borrowed; ISSUE 8): polled per round and per unmet
/// trigger. A canceled chase returns Ok with the graph only partially
/// chased — callers check the token and must not treat g as a fixpoint.
Status ChaseTargetTgds(Graph& g, const std::vector<TargetTgd>& tgds,
                       Universe& universe, const NreEvaluator& eval,
                       size_t max_rounds = 64,
                       TargetTgdChaseStats* stats = nullptr,
                       const CancellationToken* cancel = nullptr);

}  // namespace gdx

#endif  // GDX_CHASE_TARGET_TGD_CHASE_H_
