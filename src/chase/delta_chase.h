#ifndef GDX_CHASE_DELTA_CHASE_H_
#define GDX_CHASE_DELTA_CHASE_H_

#include <functional>
#include <vector>

#include "chase/egd_chase.h"
#include "chase/pattern_chase.h"
#include "chase/reliance.h"
#include "common/parallel_search.h"
#include "common/thread_pool.h"
#include "common/universe.h"
#include "exchange/setting.h"
#include "graph/nre_eval.h"
#include "pattern/pattern.h"
#include "relational/instance.h"

namespace gdx {

/// Work counters of one semi-naive chase run (ISSUE 9 tentpole). All four
/// are zero for the naive reference algorithm — they measure exactly the
/// machinery the delta path adds.
struct DeltaChaseStats {
  /// Evaluation rounds that joined at least one rule: the s-t seed round
  /// plus every egd round with a non-empty evaluated set.
  size_t delta_rounds = 0;
  /// (rule, round) skip events: egds whose body labels saw no delta —
  /// including mapping-dead egds, skipped in every round.
  size_t skipped_rules = 0;
  /// (rule, round) join events: the s-t tgds of the seed round plus every
  /// evaluated egd per round. skipped / (skipped + evaluated) is the
  /// fraction of rule firings the reliance analysis saved.
  size_t evaluated_rules = 0;
  /// Strata of the reliance graph's condensation.
  size_t strata = 0;
};

/// Round-start snapshot handed to a DeltaChaseObserver: which egds this
/// round joins, which it skips, and the delta labels that decided it.
/// `pattern` points at the pre-round pattern and is valid only during the
/// observer call. Round 0 is the first egd round (delta = the whole
/// seeded pattern, so only mapping-dead egds are skipped).
struct DeltaRoundInfo {
  size_t round = 0;
  const GraphPattern* pattern = nullptr;
  /// Labels of definite edges an endpoint rewrite touched in the previous
  /// round, sorted; empty in round 0.
  std::vector<SymbolId> delta_labels;
  std::vector<size_t> evaluated_egds;
  std::vector<size_t> skipped_egds;
};

/// Per-round instrumentation hook — the seam the reliance soundness
/// property tests re-check skipped rules through. Called sequentially
/// from the chasing thread; must not touch the pattern after returning.
using DeltaChaseObserver = std::function<void(const DeltaRoundInfo&)>;

/// Execution knobs of one delta chase. All pointers are borrowed for the
/// duration of the call.
struct DeltaChaseOptions {
  /// Pool the independent-rule fan-out borrows workers from. nullptr (or
  /// max_workers <= 1) runs the whole chase on the caller thread — same
  /// bytes out either way.
  ThreadPool* pool = nullptr;
  /// Worker cap *including* the calling thread; 0 = pool size + 1.
  size_t max_workers = 1;
  /// Polled per rule task and per body match, as the naive chase does.
  const CancellationToken* cancel = nullptr;
  /// Wraps every worker's pull loop (including the caller thread's), e.g.
  /// to install thread-local per-solve metric sinks. Must invoke `body`
  /// exactly once. Same contract as ParallelSearchOptions::wrap_worker.
  std::function<void(size_t worker, const std::function<void()>& body)>
      wrap_worker;
  DeltaChaseObserver observer;
};

/// Everything one chase run produces; field-for-field what the naive
/// stage sequence (ChaseToPattern + ChasePatternEgds) yields, plus the
/// delta counters.
struct DeltaChaseResult {
  GraphPattern pattern;
  PatternChaseStats stats;
  EgdChaseResult egd;
  DeltaChaseStats delta;
};

/// Semi-naive chase of the §5 universal representative (ISSUE 9
/// tentpole; vlog's `seminaiver` shape ported to the st-tgd/egd chase).
/// Byte-identical to ChaseToPattern + ChasePatternEgds(kDeferredRounds)
/// at any worker count — same pattern node/edge order, same null ids and
/// labels, same stats/merge/round/failure fields — by construction:
///
///   * Seed round: st-tgd body matches are *collected* in parallel over
///     the immutable source (one task per tgd — the rules are mutually
///     independent, level-0 strata of `reliance`), then *folded*
///     sequentially in (tgd, match) order, which replays the naive
///     trigger sequence exactly (fresh-null draw order included).
///   * Egd rounds: each round joins only rules whose body labels
///     intersect the previous round's delta (labels of definite edges an
///     endpoint rewrite touched); round 0 joins every non-dead rule.
///     Matches of the joined rules are collected in parallel against the
///     round's frozen definite graph — fanned out stratum level by
///     stratum level — and folded sequentially in (egd, match) order
///     through a fresh ValuePartition: the naive merge/skip/failure
///     sequence, byte for byte.
///
///   Skipping loses nothing: RunEgdChase rewrites the pattern with a
///   fresh partition each round, so every match of a no-delta rule binds
///   x1 and x2 to *equal* values (its matches were already processed —
///   and equalized — in the round that last saw its labels move), and
///   mapping-dead rules have no matches at all. See reliance.h; the
///   delta_chase_test battery re-checks both properties per round.
///
/// A canceled run returns a truncated result that must not be used or
/// cached, exactly like the naive stages (no byte-identity is promised
/// mid-abort).
DeltaChaseResult RunDeltaChase(const Setting& setting, const Instance& source,
                               const RelianceGraph& reliance,
                               Universe& universe, const NreEvaluator& eval,
                               const DeltaChaseOptions& options = {});

}  // namespace gdx

#endif  // GDX_CHASE_DELTA_CHASE_H_
