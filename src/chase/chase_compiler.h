#ifndef GDX_CHASE_CHASE_COMPILER_H_
#define GDX_CHASE_CHASE_COMPILER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chase/delta_chase.h"
#include "chase/pattern_chase.h"
#include "chase/reliance.h"
#include "common/thread_pool.h"
#include "common/universe.h"
#include "exchange/setting.h"
#include "graph/nre_eval.h"
#include "pattern/pattern.h"
#include "relational/instance.h"

namespace gdx {

/// The compiled chase stage (ISSUE 5 tentpole): the paper's §5 universal
/// representative — the s-t chased pattern after the adapted egd chase —
/// packaged as an immutable, shareable artifact together with the null
/// arena the chase filled and the work counters it produced. The chase
/// depends only on (st_tgds, egds, source instance, base null count), so
/// one compilation serves every solve over the same inputs: the engine
/// memoizes artifacts in the EngineCache chased memo and the persistence
/// layer round-trips them through the snapshot's CHSE section.
struct ChasedScenario {
  /// The chased pattern, in the id space of the compiling universe: nulls
  /// the chase created carry ids base_nulls, base_nulls+1, ... (minus the
  /// ones the egd chase merged away).
  GraphPattern pattern;

  /// s-t chase work counters (triggers / edges / nulls).
  PatternChaseStats stats;

  /// Adapted egd chase outcome. `failed` is the paper's §5 case (i)
  /// constant clash — a sound "no solution exists"; the pattern field is
  /// then meaningless (the chase aborted mid-merge) and must not be used.
  bool failed = false;
  std::string failure_reason;
  size_t egd_merges = 0;

  /// Set when a CancellationToken fired during compilation (ISSUE 8): the
  /// pattern is truncated mid-chase and must never be used, cached, or
  /// persisted. A canceled artifact is a per-solve throwaway — the engine
  /// skips the chased memo and the snapshot codec never sees one.
  bool canceled = false;

  /// The universe's null count when the chase started, and the labels of
  /// every null the chase created (in creation order). Together they are
  /// the null arena: replaying the artifact appends exactly these nulls.
  size_t base_nulls = 0;
  std::vector<std::string> null_labels;

  /// The mapping's positive-reliance analysis (ISSUE 9 tentpole),
  /// computed once per compilation — by *both* algorithms, so its bytes
  /// are mode-independent — and persisted in the snapshot's RELI
  /// companion section. Artifacts decoded from pre-RELI snapshots carry
  /// nullptr here, which is harmless: the analysis only matters while
  /// compiling, and a decoded artifact never re-chases.
  RelianceGraphPtr reliance;

  /// Delta-chase work counters. All zero for ChaseAlgorithm::kNaive and
  /// for artifacts restored from cache or snapshot (like the chase work
  /// counters, they describe the compilation that actually ran).
  DeltaChaseStats delta;
};

/// Immutable shared handle: the cache, the snapshot codec and every
/// consuming solve hold the same artifact without copying.
using ChasedScenarioPtr = std::shared_ptr<const ChasedScenario>;

/// Which chase evaluates the mapping (ISSUE 9 tentpole). Both produce
/// byte-identical artifacts — the naive algorithm stays as the
/// differential reference, mirroring how PR 3 kept the dense NRE
/// evaluator.
enum class ChaseAlgorithm {
  /// Semi-naive: reliance-scheduled delta rounds, parallel rule fan-out
  /// (delta_chase.h). The default.
  kDelta,
  /// The legacy full-round stage sequence
  /// (ChaseToPattern + ChasePatternEgds), always sequential.
  kNaive,
};

/// Knobs of one Compile call. All pointers are borrowed for the call.
struct ChaseCompileOptions {
  ChaseAlgorithm algorithm = ChaseAlgorithm::kDelta;
  /// Pool + worker cap for the delta fan-out (DeltaChaseOptions);
  /// ignored by kNaive. Defaults keep compilation on the caller thread.
  ThreadPool* pool = nullptr;
  size_t max_workers = 1;
  const CancellationToken* cancel = nullptr;
  /// Wraps every borrowed worker's run (thread-local metric sinks); see
  /// DeltaChaseOptions::wrap_worker.
  std::function<void(size_t worker, const std::function<void()>& body)>
      wrap_worker;
  /// Per-round skip instrumentation (property tests); kDelta only.
  DeltaChaseObserver observer;
};

/// Compile-once/solve-many driver of the chase stage.
class ChaseCompiler {
 public:
  /// The chased-memo key: a prefix-unambiguous byte encoding of everything
  /// the chase reads — st tgds (bodies, heads, variable counts), egds
  /// (atoms, equated variables), the source instance's facts in insertion
  /// order, and the universe's current null count. Equal keys imply the
  /// chase inputs are bitwise equal in interned-id space, so an artifact
  /// compiled under one key substitutes exactly under any equal key —
  /// across solves, scenarios and (via the snapshot) processes, by the
  /// same determinism contract the other engine memo keys rely on.
  static std::string Key(const Setting& setting, const Instance& source,
                         const Universe& universe);

  /// Runs the s-t pattern chase and, when egds are present, the adapted
  /// egd chase, capturing the result plus the null arena. Appends the
  /// chase's fresh nulls to `universe` exactly as the uncompiled stage
  /// sequence (ChaseToPattern + ChasePatternEgds) would — under either
  /// algorithm and any worker count; the reliance analysis is built
  /// either way and rides in the artifact. options.cancel aborts
  /// compilation within one chase step; the returned artifact then has
  /// `canceled == true` (see above).
  static ChasedScenarioPtr Compile(const Setting& setting,
                                   const Instance& source,
                                   Universe& universe,
                                   const NreEvaluator& eval,
                                   const ChaseCompileOptions& options = {});

  /// Cancellation-only convenience (the pre-options signature): default
  /// algorithm, caller thread only.
  static ChasedScenarioPtr Compile(const Setting& setting,
                                   const Instance& source,
                                   Universe& universe,
                                   const NreEvaluator& eval,
                                   const CancellationToken* cancel);

  /// Installs a cache/snapshot hit into a universe positioned at the
  /// artifact's own base (universe.num_nulls() == chased.base_nulls — the
  /// key guarantees it): appends the stored null labels verbatim. After
  /// Adopt, chased.pattern is valid in the universe's id space as-is.
  static void Adopt(const ChasedScenario& chased, Universe& universe);
};

/// Replays the artifact into a universe that has grown past the artifact's
/// base (the solver stages re-chase mid-solve): draws the arena's nulls
/// fresh (FreshNull — the labels the pattern chase itself derives) and
/// returns the pattern with the chase-created null ids shifted to the new
/// base. Byte-for-byte what re-running ChaseToPattern + ChasePatternEgds
/// at the current null count would produce: the chase derives null ids and
/// labels purely from creation order, and every downstream choice (match
/// order, merge representatives) is invariant under a uniform id shift.
/// For a failed artifact the returned pattern is meaningless (as the
/// re-run's would be) but the universe side effects still match the re-run.
GraphPattern ReplayChase(const ChasedScenario& chased, Universe& universe);

}  // namespace gdx

#endif  // GDX_CHASE_CHASE_COMPILER_H_
