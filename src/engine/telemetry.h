#ifndef GDX_ENGINE_TELEMETRY_H_
#define GDX_ENGINE_TELEMETRY_H_

#include <cstdint>

#include "chase/egd_chase.h"
#include "common/thread_pool.h"
#include "engine/metrics.h"
#include "graph/nre_eval.h"
#include "obs/stats_registry.h"

namespace gdx {

/// The engine's registry-backed metric set (ISSUE 6 tentpole part 1):
/// pre-registered handles for everything a Solve produces, so the hot
/// path records through cached pointers and never touches the registry's
/// name map. One instance lives in each ExchangeEngine whose
/// EngineOptions::stats registry is set; the existing Metrics /
/// CacheStats structs stay the per-solve read-out views (no call site's
/// report changes), and this bridge additionally folds every solve into
/// the engine-wide histograms and counters that `--metrics-json` dumps.
///
/// Metric names are the docs/TELEMETRY.md schema: `engine.solve.*_ns`
/// stage-latency histograms, `engine.work.*` chase/search counters,
/// `engine.chase.*` delta-chase counters (ISSUE 9),
/// `engine.cache.<memo>.<event>` cache counters, `pool.<which>.*`
/// thread-pool counters/gauges, and the ISSUE 10 hot-path counters:
/// `engine.egd.{parallel_rounds,components}` from the component-parallel
/// repair (the sinks below — registry metrics are thread-safe, so
/// concurrent candidate repairs record directly) and
/// `engine.nre.{batch_passes,sources_per_pass}` from the bit-parallel
/// multi-source BFS.
class EngineTelemetry : public EgdRepairStatsSink, public NreEvalStatsSink {
 public:
  explicit EngineTelemetry(obs::StatsRegistry* registry)
      : solve_count_(registry->GetCounter("engine.solve.count")),
        solve_total_(registry->GetHistogram("engine.solve.total_ns")),
        solve_chase_(registry->GetHistogram("engine.solve.chase_ns")),
        solve_existence_(
            registry->GetHistogram("engine.solve.existence_ns")),
        solve_certain_(registry->GetHistogram("engine.solve.certain_ns")),
        solve_minimize_(
            registry->GetHistogram("engine.solve.minimize_ns")),
        solve_verify_(registry->GetHistogram("engine.solve.verify_ns")),
        chase_triggers_(registry->GetCounter("engine.work.chase_triggers")),
        chase_merges_(registry->GetCounter("engine.work.chase_merges")),
        chase_delta_rounds_(
            registry->GetCounter("engine.chase.delta_rounds")),
        chase_skipped_rules_(
            registry->GetCounter("engine.chase.skipped_rules")),
        chase_strata_(registry->GetCounter("engine.chase.strata")),
        candidates_(registry->GetCounter("engine.work.candidates_tried")),
        solutions_(
            registry->GetCounter("engine.work.solutions_enumerated")),
        nre_hits_(registry->GetCounter("engine.cache.nre.hits")),
        nre_misses_(registry->GetCounter("engine.cache.nre.misses")),
        answer_hits_(registry->GetCounter("engine.cache.answer.hits")),
        answer_misses_(registry->GetCounter("engine.cache.answer.misses")),
        compile_hits_(registry->GetCounter("engine.cache.compile.hits")),
        compile_misses_(
            registry->GetCounter("engine.cache.compile.misses")),
        chase_hits_(registry->GetCounter("engine.cache.chase.hits")),
        chase_misses_(registry->GetCounter("engine.cache.chase.misses")),
        restored_hits_(
            registry->GetCounter("engine.cache.restored_hits")),
        intra_submitted_(registry->GetCounter("pool.intra.submitted")),
        intra_executed_(registry->GetCounter("pool.intra.executed")),
        intra_steals_(registry->GetCounter("pool.intra.steals")),
        intra_queue_depth_(registry->GetGauge("pool.intra.queue_depth")),
        egd_parallel_rounds_(
            registry->GetCounter("engine.egd.parallel_rounds")),
        egd_components_(registry->GetCounter("engine.egd.components")),
        nre_batch_passes_(registry->GetCounter("engine.nre.batch_passes")),
        nre_sources_per_pass_(
            registry->GetHistogram("engine.nre.sources_per_pass")) {}

  /// EgdRepairStatsSink: one component-parallel repair round (ISSUE 10).
  void RecordEgdRepairRound(size_t components) override {
    egd_parallel_rounds_->Increment();
    egd_components_->Add(components);
  }

  /// NreEvalStatsSink: one batched multi-source BFS pass (ISSUE 10).
  void RecordNreBatchPass(size_t sources) override {
    nre_batch_passes_->Increment();
    nre_sources_per_pass_->Record(sources);
  }

  /// Folds one finished solve's read-out view into the registry. The
  /// cache counters in `m` are this solve's exact attribution (ISSUE 2),
  /// so summing them here reproduces the batch-wide cache deltas.
  void RecordSolve(const Metrics& m) const {
    solve_count_->Increment();
    solve_total_->Record(ToNs(m.total_seconds));
    solve_chase_->Record(ToNs(m.chase_seconds));
    solve_existence_->Record(ToNs(m.existence_seconds));
    if (m.certain_seconds > 0) solve_certain_->Record(ToNs(m.certain_seconds));
    if (m.minimize_seconds > 0) {
      solve_minimize_->Record(ToNs(m.minimize_seconds));
    }
    if (m.verify_seconds > 0) solve_verify_->Record(ToNs(m.verify_seconds));
    chase_triggers_->Add(m.chase_triggers);
    chase_merges_->Add(m.chase_merges);
    chase_delta_rounds_->Add(m.chase_delta_rounds);
    chase_skipped_rules_->Add(m.chase_skipped_rules);
    chase_strata_->Add(m.chase_strata);
    candidates_->Add(m.candidates_tried);
    solutions_->Add(m.solutions_enumerated);
    nre_hits_->Add(m.nre_cache_hits);
    nre_misses_->Add(m.nre_cache_misses);
    answer_hits_->Add(m.answer_cache_hits);
    answer_misses_->Add(m.answer_cache_misses);
    compile_hits_->Add(m.compile_cache_hits);
    compile_misses_->Add(m.compile_cache_misses);
    chase_hits_->Add(m.chase_cache_hits);
    chase_misses_->Add(m.chase_cache_misses);
    restored_hits_->Add(m.cache_restored_hits());
  }

  /// Publishes the intra-solve pool's health. Counter totals are
  /// monotonic on the pool side; this adds the delta since the last
  /// publish (callers publish from one thread at a time — the batch
  /// layer's post-SolveAll hook).
  void PublishIntraPool(const ThreadPoolStats& stats) const {
    intra_submitted_->Add(stats.submitted - last_intra_.submitted);
    intra_executed_->Add(stats.executed - last_intra_.executed);
    intra_steals_->Add(stats.steals - last_intra_.steals);
    intra_queue_depth_->Set(static_cast<int64_t>(stats.queue_depth));
    last_intra_ = stats;
  }

  static uint64_t ToNs(double seconds) {
    return seconds <= 0 ? 0 : static_cast<uint64_t>(seconds * 1e9);
  }

 private:
  obs::Counter* solve_count_;
  obs::Histogram* solve_total_;
  obs::Histogram* solve_chase_;
  obs::Histogram* solve_existence_;
  obs::Histogram* solve_certain_;
  obs::Histogram* solve_minimize_;
  obs::Histogram* solve_verify_;
  obs::Counter* chase_triggers_;
  obs::Counter* chase_merges_;
  obs::Counter* chase_delta_rounds_;
  obs::Counter* chase_skipped_rules_;
  obs::Counter* chase_strata_;
  obs::Counter* candidates_;
  obs::Counter* solutions_;
  obs::Counter* nre_hits_;
  obs::Counter* nre_misses_;
  obs::Counter* answer_hits_;
  obs::Counter* answer_misses_;
  obs::Counter* compile_hits_;
  obs::Counter* compile_misses_;
  obs::Counter* chase_hits_;
  obs::Counter* chase_misses_;
  obs::Counter* restored_hits_;
  obs::Counter* intra_submitted_;
  obs::Counter* intra_executed_;
  obs::Counter* intra_steals_;
  obs::Gauge* intra_queue_depth_;
  obs::Counter* egd_parallel_rounds_;
  obs::Counter* egd_components_;
  obs::Counter* nre_batch_passes_;
  obs::Histogram* nre_sources_per_pass_;
  /// Delta tracking for PublishIntraPool; mutable because publishing is
  /// logically read-only engine observation (single publisher at a time).
  mutable ThreadPoolStats last_intra_;
};

}  // namespace gdx

#endif  // GDX_ENGINE_TELEMETRY_H_
