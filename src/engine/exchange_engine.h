#ifndef GDX_ENGINE_EXCHANGE_ENGINE_H_
#define GDX_ENGINE_EXCHANGE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "engine/cache.h"
#include "engine/metrics.h"
#include "engine/telemetry.h"
#include "obs/stats_registry.h"
#include "pattern/pattern.h"
#include "solver/certain.h"
#include "solver/core_minimizer.h"
#include "solver/existence.h"
#include "workload/scenario.h"

namespace gdx {

/// Existence-decision policy of the engine (mirrors ExistenceStrategy; see
/// solver/existence.h for the semantics of each). Named ChasePolicy
/// through PR 8; renamed when ChasePolicy came to mean the chase
/// *algorithm* (ISSUE 9).
enum class ExistencePolicy {
  kAuto,           // pick per setting (default)
  kChaseRefute,    // adapted chase + canonical instantiation only
  kBoundedSearch,  // complete witness-combination enumeration
  kSatBacked,      // flat-fragment CNF + DPLL, bounded-search fallback
};

/// Which algorithm stage 1 (the chase) runs (ISSUE 9 tentpole). Both are
/// byte-identical in every output — kNaive is the differential reference
/// the delta_chase_test battery measures kDelta against, mirroring how
/// PR 3 kept the dense NRE evaluator.
enum class ChasePolicy {
  /// Semi-naive delta rounds with reliance-based rule skipping; rules fan
  /// out over the intra-solve pool (see chase/delta_chase.h).
  kDelta,
  /// Legacy full-round chase, always sequential.
  kNaive,
};

/// Which NRE evaluation engine the pipeline runs on.
enum class EvaluatorKind {
  kAutomaton,  // product-automaton BFS (default, fastest)
  kNaive,      // relation-algebra reference
};

/// Typed knobs of the whole solve pipeline.
struct EngineOptions {
  ExistencePolicy existence_policy = ExistencePolicy::kAuto;
  ChasePolicy chase_policy = ChasePolicy::kDelta;
  EvaluatorKind evaluator = EvaluatorKind::kAutomaton;

  /// Egd-repair policy of the existence stage's candidate repairs
  /// (ISSUE 10 tentpole part 1): component-parallel over the intra-solve
  /// pool by default; the sequential policies are byte-identical ablation
  /// references (`gdx_cli --egd-repair`).
  EgdChasePolicy egd_policy = EgdChasePolicy::kParallelComponents;
  /// Multi-source strategy of the automaton evaluator (ISSUE 10 tentpole
  /// part 2): 64-way bit-parallel BFS by default; kPerSource pins the
  /// byte-identical per-source reference loop. Ignored by kNaive.
  MultiSourceMode nre_multi_source = MultiSourceMode::kBatched;

  /// Witness enumeration budgets for pattern instantiation.
  InstantiationOptions instantiation;
  /// Max instantiations the bounded existence search explores.
  size_t max_candidates = 1u << 20;
  size_t target_tgd_max_rounds = 64;
  /// Dedup enumerated solutions up to null renaming.
  bool dedup_isomorphic = true;

  /// How many structurally distinct solutions certain answers intersect.
  size_t max_solutions = 16;
  /// Compute certain answers when the scenario carries a query.
  bool compute_certain_answers = true;
  /// Greedily core-minimize the existence witness.
  bool minimize_core = false;
  /// Re-check the final solution against the setting (defensive).
  bool verify_witness = true;
  /// Memoize NRE evaluations and per-solution answer sets.
  bool enable_cache = true;
  /// Size caps of the engine cache (LRU eviction; see EngineCacheOptions).
  EngineCacheOptions cache;

  /// Sentinel for intra_solve_threads: derive the worker count per
  /// scenario from the witness-choice space (NumCombinations) — small
  /// spaces run sequentially, large ones fan out up to hardware
  /// concurrency (ISSUE 5 satellite; ROADMAP "adaptive intra-solve
  /// scheduling").
  static constexpr size_t kIntraSolveAdaptive = ~static_cast<size_t>(0);

  /// Intra-solve parallelism (ISSUE 2 tentpole): workers — including the
  /// calling thread — that one Solve's bounded existence search, solution
  /// enumeration and SAT cube deck fan out over. 1 = sequential;
  /// 0 = hardware concurrency; kIntraSolveAdaptive (default) sizes the
  /// fan-out per scenario from the choice space, so tiny searches skip
  /// the pool entirely and an explicit value always wins. The engine owns
  /// the backing pool; outcomes are byte-identical for every value of
  /// this knob. Orthogonal to BatchOptions::num_threads (scenario-level
  /// parallelism): typical deployments raise one of the two — batch
  /// threads for many small scenarios, intra-solve threads for few hard
  /// ones.
  size_t intra_solve_threads = kIntraSolveAdaptive;
  /// Cube-and-conquer width of the SAT-backed path (2^k per-worker DPLL
  /// cubes; 0 = single DPLL call). See ExistenceOptions::sat_cube_vars.
  size_t sat_cube_vars = 4;

  /// Observability (ISSUE 6 tentpole): registry the engine folds every
  /// solve's metrics into — stage-latency histograms (p50/p99 come from
  /// these), chase/search work counters, cache traffic, intra-pool
  /// health. nullptr (the default) disables registry recording entirely:
  /// the engine then pays nothing beyond the Metrics struct it always
  /// filled. The per-solve Metrics read-out view is unchanged either way;
  /// the registry is the engine-wide accumulation `--metrics-json` dumps
  /// (docs/TELEMETRY.md). Borrowed; must outlive the engine.
  obs::StatsRegistry* stats = nullptr;

  ExistenceOptions ToExistenceOptions() const;
};

/// Everything one solve produces. ToString renders the semantic content
/// (verdict, witness, certain answers) deterministically — timings live in
/// `metrics` and are excluded, so equal exchanges render byte-identically.
struct ExchangeOutcome {
  /// The §5 universal representative: s-t chased pattern after the adapted
  /// egd chase. Present unless the adapted chase failed.
  std::optional<GraphPattern> pattern;

  ExistenceReport existence;

  /// The materialized solution (the existence witness, core-minimized when
  /// EngineOptions::minimize_core is set).
  std::optional<Graph> solution;
  bool core_minimized = false;
  CoreMinimizeStats core_stats;
  /// Result of the defensive final check (unset when skipped).
  std::optional<bool> solution_verified;

  std::optional<CertainAnswerResult> certain;

  /// Why the solve stopped early, if it did (ISSUE 8): kCanceled /
  /// kDeadline when the cancellation token fired mid-pipeline (the
  /// existence verdict is then kUnknown with note "search cancelled"
  /// unless an earlier stage already settled it), kNone for a full run.
  /// Excluded from ToString — like timings, it is not semantic content.
  CancellationToken::StopReason interrupt = CancellationToken::StopReason::kNone;

  Metrics metrics;

  std::string ToString(const Universe& universe,
                       const Alphabet& alphabet) const;
};

/// The one-call orchestration subsystem (PR 1 tentpole): encapsulates the
/// full pipeline
///
///   s-t pattern chase → adapted egd chase → existence decision →
///   (core minimization) → certain answers → solution check
///
/// behind Solve(). The engine owns its evaluator and an EngineCache whose
/// memo tables make repeated queries over the same target graph near-free.
/// Solve is const and thread-safe: concurrent calls (the BatchExecutor's
/// mode of operation) share the internally synchronized cache and touch
/// only their own scenario's state. With intra_solve_threads > 1 the
/// engine additionally owns a work-stealing pool that every Solve's
/// witness-choice search fans out over (ISSUE 2 tentpole) — concurrent
/// solves share the pool, each waiting only on its own subranges.
class ExchangeEngine {
 public:
  explicit ExchangeEngine(EngineOptions options = {});

  /// Runs the pipeline on one scenario. The scenario's universe accrues
  /// fresh nulls (as in any hand-wired run); setting/schemas are read-only.
  /// `cancel` (optional, borrowed) aborts the solve cooperatively: a
  /// cancelled solve reports ExistenceVerdict::kUnknown.
  Result<ExchangeOutcome> Solve(const Scenario& scenario,
                                const CancellationToken* cancel) const;
  Result<ExchangeOutcome> Solve(const Scenario& scenario) const {
    return Solve(scenario, nullptr);
  }

  // --- Warm-start persistence (ISSUE 4 tentpole) ------------------------

  /// Restores engine warm state — NRE memo, answer memo, and compiled
  /// automata — from a snapshot saved by SaveWarmState (or
  /// EngineCache::SaveSnapshot). A cold process that warm-starts from an
  /// identical prior run's snapshot skips every NRE evaluation and
  /// automaton compilation it would otherwise redo. Corruption-safe: a
  /// bad file restores nothing and returns a descriptive error; the
  /// engine then simply runs cold. Call before the first Solve —
  /// restored entries merge under live ones, so later calls still work,
  /// they just restore less.
  Result<SnapshotRestoreStats> WarmStart(const std::string& path);

  /// Saves the engine's current warm state to `path` (docs/FORMAT.md).
  Status SaveWarmState(const std::string& path) const;

  const EngineOptions& options() const { return options_; }
  /// The evaluator the pipeline runs on (cache-decorated when enabled).
  const NreEvaluator& evaluator() const {
    return caching_eval_ != nullptr
               ? static_cast<const NreEvaluator&>(*caching_eval_)
               : *base_eval_;
  }
  EngineCache& cache() const { return *cache_; }
  /// The intra-solve worker count Solve actually uses (>= 1).
  size_t intra_solve_threads() const;

  /// Pushes point-in-time engine telemetry — currently the intra-solve
  /// pool's counters and queue-depth gauge — into EngineOptions::stats.
  /// No-op without a registry. Called by the batch layer after each
  /// SolveAll; safe to call any time from one thread.
  void PublishPoolTelemetry() const;

 private:
  CertainAnswerResult ComputeCertainAnswers(
      const Scenario& scenario, const ExistenceReport& existence,
      const ExistenceOptions& existence_options,
      const ChasedScenario* chased) const;
  /// Stage 1 of Solve (ISSUE 5 tentpole): the §5 universal representative
  /// as a compile-once artifact — served from the chased memo on a
  /// content hit (the chase does not run; `m` then records zero triggers
  /// and the memo's hit counters tick instead), compiled and published on
  /// a miss. Either way the scenario's universe ends up with exactly the
  /// nulls a fresh chase would have created. Compilation runs the
  /// configured ChasePolicy; under kDelta its rule fan-out borrows the
  /// intra pool, routing worker cache traffic to `sink` (exact per-solve
  /// attribution, as the existence stage's workers do).
  ChasedScenarioPtr StageChase(const Scenario& scenario, Metrics& m,
                               PerSolveCacheStats* sink,
                               const CancellationToken* cancel) const;
  /// ToExistenceOptions() plus the per-call wiring: intra pool, the
  /// solve's cache-attribution worker scope, and the cancellation token.
  ExistenceOptions MakeExistenceOptions(PerSolveCacheStats* sink,
                                        const CancellationToken* cancel)
      const;

  EngineOptions options_;
  std::unique_ptr<NreEvaluator> base_eval_;
  /// base_eval_ downcast when it is the automaton engine (else null) —
  /// for the knobs only that engine has (multi-source mode, stats sink).
  AutomatonNreEvaluator* automaton_eval_ = nullptr;
  std::unique_ptr<EngineCache> cache_;
  std::unique_ptr<CachingNreEvaluator> caching_eval_;
  /// Registry-backed metric handles; null when EngineOptions::stats is
  /// null (recording then costs exactly one pointer check per solve).
  std::unique_ptr<EngineTelemetry> telemetry_;
  /// Workers for the intra-solve fan-out; null when intra_solve_threads
  /// resolves to 1. Mutable state lives inside ThreadPool (internally
  /// synchronized); Solve stays const.
  std::unique_ptr<ThreadPool> intra_pool_;
};

}  // namespace gdx

#endif  // GDX_ENGINE_EXCHANGE_ENGINE_H_
