#include "engine/exchange_engine.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "chase/chase_compiler.h"
#include "exchange/solution_check.h"
#include "obs/trace.h"

namespace gdx {
namespace {

const char* VerdictName(ExistenceVerdict v) {
  switch (v) {
    case ExistenceVerdict::kYes: return "YES";
    case ExistenceVerdict::kNo: return "NO";
    case ExistenceVerdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

}  // namespace

ExistenceOptions EngineOptions::ToExistenceOptions() const {
  ExistenceOptions out;
  switch (existence_policy) {
    case ExistencePolicy::kAuto:
      out.strategy = ExistenceStrategy::kAuto;
      break;
    case ExistencePolicy::kChaseRefute:
      out.strategy = ExistenceStrategy::kChaseRefute;
      break;
    case ExistencePolicy::kBoundedSearch:
      out.strategy = ExistenceStrategy::kBoundedSearch;
      break;
    case ExistencePolicy::kSatBacked:
      out.strategy = ExistenceStrategy::kSatBacked;
      break;
  }
  out.instantiation = instantiation;
  out.max_candidates = max_candidates;
  out.target_tgd_max_rounds = target_tgd_max_rounds;
  out.dedup_isomorphic = dedup_isomorphic;
  out.egd_policy = egd_policy;
  if (intra_solve_threads == kIntraSolveAdaptive) {
    // Adaptive scheduling (ISSUE 5 satellite): the sentinel never reaches
    // the solver as a worker count — it becomes "pool size + 1, scaled
    // down per scenario by the choice space".
    out.intra_solve_threads = 0;
    out.adaptive_intra = true;
  } else {
    out.intra_solve_threads = intra_solve_threads;
  }
  out.sat_cube_vars = sat_cube_vars;
  // intra_pool / worker_scope / cancel are per-call wiring the engine adds
  // in MakeExistenceOptions; hand-wired solvers run sequentially unless
  // the caller supplies a pool of their own.
  return out;
}

std::string ExchangeOutcome::ToString(const Universe& universe,
                                      const Alphabet& alphabet) const {
  std::ostringstream out;
  out << "existence: " << VerdictName(existence.verdict) << "  ("
      << existence.note << ")\n";
  if (solution.has_value()) {
    if (core_minimized) {
      out << "core-minimized: removed " << core_stats.edges_removed
          << " edge(s), " << core_stats.nodes_removed << " node(s)\n";
    }
    out << solution->ToString(universe, alphabet);
  }
  if (certain.has_value()) {
    if (certain->no_solution) {
      out << "certain: no solution exists; every tuple is vacuously "
             "certain\n";
    } else {
      out << "certain answers (" << certain->solutions_considered
          << " solution(s) intersected):\n";
      for (const auto& tuple : certain->tuples) {
        out << "  (";
        for (size_t i = 0; i < tuple.size(); ++i) {
          if (i > 0) out << ", ";
          out << universe.NameOf(tuple[i]);
        }
        out << ")\n";
      }
    }
  }
  return out.str();
}

ExchangeEngine::ExchangeEngine(EngineOptions options)
    : options_(options), cache_(new EngineCache(options.cache)) {
  if (options_.evaluator == EvaluatorKind::kNaive) {
    base_eval_.reset(new NaiveNreEvaluator);
  } else {
    // The cache doubles as the compiled-automaton store (ISSUE 3): every
    // intra-solve worker and batch scenario shares one lowering per NRE.
    automaton_eval_ = new AutomatonNreEvaluator(
        options_.enable_cache ? cache_.get() : nullptr);
    automaton_eval_->set_multi_source_mode(options_.nre_multi_source);
    base_eval_.reset(automaton_eval_);
  }
  if (options_.enable_cache) {
    caching_eval_.reset(new CachingNreEvaluator(base_eval_.get(),
                                                cache_.get()));
  }
  // 0 resolves to hardware concurrency; the caller thread is worker 0, so
  // the pool only needs the extra ones. All concurrent Solves share it.
  size_t workers = intra_solve_threads();
  if (workers > 1) intra_pool_.reset(new ThreadPool(workers - 1));
  if (options_.stats != nullptr) {
    telemetry_.reset(new EngineTelemetry(options_.stats));
    // Batched-BFS pass counters (engine.nre.*) flow straight from the
    // evaluator into the registry; registry metrics are thread-safe, so
    // concurrent solves record without coordination.
    if (automaton_eval_ != nullptr) {
      automaton_eval_->set_stats_sink(telemetry_.get());
    }
  }
}

void ExchangeEngine::PublishPoolTelemetry() const {
  if (telemetry_ != nullptr && intra_pool_ != nullptr) {
    telemetry_->PublishIntraPool(intra_pool_->stats());
  }
}

Result<SnapshotRestoreStats> ExchangeEngine::WarmStart(
    const std::string& path) {
  SnapshotRestoreStats restored;
  Status status = cache_->LoadSnapshot(path, &restored);
  if (!status.ok()) return status;
  return restored;
}

Status ExchangeEngine::SaveWarmState(const std::string& path) const {
  return cache_->SaveSnapshot(path);
}

size_t ExchangeEngine::intra_solve_threads() const {
  // Adaptive (the default) sizes the *pool* for the hardware; the
  // per-scenario scale-down happens inside the solver's searches.
  if (options_.intra_solve_threads == 0 ||
      options_.intra_solve_threads == EngineOptions::kIntraSolveAdaptive) {
    return ThreadPool::DefaultThreads();
  }
  return options_.intra_solve_threads;
}

ExistenceOptions ExchangeEngine::MakeExistenceOptions(
    PerSolveCacheStats* sink, const CancellationToken* cancel) const {
  ExistenceOptions out = options_.ToExistenceOptions();
  out.intra_solve_threads = intra_solve_threads();
  out.intra_pool = intra_pool_.get();
  out.cancel = cancel;
  out.egd_stats = telemetry_.get();
  // Intra-solve workers serve *this* solve: route their cache traffic to
  // its sink (exact per-solve attribution under concurrent batches) and
  // install the solve's cancellation token for evaluator internals — the
  // batched BFS polls the thread-local token (ISSUE 10).
  out.worker_scope = [sink, cancel](size_t worker,
                                    const std::function<void()>& body) {
    ScopedCacheAttribution attribution(sink);
    ScopedEvalCancellation eval_cancel(cancel);
    // Worker-rank attribution in the trace (ISSUE 6): one span per
    // intra-solve worker run, arg = the worker's rank within this solve's
    // fan-out (0 = the calling thread).
    (void)worker;  // referenced only by the span under GDX_OBS_DISABLED
    GDX_TRACE_SPAN("intra.worker", "intra", worker);
    body();
  };
  return out;
}

Result<ExchangeOutcome> ExchangeEngine::Solve(
    const Scenario& scenario, const CancellationToken* cancel) const {
  if (scenario.universe == nullptr || scenario.instance == nullptr ||
      scenario.alphabet == nullptr) {
    return Status::InvalidArgument(
        "scenario is missing universe/instance/alphabet");
  }
  const NreEvaluator& eval = evaluator();
  ExchangeOutcome out;
  Metrics& m = out.metrics;
  m.scenarios = 1;
  // Per-solve cache attribution (ISSUE 2 satellite): this sink collects
  // every cache touch made on this solve's behalf — from this thread and
  // from the intra-solve workers, which install it via worker_scope.
  PerSolveCacheStats solve_cache;
  ScopedCacheAttribution attribution(&solve_cache);
  // Evaluator-internal cancellation on the calling thread (workers get it
  // via worker_scope): the batched multi-source BFS polls this token per
  // round, bounding an abort inside one long evaluation (ISSUE 10).
  ScopedEvalCancellation eval_cancel(cancel);
  ExistenceOptions existence_options =
      MakeExistenceOptions(&solve_cache, cancel);
  {
    StageTimer total(&m.total_seconds);
    GDX_TRACE_SPAN("solve", "engine");

    // Stage 1 — universal representative (§5), compiled once per content
    // (ISSUE 5 tentpole): the chased memo serves repeats and warm starts;
    // a miss runs the s-t chase + adapted egd chase and publishes the
    // artifact. A failing adapted chase is a sound "no solution".
    ChasedScenarioPtr chased;
    bool chase_refuted = false;
    bool chase_canceled = false;
    {
      StageTimer t(&m.chase_seconds);
      GDX_TRACE_SPAN("chase", "engine");
      chased = StageChase(scenario, m, &solve_cache, cancel);
      if (chased->canceled) {
        // The chase aborted mid-way (ISSUE 8): the pattern is truncated —
        // neither published in the outcome nor handed to later stages.
        out.existence.verdict = ExistenceVerdict::kUnknown;
        out.existence.note = "search cancelled";
        chase_canceled = true;
      } else if (chased->failed) {
        out.existence.verdict = ExistenceVerdict::kNo;
        out.existence.refuted_by_chase = true;
        out.existence.note =
            "adapted chase failed: " + chased->failure_reason;
        chase_refuted = true;
      } else {
        out.pattern = chased->pattern;
      }
    }

    // Stage 2 — existence decision under the configured policy, replaying
    // the stage-1 artifact instead of re-chasing.
    if (!chase_refuted && !chase_canceled) {
      StageTimer t(&m.existence_seconds);
      GDX_TRACE_SPAN("existence", "engine");
      ExistenceSolver solver(&eval, existence_options);
      out.existence =
          solver.Decide(scenario.setting, *scenario.instance,
                        *scenario.universe, chased.get());
    }
    m.candidates_tried = out.existence.candidates_tried;

    // Stage 3 — materialize (and optionally core-minimize) the solution.
    // A witness that exists is complete (Decide only emits verified
    // solutions), but skip the optional minimization once the token has
    // fired — it would burn the caller's remaining budget.
    if (out.existence.witness.has_value()) {
      if (options_.minimize_core &&
          (cancel == nullptr || !cancel->stop_requested())) {
        StageTimer t(&m.minimize_seconds);
        GDX_TRACE_SPAN("minimize", "engine");
        out.solution = GreedyCoreMinimize(
            *out.existence.witness, scenario.setting, *scenario.instance,
            eval, *scenario.universe, &out.core_stats);
        out.core_minimized = true;
      } else {
        out.solution = *out.existence.witness;
      }
    }

    // Stage 4 — certain answers of the scenario query. A chase refutation
    // already settles them (no solution: every tuple is vacuously
    // certain), so skip the enumeration — it would only redo the failing
    // chase.
    if (scenario.query != nullptr && options_.compute_certain_answers &&
        (cancel == nullptr || !cancel->stop_requested())) {
      StageTimer t(&m.certain_seconds);
      GDX_TRACE_SPAN("certain", "engine");
      if (chase_refuted) {
        CertainAnswerResult vacuous;
        vacuous.no_solution = true;
        out.certain = std::move(vacuous);
      } else {
        out.certain = ComputeCertainAnswers(scenario, out.existence,
                                            existence_options, chased.get());
      }
      m.solutions_enumerated = out.certain->solutions_considered;
    }

    // Stage 5 — defensive final check of the materialized solution.
    if (options_.verify_witness && out.solution.has_value() &&
        (cancel == nullptr || !cancel->stop_requested())) {
      StageTimer t(&m.verify_seconds);
      GDX_TRACE_SPAN("verify", "engine");
      out.solution_verified =
          IsSolution(scenario.setting, *scenario.instance, *out.solution,
                     eval, *scenario.universe);
    }
  }

  // Exact per-solve cache counters from this solve's own sink — no
  // overlap with concurrent sibling solves; their sums reproduce the
  // batch-wide deltas (BatchExecutor cross-checks that).
  CacheStats solve_delta = solve_cache.Snapshot();
  m.nre_cache_hits = solve_delta.nre_hits;
  m.nre_cache_misses = solve_delta.nre_misses;
  m.answer_cache_hits = solve_delta.answer_hits;
  m.answer_cache_misses = solve_delta.answer_misses;
  m.compile_cache_hits = solve_delta.compile_hits;
  m.compile_cache_misses = solve_delta.compile_misses;
  m.chase_cache_hits = solve_delta.chase_hits;
  m.chase_cache_misses = solve_delta.chase_misses;
  m.nre_cache_restored_hits = solve_delta.nre_restored_hits;
  m.answer_cache_restored_hits = solve_delta.answer_restored_hits;
  m.compile_cache_restored_hits = solve_delta.compile_restored_hits;
  m.chase_cache_restored_hits = solve_delta.chase_restored_hits;
  // Typed interruption outcome (ISSUE 8): record why the solve stopped
  // early. stop_requested() self-trips an expired deadline, so a deadline
  // that lapsed without any stage polling still surfaces here.
  if (cancel != nullptr && cancel->stop_requested()) {
    out.interrupt = cancel->reason();
  }
  // Registry-backed accumulation (ISSUE 6): fold this solve's read-out
  // view into the engine-wide histograms/counters. One pointer check when
  // no registry is attached.
  if (telemetry_ != nullptr) telemetry_->RecordSolve(m);
  return out;
}

ChasedScenarioPtr ExchangeEngine::StageChase(const Scenario& scenario,
                                             Metrics& m,
                                             PerSolveCacheStats* sink,
                                             const CancellationToken* cancel)
    const {
  std::string key;
  if (options_.enable_cache) {
    GDX_TRACE_SPAN("cache.chase_lookup", "cache");
    key = ChaseCompiler::Key(scenario.setting, *scenario.instance,
                             *scenario.universe);
    if (ChasedScenarioPtr hit = cache_->LookupChased(key)) {
      // The key pins the universe's base null count, so the artifact's
      // arena drops in id-for-id; the chase itself is skipped and the
      // work counters in `m` stay 0 for this solve.
      ChaseCompiler::Adopt(*hit, *scenario.universe);
      return hit;
    }
  }
  ChasedScenarioPtr compiled;
  {
    GDX_TRACE_SPAN("chase.compile", "engine");
    ChaseCompileOptions compile_options;
    compile_options.algorithm = options_.chase_policy == ChasePolicy::kNaive
                                    ? ChaseAlgorithm::kNaive
                                    : ChaseAlgorithm::kDelta;
    compile_options.pool = intra_pool_.get();
    compile_options.max_workers = intra_solve_threads();
    compile_options.cancel = cancel;
    // Borrowed chase workers serve *this* solve: route their cache
    // traffic to its sink, exactly like the existence stage's
    // worker_scope (BatchExecutor cross-checks the per-solve sums).
    compile_options.wrap_worker = [sink](size_t worker,
                                         const std::function<void()>& body) {
      ScopedCacheAttribution attribution(sink);
      (void)worker;  // referenced only by the span under GDX_OBS_DISABLED
      GDX_TRACE_SPAN("chase.worker", "chase", worker);
      body();
    };
    compiled = ChaseCompiler::Compile(scenario.setting, *scenario.instance,
                                      *scenario.universe, evaluator(),
                                      compile_options);
  }
  m.chase_triggers = compiled->stats.triggers;
  m.chase_merges = compiled->egd_merges;
  m.chase_delta_rounds = compiled->delta.delta_rounds;
  m.chase_skipped_rules = compiled->delta.skipped_rules;
  m.chase_strata = compiled->delta.strata;
  // A canceled artifact is truncated mid-chase — never published to the
  // memo, where it would poison every future solve with the same key.
  if (options_.enable_cache && !compiled->canceled) {
    cache_->StoreChased(key, compiled);
  }
  return compiled;
}

CertainAnswerResult ExchangeEngine::ComputeCertainAnswers(
    const Scenario& scenario, const ExistenceReport& existence,
    const ExistenceOptions& existence_options,
    const ChasedScenario* chased) const {
  const NreEvaluator& eval = evaluator();
  CertainAnswerResult result;
  ExistenceSolver solver(&eval, existence_options);
  std::vector<Graph> solutions = solver.EnumerateSolutions(
      scenario.setting, *scenario.instance, *scenario.universe,
      options_.max_solutions, chased);
  if (existence_options.cancel != nullptr &&
      existence_options.cancel->stop_requested()) {
    // A cancelled enumeration is truncated arbitrarily; intersecting over
    // it would over-approximate the certain answers. Report the sound
    // empty set ("nothing certified") instead.
    return result;
  }
  result.solutions_considered = solutions.size();
  if (solutions.empty()) {
    // Stage 2 already decided existence under the same options — reuse it
    // to tell "no solution" (vacuously certain) from an empty enumeration.
    result.no_solution = existence.verdict == ExistenceVerdict::kNo;
    return result;
  }

  std::unordered_set<std::vector<Value>, ValueVecHash> intersection;
  bool first = true;
  for (const Graph& g : solutions) {
    // Answer memo: repeated queries over an already-seen solution graph
    // (up to null renaming) skip CNRE matching entirely.
    std::string key;
    std::vector<std::vector<Value>> constant_tuples;
    bool hit = false;
    if (options_.enable_cache) {
      key = EngineCache::AnswerKey(*scenario.query, g);
      hit = cache_->LookupAnswers(key, g, &constant_tuples);
    }
    if (!hit) {
      std::vector<std::vector<Value>> answers =
          EvaluateCnre(*scenario.query, g, eval);
      for (auto& t : answers) {
        if (AllConstantTuple(t)) constant_tuples.push_back(std::move(t));
      }
      if (options_.enable_cache) {
        cache_->StoreAnswers(key, g, constant_tuples);
      }
    }
    if (first) {
      intersection.insert(constant_tuples.begin(), constant_tuples.end());
      first = false;
    } else {
      std::unordered_set<std::vector<Value>, ValueVecHash> keep(
          constant_tuples.begin(), constant_tuples.end());
      for (auto it = intersection.begin(); it != intersection.end();) {
        if (keep.count(*it) == 0) {
          it = intersection.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (intersection.empty()) break;
  }
  result.tuples.assign(intersection.begin(), intersection.end());
  SortAnswerTuples(result.tuples);
  return result;
}

}  // namespace gdx
