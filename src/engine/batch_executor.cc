#include "engine/batch_executor.h"

#include <chrono>
#include <cstdio>

namespace gdx {

BatchExecutor::BatchExecutor(BatchOptions options)
    : options_(options),
      engine_(options.engine),
      pool_(options.num_threads) {}

BatchReport BatchExecutor::SolveAll(std::vector<Scenario>& scenarios) {
  BatchReport report;
  report.num_threads = pool_.num_threads();
  CacheStats cache_before = engine_.cache().stats();
  auto start = std::chrono::steady_clock::now();

  report.outcomes.assign(
      scenarios.size(),
      Result<ExchangeOutcome>(Status::Internal("solve did not run")));
  for (size_t i = 0; i < scenarios.size(); ++i) {
    pool_.Submit([this, &scenarios, &report, i] {
      report.outcomes[i] = engine_.Solve(scenarios[i]);
    });
  }
  pool_.Wait();

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const Result<ExchangeOutcome>& r : report.outcomes) {
    if (!r.ok()) {
      ++report.errors;
      continue;
    }
    report.total.Accumulate(r->metrics);
    switch (r->existence.verdict) {
      case ExistenceVerdict::kYes: ++report.yes; break;
      case ExistenceVerdict::kNo: ++report.no; break;
      case ExistenceVerdict::kUnknown: ++report.unknown; break;
    }
  }
  // Report the batch-wide cache deltas. Per-solve counters are exact too
  // (thread-local attribution, ISSUE 2) and their accumulated sum equals
  // these deltas; taking the cache's own numbers keeps the report correct
  // even if an out-of-band client hits the shared cache mid-batch.
  CacheStats cache_after = engine_.cache().stats();
  report.total.nre_cache_hits = cache_after.nre_hits - cache_before.nre_hits;
  report.total.nre_cache_misses =
      cache_after.nre_misses - cache_before.nre_misses;
  report.total.answer_cache_hits =
      cache_after.answer_hits - cache_before.answer_hits;
  report.total.answer_cache_misses =
      cache_after.answer_misses - cache_before.answer_misses;
  report.total.compile_cache_hits =
      cache_after.compile_hits - cache_before.compile_hits;
  report.total.compile_cache_misses =
      cache_after.compile_misses - cache_before.compile_misses;
  report.total.chase_cache_hits =
      cache_after.chase_hits - cache_before.chase_hits;
  report.total.chase_cache_misses =
      cache_after.chase_misses - cache_before.chase_misses;
  report.total.nre_cache_restored_hits =
      cache_after.nre_restored_hits - cache_before.nre_restored_hits;
  report.total.answer_cache_restored_hits =
      cache_after.answer_restored_hits - cache_before.answer_restored_hits;
  report.total.compile_cache_restored_hits =
      cache_after.compile_restored_hits - cache_before.compile_restored_hits;
  report.total.chase_cache_restored_hits =
      cache_after.chase_restored_hits - cache_before.chase_restored_hits;
  return report;
}

std::string BatchReport::Summary() const {
  char head[256];
  std::snprintf(head, sizeof(head),
                "batch: %zu scenario(s) on %zu thread(s) in %.3fms  "
                "[YES=%zu NO=%zu UNKNOWN=%zu error=%zu]\n",
                outcomes.size(), num_threads, wall_seconds * 1e3, yes, no,
                unknown, errors);
  return std::string(head) + total.ToString();
}

}  // namespace gdx
