#include "engine/batch_executor.h"

#include <chrono>

#include "obs/trace.h"

namespace gdx {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

obs::HistogramSnapshot TimingHistogram(
    const std::vector<ScenarioTiming>& timings,
    double ScenarioTiming::*field) {
  obs::HistogramSnapshot h;
  for (const ScenarioTiming& t : timings) {
    h.Record(EngineTelemetry::ToNs(t.*field));
  }
  return h;
}

}  // namespace

BatchExecutor::BatchExecutor(BatchOptions options)
    : options_(options),
      engine_(options.engine),
      pool_(options.num_threads) {}

BatchReport BatchExecutor::SolveAll(std::vector<Scenario>& scenarios) {
  BatchReport report;
  report.num_threads = pool_.num_threads();
  CacheStats cache_before = engine_.cache().stats();
  ThreadPoolStats pool_before = pool_.stats();
  auto start = Clock::now();
  GDX_TRACE_SPAN("batch.solve_all", "batch",
                 static_cast<uint64_t>(scenarios.size()));

  report.outcomes.assign(
      scenarios.size(),
      Result<ExchangeOutcome>(Status::Internal("solve did not run")));
  report.timings.assign(scenarios.size(), ScenarioTiming{});
  for (size_t i = 0; i < scenarios.size(); ++i) {
    // Queue wait = submit until a worker picks the task up; execute = the
    // solve itself (ISSUE 6 satellite). Each task writes only its own
    // slots, so no synchronization beyond pool_.Wait() is needed.
    Clock::time_point submitted = Clock::now();
    pool_.Submit([this, &scenarios, &report, i, submitted] {
      Clock::time_point picked_up = Clock::now();
      {
        GDX_TRACE_SPAN("scenario", "batch", static_cast<uint64_t>(i));
        report.outcomes[i] = engine_.Solve(scenarios[i]);
      }
      report.timings[i].queue_wait_seconds =
          SecondsSince(submitted, picked_up);
      report.timings[i].execute_seconds =
          SecondsSince(picked_up, Clock::now());
    });
  }
  pool_.Wait();

  report.wall_seconds = SecondsSince(start, Clock::now());
  for (const Result<ExchangeOutcome>& r : report.outcomes) {
    if (!r.ok()) {
      ++report.errors;
      continue;
    }
    report.total.Accumulate(r->metrics);
    switch (r->existence.verdict) {
      case ExistenceVerdict::kYes: ++report.yes; break;
      case ExistenceVerdict::kNo: ++report.no; break;
      case ExistenceVerdict::kUnknown: ++report.unknown; break;
    }
  }
  // Report the batch-wide cache deltas. Per-solve counters are exact too
  // (thread-local attribution, ISSUE 2) and their accumulated sum equals
  // these deltas; taking the cache's own numbers keeps the report correct
  // even if an out-of-band client hits the shared cache mid-batch.
  CacheStats cache_after = engine_.cache().stats();
  report.total.nre_cache_hits = cache_after.nre_hits - cache_before.nre_hits;
  report.total.nre_cache_misses =
      cache_after.nre_misses - cache_before.nre_misses;
  report.total.answer_cache_hits =
      cache_after.answer_hits - cache_before.answer_hits;
  report.total.answer_cache_misses =
      cache_after.answer_misses - cache_before.answer_misses;
  report.total.compile_cache_hits =
      cache_after.compile_hits - cache_before.compile_hits;
  report.total.compile_cache_misses =
      cache_after.compile_misses - cache_before.compile_misses;
  report.total.chase_cache_hits =
      cache_after.chase_hits - cache_before.chase_hits;
  report.total.chase_cache_misses =
      cache_after.chase_misses - cache_before.chase_misses;
  report.total.nre_cache_restored_hits =
      cache_after.nre_restored_hits - cache_before.nre_restored_hits;
  report.total.answer_cache_restored_hits =
      cache_after.answer_restored_hits - cache_before.answer_restored_hits;
  report.total.compile_cache_restored_hits =
      cache_after.compile_restored_hits - cache_before.compile_restored_hits;
  report.total.chase_cache_restored_hits =
      cache_after.chase_restored_hits - cache_before.chase_restored_hits;

  // Observability (ISSUE 6): fold this batch into the registry — the
  // per-scenario latency samples into the batch histograms, the batch
  // pool's own counter deltas, and the engine's intra-pool health.
  if (options_.engine.stats != nullptr) {
    obs::StatsRegistry* reg = options_.engine.stats;
    for (const ScenarioTiming& t : report.timings) {
      reg->GetHistogram("batch.queue_wait_ns")
          ->Record(EngineTelemetry::ToNs(t.queue_wait_seconds));
      reg->GetHistogram("batch.execute_ns")
          ->Record(EngineTelemetry::ToNs(t.execute_seconds));
    }
    ThreadPoolStats pool_after = pool_.stats();
    reg->GetCounter("pool.batch.submitted")
        ->Add(pool_after.submitted - pool_before.submitted);
    reg->GetCounter("pool.batch.executed")
        ->Add(pool_after.executed - pool_before.executed);
    reg->GetCounter("pool.batch.steals")
        ->Add(pool_after.steals - pool_before.steals);
    reg->GetGauge("pool.batch.queue_depth")
        ->Set(static_cast<int64_t>(pool_after.queue_depth));
    engine_.PublishPoolTelemetry();
  }
  return report;
}

obs::HistogramSnapshot BatchReport::ExecuteHistogram() const {
  return TimingHistogram(timings, &ScenarioTiming::execute_seconds);
}

obs::HistogramSnapshot BatchReport::QueueWaitHistogram() const {
  return TimingHistogram(timings, &ScenarioTiming::queue_wait_seconds);
}

std::string BatchReport::Summary() const {
  std::string out;
  StrAppendF(&out,
             "batch: %zu scenario(s) on %zu thread(s) in %.3fms  "
             "[YES=%zu NO=%zu UNKNOWN=%zu error=%zu]\n",
             outcomes.size(), num_threads, wall_seconds * 1e3, yes, no,
             unknown, errors);
  if (!timings.empty()) {
    obs::HistogramSnapshot exec = ExecuteHistogram();
    obs::HistogramSnapshot wait = QueueWaitHistogram();
    StrAppendF(&out,
               "  latency: execute p50=%.3fms p99=%.3fms max=%.3fms  "
               "queue-wait p50=%.3fms p99=%.3fms\n",
               exec.ValueAtQuantile(0.50) / 1e6,
               exec.ValueAtQuantile(0.99) / 1e6, exec.max / 1e6,
               wait.ValueAtQuantile(0.50) / 1e6,
               wait.ValueAtQuantile(0.99) / 1e6);
  }
  return out + total.ToString();
}

}  // namespace gdx
