#include "engine/cache.h"

#include <algorithm>

#include "graph/graph_view.h"
#include "obs/trace.h"
#include "graph/isomorphism.h"
#include "graph/nre.h"

namespace gdx {
std::string EngineCache::NreKey(const NrePtr& nre, const Graph& g) {
  // The NRE's raw structure (kinds + symbol ids, no names; see
  // AppendNreRawSignature) appended to the graph's exact raw signature.
  std::string key = g.RawSignature();
  AppendNreRawSignature(*nre, &key);
  return key;
}

namespace {

constexpr uint64_t kNullMarker = ~0ull;  // nulls are renamed freely

uint64_t NullBlindRaw(Value v) {
  return v.is_constant() ? v.raw() : kNullMarker;
}

}  // namespace

std::string EngineCache::AnswerKey(const CnreQuery& query, const Graph& g) {
  std::string key;
  key.reserve(64 + g.num_edges() * 24);
  // Query structure: atoms (term, raw NRE, term) + head columns.
  AppendRawU64(query.atoms().size(), &key);
  for (const CnreAtom& atom : query.atoms()) {
    AppendTermRawSignature(atom.x, &key);
    AppendNreRawSignature(*atom.nre, &key);
    AppendTermRawSignature(atom.y, &key);
  }
  AppendRawU64(query.head().size(), &key);
  for (VarId v : query.head()) AppendRawU64(v, &key);
  // Null-blind graph shape: sorted edge triples and isolated-node markers
  // with every null replaced by one marker. Equal keys are a necessary
  // condition for null-renaming isomorphism; LookupAnswers verifies.
  std::vector<std::string> parts;
  parts.reserve(g.num_edges() + g.num_nodes());
  for (const Edge& e : g.edges()) {
    std::string part;
    AppendRawU64(NullBlindRaw(e.src), &part);
    AppendRawU64(e.label, &part);
    AppendRawU64(NullBlindRaw(e.dst), &part);
    parts.push_back(std::move(part));
  }
  for (Value v : g.nodes()) {
    std::string part(1, 'n');
    AppendRawU64(NullBlindRaw(v), &part);
    parts.push_back(std::move(part));
  }
  std::sort(parts.begin(), parts.end());
  AppendRawU64(g.num_nodes(), &key);
  AppendRawU64(g.num_edges(), &key);
  for (const std::string& part : parts) key += part;
  return key;
}

namespace {

/// The calling thread's per-solve attribution sink (ISSUE 2 satellite).
/// One thread serves one solve at a time — the engine installs the sink
/// around Solve and around every intra-solve worker's run.
thread_local PerSolveCacheStats* g_solve_sink = nullptr;

}  // namespace

ScopedCacheAttribution::ScopedCacheAttribution(PerSolveCacheStats* sink)
    : previous_(g_solve_sink) {
  g_solve_sink = sink;
}

ScopedCacheAttribution::~ScopedCacheAttribution() {
  g_solve_sink = previous_;
}

void EngineCache::TouchNre(NreEntry& entry) {
  nre_lru_.splice(nre_lru_.begin(), nre_lru_, entry.lru);
}

void EngineCache::TouchAnswers(AnswerBucket& bucket) {
  answer_lru_.splice(answer_lru_.begin(), answer_lru_, bucket.lru);
}

void EngineCache::TouchCompiled(CompiledEntry& entry) {
  compiled_lru_.splice(compiled_lru_.begin(), compiled_lru_, entry.lru);
}

void EngineCache::TouchChased(ChasedEntry& entry) {
  chased_lru_.splice(chased_lru_.begin(), chased_lru_, entry.lru);
}

void EngineCache::EvictOverCap() {
  // Called with mutex_ held. LRU keys fall off the back of each list.
  if (options_.max_nre_entries != 0) {
    while (nre_memo_.size() > options_.max_nre_entries) {
      nre_memo_.erase(nre_lru_.back());
      nre_lru_.pop_back();
      ++stats_.nre_evictions;
    }
  }
  if (options_.max_answer_keys != 0) {
    while (answer_memo_.size() > options_.max_answer_keys) {
      auto it = answer_memo_.find(answer_lru_.back());
      answer_entries_ -= it->second.entries.size();
      answer_memo_.erase(it);
      answer_lru_.pop_back();
      ++stats_.answer_evictions;
    }
  }
  if (options_.max_compiled_entries != 0) {
    while (compiled_memo_.size() > options_.max_compiled_entries) {
      compiled_memo_.erase(compiled_lru_.back());
      compiled_lru_.pop_back();
      ++stats_.compile_evictions;
    }
  }
  if (options_.max_chased_entries != 0) {
    while (chased_memo_.size() > options_.max_chased_entries) {
      chased_memo_.erase(chased_lru_.back());
      chased_lru_.pop_back();
      ++stats_.chase_evictions;
    }
  }
}

ChasedScenarioPtr EngineCache::LookupChased(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chased_memo_.find(key);
  if (it == chased_memo_.end()) {
    ++stats_.chase_misses;
    if (g_solve_sink != nullptr) {
      g_solve_sink->chase_misses.fetch_add(1, std::memory_order_relaxed);
    }
    return nullptr;
  }
  ++stats_.chase_hits;
  if (it->second.restored) ++stats_.chase_restored_hits;
  if (g_solve_sink != nullptr) {
    g_solve_sink->chase_hits.fetch_add(1, std::memory_order_relaxed);
    if (it->second.restored) {
      g_solve_sink->chase_restored_hits.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  }
  TouchChased(it->second);
  return it->second.artifact;
}

void EngineCache::StoreChased(const std::string& key,
                              ChasedScenarioPtr artifact) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chased_memo_.find(key);
  if (it != chased_memo_.end()) {
    TouchChased(it->second);
    return;  // racing publishers compiled the same artifact; keep the first
  }
  chased_lru_.push_front(key);
  chased_memo_.emplace(key,
                       ChasedEntry{std::move(artifact), chased_lru_.begin()});
  EvictOverCap();
}

CompiledNrePtr EngineCache::GetOrCompile(const NrePtr& nre) {
  // Each call counts as exactly one hit or one miss, decided by whether
  // the caller was served from the memo — so hits + misses always equals
  // the number of GetOrCompile calls, like the other memos.
  auto count_hit = [this](bool restored) {
    ++stats_.compile_hits;  // mutex_ held
    if (restored) ++stats_.compile_restored_hits;
    if (g_solve_sink != nullptr) {
      g_solve_sink->compile_hits.fetch_add(1, std::memory_order_relaxed);
      if (restored) {
        g_solve_sink->compile_restored_hits.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
  };
  std::string key = NreRawSignature(*nre);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = compiled_memo_.find(key);
    if (it != compiled_memo_.end()) {
      count_hit(it->second.restored);
      TouchCompiled(it->second);
      return it->second.compiled;
    }
  }
  // Compile outside the lock: lowering is pure and may recurse into nested
  // tests; holding the mutex would serialize every worker behind it.
  CompiledNrePtr compiled;
  {
    GDX_TRACE_SPAN("cache.compile_nre", "cache");
    compiled = CompiledNre::Compile(nre);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = compiled_memo_.find(key);
  if (it != compiled_memo_.end()) {
    // A racing worker published first; keep its plan (entries are
    // interchangeable — compilation is deterministic) and count the call
    // as the memo serving it.
    count_hit(it->second.restored);
    TouchCompiled(it->second);
    return it->second.compiled;
  }
  ++stats_.compile_misses;
  if (g_solve_sink != nullptr) {
    g_solve_sink->compile_misses.fetch_add(1, std::memory_order_relaxed);
  }
  compiled_lru_.push_front(key);
  compiled_memo_.emplace(std::move(key),
                         CompiledEntry{compiled, compiled_lru_.begin()});
  EvictOverCap();
  return compiled;
}

bool EngineCache::LookupNre(const std::string& key, BinaryRelation* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nre_memo_.find(key);
  if (it == nre_memo_.end()) {
    ++stats_.nre_misses;
    if (g_solve_sink != nullptr) {
      g_solve_sink->nre_misses.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  ++stats_.nre_hits;
  if (it->second.restored) ++stats_.nre_restored_hits;
  if (g_solve_sink != nullptr) {
    g_solve_sink->nre_hits.fetch_add(1, std::memory_order_relaxed);
    if (it->second.restored) {
      g_solve_sink->nre_restored_hits.fetch_add(1,
                                                std::memory_order_relaxed);
    }
  }
  TouchNre(it->second);
  *out = it->second.relation;
  return true;
}

void EngineCache::StoreNre(std::string key, BinaryRelation relation) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nre_memo_.find(key);
  if (it != nre_memo_.end()) {
    TouchNre(it->second);
    return;  // racing workers computed the same relation; keep the first
  }
  nre_lru_.push_front(key);
  nre_memo_.emplace(std::move(key),
                    NreEntry{std::move(relation), nre_lru_.begin()});
  EvictOverCap();
}

bool EngineCache::LookupAnswers(const std::string& key, const Graph& g,
                                std::vector<std::vector<Value>>* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = answer_memo_.find(key);
  if (it != answer_memo_.end()) {
    for (const AnswerEntry& entry : it->second.entries) {
      if (IsomorphicUpToNulls(g, entry.graph)) {
        ++stats_.answer_hits;
        if (entry.restored) ++stats_.answer_restored_hits;
        if (g_solve_sink != nullptr) {
          g_solve_sink->answer_hits.fetch_add(1, std::memory_order_relaxed);
          if (entry.restored) {
            g_solve_sink->answer_restored_hits.fetch_add(
                1, std::memory_order_relaxed);
          }
        }
        TouchAnswers(it->second);
        *out = entry.answers;
        return true;
      }
    }
  }
  ++stats_.answer_misses;
  if (g_solve_sink != nullptr) {
    g_solve_sink->answer_misses.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

void EngineCache::StoreAnswers(const std::string& key, const Graph& g,
                               std::vector<std::vector<Value>> answers) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = answer_memo_.find(key);
  if (it == answer_memo_.end()) {
    answer_lru_.push_front(key);
    it = answer_memo_.emplace(key, AnswerBucket{{}, answer_lru_.begin()})
             .first;
  } else {
    TouchAnswers(it->second);
  }
  AnswerBucket& bucket = it->second;
  if (bucket.entries.size() >= kMaxAnswerEntriesPerKey) return;
  bucket.entries.push_back(AnswerEntry{g, std::move(answers), false});
  ++answer_entries_;
  EvictOverCap();
}

CacheStats EngineCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

CacheSizes EngineCache::sizes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheSizes out;
  out.nre_entries = nre_memo_.size();
  out.answer_keys = answer_memo_.size();
  out.answer_entries = answer_entries_;
  out.compiled_entries = compiled_memo_.size();
  out.chased_entries = chased_memo_.size();
  return out;
}

void EngineCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = CacheStats{};
}

WarmState EngineCache::ExportWarmState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WarmState state;
  // Each LRU list runs most → least recently used front to back; the
  // snapshot stores least-recent first so a sequential restore rebuilds
  // the exact recency order.
  for (auto it = nre_lru_.rbegin(); it != nre_lru_.rend(); ++it) {
    state.nre.emplace_back(*it, nre_memo_.at(*it).relation);
  }
  for (auto it = answer_lru_.rbegin(); it != answer_lru_.rend(); ++it) {
    const AnswerBucket& bucket = answer_memo_.at(*it);
    std::vector<WarmState::AnswerEntry> entries;
    entries.reserve(bucket.entries.size());
    for (const AnswerEntry& entry : bucket.entries) {
      entries.push_back(WarmState::AnswerEntry{entry.graph, entry.answers});
    }
    state.answers.emplace_back(*it, std::move(entries));
  }
  for (auto it = compiled_lru_.rbegin(); it != compiled_lru_.rend(); ++it) {
    state.compiled.emplace_back(*it, compiled_memo_.at(*it).compiled);
  }
  for (auto it = chased_lru_.rbegin(); it != chased_lru_.rend(); ++it) {
    state.chased.emplace_back(*it, chased_memo_.at(*it).artifact);
  }
  return state;
}

SnapshotRestoreStats EngineCache::ImportWarmState(WarmState state) {
  SnapshotRestoreStats restored;
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t evictions_before = stats_.evictions();
  // Restored entries merge *under* live ones: a snapshot is by
  // definition older than anything this process computed itself, so
  // every restored key lands at the cold end of its LRU list — a
  // mid-life WarmStart can never evict the live working set. Entries
  // arrive least- to most-recently used; appending them in reverse
  // (most-recent first) reproduces the snapshot's internal recency
  // order below the live entries, and leaves the front-to-back order of
  // a cold-started cache identical to the saving cache's. Keys the
  // cache already holds win over the snapshot.
  for (auto it = state.nre.rbegin(); it != state.nre.rend(); ++it) {
    auto& [key, relation] = *it;
    if (nre_memo_.find(key) != nre_memo_.end()) continue;
    nre_lru_.push_back(key);
    nre_memo_.emplace(std::move(key),
                      NreEntry{std::move(relation),
                               std::prev(nre_lru_.end()), true});
    ++restored.nre_entries;
  }
  for (auto it = state.answers.rbegin(); it != state.answers.rend(); ++it) {
    auto& [key, entries] = *it;
    if (answer_memo_.find(key) != answer_memo_.end()) continue;
    answer_lru_.push_back(key);
    AnswerBucket bucket;
    bucket.lru = std::prev(answer_lru_.end());
    for (WarmState::AnswerEntry& entry : entries) {
      if (bucket.entries.size() >= kMaxAnswerEntriesPerKey) break;
      bucket.entries.push_back(AnswerEntry{std::move(entry.graph),
                                           std::move(entry.answers), true});
    }
    restored.answer_entries += bucket.entries.size();
    answer_entries_ += bucket.entries.size();
    answer_memo_.emplace(std::move(key), std::move(bucket));
    ++restored.answer_keys;
  }
  for (auto it = state.compiled.rbegin(); it != state.compiled.rend();
       ++it) {
    auto& [key, automaton] = *it;
    if (compiled_memo_.find(key) != compiled_memo_.end()) continue;
    compiled_lru_.push_back(key);
    compiled_memo_.emplace(
        std::move(key),
        CompiledEntry{std::move(automaton), std::prev(compiled_lru_.end()),
                      true});
    ++restored.compiled_entries;
  }
  for (auto it = state.chased.rbegin(); it != state.chased.rend(); ++it) {
    auto& [key, artifact] = *it;
    if (chased_memo_.find(key) != chased_memo_.end()) continue;
    chased_lru_.push_back(key);
    chased_memo_.emplace(
        std::move(key),
        ChasedEntry{std::move(artifact), std::prev(chased_lru_.end()),
                    true});
    ++restored.chased_entries;
  }
  EvictOverCap();
  restored.evicted_on_load =
      static_cast<size_t>(stats_.evictions() - evictions_before);
  return restored;
}

Status EngineCache::SaveSnapshot(const std::string& path) const {
  GDX_TRACE_SPAN("snapshot.save", "persist");
  return WriteSnapshotFile(path, ExportWarmState());
}

Status EngineCache::LoadSnapshot(const std::string& path,
                                 SnapshotRestoreStats* restored) {
  GDX_TRACE_SPAN("snapshot.load", "persist");
  Result<WarmState> state = ReadSnapshotFile(path);
  if (!state.ok()) return state.status();
  SnapshotRestoreStats stats = ImportWarmState(std::move(state).value());
  if (restored != nullptr) *restored = stats;
  return Status::Ok();
}

void EngineCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  nre_memo_.clear();
  nre_lru_.clear();
  answer_memo_.clear();
  answer_lru_.clear();
  answer_entries_ = 0;
  compiled_memo_.clear();
  compiled_lru_.clear();
  chased_memo_.clear();
  chased_lru_.clear();
  stats_ = CacheStats{};
}

BinaryRelation CachingNreEvaluator::Eval(const NrePtr& nre,
                                         const Graph& g) const {
  GDX_TRACE_SPAN("cache.nre_eval", "cache");
  std::string key = EngineCache::NreKey(nre, g);
  BinaryRelation relation;
  if (cache_->LookupNre(key, &relation)) return relation;
  relation = base_->Eval(nre, g);
  cache_->StoreNre(std::move(key), relation);
  return relation;
}

BinaryRelation CachingNreEvaluator::EvalOnView(const NrePtr& nre,
                                               const GraphView& view) const {
  GDX_TRACE_SPAN("cache.nre_eval", "cache");
  std::string key = EngineCache::NreKey(nre, view.graph());
  BinaryRelation relation;
  if (cache_->LookupNre(key, &relation)) return relation;
  relation = base_->EvalOnView(nre, view);
  cache_->StoreNre(std::move(key), relation);
  return relation;
}

BinaryRelation CachingNreEvaluator::EvalDeferred(
    const NrePtr& nre, const Graph& g,
    const std::function<const GraphView&()>& view) const {
  std::string key = EngineCache::NreKey(nre, g);
  BinaryRelation relation;
  if (cache_->LookupNre(key, &relation)) return relation;
  relation = base_->EvalDeferred(nre, g, view);
  cache_->StoreNre(std::move(key), relation);
  return relation;
}

}  // namespace gdx
