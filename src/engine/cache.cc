#include "engine/cache.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "graph/graph_view.h"
#include "obs/trace.h"
#include "graph/isomorphism.h"
#include "graph/nre.h"
#include "persist/wire.h"

namespace gdx {
std::string EngineCache::NreKey(const NrePtr& nre, const Graph& g) {
  // The NRE's raw structure (kinds + symbol ids, no names; see
  // AppendNreRawSignature) appended to the graph's exact raw signature.
  std::string key = g.RawSignature();
  AppendNreRawSignature(*nre, &key);
  return key;
}

namespace {

constexpr uint64_t kNullMarker = ~0ull;  // nulls are renamed freely

uint64_t NullBlindRaw(Value v) {
  return v.is_constant() ? v.raw() : kNullMarker;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Shard i's slice of a global cap: cap/S entries plus one of the cap%S
/// remainder slots, so the shard quotas sum exactly to the cap and the
/// global entry count can never exceed it. A global cap of 0 (unbounded)
/// maps to the SIZE_MAX sentinel — a literal per-shard quota of 0 must
/// mean "evict immediately" (pathological cap < num_shards), not
/// "unbounded", or tiny caps would silently stop bounding anything.
size_t ShardQuota(size_t cap, size_t shard, size_t num_shards) {
  if (cap == 0) return std::numeric_limits<size_t>::max();
  return cap / num_shards + (shard < cap % num_shards ? 1 : 0);
}

}  // namespace

EngineCache::EngineCache(EngineCacheOptions options) : options_(options) {
  size_t n = options_.num_shards == 0 ? 1 : options_.num_shards;
  n = std::min<size_t>(RoundUpPow2(n), 256);
  options_.num_shards = n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    Shard& shard = *shards_.back();
    shard.max_nre_entries = ShardQuota(options_.max_nre_entries, i, n);
    shard.max_answer_keys = ShardQuota(options_.max_answer_keys, i, n);
    shard.max_compiled_entries =
        ShardQuota(options_.max_compiled_entries, i, n);
    shard.max_chased_entries = ShardQuota(options_.max_chased_entries, i, n);
  }
}

EngineCache::Shard& EngineCache::ShardFor(const std::string& key) const {
  // FNV-1a over the full key (keys are content signatures, already well
  // mixed); shard count is a power of two, so masking is exact.
  return *shards_[Fnv1a64(key) & (shards_.size() - 1)];
}

std::string EngineCache::AnswerKey(const CnreQuery& query, const Graph& g) {
  std::string key;
  key.reserve(64 + g.num_edges() * 24);
  // Query structure: atoms (term, raw NRE, term) + head columns.
  AppendRawU64(query.atoms().size(), &key);
  for (const CnreAtom& atom : query.atoms()) {
    AppendTermRawSignature(atom.x, &key);
    AppendNreRawSignature(*atom.nre, &key);
    AppendTermRawSignature(atom.y, &key);
  }
  AppendRawU64(query.head().size(), &key);
  for (VarId v : query.head()) AppendRawU64(v, &key);
  // Null-blind graph shape: sorted edge triples and isolated-node markers
  // with every null replaced by one marker. Equal keys are a necessary
  // condition for null-renaming isomorphism; LookupAnswers verifies.
  std::vector<std::string> parts;
  parts.reserve(g.num_edges() + g.num_nodes());
  for (const Edge& e : g.edges()) {
    std::string part;
    AppendRawU64(NullBlindRaw(e.src), &part);
    AppendRawU64(e.label, &part);
    AppendRawU64(NullBlindRaw(e.dst), &part);
    parts.push_back(std::move(part));
  }
  for (Value v : g.nodes()) {
    std::string part(1, 'n');
    AppendRawU64(NullBlindRaw(v), &part);
    parts.push_back(std::move(part));
  }
  std::sort(parts.begin(), parts.end());
  AppendRawU64(g.num_nodes(), &key);
  AppendRawU64(g.num_edges(), &key);
  for (const std::string& part : parts) key += part;
  return key;
}

namespace {

/// The calling thread's per-solve attribution sink (ISSUE 2 satellite).
/// One thread serves one solve at a time — the engine installs the sink
/// around Solve and around every intra-solve worker's run.
thread_local PerSolveCacheStats* g_solve_sink = nullptr;

}  // namespace

ScopedCacheAttribution::ScopedCacheAttribution(PerSolveCacheStats* sink)
    : previous_(g_solve_sink) {
  g_solve_sink = sink;
}

ScopedCacheAttribution::~ScopedCacheAttribution() {
  g_solve_sink = previous_;
}

void EngineCache::TouchNre(Shard& shard, NreEntry& entry) {
  shard.nre_lru.splice(shard.nre_lru.begin(), shard.nre_lru, entry.lru);
}

void EngineCache::TouchAnswers(Shard& shard, AnswerBucket& bucket) {
  shard.answer_lru.splice(shard.answer_lru.begin(), shard.answer_lru,
                          bucket.lru);
}

void EngineCache::TouchCompiled(Shard& shard, CompiledEntry& entry) {
  shard.compiled_lru.splice(shard.compiled_lru.begin(), shard.compiled_lru,
                            entry.lru);
}

void EngineCache::TouchChased(Shard& shard, ChasedEntry& entry) {
  shard.chased_lru.splice(shard.chased_lru.begin(), shard.chased_lru,
                          entry.lru);
}

void EngineCache::EvictOverCap(Shard& shard) {
  // Called with the shard's mutex held. LRU keys fall off the back of
  // each per-shard list. Quotas use SIZE_MAX for unbounded, so a plain
  // size comparison covers every case (including a literal quota of 0).
  while (shard.nre_memo.size() > shard.max_nre_entries) {
    shard.nre_memo.erase(shard.nre_lru.back());
    shard.nre_lru.pop_back();
    ++shard.stats.nre_evictions;
  }
  while (shard.answer_memo.size() > shard.max_answer_keys) {
    auto it = shard.answer_memo.find(shard.answer_lru.back());
    shard.answer_entries -= it->second.entries.size();
    shard.answer_memo.erase(it);
    shard.answer_lru.pop_back();
    ++shard.stats.answer_evictions;
  }
  while (shard.compiled_memo.size() > shard.max_compiled_entries) {
    shard.compiled_memo.erase(shard.compiled_lru.back());
    shard.compiled_lru.pop_back();
    ++shard.stats.compile_evictions;
  }
  while (shard.chased_memo.size() > shard.max_chased_entries) {
    shard.chased_memo.erase(shard.chased_lru.back());
    shard.chased_lru.pop_back();
    ++shard.stats.chase_evictions;
  }
}

ChasedScenarioPtr EngineCache::LookupChased(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.chased_memo.find(key);
  if (it == shard.chased_memo.end()) {
    ++shard.stats.chase_misses;
    if (g_solve_sink != nullptr) {
      g_solve_sink->chase_misses.fetch_add(1, std::memory_order_relaxed);
    }
    return nullptr;
  }
  ++shard.stats.chase_hits;
  if (it->second.restored) ++shard.stats.chase_restored_hits;
  if (g_solve_sink != nullptr) {
    g_solve_sink->chase_hits.fetch_add(1, std::memory_order_relaxed);
    if (it->second.restored) {
      g_solve_sink->chase_restored_hits.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  }
  TouchChased(shard, it->second);
  return it->second.artifact;
}

void EngineCache::StoreChased(const std::string& key,
                              ChasedScenarioPtr artifact) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.chased_memo.find(key);
  if (it != shard.chased_memo.end()) {
    TouchChased(shard, it->second);
    return;  // racing publishers compiled the same artifact; keep the first
  }
  shard.chased_lru.push_front(key);
  shard.chased_memo.emplace(
      key, ChasedEntry{std::move(artifact), shard.chased_lru.begin()});
  EvictOverCap(shard);
}

CompiledNrePtr EngineCache::GetOrCompile(const NrePtr& nre) {
  // Each call counts as exactly one hit or one miss, decided by whether
  // the caller was served from the memo — so hits + misses always equals
  // the number of GetOrCompile calls, like the other memos.
  auto count_hit = [](Shard& shard, bool restored) {
    ++shard.stats.compile_hits;  // shard mutex held
    if (restored) ++shard.stats.compile_restored_hits;
    if (g_solve_sink != nullptr) {
      g_solve_sink->compile_hits.fetch_add(1, std::memory_order_relaxed);
      if (restored) {
        g_solve_sink->compile_restored_hits.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
  };
  std::string key = NreRawSignature(*nre);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.compiled_memo.find(key);
    if (it != shard.compiled_memo.end()) {
      count_hit(shard, it->second.restored);
      TouchCompiled(shard, it->second);
      return it->second.compiled;
    }
  }
  // Compile outside the lock: lowering is pure and may recurse into nested
  // tests; holding the mutex would serialize every worker behind it.
  CompiledNrePtr compiled;
  {
    GDX_TRACE_SPAN("cache.compile_nre", "cache");
    compiled = CompiledNre::Compile(nre);
  }
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.compiled_memo.find(key);
  if (it != shard.compiled_memo.end()) {
    // A racing worker published first; keep its plan (entries are
    // interchangeable — compilation is deterministic) and count the call
    // as the memo serving it.
    count_hit(shard, it->second.restored);
    TouchCompiled(shard, it->second);
    return it->second.compiled;
  }
  ++shard.stats.compile_misses;
  if (g_solve_sink != nullptr) {
    g_solve_sink->compile_misses.fetch_add(1, std::memory_order_relaxed);
  }
  shard.compiled_lru.push_front(key);
  shard.compiled_memo.emplace(
      std::move(key), CompiledEntry{compiled, shard.compiled_lru.begin()});
  EvictOverCap(shard);
  return compiled;
}

bool EngineCache::LookupNre(const std::string& key, BinaryRelation* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.nre_memo.find(key);
  if (it == shard.nre_memo.end()) {
    ++shard.stats.nre_misses;
    if (g_solve_sink != nullptr) {
      g_solve_sink->nre_misses.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  ++shard.stats.nre_hits;
  if (it->second.restored) ++shard.stats.nre_restored_hits;
  if (g_solve_sink != nullptr) {
    g_solve_sink->nre_hits.fetch_add(1, std::memory_order_relaxed);
    if (it->second.restored) {
      g_solve_sink->nre_restored_hits.fetch_add(1,
                                                std::memory_order_relaxed);
    }
  }
  TouchNre(shard, it->second);
  *out = it->second.relation;
  return true;
}

void EngineCache::StoreNre(std::string key, BinaryRelation relation) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.nre_memo.find(key);
  if (it != shard.nre_memo.end()) {
    TouchNre(shard, it->second);
    return;  // racing workers computed the same relation; keep the first
  }
  shard.nre_lru.push_front(key);
  shard.nre_memo.emplace(std::move(key),
                         NreEntry{std::move(relation),
                                  shard.nre_lru.begin()});
  EvictOverCap(shard);
}

bool EngineCache::LookupAnswers(const std::string& key, const Graph& g,
                                std::vector<std::vector<Value>>* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.answer_memo.find(key);
  if (it != shard.answer_memo.end()) {
    for (const AnswerEntry& entry : it->second.entries) {
      if (IsomorphicUpToNulls(g, entry.graph)) {
        ++shard.stats.answer_hits;
        if (entry.restored) ++shard.stats.answer_restored_hits;
        if (g_solve_sink != nullptr) {
          g_solve_sink->answer_hits.fetch_add(1, std::memory_order_relaxed);
          if (entry.restored) {
            g_solve_sink->answer_restored_hits.fetch_add(
                1, std::memory_order_relaxed);
          }
        }
        TouchAnswers(shard, it->second);
        *out = entry.answers;
        return true;
      }
    }
  }
  ++shard.stats.answer_misses;
  if (g_solve_sink != nullptr) {
    g_solve_sink->answer_misses.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

void EngineCache::StoreAnswers(const std::string& key, const Graph& g,
                               std::vector<std::vector<Value>> answers) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.answer_memo.find(key);
  if (it == shard.answer_memo.end()) {
    shard.answer_lru.push_front(key);
    it = shard.answer_memo
             .emplace(key, AnswerBucket{{}, shard.answer_lru.begin()})
             .first;
  } else {
    TouchAnswers(shard, it->second);
  }
  AnswerBucket& bucket = it->second;
  if (bucket.entries.size() >= kMaxAnswerEntriesPerKey) return;
  bucket.entries.push_back(AnswerEntry{g, std::move(answers), false});
  ++shard.answer_entries;
  EvictOverCap(shard);
}

CacheStats EngineCache::stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.Accumulate(shard->stats);
  }
  return out;
}

CacheSizes EngineCache::sizes() const {
  CacheSizes out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.nre_entries += shard->nre_memo.size();
    out.answer_keys += shard->answer_memo.size();
    out.answer_entries += shard->answer_entries;
    out.compiled_entries += shard->compiled_memo.size();
    out.chased_entries += shard->chased_memo.size();
  }
  return out;
}

void EngineCache::ResetStats() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->stats = CacheStats{};
  }
}

WarmState EngineCache::ExportWarmState() const {
  WarmState state;
  // Shard-major export: shard 0..S-1, each least- → most-recently used
  // (every per-shard LRU list runs most → least recent front to back).
  // ImportWarmState routes keys back to their shard by the same hash, so
  // a sequential restore rebuilds the exact per-shard recency order and
  // save → load → save is byte-stable.
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.nre_lru.rbegin(); it != shard.nre_lru.rend();
         ++it) {
      state.nre.emplace_back(*it, shard.nre_memo.at(*it).relation);
    }
    for (auto it = shard.answer_lru.rbegin(); it != shard.answer_lru.rend();
         ++it) {
      const AnswerBucket& bucket = shard.answer_memo.at(*it);
      std::vector<WarmState::AnswerEntry> entries;
      entries.reserve(bucket.entries.size());
      for (const AnswerEntry& entry : bucket.entries) {
        entries.push_back(
            WarmState::AnswerEntry{entry.graph, entry.answers});
      }
      state.answers.emplace_back(*it, std::move(entries));
    }
    for (auto it = shard.compiled_lru.rbegin();
         it != shard.compiled_lru.rend(); ++it) {
      state.compiled.emplace_back(*it, shard.compiled_memo.at(*it).compiled);
    }
    for (auto it = shard.chased_lru.rbegin(); it != shard.chased_lru.rend();
         ++it) {
      state.chased.emplace_back(*it, shard.chased_memo.at(*it).artifact);
    }
  }
  return state;
}

SnapshotRestoreStats EngineCache::ImportWarmState(WarmState state) {
  SnapshotRestoreStats restored;
  // Restored entries merge *under* live ones: a snapshot is by
  // definition older than anything this process computed itself, so
  // every restored key lands at the cold end of its shard's LRU list —
  // a mid-life WarmStart can never evict the live working set. Entries
  // arrive least- to most-recently used per shard; appending them in
  // reverse (most-recent first) reproduces the snapshot's internal
  // recency order below the live entries. Keys the cache already holds
  // win over the snapshot. Each entry locks only its own shard, so a
  // load can proceed while other shards keep serving.
  uint64_t evictions_before = 0;
  uint64_t evictions_after = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    evictions_before += shard->stats.evictions();
  }
  for (auto it = state.nre.rbegin(); it != state.nre.rend(); ++it) {
    auto& [key, relation] = *it;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.nre_memo.find(key) != shard.nre_memo.end()) continue;
    shard.nre_lru.push_back(key);
    shard.nre_memo.emplace(std::move(key),
                           NreEntry{std::move(relation),
                                    std::prev(shard.nre_lru.end()), true});
    ++restored.nre_entries;
  }
  for (auto it = state.answers.rbegin(); it != state.answers.rend(); ++it) {
    auto& [key, entries] = *it;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.answer_memo.find(key) != shard.answer_memo.end()) continue;
    shard.answer_lru.push_back(key);
    AnswerBucket bucket;
    bucket.lru = std::prev(shard.answer_lru.end());
    for (WarmState::AnswerEntry& entry : entries) {
      if (bucket.entries.size() >= kMaxAnswerEntriesPerKey) break;
      bucket.entries.push_back(AnswerEntry{std::move(entry.graph),
                                           std::move(entry.answers), true});
    }
    restored.answer_entries += bucket.entries.size();
    shard.answer_entries += bucket.entries.size();
    shard.answer_memo.emplace(std::move(key), std::move(bucket));
    ++restored.answer_keys;
  }
  for (auto it = state.compiled.rbegin(); it != state.compiled.rend();
       ++it) {
    auto& [key, automaton] = *it;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.compiled_memo.find(key) != shard.compiled_memo.end()) {
      continue;
    }
    shard.compiled_lru.push_back(key);
    shard.compiled_memo.emplace(
        std::move(key),
        CompiledEntry{std::move(automaton),
                      std::prev(shard.compiled_lru.end()), true});
    ++restored.compiled_entries;
  }
  for (auto it = state.chased.rbegin(); it != state.chased.rend(); ++it) {
    auto& [key, artifact] = *it;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.chased_memo.find(key) != shard.chased_memo.end()) continue;
    shard.chased_lru.push_back(key);
    shard.chased_memo.emplace(
        std::move(key),
        ChasedEntry{std::move(artifact), std::prev(shard.chased_lru.end()),
                    true});
    ++restored.chased_entries;
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    EvictOverCap(*shard);
    evictions_after += shard->stats.evictions();
  }
  restored.evicted_on_load =
      static_cast<size_t>(evictions_after - evictions_before);
  return restored;
}

Status EngineCache::SaveSnapshot(const std::string& path) const {
  GDX_TRACE_SPAN("snapshot.save", "persist");
  return WriteSnapshotFile(path, ExportWarmState());
}

Status EngineCache::LoadSnapshot(const std::string& path,
                                 SnapshotRestoreStats* restored) {
  GDX_TRACE_SPAN("snapshot.load", "persist");
  Result<WarmState> state = ReadSnapshotFile(path);
  if (!state.ok()) return state.status();
  SnapshotRestoreStats stats = ImportWarmState(std::move(state).value());
  if (restored != nullptr) *restored = stats;
  return Status::Ok();
}

void EngineCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->nre_memo.clear();
    shard->nre_lru.clear();
    shard->answer_memo.clear();
    shard->answer_lru.clear();
    shard->answer_entries = 0;
    shard->compiled_memo.clear();
    shard->compiled_lru.clear();
    shard->chased_memo.clear();
    shard->chased_lru.clear();
    shard->stats = CacheStats{};
  }
}

BinaryRelation CachingNreEvaluator::Eval(const NrePtr& nre,
                                         const Graph& g) const {
  GDX_TRACE_SPAN("cache.nre_eval", "cache");
  std::string key = EngineCache::NreKey(nre, g);
  BinaryRelation relation;
  if (cache_->LookupNre(key, &relation)) return relation;
  relation = base_->Eval(nre, g);
  cache_->StoreNre(std::move(key), relation);
  return relation;
}

BinaryRelation CachingNreEvaluator::EvalOnView(const NrePtr& nre,
                                               const GraphView& view) const {
  GDX_TRACE_SPAN("cache.nre_eval", "cache");
  std::string key = EngineCache::NreKey(nre, view.graph());
  BinaryRelation relation;
  if (cache_->LookupNre(key, &relation)) return relation;
  relation = base_->EvalOnView(nre, view);
  cache_->StoreNre(std::move(key), relation);
  return relation;
}

BinaryRelation CachingNreEvaluator::EvalDeferred(
    const NrePtr& nre, const Graph& g,
    const std::function<const GraphView&()>& view) const {
  std::string key = EngineCache::NreKey(nre, g);
  BinaryRelation relation;
  if (cache_->LookupNre(key, &relation)) return relation;
  relation = base_->EvalDeferred(nre, g, view);
  cache_->StoreNre(std::move(key), relation);
  return relation;
}

}  // namespace gdx
