#ifndef GDX_ENGINE_METRICS_H_
#define GDX_ENGINE_METRICS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/strings.h"

namespace gdx {

/// Per-solve (and, accumulated, per-batch) engine metrics: wall time per
/// pipeline stage, chase work counters, and cache effectiveness. Benches
/// and the CLI `batch` subcommand report these; the BatchExecutor sums
/// them across scenarios.
struct Metrics {
  // Per-stage wall time, seconds.
  double chase_seconds = 0;      // s-t pattern chase + adapted egd chase
  double existence_seconds = 0;  // existence decision (search / SAT)
  double certain_seconds = 0;    // solution enumeration + intersection
  double minimize_seconds = 0;   // greedy core minimization
  double verify_seconds = 0;     // defensive final solution check
  double total_seconds = 0;      // whole Solve call

  // Chase / search work.
  size_t chase_triggers = 0;   // s-t tgd body matches fired
  size_t chase_merges = 0;     // adapted egd chase node merges
  size_t candidates_tried = 0; // instantiations attempted by the search
  size_t solutions_enumerated = 0;

  // Delta chase work (ISSUE 9): rounds that joined rules, (rule, round)
  // skip events the reliance analysis saved, and reliance-graph strata.
  // Zero under ChasePolicy::kNaive and on chased-memo hits (the chase did
  // not run), like the chase counters above.
  size_t chase_delta_rounds = 0;
  size_t chase_skipped_rules = 0;
  size_t chase_strata = 0;

  // Cache effectiveness. Exact per-solve attribution (ISSUE 2 satellite):
  // every thread touching the cache on a solve's behalf — the caller and
  // all intra-solve workers — increments that solve's thread-local-routed
  // PerSolveCacheStats sink, so concurrent sibling solves never bleed into
  // each other's numbers and per-solve sums equal batch-wide deltas.
  uint64_t nre_cache_hits = 0;
  uint64_t nre_cache_misses = 0;
  uint64_t answer_cache_hits = 0;
  uint64_t answer_cache_misses = 0;
  uint64_t compile_cache_hits = 0;
  uint64_t compile_cache_misses = 0;
  // Chased-scenario memo traffic (ISSUE 5): a chase hit means the whole
  // s-t + egd chase stage was served from a compiled artifact — on such a
  // solve chase_triggers/chase_merges stay 0 (the chase did not run).
  uint64_t chase_cache_hits = 0;
  uint64_t chase_cache_misses = 0;

  // Warm-start effectiveness (ISSUE 4): the subset of the hits above that
  // were served from entries a snapshot restored (EngineCache::
  // LoadSnapshot) rather than computed in this process. A fully warm
  // re-run of a previously saved workload shows restored hits > 0 and
  // zero NRE/compile/chase misses (and zero chase triggers — ISSUE 5).
  uint64_t nre_cache_restored_hits = 0;
  uint64_t answer_cache_restored_hits = 0;
  uint64_t compile_cache_restored_hits = 0;
  uint64_t chase_cache_restored_hits = 0;

  size_t scenarios = 0;  // solves accumulated into this struct

  void Accumulate(const Metrics& other) {
    chase_seconds += other.chase_seconds;
    existence_seconds += other.existence_seconds;
    certain_seconds += other.certain_seconds;
    minimize_seconds += other.minimize_seconds;
    verify_seconds += other.verify_seconds;
    total_seconds += other.total_seconds;
    chase_triggers += other.chase_triggers;
    chase_merges += other.chase_merges;
    candidates_tried += other.candidates_tried;
    solutions_enumerated += other.solutions_enumerated;
    chase_delta_rounds += other.chase_delta_rounds;
    chase_skipped_rules += other.chase_skipped_rules;
    chase_strata += other.chase_strata;
    nre_cache_hits += other.nre_cache_hits;
    nre_cache_misses += other.nre_cache_misses;
    answer_cache_hits += other.answer_cache_hits;
    answer_cache_misses += other.answer_cache_misses;
    compile_cache_hits += other.compile_cache_hits;
    compile_cache_misses += other.compile_cache_misses;
    chase_cache_hits += other.chase_cache_hits;
    chase_cache_misses += other.chase_cache_misses;
    nre_cache_restored_hits += other.nre_cache_restored_hits;
    answer_cache_restored_hits += other.answer_cache_restored_hits;
    compile_cache_restored_hits += other.compile_cache_restored_hits;
    chase_cache_restored_hits += other.chase_cache_restored_hits;
    scenarios += other.scenarios;
  }

  uint64_t cache_hits() const {
    return nre_cache_hits + answer_cache_hits + compile_cache_hits +
           chase_cache_hits;
  }
  uint64_t cache_misses() const {
    return nre_cache_misses + answer_cache_misses + compile_cache_misses +
           chase_cache_misses;
  }
  uint64_t cache_restored_hits() const {
    return nre_cache_restored_hits + answer_cache_restored_hits +
           compile_cache_restored_hits + chase_cache_restored_hits;
  }

  /// Multi-line human-readable summary for CLI / bench output. Built
  /// incrementally (ISSUE 6 satellite): the old fixed 1024-byte snprintf
  /// buffer was one added counter away from silently clipping output CI
  /// greps for — StrAppendF grows the string to whatever the values need.
  std::string ToString() const {
    std::string out;
    out.reserve(512);
    StrAppendF(&out, "metrics {%zu solve(s)}\n", scenarios);
    StrAppendF(&out,
               "  wall: total=%.3fms chase=%.3fms existence=%.3fms "
               "certain=%.3fms minimize=%.3fms verify=%.3fms\n",
               total_seconds * 1e3, chase_seconds * 1e3,
               existence_seconds * 1e3, certain_seconds * 1e3,
               minimize_seconds * 1e3, verify_seconds * 1e3);
    StrAppendF(&out,
               "  work: triggers=%zu merges=%zu candidates=%zu "
               "solutions=%zu\n",
               chase_triggers, chase_merges, candidates_tried,
               solutions_enumerated);
    StrAppendF(&out,
               "  delta-chase: rounds=%zu skipped-rules=%zu strata=%zu\n",
               chase_delta_rounds, chase_skipped_rules, chase_strata);
    StrAppendF(&out,
               "  cache: nre %llu hit / %llu miss, answers %llu hit / "
               "%llu miss, compile %llu hit / %llu miss, chase %llu hit / "
               "%llu miss\n",
               static_cast<unsigned long long>(nre_cache_hits),
               static_cast<unsigned long long>(nre_cache_misses),
               static_cast<unsigned long long>(answer_cache_hits),
               static_cast<unsigned long long>(answer_cache_misses),
               static_cast<unsigned long long>(compile_cache_hits),
               static_cast<unsigned long long>(compile_cache_misses),
               static_cast<unsigned long long>(chase_cache_hits),
               static_cast<unsigned long long>(chase_cache_misses));
    StrAppendF(&out,
               "  warm: restored-entry hits nre=%llu answers=%llu "
               "compile=%llu chase=%llu\n",
               static_cast<unsigned long long>(nre_cache_restored_hits),
               static_cast<unsigned long long>(answer_cache_restored_hits),
               static_cast<unsigned long long>(compile_cache_restored_hits),
               static_cast<unsigned long long>(chase_cache_restored_hits));
    return out;
  }
};

/// Scoped wall-clock accumulator: adds the elapsed seconds to `*slot` on
/// destruction. Usage:  { StageTimer t(&metrics.chase_seconds); ... }
class StageTimer {
 public:
  explicit StageTimer(double* slot)
      : slot_(slot), start_(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    *slot_ += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  double* slot_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gdx

#endif  // GDX_ENGINE_METRICS_H_
