#ifndef GDX_ENGINE_CACHE_H_
#define GDX_ENGINE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/cnre.h"
#include "graph/nre_compile.h"
#include "graph/nre_eval.h"

namespace gdx {

/// Counter snapshot of the engine cache (copyable; see EngineCache::stats).
struct CacheStats {
  uint64_t nre_hits = 0;
  uint64_t nre_misses = 0;
  uint64_t answer_hits = 0;
  uint64_t answer_misses = 0;
  uint64_t compile_hits = 0;
  uint64_t compile_misses = 0;
  uint64_t nre_evictions = 0;
  uint64_t answer_evictions = 0;
  uint64_t compile_evictions = 0;

  uint64_t hits() const { return nre_hits + answer_hits + compile_hits; }
  uint64_t misses() const {
    return nre_misses + answer_misses + compile_misses;
  }
  uint64_t evictions() const {
    return nre_evictions + answer_evictions + compile_evictions;
  }
};

/// Live entry counts of the cache (see EngineCache::sizes).
struct CacheSizes {
  size_t nre_entries = 0;
  size_t answer_keys = 0;
  size_t answer_entries = 0;
  size_t compiled_entries = 0;
};

/// Size caps of the engine cache (ISSUE 2: long-running services must not
/// grow without bound). Eviction is LRU at entry granularity for the NRE
/// and compiled-automaton memos and at key granularity for the answer
/// memo. 0 = unbounded.
struct EngineCacheOptions {
  size_t max_nre_entries = 1u << 16;
  size_t max_answer_keys = 1u << 13;
  size_t max_compiled_entries = 1u << 12;
};

/// Per-solve cache traffic sink (ISSUE 2 satellite): one instance lives on
/// a Solve's stack; every thread working for that solve — the caller and
/// the intra-solve workers — installs it via ScopedCacheAttribution, so
/// concurrent sibling solves no longer bleed into each other's per-solve
/// counters. Atomic because several workers of one solve increment it at
/// once. Summed per-solve snapshots equal the batch-wide stats() delta
/// exactly.
struct PerSolveCacheStats {
  std::atomic<uint64_t> nre_hits{0};
  std::atomic<uint64_t> nre_misses{0};
  std::atomic<uint64_t> answer_hits{0};
  std::atomic<uint64_t> answer_misses{0};
  std::atomic<uint64_t> compile_hits{0};
  std::atomic<uint64_t> compile_misses{0};

  CacheStats Snapshot() const {
    CacheStats out;
    out.nre_hits = nre_hits.load(std::memory_order_relaxed);
    out.nre_misses = nre_misses.load(std::memory_order_relaxed);
    out.answer_hits = answer_hits.load(std::memory_order_relaxed);
    out.answer_misses = answer_misses.load(std::memory_order_relaxed);
    out.compile_hits = compile_hits.load(std::memory_order_relaxed);
    out.compile_misses = compile_misses.load(std::memory_order_relaxed);
    return out;
  }
};

/// RAII installer of the calling thread's per-solve sink (thread-local;
/// restores the previous sink on destruction, so nested scopes and pool
/// workers serving different solves in sequence attribute correctly).
class ScopedCacheAttribution {
 public:
  explicit ScopedCacheAttribution(PerSolveCacheStats* sink);
  ~ScopedCacheAttribution();
  ScopedCacheAttribution(const ScopedCacheAttribution&) = delete;
  ScopedCacheAttribution& operator=(const ScopedCacheAttribution&) = delete;

 private:
  PerSolveCacheStats* previous_;
};

/// Thread-safe engine-level memo tables (PR 1 tentpole part 3; LRU-capped
/// and per-solve attributed since ISSUE 2):
///
///  * NRE memo — ⟦r⟧_G keyed by the NRE's raw structure (kinds + symbol
///    ids) and the graph's exact RawSignature. Both are name-free and
///    collision-free, so entries are shared soundly across scenarios and
///    universes: equal keys imply the evaluation inputs are bitwise equal.
///  * Answer memo — constant query-answer sets per solution graph. Nulls
///    are generation artifacts (every solve draws fresh ones), so a plain
///    signature key would never repeat; instead the key is the query's raw
///    structure plus the graph's *null-blind* shape, and a candidate hit
///    is verified with IsomorphicUpToNulls before being served. Constants
///    map to themselves under that isomorphism, so the memoized constant
///    tuples are exact for the probe graph. Repeated queries over an
///    already-seen target graph thus skip CNRE matching entirely, across
///    solves and across scenarios.
///  * Compiled-automaton memo (ISSUE 3 tentpole part 4) — CompiledNre
///    plans keyed by the NRE's raw structural signature alone (no graph
///    component: a compiled automaton is graph-independent). The bounded
///    search evaluates the same handful of constraint NREs against
///    thousands of near-identical candidate graphs; with this memo each
///    expression is lowered exactly once per process and shared by every
///    intra-solve worker and batch scenario (entries are immutable
///    shared_ptrs, handed out without copying).
class EngineCache : public CompiledNreCache {
 public:
  explicit EngineCache(EngineCacheOptions options = {})
      : options_(options) {}

  /// The NRE-memo key for ⟦nre⟧_g (raw NRE structure + exact graph raw
  /// signature). Compute once per evaluation and reuse for lookup + store.
  static std::string NreKey(const NrePtr& nre, const Graph& g);

  /// Looks up ⟦nre⟧_g by key; returns true and fills `*out` on a hit.
  bool LookupNre(const std::string& key, BinaryRelation* out);
  void StoreNre(std::string key, BinaryRelation relation);

  /// The answer-memo key for `query` over solution graph `g` (raw query
  /// structure + null-blind graph shape; no names, no universe identity).
  static std::string AnswerKey(const CnreQuery& query, const Graph& g);

  /// Looks up the memoized constant answer set of the keyed query over a
  /// graph null-isomorphic to `g`; returns true and fills `*out` on a
  /// verified hit.
  bool LookupAnswers(const std::string& key, const Graph& g,
                     std::vector<std::vector<Value>>* out);
  void StoreAnswers(const std::string& key, const Graph& g,
                    std::vector<std::vector<Value>> answers);

  /// The compiled automaton of `nre`, shared across callers: a hit returns
  /// the memoized immutable plan; a miss compiles outside the lock and
  /// publishes the result (first writer wins under races). This is the
  /// CompiledNreCache hook the engine's AutomatonNreEvaluator is wired to.
  CompiledNrePtr GetOrCompile(const NrePtr& nre) override;

  CacheStats stats() const;
  CacheSizes sizes() const;
  const EngineCacheOptions& options() const { return options_; }
  void ResetStats();
  void Clear();

 private:
  struct NreEntry {
    BinaryRelation relation;
    std::list<std::string>::iterator lru;
  };
  struct AnswerEntry {
    Graph graph;  // retained for the isomorphism verification on lookup
    std::vector<std::vector<Value>> answers;
  };
  struct AnswerBucket {
    std::vector<AnswerEntry> entries;
    std::list<std::string>::iterator lru;
  };
  struct CompiledEntry {
    CompiledNrePtr compiled;
    std::list<std::string>::iterator lru;
  };

  void TouchNre(NreEntry& entry);
  void TouchAnswers(AnswerBucket& bucket);
  void TouchCompiled(CompiledEntry& entry);
  void EvictOverCap();

  EngineCacheOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, NreEntry> nre_memo_;
  std::list<std::string> nre_lru_;  // front = most recently used
  std::unordered_map<std::string, AnswerBucket> answer_memo_;
  std::list<std::string> answer_lru_;
  size_t answer_entries_ = 0;
  std::unordered_map<std::string, CompiledEntry> compiled_memo_;
  std::list<std::string> compiled_lru_;
  CacheStats stats_;
};

/// NreEvaluator decorator that memoizes full-relation Eval() calls in an
/// EngineCache. EvalFrom/Contains delegate to the base evaluator unchanged
/// (they are cheap single-source queries and keep results bit-identical to
/// the undecorated evaluator).
class CachingNreEvaluator : public NreEvaluator {
 public:
  CachingNreEvaluator(const NreEvaluator* base, EngineCache* cache)
      : base_(base), cache_(cache) {}

  BinaryRelation Eval(const NrePtr& nre, const Graph& g) const override;
  BinaryRelation EvalOnView(const NrePtr& nre,
                            const GraphView& view) const override;
  /// Memo check first: a hit never invokes the view factory, so repeated
  /// matcher builds over an already-seen graph skip CSR indexing.
  BinaryRelation EvalDeferred(
      const NrePtr& nre, const Graph& g,
      const std::function<const GraphView&()>& view) const override;
  std::vector<Value> EvalFrom(const NrePtr& nre, const Graph& g,
                              Value src) const override {
    return base_->EvalFrom(nre, g, src);
  }
  bool Contains(const NrePtr& nre, const Graph& g, Value src,
                Value dst) const override {
    return base_->Contains(nre, g, src, dst);
  }
  const char* name() const override { return "caching"; }

  const NreEvaluator& base() const { return *base_; }

 private:
  const NreEvaluator* base_;
  EngineCache* cache_;
};

}  // namespace gdx

#endif  // GDX_ENGINE_CACHE_H_
