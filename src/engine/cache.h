#ifndef GDX_ENGINE_CACHE_H_
#define GDX_ENGINE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "chase/chase_compiler.h"
#include "common/status.h"
#include "graph/cnre.h"
#include "graph/nre_compile.h"
#include "graph/nre_eval.h"
#include "persist/snapshot.h"

namespace gdx {

/// Counter snapshot of the engine cache (copyable; see EngineCache::stats).
/// The `*_restored_hits` counters (ISSUE 4) count the subset of hits that
/// were served from entries restored by LoadSnapshot rather than computed
/// in this process — each such hit increments both the plain hit counter
/// and its restored twin, so restored_hits() <= hits() always.
struct CacheStats {
  uint64_t nre_hits = 0;
  uint64_t nre_misses = 0;
  uint64_t answer_hits = 0;
  uint64_t answer_misses = 0;
  uint64_t compile_hits = 0;
  uint64_t compile_misses = 0;
  uint64_t chase_hits = 0;
  uint64_t chase_misses = 0;
  uint64_t nre_evictions = 0;
  uint64_t answer_evictions = 0;
  uint64_t compile_evictions = 0;
  uint64_t chase_evictions = 0;
  uint64_t nre_restored_hits = 0;
  uint64_t answer_restored_hits = 0;
  uint64_t compile_restored_hits = 0;
  uint64_t chase_restored_hits = 0;

  uint64_t hits() const {
    return nre_hits + answer_hits + compile_hits + chase_hits;
  }
  uint64_t misses() const {
    return nre_misses + answer_misses + compile_misses + chase_misses;
  }
  uint64_t evictions() const {
    return nre_evictions + answer_evictions + compile_evictions +
           chase_evictions;
  }
  uint64_t restored_hits() const {
    return nre_restored_hits + answer_restored_hits +
           compile_restored_hits + chase_restored_hits;
  }

  void Accumulate(const CacheStats& other) {
    nre_hits += other.nre_hits;
    nre_misses += other.nre_misses;
    answer_hits += other.answer_hits;
    answer_misses += other.answer_misses;
    compile_hits += other.compile_hits;
    compile_misses += other.compile_misses;
    chase_hits += other.chase_hits;
    chase_misses += other.chase_misses;
    nre_evictions += other.nre_evictions;
    answer_evictions += other.answer_evictions;
    compile_evictions += other.compile_evictions;
    chase_evictions += other.chase_evictions;
    nre_restored_hits += other.nre_restored_hits;
    answer_restored_hits += other.answer_restored_hits;
    compile_restored_hits += other.compile_restored_hits;
    chase_restored_hits += other.chase_restored_hits;
  }
};

/// What one LoadSnapshot call restored (and immediately dropped again
/// when the receiving cache's LRU caps are smaller than the snapshot).
struct SnapshotRestoreStats {
  size_t nre_entries = 0;
  size_t answer_keys = 0;
  size_t answer_entries = 0;
  size_t compiled_entries = 0;
  size_t chased_entries = 0;
  /// Restored entries evicted straight away by EngineCacheOptions caps
  /// (the most recently used entries of the snapshot are the ones kept).
  size_t evicted_on_load = 0;
};

/// Live entry counts of the cache (see EngineCache::sizes).
struct CacheSizes {
  size_t nre_entries = 0;
  size_t answer_keys = 0;
  size_t answer_entries = 0;
  size_t compiled_entries = 0;
  size_t chased_entries = 0;
};

/// Size caps of the engine cache (ISSUE 2: long-running services must not
/// grow without bound). Eviction is LRU at entry granularity for the NRE
/// and compiled-automaton memos and at key granularity for the answer
/// memo. 0 = unbounded.
///
/// Sharding (ISSUE 7 tentpole): the memos are partitioned into
/// `num_shards` independent shards by key hash, each behind its own
/// mutex, so concurrent sessions of a resident server contend only when
/// they touch the same shard — the single-mutex design serialized every
/// lookup at service concurrency. Caps are distributed over the shards
/// (shard i gets cap/S plus one of the cap%S remainder slots), so the
/// global entry count stays <= the configured cap; LRU eviction is exact
/// per shard and approximate globally. num_shards = 1 reproduces the old
/// exact-global-LRU behavior bit for bit (the fine-grained LRU tests pin
/// it).
struct EngineCacheOptions {
  size_t max_nre_entries = 1u << 16;
  size_t max_answer_keys = 1u << 13;
  size_t max_compiled_entries = 1u << 12;
  size_t max_chased_entries = 1u << 10;
  /// Number of lock shards; rounded up to a power of two, clamped to
  /// [1, 256]. The default suits typical service worker counts.
  size_t num_shards = 8;
};

/// Per-solve cache traffic sink (ISSUE 2 satellite): one instance lives on
/// a Solve's stack; every thread working for that solve — the caller and
/// the intra-solve workers — installs it via ScopedCacheAttribution, so
/// concurrent sibling solves no longer bleed into each other's per-solve
/// counters. Atomic because several workers of one solve increment it at
/// once. Summed per-solve snapshots equal the batch-wide stats() delta
/// exactly.
struct PerSolveCacheStats {
  std::atomic<uint64_t> nre_hits{0};
  std::atomic<uint64_t> nre_misses{0};
  std::atomic<uint64_t> answer_hits{0};
  std::atomic<uint64_t> answer_misses{0};
  std::atomic<uint64_t> compile_hits{0};
  std::atomic<uint64_t> compile_misses{0};
  std::atomic<uint64_t> chase_hits{0};
  std::atomic<uint64_t> chase_misses{0};
  std::atomic<uint64_t> nre_restored_hits{0};
  std::atomic<uint64_t> answer_restored_hits{0};
  std::atomic<uint64_t> compile_restored_hits{0};
  std::atomic<uint64_t> chase_restored_hits{0};

  CacheStats Snapshot() const {
    CacheStats out;
    out.nre_hits = nre_hits.load(std::memory_order_relaxed);
    out.nre_misses = nre_misses.load(std::memory_order_relaxed);
    out.answer_hits = answer_hits.load(std::memory_order_relaxed);
    out.answer_misses = answer_misses.load(std::memory_order_relaxed);
    out.compile_hits = compile_hits.load(std::memory_order_relaxed);
    out.compile_misses = compile_misses.load(std::memory_order_relaxed);
    out.chase_hits = chase_hits.load(std::memory_order_relaxed);
    out.chase_misses = chase_misses.load(std::memory_order_relaxed);
    out.nre_restored_hits =
        nre_restored_hits.load(std::memory_order_relaxed);
    out.answer_restored_hits =
        answer_restored_hits.load(std::memory_order_relaxed);
    out.compile_restored_hits =
        compile_restored_hits.load(std::memory_order_relaxed);
    out.chase_restored_hits =
        chase_restored_hits.load(std::memory_order_relaxed);
    return out;
  }
};

/// RAII installer of the calling thread's per-solve sink (thread-local;
/// restores the previous sink on destruction, so nested scopes and pool
/// workers serving different solves in sequence attribute correctly).
class ScopedCacheAttribution {
 public:
  explicit ScopedCacheAttribution(PerSolveCacheStats* sink);
  ~ScopedCacheAttribution();
  ScopedCacheAttribution(const ScopedCacheAttribution&) = delete;
  ScopedCacheAttribution& operator=(const ScopedCacheAttribution&) = delete;

 private:
  PerSolveCacheStats* previous_;
};

/// Thread-safe engine-level memo tables (PR 1 tentpole part 3; LRU-capped
/// and per-solve attributed since ISSUE 2; hash-sharded since ISSUE 7):
///
///  * NRE memo — ⟦r⟧_G keyed by the NRE's raw structure (kinds + symbol
///    ids) and the graph's exact RawSignature. Both are name-free and
///    collision-free, so entries are shared soundly across scenarios and
///    universes: equal keys imply the evaluation inputs are bitwise equal.
///  * Answer memo — constant query-answer sets per solution graph. Nulls
///    are generation artifacts (every solve draws fresh ones), so a plain
///    signature key would never repeat; instead the key is the query's raw
///    structure plus the graph's *null-blind* shape, and a candidate hit
///    is verified with IsomorphicUpToNulls before being served. Constants
///    map to themselves under that isomorphism, so the memoized constant
///    tuples are exact for the probe graph. Repeated queries over an
///    already-seen target graph thus skip CNRE matching entirely, across
///    solves and across scenarios.
///  * Compiled-automaton memo (ISSUE 3 tentpole part 4) — CompiledNre
///    plans keyed by the NRE's raw structural signature alone (no graph
///    component: a compiled automaton is graph-independent). The bounded
///    search evaluates the same handful of constraint NREs against
///    thousands of near-identical candidate graphs; with this memo each
///    expression is lowered exactly once per process and shared by every
///    intra-solve worker and batch scenario (entries are immutable
///    shared_ptrs, handed out without copying).
///  * Chased-scenario memo (ISSUE 5 tentpole) — §5 universal
///    representatives (ChasedScenario artifacts: chased pattern + null
///    arena + chase counters) keyed by ChaseCompiler::Key, the content
///    signature of everything the chase reads. A batch that repeats
///    scenario content — or a warm-started process re-running a saved
///    workload — runs the s-t + egd chase once per distinct content and
///    replays the artifact everywhere else. Entries are immutable
///    shared_ptrs, handed out without copying.
///
/// Ownership: the cache owns every memoized payload. NRE relations and
/// answer sets are stored by value and copied out on hit; compiled
/// automata are immutable shared_ptrs handed out without copying, so a
/// plan stays alive in callers even after the LRU evicts its entry.
///
/// Thread safety (ISSUE 7 tentpole): every public method is safe to call
/// concurrently. The memos and counters are partitioned into
/// EngineCacheOptions::num_shards independent shards by FNV-1a key hash,
/// each behind its own mutex — concurrent sessions of a resident server
/// contend only on same-shard keys instead of on one global lock
/// (compilation itself deliberately runs outside any lock). Per-solve
/// counter attribution is routed through the calling thread's
/// thread-local PerSolveCacheStats sink (ScopedCacheAttribution) and is
/// exact regardless of shard count.
///
/// Invalidation: keys are pure functions of evaluation inputs — raw NRE
/// structure and raw graph content — so entries never go stale and there
/// is no invalidation protocol. Entries only leave via LRU eviction at
/// the EngineCacheOptions caps or Clear(). Mutating a Graph never
/// corrupts the cache (graphs are keyed by content, not identity), it
/// just produces a different key on the next lookup.
///
/// Persistence (ISSUE 4, extended by ISSUE 5): SaveSnapshot/LoadSnapshot
/// serialize and restore all four memos — compiled automata and chased
/// scenarios included — through the versioned snapshot format of
/// docs/FORMAT.md. Loading is transactional
/// (a corrupt file restores nothing and returns a non-OK Status), keeps
/// live entries over snapshot duplicates, preserves the snapshot's
/// per-shard LRU order, and respects this cache's LRU caps. Hits on
/// restored entries are additionally counted in the *_restored_hits
/// counters. Export order is shard-major (shard 0..S-1, least- to
/// most-recently used within each), and import routes entries back to
/// their shard by the same key hash — save → load → save is
/// byte-stable for any fixed shard count, and a snapshot written under
/// one shard count loads correctly under any other.
class EngineCache : public CompiledNreCache {
 public:
  explicit EngineCache(EngineCacheOptions options = {});

  /// The NRE-memo key for ⟦nre⟧_g (raw NRE structure + exact graph raw
  /// signature). Compute once per evaluation and reuse for lookup + store.
  static std::string NreKey(const NrePtr& nre, const Graph& g);

  /// Looks up ⟦r⟧_g by key; returns true and fills `*out` on a hit.
  bool LookupNre(const std::string& key, BinaryRelation* out);
  void StoreNre(std::string key, BinaryRelation relation);

  /// The answer-memo key for `query` over solution graph `g` (raw query
  /// structure + null-blind graph shape; no names, no universe identity).
  static std::string AnswerKey(const CnreQuery& query, const Graph& g);

  /// Looks up the memoized constant answer set of the keyed query over a
  /// graph null-isomorphic to `g`; returns true and fills `*out` on a
  /// verified hit.
  bool LookupAnswers(const std::string& key, const Graph& g,
                     std::vector<std::vector<Value>>* out);
  void StoreAnswers(const std::string& key, const Graph& g,
                    std::vector<std::vector<Value>> answers);

  /// The compiled automaton of `nre`, shared across callers: a hit returns
  /// the memoized immutable plan; a miss compiles outside the lock and
  /// publishes the result (first writer wins under races). This is the
  /// CompiledNreCache hook the engine's AutomatonNreEvaluator is wired to.
  CompiledNrePtr GetOrCompile(const NrePtr& nre) override;

  /// Looks up the chased-scenario artifact for a ChaseCompiler::Key;
  /// nullptr on a miss. Every call counts as exactly one chase hit or
  /// miss (like the other memos).
  ChasedScenarioPtr LookupChased(const std::string& key);

  /// Publishes a compiled chase artifact. Racing publishers of one key
  /// keep the first (artifacts are interchangeable — compilation is
  /// deterministic).
  void StoreChased(const std::string& key, ChasedScenarioPtr artifact);

  // --- Warm-start persistence (ISSUE 4 tentpole) ------------------------

  /// Writes the cache's current warm state to `path` as one versioned
  /// snapshot (docs/FORMAT.md). Thread-safe; concurrent stores landing
  /// during the export are either fully included or fully absent.
  Status SaveSnapshot(const std::string& path) const;

  /// Restores a snapshot saved by SaveSnapshot. Transactional: a
  /// truncated/corrupted/wrong-version file restores nothing and returns
  /// a descriptive non-OK Status (a cold start, not UB). On success the
  /// restored entries join the memos flagged as restored (hits on them
  /// tick the *_restored_hits counters), live entries win over snapshot
  /// duplicates, and restored entries rank *below* every live entry in
  /// LRU order (a snapshot is older than anything computed here), so a
  /// mid-life load under tight caps evicts snapshot entries, never the
  /// live working set. `restored` (optional) receives what was loaded.
  Status LoadSnapshot(const std::string& path,
                      SnapshotRestoreStats* restored = nullptr);

  /// The snapshot codec's view of the cache content (entries ordered
  /// shard-major, least- to most-recently used within each shard).
  /// Exposed for the persistence layer and its tests;
  /// SaveSnapshot == WriteSnapshotFile(ExportWarmState).
  WarmState ExportWarmState() const;

  /// Installs decoded warm state; see LoadSnapshot for the semantics.
  SnapshotRestoreStats ImportWarmState(WarmState state);

  CacheStats stats() const;
  CacheSizes sizes() const;
  const EngineCacheOptions& options() const { return options_; }
  size_t num_shards() const { return shards_.size(); }
  void ResetStats();
  void Clear();

 private:
  /// Same-key non-isomorphic graphs are rare (the key pins the
  /// null-blind shape), so a handful of entries per answer key is plenty.
  static constexpr size_t kMaxAnswerEntriesPerKey = 8;

  struct NreEntry {
    BinaryRelation relation;
    std::list<std::string>::iterator lru;
    bool restored = false;  // came from LoadSnapshot
  };
  struct AnswerEntry {
    Graph graph;  // retained for the isomorphism verification on lookup
    std::vector<std::vector<Value>> answers;
    bool restored = false;
  };
  struct AnswerBucket {
    std::vector<AnswerEntry> entries;
    std::list<std::string>::iterator lru;
  };
  struct CompiledEntry {
    CompiledNrePtr compiled;
    std::list<std::string>::iterator lru;
    bool restored = false;
  };
  struct ChasedEntry {
    ChasedScenarioPtr artifact;
    std::list<std::string>::iterator lru;
    bool restored = false;
  };

  /// One lock shard: a full private copy of the four memos plus its own
  /// counters and cap quotas. Every mutation of a shard happens under its
  /// mutex; cross-shard reads (stats/sizes/export) lock one shard at a
  /// time and merge.
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, NreEntry> nre_memo;
    std::list<std::string> nre_lru;  // front = most recently used
    std::unordered_map<std::string, AnswerBucket> answer_memo;
    std::list<std::string> answer_lru;
    size_t answer_entries = 0;
    std::unordered_map<std::string, CompiledEntry> compiled_memo;
    std::list<std::string> compiled_lru;
    std::unordered_map<std::string, ChasedEntry> chased_memo;
    std::list<std::string> chased_lru;
    CacheStats stats;
    /// This shard's slice of the global caps. SIZE_MAX = unbounded
    /// (the sentinel a global cap of 0 maps to); a literal 0 means the
    /// shard retains nothing — that happens when a global cap is smaller
    /// than the shard count, and keeps the global total within the cap.
    size_t max_nre_entries = std::numeric_limits<size_t>::max();
    size_t max_answer_keys = std::numeric_limits<size_t>::max();
    size_t max_compiled_entries = std::numeric_limits<size_t>::max();
    size_t max_chased_entries = std::numeric_limits<size_t>::max();
  };

  Shard& ShardFor(const std::string& key) const;

  static void TouchNre(Shard& shard, NreEntry& entry);
  static void TouchAnswers(Shard& shard, AnswerBucket& bucket);
  static void TouchCompiled(Shard& shard, CompiledEntry& entry);
  static void TouchChased(Shard& shard, ChasedEntry& entry);
  /// Called with the shard's mutex held.
  static void EvictOverCap(Shard& shard);

  EngineCacheOptions options_;
  /// Fixed at construction (mutexes make Shard immovable, hence the
  /// unique_ptr indirection).
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

/// NreEvaluator decorator that memoizes full-relation Eval() calls in an
/// EngineCache. EvalFrom/Contains delegate to the base evaluator unchanged
/// (they are cheap single-source queries and keep results bit-identical to
/// the undecorated evaluator).
class CachingNreEvaluator : public NreEvaluator {
 public:
  CachingNreEvaluator(const NreEvaluator* base, EngineCache* cache)
      : base_(base), cache_(cache) {}

  BinaryRelation Eval(const NrePtr& nre, const Graph& g) const override;
  BinaryRelation EvalOnView(const NrePtr& nre,
                            const GraphView& view) const override;
  /// Memo check first: a hit never invokes the view factory, so repeated
  /// matcher builds over an already-seen graph skip CSR indexing.
  BinaryRelation EvalDeferred(
      const NrePtr& nre, const Graph& g,
      const std::function<const GraphView&()>& view) const override;
  std::vector<Value> EvalFrom(const NrePtr& nre, const Graph& g,
                              Value src) const override {
    return base_->EvalFrom(nre, g, src);
  }
  /// Pass-through so the base evaluator's 64-way batched BFS serves
  /// source batches even behind the cache decorator (ISSUE 10).
  std::vector<std::vector<Value>> EvalFromMany(
      const NrePtr& nre, const Graph& g,
      const std::vector<Value>& srcs) const override {
    return base_->EvalFromMany(nre, g, srcs);
  }
  bool Contains(const NrePtr& nre, const Graph& g, Value src,
                Value dst) const override {
    return base_->Contains(nre, g, src, dst);
  }
  const char* name() const override { return "caching"; }

  const NreEvaluator& base() const { return *base_; }

 private:
  const NreEvaluator* base_;
  EngineCache* cache_;
};

}  // namespace gdx

#endif  // GDX_ENGINE_CACHE_H_
