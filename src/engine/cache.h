#ifndef GDX_ENGINE_CACHE_H_
#define GDX_ENGINE_CACHE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/cnre.h"
#include "graph/nre_eval.h"

namespace gdx {

/// Counter snapshot of the engine cache (copyable; see EngineCache::stats).
struct CacheStats {
  uint64_t nre_hits = 0;
  uint64_t nre_misses = 0;
  uint64_t answer_hits = 0;
  uint64_t answer_misses = 0;

  uint64_t hits() const { return nre_hits + answer_hits; }
  uint64_t misses() const { return nre_misses + answer_misses; }
};

/// Thread-safe engine-level memo tables (ISSUE tentpole part 3):
///
///  * NRE memo — ⟦r⟧_G keyed by the NRE's raw structure (kinds + symbol
///    ids) and the graph's exact RawSignature. Both are name-free and
///    collision-free, so entries are shared soundly across scenarios and
///    universes: equal keys imply the evaluation inputs are bitwise equal.
///  * Answer memo — constant query-answer sets per solution graph. Nulls
///    are generation artifacts (every solve draws fresh ones), so a plain
///    signature key would never repeat; instead the key is the query's raw
///    structure plus the graph's *null-blind* shape, and a candidate hit
///    is verified with IsomorphicUpToNulls before being served. Constants
///    map to themselves under that isomorphism, so the memoized constant
///    tuples are exact for the probe graph. Repeated queries over an
///    already-seen target graph thus skip CNRE matching entirely, across
///    solves and across scenarios.
class EngineCache {
 public:
  /// The NRE-memo key for ⟦nre⟧_g (raw NRE structure + exact graph raw
  /// signature). Compute once per evaluation and reuse for lookup + store.
  static std::string NreKey(const NrePtr& nre, const Graph& g);

  /// Looks up ⟦nre⟧_g by key; returns true and fills `*out` on a hit.
  bool LookupNre(const std::string& key, BinaryRelation* out);
  void StoreNre(std::string key, BinaryRelation relation);

  /// The answer-memo key for `query` over solution graph `g` (raw query
  /// structure + null-blind graph shape; no names, no universe identity).
  static std::string AnswerKey(const CnreQuery& query, const Graph& g);

  /// Looks up the memoized constant answer set of the keyed query over a
  /// graph null-isomorphic to `g`; returns true and fills `*out` on a
  /// verified hit.
  bool LookupAnswers(const std::string& key, const Graph& g,
                     std::vector<std::vector<Value>>* out);
  void StoreAnswers(const std::string& key, const Graph& g,
                    std::vector<std::vector<Value>> answers);

  CacheStats stats() const;
  void ResetStats();
  void Clear();

 private:
  struct AnswerEntry {
    Graph graph;  // retained for the isomorphism verification on lookup
    std::vector<std::vector<Value>> answers;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, BinaryRelation> nre_memo_;
  std::unordered_map<std::string, std::vector<AnswerEntry>> answer_memo_;
  CacheStats stats_;
};

/// NreEvaluator decorator that memoizes full-relation Eval() calls in an
/// EngineCache. EvalFrom/Contains delegate to the base evaluator unchanged
/// (they are cheap single-source queries and keep results bit-identical to
/// the undecorated evaluator).
class CachingNreEvaluator : public NreEvaluator {
 public:
  CachingNreEvaluator(const NreEvaluator* base, EngineCache* cache)
      : base_(base), cache_(cache) {}

  BinaryRelation Eval(const NrePtr& nre, const Graph& g) const override;
  std::vector<Value> EvalFrom(const NrePtr& nre, const Graph& g,
                              Value src) const override {
    return base_->EvalFrom(nre, g, src);
  }
  bool Contains(const NrePtr& nre, const Graph& g, Value src,
                Value dst) const override {
    return base_->Contains(nre, g, src, dst);
  }
  const char* name() const override { return "caching"; }

  const NreEvaluator& base() const { return *base_; }

 private:
  const NreEvaluator* base_;
  EngineCache* cache_;
};

}  // namespace gdx

#endif  // GDX_ENGINE_CACHE_H_
