#ifndef GDX_ENGINE_BATCH_EXECUTOR_H_
#define GDX_ENGINE_BATCH_EXECUTOR_H_

#include <string>
#include <vector>

#include "engine/exchange_engine.h"
#include "engine/thread_pool.h"
#include "obs/histogram.h"

namespace gdx {

/// Knobs of the batch layer.
struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency.
  size_t num_threads = 0;
  EngineOptions engine;
};

/// Per-scenario latency attribution (ISSUE 6 satellite): how long the
/// scenario sat queued behind other work before a worker picked it up,
/// and how long the solve itself ran. Both were previously
/// indistinguishable inside Metrics::total_seconds; a resident service
/// needs them apart — rising queue_wait at flat execute means the pool is
/// saturating, the opposite means the scenarios got harder.
struct ScenarioTiming {
  double queue_wait_seconds = 0;
  double execute_seconds = 0;
};

/// Order-stable batch result: outcomes[i] belongs to scenarios[i]
/// regardless of which worker solved it or in what order workers finished.
struct BatchReport {
  std::vector<Result<ExchangeOutcome>> outcomes;
  /// Accumulated per-solve metrics. Since ISSUE 2 the per-solve cache
  /// counters are exact (thread-local attribution) and sum to the
  /// batch-wide cache deltas reported here.
  Metrics total;
  /// timings[i] belongs to scenarios[i] (ISSUE 6): per-scenario latency
  /// samples — these feed the batch.queue_wait_ns / batch.execute_ns
  /// registry histograms and the p50/p99 lines of Summary().
  std::vector<ScenarioTiming> timings;
  double wall_seconds = 0;
  size_t num_threads = 0;

  size_t yes = 0, no = 0, unknown = 0, errors = 0;

  /// Deterministically-bucketed latency distributions over `timings`
  /// (obs/histogram.h layout, nanosecond values).
  obs::HistogramSnapshot ExecuteHistogram() const;
  obs::HistogramSnapshot QueueWaitHistogram() const;

  /// Human-readable verdict counts + latency percentiles + metrics block
  /// for CLI/bench output.
  std::string Summary() const;
};

/// Runs many scenarios concurrently through one shared ExchangeEngine over
/// a work-stealing thread pool (ISSUE tentpole part 2). Scenarios are
/// independent — each owns its universe/instance — so solves parallelize
/// without coordination; the engine cache is shared and internally
/// synchronized, and identical sub-evaluations across scenarios are paid
/// for once. Outcomes are deterministic and order-stable: thread count
/// affects wall time and cache traffic only, never results.
class BatchExecutor {
 public:
  explicit BatchExecutor(BatchOptions options = {});

  /// Solves every scenario; outcomes[i] corresponds to scenarios[i].
  BatchReport SolveAll(std::vector<Scenario>& scenarios);

  /// Warm-start hooks (ISSUE 4): restore/save the shared engine cache
  /// around SolveAll, so a serving process resumes with every NRE memo,
  /// answer memo, and compiled automaton of its previous life. The CLI's
  /// `batch --cache-load/--cache-save` flags call exactly these.
  Result<SnapshotRestoreStats> WarmStart(const std::string& path) {
    return engine_.WarmStart(path);
  }
  Status SaveWarmState(const std::string& path) const {
    return engine_.SaveWarmState(path);
  }

  const ExchangeEngine& engine() const { return engine_; }
  size_t num_threads() const { return pool_.num_threads(); }

 private:
  BatchOptions options_;
  ExchangeEngine engine_;
  ThreadPool pool_;
};

}  // namespace gdx

#endif  // GDX_ENGINE_BATCH_EXECUTOR_H_
