#ifndef GDX_ENGINE_PARALLEL_SEARCH_H_
#define GDX_ENGINE_PARALLEL_SEARCH_H_

// Forwarding header. ParallelSearch and CancellationToken live in
// src/common/ so that src/solver/ can fan its witness-choice search out
// without an upward dependency on the engine layer (the engine depends on
// the solver, not vice versa); this spelling remains the engine-facing
// include.
#include "common/parallel_search.h"

#endif  // GDX_ENGINE_PARALLEL_SEARCH_H_
