#ifndef GDX_ENGINE_THREAD_POOL_H_
#define GDX_ENGINE_THREAD_POOL_H_

// Forwarding header. ThreadPool lives in src/common/ so that stage modules
// (e.g. the existence solver's intra-solve fan-out) can use it without
// depending on the engine layer; this spelling remains the engine-facing
// include.
#include "common/thread_pool.h"

#endif  // GDX_ENGINE_THREAD_POOL_H_
