#ifndef GDX_COMMON_INTERNER_H_
#define GDX_COMMON_INTERNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace gdx {

/// Bidirectional string <-> dense id mapping. Ids are assigned in insertion
/// order starting at 0, so iteration over ids is deterministic.
///
/// Determinism contract: two interners fed the same strings in the same
/// order assign identical ids. The whole pipeline leans on this — parsing
/// a scenario re-interns its names identically run over run, which is
/// what makes engine memo keys (which embed interned ids) reproducible
/// across processes, and it is the property the snapshot string table
/// (docs/FORMAT.md §STRT) persists: ids are the table index, so a
/// serialized interner round-trips id-for-id.
///
/// Ownership and thread safety: the interner owns its strings; NameOf
/// returns a reference that stays valid for the interner's lifetime
/// (names are never removed). NOT internally synchronized — Intern
/// mutates, so concurrent interning requires external locking. The
/// engine's convention: intern only at parse/build time, then share the
/// interner read-only with concurrent workers (see Alphabet::FindSameAs
/// for the one hot-path lookup this enables).
class StringInterner {
 public:
  /// Interns `name`, returning its id (existing id if already present).
  SymbolId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    SymbolId id = static_cast<SymbolId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Looks up an already-interned name; nullopt if absent.
  std::optional<SymbolId> Find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  /// The spelling of id. Precondition: id < size().
  const std::string& NameOf(SymbolId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> ids_;
};

}  // namespace gdx

#endif  // GDX_COMMON_INTERNER_H_
