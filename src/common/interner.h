#ifndef GDX_COMMON_INTERNER_H_
#define GDX_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/value.h"

namespace gdx {

/// Bidirectional string <-> dense id mapping. Ids are assigned in insertion
/// order starting at 0, so iteration over ids is deterministic.
///
/// Determinism contract: two interners fed the same strings in the same
/// order assign identical ids. The whole pipeline leans on this — parsing
/// a scenario re-interns its names identically run over run, which is
/// what makes engine memo keys (which embed interned ids) reproducible
/// across processes, and it is the property the snapshot string table
/// (docs/FORMAT.md §STRT) persists: ids are the table index, so a
/// serialized interner round-trips id-for-id.
///
/// Lookup cost (ISSUE 5 satellite): Intern and Find hash the caller's
/// string_view directly — the index is keyed by views into the interner's
/// own stable storage (a deque, whose elements never move), so the hot
/// path allocates nothing. Only interning a genuinely new name copies the
/// bytes, once, into the deque.
///
/// Ownership and thread safety: the interner owns its strings; NameOf
/// returns a reference that stays valid for the interner's lifetime
/// (names are never removed). NOT internally synchronized — Intern
/// mutates, so concurrent interning requires external locking. The
/// engine's convention: intern only at parse/build time, then share the
/// interner read-only with concurrent workers (see Alphabet::FindSameAs
/// for the one hot-path lookup this enables, and Universe for the
/// copy-on-write sharing built on top of it).
class StringInterner {
 public:
  StringInterner() = default;
  /// Copies rebuild the view-keyed index against the copied storage —
  /// default member copy would leave views dangling into the source.
  StringInterner(const StringInterner& other) : names_(other.names_) {
    RebuildIndex();
  }
  StringInterner& operator=(const StringInterner& other) {
    if (this != &other) {
      names_ = other.names_;
      RebuildIndex();
    }
    return *this;
  }
  /// Moves are safe as-is: moving a deque transfers its blocks without
  /// relocating elements, so the index's views stay valid.
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  /// Interns `name`, returning its id (existing id if already present).
  /// Allocation-free when the name is already interned.
  SymbolId Intern(std::string_view name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    SymbolId id = static_cast<SymbolId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(std::string_view(names_.back()), id);
    return id;
  }

  /// Looks up an already-interned name; nullopt if absent. Allocation-free.
  std::optional<SymbolId> Find(std::string_view name) const {
    auto it = ids_.find(name);
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  /// The spelling of id. Precondition: id < size().
  const std::string& NameOf(SymbolId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  void RebuildIndex() {
    ids_.clear();
    ids_.reserve(names_.size());
    for (size_t i = 0; i < names_.size(); ++i) {
      ids_.emplace(std::string_view(names_[i]), static_cast<SymbolId>(i));
    }
  }

  /// Deque: element addresses are stable under growth, which is what lets
  /// the index hold views instead of owned copies.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, SymbolId> ids_;
};

}  // namespace gdx

#endif  // GDX_COMMON_INTERNER_H_
