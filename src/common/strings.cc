#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace gdx {

void StrAppendF(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {  // encoding error: nothing sensible to append
    va_end(args_copy);
    return;
  }
  size_t old_size = out->size();
  out->resize(old_size + static_cast<size_t>(needed) + 1);
  std::vsnprintf(&(*out)[old_size], static_cast<size_t>(needed) + 1, fmt,
                 args_copy);
  va_end(args_copy);
  out->resize(old_size + static_cast<size_t>(needed));
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.emplace_back(StripWhitespace(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  return pieces;
}

}  // namespace gdx
