#include "common/strings.h"

namespace gdx {

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.emplace_back(StripWhitespace(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  return pieces;
}

}  // namespace gdx
