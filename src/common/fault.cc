#include "common/fault.h"

#include <cstdlib>

namespace gdx {
namespace fault {
namespace {

constexpr size_t kNumPoints = static_cast<size_t>(Point::kNumPoints);

/// Per-point live configuration. All fields are atomics so probes from
/// worker/session threads race-freely against a Configure() from a test
/// thread; rates are stored in parts-per-million to keep the draw
/// integer-only.
struct PointState {
  std::atomic<uint32_t> rate_ppm{0};
  std::atomic<uint64_t> seed{0};
  std::atomic<uint64_t> draws{0};
  std::atomic<uint64_t> injected{0};
};

PointState g_points[kNumPoints];

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool ParsePoint(const std::string& name, Point* out) {
  for (size_t i = 0; i < kNumPoints; ++i) {
    if (name == PointName(static_cast<Point>(i))) {
      *out = static_cast<Point>(i);
      return true;
    }
  }
  return false;
}

/// Parses one "point:rate:seed" entry; returns false on any malformation.
bool ParseEntry(const std::string& entry, Point* point, uint32_t* rate_ppm,
                uint64_t* seed) {
  const size_t colon1 = entry.find(':');
  if (colon1 == std::string::npos) return false;
  const size_t colon2 = entry.find(':', colon1 + 1);
  if (colon2 == std::string::npos) return false;
  if (!ParsePoint(entry.substr(0, colon1), point)) return false;
  const std::string rate_text = entry.substr(colon1 + 1, colon2 - colon1 - 1);
  char* end = nullptr;
  const double rate = std::strtod(rate_text.c_str(), &end);
  if (end == rate_text.c_str() || *end != '\0' || rate < 0.0 || rate > 1.0) {
    return false;
  }
  const std::string seed_text = entry.substr(colon2 + 1);
  end = nullptr;
  const unsigned long long parsed_seed =
      std::strtoull(seed_text.c_str(), &end, 10);
  if (end == seed_text.c_str() || *end != '\0') return false;
  *rate_ppm = static_cast<uint32_t>(rate * 1e6 + 0.5);
  *seed = static_cast<uint64_t>(parsed_seed);
  return true;
}

/// Parses GDX_FAULT once before main() runs. fault.cc is pulled into any
/// binary whose code contains a probe, so the env spec is live before the
/// first checkpoint/socket/admission ever happens.
struct EnvInit {
  EnvInit() { ConfigureFromEnv(); }
};
EnvInit g_env_init;

}  // namespace

namespace internal {

std::atomic<bool> g_enabled{false};

bool ShouldFailSlow(Point point) {
  PointState& state = g_points[static_cast<size_t>(point)];
  const uint32_t rate_ppm = state.rate_ppm.load(std::memory_order_relaxed);
  if (rate_ppm == 0) return false;
  const uint64_t draw = state.draws.fetch_add(1, std::memory_order_relaxed);
  const uint64_t hash =
      SplitMix64(state.seed.load(std::memory_order_relaxed) ^
                 (draw * 0xD1B54A32D192ED03ull));
  if (hash % 1000000ull >= rate_ppm) return false;
  state.injected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace internal

const char* PointName(Point point) {
  switch (point) {
    case Point::kCheckpointWrite: return "checkpoint_write";
    case Point::kCheckpointRename: return "checkpoint_rename";
    case Point::kSocketRead: return "socket_read";
    case Point::kSocketWrite: return "socket_write";
    case Point::kQueueAdmit: return "queue_admit";
    case Point::kNumPoints: break;
  }
  return "unknown";
}

bool Configure(const std::string& spec) {
  // Validate the whole spec before installing any of it, so a typo never
  // half-applies a fault plan.
  struct Parsed {
    Point point;
    uint32_t rate_ppm;
    uint64_t seed;
  };
  Parsed entries[kNumPoints];
  size_t num_entries = 0;
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(start, comma - start);
    if (!entry.empty()) {
      if (num_entries >= kNumPoints) return false;
      Parsed& parsed = entries[num_entries];
      if (!ParseEntry(entry, &parsed.point, &parsed.rate_ppm,
                      &parsed.seed)) {
        return false;
      }
      ++num_entries;
    }
    start = comma + 1;
  }
  for (size_t i = 0; i < kNumPoints; ++i) {
    g_points[i].rate_ppm.store(0, std::memory_order_relaxed);
    g_points[i].seed.store(0, std::memory_order_relaxed);
    g_points[i].draws.store(0, std::memory_order_relaxed);
    g_points[i].injected.store(0, std::memory_order_relaxed);
  }
  bool any = false;
  for (size_t i = 0; i < num_entries; ++i) {
    PointState& state = g_points[static_cast<size_t>(entries[i].point)];
    state.rate_ppm.store(entries[i].rate_ppm, std::memory_order_relaxed);
    state.seed.store(entries[i].seed, std::memory_order_relaxed);
    any = any || entries[i].rate_ppm > 0;
  }
  internal::g_enabled.store(any, std::memory_order_release);
  return true;
}

void ConfigureFromEnv() {
  const char* spec = std::getenv("GDX_FAULT");
  if (spec != nullptr && spec[0] != '\0') Configure(spec);
}

uint64_t InjectedCount(Point point) {
  return g_points[static_cast<size_t>(point)].injected.load(
      std::memory_order_relaxed);
}

}  // namespace fault
}  // namespace gdx
