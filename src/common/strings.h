#ifndef GDX_COMMON_STRINGS_H_
#define GDX_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace gdx {

/// Joins the string forms of a range with a separator.
template <typename Range>
std::string StrJoin(const Range& range, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : range) {
    if (!first) out << sep;
    out << item;
    first = false;
  }
  return out.str();
}

/// Appends printf-formatted text to `*out`, growing it as needed — no
/// fixed buffer, no truncation regardless of the formatted length
/// (Metrics::ToString previously clipped silently at 1024 bytes; CI greps
/// that output, so truncation is an observability bug, not cosmetics).
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void StrAppendF(std::string* out, const char* fmt, ...);

/// Splits on a single character, trimming ASCII whitespace from each piece;
/// empty pieces are kept (callers validate).
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` starts with `prefix`.
inline bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace gdx

#endif  // GDX_COMMON_STRINGS_H_
