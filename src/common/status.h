#ifndef GDX_COMMON_STATUS_H_
#define GDX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gdx {

/// Canonical error codes used across the library (no exceptions cross the
/// public API; fallible operations return Status or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // malformed input (parse errors, arity mismatch, ...)
  kNotFound,           // lookup failure
  kFailedPrecondition, // operation not applicable in current state
  kResourceExhausted,  // search/chase budget exceeded
  kUnimplemented,      // feature intentionally out of scope
  kInternal,           // invariant violation (a bug)
};

/// Returns a short human-readable name for a status code.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// Lightweight status object: a code plus an explanatory message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T>: either a value or a non-OK Status. Move-friendly; value()
/// asserts ok() in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : status_(std::move(status)) {   // NOLINT(implicit)
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::Ok();
};

}  // namespace gdx

#endif  // GDX_COMMON_STATUS_H_
