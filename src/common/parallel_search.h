#ifndef GDX_COMMON_PARALLEL_SEARCH_H_
#define GDX_COMMON_PARALLEL_SEARCH_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/thread_pool.h"

namespace gdx {

/// Cooperative cancellation flag shared between a solve and its workers
/// (ISSUE 2 tentpole). Requesting a stop is advisory: workers and the DPLL
/// inner loop poll it and abandon their current subrange / cube, turning
/// the whole solve into a sound "unknown". Distinct from the *internal*
/// rank ceiling ParallelSearch uses for deterministic early exit.
///
/// Deadlines (ISSUE 8 tentpole): a token may additionally carry a
/// monotonic-clock deadline. stop_requested() checks it and — on expiry —
/// trips the same flag an explicit RequestStop would, so every poller
/// (including components that only watch the raw flag(), like the DPLL
/// inner loop) observes the expiry the moment *any* stage polls the
/// token. The first stop cause wins and is preserved as reason(), which
/// is how a server tells CANCELED from DEADLINE_EXCEEDED.
class CancellationToken {
 public:
  enum class StopReason : uint8_t {
    kNone = 0,
    kCanceled = 1,  // explicit RequestStop
    kDeadline = 2,  // monotonic deadline expired
  };

  void RequestStop() { Stop(StopReason::kCanceled); }
  void RequestStop(StopReason reason) { Stop(reason); }

  /// Arms (or rearms) the deadline. The clock is steady_clock: wall-time
  /// jumps never expire a solve early or extend it.
  void SetDeadline(std::chrono::steady_clock::time_point when) {
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            when.time_since_epoch())
            .count());
    // 0 is the "no deadline" sentinel; an exactly-zero epoch deadline is
    // long in the past anyway.
    deadline_ns_.store(ns == 0 ? 1 : ns, std::memory_order_release);
  }
  void SetDeadlineAfter(std::chrono::nanoseconds budget) {
    SetDeadline(std::chrono::steady_clock::now() + budget);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  /// Polling this *is* the deadline enforcement: past-deadline tokens
  /// self-trip here (reason kDeadline) before reporting true.
  bool stop_requested() const {
    if (stop_.load(std::memory_order_acquire)) return true;
    const uint64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 && NowNs() >= deadline) {
      Stop(StopReason::kDeadline);
      return true;
    }
    return false;
  }

  /// Why the token stopped (kNone while still running). Stable: the first
  /// cause to fire wins, later causes never overwrite it.
  StopReason reason() const {
    return static_cast<StopReason>(reason_.load(std::memory_order_acquire));
  }

  /// The raw flag, for components that poll without depending on this
  /// header's type (e.g. DpllConfig::cancel). Deadline expiry reaches this
  /// view too, as soon as any caller polls stop_requested().
  const std::atomic<bool>* flag() const { return &stop_; }

  /// Monotonic now, in the same ns-since-steady-epoch scale SetDeadline
  /// stores (exposed for watchdogs that compare against many tokens).
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  /// const because deadline expiry is detected inside const polls; the
  /// members it touches are atomics, so this is logically a cache fill.
  void Stop(StopReason reason) const {
    uint8_t expected = 0;
    reason_.compare_exchange_strong(expected,
                                    static_cast<uint8_t>(reason),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire);
    stop_.store(true, std::memory_order_release);
  }

  mutable std::atomic<bool> stop_{false};
  mutable std::atomic<uint8_t> reason_{0};
  std::atomic<uint64_t> deadline_ns_{0};
};

/// Tuning of one ParallelSearch instance. All fields are borrowed; the
/// caller keeps pool/cancel alive for the duration of the search calls.
struct ParallelSearchOptions {
  /// Pool the extra workers are submitted to. nullptr (or max_workers <= 1)
  /// degrades to a caller-thread-only scan — same visiting order semantics,
  /// zero thread traffic.
  ThreadPool* pool = nullptr;
  /// Worker count *including* the calling thread (which always
  /// participates, so a saturated pool can never stall a search).
  /// 0 = pool size + 1.
  size_t max_workers = 1;
  /// Ranks per work unit. The effective chunk shrinks for small spaces so
  /// every worker gets several units (load balance on skewed costs).
  size_t chunk_size = 64;
  /// ScanAll only: how far (in chunks) a worker may run ahead of the
  /// contiguous completed prefix. Bounds the backlog of visited-but-
  /// unmerged ranks when one slow chunk stalls the prefix — otherwise a
  /// solution-dense scan could buffer results for the whole space before
  /// the on_prefix cap kicks in. Workers past the window briefly sleep
  /// until the prefix catches up; the chunk owner advancing the prefix is
  /// never past it, so the window cannot deadlock. 0 = unbounded.
  size_t max_lead_chunks = 64;
  /// Spaces smaller than this are scanned on the caller thread only — the
  /// fan-out overhead would dominate.
  size_t min_parallel_ranks = 128;
  /// Adaptive worker scaling (ISSUE 5 satellite): when nonzero, the
  /// effective worker count is additionally capped at
  /// ceil(num_ranks / adaptive_ranks_per_worker) — small choice spaces run
  /// on fewer workers (down to the sequential caller thread) instead of
  /// paying the fan-out for a handful of ranks each. 0 = off (the static
  /// max_workers cap alone decides). Results are worker-count invariant
  /// either way; this only moves wall time.
  size_t adaptive_ranks_per_worker = 0;
  /// Optional external hard abort (see CancellationToken). When it fires,
  /// FindFirst/ScanAll return early and their result is *not* the
  /// deterministic full answer; callers report "cancelled"/unknown.
  const CancellationToken* cancel = nullptr;
  /// Wraps every worker's whole run (including the caller thread's), e.g.
  /// to install thread-local per-solve metric sinks. Must invoke `body`
  /// exactly once.
  std::function<void(size_t worker, const std::function<void()>& body)>
      wrap_worker;
};

/// Deterministic fan-out over a rank space [0, num_ranks) — the
/// witness-choice odometer of the bounded existence search, flattened to
/// mixed-radix ranks (ISSUE 2 tentpole). Work is handed out as contiguous
/// chunks from an atomic cursor; early exit is a monotonically decreasing
/// *rank ceiling*: ranks at or above it are provably irrelevant to the
/// result and are abandoned, ranks below it are always fully visited. That
/// invariant is what makes the outcome identical for any worker count,
/// including 1.
class ParallelSearch {
 public:
  static constexpr size_t kNotFound = ~static_cast<size_t>(0);

  explicit ParallelSearch(ParallelSearchOptions options = {})
      : options_(options) {}

  /// First-hit search: visits ranks until the *minimal* rank whose
  /// visit(rank, worker) returns true is known, then returns it (or
  /// kNotFound). Exactly the sequential first-hit: a worker that finds a
  /// hit lowers the ceiling to its rank; workers scanning lower ranks run
  /// on until they pass it. `visit` runs concurrently and must be
  /// thread-safe; `worker` ∈ [0, NumWorkers(num_ranks)).
  size_t FindFirst(
      size_t num_ranks,
      const std::function<bool(size_t rank, size_t worker)>& visit) const;

  /// Full scan with order-stable incremental merging: every rank below the
  /// current ceiling is visited exactly once. Each time the *contiguous*
  /// prefix of fully-visited ranks grows, on_prefix(prefix_ranks) is
  /// invoked (serialized, monotone prefix_ranks, final call sees
  /// num_ranks); it may return a new, lower ceiling — ranks >= it are
  /// abandoned — or kNotFound to keep the current one. This is the seam
  /// solution enumeration uses to dedup + cap in rank order while the scan
  /// is still running.
  void ScanAll(
      size_t num_ranks,
      const std::function<void(size_t rank, size_t worker)>& visit,
      const std::function<size_t(size_t prefix_ranks)>& on_prefix) const;

  /// Effective worker count for a space of `num_ranks` (1 when the space is
  /// under min_parallel_ranks or no pool is available).
  size_t NumWorkers(size_t num_ranks) const;

  const ParallelSearchOptions& options() const { return options_; }

 private:
  size_t EffectiveChunk(size_t num_ranks, size_t workers) const;
  /// Runs body(0) on the caller and body(1..workers-1) on the pool; blocks
  /// until all return. Applies wrap_worker around each.
  void RunWorkers(size_t workers,
                  const std::function<void(size_t worker)>& body) const;
  bool Cancelled() const {
    return options_.cancel != nullptr && options_.cancel->stop_requested();
  }

  ParallelSearchOptions options_;
};

}  // namespace gdx

#endif  // GDX_COMMON_PARALLEL_SEARCH_H_
