#include "common/parallel_search.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace gdx {
namespace {

/// Completion latch for the workers one search borrows from the shared
/// pool. ThreadPool::Wait() waits for *every* pending task — including
/// sibling solves' — so each search counts down its own tasks instead.
class Latch {
 public:
  explicit Latch(size_t count) : outstanding_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--outstanding_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t outstanding_;
};

}  // namespace

size_t ParallelSearch::NumWorkers(size_t num_ranks) const {
  if (options_.pool == nullptr || options_.max_workers == 1 ||
      num_ranks < options_.min_parallel_ranks) {
    return 1;
  }
  size_t cap = options_.max_workers == 0 ? options_.pool->num_threads() + 1
                                         : options_.max_workers;
  if (options_.adaptive_ranks_per_worker != 0) {
    // Adaptive scheduling: scale the worker count with the choice space so
    // small spaces stay (near-)sequential and only genuinely large ones
    // fan wide. Ceiling division: any remainder earns one more worker.
    size_t adaptive = (num_ranks + options_.adaptive_ranks_per_worker - 1) /
                      options_.adaptive_ranks_per_worker;
    cap = std::min(cap, std::max<size_t>(1, adaptive));
  }
  size_t chunk = std::max<size_t>(1, options_.chunk_size);
  size_t chunks = (num_ranks + chunk - 1) / chunk;
  return std::max<size_t>(1, std::min(cap, chunks));
}

size_t ParallelSearch::EffectiveChunk(size_t num_ranks,
                                      size_t workers) const {
  size_t chunk = std::max<size_t>(1, options_.chunk_size);
  // Aim for >= 4 chunks per worker so a skewed-cost chunk cannot strand
  // the others idle; never below 1.
  size_t balanced = std::max<size_t>(1, num_ranks / (workers * 4));
  return std::min(chunk, balanced);
}

void ParallelSearch::RunWorkers(
    size_t workers, const std::function<void(size_t)>& body) const {
  auto run = [this, &body](size_t worker) {
    if (options_.wrap_worker) {
      options_.wrap_worker(worker, [&body, worker] { body(worker); });
    } else {
      body(worker);
    }
  };
  if (workers <= 1 || options_.pool == nullptr) {
    run(0);
    return;
  }
  Latch latch(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    options_.pool->Submit([&run, &latch, w] {
      run(w);
      latch.CountDown();
    });
  }
  {
    // The caller always participates: progress without pool slots. While
    // it does, it counts as a pool peer — a nested fan-out inside visit()
    // (e.g. the per-candidate egd repair) must run inline rather than
    // Submit-and-wait, because the borrowed workers can be
    // ordering-coupled to this thread's chunk (ScanAll's lead window) and
    // would then never get back to the pool queues to serve it.
    ThreadPool::CooperativeScope scope(options_.pool);
    run(0);
  }
  latch.Wait();
}

size_t ParallelSearch::FindFirst(
    size_t num_ranks,
    const std::function<bool(size_t, size_t)>& visit) const {
  if (num_ranks == 0) return kNotFound;
  const size_t workers = NumWorkers(num_ranks);
  const size_t chunk = EffectiveChunk(num_ranks, workers);
  const size_t num_chunks = (num_ranks + chunk - 1) / chunk;
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> best{kNotFound};

  RunWorkers(workers, [&](size_t worker) {
    for (;;) {
      if (Cancelled()) return;
      size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      size_t begin = c * chunk;
      // Chunks are handed out in rank order: once one starts at or above
      // the best hit, so does every later one — this worker is done.
      if (begin >= best.load(std::memory_order_acquire)) return;
      size_t end = std::min(begin + chunk, num_ranks);
      for (size_t r = begin; r < end; ++r) {
        if (r >= best.load(std::memory_order_acquire)) break;
        if (Cancelled()) return;
        if (visit(r, worker)) {
          size_t cur = best.load(std::memory_order_relaxed);
          while (r < cur && !best.compare_exchange_weak(
                                cur, r, std::memory_order_acq_rel)) {
          }
          break;  // Later ranks in this chunk are > r: irrelevant.
        }
      }
    }
  });
  return best.load(std::memory_order_acquire);
}

void ParallelSearch::ScanAll(
    size_t num_ranks, const std::function<void(size_t, size_t)>& visit,
    const std::function<size_t(size_t)>& on_prefix) const {
  if (num_ranks == 0) {
    if (on_prefix) on_prefix(0);
    return;
  }
  const size_t workers = NumWorkers(num_ranks);
  const size_t chunk = EffectiveChunk(num_ranks, workers);
  const size_t num_chunks = (num_ranks + chunk - 1) / chunk;
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> ceiling{num_ranks};

  // Contiguous-prefix bookkeeping (a chunk "completes" once every rank in
  // it below the ceiling has been visited; ranks above the ceiling are
  // dead by the on_prefix contract, so skipped chunks complete too).
  std::mutex done_mutex;
  std::vector<char> chunk_done(num_chunks, 0);
  size_t done_prefix = 0;
  // Lock-free mirror of done_prefix for the lead-window check below.
  std::atomic<size_t> prefix_chunks{0};

  auto complete_chunk = [&](size_t c) {
    std::lock_guard<std::mutex> lock(done_mutex);
    chunk_done[c] = 1;
    bool advanced = false;
    while (done_prefix < num_chunks && chunk_done[done_prefix]) {
      ++done_prefix;
      advanced = true;
    }
    prefix_chunks.store(done_prefix, std::memory_order_release);
    if (advanced && on_prefix) {
      size_t prefix_ranks = std::min(done_prefix * chunk, num_ranks);
      size_t cap = on_prefix(prefix_ranks);
      if (cap != kNotFound) {
        size_t cur = ceiling.load(std::memory_order_relaxed);
        while (cap < cur && !ceiling.compare_exchange_weak(
                                cur, cap, std::memory_order_acq_rel)) {
        }
      }
    }
  };

  const size_t max_lead = options_.max_lead_chunks;
  RunWorkers(workers, [&](size_t worker) {
    for (;;) {
      if (Cancelled()) return;
      size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      // Lead window: don't sprint ahead of the merge frontier. The owner
      // of the first incomplete chunk has c == prefix_chunks, which is
      // always inside the window — so someone always progresses.
      while (max_lead != 0 &&
             c >= prefix_chunks.load(std::memory_order_acquire) + max_lead) {
        if (Cancelled()) return;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      size_t begin = c * chunk;
      size_t end = std::min(begin + chunk, num_ranks);
      for (size_t r = begin; r < end; ++r) {
        if (r >= ceiling.load(std::memory_order_acquire)) break;
        if (Cancelled()) return;
        visit(r, worker);
      }
      complete_chunk(c);
    }
  });
}

}  // namespace gdx
