#ifndef GDX_COMMON_THREAD_POOL_H_
#define GDX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gdx {

/// Point-in-time pool health counters (ISSUE 6: observability for the
/// road to a resident service). `submitted`/`executed`/`steals` are
/// monotonic totals since construction; `queue_depth` is the number of
/// tasks submitted but not yet finished at the sampling instant. The
/// work-stealing balance of a batch shows as steals/executed: ~0 means
/// round-robin placement already matched the load, large means the
/// stealing deques did real rebalancing work.
struct ThreadPoolStats {
  uint64_t submitted = 0;
  uint64_t executed = 0;
  uint64_t steals = 0;
  size_t queue_depth = 0;
};

/// A small work-stealing thread pool. Each worker owns a deque; Submit
/// round-robins tasks across deques; a worker pops from the back of its own
/// deque (LIFO, cache-friendly) and steals from the front of a victim's
/// deque (FIFO, reduces contention) when its own is empty. Wait() blocks
/// until every submitted task has finished.
///
/// Tasks must not throw. Tasks may Submit() further tasks; Wait() counts
/// them too (it returns only when the pending count reaches zero).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads)
      : queues_(num_threads == 0 ? DefaultThreads() : num_threads) {
    size_t n = queues_.size();
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~ThreadPool() {
    Wait();
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      stopping_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Pool health snapshot (relaxed reads; exact once the pool is idle).
  /// These counters feed the StatsRegistry gauges of the batch layer; the
  /// increments are relaxed atomics on paths that already pay one, so the
  /// pool stays exactly as fast as before they existed.
  ThreadPoolStats stats() const {
    ThreadPoolStats out;
    out.submitted = submitted_.load(std::memory_order_relaxed);
    out.executed = executed_.load(std::memory_order_relaxed);
    out.steals = steals_.load(std::memory_order_relaxed);
    out.queue_depth = pending_.load(std::memory_order_relaxed);
    return out;
  }

  /// Enqueues a task. Thread-safe; callable from worker threads.
  void Submit(std::function<void()> task) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    submitted_.fetch_add(1, std::memory_order_relaxed);
    size_t slot = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                  queues_.size();
    {
      std::lock_guard<std::mutex> lock(queues_[slot].mutex);
      queues_[slot].tasks.push_back(std::move(task));
    }
    // Notify under wake_mutex_: a worker that just found the queues empty
    // either hasn't loaded pending_ yet (it will see our increment) or is
    // already inside wait() (it will get this notify). An unlocked notify
    // could fire between those two steps and be lost, stranding the task.
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
    }
    wake_cv_.notify_one();
  }

  /// Blocks until all submitted tasks (including tasks submitted by tasks)
  /// have completed.
  void Wait() {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }

  static size_t DefaultThreads() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  /// The pool the calling thread is a worker of, nullptr off-pool. Lets
  /// fan-out helpers detect re-entrant use (a pool task fanning out over
  /// its own pool) and degrade to inline execution: a worker that
  /// submitted sub-tasks and blocked on their completion could deadlock a
  /// saturated pool — every worker waiting on jobs only its equally
  /// blocked peers would ever run.
  static ThreadPool* Current() { return current_; }

  /// Marks the calling thread as a *cooperative participant* of `pool`
  /// for the scope's lifetime — the caller slot of a fan-out or parallel
  /// search that borrowed pool workers and now runs shoulder to shoulder
  /// with them. Nested fan-outs must treat such a thread exactly like a
  /// pool worker (run inline, never Submit-and-wait): the cooperating
  /// siblings may be ordering-coupled to this thread's progress — e.g.
  /// ScanAll's lead window parks workers until the first incomplete chunk
  /// (owned here) completes — so parking *this* thread on a latch only a
  /// parked sibling could serve is a circular wait.
  class CooperativeScope {
   public:
    explicit CooperativeScope(ThreadPool* pool) : prev_(cooperative_) {
      cooperative_ = pool;
    }
    ~CooperativeScope() { cooperative_ = prev_; }
    CooperativeScope(const CooperativeScope&) = delete;
    CooperativeScope& operator=(const CooperativeScope&) = delete;

   private:
    ThreadPool* prev_;
  };

  /// The pool the calling thread currently cooperates with (innermost
  /// CooperativeScope), nullptr outside any scope.
  static ThreadPool* CurrentCooperative() { return cooperative_; }

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  bool TryPop(size_t worker, std::function<void()>& out) {
    {  // Own queue: LIFO.
      Queue& own = queues_[worker];
      std::lock_guard<std::mutex> lock(own.mutex);
      if (!own.tasks.empty()) {
        out = std::move(own.tasks.back());
        own.tasks.pop_back();
        return true;
      }
    }
    // Steal: FIFO from the other queues, round-robin from our right.
    for (size_t k = 1; k < queues_.size(); ++k) {
      Queue& victim = queues_[(worker + k) % queues_.size()];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        out = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  void WorkerLoop(size_t worker) {
    current_ = this;
    for (;;) {
      std::function<void()> task;
      if (TryPop(worker, task)) {
        task();
        executed_.fetch_add(1, std::memory_order_relaxed);
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(wake_mutex_);
          done_cv_.notify_all();
        }
        continue;
      }
      std::unique_lock<std::mutex> lock(wake_mutex_);
      if (stopping_) return;
      if (pending_.load(std::memory_order_acquire) == 0) {
        // Nothing anywhere: sleep until a Submit or shutdown.
        wake_cv_.wait(lock);
      } else {
        // Work exists but raced away from us; re-scan soon.
        wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
      if (stopping_) return;
    }
  }

  std::vector<Queue> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> steals_{0};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  bool stopping_ = false;
  inline static thread_local ThreadPool* current_ = nullptr;
  inline static thread_local ThreadPool* cooperative_ = nullptr;
};

}  // namespace gdx

#endif  // GDX_COMMON_THREAD_POOL_H_
